// Load generator for the `llamp serve` daemon: an in-process Server on an
// ephemeral loopback port, driven over real sockets by the serve::Client.
// Headline numbers are cold vs warm request rates and p50/p99 latencies
// for the analysis route (cold = first request on a fresh engine, paying
// the graph build + lowering; warm = steady-state cache hits), plus the
// wire-layer ceiling measured on the inline /healthz route (no analysis
// work at all) and a concurrent-connections section (requests still
// execute one at a time on the executor — the concurrency cost being
// measured is the poll loop's, not the engine's).  Writes the committed
// perf-trajectory file BENCH_serve.json (informational in CI, never
// gating).
//
//   $ ./bench_serve [--requests=200] [--clients=4] [--quick]
//                   [--out=BENCH_serve.json]

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "serve/client.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

constexpr const char* kAnalyzeBody =
    "{\"app\": {\"name\": \"lulesh\", \"ranks\": 8, \"scale\": 0.05}, "
    "\"grid\": {\"dl_max_us\": 20, \"points\": 3}}";

double now_ms() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

struct Summary {
  double total_ms = 0.0;
  double p50_ms = 0.0;
  double p99_ms = 0.0;
  std::size_t requests = 0;
  double req_per_sec() const {
    return total_ms > 0.0 ? 1e3 * static_cast<double>(requests) / total_ms
                          : 0.0;
  }
};

Summary summarize(std::vector<double> lat_ms, double total_ms) {
  Summary s;
  s.requests = lat_ms.size();
  s.total_ms = total_ms;
  if (lat_ms.empty()) return s;
  std::sort(lat_ms.begin(), lat_ms.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(lat_ms.size() - 1) + 0.5);
    return lat_ms[std::min(idx, lat_ms.size() - 1)];
  };
  s.p50_ms = at(0.50);
  s.p99_ms = at(0.99);
  return s;
}

/// `n` requests on one keep-alive connection; per-request latencies.
Summary drive(std::uint16_t port, const char* method, const char* path,
              const char* body, int n) {
  llamp::serve::Client client("127.0.0.1", port);
  std::vector<double> lat;
  lat.reserve(static_cast<std::size_t>(n));
  const double t0 = now_ms();
  for (int i = 0; i < n; ++i) {
    const double r0 = now_ms();
    const auto res = client.request(method, path, body);
    lat.push_back(now_ms() - r0);
    if (res.status != 200) {
      std::fprintf(stderr, "bench_serve: %s %s -> %d\n", method, path,
                   res.status);
      std::exit(1);
    }
  }
  return summarize(std::move(lat), now_ms() - t0);
}

std::string section_json(const char* desc, const Summary& s) {
  return llamp::strformat(
      "    \"description\": \"%s\",\n"
      "    \"requests\": %zu, \"req_per_sec\": %.1f,\n"
      "    \"p50_ms\": %.3f, \"p99_ms\": %.3f\n",
      desc, s.requests, s.req_per_sec(), s.p50_ms, s.p99_ms);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const bool quick = cli.get_bool("quick", false);
  const int requests =
      static_cast<int>(cli.get_int("requests", quick ? 30 : 200));
  const int clients = static_cast<int>(cli.get_int("clients", 4));
  const std::string out_path = cli.get("out", "BENCH_serve.json");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  api::Engine engine(api::Engine::Options{.threads = 1});
  serve::Server::Options opts;
  opts.port = 0;  // ephemeral
  serve::Server server(opts, serve::engine_routes(engine));
  server.start();
  const std::uint16_t port = server.port();
  std::printf("bench_serve: daemon on 127.0.0.1:%u, %d warm requests, "
              "%d concurrent clients, hw=%d threads\n",
              unsigned{port}, requests, clients, hw);

  // Cold: the very first analysis request on the fresh engine pays the
  // graph build, the lowering, and the anchor solve.
  const Summary cold = drive(port, "POST", "/v1/analyze", kAnalyzeBody, 1);
  // Warm: the steady state every later identical request sees.
  const Summary warm =
      drive(port, "POST", "/v1/analyze", kAnalyzeBody, requests);
  // Wire ceiling: the inline route does no analysis work, so this is the
  // parser + poll loop + serializer, nothing else.
  const Summary wire = drive(port, "GET", "/healthz", "", requests);

  // Concurrent connections, warm cache: every client drives its own
  // keep-alive connection; the executor still runs requests one at a
  // time, so this prices connection multiplexing, not engine parallelism.
  std::vector<Summary> per_client(static_cast<std::size_t>(clients));
  const double c0 = now_ms();
  {
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c) {
      threads.emplace_back([&per_client, c, port, requests, clients] {
        per_client[static_cast<std::size_t>(c)] =
            drive(port, "POST", "/v1/analyze", kAnalyzeBody,
                  std::max(1, requests / clients));
      });
    }
    for (std::thread& t : threads) t.join();
  }
  Summary concurrent;
  concurrent.total_ms = now_ms() - c0;
  // Aggregate quantiles conservatively: report the worst client's p50/p99
  // (the fairness number under connection multiplexing).
  for (const Summary& s : per_client) {
    concurrent.requests += s.requests;
    concurrent.p50_ms = std::max(concurrent.p50_ms, s.p50_ms);
    concurrent.p99_ms = std::max(concurrent.p99_ms, s.p99_ms);
  }

  server.request_shutdown();
  server.join();
  const serve::Server::Stats st = server.stats();

  std::printf("cold:       1 request   %8.3f ms\n", cold.p50_ms);
  std::printf("warm:       %4zu req    %8.1f req/s   p50 %.3f ms  p99 %.3f ms\n",
              warm.requests, warm.req_per_sec(), warm.p50_ms, warm.p99_ms);
  std::printf("healthz:    %4zu req    %8.1f req/s   p50 %.3f ms  p99 %.3f ms\n",
              wire.requests, wire.req_per_sec(), wire.p50_ms, wire.p99_ms);
  std::printf("concurrent: %4zu req    %8.1f req/s   worst-client p50 %.3f ms"
              "  p99 %.3f ms  (%d connections)\n",
              concurrent.requests, concurrent.req_per_sec(),
              concurrent.p50_ms, concurrent.p99_ms, clients);
  std::printf("server stats: %llu connections, %llu requests, %llu responses\n",
              static_cast<unsigned long long>(st.connections),
              static_cast<unsigned long long>(st.requests),
              static_cast<unsigned long long>(st.responses));

  std::ofstream os(out_path);
  os << strformat(
      "{\n"
      "  \"benchmark\": \"serve\",\n"
      "  \"schema_version\": 2,\n"
      "  \"config\": {\n"
      "    \"route\": \"/v1/analyze\", \"app\": \"lulesh\", \"ranks\": 8, "
      "\"scale\": 0.05,\n"
      "    \"grid_points\": 3, \"warm_requests\": %d, "
      "\"concurrent_clients\": %d,\n"
      "    \"engine_threads\": 1, \"hardware_threads\": %d\n"
      "  },\n"
      "  \"cold\": {\n%s  },\n"
      "  \"warm\": {\n%s  },\n"
      "  \"healthz_inline\": {\n%s  },\n"
      "  \"concurrent_warm\": {\n%s  },\n"
      "  \"warm_speedup_over_cold\": %.1f,\n"
      "  \"bytes_verified\": \"response bodies byte-identical across "
      "keep-alive reuse, fresh connections, and concurrent clients "
      "(tests/test_serve.cpp wire-determinism wall)\"\n"
      "}\n",
      requests, clients, hw,
      section_json("first request on a fresh engine: graph build + "
                   "lowering + anchor solve, over the wire",
                   cold)
          .c_str(),
      section_json("steady-state identical requests on one keep-alive "
                   "connection: both caches hit",
                   warm)
          .c_str(),
      section_json("inline route on the IO thread: parser + poll loop + "
                   "serializer only",
                   wire)
          .c_str(),
      section_json("warm requests from concurrent connections; executor "
                   "serializes, quantiles are the worst client's",
                   concurrent)
          .c_str(),
      warm.p50_ms > 0.0 ? cold.p50_ms / warm.p50_ms : 0.0);
  if (!os) {
    std::fprintf(stderr, "bench_serve: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
