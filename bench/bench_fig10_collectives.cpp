// Fig. 10: ICON with recursive-doubling vs ring Allreduce across scales.
// One trace per scale is re-scheduled under both algorithms; the harness
// prints runtime forecasts over the ΔL sweep, λ_L and ρ_L at 100 us, and
// the 5% tolerance.  The reproduced shape: the ring's λ_L far exceeds
// recursive doubling's, the gap widens with scale, and the tolerance ratio
// reaches several x at the largest scale (4x at 256 nodes in the paper).

#include <cstdio>

#include "bench_support.hpp"
#include "core/analyzer.hpp"
#include "util/table.hpp"

int main() {
  using namespace llamp;

  Table summary({"ranks", "allreduce", "T(0)", "lambda_L@100us",
                 "rho_L@100us", "5% tol ΔL"});
  std::vector<double> tolerance_by_algo;

  for (const int ranks : {16, 32, 64}) {
    const auto trace = apps::make_app_trace("icon", ranks, 0.3);
    const auto params = loggops::NetworkConfig::piz_daint(
        ranks <= 16 ? 8'500.0 : (ranks <= 32 ? 8'500.0 : 7'400.0));
    for (const auto algo : {schedgen::AllreduceAlgo::kRecursiveDoubling,
                            schedgen::AllreduceAlgo::kRing}) {
      schedgen::Options opt;
      opt.allreduce = algo;
      const auto g = schedgen::build_graph(trace, opt);
      core::LatencyAnalyzer an(g, params);
      const double tol5 = an.tolerance_delta(5.0);
      tolerance_by_algo.push_back(tol5);
      summary.add_row({strformat("%d", ranks),
                       std::string(schedgen::to_string(algo)),
                       human_time_ns(an.base_runtime()),
                       strformat("%.0f", an.lambda_L(us(100.0))),
                       strformat("%.1f%%", 100.0 * an.rho_L(us(100.0))),
                       human_time_ns(tol5)});
    }
  }
  std::printf("ICON proxy, Piz Daint parameters, one trace per scale\n\n%s\n",
              summary.to_string().c_str());
  // Tolerance ratio recursive-doubling : ring at the largest scale.
  const double ratio = tolerance_by_algo[tolerance_by_algo.size() - 2] /
                       tolerance_by_algo.back();
  std::printf("5%% tolerance ratio (recursive doubling / ring) at 64 ranks: "
              "%.1fx   (paper: 4x at 256 nodes)\n", ratio);
  return 0;
}
