// Fig. 1: latency-tolerance bands of MILC, LULESH, and ICON — the paper's
// headline picture.  For each application the harness prints measured
// (cluster-emulator) vs predicted runtimes across the ΔL sweep and the
// 1% / 2% / 5% tolerance boundaries computed *directly from the LP* (not by
// scanning the curves), exactly as the paper emphasizes.

#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "core/analyzer.hpp"
#include "injector/cluster_emulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace llamp;
  using bench::AppScale;

  const std::vector<AppScale> configs = {
      {"milc", 32, 0.2, 60.0},
      {"lulesh", 27, 0.25, 100.0},
      {"icon", 32, 0.3, 1000.0},
  };

  for (const AppScale& cfg : configs) {
    const auto g = bench::app_graph(cfg);
    const auto params = bench::params_for(cfg.app, cfg.ranks);
    core::LatencyAnalyzer an(g, params);
    injector::ClusterEmulator emulator(g, params);

    std::printf("=== %s, %d ranks ===\n", cfg.app.c_str(), cfg.ranks);
    Table t({"ΔL", "measured", "predicted", "err"});
    std::vector<double> measured, predicted;
    const int points = 6;
    for (int i = 0; i < points; ++i) {
      const double d = us(cfg.dl_max_us) * i / (points - 1);
      const double m = emulator.measure(d, 5);
      const double f = an.predict_runtime(d);
      measured.push_back(m);
      predicted.push_back(f);
      t.add_row({human_time_ns(d), human_time_ns(m), human_time_ns(f),
                 strformat("%+.2f%%", 100.0 * (f - m) / m)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("RRMSE: %.2f%%\n", rrmse_percent(measured, predicted));
    std::printf("tolerance bands (ΔL before degradation):  "
                "1%%: %s   2%%: %s   5%%: %s\n\n",
                human_time_ns(an.tolerance_delta(1.0)).c_str(),
                human_time_ns(an.tolerance_delta(2.0)).c_str(),
                human_time_ns(an.tolerance_delta(5.0)).c_str());
  }
  std::printf("Paper's qualitative result: MILC tolerates the least "
              "(~20 us scale), ICON the most (>650 us).\n");
  return 0;
}
