// Fig. 1: latency-tolerance bands of MILC, LULESH, and ICON — the paper's
// headline picture.  For each application the harness prints measured
// (cluster-emulator) vs predicted runtimes across the ΔL sweep and the
// 1% / 2% / 5% tolerance boundaries computed *directly from the LP* (not by
// scanning the curves), exactly as the paper emphasizes.
//
// The sweep itself runs through the core::Campaign engine: one scenario per
// application, the emulator attached as the campaign's probe, tolerance
// bands evaluated per scenario by the engine.

#include <cmath>
#include <cstdio>

#include "bench_support.hpp"
#include "core/campaign.hpp"
#include "injector/cluster_emulator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace llamp;
  using bench::AppScale;
  // The uniform stochastic seed flag (same spelling as `llamp mc`):
  // identical seeds reproduce identical measured columns byte for byte.
  const Cli cli(argc, argv);
  injector::ClusterEmulator::Config emu_cfg;
  emu_cfg.seed =
      static_cast<std::uint64_t>(cli.get_int("seed",
                                             static_cast<long long>(emu_cfg.seed)));

  const std::vector<AppScale> configs = {
      {"milc", 32, 0.2, 60.0},
      {"lulesh", 27, 0.25, 100.0},
      {"icon", 32, 0.3, 1000.0},
  };

  std::vector<core::Scenario> scenarios;
  for (const AppScale& cfg : configs) {
    core::Scenario s;
    s.app = cfg.app;
    s.ranks = cfg.ranks;
    s.scale = cfg.scale;
    s.config = "cscs";
    s.params = bench::params_for(cfg.app, cfg.ranks);
    s.delta_Ls = core::linear_grid(us(cfg.dl_max_us), 6);
    s.band_percents = {1.0, 2.0, 5.0};
    scenarios.push_back(std::move(s));
  }

  // "Measured" column: 5-run cluster-emulator averages, one emulator per
  // scenario so every run reproduces the exact same noise sequence.
  const core::Campaign::Probe probe = [emu_cfg](const core::Scenario& s,
                                                const graph::Graph& g) {
    injector::ClusterEmulator emulator(g, s.params, emu_cfg);
    return emulator.sweep(s.delta_Ls, 5);
  };

  core::Campaign campaign(std::move(scenarios));
  const auto results = campaign.run(probe);

  for (const auto& res : results) {
    std::printf("=== %s, %d ranks ===\n", res.scenario.app.c_str(),
                res.scenario.ranks);
    Table t({"ΔL", "measured", "predicted", "err"});
    std::vector<double> measured, predicted;
    for (const auto& pt : res.points) {
      measured.push_back(pt.probe);
      predicted.push_back(pt.runtime);
      t.add_row({human_time_ns(pt.delta_L), human_time_ns(pt.probe),
                 human_time_ns(pt.runtime),
                 strformat("%+.2f%%", 100.0 * (pt.runtime - pt.probe) / pt.probe)});
    }
    std::printf("%s", t.to_string().c_str());
    std::printf("RRMSE: %.2f%%\n", rrmse_percent(measured, predicted));
    std::printf("tolerance bands (ΔL before degradation):  "
                "1%%: %s   2%%: %s   5%%: %s\n\n",
                human_time_ns(res.bands[0].tolerance_delta).c_str(),
                human_time_ns(res.bands[1].tolerance_delta).c_str(),
                human_time_ns(res.bands[2].tolerance_delta).c_str());
  }
  std::printf("Paper's qualitative result: MILC tolerates the least "
              "(~20 us scale), ICON the most (>650 us).\n");
  return 0;
}
