#pragma once

// Shared configuration for the figure/table reproduction harnesses.
//
// Scale substitution relative to the paper (documented in DESIGN.md §1):
// the paper runs 128-1024 MPI processes over 8-64 nodes of a real cluster;
// these harnesses run the proxy applications at 8-64 ranks with shortened
// iteration counts so the entire suite finishes in minutes on one machine.
// All *shape* conclusions (orderings, crossovers, scaling trends) are
// preserved; absolute runtimes are not comparable by design.

#include <chrono>
#include <string>
#include <vector>

#include "apps/registry.hpp"
#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "schedgen/schedgen.hpp"
#include "util/strings.hpp"

namespace llamp::bench {

/// One validation configuration (a subplot of Fig. 9).
struct AppScale {
  std::string app;
  int ranks;
  double scale;          ///< iteration-count multiplier for the proxy
  double dl_max_us;      ///< sweep ceiling (ICON uses 1000 us in the paper)
};

inline std::vector<AppScale> fig9_configs() {
  return {
      {"lulesh", 8, 0.25, 100.0},  {"lulesh", 27, 0.25, 100.0},
      {"lulesh", 64, 0.25, 100.0}, {"hpcg", 8, 0.25, 100.0},
      {"hpcg", 32, 0.25, 100.0},   {"hpcg", 64, 0.25, 100.0},
      {"milc", 8, 0.2, 100.0},     {"milc", 32, 0.2, 100.0},
      {"milc", 64, 0.2, 100.0},    {"icon", 8, 0.3, 1000.0},
      {"icon", 32, 0.3, 1000.0},   {"icon", 64, 0.3, 1000.0},
  };
}

/// Table II extension: the remaining validated applications.
inline std::vector<AppScale> table2_extra_configs() {
  return {
      {"lammps", 8, 0.3, 100.0},   {"lammps", 32, 0.3, 100.0},
      {"openmx", 8, 0.3, 100.0},   {"openmx", 32, 0.3, 100.0},
      {"cloverleaf", 8, 0.3, 100.0},
  };
}

inline loggops::Params params_for(const std::string& app, int ranks) {
  // Per-application o from Table II; nodes key approximated by rank count.
  const int node_key = ranks <= 8 ? 8 : (ranks <= 32 ? 32 : 64);
  const int lulesh_key = ranks <= 8 ? 8 : (ranks <= 27 ? 27 : 64);
  const TimeNs o = loggops::NetworkConfig::table2_overhead(
      app, app == "lulesh" ? lulesh_key : node_key);
  return loggops::NetworkConfig::cscs_testbed(o);
}

inline graph::Graph app_graph(const AppScale& cfg,
                              const schedgen::Options& opts = {}) {
  return schedgen::build_graph(
      apps::make_app_trace(cfg.app, cfg.ranks, cfg.scale), opts);
}

/// Wall-clock helper for the solver-runtime tables.
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace llamp::bench
