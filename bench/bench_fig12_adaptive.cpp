// Fig. 12: NAMD / charm++ adaptivity.  The message-driven runtime reorders
// work under latency, so a trace recorded at ΔL = X already "contains" the
// overlap the runtime achieved at X.  The harness records the NAMD proxy at
// several ΔL values, forecasts each trace across the injected-latency
// sweep, and compares against emulator measurements of the corresponding
// adapted schedule — reproducing the fan of curves in the paper's figure
// (traces recorded at higher ΔL are flatter / more tolerant).

#include <cmath>
#include <cstdio>

#include "apps/namd.hpp"
#include "core/analyzer.hpp"
#include "injector/cluster_emulator.hpp"
#include "schedgen/schedgen.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace llamp;
  // The uniform stochastic seed flag (same spelling as `llamp mc`):
  // identical seeds reproduce identical emulator measurements byte for byte.
  const Cli cli(argc, argv);
  injector::ClusterEmulator::Config emu_cfg;
  emu_cfg.seed =
      static_cast<std::uint64_t>(cli.get_int("seed",
                                             static_cast<long long>(emu_cfg.seed)));

  const auto params = loggops::NetworkConfig::cscs_testbed(5'000.0);
  const std::vector<double> traced_dls = {0.0, us(250.0), us(1000.0)};

  Table table({"ΔL injected", "traced@0", "traced@250us", "traced@1ms"});
  std::vector<core::LatencyAnalyzer> analyzers;
  std::vector<graph::Graph> graphs;
  graphs.reserve(traced_dls.size());
  for (const double traced : traced_dls) {
    apps::NamdConfig cfg;
    cfg.nranks = 16;
    cfg.steps = 25;
    cfg.traced_delta_L = traced;
    graphs.push_back(schedgen::build_graph(apps::make_namd_trace(cfg)));
  }
  for (const auto& g : graphs) analyzers.emplace_back(g, params);

  for (const double dl_us : {0.0, 100.0, 250.0, 500.0, 1000.0, 2000.0}) {
    std::vector<std::string> row{human_time_ns(us(dl_us))};
    for (const auto& an : analyzers) {
      row.push_back(human_time_ns(an.predict_runtime(us(dl_us))));
    }
    table.add_row(row);
  }
  std::printf("NAMD proxy forecast runtime by recording latency of the "
              "trace\n\n%s\n", table.to_string().c_str());

  // Validation against the emulator for the adapted schedules.
  Table val({"traced ΔL", "5% tolerance ΔL", "RRMSE vs emulator [%]"});
  for (std::size_t i = 0; i < graphs.size(); ++i) {
    injector::ClusterEmulator emulator(graphs[i], params, emu_cfg);
    std::vector<double> measured, predicted;
    for (const double dl_us : {0.0, 250.0, 500.0, 1000.0}) {
      measured.push_back(emulator.measure(us(dl_us), 5));
      predicted.push_back(analyzers[i].predict_runtime(us(dl_us)));
    }
    val.add_row({human_time_ns(traced_dls[i]),
                 human_time_ns(analyzers[i].tolerance_delta(5.0)),
                 strformat("%.2f", rrmse_percent(measured, predicted))});
  }
  std::printf("%s\n", val.to_string().c_str());
  std::printf("Traces recorded at higher latency defer waits behind more "
              "compute, so their curves\nstay flat longer — charm++'s "
              "adaptivity as seen through static traces (Fig. 12).\n");
  return 0;
}
