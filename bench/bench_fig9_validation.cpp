// Fig. 9 + Table II: the validation experiment.  For each application and
// scale, sweep the injected latency ΔL, compare cluster-emulator
// "measurements" (10-run averages in the paper, 5 here) against LLAMP's LP
// forecast, and report RRMSE plus the λ_L / ρ_L curves and tolerance bands.
// A systematic-bias variant reproduces the MILC persistent-ops mismatch the
// paper observes at 32/64 nodes.  A noise-σ sweep at the end quantifies how
// much measurement noise the <2% RRMSE headline survives (DESIGN.md §5).
//
// The whole grid runs through the core::Campaign engine: one scenario per
// (app, ranks) configuration with its own ΔL ceiling, the emulator attached
// as the campaign probe, graphs built once per configuration and scenarios
// evaluated on the shared thread pool.

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_support.hpp"
#include "core/analyzer.hpp"
#include "core/campaign.hpp"
#include "injector/cluster_emulator.hpp"
#include "util/cli.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace llamp;
  // The uniform stochastic seed flag (same spelling as `llamp mc`):
  // identical seeds reproduce identical validation bytes, different seeds
  // re-roll the emulator's noise.
  const Cli cli(argc, argv);
  const auto seed = static_cast<std::uint64_t>(
      cli.get_int("seed",
                  static_cast<long long>(injector::ClusterEmulator::Config{}.seed)));

  Table summary({"app", "ranks", "o [us]", "events", "RMSE [ms]",
                 "RRMSE [%]", "1% tol", "2% tol", "5% tol"});

  std::filesystem::create_directories("results");

  // The paper observes a small systematic bias for MILC at 32/64 nodes from
  // persistent-operation overheads; model it for those configurations.
  const auto bias_for = [](const core::Scenario& s) {
    return (s.app == "milc" && s.ranks >= 32) ? 0.004 : 0.0;
  };

  std::vector<core::Scenario> scenarios;
  auto add_config = [&](const bench::AppScale& cfg) {
    core::Scenario s;
    s.app = cfg.app;
    s.ranks = cfg.ranks;
    s.scale = cfg.scale;
    s.config = "cscs";
    s.params = bench::params_for(cfg.app, cfg.ranks);
    s.delta_Ls = core::linear_grid(us(cfg.dl_max_us), 11);
    s.band_percents = {1.0, 2.0, 5.0};
    scenarios.push_back(std::move(s));
  };
  for (const auto& cfg : bench::fig9_configs()) add_config(cfg);
  for (const auto& cfg : bench::table2_extra_configs()) add_config(cfg);

  const core::Campaign::Probe probe = [&](const core::Scenario& s,
                                          const graph::Graph& g) {
    injector::ClusterEmulator::Config emu_cfg;
    emu_cfg.systematic_bias = bias_for(s);
    emu_cfg.seed = seed;
    injector::ClusterEmulator emulator(g, s.params, emu_cfg);
    return emulator.sweep(s.delta_Ls, 5);
  };

  core::Campaign campaign(std::move(scenarios));
  const auto results = campaign.run(probe);

  for (const auto& res : results) {
    const core::Scenario& sc = res.scenario;
    std::printf("--- %s %d ranks (ΔL 0..%g us) ---\n", sc.app.c_str(),
                sc.ranks, to_us(sc.delta_Ls.back()));
    Table curve({"ΔL", "measured", "predicted", "lambda_L", "rho_L"});
    Table csv({"delta_l_ns", "measured_ns", "predicted_ns", "lambda_l",
               "rho_l"});
    std::vector<double> measured, predicted;
    for (const auto& pt : res.points) {
      measured.push_back(pt.probe);
      predicted.push_back(pt.runtime);
      curve.add_row({human_time_ns(pt.delta_L), human_time_ns(pt.probe),
                     human_time_ns(pt.runtime),
                     strformat("%.0f", pt.lambda),
                     strformat("%.1f%%", 100.0 * pt.rho)});
      csv.add_row({strformat("%.1f", pt.delta_L), strformat("%.1f", pt.probe),
                   strformat("%.1f", pt.runtime),
                   strformat("%.0f", pt.lambda),
                   strformat("%.6f", pt.rho)});
    }
    std::printf("%s", curve.to_string().c_str());
    std::ofstream(strformat("results/fig9_%s_%d.csv", sc.app.c_str(),
                            sc.ranks))
        << csv.to_csv();
    const double rmse_v = rmse(measured, predicted);
    const double rrmse_v = rrmse_percent(measured, predicted);
    std::printf("RRMSE %.2f%%%s\n\n", rrmse_v,
                bias_for(sc) != 0.0
                    ? " (with the MILC-style systematic bias)" : "");
    summary.add_row({sc.app, strformat("%d", sc.ranks),
                     strformat("%.1f", to_us(sc.params.o)),
                     human_count(static_cast<double>(res.graph_vertices)),
                     strformat("%.3f", to_ms(rmse_v)),
                     strformat("%.2f", rrmse_v),
                     human_time_ns(res.bands[0].tolerance_delta),
                     human_time_ns(res.bands[1].tolerance_delta),
                     human_time_ns(res.bands[2].tolerance_delta)});
  }

  std::printf("=== Table II analogue (validation summary) ===\n%s\n",
              summary.to_string().c_str());
  std::ofstream("results/table2_summary.csv") << summary.to_csv();
  std::printf("(CSV series written to results/fig9_*.csv and "
              "results/table2_summary.csv)\n\n");

  // Noise ablation: how does RRMSE respond to the emulator's noise level?
  // (A sweep over the *emulator's* σ, not a campaign axis: the forecast side
  // is one scenario evaluated once.)
  std::printf("=== Noise ablation (LULESH, 27 ranks) ===\n");
  const bench::AppScale cfg{"lulesh", 27, 0.25, 100.0};
  const auto g = bench::app_graph(cfg);
  const auto params = bench::params_for(cfg.app, cfg.ranks);
  core::LatencyAnalyzer an(g, params);
  Table noise_table({"noise sigma", "RRMSE [%]"});
  for (const double sigma : {0.0, 0.001, 0.003, 0.005, 0.01, 0.02}) {
    injector::ClusterEmulator::Config emu_cfg;
    emu_cfg.noise_sigma = sigma;
    emu_cfg.seed = seed;
    injector::ClusterEmulator emulator(g, params, emu_cfg);
    std::vector<double> measured, predicted;
    for (int i = 0; i < 6; ++i) {
      const double d = us(cfg.dl_max_us) * i / 5;
      measured.push_back(emulator.measure(d, 5));
      predicted.push_back(an.predict_runtime(d));
    }
    noise_table.add_row({strformat("%.3f", sigma),
                         strformat("%.2f", rrmse_percent(measured, predicted))});
  }
  std::printf("%s", noise_table.to_string().c_str());
  return 0;
}
