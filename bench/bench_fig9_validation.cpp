// Fig. 9 + Table II: the validation experiment.  For each application and
// scale, sweep the injected latency ΔL, compare cluster-emulator
// "measurements" (10-run averages in the paper, 5 here) against LLAMP's LP
// forecast, and report RRMSE plus the λ_L / ρ_L curves and tolerance bands.
// A systematic-bias variant reproduces the MILC persistent-ops mismatch the
// paper observes at 32/64 nodes.  A noise-σ sweep at the end quantifies how
// much measurement noise the <2% RRMSE headline survives (DESIGN.md §5).

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "bench_support.hpp"
#include "core/analyzer.hpp"
#include "injector/cluster_emulator.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

int main() {
  using namespace llamp;

  Table summary({"app", "ranks", "o [us]", "events", "RMSE [ms]",
                 "RRMSE [%]", "1% tol", "2% tol", "5% tol"});

  std::filesystem::create_directories("results");

  auto run_config = [&](const bench::AppScale& cfg, double bias) {
    const auto g = bench::app_graph(cfg);
    const auto params = bench::params_for(cfg.app, cfg.ranks);
    core::LatencyAnalyzer an(g, params);
    injector::ClusterEmulator::Config emu_cfg;
    emu_cfg.systematic_bias = bias;
    injector::ClusterEmulator emulator(g, params, emu_cfg);

    std::printf("--- %s %d ranks (ΔL 0..%g us) ---\n", cfg.app.c_str(),
                cfg.ranks, cfg.dl_max_us);
    Table curve({"ΔL", "measured", "predicted", "lambda_L", "rho_L"});
    Table csv({"delta_l_ns", "measured_ns", "predicted_ns", "lambda_l",
               "rho_l"});
    std::vector<double> measured, predicted;
    const int points = 11;
    for (int i = 0; i < points; ++i) {
      const double d = us(cfg.dl_max_us) * i / (points - 1);
      const double m = emulator.measure(d, 5);
      const double f = an.predict_runtime(d);
      measured.push_back(m);
      predicted.push_back(f);
      curve.add_row({human_time_ns(d), human_time_ns(m), human_time_ns(f),
                     strformat("%.0f", an.lambda_L(d)),
                     strformat("%.1f%%", 100.0 * an.rho_L(d))});
      csv.add_row({strformat("%.1f", d), strformat("%.1f", m),
                   strformat("%.1f", f), strformat("%.0f", an.lambda_L(d)),
                   strformat("%.6f", an.rho_L(d))});
    }
    std::printf("%s", curve.to_string().c_str());
    std::ofstream(strformat("results/fig9_%s_%d.csv", cfg.app.c_str(),
                            cfg.ranks))
        << csv.to_csv();
    const double rmse_v = rmse(measured, predicted);
    const double rrmse_v = rrmse_percent(measured, predicted);
    std::printf("RRMSE %.2f%%%s\n\n", rrmse_v,
                bias != 0.0 ? " (with the MILC-style systematic bias)" : "");
    summary.add_row({cfg.app, strformat("%d", cfg.ranks),
                     strformat("%.1f", to_us(params.o)),
                     human_count(static_cast<double>(g.num_vertices())),
                     strformat("%.3f", to_ms(rmse_v)),
                     strformat("%.2f", rrmse_v),
                     human_time_ns(an.tolerance_delta(1.0)),
                     human_time_ns(an.tolerance_delta(2.0)),
                     human_time_ns(an.tolerance_delta(5.0))});
  };

  for (const auto& cfg : bench::fig9_configs()) {
    // The paper observes a small systematic bias for MILC at 32/64 nodes
    // from persistent-operation overheads; model it for those configs.
    const double bias =
        (cfg.app == "milc" && cfg.ranks >= 32) ? 0.004 : 0.0;
    run_config(cfg, bias);
  }
  for (const auto& cfg : bench::table2_extra_configs()) {
    run_config(cfg, 0.0);
  }

  std::printf("=== Table II analogue (validation summary) ===\n%s\n",
              summary.to_string().c_str());
  std::ofstream("results/table2_summary.csv") << summary.to_csv();
  std::printf("(CSV series written to results/fig9_*.csv and "
              "results/table2_summary.csv)\n\n");

  // Noise ablation: how does RRMSE respond to the emulator's noise level?
  std::printf("=== Noise ablation (LULESH, 27 ranks) ===\n");
  const bench::AppScale cfg{"lulesh", 27, 0.25, 100.0};
  const auto g = bench::app_graph(cfg);
  const auto params = bench::params_for(cfg.app, cfg.ranks);
  core::LatencyAnalyzer an(g, params);
  Table noise_table({"noise sigma", "RRMSE [%]"});
  for (const double sigma : {0.0, 0.001, 0.003, 0.005, 0.01, 0.02}) {
    injector::ClusterEmulator::Config emu_cfg;
    emu_cfg.noise_sigma = sigma;
    injector::ClusterEmulator emulator(g, params, emu_cfg);
    std::vector<double> measured, predicted;
    for (int i = 0; i < 6; ++i) {
      const double d = us(cfg.dl_max_us) * i / 5;
      measured.push_back(emulator.measure(d, 5));
      predicted.push_back(an.predict_runtime(d));
    }
    noise_table.add_row({strformat("%.3f", sigma),
                         strformat("%.2f", rrmse_percent(measured, predicted))});
  }
  std::printf("%s", noise_table.to_string().c_str());
  return 0;
}
