// Reproduces the paper's running example end to end (Figs. 4, 5, 6, 16 and
// Equations 5/6): the explicit LP, its solution and reduced cost, the
// critical latency found by Algorithm 2, and the tolerance LP of §II-D2.
// Every number printed here is pinned by unit tests; this harness exists to
// show them side by side with the paper's values.

#include <cmath>
#include <cstdio>
#include <memory>

#include "lp/graph_lp.hpp"
#include "lp/parametric.hpp"
#include "lp/simplex.hpp"
#include "schedgen/schedgen.hpp"
#include "trace/builder.hpp"
#include "util/strings.hpp"

int main() {
  using namespace llamp;

  trace::TraceBuilder tb(2, 0.0);
  tb.compute(0, 100.0);
  tb.send(0, 1, 4);
  tb.compute(0, 1'000.0);
  tb.compute(1, 500.0);
  tb.recv(1, 0, 4);
  tb.compute(1, 1'000.0);
  const auto g = schedgen::build_graph(tb.finish());

  loggops::Params p;
  p.L = 0.0;
  p.o = 0.0;
  p.G = 5.0;

  std::printf("=== Running example (Fig. 4c): c = {0.1, 1, 0.5, 1} us, "
              "s = 4 B, o = 0, G = 5 ns/B ===\n\n");

  const lp::LatencyParamSpace space(p);
  auto glp = lp::build_graph_lp(g, space);
  std::printf("Algorithm 1 LP (cf. Equation 6 of the paper):\n%s\n",
              glp.model.to_string().c_str());

  glp.model.set_var_lower(glp.param_vars[0], 500.0);
  const lp::SimplexSolver simplex;
  const auto sol = simplex.solve(glp.model);
  const auto range = simplex.bound_range(glp.model, sol, glp.param_vars[0]);
  std::printf("simplex with l >= 0.5 us:  T = %s (paper: 1.615 us), "
              "RC(l) = %.0f (paper: 1)\n",
              human_time_ns(sol.objective).c_str(),
              sol.reduced_cost[static_cast<std::size_t>(glp.param_vars[0])]);
  std::printf("feasibility range of l (SALBLow): [%s, %s]  "
              "(paper Fig. 16: 0.385 us)\n\n",
              human_time_ns(range.lo).c_str(),
              std::isfinite(range.hi) ? human_time_ns(range.hi).c_str()
                                      : "inf");

  const auto shared = std::make_shared<lp::LatencyParamSpace>(p);
  lp::ParametricSolver solver(g, shared);
  std::printf("piecewise T(L) over [0, 1 us] (Fig. 4c):\n");
  for (const auto& seg : solver.piecewise(0, 0.0, 1'000.0)) {
    std::printf("  L in [%8s, %8s]: T = %s + %.0f * (L - %s)\n",
                human_time_ns(seg.lo).c_str(),
                std::isfinite(seg.hi) ? human_time_ns(seg.hi).c_str() : "inf",
                human_time_ns(seg.value_at_lo).c_str(), seg.slope,
                human_time_ns(seg.lo).c_str());
  }
  const auto crit = solver.critical_values(0, 0.0, 1'000.0);
  std::printf("critical latency L_c = %s (paper: 0.385 us)\n\n",
              crit.empty() ? "none" : human_time_ns(crit[0]).c_str());

  const auto tol_model = lp::make_tolerance_model(glp, 0, 2'000.0);
  const auto tol_sol = simplex.solve(tol_model);
  std::printf("tolerance LP (max l s.t. t <= 2 us, Fig. 6): l* = %s "
              "(paper: 0.885 us)\n",
              human_time_ns(tol_sol.objective).c_str());
  std::printf("parametric solver agrees: %s\n",
              human_time_ns(solver.max_param_for_budget(0, 2'000.0)).c_str());
  return 0;
}
