// Solver ablation (§II-C discussion): google-benchmark microbenchmarks of
// the three ways to answer "what is T and λ_L at a given L":
//
//   * ParametricSolve  — LLAMP's exact parametric critical-path LP solve
//     (value + gradient + feasibility range in one pass),
//   * DiscreteEventSim — the LogGOPSim-style replay (value only; a second
//     traversal would be needed for λ_L),
//   * SimplexSolve     — the explicit Algorithm-1 LP through the dense
//     revised simplex (small graphs only; this is why the repo pairs the
//     general solver with the parametric one),
//   * ToleranceSearch  — the §II-D2 tolerance query, which replaces an
//     entire parameter sweep,
//   * GraphLpBuild     — cost of materializing the explicit LP.

#include <benchmark/benchmark.h>

#include <memory>

#include "apps/registry.hpp"
#include "lp/graph_lp.hpp"
#include "lp/parametric.hpp"
#include "lp/simplex.hpp"
#include "schedgen/schedgen.hpp"
#include "sim/simulator.hpp"

namespace {

using namespace llamp;

const loggops::Params kParams = loggops::NetworkConfig::cscs_testbed(5'000.0);

/// Graph sizes controlled by the benchmark range argument (iterations of
/// the CloverLeaf proxy: communication-heavy, structurally app-like).
graph::Graph make_graph(int scale_permille) {
  return schedgen::build_graph(apps::make_app_trace(
      "cloverleaf", 16, static_cast<double>(scale_permille) / 1000.0));
}

void BM_ParametricSolve(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const auto space = std::make_shared<lp::LatencyParamSpace>(kParams);
  lp::ParametricSolver solver(g, space);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(0, kParams.L).value);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_ParametricSolve)->Arg(100)->Arg(400)->Arg(1600);

void BM_DiscreteEventSim(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  sim::Simulator sim(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(kParams).makespan);
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_DiscreteEventSim)->Arg(100)->Arg(400)->Arg(1600);

void BM_SimplexSolve(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const lp::LatencyParamSpace space(kParams);
  const auto glp = lp::build_graph_lp(g, space);
  const lp::SimplexSolver solver;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.solve(glp.model).objective);
  }
  state.counters["rows"] = static_cast<double>(glp.model.num_constraints());
}
BENCHMARK(BM_SimplexSolve)->Arg(20)->Arg(50);

void BM_GraphLpBuild(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const lp::LatencyParamSpace space(kParams);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lp::build_graph_lp(g, space).model.num_vars());
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_GraphLpBuild)->Arg(400)->Arg(1600);

void BM_ToleranceSearch(benchmark::State& state) {
  const auto g = make_graph(static_cast<int>(state.range(0)));
  const auto space = std::make_shared<lp::LatencyParamSpace>(kParams);
  lp::ParametricSolver solver(g, space);
  const double budget = solver.solve(0, kParams.L).value * 1.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.max_param_for_budget(0, budget));
  }
  state.counters["vertices"] = static_cast<double>(g.num_vertices());
}
BENCHMARK(BM_ToleranceSearch)->Arg(400)->Arg(1600);

void BM_SchedgenBuild(benchmark::State& state) {
  const auto trace = apps::make_app_trace(
      "cloverleaf", 16, static_cast<double>(state.range(0)) / 1000.0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        schedgen::build_graph(trace).num_vertices());
  }
}
BENCHMARK(BM_SchedgenBuild)->Arg(400)->Arg(1600);

}  // namespace

BENCHMARK_MAIN();
