// Fig. 20: rank placement on ICON — default block mapping vs the Scotch-like
// volume-greedy baseline vs LLAMP's Algorithm 3.  The paper reports
// differences under 1% on ICON (its communication is already balanced);
// the harness prints the LP-predicted runtime of each mapping and a
// simulated "measured" runtime under the HLogGP wire matrices, plus an
// adversarial-start variant where Algorithm 3 has real room to improve.

#include <cstdio>
#include <numeric>

#include "apps/registry.hpp"
#include "core/placement.hpp"
#include "loggops/wire_model.hpp"
#include "schedgen/schedgen.hpp"
#include "sim/simulator.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace llamp;

  const auto params = loggops::NetworkConfig::piz_daint(8'500.0);
  const core::WireCost wire{};

  for (const int ranks : {32, 64}) {
    const auto g =
        schedgen::build_graph(apps::make_app_trace("icon", ranks, 0.25));
    const topo::FatTree ft(8);  // 128 nodes
    sim::Simulator sim(g);

    const auto simulate_mapping = [&](const std::vector<int>& placement) {
      const auto mats = topo::make_pairwise_matrices(params, ft, placement,
                                                     wire.l_wire,
                                                     wire.d_switch);
      const loggops::MatrixWire mw(ranks, mats.latency, mats.gap);
      return sim.run(params, mw).makespan;
    };

    const auto block = core::block_placement(g, params, ft, wire);
    const auto volume = core::volume_greedy_placement(g, params, ft, wire);
    const auto llamp_res = core::optimize_placement(g, params, ft, wire);

    std::printf("=== ICON proxy, %d ranks on %s ===\n", ranks,
                ft.name().c_str());
    Table t({"strategy", "LP-predicted", "simulated", "vs block"});
    const double base = simulate_mapping(block.placement);
    const auto row = [&](const std::string& name,
                         const core::PlacementResult& r) {
      const double simulated = simulate_mapping(r.placement);
      t.add_row({name, human_time_ns(r.predicted_runtime),
                 human_time_ns(simulated),
                 strformat("%+.2f%%", 100.0 * (simulated - base) / base)});
    };
    row("block (default)", block);
    row("Scotch-like (volume)", volume);
    row(strformat("LLAMP Alg. 3 (%d swaps)", llamp_res.swaps), llamp_res);
    std::printf("%s\n", t.to_string().c_str());

    // Adversarial start: neighbors deliberately scattered across pods.
    std::vector<int> adversarial(static_cast<std::size_t>(ranks));
    std::iota(adversarial.begin(), adversarial.end(), 0);
    for (int i = 0; i < ranks; ++i) {
      adversarial[static_cast<std::size_t>(i)] =
          (i * 37) % ft.nnodes();  // coprime stride = pod-scattered
    }
    // De-duplicate by mapping collisions to free nodes.
    std::vector<bool> used(static_cast<std::size_t>(ft.nnodes()), false);
    for (auto& node : adversarial) {
      while (used[static_cast<std::size_t>(node)]) {
        node = (node + 1) % ft.nnodes();
      }
      used[static_cast<std::size_t>(node)] = true;
    }
    const double adv_before =
        core::placement_runtime(g, params, ft, wire, adversarial);
    const auto fixed =
        core::optimize_placement(g, params, ft, wire, adversarial);
    std::printf("adversarial start: %s -> %s after %d swaps (%.2f%% "
                "improvement)\n\n",
                human_time_ns(adv_before).c_str(),
                human_time_ns(fixed.predicted_runtime).c_str(), fixed.swaps,
                100.0 * (adv_before - fixed.predicted_runtime) / adv_before);
  }
  std::printf("Paper's Fig. 20: all three strategies within ~1%% on ICON — "
              "placement has little to exploit\nwhen communication is "
              "already balanced; the adversarial rows show Algorithm 3 "
              "does work\nwhen the mapping is genuinely bad.\n");
  return 0;
}
