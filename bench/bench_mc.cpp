// Throughput harness for the stoch/ Monte Carlo engine: samples/sec on a
// representative grid (the same hpcg-64 configuration BENCH_solver.json
// pins), for the two engine paths —
//
//   * fast path: only L varies, one shared solver, per-worker workspaces;
//   * general path: o jitter + per-edge noise, one perturbed lowering per
//     sample;
//
// each single-threaded and at hardware concurrency.  Writes the committed
// perf-trajectory file BENCH_mc.json (numbers are informational in CI,
// never gating).
//
//   $ ./bench_mc [--samples=256] [--quick] [--out=BENCH_mc.json]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "schedgen/schedgen.hpp"
#include "stoch/mc.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

double run_ms(const llamp::graph::Graph& g, const llamp::loggops::Params& p,
              llamp::stoch::McSpec spec, int threads) {
  spec.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = llamp::stoch::run_mc(g, p, spec);
  const auto t1 = std::chrono::steady_clock::now();
  if (res.runtime.empty() || res.runtime[0].count() == 0) {
    std::fprintf(stderr, "bench_mc: empty result\n");
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const int samples =
      static_cast<int>(cli.get_int("samples", cli.get_bool("quick", false)
                                                  ? 32
                                                  : 256));
  const std::string out_path = cli.get("out", "BENCH_mc.json");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  const std::string app = "hpcg";
  const int ranks = 64;
  const double scale = 0.05;
  const auto g = schedgen::build_graph(apps::make_app_trace(app, ranks, scale));
  loggops::Params p = loggops::NetworkConfig::cscs_testbed();

  stoch::McSpec fast;
  fast.samples = samples;
  fast.L = stoch::Distribution::rel_normal(0.05);
  fast.delta_Ls = core::linear_grid(us(100.0), 11);
  fast.band_percents = {1.0, 2.0, 5.0};

  stoch::McSpec general = fast;
  general.o = stoch::Distribution::rel_normal(0.02);
  general.noise = {0.003, 0.0};

  std::printf("bench_mc: %s ranks=%d scale=%g  %zu vertices / %zu edges, "
              "%d samples x 11 ΔL points + 3 bands, hw=%d threads\n",
              app.c_str(), ranks, scale, g.num_vertices(), g.num_edges(),
              samples, hw);

  const double fast_1 = run_ms(g, p, fast, 1);
  const double fast_n = run_ms(g, p, fast, 0);
  const double gen_1 = run_ms(g, p, general, 1);
  const double gen_n = run_ms(g, p, general, 0);

  const auto rate = [&](double ms) { return 1e3 * samples / ms; };
  std::printf("fast path (L-only, shared solver):   1 thread %8.1f ms "
              "(%6.1f samples/s)   %d threads %8.1f ms (%6.1f samples/s)\n",
              fast_1, rate(fast_1), hw, fast_n, rate(fast_n));
  std::printf("general path (o + edge noise):       1 thread %8.1f ms "
              "(%6.1f samples/s)   %d threads %8.1f ms (%6.1f samples/s)\n",
              gen_1, rate(gen_1), hw, gen_n, rate(gen_n));

  std::ofstream os(out_path);
  os << strformat(
      "{\n"
      "  \"benchmark\": \"mc\",\n"
      "  \"config\": {\n"
      "    \"app\": \"%s\", \"ranks\": %d, \"scale\": %g,\n"
      "    \"graph_vertices\": %zu, \"graph_edges\": %zu,\n"
      "    \"samples\": %d, \"delta_l_points\": 11, \"bands\": 3,\n"
      "    \"hardware_threads\": %d\n"
      "  },\n"
      "  \"fast_path_L_only\": {\n"
      "    \"description\": \"shared solver, per-worker workspaces; only "
      "the sampled L moves\",\n"
      "    \"threads1_ms\": %.3f, \"threads1_samples_per_sec\": %.1f,\n"
      "    \"threadsN_ms\": %.3f, \"threadsN_samples_per_sec\": %.1f\n"
      "  },\n"
      "  \"general_path_edge_noise\": {\n"
      "    \"description\": \"per-sample perturbed-space lowering (o "
      "jitter + per-edge folded-normal noise)\",\n"
      "    \"threads1_ms\": %.3f, \"threads1_samples_per_sec\": %.1f,\n"
      "    \"threadsN_ms\": %.3f, \"threadsN_samples_per_sec\": %.1f\n"
      "  },\n"
      "  \"parallel_speedup\": {\"fast\": %.2f, \"general\": %.2f}\n"
      "}\n",
      app.c_str(), ranks, scale, g.num_vertices(), g.num_edges(), samples,
      hw, fast_1, rate(fast_1), fast_n, rate(fast_n), gen_1, rate(gen_1),
      gen_n, rate(gen_n), fast_1 / fast_n, gen_1 / gen_n);
  if (!os) {
    std::fprintf(stderr, "bench_mc: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
