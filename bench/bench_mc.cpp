// Throughput harness for the stoch/ Monte Carlo engine: samples/sec on a
// representative grid (the same hpcg-64 configuration BENCH_solver.json
// pins), for the three engine paths —
//
//   * fast path, batched: only L varies, one shared solver, lane groups of
//     lp::kBatchWidth samples per forward pass (the PR 8 kernel);
//   * fast path, scalar: same workload with spec.batch off — the
//     batched-vs-scalar comparison is the headline number;
//   * general path: o jitter + per-edge noise, one perturbed lowering per
//     sample, chunk-claimed scheduling;
//
// each single-threaded and at hardware concurrency.  Writes the committed
// perf-trajectory file BENCH_mc.json (numbers are informational in CI,
// never gating).  Every section records the thread counts it actually ran
// with, and parallel_speedup is null on 1-core hosts — a ~1.0 there would
// read as "parallelism doesn't help" when it was never exercised.
//
//   $ ./bench_mc [--samples=256] [--quick] [--out=BENCH_mc.json]

#include <chrono>
#include <cstdio>
#include <fstream>
#include <thread>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "stoch/mc.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"

namespace {

double run_ms(const llamp::graph::Graph& g, const llamp::loggops::Params& p,
              llamp::stoch::McSpec spec, int threads) {
  spec.threads = threads;
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = llamp::stoch::run_mc(g, p, spec);
  const auto t1 = std::chrono::steady_clock::now();
  if (res.runtime.empty() || res.runtime[0].count() == 0) {
    std::fprintf(stderr, "bench_mc: empty result\n");
    std::exit(1);
  }
  return std::chrono::duration<double, std::milli>(t1 - t0).count();
}

struct Section {
  double ms1 = 0.0;  ///< single-threaded wall time
  double msn = 0.0;  ///< wall time at hardware concurrency
};

}  // namespace

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const int samples =
      static_cast<int>(cli.get_int("samples", cli.get_bool("quick", false)
                                                  ? 32
                                                  : 256));
  const std::string out_path = cli.get("out", "BENCH_mc.json");
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  const std::string app = "hpcg";
  const int ranks = 64;
  const double scale = 0.05;
  const auto g = schedgen::build_graph(apps::make_app_trace(app, ranks, scale));
  loggops::Params p = loggops::NetworkConfig::cscs_testbed();

  stoch::McSpec fast;
  fast.samples = samples;
  fast.L = stoch::Distribution::rel_normal(0.05);
  fast.delta_Ls = core::linear_grid(us(100.0), 11);
  fast.band_percents = {1.0, 2.0, 5.0};

  stoch::McSpec fast_scalar = fast;
  fast_scalar.batch = false;

  stoch::McSpec general = fast;
  general.o = stoch::Distribution::rel_normal(0.02);
  general.noise = {0.003, 0.0};

  std::printf("bench_mc: %s ranks=%d scale=%g  %zu vertices / %zu edges, "
              "%d samples x 11 ΔL points + 3 bands, hw=%d threads, "
              "batch width %zu\n",
              app.c_str(), ranks, scale, g.num_vertices(), g.num_edges(),
              samples, hw, lp::kBatchWidth);

  const Section fast_b{run_ms(g, p, fast, 1), run_ms(g, p, fast, 0)};
  const Section fast_s{run_ms(g, p, fast_scalar, 1),
                       run_ms(g, p, fast_scalar, 0)};
  const Section gen{run_ms(g, p, general, 1), run_ms(g, p, general, 0)};

  const auto rate = [&](double ms) { return 1e3 * samples / ms; };
  const auto print_section = [&](const char* name, const Section& s) {
    std::printf("%s 1 thread %8.1f ms (%6.1f samples/s)   %d threads "
                "%8.1f ms (%6.1f samples/s)\n",
                name, s.ms1, rate(s.ms1), hw, s.msn, rate(s.msn));
  };
  print_section("fast path, batched (L-only):       ", fast_b);
  print_section("fast path, scalar  (L-only):       ", fast_s);
  print_section("general path (o + edge noise):     ", gen);
  std::printf("batched vs scalar (1 thread): %.2fx\n",
              fast_s.ms1 / fast_b.ms1);

  // Parallel speedup is only a statement about parallelism when there was
  // any: on a 1-core host the ratio is ~1.0 by construction, so emit null.
  const auto speedup = [&](const Section& s) -> std::string {
    if (hw <= 1) return "null";
    return strformat("%.2f", s.ms1 / s.msn);
  };
  const auto section_json = [&](const char* desc, const Section& s,
                                bool batched) {
    return strformat(
        "    \"description\": \"%s\",\n"
        "    \"hardware_threads\": %d,\n"
        "    \"batched\": %s, \"batch_width\": %zu,\n"
        "    \"threads1_ms\": %.3f, \"threads1_samples_per_sec\": %.1f,\n"
        "    \"threadsN_ms\": %.3f, \"threadsN_samples_per_sec\": %.1f\n",
        desc, hw, batched ? "true" : "false",
        batched ? lp::kBatchWidth : std::size_t{1}, s.ms1, rate(s.ms1),
        s.msn, rate(s.msn));
  };

  std::ofstream os(out_path);
  os << strformat(
      "{\n"
      "  \"benchmark\": \"mc\",\n"
      "  \"schema_version\": 2,\n"
      "  \"config\": {\n"
      "    \"app\": \"%s\", \"ranks\": %d, \"scale\": %g,\n"
      "    \"graph_vertices\": %zu, \"graph_edges\": %zu,\n"
      "    \"samples\": %d, \"delta_l_points\": 11, \"bands\": 3,\n"
      "    \"hardware_threads\": %d, \"batch_width\": %zu\n"
      "  },\n"
      "  \"fast_path_L_only_batched\": {\n%s  },\n"
      "  \"fast_path_L_only_scalar\": {\n%s  },\n"
      "  \"general_path_edge_noise\": {\n%s  },\n"
      "  \"batch_speedup_threads1\": %.2f,\n"
      "  \"parallel_speedup\": {\"fast_batched\": %s, \"fast_scalar\": %s, "
      "\"general\": %s}\n"
      "}\n",
      app.c_str(), ranks, scale, g.num_vertices(), g.num_edges(), samples,
      hw, lp::kBatchWidth,
      section_json("shared solver, lane groups of batch_width samples per "
                   "forward pass; only the sampled L moves",
                   fast_b, /*batched=*/true)
          .c_str(),
      section_json("shared solver, per-sample sweep + scalar band searches "
                   "(spec.batch = false)",
                   fast_s, /*batched=*/false)
          .c_str(),
      section_json("per-sample perturbed-space lowering (o jitter + "
                   "per-edge folded-normal noise), chunk-claimed scheduling",
                   gen, /*batched=*/false)
          .c_str(),
      fast_s.ms1 / fast_b.ms1, speedup(fast_b).c_str(),
      speedup(fast_s).c_str(), speedup(gen).c_str());
  if (!os) {
    std::fprintf(stderr, "bench_mc: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
