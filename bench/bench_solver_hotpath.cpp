#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "apps/registry.hpp"
#include "graph/costs.hpp"
#include "graph/graph.hpp"
#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"

// Hot-path benchmark for the parametric solver, and the writer of the
// repository's perf trajectory file BENCH_solver.json.
//
// "before" is a faithful copy of the PR-2-era solver hot path (per-edge
// heap-allocated Affine term vectors, four scratch vectors allocated per
// solve, one dense forward pass per sweep point), kept here so the baseline
// stays measurable forever.  "after" is the production ParametricSolver:
// flat SoA edge costs, caller-owned workspace, segment-walk sweeps.
//
//   bench/run_bench.sh [--quick]    # builds, runs, writes BENCH_solver.json

namespace llamp {
namespace {

constexpr const char* kApp = "hpcg";
constexpr int kRanks = 64;
constexpr double kScale = 0.05;
constexpr int kSweepPoints = 200;
constexpr double kSweepMaxNs = 100'000.0;  // 100 us of ΔL

// ---------------------------------------------------------------------------
// Legacy (seed) solver: the exact hot path this PR replaced.
// ---------------------------------------------------------------------------
class LegacySolver {
 public:
  LegacySolver(const graph::Graph& g,
               std::shared_ptr<const lp::ParamSpace> space)
      : g_(g), space_(std::move(space)) {
    const auto edges = g_.edges();
    edge_affine_.reserve(edges.size());
    for (const graph::Edge& e : edges) {
      edge_affine_.push_back(space_->edge_cost(g_, e));
    }
    vertex_cost_.reserve(g_.num_vertices());
    const loggops::Params& p = space_->params();
    for (graph::VertexId v = 0; v < g_.num_vertices(); ++v) {
      vertex_cost_.push_back(graph::vertex_cost(g_.vertex(v), p));
    }
    for (int k = 0; k < space_->num_params(); ++k) {
      base_.push_back(space_->base_value(k));
    }
  }

  double solve(int active, double value) const {
    static constexpr double kInfD = std::numeric_limits<double>::infinity();
    static constexpr std::uint32_t kNoEdge =
        std::numeric_limits<std::uint32_t>::max();
    const auto eps = [](double v) { return 1e-9 * (1.0 + std::fabs(v)); };

    std::vector<double> point = base_;
    point[static_cast<std::size_t>(active)] = value;
    const std::size_t n = g_.num_vertices();
    std::vector<double> finish(n, 0.0);
    std::vector<double> slope(n, 0.0);
    std::vector<std::uint32_t> arg_edge(n, kNoEdge);

    const auto edge_at = [&](std::uint32_t e) {
      double c = edge_affine_[e].constant;
      double s = 0.0;
      for (const lp::ParamTerm& t : edge_affine_[e].terms) {
        c += t.coeff * point[static_cast<std::size_t>(t.param)];
        if (t.param == active) s += t.coeff;
      }
      return std::pair(c, s);
    };

    std::vector<std::pair<double, double>> cands;
    for (const graph::VertexId v : g_.topo_order()) {
      const auto ins = g_.in_edges(v);
      if (ins.empty()) {
        finish[v] = vertex_cost_[v];
        continue;
      }
      cands.clear();
      double best_val = -kInfD;
      double best_slope = 0.0;
      std::uint32_t best_edge = kNoEdge;
      for (const auto& a : ins) {
        const auto [c, s] = edge_at(a.edge);
        const double cv = finish[a.other] + c;
        const double cs = slope[a.other] + s;
        cands.emplace_back(cv, cs);
        if (best_edge == kNoEdge || cv > best_val + eps(best_val) ||
            (cv > best_val - eps(best_val) && cs > best_slope)) {
          best_val = cv;
          best_slope = cs;
          best_edge = a.edge;
        }
      }
      finish[v] = best_val + vertex_cost_[v];
      slope[v] = best_slope;
      arg_edge[v] = best_edge;
    }
    double best = -kInfD;
    for (graph::VertexId v = 0; v < n; ++v) {
      if (g_.out_edges(v).empty()) best = std::max(best, finish[v]);
    }
    return best;
  }

 private:
  const graph::Graph& g_;
  std::shared_ptr<const lp::ParamSpace> space_;
  std::vector<lp::Affine> edge_affine_;
  std::vector<double> vertex_cost_;
  std::vector<double> base_;
};

// ---------------------------------------------------------------------------
// Shared fixtures.
// ---------------------------------------------------------------------------
struct Fixture {
  graph::Graph graph;
  loggops::Params params;
  std::shared_ptr<const lp::LatencyParamSpace> space;
  lp::ParametricSolver solver;
  LegacySolver legacy;
  std::vector<double> xs;  // absolute L values of the ΔL sweep grid

  Fixture()
      : graph(schedgen::build_graph(apps::make_app_trace(kApp, kRanks, kScale))),
        params(loggops::NetworkConfig::cscs_testbed()),
        space(std::make_shared<lp::LatencyParamSpace>(params)),
        solver(graph, space),
        legacy(graph, space) {
    for (int i = 0; i < kSweepPoints; ++i) {
      xs.push_back(params.L + kSweepMaxNs * i / (kSweepPoints - 1));
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void BM_LegacySolve(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.legacy.solve(0, f.params.L));
  }
}
BENCHMARK(BM_LegacySolve);

void BM_WorkspaceSolve(benchmark::State& state) {
  auto& f = fixture();
  lp::ParametricSolver::Workspace ws;
  (void)f.solver.solve(0, f.params.L, ws);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.solver.solve(0, f.params.L, ws).value);
  }
}
BENCHMARK(BM_WorkspaceSolve);

void BM_LegacyDenseSweep200(benchmark::State& state) {
  auto& f = fixture();
  for (auto _ : state) {
    double acc = 0.0;
    for (const double x : f.xs) acc += f.legacy.solve(0, x);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_LegacyDenseSweep200);

void BM_SegmentWalkSweep200(benchmark::State& state) {
  auto& f = fixture();
  lp::ParametricSolver::Workspace ws;
  std::vector<lp::ParametricSolver::SweepEval> out(f.xs.size());
  for (auto _ : state) {
    f.solver.sweep(0, f.xs, ws, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_SegmentWalkSweep200);

// ---------------------------------------------------------------------------
// Reporting: capture per-benchmark ns/iteration, then write the trajectory
// file alongside the usual console output.
// ---------------------------------------------------------------------------
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      // Portable across google-benchmark 1.7 (error_occurred) and 1.8+
      // (skipped): plain iteration runs are all this harness produces.
      if (run.run_type != Run::RT_Iteration) continue;
      ns_per_iter_[run.benchmark_name()] =
          1e9 * run.real_accumulated_time /
          static_cast<double>(std::max<std::int64_t>(run.iterations, 1));
    }
    ConsoleReporter::ReportRuns(runs);
  }

  double ns(const std::string& name) const {
    const auto it = ns_per_iter_.find(name);
    return it == ns_per_iter_.end() ? 0.0 : it->second;
  }

 private:
  std::map<std::string, double> ns_per_iter_;
};

long peak_rss_kb() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;  // KiB on Linux
}

int write_trajectory(const CaptureReporter& rep, const std::string& path) {
  auto& f = fixture();
  const double before_solve = rep.ns("BM_LegacySolve");
  const double after_solve = rep.ns("BM_WorkspaceSolve");
  const double before_sweep = rep.ns("BM_LegacyDenseSweep200");
  const double after_sweep = rep.ns("BM_SegmentWalkSweep200");
  // Work the walk actually performs: full passes at basis anchors (near-tie
  // micro-pieces included) and critical-path replays for interior points.
  lp::ParametricSolver::Workspace ws;
  std::vector<lp::ParametricSolver::SweepEval> evals(f.xs.size());
  lp::ParametricSolver::SweepStats stats;
  f.solver.sweep(0, f.xs, ws, evals.data(), &stats);
  // Distinct λ pieces of T on the range (the merged, paper-level view).
  const std::size_t segments =
      f.solver.piecewise(0, f.xs.front(), f.xs.back()).size();

  std::FILE* out = std::fopen(path.c_str(), "w");
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::fprintf(out,
               "{\n"
               "  \"benchmark\": \"solver_hotpath\",\n"
               "  \"schema_version\": 2,\n"
               "  \"config\": {\n"
               "    \"app\": \"%s\", \"ranks\": %d, \"scale\": %g,\n"
               "    \"graph_vertices\": %zu, \"graph_edges\": %zu,\n"
               "    \"sweep_points\": %d, \"sweep_dl_max_us\": %g,\n"
               "    \"segments_in_sweep_range\": %zu,\n"
               "    \"hardware_threads\": %u\n"
               "  },\n"
               "  \"before\": {\n"
               "    \"description\": \"seed hot path: per-edge heap term "
               "vectors, scratch allocated per solve, dense per-point "
               "sweep\",\n"
               "    \"ns_per_solve\": %.1f,\n"
               "    \"sweep_ms\": %.3f,\n"
               "    \"solves_per_sweep\": %d\n"
               "  },\n"
               "  \"after\": {\n"
               "    \"description\": \"flat SoA edge costs + caller-owned "
               "workspace (zero allocations per steady-state solve) + "
               "segment-walk sweep\",\n"
               "    \"ns_per_solve\": %.1f,\n"
               "    \"sweep_ms\": %.3f,\n"
               "    \"solves_per_sweep\": %zu,\n"
               "    \"replays_per_sweep\": %zu\n"
               "  },\n"
               "  \"speedup\": {\n"
               "    \"single_solve\": %.2f,\n"
               "    \"sweep_200pt\": %.2f\n"
               "  },\n"
               "  \"peak_rss_kb\": %ld\n"
               "}\n",
               kApp, kRanks, kScale, f.graph.num_vertices(),
               f.graph.num_edges(), kSweepPoints, kSweepMaxNs / 1'000.0,
               segments, std::thread::hardware_concurrency(), before_solve,
               before_sweep / 1e6, kSweepPoints,
               after_solve, after_sweep / 1e6, stats.anchor_solves,
               stats.replays,
               after_solve > 0.0 ? before_solve / after_solve : 0.0,
               after_sweep > 0.0 ? before_sweep / after_sweep : 0.0,
               peak_rss_kb());
  std::fclose(out);
  std::fprintf(stderr, "perf trajectory written to %s\n", path.c_str());
  return 0;
}

}  // namespace
}  // namespace llamp

int main(int argc, char** argv) {
  std::string out_path;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    const std::string a = argv[i];
    if (a.rfind("--out=", 0) == 0) {
      out_path = a.substr(6);
    } else {
      args.push_back(argv[i]);
    }
  }
  int argc2 = static_cast<int>(args.size());
  benchmark::Initialize(&argc2, args.data());
  if (benchmark::ReportUnrecognizedArguments(argc2, args.data())) return 1;
  llamp::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!out_path.empty()) return llamp::write_trajectory(reporter, out_path);
  return 0;
}
