// Fig. 11: impact of Fat Tree vs Dragonfly on ICON when every wire's
// latency is a decision variable.  The harness sweeps l_wire over the
// paper's FEC-motivated interval 274..424 ns, prints the forecast runtime
// under both topologies, and computes the per-wire latency at which ICON
// first degrades by 1% — the paper finds this beyond 3000 ns for both
// topologies, with Dragonfly marginally more tolerant (fewer hops).

#include <cmath>
#include <cstdio>
#include <memory>

#include "bench_support.hpp"
#include "lp/parametric.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/table.hpp"

int main() {
  using namespace llamp;

  const int ranks = 64;
  const auto g = schedgen::build_graph(apps::make_app_trace("icon", ranks, 0.3));
  const auto params = loggops::NetworkConfig::piz_daint(7'400.0);
  const double d_switch = 108.0;
  const auto placement = topo::identity_placement(ranks);

  const topo::FatTree fat_tree(16);       // three-tier, k = 16 (paper)
  const topo::Dragonfly dragonfly(8, 4, 8);  // g=8, a=4, p=8 (paper)

  struct TopoCase {
    const topo::Topology* topo;
    std::shared_ptr<lp::LinkClassParamSpace> space;
  };
  std::vector<TopoCase> cases;
  for (const topo::Topology* t :
       std::initializer_list<const topo::Topology*>{&fat_tree, &dragonfly}) {
    cases.push_back({t, std::make_shared<lp::LinkClassParamSpace>(
                            topo::make_wire_latency_space(
                                params, *t, placement, 274.0, d_switch))});
  }

  Table sweep({"l_wire [ns]", "T fat-tree", "T dragonfly", "lam ft",
               "lam df"});
  for (double lw = 274.0; lw <= 424.0 + 1e-9; lw += 30.0) {
    std::vector<std::string> row{strformat("%.0f", lw)};
    std::vector<std::string> lams;
    for (const auto& c : cases) {
      lp::ParametricSolver solver(g, c.space);
      const auto sol = solver.solve(0, lw);
      row.push_back(human_time_ns(sol.value));
      lams.push_back(strformat("%.0f", sol.gradient[0]));
    }
    row.insert(row.end(), lams.begin(), lams.end());
    sweep.add_row(row);
  }
  std::printf("ICON proxy, %d ranks; wire-latency sweep (FEC interval of "
              "the paper)\n\n%s\n", ranks, sweep.to_string().c_str());

  for (const auto& c : cases) {
    lp::ParametricSolver solver(g, c.space);
    const double T0 = solver.solve(0, 274.0).value;
    const double tol = solver.max_param_for_budget(0, T0 * 1.01);
    std::printf("%-28s 1%% degradation at l_wire = %s\n",
                c.topo->name().c_str(),
                std::isfinite(tol) ? human_time_ns(tol).c_str() : "unbounded");
  }
  std::printf("\nPaper's takeaway: both topologies tolerate far more than "
              "the anticipated FEC increase\n(per-link latency must exceed "
              "~3000 ns before ICON degrades 1%%), Dragonfly slightly "
              "ahead.\n");
  return 0;
}
