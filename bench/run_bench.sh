#!/bin/sh
# Run the solver hot-path benchmark and write the perf trajectory file
# BENCH_solver.json at the repository root.  Requires google-benchmark.
#
# Usage: bench/run_bench.sh [--quick] [--build-dir=DIR]
#   --quick       shorter measurement window (CI perf-smoke; numbers are
#                 informational there, never gating)
#   --build-dir   build tree to use/create (default: build)
set -eu

quick=0
build_dir=build
for arg in "$@"; do
  case "$arg" in
    --quick) quick=1 ;;
    --build-dir=*) build_dir="${arg#--build-dir=}" ;;
    *) echo "usage: bench/run_bench.sh [--quick] [--build-dir=DIR]" >&2
       exit 2 ;;
  esac
done

root="$(cd "$(dirname "$0")/.." && pwd)"
cd "$root"

if [ ! -x "$build_dir/bench_solver_hotpath" ]; then
  cmake -B "$build_dir" -S . -DCMAKE_BUILD_TYPE=Release \
    -DLLAMP_BUILD_TESTS=OFF -DLLAMP_BUILD_EXAMPLES=OFF
  cmake --build "$build_dir" -j --target bench_solver_hotpath
fi

set -- "--out=$root/BENCH_solver.json"
if [ "$quick" = 1 ]; then
  set -- "$@" --benchmark_min_time=0.05
fi

"$build_dir/bench_solver_hotpath" "$@"
echo "wrote $root/BENCH_solver.json"
