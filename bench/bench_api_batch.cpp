// Throughput harness for the api::Engine serving path: requests/sec on a
// repeated mixed workload, contrasting
//
//   * cold sessions — a fresh engine per request, the pre-api cost model
//     where every consumer rebuilt its graphs; and
//   * one warm session — a single engine serving the whole stream, graphs
//     resolved through the session cache (the `llamp batch` shape);
//
// each single-threaded and at hardware concurrency.  The speedup is the
// structural argument for the engine façade: steady-state requests skip
// trace generation + schedgen entirely.
//
// A second section benchmarks the solver cache specifically: repeated and
// nearby single-point queries against one large scenario (hpcg at 64
// ranks), cold (a fresh engine per query — graphs, lowerings, and anchors
// all rebuilt) vs warm (one engine in steady state, where a query is a
// cache hit plus a critical-path replay).  Every warm response is
// byte-compared against its cold counterpart in every output format, and
// the warm batch is additionally compared across thread counts — a
// mismatch is a hard failure (exit 1), because the caches must never be
// observable in the output bytes.  `--out=FILE` writes the point-query
// results as JSON (the committed BENCH_warm.json).
//
//   $ ./bench_api_batch [--rounds=8] [--quick] [--out=BENCH_warm.json]

#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/request.hpp"
#include "core/report.hpp"
#include "util/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::vector<llamp::api::Request> mixed_round() {
  using namespace llamp::api;
  std::vector<Request> reqs;
  for (const char* app : {"lulesh", "hpcg", "milc", "icon"}) {
    SweepRequest sweep;
    sweep.app.app = app;
    sweep.app.scale = 0.02;
    sweep.grid = {20.0, 5};
    sweep.threads = 1;
    reqs.emplace_back(sweep);

    AnalyzeRequest analyze;
    analyze.app.app = app;
    analyze.app.scale = 0.02;
    analyze.grid = {20.0, 3};
    analyze.threads = 1;
    reqs.emplace_back(analyze);
  }
  return reqs;
}

double requests_per_sec(std::size_t nreq, double ms) {
  return ms > 0.0 ? 1e3 * static_cast<double>(nreq) / ms : 0.0;
}

// --- solver warm-start section -------------------------------------------

// Repeated + nearby ΔL point queries against one hpcg-64 scenario: the
// request stream a long-lived session actually sees (the same operating
// point probed again, or probed a hair away).  Values in microseconds.
constexpr double kPointDlsUs[] = {20.0, 20.0, 20.5,  21.0, 20.0,   60.0,
                                  60.25, 20.0, 80.0, 20.125, 60.0, 80.5};

llamp::api::SweepRequest point_query(double dl_us) {
  llamp::api::SweepRequest req;
  req.app.app = "hpcg";
  req.app.ranks = 64;
  req.app.scale = 0.05;
  // The smallest grid the engine accepts: {0, dl} — the dl endpoint is the
  // point being queried, the 0 endpoint replays from the base anchor.
  req.grid = {dl_us, 2};
  req.threads = 1;
  return req;
}

// Every byte surface of a response, concatenated: the three render
// formats plus the JSONL machine line.
std::string response_bytes(const llamp::api::Response& res) {
  std::ostringstream all;
  for (const auto format : {llamp::core::OutputFormat::kTable,
                            llamp::core::OutputFormat::kCsv,
                            llamp::core::OutputFormat::kJson}) {
    llamp::api::render(res, format, all);
    all << '\n';
  }
  all << llamp::api::to_json_line(res) << '\n';
  return all.str();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const int rounds = static_cast<int>(
      cli.get_int("rounds", cli.get_bool("quick", false) ? 2 : 8));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  const std::vector<api::Request> round = mixed_round();
  std::vector<api::Request> stream;
  for (int r = 0; r < rounds; ++r) {
    stream.insert(stream.end(), round.begin(), round.end());
  }

  std::printf("api batch throughput: %zu requests (%d rounds x %zu), hw=%d\n",
              stream.size(), rounds, round.size(), hw);

  // Cold sessions: every request pays graph construction.
  {
    const auto t0 = Clock::now();
    for (const api::Request& req : stream) {
      api::Engine engine(api::Engine::Options{.threads = 1});
      (void)engine.run(req);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::printf("  cold sessions, 1 thread:  %7.1f ms  (%.1f req/s)\n", ms,
                requests_per_sec(stream.size(), ms));
  }

  // One warm session, serial and parallel.
  for (const int threads : {1, hw}) {
    api::Engine engine(api::Engine::Options{.threads = threads});
    // Warm the cache outside the timed window: steady-state serving is
    // the regime the engine exists for.
    (void)engine.run_batch(round, threads);
    const auto t0 = Clock::now();
    const auto outcomes = engine.run_batch(stream, threads);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::size_t failures = 0;
    for (const auto& o : outcomes) {
      if (!o.response) ++failures;
    }
    if (failures != 0) {
      std::fprintf(stderr, "bench_api_batch: %zu failed requests\n",
                   failures);
      return 1;
    }
    const auto stats = engine.cache_stats();
    std::printf(
        "  warm session, %2d thread%s %7.1f ms  (%.1f req/s, cache %zu "
        "built / %zu hits)\n",
        threads, threads == 1 ? ": " : "s:", ms,
        requests_per_sec(stream.size(), ms), stats.built, stats.hits);
  }

  // --- solver warm-start: repeated/nearby point queries, hpcg-64 ---------
  const int point_rounds = cli.get_bool("quick", false) ? 1 : 4;
  std::vector<api::Request> point_stream;
  for (int r = 0; r < point_rounds; ++r) {
    for (const double dl : kPointDlsUs) point_stream.emplace_back(point_query(dl));
  }
  std::printf("\nsolver warm-start: %zu point queries (hpcg ranks=64, "
              "repeated/nearby dl)\n", point_stream.size());

  // Cold: a fresh engine per query — graph, lowering, and anchor state all
  // rebuilt.  Responses are kept (rendered outside the timed window) as the
  // byte-equality reference for every warm pass below.
  std::vector<api::Response> cold_responses;
  cold_responses.reserve(point_stream.size());
  double cold_ms = 0.0;
  for (const api::Request& req : point_stream) {
    api::Engine engine(api::Engine::Options{.threads = 1});
    const auto t0 = Clock::now();
    cold_responses.emplace_back(engine.run(req));
    cold_ms +=
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
  }
  std::vector<std::string> cold_bytes;
  cold_bytes.reserve(cold_responses.size());
  for (const auto& res : cold_responses) cold_bytes.push_back(response_bytes(res));

  // Warm: one engine in steady state.  The untimed first pass pays the
  // builds; the timed pass is pure cache hit + anchor replay.
  api::Engine warm_engine(api::Engine::Options{.threads = hw});
  for (const api::Request& req : point_stream) (void)warm_engine.run(req);
  const auto warm_t0 = Clock::now();
  std::vector<api::Response> warm_responses;
  warm_responses.reserve(point_stream.size());
  for (const api::Request& req : point_stream) {
    warm_responses.emplace_back(warm_engine.run(req));
  }
  const double warm_ms =
      std::chrono::duration<double, std::milli>(Clock::now() - warm_t0).count();

  // Determinism wall: warm bytes == cold bytes, every surface, and the
  // parallel warm batch == both.
  for (std::size_t i = 0; i < point_stream.size(); ++i) {
    if (response_bytes(warm_responses[i]) != cold_bytes[i]) {
      std::fprintf(stderr,
                   "bench_api_batch: warm/cold byte mismatch on query %zu\n", i);
      return 1;
    }
  }
  const auto batch_outcomes = warm_engine.run_batch(point_stream, hw);
  for (std::size_t i = 0; i < batch_outcomes.size(); ++i) {
    if (!batch_outcomes[i].response ||
        response_bytes(*batch_outcomes[i].response) != cold_bytes[i]) {
      std::fprintf(
          stderr,
          "bench_api_batch: parallel warm byte mismatch on query %zu\n", i);
      return 1;
    }
  }

  const auto sstats = warm_engine.solver_cache_stats();
  const double cold_ns = 1e6 * cold_ms / static_cast<double>(point_stream.size());
  const double warm_ns = 1e6 * warm_ms / static_cast<double>(point_stream.size());
  const double speedup = warm_ns > 0.0 ? cold_ns / warm_ns : 0.0;
  std::printf("  cold (fresh engine/query): %11.1f ns/query\n", cold_ns);
  std::printf("  warm (steady-state):       %11.1f ns/query\n", warm_ns);
  std::printf("  speedup: %.1fx   (%s; bytes verified warm==cold, "
              "serial==parallel)\n", speedup,
              warm_engine.solver_cache_stats_string().c_str());

  const std::string out_path = cli.get("out", "");
  if (!out_path.empty()) {
    std::ofstream out(out_path);
    if (!out) {
      std::fprintf(stderr, "bench_api_batch: cannot write %s\n",
                   out_path.c_str());
      return 1;
    }
    out << "{\n"
        << "  \"benchmark\": \"api_warm_start\",\n"
        << "  \"schema_version\": 2,\n"
        << "  \"config\": {\n"
        << "    \"app\": \"hpcg\", \"ranks\": 64, \"scale\": 0.05,\n"
        << "    \"point_queries\": " << point_stream.size()
        << ", \"distinct_dl_values\": " << std::size(kPointDlsUs)
        << ", \"hardware_threads\": " << hw << "\n"
        << "  },\n"
        << "  \"cold\": {\n"
        << "    \"description\": \"fresh engine per query: graph build + "
           "lowering + dense anchor solve\",\n"
        << "    \"ns_per_query\": " << std::llround(cold_ns) << "\n"
        << "  },\n"
        << "  \"warm\": {\n"
        << "    \"description\": \"steady-state session: graph-cache hit + "
           "solver-cache hit + critical-path replay\",\n"
        << "    \"ns_per_query\": " << std::llround(warm_ns) << ",\n"
        << "    \"solver_cache\": {\"built\": " << sstats.built
        << ", \"hits\": " << sstats.hits
        << ", \"anchor_solves\": " << sstats.anchor_solves
        << ", \"replays\": " << sstats.replays << "}\n"
        << "  },\n"
        << "  \"speedup\": " << std::llround(speedup) << ",\n"
        << "  \"bytes_verified\": \"warm == cold on every output format and "
           "the JSONL line, serial and parallel\"\n"
        << "}\n";
    std::printf("  wrote %s\n", out_path.c_str());
  }
  return 0;
}
