// Throughput harness for the api::Engine serving path: requests/sec on a
// repeated mixed workload, contrasting
//
//   * cold sessions — a fresh engine per request, the pre-api cost model
//     where every consumer rebuilt its graphs; and
//   * one warm session — a single engine serving the whole stream, graphs
//     resolved through the session cache (the `llamp batch` shape);
//
// each single-threaded and at hardware concurrency.  The speedup is the
// structural argument for the engine façade: steady-state requests skip
// trace generation + schedgen entirely.
//
//   $ ./bench_api_batch [--rounds=8] [--quick]

#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "api/engine.hpp"
#include "api/request.hpp"
#include "util/cli.hpp"

namespace {

using Clock = std::chrono::steady_clock;

std::vector<llamp::api::Request> mixed_round() {
  using namespace llamp::api;
  std::vector<Request> reqs;
  for (const char* app : {"lulesh", "hpcg", "milc", "icon"}) {
    SweepRequest sweep;
    sweep.app.app = app;
    sweep.app.scale = 0.02;
    sweep.grid = {20.0, 5};
    sweep.threads = 1;
    reqs.emplace_back(sweep);

    AnalyzeRequest analyze;
    analyze.app.app = app;
    analyze.app.scale = 0.02;
    analyze.grid = {20.0, 3};
    analyze.threads = 1;
    reqs.emplace_back(analyze);
  }
  return reqs;
}

double requests_per_sec(std::size_t nreq, double ms) {
  return ms > 0.0 ? 1e3 * static_cast<double>(nreq) / ms : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const int rounds = static_cast<int>(
      cli.get_int("rounds", cli.get_bool("quick", false) ? 2 : 8));
  const int hw = static_cast<int>(std::thread::hardware_concurrency());

  const std::vector<api::Request> round = mixed_round();
  std::vector<api::Request> stream;
  for (int r = 0; r < rounds; ++r) {
    stream.insert(stream.end(), round.begin(), round.end());
  }

  std::printf("api batch throughput: %zu requests (%d rounds x %zu), hw=%d\n",
              stream.size(), rounds, round.size(), hw);

  // Cold sessions: every request pays graph construction.
  {
    const auto t0 = Clock::now();
    for (const api::Request& req : stream) {
      api::Engine engine(api::Engine::Options{.threads = 1});
      (void)engine.run(req);
    }
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::printf("  cold sessions, 1 thread:  %7.1f ms  (%.1f req/s)\n", ms,
                requests_per_sec(stream.size(), ms));
  }

  // One warm session, serial and parallel.
  for (const int threads : {1, hw}) {
    api::Engine engine(api::Engine::Options{.threads = threads});
    // Warm the cache outside the timed window: steady-state serving is
    // the regime the engine exists for.
    (void)engine.run_batch(round, threads);
    const auto t0 = Clock::now();
    const auto outcomes = engine.run_batch(stream, threads);
    const double ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
    std::size_t failures = 0;
    for (const auto& o : outcomes) {
      if (!o.response) ++failures;
    }
    if (failures != 0) {
      std::fprintf(stderr, "bench_api_batch: %zu failed requests\n",
                   failures);
      return 1;
    }
    const auto stats = engine.cache_stats();
    std::printf(
        "  warm session, %2d thread%s %7.1f ms  (%.1f req/s, cache %zu "
        "built / %zu hits)\n",
        threads, threads == 1 ? ": " : "s:", ms,
        requests_per_sec(stream.size(), ms), stats.built, stats.hits);
  }
  return 0;
}
