// Fig. 8: behaviour of the four latency-injector designs.  For the paper's
// two-send scenario (and larger message counts) the harness prints each
// design's sender and receiver completion expressions and the deviation
// from the intended ΔL-on-the-wire semantics.  Panel D (the paper's delay
// thread) must match panel A exactly; panels B and C accumulate one extra
// ΔL per in-flight message.

#include <cstdio>

#include "injector/designs.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace llamp;
  using injector::Design;
  using injector::Scenario;

  Scenario base;
  base.o = 1'000.0;
  base.base_latency = 3'000.0;
  base.bytes_cost = 500.0;

  const auto designs = {Design::kIntended, Design::kSenderDelay,
                        Design::kProgressThread, Design::kDelayThread};

  std::printf("=== Two eager sends (the paper's scenario), ΔL sweep ===\n");
  for (const double dl_us : {1.0, 10.0, 50.0}) {
    Scenario s = base;
    s.n_messages = 2;
    s.delta_L = us(dl_us);
    Table t({"design", "t_R0 (sender)", "t_R1 (receiver)",
             "deviation from intended"});
    for (const Design d : designs) {
      const auto out = injector::simulate(d, s);
      t.add_row({injector::to_string(d),
                 human_time_ns(out.sender_completion),
                 human_time_ns(out.receiver_completion),
                 human_time_ns(injector::deviation_from_intended(d, s))});
    }
    std::printf("ΔL = %s\n%s\n", human_time_ns(s.delta_L).c_str(),
                t.to_string().c_str());
  }

  std::printf("=== Error accumulation with message count (ΔL = 10 us) ===\n");
  Table acc({"messages", "B: sender-delay error", "C: progress-thread error",
             "D: delay-thread error"});
  for (const int n : {1, 2, 4, 8, 16, 32}) {
    Scenario s = base;
    s.n_messages = n;
    s.delta_L = us(10.0);
    acc.add_row({strformat("%d", n),
                 human_time_ns(injector::deviation_from_intended(
                     Design::kSenderDelay, s)),
                 human_time_ns(injector::deviation_from_intended(
                     Design::kProgressThread, s)),
                 human_time_ns(injector::deviation_from_intended(
                     Design::kDelayThread, s))});
  }
  std::printf("%s\n", acc.to_string().c_str());
  std::printf("Design D (per-message delay thread) is exact for every "
              "message count and ΔL,\nwhich is why the paper's validation "
              "uses it.\n");
  return 0;
}
