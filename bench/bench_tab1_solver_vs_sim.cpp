// Table I / Fig. 7: runtime of the LP-based analysis versus the
// LogGOPSim-style discrete-event simulation.  Following Appendix E, both
// sides answer the same question — the runtime at each latency in
// [3 us, 13 us] with a 1 us step (11 evaluations) — over the NPB suite,
// LULESH, and LAMMPS.  The paper reports Gurobi beating LogGOPSim by >6x;
// here the exact parametric LP solver plays Gurobi's role and the speedup
// shape (LP faster, uniformly across apps) is the reproduced result.

#include <cstdio>
#include <memory>

#include "bench_support.hpp"
#include "lp/parametric.hpp"
#include "sim/simulator.hpp"
#include "sim/trace_simulator.hpp"
#include "util/table.hpp"

int main() {
  using namespace llamp;

  struct Row {
    std::string app;
    int ranks;
    double scale;
  };
  const std::vector<Row> rows = {
      {"npb-bt", 16, 2.0}, {"npb-cg", 16, 2.0}, {"npb-ep", 16, 2.0},
      {"npb-ft", 16, 2.0}, {"npb-lu", 16, 2.0}, {"npb-mg", 16, 2.0},
      {"npb-sp", 16, 2.0}, {"lulesh", 27, 1.0}, {"lammps", 32, 1.5},
  };

  Table table({"application", "ranks", "events", "LLAMP (LP) [s]",
               "graph DES [s]", "trace DES [s]", "speedup vs graph DES"});
  for (const Row& row : rows) {
    const auto trace = apps::make_app_trace(row.app, row.ranks, row.scale);
    const auto g = schedgen::build_graph(trace);
    const auto params = loggops::NetworkConfig::cscs_testbed(5'000.0);

    // LLAMP: 11 LP solves (each also yields λ_L and the feasibility range,
    // which the simulator cannot produce at all — the paper's point).
    const auto space = std::make_shared<lp::LatencyParamSpace>(params);
    lp::ParametricSolver solver(g, space);
    double lp_checksum = 0.0;
    const bench::Stopwatch lp_watch;
    for (int i = 0; i <= 10; ++i) {
      lp_checksum += solver.solve(0, us(3.0 + i)).value;
    }
    const double lp_time = lp_watch.seconds();

    // LogGOPSim stand-in: 11 discrete-event graph replays.
    sim::Simulator sim(g);
    double sim_checksum = 0.0;
    const bench::Stopwatch sim_watch;
    for (int i = 0; i <= 10; ++i) {
      loggops::Params p = params;
      p.L = us(3.0 + i);
      sim_checksum += sim.run(p).makespan;
    }
    const double sim_time = sim_watch.seconds();

    // Operational (trace-driven) simulator: the independent implementation.
    sim::TraceSimulator op_sim(trace);
    double op_checksum = 0.0;
    const bench::Stopwatch op_watch;
    for (int i = 0; i <= 10; ++i) {
      loggops::Params p = params;
      p.L = us(3.0 + i);
      op_checksum += op_sim.run(p).makespan;
    }
    const double op_time = op_watch.seconds();
    if (std::abs(op_checksum - sim_checksum) >
        1e-6 * (1.0 + std::abs(sim_checksum))) {
      std::printf("WARNING: %s operational-sim mismatch\n", row.app.c_str());
    }

    if (std::abs(lp_checksum - sim_checksum) >
        1e-6 * (1.0 + std::abs(sim_checksum))) {
      std::printf("WARNING: %s runtime mismatch (LP %.6g vs DES %.6g)\n",
                  row.app.c_str(), lp_checksum, sim_checksum);
    }
    table.add_row({row.app, strformat("%d", row.ranks),
                   human_count(static_cast<double>(g.num_vertices())),
                   strformat("%.3f", lp_time), strformat("%.3f", sim_time),
                   strformat("%.3f", op_time),
                   strformat("%.1fx", sim_time / lp_time)});
  }
  std::printf("Latency sweep 3..13 us, 1 us step (Appendix E setup)\n\n%s\n",
              table.to_string().c_str());
  std::printf("Both columns compute identical runtimes (checked); only the "
              "LP additionally yields\nreduced costs (λ_L) and basis ranges "
              "per solve.\n");
  return 0;
}
