// Collective-algorithm case study (the §IV-1 workflow): trace the ICON
// proxy once, then re-schedule its Allreduce with different point-to-point
// algorithms and compare forecast runtime, latency sensitivity, and
// tolerance.  This is the "trace once, analyze many" capability the paper
// demonstrates in Fig. 10.
//
//   $ ./collective_study [--ranks=32] [--scale=0.3]

#include <cstdio>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "schedgen/schedgen.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 32));
  const double scale = cli.get_double("scale", 0.3);

  // One trace, reused for every schedule (ICON is traced once per node
  // configuration in the paper).
  const trace::Trace trace = apps::make_app_trace("icon", ranks, scale);
  const loggops::Params params = loggops::NetworkConfig::piz_daint(8'500.0);

  Table table({"allreduce", "events", "T(0)", "lambda_L@50us", "rho_L@50us",
               "1% tol ΔL", "5% tol ΔL"});
  for (const auto algo : {schedgen::AllreduceAlgo::kRecursiveDoubling,
                          schedgen::AllreduceAlgo::kRing,
                          schedgen::AllreduceAlgo::kReduceBcast}) {
    schedgen::Options opt;
    opt.allreduce = algo;
    const graph::Graph g = schedgen::build_graph(trace, opt);
    core::LatencyAnalyzer an(g, params);
    table.add_row({
        std::string(schedgen::to_string(algo)),
        human_count(static_cast<double>(g.num_vertices())),
        human_time_ns(an.base_runtime()),
        strformat("%.0f", an.lambda_L(us(50.0))),
        strformat("%.1f%%", 100.0 * an.rho_L(us(50.0))),
        human_time_ns(an.tolerance_delta(1.0)),
        human_time_ns(an.tolerance_delta(5.0)),
    });
  }
  std::printf("ICON proxy, %d ranks, Piz Daint parameters\n\n%s\n", ranks,
              table.to_string().c_str());
  std::printf("Ring allreduce chains P-1 dependent sends, so its lambda_L "
              "and tolerance degrade with scale\nexactly as Fig. 10 of the "
              "paper shows; recursive doubling needs only log2(P) rounds.\n");
  return 0;
}
