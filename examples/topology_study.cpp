// Network-topology case study (§IV-2 / Appendix H): express per-rank-pair
// latency as wire-class decision variables and ask how sensitive an
// application is to per-wire latency (e.g. future FEC overheads) under
// Fat Tree vs Dragonfly, plus the per-class tolerance breakdown on the
// Dragonfly (terminal / intra-group / inter-group wires).
//
//   $ ./topology_study [--ranks=64] [--scale=0.2]

#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/registry.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 64));
  const double scale = cli.get_double("scale", 0.2);

  const auto trace = apps::make_app_trace("icon", ranks, scale);
  const auto g = schedgen::build_graph(trace);
  const loggops::Params params = loggops::NetworkConfig::piz_daint(8'500.0);

  // Zambre et al. values used by the paper: 274 ns per wire, 108 ns per
  // switch.
  const double l_wire = 274.0;
  const double d_switch = 108.0;
  const auto placement = topo::identity_placement(ranks);

  const topo::FatTree fat_tree(16);
  const topo::Dragonfly dragonfly(8, 4, 8);

  std::printf("ICON proxy, %d ranks: per-wire latency sensitivity\n\n", ranks);
  Table table({"topology", "T(l_wire=274ns)", "dT/dl_wire",
               "1% degradation at l_wire"});
  for (const topo::Topology* topo :
       std::initializer_list<const topo::Topology*>{&fat_tree, &dragonfly}) {
    auto space = std::make_shared<lp::LinkClassParamSpace>(
        topo::make_wire_latency_space(params, *topo, placement, l_wire,
                                      d_switch));
    lp::ParametricSolver solver(g, space);
    const auto sol = solver.solve(0, l_wire);
    const double budget = sol.value * 1.01;
    const double tol = solver.max_param_for_budget(0, budget);
    table.add_row({topo->name(), human_time_ns(sol.value),
                   strformat("%.0f", sol.gradient[0]),
                   std::isfinite(tol) ? human_time_ns(tol) : "unbounded"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Dragonfly per-class analysis (Fig. 19): tolerance of each wire class
  // with the other two held at their base values.
  auto df_space = std::make_shared<lp::LinkClassParamSpace>(
      topo::make_dragonfly_class_space(params, dragonfly, placement, l_wire,
                                       l_wire, l_wire, d_switch));
  lp::ParametricSolver df_solver(g, df_space);
  const double T0 = df_solver.solve(0, l_wire).value;
  std::printf("Dragonfly wire classes (budget = 1%% over T = %s):\n",
              human_time_ns(T0).c_str());
  for (int k = 0; k < df_space->num_params(); ++k) {
    const double tol = df_solver.max_param_for_budget(k, T0 * 1.01);
    std::printf("  %-8s lambda = %5.0f   tolerance = %s\n",
                df_space->param_name(k).c_str(),
                df_solver.solve(k, l_wire).gradient[static_cast<std::size_t>(k)],
                std::isfinite(tol) ? human_time_ns(tol).c_str() : "unbounded");
  }
  return 0;
}
