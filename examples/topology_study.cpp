// Network-topology case study (§IV-2 / Appendix H): express per-rank-pair
// latency as wire-class decision variables and ask how sensitive an
// application is to per-wire latency (e.g. future FEC overheads) under
// Fat Tree vs Dragonfly, plus the per-class tolerance breakdown on the
// Dragonfly (terminal / intra-group / inter-group wires).
//
// The Fat Tree vs Dragonfly comparison runs through the core::Campaign
// engine — topology is just a grid axis, and the campaign builds one graph
// shared by both topology scenarios.  The Dragonfly per-class breakdown
// needs the multi-parameter space the engine does not expose, so it keeps a
// direct solver (and builds its own copy of the graph).
//
//   $ ./topology_study [--ranks=64] [--scale=0.2]

#include <cmath>
#include <cstdio>
#include <memory>

#include "apps/registry.hpp"
#include "core/campaign.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const int ranks = static_cast<int>(cli.get_int("ranks", 64));
  const double scale = cli.get_double("scale", 0.2);

  const loggops::Params params = loggops::NetworkConfig::piz_daint(8'500.0);

  // Zambre et al. values used by the paper: 274 ns per wire, 108 ns per
  // switch.
  core::TopologyOptions topo;
  topo.l_wire = 274.0;
  topo.d_switch = 108.0;
  topo.ft_radix = 16;
  topo.df_groups = 8;
  topo.df_routers = 4;
  topo.df_hosts = 8;

  core::CampaignSpec spec;
  spec.apps = {"icon"};
  spec.ranks = {ranks};
  spec.scales = {scale};
  spec.topologies = {"fat-tree", "dragonfly"};
  spec.configs = {{"daint", params, /*o_is_default=*/false}};
  spec.delta_Ls = {0.0};          // evaluate at the base per-wire latency
  spec.band_percents = {1.0};     // 1% degradation boundary per topology
  spec.topo = topo;
  core::Campaign campaign(spec);
  const auto results = campaign.run();

  std::printf("ICON proxy, %d ranks: per-wire latency sensitivity\n\n", ranks);
  const auto describe = [&](const std::string& t) {
    if (t == "fat-tree") return topo::FatTree(topo.ft_radix).name();
    return topo::Dragonfly(topo.df_groups, topo.df_routers, topo.df_hosts)
        .name();
  };
  Table table({"topology", "T(l_wire=274ns)", "dT/dl_wire",
               "1% degradation at l_wire"});
  for (const auto& res : results) {
    const auto& pt = res.points[0];
    const double tol = res.bands[0].tolerance_delta;  // over the base l_wire
    table.add_row({describe(res.scenario.topology), human_time_ns(pt.runtime),
                   strformat("%.0f", pt.lambda),
                   std::isfinite(tol) ? human_time_ns(topo.l_wire + tol)
                                      : "unbounded"});
  }
  std::printf("%s\n", table.to_string().c_str());

  // Dragonfly per-class analysis (Fig. 19): tolerance of each wire class
  // with the other two held at their base values.
  const auto g = schedgen::build_graph(apps::make_app_trace("icon", ranks, scale));
  const topo::Dragonfly dragonfly(topo.df_groups, topo.df_routers,
                                  topo.df_hosts);
  const auto placement = topo::identity_placement(ranks);
  auto df_space = std::make_shared<lp::LinkClassParamSpace>(
      topo::make_dragonfly_class_space(params, dragonfly, placement,
                                       topo.l_wire, topo.l_wire, topo.l_wire,
                                       topo.d_switch));
  lp::ParametricSolver df_solver(g, df_space);
  const double T0 = df_solver.solve(0, topo.l_wire).value;
  std::printf("Dragonfly wire classes (budget = 1%% over T = %s):\n",
              human_time_ns(T0).c_str());
  for (int k = 0; k < df_space->num_params(); ++k) {
    const double tol = df_solver.max_param_for_budget(k, T0 * 1.01);
    std::printf("  %-8s lambda = %5.0f   tolerance = %s\n",
                df_space->param_name(k).c_str(),
                df_solver.solve(k, topo.l_wire).gradient[static_cast<std::size_t>(k)],
                std::isfinite(tol) ? human_time_ns(tol).c_str() : "unbounded");
  }
  return 0;
}
