#!/usr/bin/env sh
# Walk every `llamp serve` endpoint and error class against a temporary
# daemon, then drain it with SIGTERM and check the clean exit.
#
#   examples/serve_requests.sh [path/to/llamp]
#
# Needs only POSIX sh and curl.  The daemon binds an ephemeral port
# (--port 0) and the script reads the port back from the readiness line,
# so it never collides with anything already listening.  Exit 0 means
# every expectation held; the first failure prints what went wrong.
set -eu

LLAMP="${1:-./build/llamp}"
LOG="$(mktemp)"
BODY='{"app": {"name": "lulesh", "ranks": 8, "scale": 0.05}, "grid": {"dl_max_us": 20, "points": 3}}'

fail() { echo "serve_requests: FAIL: $*" >&2; exit 1; }

# curl wrapper: status <expected> <curl args...> prints the body, fails on
# an unexpected HTTP status.
status() {
  want="$1"; shift
  got="$(curl -s -o "$LOG.body" -w '%{http_code}' "$@")" ||
    fail "curl $* did not complete"
  [ "$got" = "$want" ] || {
    cat "$LOG.body" >&2
    fail "expected HTTP $want, got $got ($*)"
  }
  cat "$LOG.body"
}

"$LLAMP" serve --port 0 > "$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true' EXIT

# Wait for the readiness line and extract the ephemeral port.
PORT=""
i=0
while [ $i -lt 100 ]; do
  PORT="$(sed -n 's/^llamp serve: listening on 127\.0\.0\.1:\([0-9]*\)$/\1/p' "$LOG")"
  [ -n "$PORT" ] && break
  kill -0 "$PID" 2>/dev/null || { cat "$LOG" >&2; fail "daemon exited early"; }
  i=$((i + 1)); sleep 0.1
done
[ -n "$PORT" ] || fail "no readiness line after 10s"
URL="http://127.0.0.1:$PORT"
echo "== daemon on $URL"

echo "== GET /healthz (build metadata + cache stats)"
status 200 "$URL/healthz" | grep -q '"status": "ok"' || fail "healthz body"

echo "== POST /v1/analyze (canonical batch request body)"
status 200 -d "$BODY" "$URL/v1/analyze" | grep -q '"op": "analyze"' ||
  fail "analyze body"

echo "== POST /v1/sweep (the \"op\" field is optional on HTTP routes)"
status 200 -d "$BODY" "$URL/v1/sweep" > /dev/null

echo "== GET /metrics (engine snapshot with scrape sequence)"
status 200 "$URL/metrics" | grep -q '"engine.metrics_seq"' || fail "metrics body"

echo "== error classes"
# 404 http: unknown route.
status 404 "$URL/v1/nope" | grep -q '"kind": "http"' || fail "404 kind"
# 405 http: wrong method on a known route.
status 405 "$URL/v1/analyze" > /dev/null
# 400 usage: body that does not parse as a request.
status 400 -d '{"app": 3}' "$URL/v1/analyze" | grep -q '"kind": "usage"' ||
  fail "400 kind"
# 400 usage: spelled "op" contradicting the path.
status 400 -d '{"op": "mc", "app": {"name": "lulesh"}}' "$URL/v1/analyze" \
  > /dev/null
# 413 http: Content-Length over the body limit, rejected from headers alone.
status 413 -H 'Content-Length: 99999999' -H 'Expect:' -d '' \
  "$URL/v1/analyze" > /dev/null

echo "== SIGTERM drain"
kill -TERM "$PID"
trap - EXIT
wait "$PID" || fail "daemon exited non-zero after SIGTERM"
grep -q '^llamp serve: drained' "$LOG" || { cat "$LOG" >&2; fail "no drain line"; }
tail -n 1 "$LOG"
rm -f "$LOG" "$LOG.body"
echo "serve_requests: OK"
