// Rank-placement study (Appendix J): compare the MPI default block mapping,
// a Scotch-like volume-greedy mapping, and LLAMP's sensitivity-guided
// iterative placement (Algorithm 3) on a Fat Tree.
//
//   $ ./placement_study [--app=icon] [--ranks=32] [--scale=0.2]

#include <cstdio>

#include "apps/registry.hpp"
#include "core/placement.hpp"
#include "schedgen/schedgen.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);
  const std::string app = cli.get("app", "icon");
  const int ranks = apps::supported_ranks(
      app, static_cast<int>(cli.get_int("ranks", 32)));
  const double scale = cli.get_double("scale", 0.2);

  const auto g = schedgen::build_graph(apps::make_app_trace(app, ranks, scale));
  const loggops::Params params = loggops::NetworkConfig::piz_daint(8'500.0);
  const topo::FatTree ft(8);  // 128 nodes
  const core::WireCost wire{};

  const auto block = core::block_placement(g, params, ft, wire);
  const auto volume = core::volume_greedy_placement(g, params, ft, wire);
  const auto llamp_placement =
      core::optimize_placement(g, params, ft, wire);

  Table table({"strategy", "predicted runtime", "vs block"});
  const auto pct = [&](double t) {
    return strformat("%+.2f%%", 100.0 * (t - block.predicted_runtime) /
                                    block.predicted_runtime);
  };
  table.add_row({"block (default)", human_time_ns(block.predicted_runtime),
                 "+0.00%"});
  table.add_row({"volume-greedy (Scotch-like)",
                 human_time_ns(volume.predicted_runtime),
                 pct(volume.predicted_runtime)});
  table.add_row({strformat("LLAMP Algorithm 3 (%d swaps)",
                           llamp_placement.swaps),
                 human_time_ns(llamp_placement.predicted_runtime),
                 pct(llamp_placement.predicted_runtime)});
  std::printf("%s proxy, %d ranks on %s\n\n%s\n", app.c_str(), ranks,
              ft.name().c_str(), table.to_string().c_str());
  std::printf("The paper's preliminary results (Fig. 20) likewise show "
              "sub-1%% differences on ICON:\nits communication is already "
              "well balanced, so placement has little to exploit.\n");
  return 0;
}
