// Quickstart: the complete LLAMP pipeline on the paper's running example
// (Fig. 4): record a trace through the virtual-MPI builder, convert it to an
// execution graph with Schedgen, and read runtime forecasts, latency
// sensitivity λ_L, critical latencies, and latency tolerance off the LP.
//
//   $ ./quickstart
//
// Expected landmarks (paper §II): L_c = 0.385 us, T(0.5 us) = 1.615 us,
// tolerance for a 2 us budget = 0.885 us.

#include <cstdio>

#include "core/analyzer.hpp"
#include "schedgen/schedgen.hpp"
#include "trace/builder.hpp"
#include "util/strings.hpp"

int main() {
  using namespace llamp;

  // 1. Record a two-rank MPI program: rank 0 computes 0.1 us and sends 4
  //    bytes; rank 1 computes 0.5 us, receives, and computes 1 us more.
  //    (The builder plays the role of liballprof.)
  trace::TraceBuilder tb(/*nranks=*/2, /*op_duration=*/0.0);
  tb.compute(0, 100.0);
  tb.send(0, /*peer=*/1, /*bytes=*/4);
  tb.compute(0, 1'000.0);
  tb.compute(1, 500.0);
  tb.recv(1, /*peer=*/0, /*bytes=*/4);
  tb.compute(1, 1'000.0);
  const trace::Trace trace = tb.finish();

  // 2. Schedgen: trace -> execution graph.
  const graph::Graph graph = schedgen::build_graph(trace);
  std::printf("execution graph: %s\n", graph.stats_string().c_str());

  // 3. Analyze under a LogGPS configuration (o = 0, G = 5 ns/B, base L = 0
  //    to match the paper's example).
  loggops::Params params;
  params.L = 0.0;
  params.o = 0.0;
  params.G = 5.0;
  core::LatencyAnalyzer analyzer(graph, params);

  std::printf("\nruntime forecast:\n");
  for (const double L : {0.0, 200.0, 385.0, 500.0, 800.0}) {
    std::printf("  T(L=%7s) = %s   lambda_L = %.0f\n",
                human_time_ns(L).c_str(),
                human_time_ns(analyzer.predict_runtime(L)).c_str(),
                analyzer.lambda_L(L));
  }

  const auto crit = analyzer.critical_latencies(0.0, 1'000.0);
  std::printf("\ncritical latencies in [0, 1 us]:");
  for (const double c : crit) std::printf(" %s", human_time_ns(c).c_str());
  std::printf("   (paper: 385 ns)\n");

  // 4. Latency tolerance: max L keeping runtime within a 2 us budget
  //    (= +33.3%% over the 1.5 us base runtime).
  const double tol = analyzer.tolerance(100.0 / 3.0);
  std::printf("tolerance for 2 us budget: %s   (paper: 885 ns)\n",
              human_time_ns(tol).c_str());

  // 5. The same questions at the usual 1/2/5%% thresholds.
  std::printf("\nx%% latency tolerance:\n");
  for (const double pct : {1.0, 2.0, 5.0}) {
    std::printf("  %.0f%%: L <= %s\n", pct,
                human_time_ns(analyzer.tolerance(pct)).c_str());
  }
  return 0;
}
