// llamp-style command-line analyzer: read a trace file (liballprof-like
// format, see src/trace/trace_io.hpp), build the execution graph, and print
// the full latency-tolerance report.  When no trace is given, a demo trace
// of the HPCG proxy is generated, saved, and analyzed so the tool is
// runnable out of the box.
//
//   $ ./trace_analyze [trace.txt] [--L=3000] [--o=5000] [--G=0.018]
//                     [--S=262144] [--allreduce=rd|ring]
//                     [--dl-max-us=100] [--points=11]

#include <cmath>
#include <cstdio>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "schedgen/schedgen.hpp"
#include "trace/profile.hpp"
#include "trace/trace_io.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int run(int argc, char** argv);

/// Toolchain errors must exit cleanly, not std::terminate: a malformed
/// trace file (TraceError, a UsageError) is exit 2 like any bad argument;
/// analysis failures are exit 1.
int main(int argc, char** argv) {
  try {
    return run(argc, argv);
  } catch (const llamp::UsageError& e) {
    std::fprintf(stderr, "trace_analyze: %s\n", e.what());
    return 2;
  } catch (const llamp::Error& e) {
    std::fprintf(stderr, "trace_analyze: %s\n", e.what());
    return 1;
  }
}

int run(int argc, char** argv) {
  using namespace llamp;
  const Cli cli(argc, argv);

  trace::Trace trace;
  if (cli.positional().empty()) {
    std::printf("no trace given; generating the HPCG proxy demo trace\n");
    trace = apps::make_app_trace("hpcg", 16, 0.2);
    trace::save_trace("hpcg_demo.trace", trace);
    std::printf("saved to hpcg_demo.trace\n\n");
  } else {
    trace = trace::load_trace(cli.positional().front());
  }

  loggops::Params params;
  params.L = cli.get_double("L", 3'000.0);
  params.o = cli.get_double("o", 5'000.0);
  params.G = cli.get_double("G", 0.018);
  params.S = static_cast<std::uint64_t>(cli.get_int("S", 256 * 1024));

  schedgen::Options opts;
  opts.rendezvous_threshold = params.S;
  if (cli.get("allreduce", "rd") == "ring") {
    opts.allreduce = schedgen::AllreduceAlgo::kRing;
  }

  std::printf("%s\n", trace::profile_trace(trace).to_string().c_str());
  const graph::Graph g = schedgen::build_graph(trace, opts);
  std::printf("%s\n", g.stats_string().c_str());

  core::ReportOptions report_opts;
  report_opts.sweep_max = us(cli.get_double("dl-max-us", 100.0));
  report_opts.sweep_points = static_cast<int>(cli.get_int("points", 11));
  const core::ToleranceReport report =
      core::make_report(g, params, report_opts);
  std::printf("%s", report.to_string().c_str());
  return 0;
}
