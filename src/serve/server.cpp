#include "serve/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::serve {
namespace {

void close_fd(int& fd) {
  if (fd >= 0) {
    ::close(fd);
    fd = -1;
  }
}

}  // namespace

Server::Server(Options opts, std::vector<Route> routes)
    : opts_(std::move(opts)), routes_(std::move(routes)) {}

Server::~Server() {
  request_shutdown();
  join();
  close_fd(listen_fd_);
  close_fd(wake_r_);
  close_fd(wake_w_);
}

void Server::start() {
  if (opts_.max_inflight < 0) {
    throw Error("serve: max_inflight must be >= 0");
  }
  int pipefd[2];
  if (::pipe2(pipefd, O_NONBLOCK | O_CLOEXEC) != 0) {
    throw Error("serve: cannot create wakeup pipe");
  }
  wake_r_ = pipefd[0];
  wake_w_ = pipefd[1];

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC,
                        0);
  if (listen_fd_ < 0) throw Error("serve: cannot create listen socket");
  const int one = 1;
  (void)::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(opts_.port);
  if (::inet_pton(AF_INET, opts_.host.c_str(), &addr.sin_addr) != 1) {
    close_fd(listen_fd_);
    throw UsageError("serve: bad bind address '" + opts_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof addr) != 0) {
    const int err = errno;
    close_fd(listen_fd_);
    throw Error(strformat("serve: cannot bind %s:%u (errno %d)",
                          opts_.host.c_str(), unsigned{opts_.port}, err));
  }
  if (::listen(listen_fd_, 128) != 0) {
    close_fd(listen_fd_);
    throw Error("serve: listen failed");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof bound;
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) ==
      0) {
    bound_port_ = ntohs(bound.sin_port);
  }

  executor_thread_ = std::thread([this] { executor_loop(); });
  io_thread_ = std::thread([this] { io_loop(); });
}

void Server::request_shutdown() {
  shutdown_requested_.store(true, std::memory_order_release);
  if (wake_w_ >= 0) {
    const char c = 's';
    // Async-signal-safe: one write(2); the pipe is non-blocking, and a
    // full pipe is fine (the loop is already awake).
    (void)!::write(wake_w_, &c, 1);
  }
}

void Server::join() {
  if (io_thread_.joinable()) io_thread_.join();
  if (executor_thread_.joinable()) executor_thread_.join();
}

Server::Stats Server::stats() const {
  Stats s;
  s.connections = stat_connections_.load(std::memory_order_relaxed);
  s.requests = stat_requests_.load(std::memory_order_relaxed);
  s.responses = stat_responses_.load(std::memory_order_relaxed);
  s.rejected = stat_rejected_.load(std::memory_order_relaxed);
  s.protocol_errors = stat_protocol_errors_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// Executor thread: queued routes, strictly one at a time in dispatch order.
// ---------------------------------------------------------------------------

void Server::executor_loop() {
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock,
                     [this] { return executor_stop_ || !jobs_.empty(); });
      if (jobs_.empty()) return;  // stop requested and fully drained
      job = std::move(jobs_.front());
      jobs_.pop_front();
    }
    Completion done;
    done.conn_id = job.conn_id;
    try {
      done.response = job.route->handler(job.request);
    } catch (const std::exception& e) {
      // Handlers map engine errors themselves; anything reaching here is
      // an internal failure, reported in-band without killing the daemon.
      done.response.status = 500;
      done.response.body = error_body("internal", e.what());
    }
    done.response.keep_alive = job.keep_alive;
    {
      const std::lock_guard<std::mutex> lock(completion_mutex_);
      completions_.push_back(std::move(done));
    }
    const char c = 'c';
    (void)!::write(wake_w_, &c, 1);
  }
}

// ---------------------------------------------------------------------------
// IO thread: the poll loop.
// ---------------------------------------------------------------------------

void Server::io_loop() {
  while (true) {
    // Drain entry: stop accepting, drop idle connections, finish the rest.
    if (!draining_ && shutdown_requested_.load(std::memory_order_acquire)) {
      draining_ = true;
      close_fd(listen_fd_);
      std::vector<std::uint64_t> idle;
      for (const auto& [id, conn] : conns_) {
        if (!conn.awaiting && conn.out.empty()) idle.push_back(id);
      }
      for (const std::uint64_t id : idle) close_conn(id);
    }
    if (draining_ && inflight_ == 0 && conns_.empty()) break;

    std::vector<pollfd> fds;
    std::vector<std::uint64_t> fd_conn;  // conns_ id per pollfd, 0 = none
    fds.push_back({wake_r_, POLLIN, 0});
    fd_conn.push_back(0);
    if (listen_fd_ >= 0) {
      fds.push_back({listen_fd_, POLLIN, 0});
      fd_conn.push_back(0);
    }
    for (const auto& [id, conn] : conns_) {
      short events = 0;
      const bool want_read =
          !conn.awaiting && !conn.stop_parsing && !draining_;
      if (want_read) events |= POLLIN;
      if (!conn.out.empty()) events |= POLLOUT;
      fds.push_back({conn.fd, events, 0});
      fd_conn.push_back(id);
    }

    if (::poll(fds.data(), fds.size(), -1) < 0) {
      if (errno == EINTR) continue;
      break;  // unrecoverable poll failure: fall through to teardown
    }

    // Wakeup pipe: drain it; the actual work (drain entry, completions)
    // is picked up below / on the next iteration.
    if ((fds[0].revents & POLLIN) != 0) {
      char buf[64];
      while (::read(wake_r_, buf, sizeof buf) > 0) {
      }
    }
    if (listen_fd_ >= 0 && fds.size() > 1 && fd_conn[1] == 0 &&
        fds[1].fd == listen_fd_ && (fds[1].revents & POLLIN) != 0) {
      accept_new_connections();
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      const std::uint64_t id = fd_conn[i];
      if (id == 0) continue;
      auto it = conns_.find(id);
      if (it == conns_.end()) continue;
      if ((fds[i].revents & (POLLERR | POLLNVAL)) != 0) {
        close_conn(id);
        continue;
      }
      if ((fds[i].revents & POLLOUT) != 0) {
        flush_writes(it->second);
        it = conns_.find(id);
        if (it == conns_.end()) continue;
      }
      if ((fds[i].revents & (POLLIN | POLLHUP)) != 0) {
        handle_readable(id, it->second);
      }
    }

    apply_completions();

    // Post-completion close pass: connections that finished their last
    // response (close_after_flush or drain) go away here.
    std::vector<std::uint64_t> done;
    for (const auto& [id, conn] : conns_) {
      if (!conn.out.empty() || conn.awaiting) continue;
      if (conn.close_after_flush || draining_) done.push_back(id);
    }
    for (const std::uint64_t id : done) close_conn(id);
  }

  // Teardown: the queue is empty (inflight_ == 0), so the executor can be
  // released; remaining sockets (poll-failure path) are dropped.
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    executor_stop_ = true;
  }
  queue_cv_.notify_all();
  std::vector<std::uint64_t> all;
  for (const auto& [id, conn] : conns_) all.push_back(id);
  for (const std::uint64_t id : all) close_conn(id);
  close_fd(listen_fd_);
}

void Server::accept_new_connections() {
  while (true) {
    const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                             SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or a transient accept failure: try again on poll
    }
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    Conn conn;
    conn.fd = fd;
    conns_.emplace(next_conn_id_++, std::move(conn));
    stat_connections_.fetch_add(1, std::memory_order_relaxed);
  }
}

void Server::handle_readable(std::uint64_t id, Conn& conn) {
  while (true) {
    char buf[65536];
    const ssize_t n = ::recv(conn.fd, buf, sizeof buf, 0);
    if (n > 0) {
      conn.in.append(buf, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {
      // Peer closed.  A mid-request disconnect (partial bytes, or a
      // response still pending) just drops the connection; nothing is
      // half-executed because dispatch only happens on complete requests.
      if (conn.awaiting || !conn.out.empty()) {
        conn.close_after_flush = true;
        conn.stop_parsing = true;
        return;
      }
      close_conn(id);
      return;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    close_conn(id);
    return;
  }
  parse_and_dispatch(id, conn);
}

void Server::parse_and_dispatch(std::uint64_t id, Conn& conn) {
  while (!conn.awaiting && !conn.stop_parsing && !conn.in.empty()) {
    ParseResult res = parse_http_request(conn.in, opts_.limits);
    if (res.status == ParseResult::Status::kNeedMore) return;
    if (res.status == ParseResult::Status::kError) {
      // Framing is unrecoverable after a protocol error: answer and close.
      stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      HttpResponse err;
      err.status = res.error_status;
      err.body = error_body("http", res.error_message);
      err.keep_alive = false;
      conn.stop_parsing = true;
      send_response(conn, std::move(err));
      return;
    }
    conn.in.erase(0, res.consumed);
    stat_requests_.fetch_add(1, std::memory_order_relaxed);
    if (route_request(id, conn, std::move(res.request))) {
      conn.awaiting = true;  // response arrives via the completion queue
      return;
    }
    // Inline response emitted; send_response may have closed the conn on
    // a write error, so re-check before parsing pipelined bytes.
    if (conns_.find(id) == conns_.end()) return;
  }
}

const Server::Route* Server::find_route(const std::string& method,
                                        const std::string& path,
                                        bool& path_known,
                                        std::string& allowed_methods) const {
  path_known = false;
  for (const Route& r : routes_) {
    if (r.path != path) continue;
    path_known = true;
    if (!allowed_methods.empty()) allowed_methods += ", ";
    allowed_methods += r.method;
    if (r.method == method) return &r;
  }
  return nullptr;
}

bool Server::route_request(std::uint64_t id, Conn& conn, HttpRequest&& req) {
  const bool keep_alive = req.keep_alive();
  bool path_known = false;
  std::string allowed;
  const Route* route = find_route(req.method, req.target, path_known, allowed);
  if (route == nullptr) {
    stat_protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse res;
    if (path_known) {
      res.status = 405;
      res.extra_headers.push_back("Allow: " + allowed);
      res.body = error_body(
          "http", strformat("method %s not allowed for %s",
                            req.method.c_str(), req.target.c_str()));
    } else {
      res.status = 404;
      res.body = error_body("http", "unknown path " + req.target);
    }
    res.keep_alive = keep_alive;
    send_response(conn, std::move(res));
    return false;
  }
  if (route->dispatch == Dispatch::kInline) {
    HttpResponse res;
    try {
      res = route->handler(req);
    } catch (const std::exception& e) {
      res = HttpResponse{};
      res.status = 500;
      res.body = error_body("internal", e.what());
    }
    res.keep_alive = keep_alive;
    send_response(conn, std::move(res));
    return false;
  }
  // Queued route: admission control first.
  if (inflight_ >= opts_.max_inflight) {
    stat_rejected_.fetch_add(1, std::memory_order_relaxed);
    HttpResponse res;
    res.status = 503;
    res.extra_headers.emplace_back("Retry-After: 1");
    res.body = error_body(
        "http", strformat("server is at its in-flight request limit (%d); "
                          "retry shortly",
                          opts_.max_inflight));
    res.keep_alive = keep_alive;
    send_response(conn, std::move(res));
    return false;
  }
  ++inflight_;
  conn.pending_keep_alive = keep_alive;
  Job job;
  job.conn_id = id;
  job.keep_alive = keep_alive;
  job.route = route;
  job.request = std::move(req);
  {
    const std::lock_guard<std::mutex> lock(queue_mutex_);
    jobs_.push_back(std::move(job));
  }
  queue_cv_.notify_one();
  return true;
}

void Server::send_response(Conn& conn, HttpResponse res) {
  if (!res.keep_alive) conn.close_after_flush = true;
  conn.out += serialize_response(res);
  stat_responses_.fetch_add(1, std::memory_order_relaxed);
  flush_writes(conn);
}

void Server::flush_writes(Conn& conn) {
  while (!conn.out.empty()) {
    const ssize_t n =
        ::send(conn.fd, conn.out.data(), conn.out.size(), MSG_NOSIGNAL);
    if (n > 0) {
      conn.out.erase(0, static_cast<std::size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
    // Write failure (peer vanished): drop the buffered bytes; the close
    // pass below reaps the connection.
    conn.out.clear();
    conn.close_after_flush = true;
    conn.stop_parsing = true;
    return;
  }
}

void Server::apply_completions() {
  std::deque<Completion> done;
  {
    const std::lock_guard<std::mutex> lock(completion_mutex_);
    done.swap(completions_);
  }
  for (Completion& c : done) {
    --inflight_;
    auto it = conns_.find(c.conn_id);
    if (it == conns_.end()) continue;  // client left before the answer
    Conn& conn = it->second;
    conn.awaiting = false;
    send_response(conn, std::move(c.response));
    // The connection may hold pipelined requests that were waiting on
    // this response.
    if (conns_.find(c.conn_id) != conns_.end() && !draining_) {
      parse_and_dispatch(c.conn_id, conn);
    }
  }
}

void Server::close_conn(std::uint64_t id) {
  const auto it = conns_.find(id);
  if (it == conns_.end()) return;
  close_fd(it->second.fd);
  conns_.erase(it);
}

}  // namespace llamp::serve
