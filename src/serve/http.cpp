#include "serve/http.hpp"

#include <algorithm>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::serve {
namespace {

/// Lowercase ASCII only: header names are token characters, and applying
/// tolower to arbitrary bytes would be locale-dependent.
std::string ascii_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return out;
}

std::string_view trim_ows(std::string_view s) {
  while (!s.empty() && (s.front() == ' ' || s.front() == '\t')) {
    s.remove_prefix(1);
  }
  while (!s.empty() && (s.back() == ' ' || s.back() == '\t')) {
    s.remove_suffix(1);
  }
  return s;
}

bool is_token_char(char c) {
  // RFC 9110 token characters; enough to validate methods and header names.
  if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
      (c >= '0' && c <= '9')) {
    return true;
  }
  return std::string_view("!#$%&'*+-.^_`|~").find(c) != std::string_view::npos;
}

ParseResult protocol_error(int status, std::string message) {
  ParseResult r;
  r.status = ParseResult::Status::kError;
  r.error_status = status;
  r.error_message = std::move(message);
  return r;
}

/// One header-section line: [begin, end) without its terminator, and the
/// offset just past the terminator.  Accepts CRLF and bare LF.
struct LineView {
  std::string_view text;
  std::size_t next = 0;
  bool complete = false;
};

LineView next_line(std::string_view in, std::size_t from) {
  LineView lv;
  const std::size_t nl = in.find('\n', from);
  if (nl == std::string_view::npos) return lv;
  std::size_t end = nl;
  if (end > from && in[end - 1] == '\r') --end;
  lv.text = in.substr(from, end - from);
  lv.next = nl + 1;
  lv.complete = true;
  return lv;
}

}  // namespace

const std::string* HttpRequest::header(std::string_view name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

bool HttpRequest::keep_alive() const {
  const std::string* conn = header("connection");
  if (conn != nullptr) {
    // Connection is a comma-separated option list; match options, not
    // substrings ("close" must not match a hypothetical "not-close").
    for (const auto& field : split(*conn, ',')) {
      const std::string opt = ascii_lower(trim(field));
      if (opt == "close") return false;
      if (opt == "keep-alive") return true;
    }
  }
  return version_minor >= 1;
}

ParseResult parse_http_request(std::string_view in, const HttpLimits& limits) {
  // Locate the end of the header section first: parsing decisions must
  // never depend on how the bytes were chunked across reads.
  std::size_t header_end = std::string_view::npos;  // offset past blank line
  {
    std::size_t from = 0;
    while (true) {
      const LineView lv = next_line(in, from);
      if (!lv.complete) break;
      if (lv.text.empty() && from > 0) {
        header_end = lv.next;
        break;
      }
      from = lv.next;
    }
  }
  if (header_end == std::string_view::npos) {
    if (in.size() > limits.max_header_bytes) {
      return protocol_error(400, "request header section too large");
    }
    return {};
  }
  if (header_end > limits.max_header_bytes) {
    return protocol_error(400, "request header section too large");
  }

  ParseResult result;
  HttpRequest& req = result.request;

  // Request line: METHOD SP TARGET SP HTTP/1.<minor>
  const LineView request_line = next_line(in, 0);
  {
    const std::string_view line = request_line.text;
    const std::size_t sp1 = line.find(' ');
    const std::size_t sp2 =
        sp1 == std::string_view::npos ? sp1 : line.find(' ', sp1 + 1);
    if (sp1 == std::string_view::npos || sp2 == std::string_view::npos ||
        line.find(' ', sp2 + 1) != std::string_view::npos) {
      return protocol_error(400, "malformed request line");
    }
    const std::string_view method = line.substr(0, sp1);
    const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string_view version = line.substr(sp2 + 1);
    if (method.empty() ||
        !std::all_of(method.begin(), method.end(), is_token_char)) {
      return protocol_error(400, "malformed request line");
    }
    if (target.empty() || target.front() != '/') {
      return protocol_error(400, "request target must be origin-form");
    }
    if (version == "HTTP/1.1") {
      req.version_minor = 1;
    } else if (version == "HTTP/1.0") {
      req.version_minor = 0;
    } else {
      return protocol_error(400, "unsupported HTTP version");
    }
    req.method = std::string(method);
    req.target = std::string(target);
  }

  // Header fields.
  std::size_t from = request_line.next;
  while (true) {
    const LineView lv = next_line(in, from);
    from = lv.next;
    if (lv.text.empty()) break;  // the blank separator line
    const std::string_view line = lv.text;
    const std::size_t colon = line.find(':');
    if (colon == std::string_view::npos || colon == 0) {
      return protocol_error(400, "malformed header field");
    }
    const std::string_view name = line.substr(0, colon);
    if (!std::all_of(name.begin(), name.end(), is_token_char)) {
      return protocol_error(400, "malformed header field");
    }
    const std::string_view value = trim_ows(line.substr(colon + 1));
    for (const char c : value) {
      if (static_cast<unsigned char>(c) < 0x20 && c != '\t') {
        return protocol_error(400, "control character in header value");
      }
    }
    req.headers.emplace_back(ascii_lower(name), std::string(value));
  }

  // Body framing: Content-Length only.
  if (req.header("transfer-encoding") != nullptr) {
    return protocol_error(400, "transfer codings are not supported "
                               "(send a Content-Length body)");
  }
  std::size_t content_length = 0;
  {
    const std::string* cl = nullptr;
    for (const auto& [k, v] : req.headers) {
      if (k != "content-length") continue;
      if (cl != nullptr && v != *cl) {
        return protocol_error(400, "conflicting Content-Length headers");
      }
      cl = &v;
    }
    if (cl != nullptr) {
      if (cl->empty() ||
          cl->find_first_not_of("0123456789") != std::string::npos ||
          cl->size() > 15) {
        return protocol_error(400, "malformed Content-Length");
      }
      content_length = static_cast<std::size_t>(std::stoull(*cl));
    } else if (req.method == "POST" || req.method == "PUT") {
      return protocol_error(400, "missing Content-Length");
    }
  }
  if (content_length > limits.max_body_bytes) {
    return protocol_error(
        413, strformat("request body of %zu bytes exceeds the %zu-byte "
                       "limit",
                       content_length, limits.max_body_bytes));
  }
  if (in.size() - header_end < content_length) return {};  // body incomplete

  req.body = std::string(in.substr(header_end, content_length));
  result.status = ParseResult::Status::kRequest;
  result.consumed = header_end + content_length;
  return result;
}

const char* status_reason(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 413: return "Content Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
  }
  return "Unknown";
}

std::string serialize_response(const HttpResponse& res) {
  std::string out =
      strformat("HTTP/1.1 %d %s\r\n", res.status, status_reason(res.status));
  out += "Content-Type: " + res.content_type + "\r\n";
  out += strformat("Content-Length: %zu\r\n", res.body.size());
  for (const std::string& h : res.extra_headers) out += h + "\r\n";
  out += res.keep_alive ? "Connection: keep-alive\r\n"
                        : "Connection: close\r\n";
  out += "\r\n";
  out += res.body;
  return out;
}

std::string error_body(const std::string& kind, const std::string& message) {
  return strformat("{\"error\": {\"kind\": \"%s\", \"message\": \"%s\"}}\n",
                   json_escape_string(kind).c_str(),
                   json_escape_string(message).c_str());
}

}  // namespace llamp::serve
