#pragma once

#include <vector>

#include "api/engine.hpp"
#include "serve/server.hpp"

namespace llamp::serve {

/// The route table binding a Server to one api::Engine session — the glue
/// between the wire layer and the analysis engine (DESIGN.md §8):
///
///   POST /v1/analyze | /v1/sweep | /v1/campaign | /v1/mc | /v1/topo |
///        /v1/place
///     Body: the canonical api request JSON (DESIGN.md §4d) with the "op"
///     field optional — the path names the op; a present "op" must match.
///     200 body: `to_json_line(result)` + '\n', byte-identical to the
///     corresponding `llamp batch` result payload.  UsageError and
///     analysis errors map to 400 with the batch surface's in-band
///     {"error": {"kind", "message"}} object; only non-toolchain
///     exceptions produce a 500.
///
///   GET /healthz   (inline: answered even while a campaign runs)
///     Version + build metadata (verbatim `llamp --version` fields),
///     engine uptime, and both cache statistics.
///
///   GET /metrics   (inline)
///     Engine::metrics_json() + '\n' — the canonical snapshot with
///     engine.uptime_ns and the monotonic engine.metrics_seq scrape
///     counter, so scrape pipelines can detect daemon restarts.
///
/// Determinism contract: for the six /v1/* routes, identical request
/// *body bytes* produce identical response *body bytes*, whatever the
/// connection interleaving, keep-alive reuse, engine pool size, or prior
/// cache state — the engine's repo-wide determinism wall, extended to the
/// wire (pinned by tests/test_serve.cpp).  /healthz and /metrics carry
/// uptime and timing values and are exempt.
std::vector<Server::Route> engine_routes(api::Engine& engine);

}  // namespace llamp::serve
