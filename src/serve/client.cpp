#include "serve/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::serve {
namespace {

std::string ascii_lower(std::string s) {
  for (char& c : s) {
    if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
  }
  return s;
}

}  // namespace

const std::string* Client::Result::header(const std::string& name) const {
  for (const auto& [k, v] : headers) {
    if (k == name) return &v;
  }
  return nullptr;
}

Client::Client(const std::string& host, std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd_ < 0) throw Error("client: cannot create socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd_);
    throw Error("client: bad address '" + host + "'");
  }
  if (::connect(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd_);
    throw Error(strformat("client: cannot connect to %s:%u (errno %d)",
                          host.c_str(), unsigned{port}, err));
  }
  const int one = 1;
  (void)::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  // A wedged server should fail the caller, not hang it.
  timeval timeout{};
  timeout.tv_sec = 30;
  (void)::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof timeout);
}

Client::~Client() {
  if (fd_ >= 0) ::close(fd_);
}

Client::Client(Client&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }

void Client::send_raw(const std::string& bytes) {
  std::size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + sent, bytes.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("client: send failed");
    sent += static_cast<std::size_t>(n);
  }
}

void Client::shutdown_send() { (void)::shutdown(fd_, SHUT_WR); }

std::string Client::read_until_close() {
  std::string out;
  char buf[16384];
  while (true) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  return out;
}

Client::Result Client::request(const std::string& method,
                               const std::string& path,
                               const std::string& body,
                               const std::vector<std::string>& extra_headers) {
  std::string req = method + " " + path + " HTTP/1.1\r\n";
  req += "Host: llamp\r\n";
  if (method == "POST" || !body.empty()) {
    req += strformat("Content-Length: %zu\r\n", body.size());
  }
  for (const std::string& h : extra_headers) req += h + "\r\n";
  req += "\r\n";
  req += body;
  send_raw(req);

  // Read the response: headers, then Content-Length body bytes.
  std::string in;
  char buf[16384];
  std::size_t header_end = std::string::npos;
  while (header_end == std::string::npos) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("client: connection closed before response");
    in.append(buf, static_cast<std::size_t>(n));
    header_end = in.find("\r\n\r\n");
  }
  header_end += 4;

  Result res;
  const std::string head = in.substr(0, header_end);
  const std::size_t line_end = head.find("\r\n");
  const std::string status_line = head.substr(0, line_end);
  if (status_line.size() < 12 || status_line.compare(0, 5, "HTTP/") != 0) {
    throw Error("client: malformed status line '" + status_line + "'");
  }
  res.status = std::atoi(status_line.c_str() + 9);

  std::size_t pos = line_end + 2;
  while (pos < head.size()) {
    const std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos || eol == pos) break;
    const std::string line = head.substr(pos, eol - pos);
    const std::size_t colon = line.find(':');
    if (colon != std::string::npos) {
      res.headers.emplace_back(ascii_lower(line.substr(0, colon)),
                               trim(line.substr(colon + 1)));
    }
    pos = eol + 2;
  }

  std::size_t content_length = 0;
  if (const std::string* cl = res.header("content-length")) {
    content_length = static_cast<std::size_t>(std::atoll(cl->c_str()));
  }
  res.body = in.substr(header_end);
  while (res.body.size() < content_length) {
    const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) throw Error("client: connection closed mid-body");
    res.body.append(buf, static_cast<std::size_t>(n));
  }
  if (res.body.size() > content_length) {
    throw Error("client: unexpected bytes after response body");
  }
  return res;
}

}  // namespace llamp::serve
