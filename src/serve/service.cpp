#include "serve/service.hpp"

#include <string>
#include <utility>

#include "api/request.hpp"
#include "util/build_info.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::serve {
namespace {

/// One /v1/* analysis handler: parse the body against the op named by the
/// path, run it on the engine, serve the canonical result line.  Runs on
/// the server's executor thread — the engine's single-request surface is
/// one-caller-at-a-time, and the executor is that one caller.
HttpResponse run_op(api::Engine& engine, const char* op,
                    const HttpRequest& req) {
  HttpResponse res;
  try {
    const api::Request parsed = api::parse_request_for_op(op, req.body);
    res.body = api::to_json_line(engine.run(parsed)) + '\n';
  } catch (const UsageError& e) {
    res.status = 400;
    res.body = error_body("usage", e.what());
  } catch (const Error& e) {
    // Analysis failures (unknown app, infeasible model) are request
    // problems too: the daemon stays up and tells the client in-band.
    res.status = 400;
    res.body = error_body("analysis", e.what());
  }
  return res;
}

std::string healthz_body(const api::Engine& engine) {
  const BuildInfo& b = build_info();
  const core::GraphCache::Stats gc = engine.cache_stats();
  const core::SolverCache::Stats sc = engine.solver_cache_stats();
  std::string out = "{\"status\": \"ok\"";
  out += ", \"version\": \"" + json_escape_string(b.version) + "\"";
  out += ", \"compiler\": \"" + json_escape_string(b.compiler) + "\"";
  out += ", \"build_type\": \"" + json_escape_string(b.build_type) + "\"";
  out += strformat(", \"uptime_ns\": %llu",
                   static_cast<unsigned long long>(engine.uptime_ns()));
  out += strformat(
      ", \"graph_cache\": {\"built\": %zu, \"hits\": %zu, \"bytes\": %zu}",
      gc.built, gc.hits, gc.bytes);
  out += strformat(
      ", \"solver_cache\": {\"built\": %zu, \"hits\": %zu, "
      "\"anchor_solves\": %zu, \"replays\": %zu, \"anchor_bytes\": %zu}",
      sc.built, sc.hits, sc.anchor_solves, sc.replays, sc.anchor_bytes);
  out += "}\n";
  return out;
}

}  // namespace

std::vector<Server::Route> engine_routes(api::Engine& engine) {
  std::vector<Server::Route> routes;
  for (const char* op :
       {"analyze", "sweep", "campaign", "mc", "topo", "place"}) {
    Server::Route r;
    r.method = "POST";
    r.path = std::string("/v1/") + op;
    r.dispatch = Server::Dispatch::kQueued;
    r.handler = [&engine, op](const HttpRequest& req) {
      return run_op(engine, op, req);
    };
    routes.push_back(std::move(r));
  }
  {
    Server::Route r;
    r.method = "GET";
    r.path = "/healthz";
    r.dispatch = Server::Dispatch::kInline;
    r.handler = [&engine](const HttpRequest&) {
      HttpResponse res;
      res.body = healthz_body(engine);
      return res;
    };
    routes.push_back(std::move(r));
  }
  {
    Server::Route r;
    r.method = "GET";
    r.path = "/metrics";
    r.dispatch = Server::Dispatch::kInline;
    r.handler = [&engine](const HttpRequest&) {
      HttpResponse res;
      res.body = engine.metrics_json() + '\n';
      return res;
    };
    routes.push_back(std::move(r));
  }
  return routes;
}

}  // namespace llamp::serve
