#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serve/http.hpp"

namespace llamp::serve {

/// `llamp serve`'s connection engine (DESIGN.md §8): a poll()-based
/// event loop on one IO thread plus one executor thread for analysis
/// requests.  The split is deliberate:
///
///  * the IO thread owns every socket — accepts, incremental request
///    parsing, response writes, keep-alive bookkeeping — and answers
///    *inline* routes (/healthz, /metrics) directly, so the daemon stays
///    observable while a long campaign runs;
///  * the executor thread runs *queued* routes (the /v1/* analysis
///    endpoints) strictly one at a time, in dispatch order.  Requests
///    execute on the shared api::Engine, whose own thread pool provides
///    the intra-request parallelism (`--threads`); serializing requests
///    is what makes the wire-level determinism contract trivial to
///    uphold — a response's bytes depend only on its request's bytes,
///    never on connection interleaving.
///
/// Admission control: at most `max_inflight` queued-route requests may be
/// dispatched-but-unanswered at once; the next one is rejected
/// immediately with 503 + Retry-After (the connection stays usable).
/// Per connection, requests are handled strictly serially: pipelined
/// bytes wait in the read buffer until the previous response is written.
///
/// Graceful drain: request_shutdown() (async-signal-safe; call it from a
/// SIGTERM/SIGINT handler) makes the loop stop accepting, close idle
/// connections, finish every dispatched request, flush every pending
/// response, and return from run().  The owner then flushes traces and
/// metrics and exits 0.
class Server {
 public:
  /// How a route runs: inline on the IO thread (cheap, must not block) or
  /// queued onto the executor (analysis work).
  enum class Dispatch { kInline, kQueued };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  struct Route {
    std::string method;  ///< "GET" | "POST"
    std::string path;    ///< exact-match target, e.g. "/v1/analyze"
    Dispatch dispatch = Dispatch::kQueued;
    Handler handler;
  };

  struct Options {
    /// Bind address.  The default stays loopback-only: exposing an
    /// analysis engine on all interfaces is an explicit decision.
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (query with port())
    int max_inflight = 64;   ///< dispatched-but-unanswered queued requests
    HttpLimits limits;
  };

  /// Monotonic counters, written by the IO thread, readable from any
  /// thread (relaxed atomics; side channel only, never response bytes).
  struct Stats {
    std::uint64_t connections = 0;     ///< accepted sockets
    std::uint64_t requests = 0;        ///< fully parsed requests
    std::uint64_t responses = 0;       ///< responses written (all statuses)
    std::uint64_t rejected = 0;        ///< 503 admission rejections
    std::uint64_t protocol_errors = 0; ///< 4xx from the parser / router
  };

  Server(Options opts, std::vector<Route> routes);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bind + listen + spawn the IO and executor threads.  Throws
  /// llamp::Error when the socket cannot be bound.
  void start();

  /// The bound port (after start(); useful with port 0).
  std::uint16_t port() const { return bound_port_; }

  /// Trigger graceful drain.  Async-signal-safe: one write(2) to the
  /// loop's wakeup pipe.  Idempotent.
  void request_shutdown();

  /// Block until the drain completes and both threads have joined.
  void join();

  Stats stats() const;

 private:
  struct Conn {
    int fd = -1;
    std::string in;   ///< unparsed request bytes
    std::string out;  ///< unwritten response bytes
    bool awaiting = false;          ///< queued request dispatched
    bool pending_keep_alive = true; ///< keep-alive of the awaited request
    bool close_after_flush = false;
    bool stop_parsing = false;  ///< poisoned by a protocol error
  };

  struct Job {
    std::uint64_t conn_id = 0;
    bool keep_alive = true;
    const Route* route = nullptr;
    HttpRequest request;
  };

  struct Completion {
    std::uint64_t conn_id = 0;
    HttpResponse response;
  };

  void io_loop();
  void executor_loop();
  void accept_new_connections();
  void handle_readable(std::uint64_t id, Conn& conn);
  void parse_and_dispatch(std::uint64_t id, Conn& conn);
  /// Route one parsed request: returns true when it was queued (the
  /// connection must wait), false when a response was emitted inline.
  bool route_request(std::uint64_t id, Conn& conn, HttpRequest&& req);
  void send_response(Conn& conn, HttpResponse res);
  void flush_writes(Conn& conn);
  void apply_completions();
  void close_conn(std::uint64_t id);
  const Route* find_route(const std::string& method, const std::string& path,
                          bool& path_known,
                          std::string& allowed_methods) const;

  Options opts_;
  std::vector<Route> routes_;

  int listen_fd_ = -1;
  int wake_r_ = -1;
  int wake_w_ = -1;
  std::uint16_t bound_port_ = 0;

  std::thread io_thread_;
  std::thread executor_thread_;
  std::atomic<bool> shutdown_requested_{false};
  bool draining_ = false;    // IO thread only
  int inflight_ = 0;         // IO thread only: dispatched, not yet answered
  std::uint64_t next_conn_id_ = 1;
  std::map<std::uint64_t, Conn> conns_;  // IO thread only

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Job> jobs_;
  bool executor_stop_ = false;

  std::mutex completion_mutex_;
  std::deque<Completion> completions_;

  std::atomic<std::uint64_t> stat_connections_{0};
  std::atomic<std::uint64_t> stat_requests_{0};
  std::atomic<std::uint64_t> stat_responses_{0};
  std::atomic<std::uint64_t> stat_rejected_{0};
  std::atomic<std::uint64_t> stat_protocol_errors_{0};
};

}  // namespace llamp::serve
