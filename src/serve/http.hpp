#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace llamp::serve {

/// The wire layer of `llamp serve` (DESIGN.md §8): a from-scratch HTTP/1.1
/// request parser and response serializer, dependency-free and fully
/// deterministic — the same input bytes always parse to the same request
/// and the same response always serializes to the same bytes (no Date
/// header, no connection-dependent framing).  Bytes arriving here come
/// from untrusted sockets, so every malformed construct maps to a precise
/// 4xx status instead of a crash, and both the header section and the
/// declared body length are hard-capped.

/// One parsed request.  Header names are lowercased at parse time (HTTP
/// header names are case-insensitive); values keep their bytes with
/// surrounding whitespace trimmed.
struct HttpRequest {
  std::string method;   ///< as sent (method names are case-sensitive)
  std::string target;   ///< request target, e.g. "/v1/analyze"
  int version_minor = 1;  ///< HTTP/1.<minor>: 0 or 1
  std::vector<std::pair<std::string, std::string>> headers;
  std::string body;

  /// First value of `name` (lowercase), or nullptr when absent.
  const std::string* header(std::string_view name) const;
  /// Keep-alive resolution: HTTP/1.1 defaults to keep-alive unless
  /// "Connection: close"; HTTP/1.0 defaults to close unless
  /// "Connection: keep-alive".
  bool keep_alive() const;
};

/// Incremental parse over a connection's read buffer.
struct ParseResult {
  enum class Status {
    kNeedMore,  ///< incomplete; keep reading (nothing consumed)
    kRequest,   ///< one full request parsed; `consumed` bytes eaten
    kError,     ///< protocol error; respond `error_status` and close
  };
  Status status = Status::kNeedMore;
  HttpRequest request;        ///< engaged when kRequest
  std::size_t consumed = 0;   ///< bytes of `in` holding the request
  int error_status = 0;       ///< 400 or 413 when kError
  std::string error_message;  ///< human detail for the error body
};

struct HttpLimits {
  std::size_t max_header_bytes = 16 * 1024;    ///< request line + headers
  std::size_t max_body_bytes = 4 * 1024 * 1024;  ///< declared Content-Length
};

/// Try to parse one request from the front of `in` (the connection's
/// accumulated read buffer).  Never consumes on kNeedMore, so callers
/// simply re-invoke as bytes arrive; on kRequest the caller erases
/// `consumed` bytes and re-invokes for pipelined requests.  Framing rules:
/// CRLF line endings, with bare LF tolerated (some test clients and
/// `printf | nc` senders use it); bodies are Content-Length only —
/// Transfer-Encoding of any kind is rejected (400), a POST without
/// Content-Length is rejected (400), and a Content-Length beyond
/// `limits.max_body_bytes` is rejected (413) *before* the body is read,
/// so an oversized upload never buffers.
ParseResult parse_http_request(std::string_view in, const HttpLimits& limits);

/// Reason phrase for the status codes the server emits (200, 400, 404,
/// 405, 413, 500, 503).
const char* status_reason(int status);

/// One response, serialized deterministically.
struct HttpResponse {
  int status = 200;
  std::string body;
  std::string content_type = "application/json";
  bool keep_alive = true;
  /// Extra headers, emitted verbatim in order ("Retry-After: 1",
  /// "Allow: POST").  Names and values must be header-safe.
  std::vector<std::string> extra_headers;
};

/// Serialize: status line, Content-Type, Content-Length, extra headers,
/// Connection, CRLF, body.  Identical inputs produce identical bytes.
std::string serialize_response(const HttpResponse& res);

/// The canonical in-band error body: {"error": {"kind": K, "message": M}}
/// plus a trailing newline, matching the batch surface's error objects.
std::string error_body(const std::string& kind, const std::string& message);

}  // namespace llamp::serve
