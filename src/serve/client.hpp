#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace llamp::serve {

/// A minimal blocking HTTP/1.1 client for driving a Server from tests and
/// the load-generator bench (bench/bench_serve.cpp).  One Client is one
/// TCP connection; issuing several requests on it exercises keep-alive.
/// Not a general client: it speaks exactly the subset the server emits
/// (Content-Length framing, no chunked encoding) and trusts the peer to
/// be the in-process daemon.
class Client {
 public:
  /// Connect (blocking, with a receive timeout so a wedged server fails a
  /// test instead of hanging it).  Throws llamp::Error on failure.
  Client(const std::string& host, std::uint16_t port);
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&&) = delete;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  struct Result {
    int status = 0;
    std::string body;
    std::vector<std::pair<std::string, std::string>> headers;  ///< lowercased names
    const std::string* header(const std::string& name) const;
  };

  /// Send one request and read its full response.  `extra_headers` are
  /// emitted verbatim (e.g. "Connection: close").  Throws llamp::Error on
  /// a connection failure or an unparseable response.
  Result request(const std::string& method, const std::string& path,
                 const std::string& body = "",
                 const std::vector<std::string>& extra_headers = {});
  Result get(const std::string& path) { return request("GET", path); }
  Result post(const std::string& path, const std::string& body) {
    return request("POST", path, body);
  }

  /// Escape hatches for malformed-input tests: push arbitrary bytes, read
  /// whatever comes back until the server closes, or just disconnect.
  void send_raw(const std::string& bytes);
  std::string read_until_close();
  void shutdown_send();  ///< half-close: no more request bytes will come

 private:
  int fd_ = -1;
};

}  // namespace llamp::serve
