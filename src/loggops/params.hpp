#pragma once

#include <cstdint>
#include <string>

#include "util/time.hpp"

namespace llamp::loggops {

/// Message protocol selected by the rendezvous threshold S of LogGPS.
enum class Protocol : std::uint8_t {
  kEager,       ///< messages smaller than S: sent immediately
  kRendezvous,  ///< messages >= S: REQ / RDMA-read / FIN handshake
};

/// The LogGPS parameter vector (a configuration θ in the paper's notation).
///
/// * L — maximum network latency between two processes [ns]
/// * o — CPU overhead per message [ns]
/// * g — gap between consecutive message injections on the NIC [ns]
/// * G — gap per byte, i.e. inverse bandwidth [ns/byte]
/// * O — CPU overhead per byte [ns/byte]; negligible in practice (§II-A),
///       retained for completeness and defaulted to 0
/// * S — rendezvous threshold [bytes]
///
/// The process count P of LogGOPS lives with the trace/graph, not here.
struct Params {
  TimeNs L = 3'000.0;       // 3.0 us, the paper's testbed measurement
  TimeNs o = 5'000.0;       // app-dependent; see NetworkConfig presets
  TimeNs g = 0.0;           // paper omits g because o > g on its systems
  double G = 0.018;         // ns per byte (~56 Gbit/s ConnectX-3)
  double O = 0.0;           // ns per byte of CPU overhead
  std::uint64_t S = 256 * 1024;  // 256 KiB

  /// Protocol for a message of `bytes` payload.
  Protocol protocol(std::uint64_t bytes) const {
    return bytes < S ? Protocol::kEager : Protocol::kRendezvous;
  }

  /// Serialization cost of the payload on the wire: (s-1)·G for s >= 1,
  /// matching LogGP where the first byte is accounted to L.
  TimeNs bytes_cost(std::uint64_t bytes) const {
    return bytes == 0 ? 0.0 : static_cast<double>(bytes - 1) * G;
  }

  /// CPU cost of handling one message end (o + s·O).
  TimeNs cpu_cost(std::uint64_t bytes) const {
    return o + static_cast<double>(bytes) * O;
  }

  /// Throws llamp::Error if any parameter is negative or S is zero.
  void validate() const;

  std::string to_string() const;
};

/// Named parameter presets matching the clusters in the paper.
struct NetworkConfig {
  /// CSCS 188-node testbed (§III-B): L = 3.0 us, G = 0.018 ns/B, S = 256 KiB.
  /// `o` defaults to 5 us (LULESH/HPCG-class value from Table II); callers
  /// override per application.
  static Params cscs_testbed(TimeNs o = 5'000.0);

  /// Piz Daint (§IV): L = 1.4 us, G = 0.013 ns/B, S = 256 KiB.  The per-scale
  /// o values in the paper are 8.5/7.4/6.03 us for 32/64/256 nodes.
  static Params piz_daint(TimeNs o = 8'500.0);

  /// Per-application o values measured in the paper's validation (Table II),
  /// keyed by app name ("lulesh", "hpcg", "milc", "icon", "lammps",
  /// "openmx", "cloverleaf") and node count (8/27/32/64); falls back to the
  /// 8-node value for unknown scales.
  static TimeNs table2_overhead(const std::string& app, int nodes);
};

/// Rendezvous completion formulas (Appendix B, Fig. 14/15).
///
/// With ts/tr the times the send/recv are issued and
/// tm = max(ts + o + L, tr + o) the handshake match instant, the receiver
/// completes after the RDMA read round-trip plus payload streaming and the
/// sender completes one overhead later (FIN processing):
///
///   t_r' = tm + 2L + (s-1)G + o
///   t_s' = t_r' + o
///
/// so a rendezvous message places up to three L terms on the critical path
/// (REQ + read-request + data), versus one for an eager message.
struct RendezvousCost {
  /// Latency hops contributed after the match point (read request + data).
  static constexpr int kPostMatchHops = 2;
  /// Latency hops on the sender-side path into the match point (the REQ).
  static constexpr int kReqHops = 1;
};

}  // namespace llamp::loggops
