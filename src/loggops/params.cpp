#include "loggops/params.hpp"

#include <cmath>
#include <map>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::loggops {

void Params::validate() const {
  // Non-finite values would sail through every downstream comparison (NaN
  // compares false against any bound) and surface only as "null" cells in
  // serialized output — reject them here, at the validation boundary every
  // ingestion path funnels through.
  if (!std::isfinite(L) || !std::isfinite(o) || !std::isfinite(g) ||
      !std::isfinite(G) || !std::isfinite(O)) {
    throw Error("loggops: non-finite parameter in " + to_string());
  }
  if (L < 0 || o < 0 || g < 0 || G < 0 || O < 0) {
    throw Error("loggops: negative parameter in " + to_string());
  }
  if (S == 0) {
    throw Error("loggops: rendezvous threshold S must be positive");
  }
}

std::string Params::to_string() const {
  return strformat("LogGPS{L=%.1fns o=%.1fns g=%.1fns G=%.4fns/B O=%.4fns/B S=%lluB}",
                   L, o, g, G, O, static_cast<unsigned long long>(S));
}

Params NetworkConfig::cscs_testbed(TimeNs o) {
  Params p;
  p.L = 3'000.0;
  p.o = o;
  p.g = 0.0;
  p.G = 0.018;
  p.S = 256 * 1024;
  return p;
}

Params NetworkConfig::piz_daint(TimeNs o) {
  Params p;
  p.L = 1'400.0;
  p.o = o;
  p.g = 0.0;
  p.G = 0.013;
  p.S = 256 * 1024;
  return p;
}

TimeNs NetworkConfig::table2_overhead(const std::string& app, int nodes) {
  // Values in microseconds from Table II of the paper.
  static const std::map<std::string, std::map<int, double>> kTable = {
      {"lulesh", {{8, 5.0}, {27, 5.0}, {64, 4.0}}},
      {"hpcg", {{8, 5.6}, {32, 5.0}, {64, 5.0}}},
      {"milc", {{8, 6.0}, {32, 6.0}, {64, 6.0}}},
      {"icon", {{8, 20.0}, {32, 16.0}, {64, 8.6}}},
      {"lammps", {{8, 32.4}, {32, 32.7}, {64, 31.7}}},
      {"openmx", {{8, 15.6}, {32, 10.9}}},
      {"cloverleaf", {{8, 6.1}}},
  };
  const auto app_it = kTable.find(app);
  if (app_it == kTable.end()) {
    throw Error("loggops: no Table II overhead for app '" + app + "'");
  }
  const auto& per_nodes = app_it->second;
  const auto n_it = per_nodes.find(nodes);
  const double us_val =
      n_it != per_nodes.end() ? n_it->second : per_nodes.begin()->second;
  return us(us_val);
}

}  // namespace llamp::loggops
