#pragma once

#include <vector>

#include "loggops/params.hpp"
#include "util/error.hpp"
#include "util/time.hpp"

namespace llamp::loggops {

/// Abstraction over "what does the wire between two ranks cost".  The
/// homogeneous LogGPS model uses one (L, G) pair for every rank pair; the
/// HLogGP extension (Appendix I) uses per-pair matrices; the topology models
/// (§IV-2, Appendix H) decompose latency into per-hop wire and switch terms.
/// Consumers (simulator, LP builders, parametric solver) only see this
/// interface, which is what makes those extensions drop-in.
class WireModel {
 public:
  virtual ~WireModel() = default;

  /// One-hop message latency L between ranks src and dst [ns].
  virtual TimeNs latency(int src, int dst) const = 0;

  /// Gap per byte G between ranks src and dst [ns/byte].
  virtual double gap_per_byte(int src, int dst) const = 0;
};

/// The plain LogGPS wire: uniform L and G from a parameter vector.
class UniformWire final : public WireModel {
 public:
  explicit UniformWire(const Params& p) : L_(p.L), G_(p.G) {}
  UniformWire(TimeNs L, double G) : L_(L), G_(G) {}

  TimeNs latency(int, int) const override { return L_; }
  double gap_per_byte(int, int) const override { return G_; }

 private:
  TimeNs L_;
  double G_;
};

/// HLogGP wire: explicit per-pair latency/gap matrices (row-major n x n),
/// e.g. derived from a topology + placement via topo::make_pairwise_matrices.
class MatrixWire final : public WireModel {
 public:
  MatrixWire(int nranks, std::vector<double> latency, std::vector<double> gap)
      : n_(nranks), latency_(std::move(latency)), gap_(std::move(gap)) {
    const auto need = static_cast<std::size_t>(nranks) *
                      static_cast<std::size_t>(nranks);
    if (latency_.size() != need || gap_.size() != need) {
      throw Error("MatrixWire: matrix size mismatch");
    }
  }

  TimeNs latency(int src, int dst) const override {
    return latency_[index(src, dst)];
  }
  double gap_per_byte(int src, int dst) const override {
    return gap_[index(src, dst)];
  }

 private:
  std::size_t index(int src, int dst) const {
    if (src < 0 || dst < 0 || src >= n_ || dst >= n_) {
      throw Error("MatrixWire: rank out of range");
    }
    return static_cast<std::size_t>(src) * static_cast<std::size_t>(n_) +
           static_cast<std::size_t>(dst);
  }

  int n_;
  std::vector<double> latency_;
  std::vector<double> gap_;
};

}  // namespace llamp::loggops
