#include "api/request.hpp"

#include <algorithm>
#include <cmath>
#include <initializer_list>
#include <limits>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::api {
namespace {

// ---------------------------------------------------------------------------
// Serialization.  One canonical field order per type; `", "` / `": "`
// separators matching the core/report emitters.
// ---------------------------------------------------------------------------

std::string quoted(const std::string& s) {
  return '"' + json_escape_string(s) + '"';
}

void append_app(std::string& out, const AppSpec& a) {
  out += "\"app\": {\"name\": " + quoted(a.app) +
         ", \"ranks\": " + std::to_string(a.ranks) +
         ", \"scale\": " + json_double(a.scale) +
         ", \"net\": " + quoted(a.net);
  if (a.L) out += ", \"L_ns\": " + json_double(*a.L);
  if (a.o) out += ", \"o_ns\": " + json_double(*a.o);
  if (a.G) out += ", \"G_ns_per_byte\": " + json_double(*a.G);
  if (a.S) out += ", \"S_bytes\": " + std::to_string(*a.S);
  out += '}';
}

void append_grid(std::string& out, const GridSpec& g) {
  out += "\"grid\": {\"dl_max_us\": " + json_double(g.dl_max_us) +
         ", \"points\": " + std::to_string(g.points) + '}';
}

void append_num_array(std::string& out, const char* key,
                      const std::vector<double>& values) {
  out += '"';
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += json_double(values[i]);
    if (i + 1 < values.size()) out += ", ";
  }
  out += ']';
}

void append_int_array(std::string& out, const char* key,
                      const std::vector<int>& values) {
  out += '"';
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += std::to_string(values[i]);
    if (i + 1 < values.size()) out += ", ";
  }
  out += ']';
}

void append_str_array(std::string& out, const char* key,
                      const std::vector<std::string>& values) {
  out += '"';
  out += key;
  out += "\": [";
  for (std::size_t i = 0; i < values.size(); ++i) {
    out += quoted(values[i]);
    if (i + 1 < values.size()) out += ", ";
  }
  out += ']';
}

std::string json_of(const AnalyzeRequest& r, const char* op) {
  std::string out = "{\"op\": \"";
  out += op;
  out += "\", ";
  append_app(out, r.app);
  out += ", ";
  append_grid(out, r.grid);
  out += ", \"threads\": " + std::to_string(r.threads) + '}';
  return out;
}

std::string json_of(const McRequest& r) {
  std::string out = "{\"op\": \"mc\", ";
  append_app(out, r.app);
  out += ", ";
  append_grid(out, r.grid);
  out += ", \"samples\": " + std::to_string(r.samples);
  out += ", \"seed\": " + std::to_string(r.seed);
  if (!r.dist_L.empty()) out += ", \"dist_L\": " + quoted(r.dist_L);
  if (!r.dist_o.empty()) out += ", \"dist_o\": " + quoted(r.dist_o);
  if (!r.dist_G.empty()) out += ", \"dist_G\": " + quoted(r.dist_G);
  out += ", \"sigma_L\": " + json_double(r.sigma_L);
  out += ", \"sigma_o\": " + json_double(r.sigma_o);
  out += ", \"sigma_G\": " + json_double(r.sigma_G);
  out += ", \"edge_sigma\": " + json_double(r.edge_sigma);
  out += ", \"edge_bias\": " + json_double(r.edge_bias);
  out += ", ";
  append_num_array(out, "bands", r.bands);
  out += ", \"threads\": " + std::to_string(r.threads) + '}';
  return out;
}

std::string json_of(const CampaignRequest& r) {
  std::string out = "{\"op\": \"campaign\", ";
  append_str_array(out, "apps", r.apps);
  out += ", ";
  append_int_array(out, "ranks", r.ranks);
  out += ", ";
  append_num_array(out, "scales", r.scales);
  out += ", ";
  append_str_array(out, "topologies", r.topologies);
  out += ", ";
  append_str_array(out, "nets", r.nets);
  if (!r.L_list.empty()) {
    out += ", ";
    append_str_array(out, "L_list", r.L_list);
  }
  if (!r.o_list.empty()) {
    out += ", ";
    append_str_array(out, "o_list", r.o_list);
  }
  if (!r.G_list.empty()) {
    out += ", ";
    append_str_array(out, "G_list", r.G_list);
  }
  if (r.S) out += ", \"S_bytes\": " + std::to_string(*r.S);
  out += ", ";
  append_grid(out, r.grid);
  out += strformat(
      ", \"topo\": {\"l_wire_ns\": %s, \"d_switch_ns\": %s, "
      "\"ft_radix\": %d, \"df_groups\": %d, \"df_routers\": %d, "
      "\"df_hosts\": %d}",
      json_double(r.topo.l_wire).c_str(), json_double(r.topo.d_switch).c_str(),
      r.topo.ft_radix, r.topo.df_groups, r.topo.df_routers, r.topo.df_hosts);
  out += ", \"mc_samples\": " + std::to_string(r.mc_samples);
  out += ", \"seed\": " + std::to_string(r.seed);
  out += ", \"mc_sigma_L\": " + json_double(r.mc_sigma_L);
  out += ", \"mc_sigma_o\": " + json_double(r.mc_sigma_o);
  out += ", \"mc_sigma_G\": " + json_double(r.mc_sigma_G);
  out += ", \"mc_edge_sigma\": " + json_double(r.mc_edge_sigma);
  out += ", \"mc_edge_bias\": " + json_double(r.mc_edge_bias);
  if (!r.probe.empty()) {
    out += ", \"probe\": " + quoted(r.probe);
    out += ", \"probe_runs\": " + std::to_string(r.probe_runs);
    out += ", \"noise_sigma\": " + json_double(r.noise_sigma);
  }
  out += ", \"threads\": " + std::to_string(r.threads) + '}';
  return out;
}

std::string json_of(const TopoRequest& r) {
  std::string out = "{\"op\": \"topo\", ";
  append_app(out, r.app);
  out += strformat(
      ", \"l_wire_ns\": %s, \"d_switch_ns\": %s, \"ft_radix\": %d, "
      "\"df_groups\": %d, \"df_routers\": %d, \"df_hosts\": %d}",
      json_double(r.l_wire).c_str(), json_double(r.d_switch).c_str(),
      r.ft_radix, r.df_groups, r.df_routers, r.df_hosts);
  return out;
}

std::string json_of(const PlaceRequest& r) {
  std::string out = "{\"op\": \"place\", ";
  append_app(out, r.app);
  out += strformat(
      ", \"l_wire_ns\": %s, \"d_switch_ns\": %s, \"ft_radix\": %d, "
      "\"max_rounds\": %d}",
      json_double(r.l_wire).c_str(), json_double(r.d_switch).c_str(),
      r.ft_radix, r.max_rounds);
  return out;
}

// ---------------------------------------------------------------------------
// Parsing.  Every object level carries an explicit key allowlist; a field
// outside it is a UsageError, mirroring the CLI's typo'd-flag stance.
// ---------------------------------------------------------------------------

/// Checked view over one JSON object.
class Obj {
 public:
  Obj(const JsonValue& v, std::string ctx) : v_(v), ctx_(std::move(ctx)) {
    (void)v_.members(ctx_);  // raises if not an object
  }

  /// Reject members outside `keys`.
  void allow(std::initializer_list<std::string_view> keys) const {
    for (const auto& [k, val] : v_.members(ctx_)) {
      if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
        throw UsageError(strformat("json: unknown field \"%s\" in %s",
                                   k.c_str(), ctx_.c_str()));
      }
    }
  }

  bool has(std::string_view key) const { return v_.find(key) != nullptr; }
  const JsonValue* find(std::string_view key) const { return v_.find(key); }

  std::string field(std::string_view key) const {
    return ctx_ + "." + std::string(key);
  }

  double number(std::string_view key, double fallback) const {
    const JsonValue* v = v_.find(key);
    return v ? v->as_number(field(key)) : fallback;
  }

  int integer(std::string_view key, int fallback) const {
    const JsonValue* v = v_.find(key);
    return v ? to_int(*v, field(key)) : fallback;
  }

  std::uint64_t unsigned64(std::string_view key, std::uint64_t fallback) const {
    const JsonValue* v = v_.find(key);
    return v ? v->as_unsigned(field(key)) : fallback;
  }

  std::string string(std::string_view key, const std::string& fallback) const {
    const JsonValue* v = v_.find(key);
    return v ? v->as_string(field(key)) : fallback;
  }

  std::vector<std::string> strings(std::string_view key,
                                   std::vector<std::string> fallback) const {
    const JsonValue* v = v_.find(key);
    if (!v) return fallback;
    std::vector<std::string> out;
    for (const JsonValue& e : v->as_array(field(key))) {
      out.push_back(e.as_string(field(key) + "[]"));
    }
    return out;
  }

  std::vector<int> integers(std::string_view key,
                            std::vector<int> fallback) const {
    const JsonValue* v = v_.find(key);
    if (!v) return fallback;
    std::vector<int> out;
    for (const JsonValue& e : v->as_array(field(key))) {
      out.push_back(to_int(e, field(key) + "[]"));
    }
    return out;
  }

  std::vector<double> numbers(std::string_view key,
                              std::vector<double> fallback) const {
    const JsonValue* v = v_.find(key);
    if (!v) return fallback;
    std::vector<double> out;
    for (const JsonValue& e : v->as_array(field(key))) {
      out.push_back(e.as_number(field(key) + "[]"));
    }
    return out;
  }

  /// A list of numbers whose *spelling* matters (the campaign override
  /// axes name config variants after the user's text): JSON strings are
  /// kept verbatim, JSON numbers take their shortest round-trip form.
  std::vector<std::string> spelled_numbers(std::string_view key) const {
    const JsonValue* v = v_.find(key);
    if (!v) return {};
    std::vector<std::string> out;
    for (const JsonValue& e : v->as_array(field(key))) {
      if (e.kind() == JsonValue::Kind::kNumber) {
        out.push_back(json_double(e.as_number(field(key) + "[]")));
      } else {
        out.push_back(e.as_string(field(key) + "[]"));
      }
    }
    return out;
  }

 private:
  static int to_int(const JsonValue& v, const std::string& what) {
    const double d = v.as_number(what);
    if (d != std::floor(d) || d < std::numeric_limits<int>::min() ||
        d > std::numeric_limits<int>::max()) {
      throw UsageError(
          strformat("json: %s: expected an integer", what.c_str()));
    }
    return static_cast<int>(d);
  }

  const JsonValue& v_;
  std::string ctx_;
};

AppSpec parse_app(const Obj& parent) {
  AppSpec a;
  const JsonValue* v = parent.find("app");
  if (!v) return a;
  const Obj obj(*v, parent.field("app"));
  obj.allow({"name", "ranks", "scale", "net", "L_ns", "o_ns",
             "G_ns_per_byte", "S_bytes"});
  a.app = obj.string("name", a.app);
  a.ranks = obj.integer("ranks", a.ranks);
  a.scale = obj.number("scale", a.scale);
  a.net = obj.string("net", a.net);
  if (obj.has("L_ns")) a.L = obj.number("L_ns", 0.0);
  if (obj.has("o_ns")) a.o = obj.number("o_ns", 0.0);
  if (obj.has("G_ns_per_byte")) a.G = obj.number("G_ns_per_byte", 0.0);
  if (obj.has("S_bytes")) a.S = obj.unsigned64("S_bytes", 0);
  return a;
}

GridSpec parse_grid(const Obj& parent) {
  GridSpec g;
  const JsonValue* v = parent.find("grid");
  if (!v) return g;
  const Obj obj(*v, parent.field("grid"));
  obj.allow({"dl_max_us", "points"});
  g.dl_max_us = obj.number("dl_max_us", g.dl_max_us);
  g.points = obj.integer("points", g.points);
  return g;
}

template <typename R>
R parse_analyze_like(const Obj& obj) {
  obj.allow({"op", "app", "grid", "threads"});
  R r;
  r.app = parse_app(obj);
  r.grid = parse_grid(obj);
  r.threads = obj.integer("threads", 0);
  return r;
}

McRequest parse_mc(const Obj& obj) {
  obj.allow({"op", "app", "grid", "samples", "seed", "dist_L", "dist_o",
             "dist_G", "sigma_L", "sigma_o", "sigma_G", "edge_sigma",
             "edge_bias", "bands", "threads"});
  McRequest r;
  r.app = parse_app(obj);
  r.grid = parse_grid(obj);
  r.samples = obj.integer("samples", r.samples);
  r.seed = obj.unsigned64("seed", r.seed);
  // An explicitly empty dist field is a mistake, not a silent fall-back
  // to the sigma path (empty means "field absent" in the value type).
  const auto dist = [&](std::string_view key) -> std::string {
    const std::string spec = obj.string(key, "");
    if (obj.has(key) && spec.empty()) {
      throw UsageError("json: " + obj.field(key) +
                       ": empty distribution spec");
    }
    return spec;
  };
  r.dist_L = dist("dist_L");
  r.dist_o = dist("dist_o");
  r.dist_G = dist("dist_G");
  r.sigma_L = obj.number("sigma_L", 0.0);
  r.sigma_o = obj.number("sigma_o", 0.0);
  r.sigma_G = obj.number("sigma_G", 0.0);
  r.edge_sigma = obj.number("edge_sigma", 0.0);
  r.edge_bias = obj.number("edge_bias", 0.0);
  r.bands = obj.numbers("bands", r.bands);
  r.threads = obj.integer("threads", 0);
  return r;
}

CampaignRequest parse_campaign(const Obj& obj) {
  obj.allow({"op", "apps", "ranks", "scales", "topologies", "nets", "L_list",
             "o_list", "G_list", "S_bytes", "grid", "topo", "mc_samples",
             "seed", "mc_sigma_L", "mc_sigma_o", "mc_sigma_G",
             "mc_edge_sigma", "mc_edge_bias", "probe", "probe_runs",
             "noise_sigma", "threads"});
  CampaignRequest r;
  r.apps = obj.strings("apps", r.apps);
  r.ranks = obj.integers("ranks", r.ranks);
  r.scales = obj.numbers("scales", r.scales);
  r.topologies = obj.strings("topologies", r.topologies);
  r.nets = obj.strings("nets", r.nets);
  r.L_list = obj.spelled_numbers("L_list");
  r.o_list = obj.spelled_numbers("o_list");
  r.G_list = obj.spelled_numbers("G_list");
  if (obj.has("S_bytes")) r.S = obj.unsigned64("S_bytes", 0);
  r.grid = parse_grid(obj);
  if (const JsonValue* t = obj.find("topo")) {
    const Obj topo(*t, obj.field("topo"));
    topo.allow({"l_wire_ns", "d_switch_ns", "ft_radix", "df_groups",
                "df_routers", "df_hosts"});
    r.topo.l_wire = topo.number("l_wire_ns", r.topo.l_wire);
    r.topo.d_switch = topo.number("d_switch_ns", r.topo.d_switch);
    r.topo.ft_radix = topo.integer("ft_radix", r.topo.ft_radix);
    r.topo.df_groups = topo.integer("df_groups", r.topo.df_groups);
    r.topo.df_routers = topo.integer("df_routers", r.topo.df_routers);
    r.topo.df_hosts = topo.integer("df_hosts", r.topo.df_hosts);
  }
  r.mc_samples = obj.integer("mc_samples", 0);
  r.seed = obj.unsigned64("seed", r.seed);
  r.mc_sigma_L = obj.number("mc_sigma_L", 0.0);
  r.mc_sigma_o = obj.number("mc_sigma_o", 0.0);
  r.mc_sigma_G = obj.number("mc_sigma_G", 0.0);
  r.mc_edge_sigma = obj.number("mc_edge_sigma", 0.0);
  r.mc_edge_bias = obj.number("mc_edge_bias", 0.0);
  r.probe = obj.string("probe", "");
  if (r.probe.empty() && (obj.has("probe_runs") || obj.has("noise_sigma"))) {
    // Same orphan rule as the CLI: probe knobs without the probe are a
    // mistake, not a no-op.
    throw UsageError(
        "probe options given without \"probe\" (want \"probe\": "
        "\"emulator\")");
  }
  r.probe_runs = obj.integer("probe_runs", r.probe_runs);
  r.noise_sigma = obj.number("noise_sigma", r.noise_sigma);
  r.threads = obj.integer("threads", 0);
  return r;
}

TopoRequest parse_topo(const Obj& obj) {
  obj.allow({"op", "app", "l_wire_ns", "d_switch_ns", "ft_radix",
             "df_groups", "df_routers", "df_hosts"});
  TopoRequest r;
  r.app = parse_app(obj);
  r.l_wire = obj.number("l_wire_ns", r.l_wire);
  r.d_switch = obj.number("d_switch_ns", r.d_switch);
  r.ft_radix = obj.integer("ft_radix", r.ft_radix);
  r.df_groups = obj.integer("df_groups", r.df_groups);
  r.df_routers = obj.integer("df_routers", r.df_routers);
  r.df_hosts = obj.integer("df_hosts", r.df_hosts);
  return r;
}

PlaceRequest parse_place(const Obj& obj) {
  obj.allow({"op", "app", "l_wire_ns", "d_switch_ns", "ft_radix",
             "max_rounds"});
  PlaceRequest r;
  r.app = parse_app(obj);
  r.l_wire = obj.number("l_wire_ns", r.l_wire);
  r.d_switch = obj.number("d_switch_ns", r.d_switch);
  r.ft_radix = obj.integer("ft_radix", r.ft_radix);
  r.max_rounds = obj.integer("max_rounds", r.max_rounds);
  return r;
}

}  // namespace

const char* op_name(const Request& req) {
  struct Visitor {
    const char* operator()(const AnalyzeRequest&) const { return "analyze"; }
    const char* operator()(const SweepRequest&) const { return "sweep"; }
    const char* operator()(const CampaignRequest&) const { return "campaign"; }
    const char* operator()(const McRequest&) const { return "mc"; }
    const char* operator()(const TopoRequest&) const { return "topo"; }
    const char* operator()(const PlaceRequest&) const { return "place"; }
  };
  return std::visit(Visitor{}, req);
}

std::string to_json(const Request& req) {
  struct Visitor {
    std::string operator()(const AnalyzeRequest& r) const {
      return json_of(r, "analyze");
    }
    std::string operator()(const SweepRequest& r) const {
      // Sweep shares analyze's shape; only the op tag differs.
      const AnalyzeRequest alias{r.app, r.grid, r.threads};
      return json_of(alias, "sweep");
    }
    std::string operator()(const CampaignRequest& r) const {
      return json_of(r);
    }
    std::string operator()(const McRequest& r) const { return json_of(r); }
    std::string operator()(const TopoRequest& r) const {
      return json_of(r);
    }
    std::string operator()(const PlaceRequest& r) const {
      return json_of(r);
    }
  };
  return std::visit(Visitor{}, req);
}

namespace {

Request dispatch_op(const std::string& name, const Obj& obj) {
  if (name == "analyze") return parse_analyze_like<AnalyzeRequest>(obj);
  if (name == "sweep") return parse_analyze_like<SweepRequest>(obj);
  if (name == "campaign") return parse_campaign(obj);
  if (name == "mc") return parse_mc(obj);
  if (name == "topo") return parse_topo(obj);
  if (name == "place") return parse_place(obj);
  throw UsageError("json: unknown op \"" + name +
                   "\" (want analyze, sweep, campaign, mc, topo, or place)");
}

}  // namespace

Request parse_request(std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  const Obj obj(doc, "request");
  const JsonValue* op = doc.find("op");
  if (!op) throw UsageError("json: request is missing \"op\"");
  return dispatch_op(op->as_string("request.op"), obj);
}

Request parse_request_for_op(std::string_view op, std::string_view json) {
  const JsonValue doc = JsonValue::parse(json);
  const Obj obj(doc, "request");
  const std::string name(op);
  if (const JsonValue* tag = doc.find("op")) {
    const std::string spelled = tag->as_string("request.op");
    if (spelled != name) {
      throw UsageError("json: request \"op\" is \"" + spelled +
                       "\" but this endpoint is \"" + name + "\"");
    }
  }
  return dispatch_op(name, obj);
}

}  // namespace llamp::api
