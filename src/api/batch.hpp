#pragma once

#include <cstddef>
#include <iosfwd>

#include "api/engine.hpp"

namespace llamp::api {

/// JSONL batch serving: the first serving-shaped consumer of the engine.
///
/// Protocol: one request object per input line; one response object per
/// request on the output, **in input order** whatever the thread count.
/// Input framing is forgiving where it is unambiguous: CRLF line endings
/// are accepted (the '\r' is stripped), blank and whitespace-only lines
/// are skipped, and a missing trailing newline on the last request is
/// fine.  Lines that fail to parse are rejected in-band with the physical
/// 1-based input line number in the error message ("input line N: ..."),
/// since skipped blanks shift ids off line numbers:
///
///   {"id": 3, "op": "sweep", "result": {...}}
///   {"id": 4, "op": "mc", "error": {"kind": "usage", "message": "..."}}
///
/// `id` is the request's 0-based position in the input.  A line that
/// fails — malformed JSON, an unknown op, a request the engine rejects —
/// produces an error object (kind "usage" for UsageError-class problems,
/// "analysis" otherwise; "op" is echoed whenever the line was readable
/// JSON) and the remaining lines still execute.  The output bytes depend
/// only on the input bytes: requests run in parallel on the engine's
/// pool — with per-request `threads` forced to 1 while the batch itself
/// is parallel — and results are buffered and emitted by id.
struct BatchOutcome {
  std::size_t requests = 0;  ///< non-blank input lines
  std::size_t failures = 0;  ///< lines that produced an error object
};

/// Read JSONL requests from `in`, execute them on `engine` with at most
/// `threads` workers (<= 0 = the engine's whole pool), and write JSONL
/// responses to `out`.
BatchOutcome serve_jsonl(Engine& engine, std::istream& in, std::ostream& out,
                         int threads);

}  // namespace llamp::api
