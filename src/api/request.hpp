#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "core/campaign.hpp"

namespace llamp::api {

/// Typed value-type requests: the programmatic surface of the toolchain.
/// Each request mirrors one `llamp` subcommand's options, with the CLI's
/// defaults, and (de)serializes to a canonical single-line JSON form — the
/// unit of the `llamp batch` JSONL protocol.  Requests are pure values:
/// all semantic validation (degenerate grids, bad distributions, unknown
/// apps) happens when an api::Engine executes them, so the CLI, the batch
/// server, and library consumers share one validation path.
///
/// JSON field conventions follow core/report: times in explicitly-suffixed
/// units (`L_ns`, `dl_max_us`), sizes in `_bytes`.  Unknown fields are
/// rejected at parse time — the JSON surface takes the CLI's stance that a
/// typo must be an error, never a silently defaulted knob.

/// The proxy-application/LogGPS block shared by every single-scenario
/// request (the CLI's common options).
struct AppSpec {
  std::string app = "lulesh";
  int ranks = 8;        ///< requested; clamped per app at execution
  double scale = 0.25;  ///< iteration-count multiplier
  std::string net = "cscs";  ///< LogGPS preset: "cscs" | "daint"
  std::optional<double> L;   ///< network latency override [ns]
  std::optional<double> o;   ///< per-message overhead override [ns]
  std::optional<double> G;   ///< gap-per-byte override [ns/byte]
  std::optional<std::uint64_t> S;  ///< rendezvous threshold [bytes]
};

/// The ΔL injection grid shared by analyze/sweep/mc/campaign.
struct GridSpec {
  double dl_max_us = 100.0;  ///< sweep ceiling ΔL_max [us]
  int points = 11;           ///< grid points in [0, ΔL_max]
};

/// `llamp analyze`: the full tolerance report of one scenario.
struct AnalyzeRequest {
  AppSpec app;
  GridSpec grid;
  int threads = 0;  ///< sweep parallelism; <= 0 = hardware concurrency
};

/// `llamp sweep`: runtime / λ_L / ρ_L over the ΔL grid.
struct SweepRequest {
  AppSpec app;
  GridSpec grid;
  int threads = 0;
};

/// `llamp mc`: Monte Carlo uncertainty quantification of one scenario.
/// A non-empty `dist_X` spec string ("base", "const:V", "normal:M,S",
/// "relnormal:SIGMA", "uniform:LO,HI") wins over the corresponding
/// `sigma_X` relative-normal shorthand, exactly like the CLI flags.
struct McRequest {
  AppSpec app;
  GridSpec grid;
  int samples = 256;
  std::uint64_t seed = 42;
  std::string dist_L;
  std::string dist_o;
  std::string dist_G;
  double sigma_L = 0.0;
  double sigma_o = 0.0;
  double sigma_G = 0.0;
  double edge_sigma = 0.0;  ///< per-edge noise, emulator convention
  double edge_bias = 0.0;
  std::vector<double> bands = {1.0, 2.0, 5.0};
  int threads = 0;
};

/// `llamp campaign`: the declarative multi-scenario grid.  The LogGPS
/// override axes keep the user's spelling (they name the config variants),
/// so they are lists of number strings, not doubles.
struct CampaignRequest {
  std::vector<std::string> apps = {"lulesh"};
  std::vector<int> ranks = {8};
  std::vector<double> scales = {0.25};
  std::vector<std::string> topologies = {"none"};
  std::vector<std::string> nets = {"cscs"};
  std::vector<std::string> L_list;  ///< L override axis [ns], as spelled
  std::vector<std::string> o_list;
  std::vector<std::string> G_list;
  std::optional<std::uint64_t> S;  ///< applies to every variant
  GridSpec grid;
  core::TopologyOptions topo;
  int mc_samples = 0;  ///< 0 = deterministic campaign only
  std::uint64_t seed = 42;  ///< shared by the mc axis and the probe
  double mc_sigma_L = 0.0;
  double mc_sigma_o = 0.0;
  double mc_sigma_G = 0.0;
  double mc_edge_sigma = 0.0;
  double mc_edge_bias = 0.0;
  std::string probe;  ///< "" (off) | "emulator"
  int probe_runs = 5;
  double noise_sigma = 0.003;  ///< emulator run-to-run noise
  int threads = 0;
};

/// `llamp topo`: per-wire latency sensitivity, Fat Tree vs Dragonfly.
struct TopoRequest {
  AppSpec app;
  double l_wire = 274.0;    ///< per-wire base latency [ns]
  double d_switch = 108.0;  ///< per-switch traversal [ns]
  int ft_radix = 8;
  int df_groups = 8;
  int df_routers = 4;
  int df_hosts = 8;
};

/// `llamp place`: block vs volume-greedy vs Algorithm-3 rank placement.
struct PlaceRequest {
  AppSpec app;
  double l_wire = 274.0;
  double d_switch = 108.0;
  int ft_radix = 8;
  int max_rounds = 64;  ///< Algorithm-3 round cap
};

using Request = std::variant<AnalyzeRequest, SweepRequest, CampaignRequest,
                             McRequest, TopoRequest, PlaceRequest>;

/// The request's "op" tag: analyze, sweep, campaign, mc, topo, place.
const char* op_name(const Request& req);

/// Canonical single-line JSON form (no trailing newline).  Optional fields
/// are emitted only when set; field order is fixed, so
/// to_json(parse_request(to_json(r))) == to_json(r) byte-for-byte.
std::string to_json(const Request& req);

/// Parse one JSON request object: `{"op": "analyze", ...}`.  Field order
/// is free; missing fields take the request type's defaults; unknown
/// fields, type mismatches, and non-integral integer fields throw
/// UsageError.
Request parse_request(std::string_view json);

/// Parse a request whose op is fixed by the caller (an HTTP route: the
/// path names the op, so the body's "op" field is optional).  A present
/// "op" must match `op`; everything else is `parse_request` semantics.
Request parse_request_for_op(std::string_view op, std::string_view json);

}  // namespace llamp::api
