#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "api/request.hpp"
#include "core/campaign.hpp"
#include "core/graph_cache.hpp"
#include "core/report.hpp"
#include "core/solver_cache.hpp"
#include "loggops/params.hpp"
#include "lp/parametric.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "stoch/mc.hpp"
#include "util/parallel.hpp"
#include "util/time.hpp"

namespace llamp::api {

/// Typed results, one per request type.  Each result is a value: it owns
/// every number the corresponding CLI subcommand prints, `render()`
/// reproduces that subcommand's output byte-for-byte (the PR 2 golden wall
/// passes unchanged with the CLI routed through here), and
/// `to_json_line()` is the single-line machine form served over the JSONL
/// batch surface.

/// The app block after execution-time resolution (ranks clamped to an
/// app-supported value, LogGPS preset + Table II overhead + overrides
/// applied).
struct ResolvedApp {
  std::string app;
  int ranks = 0;
  double scale = 0.0;
  loggops::Params params;
};

struct AnalyzeResult {
  ResolvedApp app;
  std::string graph_stats;  ///< Graph::stats_string() of the analyzed graph
  core::ToleranceReport report;

  void render(core::OutputFormat format, std::ostream& out) const;
  std::string to_json_line() const;
};

struct SweepResult {
  ResolvedApp app;
  TimeNs base_runtime = 0.0;
  std::vector<core::LatencyAnalyzer::SweepPoint> points;

  void render(core::OutputFormat format, std::ostream& out) const;
  std::string to_json_line() const;
};

struct CampaignResult {
  std::size_t scenarios = 0;
  std::size_t delta_points = 0;     ///< ΔL grid size
  std::size_t distinct_graphs = 0;  ///< distinct graph keys in the grid
  bool has_probe = false;
  std::vector<core::Campaign::ScenarioResult> results;

  void render(core::OutputFormat format, std::ostream& out) const;
  std::string to_json_line() const;
};

struct McResult {
  ResolvedApp app;
  stoch::McSpec spec;  ///< resolved distributions / seed / samples echo
  stoch::McResult result;

  void render(core::OutputFormat format, std::ostream& out) const;
  std::string to_json_line() const;
};

struct TopoResult {
  ResolvedApp app;
  struct Sensitivity {
    std::string name;
    double runtime = 0.0;    ///< T(l_wire) [ns]
    double gradient = 0.0;   ///< dT/dl_wire
    double tolerance = 0.0;  ///< 1% l_wire tolerance; +inf = unbounded
  };
  std::vector<Sensitivity> topologies;
  double df_base_runtime = 0.0;
  struct WireClass {
    std::string name;
    double lambda = 0.0;
    double tolerance = 0.0;
  };
  std::vector<WireClass> classes;  ///< Dragonfly per-class breakdown

  /// Table is the CLI form; json renders the machine schema; csv is not
  /// offered for the two-table topo report (UsageError).
  void render(core::OutputFormat format, std::ostream& out) const;
  std::string to_json_line() const;
};

struct PlaceResult {
  ResolvedApp app;
  std::string topology;  ///< the Fat Tree's display name
  struct Strategy {
    std::string name;  ///< display label, e.g. "llamp algorithm 3 (4 swaps)"
    double runtime = 0.0;
  };
  std::vector<Strategy> strategies;  ///< block baseline first

  void render(core::OutputFormat format, std::ostream& out) const;
  std::string to_json_line() const;
};

using Response = std::variant<AnalyzeResult, SweepResult, CampaignResult,
                              McResult, TopoResult, PlaceResult>;

/// The response's op tag (matches the originating request's).
const char* op_name(const Response& res);
/// Dispatch render over the variant.
void render(const Response& res, core::OutputFormat format, std::ostream& out);
/// Dispatch to_json_line over the variant.
std::string to_json_line(const Response& res);

/// The session engine behind every consumer of the toolchain: the CLI
/// subcommands, `llamp batch`, the benches, and library callers all
/// execute requests through one of these.  An engine owns
///
///  * the execution-graph cache, keyed (app, ranks, scale, S) like the
///    campaign engine's — repeated requests for one scenario re-lower
///    nothing, across request types (an analyze warms the graph a later
///    sweep or campaign of the same app reuses);
///  * a persistent util/parallel ThreadPool for batch execution; and
///  * one ParametricSolver::Workspace per pool worker, reused by the
///    engine's direct solver paths so steady-state solves stay
///    allocation-free.
///
/// Execution is deterministic: a result's bytes depend only on the
/// request, never on the cache's prior contents, the pool size, or the
/// thread count (the campaign header's "distinct graphs" deliberately
/// counts the grid's keys, not physical builds).
///
/// Thread-safety: the graph cache is safe under concurrent use, and
/// concurrent run_batch() calls serialize on an internal lock (the pool
/// runs one job at a time); single-request methods may be called from one
/// thread at a time (the batch path hands each worker its own workspace).
class Engine {
 public:
  struct Options {
    int threads = 0;  ///< pool size; <= 0 = hardware concurrency
  };
  Engine();
  explicit Engine(Options opts);

  /// Execute one request.  Throws UsageError on malformed requests (the
  /// CLI's exit-2 class) and Error on analysis failures (exit 1).
  AnalyzeResult analyze(const AnalyzeRequest& req);
  SweepResult sweep(const SweepRequest& req);
  CampaignResult campaign(const CampaignRequest& req);
  McResult mc(const McRequest& req);
  TopoResult topo(const TopoRequest& req);
  PlaceResult place(const PlaceRequest& req);

  /// Variant dispatch of the above.
  Response run(const Request& req);

  /// Execute a batch on the engine's pool, `threads` workers at most
  /// (<= 0 = the whole pool).  outcomes[i] holds request i's response or
  /// its error; order is input order whatever the thread count.
  struct Outcome {
    std::optional<Response> response;  ///< engaged on success
    std::string error;                 ///< non-empty on failure
    bool usage_error = false;          ///< UsageError vs analysis Error
    TimeNs elapsed_ns = 0.0;           ///< wall time of this request
  };
  std::vector<Outcome> run_batch(const std::vector<Request>& requests,
                                 int threads);

  /// Cumulative graph-cache statistics of this session.
  core::GraphCache::Stats cache_stats() const { return cache_.stats(); }
  /// Cumulative solver-cache statistics (lowerings + anchor replays).
  core::SolverCache::Stats solver_cache_stats() const {
    return solver_cache_.stats();
  }
  /// One-line human form of solver_cache_stats().
  std::string solver_cache_stats_string() const {
    return solver_cache_.stats_string();
  }
  /// Both caches' stats lines (shared obs::stats_line format), one per line.
  std::string cache_stats_string() const;

  // -- Observability (DESIGN.md §7).  Metrics and traces are side channels:
  // they never feed result bytes (the metrics-on-vs-off byte-identity tests
  // pin this), and the deterministic slices — counter values, snapshot
  // structure — are themselves pinned for a fixed request sequence.

  /// The session metrics registry.  Callers may register their own
  /// counters at setup time (the JSONL surface counts parse errors here);
  /// registration inside hot paths is rejected by llamp-lint.
  obs::Registry& metrics() { return metrics_; }
  /// The session tracer.  Disabled (and nearly free) until enable();
  /// the CLI's --trace-out flag enables it before dispatch.
  obs::Tracer& tracer() { return tracer_; }

  /// Merged metrics snapshot as canonical single-line JSON — the payload a
  /// future /metrics endpoint serves.  Includes the cache and pool
  /// statistics as imported counters/gauges.
  std::string metrics_json() const;
  /// Human multi-line form of the same snapshot (`llamp stats`).
  std::string metrics_string() const;
  /// The recorded trace in Chrome trace-event JSON form (--trace-out).
  std::string trace_json() const { return tracer_.to_chrome_json(); }

  /// Nanoseconds since this engine was constructed (monotonic clock).
  /// Feeds /healthz and the engine.uptime_ns snapshot gauge — a timing
  /// value, so it never appears in result bytes.
  std::uint64_t uptime_ns() const;

  ThreadPool& pool() { return pool_; }

 private:
  /// Clamp/validate an AppSpec into a concrete scenario (the shared
  /// "common options" block of every single-scenario subcommand).
  ResolvedApp resolve(const AppSpec& spec) const;
  static core::GraphKey key_for(const ResolvedApp& app);
  const graph::Graph& graph_for(const ResolvedApp& app);
  Response run_on(int worker, const Request& req);
  TopoResult topo_on(int worker, const TopoRequest& req);

  /// Uninstrumented request bodies (the public methods wrap these in
  /// timed(), so each request is counted and traced exactly once —
  /// including requests dispatched through run_on on batch workers).
  AnalyzeResult analyze_impl(const AnalyzeRequest& req);
  SweepResult sweep_impl(const SweepRequest& req);
  CampaignResult campaign_impl(const CampaignRequest& req);
  McResult mc_impl(const McRequest& req);
  TopoResult topo_impl(int worker, const TopoRequest& req);
  PlaceResult place_impl(const PlaceRequest& req);

  /// The shared request wrapper: span + latency histogram + request/error
  /// counters around one impl call.  Defined in engine.cpp (every use
  /// lives there).
  template <typename Fn>
  auto timed(const char* op, obs::Counter& op_counter, Fn&& fn)
      -> decltype(fn());

  /// Registry + imported cache/pool statistics, merged name-sorted.
  obs::Snapshot metrics_snapshot() const;

  /// Pre-registered handles (one array-indexed relaxed add per record on
  /// the hot paths; see the registry's contract split).
  struct MetricHandles {
    obs::Counter requests;          ///< engine.requests
    obs::Counter errors;            ///< engine.errors
    obs::Counter op_analyze;        ///< engine.op.analyze ... (one per op)
    obs::Counter op_sweep;
    obs::Counter op_campaign;
    obs::Counter op_mc;
    obs::Counter op_topo;
    obs::Counter op_place;
    obs::Histogram request_ns;      ///< engine.request_ns
    obs::Counter batches;           ///< batch.batches (run_batch calls)
    obs::Counter batch_requests;    ///< batch.requests
    obs::Histogram batch_request_ns;  ///< per-request latency in a batch
    obs::Counter mc_fast_path;      ///< mc.fast_path (shared-solver route)
    obs::Counter mc_general_path;   ///< mc.general_path (edge-noise route)
    obs::Counter mc_batched;        ///< mc.batched_runs (SIMD kernel ran)
    obs::Counter mc_lane_groups;    ///< mc.lane_groups (sample groups)
    obs::Counter mc_lane_slots;     ///< mc.lane_slots (groups x width)
    obs::Counter mc_lane_samples;   ///< mc.lane_samples (occupied slots)
  };

  core::GraphCache cache_;
  /// Lowered solvers + anchor state, keyed (graph key, space fingerprint)
  /// beside the graph cache.  Declared after cache_ (and therefore
  /// destroyed first): entries reference session graphs.
  core::SolverCache solver_cache_;
  /// Observability state is declared before pool_ so the pool's workers
  /// join before the tracer and registry are destroyed — a worker must
  /// never record into a dead lane.
  obs::Registry metrics_;
  obs::Tracer tracer_;
  MetricHandles handles_;
  ThreadPool pool_;
  std::vector<lp::ParametricSolver::Workspace> workspaces_;
  /// Serializes run_batch callers: the pool runs one job at a time, and
  /// the per-worker workspaces must not be shared across batches.
  std::mutex batch_mutex_;
  /// Construction instant (uptime_ns's zero point).
  TimeNs start_time_ = 0.0;
  /// Scrape sequence: bumped once per metrics_snapshot(), so consumers of
  /// /metrics can order scrapes and detect a daemon restart (the number
  /// resets to 1).  Mutable: taking a snapshot is logically const.
  mutable std::atomic<std::uint64_t> metrics_seq_{0};
};

}  // namespace llamp::api
