#include "api/engine.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <ostream>
#include <utility>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "core/placement.hpp"
#include "injector/cluster_emulator.hpp"
#include "lp/param_space.hpp"
#include "stoch/distribution.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace llamp::api {
namespace {

/// The flattened scenario echo leading every JSONL result payload.
std::string app_meta_json(const ResolvedApp& app) {
  return strformat("\"app\": \"%s\", \"ranks\": %d, \"scale\": %s",
                   json_escape_string(app.app).c_str(), app.ranks,
                   json_double(app.scale).c_str());
}

std::string tolerance_or_null(double v) { return json_double(v); }

}  // namespace

// ---------------------------------------------------------------------------
// Result rendering: the CLI subcommands' exact bytes (golden-pinned), plus
// the single-line JSONL payload forms.
// ---------------------------------------------------------------------------

void AnalyzeResult::render(core::OutputFormat format,
                           std::ostream& out) const {
  switch (format) {
    case core::OutputFormat::kTable:
      out << strformat("app: %s   ranks: %d   scale: %g\n", app.app.c_str(),
                       app.ranks, app.scale);
      out << "graph: " << graph_stats << '\n';
      out << report.to_string();
      break;
    case core::OutputFormat::kCsv:
      out << core::render(
          core::sweep_curve_table(report.curve, report.base_runtime, false),
          core::OutputFormat::kCsv);
      break;
    case core::OutputFormat::kJson:
      out << report.to_json();
      break;
  }
}

std::string AnalyzeResult::to_json_line() const {
  return "{\"op\": \"analyze\", " + app_meta_json(app) + ", \"graph\": \"" +
         json_escape_string(graph_stats) + "\", \"report\": " +
         report.to_json_line() + '}';
}

void SweepResult::render(core::OutputFormat format, std::ostream& out) const {
  const bool human = format == core::OutputFormat::kTable;
  if (human) {
    out << strformat("app: %s   ranks: %d   scale: %g   base T: %s\n",
                     app.app.c_str(), app.ranks, app.scale,
                     human_time_ns(base_runtime).c_str());
  }
  out << core::render(core::sweep_curve_table(points, base_runtime, human),
                      format);
}

std::string SweepResult::to_json_line() const {
  return "{\"op\": \"sweep\", " + app_meta_json(app) +
         ", \"base_runtime_ns\": " + json_double(base_runtime) +
         ", \"points\": " +
         core::render_json_line(
             core::sweep_curve_table(points, base_runtime, false)) +
         '}';
}

void CampaignResult::render(core::OutputFormat format,
                            std::ostream& out) const {
  const bool human = format == core::OutputFormat::kTable;
  const std::string probe_name =
      has_probe ? (human ? "measured" : "measured_ns") : "";
  if (human) {
    out << strformat(
        "campaign: %zu scenarios x %zu ΔL points (%zu distinct graphs)\n",
        scenarios, delta_points, distinct_graphs);
  }
  out << core::render(core::campaign_points_table(results, human, probe_name),
                      format);
}

std::string CampaignResult::to_json_line() const {
  return strformat(
      "{\"op\": \"campaign\", \"scenarios\": %zu, \"delta_points\": %zu, "
      "\"distinct_graphs\": %zu, \"rows\": %s}",
      scenarios, delta_points, distinct_graphs,
      core::render_json_line(core::campaign_points_table(
                                 results, false,
                                 has_probe ? "measured_ns" : ""))
          .c_str());
}

void McResult::render(core::OutputFormat format, std::ostream& out) const {
  const bool human = format == core::OutputFormat::kTable;
  if (human) {
    out << strformat("app: %s   ranks: %d   scale: %g\n", app.app.c_str(),
                     app.ranks, app.scale);
    out << strformat(
        "mc: %d samples   seed %llu   L~%s   o~%s   G~%s   edge noise "
        "sigma=%g bias=%g\n",
        spec.samples, static_cast<unsigned long long>(spec.seed),
        spec.L.to_string().c_str(), spec.o.to_string().c_str(),
        spec.G.to_string().c_str(), spec.noise.sigma, spec.noise.bias);
  }
  if (format == core::OutputFormat::kJson) {
    // The config echo makes bench provenance self-describing: `batched`
    // records whether the sample-axis kernel ran and `batch_width` its
    // compile-time lane count.  Both are functions of the request flags
    // alone (there is no runtime batch toggle), so the bytes stay
    // deterministic per command line whatever the thread count.
    out << strformat(
        "{\"config\": {%s, \"samples\": %d, \"seed\": %llu, "
        "\"batched\": %s, \"batch_width\": %d},\n \"summary\": %s}\n",
        app_meta_json(app).c_str(), spec.samples,
        static_cast<unsigned long long>(spec.seed),
        result.batched ? "true" : "false", result.batch_width,
        core::render_json_line(stoch::mc_summary_table(result, false))
            .c_str());
    return;
  }
  out << core::render(stoch::mc_summary_table(result, human), format);
}

std::string McResult::to_json_line() const {
  return strformat(
      "{\"op\": \"mc\", %s, \"samples\": %d, \"seed\": %llu, "
      "\"batched\": %s, \"batch_width\": %d, "
      "\"dist_L\": \"%s\", \"dist_o\": \"%s\", \"dist_G\": \"%s\", "
      "\"edge_sigma\": %s, \"edge_bias\": %s, \"summary\": %s}",
      app_meta_json(app).c_str(), spec.samples,
      static_cast<unsigned long long>(spec.seed),
      result.batched ? "true" : "false", result.batch_width,
      json_escape_string(spec.L.to_string()).c_str(),
      json_escape_string(spec.o.to_string()).c_str(),
      json_escape_string(spec.G.to_string()).c_str(),
      json_double(spec.noise.sigma).c_str(),
      json_double(spec.noise.bias).c_str(),
      core::render_json_line(stoch::mc_summary_table(result, false)).c_str());
}

void TopoResult::render(core::OutputFormat format, std::ostream& out) const {
  switch (format) {
    case core::OutputFormat::kTable: {
      out << strformat(
          "app: %s   ranks: %d   per-wire latency sensitivity\n\n",
          app.app.c_str(), app.ranks);
      Table table(
          {"topology", "T(l_wire)", "dT/dl_wire", "1% tolerance l_wire"});
      for (const Sensitivity& s : topologies) {
        table.add_row({s.name, human_time_ns(s.runtime),
                       strformat("%.0f", s.gradient),
                       std::isfinite(s.tolerance)
                           ? human_time_ns(s.tolerance)
                           : "unbounded"});
      }
      out << table.to_string();
      out << strformat(
          "\nDragonfly wire classes (budget = 1%% over T = %s):\n",
          human_time_ns(df_base_runtime).c_str());
      Table class_table({"class", "lambda", "1% tolerance"});
      for (const WireClass& c : classes) {
        class_table.add_row({c.name, strformat("%.0f", c.lambda),
                             std::isfinite(c.tolerance)
                                 ? human_time_ns(c.tolerance)
                                 : "unbounded"});
      }
      out << class_table.to_string();
      break;
    }
    case core::OutputFormat::kJson:
      out << to_json_line() << '\n';
      break;
    case core::OutputFormat::kCsv:
      throw UsageError("topo: csv output is not supported");
  }
}

std::string TopoResult::to_json_line() const {
  std::string out = "{\"op\": \"topo\", " + app_meta_json(app) +
                    ", \"topologies\": [";
  for (std::size_t i = 0; i < topologies.size(); ++i) {
    const Sensitivity& s = topologies[i];
    out += strformat(
        "{\"topology\": \"%s\", \"runtime_ns\": %s, \"gradient\": %s, "
        "\"tolerance_l_wire_ns\": %s}",
        json_escape_string(s.name).c_str(), json_double(s.runtime).c_str(),
        json_double(s.gradient).c_str(),
        tolerance_or_null(s.tolerance).c_str());
    if (i + 1 < topologies.size()) out += ", ";
  }
  out += strformat("], \"dragonfly_base_runtime_ns\": %s, "
                   "\"dragonfly_classes\": [",
                   json_double(df_base_runtime).c_str());
  for (std::size_t i = 0; i < classes.size(); ++i) {
    const WireClass& c = classes[i];
    out += strformat(
        "{\"class\": \"%s\", \"lambda\": %s, \"tolerance_l_wire_ns\": %s}",
        json_escape_string(c.name).c_str(), json_double(c.lambda).c_str(),
        tolerance_or_null(c.tolerance).c_str());
    if (i + 1 < classes.size()) out += ", ";
  }
  out += "]}";
  return out;
}

void PlaceResult::render(core::OutputFormat format, std::ostream& out) const {
  switch (format) {
    case core::OutputFormat::kTable: {
      out << strformat("app: %s   ranks: %d on %s\n\n", app.app.c_str(),
                       app.ranks, topology.c_str());
      Table table({"strategy", "predicted runtime", "vs block"});
      const double block = strategies.empty() ? 0.0 : strategies[0].runtime;
      for (std::size_t i = 0; i < strategies.size(); ++i) {
        const Strategy& s = strategies[i];
        table.add_row(
            {s.name, human_time_ns(s.runtime),
             i == 0 ? "+0.00%"
                    : strformat("%+.2f%%",
                                100.0 * (s.runtime - block) / block)});
      }
      out << table.to_string();
      break;
    }
    case core::OutputFormat::kJson:
      out << to_json_line() << '\n';
      break;
    case core::OutputFormat::kCsv:
      throw UsageError("place: csv output is not supported");
  }
}

std::string PlaceResult::to_json_line() const {
  std::string out = "{\"op\": \"place\", " + app_meta_json(app) +
                    ", \"topology\": \"" + json_escape_string(topology) +
                    "\", \"strategies\": [";
  for (std::size_t i = 0; i < strategies.size(); ++i) {
    out += strformat("{\"strategy\": \"%s\", \"runtime_ns\": %s}",
                     json_escape_string(strategies[i].name).c_str(),
                     json_double(strategies[i].runtime).c_str());
    if (i + 1 < strategies.size()) out += ", ";
  }
  out += "]}";
  return out;
}

const char* op_name(const Response& res) {
  struct Visitor {
    const char* operator()(const AnalyzeResult&) const { return "analyze"; }
    const char* operator()(const SweepResult&) const { return "sweep"; }
    const char* operator()(const CampaignResult&) const { return "campaign"; }
    const char* operator()(const McResult&) const { return "mc"; }
    const char* operator()(const TopoResult&) const { return "topo"; }
    const char* operator()(const PlaceResult&) const { return "place"; }
  };
  return std::visit(Visitor{}, res);
}

void render(const Response& res, core::OutputFormat format,
            std::ostream& out) {
  std::visit([&](const auto& r) { r.render(format, out); }, res);
}

std::string to_json_line(const Response& res) {
  return std::visit([](const auto& r) { return r.to_json_line(); }, res);
}

// ---------------------------------------------------------------------------
// Engine.
// ---------------------------------------------------------------------------

Engine::Engine() : Engine(Options{}) {}

Engine::Engine(Options opts)
    : pool_(opts.threads),
      workspaces_(static_cast<std::size_t>(pool_.size())) {
  // Pre-register every hot-path handle once, here, so instrumentation
  // sites are a single array-indexed relaxed add (llamp-lint's hot-metric
  // rule rejects string lookups inside declared hot-path regions).
  handles_.requests = metrics_.counter("engine.requests");
  handles_.errors = metrics_.counter("engine.errors");
  handles_.op_analyze = metrics_.counter("engine.op.analyze");
  handles_.op_sweep = metrics_.counter("engine.op.sweep");
  handles_.op_campaign = metrics_.counter("engine.op.campaign");
  handles_.op_mc = metrics_.counter("engine.op.mc");
  handles_.op_topo = metrics_.counter("engine.op.topo");
  handles_.op_place = metrics_.counter("engine.op.place");
  handles_.request_ns = metrics_.histogram("engine.request_ns");
  handles_.batches = metrics_.counter("batch.batches");
  handles_.batch_requests = metrics_.counter("batch.requests");
  handles_.batch_request_ns = metrics_.histogram("batch.request_ns");
  handles_.mc_fast_path = metrics_.counter("mc.fast_path");
  handles_.mc_general_path = metrics_.counter("mc.general_path");
  handles_.mc_batched = metrics_.counter("mc.batched_runs");
  handles_.mc_lane_groups = metrics_.counter("mc.lane_groups");
  handles_.mc_lane_slots = metrics_.counter("mc.lane_slots");
  handles_.mc_lane_samples = metrics_.counter("mc.lane_samples");
  start_time_ = monotonic_now();
}

std::uint64_t Engine::uptime_ns() const {
  const TimeNs now = monotonic_now();
  return now > start_time_ ? static_cast<std::uint64_t>(now - start_time_)
                           : 0u;
}

template <typename Fn>
auto Engine::timed(const char* op, obs::Counter& op_counter, Fn&& fn)
    -> decltype(fn()) {
  const obs::SpanScope span(tracer_, op);
  const TimeNs t0 = monotonic_now();
  handles_.requests.inc();
  op_counter.inc();
  try {
    auto out = fn();
    handles_.request_ns.record(monotonic_now() - t0);
    return out;
  } catch (...) {
    handles_.errors.inc();
    handles_.request_ns.record(monotonic_now() - t0);
    throw;
  }
}

ResolvedApp Engine::resolve(const AppSpec& spec) const {
  ResolvedApp r;
  r.app = spec.app;
  r.ranks = apps::supported_ranks(spec.app, spec.ranks);
  r.scale = spec.scale;
  // Same rule the campaign engine enforces: a non-finite or non-positive
  // scale would silently analyze a clamped or nonsense trace.
  if (!(r.scale > 0.0) || !std::isfinite(r.scale)) {
    throw UsageError(strformat("need finite --scale > 0 (got %g)", r.scale));
  }
  if (spec.net == "cscs") {
    r.params = loggops::NetworkConfig::cscs_testbed();
  } else if (spec.net == "daint") {
    r.params = loggops::NetworkConfig::piz_daint();
  } else {
    throw Error("unknown --net preset '" + spec.net +
                "' (want cscs or daint)");
  }
  // Per-application overhead from Table II where the paper measured one;
  // apps outside Table II (npb-*, namd) keep the preset's o.
  core::apply_table2_overhead(r.params, r.app, r.ranks);
  if (spec.L) r.params.L = *spec.L;
  if (spec.o) r.params.o = *spec.o;
  if (spec.G) r.params.G = *spec.G;
  if (spec.S) {
    // S is graph-shaping; a zero threshold would silently analyze a
    // different execution graph (the CLI's --S >= 1 rule).
    if (*spec.S < 1) {
      throw UsageError(strformat("need --S >= 1 (got %llu)",
                                 static_cast<unsigned long long>(*spec.S)));
    }
    r.params.S = *spec.S;
  }
  r.params.validate();
  return r;
}

core::GraphKey Engine::key_for(const ResolvedApp& app) {
  return {app.app, app.ranks, app.scale, app.params.S};
}

const graph::Graph& Engine::graph_for(const ResolvedApp& app) {
  const obs::SpanScope span(tracer_, "graph");
  return cache_.get(key_for(app));
}

AnalyzeResult Engine::analyze(const AnalyzeRequest& req) {
  return timed("analyze", handles_.op_analyze,
               [&] { return analyze_impl(req); });
}

SweepResult Engine::sweep(const SweepRequest& req) {
  return timed("sweep", handles_.op_sweep, [&] { return sweep_impl(req); });
}

CampaignResult Engine::campaign(const CampaignRequest& req) {
  return timed("campaign", handles_.op_campaign,
               [&] { return campaign_impl(req); });
}

McResult Engine::mc(const McRequest& req) {
  return timed("mc", handles_.op_mc, [&] { return mc_impl(req); });
}

PlaceResult Engine::place(const PlaceRequest& req) {
  return timed("place", handles_.op_place, [&] { return place_impl(req); });
}

AnalyzeResult Engine::analyze_impl(const AnalyzeRequest& req) {
  const ResolvedApp app = resolve(req.app);
  // Degenerate grids must fail before any graph is built or cached.
  (void)core::linear_grid(us(req.grid.dl_max_us), req.grid.points);
  const graph::Graph& g = graph_for(app);
  core::ReportOptions opts;
  opts.sweep_max = us(req.grid.dl_max_us);
  opts.sweep_points = req.grid.points;
  opts.threads = req.threads;
  AnalyzeResult res;
  res.app = app;
  res.graph_stats = g.stats_string();
  // Warm-starting analyzer: lowering and anchors come from the session
  // solver cache.  Bytes are identical to a cold analysis by contract.
  const core::LatencyAnalyzer an(g, app.params, solver_cache_, key_for(app));
  res.report = core::make_report(an, opts);
  return res;
}

SweepResult Engine::sweep_impl(const SweepRequest& req) {
  const ResolvedApp app = resolve(req.app);
  const auto grid = core::linear_grid(us(req.grid.dl_max_us), req.grid.points);
  const graph::Graph& g = graph_for(app);
  const core::LatencyAnalyzer an(g, app.params, solver_cache_, key_for(app));
  SweepResult res;
  res.app = app;
  res.base_runtime = an.base_runtime();
  res.points = an.sweep(grid, req.threads);
  return res;
}

namespace {

/// The sampled-parameter distribution of an mc request: the dist spec
/// string wins when given, otherwise the sigma as relative normal jitter
/// (0 = degenerate) — exactly the CLI's --dist-X / --sigma-X precedence.
stoch::Distribution mc_distribution(const std::string& dist, double sigma,
                                    const char* param) {
  if (!dist.empty()) return stoch::parse_distribution(dist);
  auto d = stoch::Distribution::rel_normal(sigma);
  d.validate(std::string("--sigma-") + param);
  return d;
}

}  // namespace

McResult Engine::mc_impl(const McRequest& req) {
  const ResolvedApp app = resolve(req.app);
  const auto grid = core::linear_grid(us(req.grid.dl_max_us), req.grid.points);
  stoch::McSpec spec;
  spec.L = mc_distribution(req.dist_L, req.sigma_L, "L");
  spec.o = mc_distribution(req.dist_o, req.sigma_o, "o");
  spec.G = mc_distribution(req.dist_G, req.sigma_G, "G");
  spec.noise.sigma = req.edge_sigma;
  spec.noise.bias = req.edge_bias;
  spec.samples = req.samples;
  spec.seed = req.seed;
  spec.threads = req.threads;
  spec.delta_Ls = grid;
  spec.band_percents = req.bands;
  spec.validate();
  const graph::Graph& g = graph_for(app);
  McResult res;
  res.app = app;
  res.spec = spec;
  // When the run's shared-solver fast path engages (only L sampled), its
  // operating point is known up front — lower it through the session
  // solver cache so repeated mc requests (and analyze/sweep of the same
  // scenario when the point coincides) share one problem.  run_mc
  // re-verifies the handle; the result bytes cannot depend on it.
  std::shared_ptr<const lp::LoweredProblem> lowered;
  if (const auto sp = stoch::shared_operating_point(spec, app.params)) {
    lowered = solver_cache_.latency(key_for(app), g, *sp)->problem();
    handles_.mc_fast_path.inc();
  } else {
    handles_.mc_general_path.inc();
  }
  res.result = stoch::run_mc(g, app.params, spec, std::move(lowered));
  // Lane-occupancy accounting, post hoc from the result's config echo so
  // the sampling loops stay untouched (the bench-drift bound): the batched
  // kernel runs ceil(samples / width) groups of `width` lanes, of which
  // `samples` are occupied — the slots-vs-samples gap is ragged-tail waste.
  if (res.result.batched && res.result.batch_width > 0) {
    const auto width = static_cast<std::uint64_t>(res.result.batch_width);
    const auto samples = static_cast<std::uint64_t>(res.result.samples);
    const std::uint64_t groups = (samples + width - 1) / width;
    handles_.mc_batched.inc();
    handles_.mc_lane_groups.inc(groups);
    handles_.mc_lane_slots.inc(groups * width);
    handles_.mc_lane_samples.inc(samples);
  }
  return res;
}

namespace {

/// The LogGPS axis of a campaign request: network presets crossed with the
/// optional L/o/G override lists; a single S override applies to every
/// variant.  Variant names embed the request's original number spelling,
/// so two distinct list entries can never collide into one label.
std::vector<core::ConfigVariant> campaign_configs(const CampaignRequest& req) {
  struct Override {
    std::string text;
    double value = 0.0;
  };
  const auto overrides = [](const std::vector<std::string>& list,
                            const char* key) {
    std::vector<Override> out;
    for (const std::string& field : list) {
      const auto f = trim(field);
      if (f.empty()) continue;
      try {
        out.push_back({std::string(f), parse_double(f)});
      } catch (const Error&) {
        throw UsageError(strformat("bad --%s value '%s'", key,
                                   std::string(f).c_str()));
      }
    }
    if (out.empty() && !list.empty()) {
      throw UsageError(strformat("empty --%s list", key));
    }
    return out;
  };
  const auto Ls = overrides(req.L_list, "L-list");
  const auto os_ = overrides(req.o_list, "o-list");
  const auto Gs = overrides(req.G_list, "G-list");
  // An absent axis contributes one pass-through (null) slot to the cross
  // product.
  const auto axis = [](const std::vector<Override>& list) {
    std::vector<const Override*> ptrs;
    for (const auto& o : list) ptrs.push_back(&o);
    if (ptrs.empty()) ptrs.push_back(nullptr);
    return ptrs;
  };
  if (req.nets.empty()) throw UsageError("empty --nets list");
  std::vector<core::ConfigVariant> out;
  for (const std::string& net : req.nets) {
    loggops::Params base;
    if (net == "cscs") {
      base = loggops::NetworkConfig::cscs_testbed();
    } else if (net == "daint") {
      base = loggops::NetworkConfig::piz_daint();
    } else {
      throw UsageError("unknown --nets preset '" + net +
                       "' (want cscs or daint)");
    }
    for (const Override* L : axis(Ls)) {
      for (const Override* o : axis(os_)) {
        for (const Override* G : axis(Gs)) {
          core::ConfigVariant v;
          v.name = net;
          v.params = base;
          if (L) {
            v.params.L = L->value;
            v.name += "/L=" + L->text;
          }
          if (o) {
            v.params.o = o->value;
            v.o_is_default = false;
            v.name += "/o=" + o->text;
          }
          if (G) {
            v.params.G = G->value;
            v.name += "/G=" + G->text;
          }
          if (req.S) {
            if (*req.S < 1) {
              throw UsageError(
                  strformat("need --S >= 1 (got %llu)",
                            static_cast<unsigned long long>(*req.S)));
            }
            v.params.S = *req.S;
          }
          out.push_back(std::move(v));
        }
      }
    }
  }
  return out;
}

}  // namespace

CampaignResult Engine::campaign_impl(const CampaignRequest& req) {
  core::CampaignSpec spec;
  spec.apps = req.apps;
  spec.ranks = req.ranks;
  spec.scales = req.scales;
  spec.topologies = req.topologies;
  spec.configs = campaign_configs(req);
  spec.delta_Ls = core::linear_grid(us(req.grid.dl_max_us), req.grid.points);
  spec.threads = req.threads;
  spec.topo = req.topo;
  spec.mc.samples = req.mc_samples;
  spec.mc.seed = req.seed;
  spec.mc.sigma_L = req.mc_sigma_L;
  spec.mc.sigma_o = req.mc_sigma_o;
  spec.mc.sigma_G = req.mc_sigma_G;
  spec.mc.noise.sigma = req.mc_edge_sigma;
  spec.mc.noise.bias = req.mc_edge_bias;

  // Optional per-point measurement column: the seeded cluster emulator as
  // the campaign probe.  Every scenario constructs its own emulator from
  // the shared seed, so the column's bytes depend only on the spec — never
  // on the thread count or scenario interleaving.  The probe knobs are
  // validated whatever the probe state — a bad value must be a usage
  // error, not a silent no-op.
  injector::ClusterEmulator::Config emu_cfg;
  emu_cfg.noise_sigma = req.noise_sigma;
  emu_cfg.seed = req.seed;
  if (req.probe_runs < 1) {
    throw UsageError(
        strformat("need --probe-runs >= 1 (got %d)", req.probe_runs));
  }
  if (emu_cfg.noise_sigma < 0.0) {
    throw UsageError(
        strformat("need --noise-sigma >= 0 (got %g)", emu_cfg.noise_sigma));
  }
  core::Campaign::Probe probe;
  if (!req.probe.empty()) {
    if (req.probe != "emulator") {
      throw UsageError("unknown --probe '" + req.probe + "' (want emulator)");
    }
    const int probe_runs = req.probe_runs;
    probe = [emu_cfg, probe_runs](const core::Scenario& s,
                                  const graph::Graph& g) {
      injector::ClusterEmulator emulator(g, s.params, emu_cfg);
      return emulator.sweep(s.delta_Ls, probe_runs);
    };
  }

  core::Campaign campaign(spec);
  CampaignResult res;
  res.results = campaign.run(probe, cache_, solver_cache_);
  res.scenarios = campaign.stats().scenarios_run;
  res.delta_points = spec.delta_Ls.size();
  res.distinct_graphs = campaign.stats().graphs_built;
  res.has_probe = static_cast<bool>(probe);
  return res;
}

TopoResult Engine::topo(const TopoRequest& req) { return topo_on(0, req); }

TopoResult Engine::topo_on(int worker, const TopoRequest& req) {
  return timed("topo", handles_.op_topo,
               [&] { return topo_impl(worker, req); });
}

TopoResult Engine::topo_impl(int worker, const TopoRequest& req) {
  const ResolvedApp app = resolve(req.app);
  const graph::Graph& g = graph_for(app);
  const topo::FatTree fat_tree(req.ft_radix);
  const topo::Dragonfly dragonfly(req.df_groups, req.df_routers,
                                  req.df_hosts);
  const std::array<const topo::Topology*, 2> topologies{&fat_tree,
                                                        &dragonfly};
  for (const topo::Topology* t : topologies) {
    if (t->nnodes() < app.ranks) {
      throw Error(t->name() + " has only " + std::to_string(t->nnodes()) +
                  " nodes for " + std::to_string(app.ranks) + " ranks");
    }
  }
  const auto placement = topo::identity_placement(app.ranks);
  auto& ws = workspaces_[static_cast<std::size_t>(worker)];

  TopoResult res;
  res.app = app;
  for (const topo::Topology* t : topologies) {
    auto space = std::make_shared<lp::LinkClassParamSpace>(
        topo::make_wire_latency_space(app.params, *t, placement, req.l_wire,
                                      req.d_switch));
    const lp::ParametricSolver solver(g, space);
    const auto& sol = solver.solve(0, req.l_wire, ws);
    const double runtime = sol.value;
    const double gradient = sol.gradient[0];
    const double tol =
        solver.max_param_for_budget(0, runtime * 1.01, ws);
    res.topologies.push_back({t->name(), runtime, gradient, tol});
  }

  // Dragonfly per-class breakdown (Fig. 19): tolerance of each wire class
  // with the other two held at their base values.
  auto df_space = std::make_shared<lp::LinkClassParamSpace>(
      topo::make_dragonfly_class_space(app.params, dragonfly, placement,
                                       req.l_wire, req.l_wire, req.l_wire,
                                       req.d_switch));
  const lp::ParametricSolver df_solver(g, df_space);
  const auto& base_sol = df_solver.solve(0, req.l_wire, ws);
  const double T0 = base_sol.value;
  const double base_lambda = base_sol.gradient[0];
  res.df_base_runtime = T0;
  for (int k = 0; k < df_space->num_params(); ++k) {
    const double lambda =
        k == 0 ? base_lambda
               : df_solver.solve(k, req.l_wire, ws)
                     .gradient[static_cast<std::size_t>(k)];
    const double tol = df_solver.max_param_for_budget(k, T0 * 1.01, ws);
    res.classes.push_back({df_space->param_name(k), lambda, tol});
  }
  return res;
}

PlaceResult Engine::place_impl(const PlaceRequest& req) {
  const ResolvedApp app = resolve(req.app);
  const graph::Graph& g = graph_for(app);
  const topo::FatTree ft(req.ft_radix);
  if (ft.nnodes() < app.ranks) {
    throw Error(ft.name() + " has only " + std::to_string(ft.nnodes()) +
                " nodes for " + std::to_string(app.ranks) + " ranks");
  }
  core::WireCost wire;
  wire.l_wire = req.l_wire;
  wire.d_switch = req.d_switch;

  const auto block = core::block_placement(g, app.params, ft, wire);
  const auto volume = core::volume_greedy_placement(g, app.params, ft, wire);
  const auto opt = core::optimize_placement(g, app.params, ft, wire, {},
                                            req.max_rounds);

  PlaceResult res;
  res.app = app;
  res.topology = ft.name();
  res.strategies.push_back({"block (default)", block.predicted_runtime});
  res.strategies.push_back({"volume-greedy", volume.predicted_runtime});
  res.strategies.push_back({strformat("llamp algorithm 3 (%d swaps)",
                                      opt.swaps),
                            opt.predicted_runtime});
  return res;
}

Response Engine::run(const Request& req) { return run_on(0, req); }

Response Engine::run_on(int worker, const Request& req) {
  struct Visitor {
    Engine& engine;
    int worker;
    Response operator()(const AnalyzeRequest& r) { return engine.analyze(r); }
    Response operator()(const SweepRequest& r) { return engine.sweep(r); }
    Response operator()(const CampaignRequest& r) {
      return engine.campaign(r);
    }
    Response operator()(const McRequest& r) { return engine.mc(r); }
    Response operator()(const TopoRequest& r) {
      return engine.topo_on(worker, r);
    }
    Response operator()(const PlaceRequest& r) { return engine.place(r); }
  };
  return std::visit(Visitor{*this, worker}, req);
}

namespace {

/// A copy of the request with its inner parallelism knob forced to 1
/// (types without one — topo, place — pass through unchanged).
Request single_threaded(Request req) {
  std::visit(
      [](auto& r) {
        if constexpr (requires { r.threads; }) r.threads = 1;
      },
      req);
  return req;
}

}  // namespace

std::vector<Engine::Outcome> Engine::run_batch(
    const std::vector<Request>& requests, int threads) {
  // One batch at a time: the pool's job slot and the per-worker
  // workspaces are not shareable across concurrent batches.
  const std::lock_guard<std::mutex> lock(batch_mutex_);
  const obs::SpanScope span(tracer_, "batch.run");
  handles_.batches.inc();
  handles_.batch_requests.inc(requests.size());
  std::vector<Outcome> outcomes(requests.size());
  // When the batch itself fans out, request-level parallelism wins: each
  // request runs its sweeps/samples single-threaded instead of spawning a
  // hardware-concurrency pool next to W already-busy workers.  Thread
  // counts never change result bytes (the repo-wide determinism
  // contract), so this is purely a scheduling choice.
  const int cap = threads > 0 ? std::min(threads, pool_.size()) : pool_.size();
  const bool parallel_batch = effective_threads(requests.size(), cap) > 1;
  pool_.for_workers(requests.size(), threads, [&](int worker, std::size_t i) {
    // One request's failure is its own outcome, never the batch's: the
    // remaining lines still execute and emit in order.
    const TimeNs t0 = monotonic_now();
    try {
      outcomes[i].response = run_on(
          worker, parallel_batch ? single_threaded(requests[i]) : requests[i]);
    } catch (const UsageError& e) {
      outcomes[i].error = e.what();
      outcomes[i].usage_error = true;
    } catch (const std::exception& e) {
      outcomes[i].error = e.what();
    }
    outcomes[i].elapsed_ns = monotonic_now() - t0;
  });
  // Per-request latencies feed the batch histogram in input order from
  // this (single) thread, not from the workers — so the quantile sketch's
  // feed order is deterministic whatever the thread count.
  for (const Outcome& o : outcomes) {
    handles_.batch_request_ns.record(o.elapsed_ns);
  }
  return outcomes;
}

// ---------------------------------------------------------------------------
// Observability surfaces.
// ---------------------------------------------------------------------------

std::string Engine::cache_stats_string() const {
  return cache_.stats_string() + '\n' + solver_cache_.stats_string();
}

obs::Snapshot Engine::metrics_snapshot() const {
  obs::Snapshot snap = metrics_.snapshot();
  // Import the subsystem tallies that live outside the registry (they
  // predate it and their tests pin the struct forms).  Deterministic
  // per-request-sequence values go in as counters; byte sizes and timing-
  // or machine-valued quantities go in as gauges, matching the snapshot's
  // determinism contract.
  const core::GraphCache::Stats gc = cache_.stats();
  const core::SolverCache::Stats sc = solver_cache_.stats();
  const ThreadPool::Stats ps = pool_.stats();
  snap.set_counter("graph_cache.built", gc.built);
  snap.set_counter("graph_cache.hits", gc.hits);
  snap.set_counter("solver_cache.built", sc.built);
  snap.set_counter("solver_cache.hits", sc.hits);
  snap.set_counter("solver_cache.anchor_solves", sc.anchor_solves);
  snap.set_counter("solver_cache.replays", sc.replays);
  snap.set_counter("pool.jobs", ps.jobs);
  snap.set_counter("pool.tasks", ps.tasks);
  // Scrape bookkeeping: the sequence number orders snapshots of one
  // session (monotonic from 1; a restart resets it), uptime stamps them.
  snap.set_counter("engine.metrics_seq",
                   metrics_seq_.fetch_add(1, std::memory_order_relaxed) + 1);
  snap.set_gauge("engine.uptime_ns", static_cast<double>(uptime_ns()));
  snap.set_gauge("graph_cache.bytes", static_cast<double>(gc.bytes));
  snap.set_gauge("solver_cache.anchor_bytes",
                 static_cast<double>(sc.anchor_bytes));
  snap.set_gauge("pool.busy_ns", static_cast<double>(ps.busy_ns));
  snap.set_gauge("pool.size", static_cast<double>(pool_.size()));
  snap.set_gauge("pool.slices", static_cast<double>(ps.slices));
  return snap;
}

std::string Engine::metrics_json() const { return metrics_snapshot().to_json(); }

std::string Engine::metrics_string() const {
  return metrics_snapshot().to_string();
}

}  // namespace llamp::api
