#include "api/batch.hpp"

#include <istream>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::api {
namespace {

std::string error_line(std::size_t id, const std::string& op,
                       const std::string& message, bool usage) {
  std::string out = strformat("{\"id\": %zu, ", id);
  if (!op.empty()) out += "\"op\": \"" + json_escape_string(op) + "\", ";
  out += strformat("\"error\": {\"kind\": \"%s\", \"message\": \"%s\"}}",
                   usage ? "usage" : "analysis",
                   json_escape_string(message).c_str());
  return out;
}

}  // namespace

BatchOutcome serve_jsonl(Engine& engine, std::istream& in, std::ostream& out,
                         int threads) {
  // Registration at the surface's entry point, once per call — the
  // per-line loop below only touches the returned handle (the registry's
  // contract split; llamp-lint rejects lookups inside hot regions).
  obs::Counter parse_error_counter =
      engine.metrics().counter("batch.parse_errors");

  // Phase 1: read and parse every line up front.  Parsing is cheap next to
  // an LP analysis, and knowing the full request list first is what lets
  // phase 2 hand the engine one deterministic, order-indexed batch.
  std::vector<Request> requests;
  std::vector<std::string> parse_errors;  // aligned; empty = parsed
  std::vector<std::string> parse_error_ops;  // best-effort op of bad lines
  {
    const obs::SpanScope parse_span(engine.tracer(), "batch.parse");
    std::string line;
    std::size_t lineno = 0;  // physical 1-based input line
    while (std::getline(in, line)) {
      ++lineno;
      // CRLF input (a Windows-written request file) parses like LF input:
      // getline leaves the '\r' on the line, which would otherwise reach
      // the JSON parser as a trailing byte of every request.
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (trim(line).empty()) continue;
      try {
        requests.push_back(parse_request(line));
        parse_errors.emplace_back();
        parse_error_ops.emplace_back();
      } catch (const Error& e) {
        requests.emplace_back();  // placeholder; never executed
        parse_error_counter.inc();
        // Name the physical input line (blank lines shift it off the id)
        // so the producer of a bad request file can find the offending
        // line.
        parse_errors.push_back(
            strformat("input line %zu: %s", lineno, e.what()));
        // A rejected request (unknown field, bad type) often still names
        // its op; echo it so consumers keying on .op see it on failures
        // too.  Only a line that is not valid JSON at all loses the field.
        std::string op;
        try {
          const JsonValue doc = JsonValue::parse(line);
          if (const JsonValue* o = doc.find("op");
              o && o->kind() == JsonValue::Kind::kString) {
            op = o->as_string("op");
          }
        } catch (const Error&) {
        }
        parse_error_ops.push_back(std::move(op));
      }
    }
  }

  // Phase 2: execute the parseable requests on the engine's pool (the
  // "batch.run" span is recorded inside run_batch itself, so library
  // callers get it too).
  std::vector<std::size_t> runnable;
  std::vector<Request> to_run;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (parse_errors[i].empty()) {
      runnable.push_back(i);
      to_run.push_back(requests[i]);
    }
  }
  const std::vector<Engine::Outcome> outcomes =
      engine.run_batch(to_run, threads);

  // Phase 3: emit one line per request, by input id.
  const obs::SpanScope emit_span(engine.tracer(), "batch.emit");
  BatchOutcome batch;
  batch.requests = requests.size();
  std::vector<std::string> lines(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!parse_errors[i].empty()) {
      lines[i] =
          error_line(i, parse_error_ops[i], parse_errors[i], /*usage=*/true);
      ++batch.failures;
    }
  }
  for (std::size_t j = 0; j < runnable.size(); ++j) {
    const std::size_t i = runnable[j];
    const Engine::Outcome& o = outcomes[j];
    const std::string op = op_name(requests[i]);
    if (o.response) {
      lines[i] = strformat("{\"id\": %zu, \"op\": \"%s\", \"result\": %s}", i,
                           op.c_str(), to_json_line(*o.response).c_str());
    } else {
      lines[i] = error_line(i, op, o.error, o.usage_error);
      ++batch.failures;
    }
  }
  for (const std::string& l : lines) out << l << '\n';
  return batch;
}

}  // namespace llamp::api
