#pragma once

#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "loggops/wire_model.hpp"

namespace llamp::graph {

/// CPU cost of executing a vertex under the LogGPS configuration `p`:
/// calc vertices cost their recorded duration, send/recv vertices cost the
/// per-message overhead o plus the per-byte overhead O·s, post vertices cost
/// the posting overhead o.  These formulas are the single source of truth
/// shared by the discrete-event simulator and the LP layer — their
/// equivalence property tests depend on that.
inline TimeNs vertex_cost(const Vertex& v, const loggops::Params& p) {
  switch (v.kind) {
    case VertexKind::kCalc:
      return v.duration;
    case VertexKind::kSend:
    case VertexKind::kRecv:
      return p.o + static_cast<double>(v.bytes) * p.O;
    case VertexKind::kPost:
      return p.o;
  }
  return 0.0;
}

/// Cost of traversing an edge: o_mult·o + l_mult·L(pair) + (bytes-1)·G(pair),
/// where the wire pair is the message's (sender, receiver) for comm, issue,
/// and completion edges.
inline TimeNs edge_cost(const Graph& g, const Edge& e, const loggops::Params& p,
                        const loggops::WireModel& wire) {
  TimeNs c = static_cast<double>(e.o_mult) * p.o;
  if (e.l_mult != 0 || e.bytes != 0) {
    const auto [src, dst] = g.edge_wire_pair(e);
    if (e.l_mult != 0) {
      c += static_cast<double>(e.l_mult) * wire.latency(src, dst);
    }
    if (e.bytes > 1) {
      c += static_cast<double>(e.bytes - 1) * wire.gap_per_byte(src, dst);
    }
  }
  return c;
}

/// Uniform-wire convenience overload.
inline TimeNs edge_cost(const Graph& g, const Edge& e,
                        const loggops::Params& p) {
  const loggops::UniformWire wire(p);
  return edge_cost(g, e, p, wire);
}

}  // namespace llamp::graph
