#include "graph/graph_io.hpp"

#include <ostream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::graph {

namespace {
constexpr std::string_view kMagic = "LLAMP_GOAL";
constexpr int kVersion = 1;

std::string_view edge_kind_name(EdgeKind k) {
  switch (k) {
    case EdgeKind::kLocal: return "local";
    case EdgeKind::kComm: return "comm";
    case EdgeKind::kIssue: return "issue";
    case EdgeKind::kSendCompletion: return "compl";
  }
  return "?";
}
}  // namespace

void write_goal(std::ostream& os, const Graph& g) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "ranks " << g.nranks() << '\n';
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Vertex& vx = g.vertex(v);
    switch (vx.kind) {
      case VertexKind::kCalc:
        os << "v " << v << " calc " << vx.rank << ' '
           << strformat("%.17g", vx.duration) << '\n';
        break;
      case VertexKind::kPost:
        os << "v " << v << " post " << vx.rank << ' ' << vx.peer << '\n';
        break;
      case VertexKind::kSend:
      case VertexKind::kRecv:
        os << "v " << v << ' '
           << (vx.kind == VertexKind::kSend ? "send" : "recv") << ' '
           << vx.rank << ' ' << vx.peer << ' ' << vx.bytes << ' ' << vx.tag
           << '\n';
        break;
    }
  }
  for (const Edge& e : g.edges()) {
    os << "e " << e.from << ' ' << e.to << ' ' << edge_kind_name(e.kind) << ' '
       << static_cast<int>(e.o_mult) << ' ' << static_cast<int>(e.l_mult)
       << ' ' << e.bytes << '\n';
  }
}

std::string to_goal(const Graph& g) {
  std::ostringstream os;
  write_goal(os, g);
  return os.str();
}

Graph read_goal(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw GraphError("goal: empty input");
  {
    const auto header = split_ws(line);
    if (header.size() != 2 || header[0] != kMagic ||
        parse_ll(header[1]) != kVersion) {
      throw GraphError("goal: bad header '" + line + "'");
    }
  }
  if (!std::getline(is, line)) throw GraphError("goal: missing ranks line");
  const auto ranks_fields = split_ws(line);
  if (ranks_fields.size() != 2 || ranks_fields[0] != "ranks") {
    throw GraphError("goal: bad ranks line");
  }
  Graph g(static_cast<int>(parse_ll(ranks_fields[1])));
  std::size_t expected_id = 0;
  std::size_t lineno = 2;
  while (std::getline(is, line)) {
    ++lineno;
    const auto t = trim(line);
    if (t.empty() || t.front() == '#') continue;
    const auto f = split_ws(t);
    if (f[0] == "v") {
      if (f.size() < 5) {
        throw GraphError(strformat("goal line %zu: short vertex", lineno));
      }
      if (static_cast<std::size_t>(parse_ll(f[1])) != expected_id) {
        throw GraphError(strformat("goal line %zu: ids must be dense "
                                   "ascending", lineno));
      }
      ++expected_id;
      const auto rank = static_cast<int>(parse_ll(f[3]));
      if (f[2] == "calc") {
        g.add_calc(rank, parse_double(f[4]));
      } else if (f[2] == "post") {
        g.add_post(rank, static_cast<int>(parse_ll(f[4])));
      } else if (f[2] == "send" || f[2] == "recv") {
        if (f.size() != 7) {
          throw GraphError(strformat("goal line %zu: p2p vertex needs 7 "
                                     "fields", lineno));
        }
        const auto peer = static_cast<int>(parse_ll(f[4]));
        const auto bytes = static_cast<std::uint64_t>(parse_ll(f[5]));
        const auto tag = static_cast<int>(parse_ll(f[6]));
        if (f[2] == "send") {
          g.add_send(rank, peer, bytes, tag);
        } else {
          g.add_recv(rank, peer, bytes, tag);
        }
      } else {
        throw GraphError(strformat("goal line %zu: unknown vertex kind '%s'",
                                   lineno, f[2].c_str()));
      }
    } else if (f[0] == "e") {
      if (f.size() != 7) {
        throw GraphError(strformat("goal line %zu: edge needs 7 fields",
                                   lineno));
      }
      const auto from = static_cast<VertexId>(parse_ll(f[1]));
      const auto to = static_cast<VertexId>(parse_ll(f[2]));
      const auto o_mult = parse_ll(f[4]);
      const auto l_mult = parse_ll(f[5]);
      if (f[3] == "comm") {
        g.add_comm_edge(from, to, /*rendezvous=*/l_mult == 3);
      } else if (f[3] == "local") {
        g.add_local_edge(from, to);
      } else if (f[3] == "issue") {
        g.add_issue_edge(from, to, /*through_post=*/o_mult == 0);
      } else if (f[3] == "compl") {
        g.add_completion_edge_raw(from, to, static_cast<int>(o_mult),
                                  static_cast<int>(l_mult),
                                  static_cast<std::uint64_t>(parse_ll(f[6])));
      } else {
        throw GraphError(strformat("goal line %zu: unknown edge kind '%s'",
                                   lineno, f[3].c_str()));
      }
    } else {
      throw GraphError(strformat("goal line %zu: unknown record '%s'", lineno,
                                 f[0].c_str()));
    }
  }
  g.finalize();
  return g;
}

Graph goal_from_text(const std::string& text) {
  std::istringstream is(text);
  return read_goal(is);
}

std::string to_dot(const Graph& g) {
  std::ostringstream os;
  os << "digraph llamp {\n  rankdir=TB;\n";
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const Vertex& vx = g.vertex(v);
    switch (vx.kind) {
      case VertexKind::kCalc:
        os << strformat("  v%u [shape=box,style=filled,fillcolor=palegreen,"
                        "label=\"C r%d\\n%s\"];\n",
                        v, vx.rank, human_time_ns(vx.duration).c_str());
        break;
      case VertexKind::kPost:
        os << strformat("  v%u [shape=box,style=filled,fillcolor=lightblue,"
                        "label=\"P r%d\"];\n", v, vx.rank);
        break;
      case VertexKind::kSend:
        os << strformat("  v%u [shape=ellipse,style=filled,fillcolor=salmon,"
                        "label=\"S r%d->%d\\n%llu B\"];\n",
                        v, vx.rank, vx.peer,
                        static_cast<unsigned long long>(vx.bytes));
        break;
      case VertexKind::kRecv:
        os << strformat("  v%u [shape=ellipse,style=filled,fillcolor=salmon,"
                        "label=\"R r%d<-%d\\n%llu B\"];\n",
                        v, vx.rank, vx.peer,
                        static_cast<unsigned long long>(vx.bytes));
        break;
    }
  }
  for (const Edge& e : g.edges()) {
    const char* style = "";
    switch (e.kind) {
      case EdgeKind::kComm: style = " [style=bold,color=red]"; break;
      case EdgeKind::kIssue: style = " [style=dashed,color=blue]"; break;
      case EdgeKind::kSendCompletion:
        style = " [style=dotted,color=purple]";
        break;
      case EdgeKind::kLocal: break;
    }
    os << strformat("  v%u -> v%u%s;\n", e.from, e.to, style);
  }
  os << "}\n";
  return os.str();
}

}  // namespace llamp::graph
