#include "graph/graph.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::graph {

Graph::Graph(int nranks) : nranks_(nranks) {
  if (nranks <= 0) throw GraphError("need at least one rank");
}

void Graph::require_finalized() const {
  if (!finalized_) throw GraphError("operation requires a finalized graph");
}

void Graph::require_building() const {
  if (finalized_) throw GraphError("graph is already finalized");
}

VertexId Graph::add_vertex(Vertex v) {
  require_building();
  if (v.rank < 0 || v.rank >= nranks_) {
    throw GraphError(strformat("vertex rank %d out of range", v.rank));
  }
  if (vertices_.size() >= kInvalidVertex) {
    throw GraphError("vertex count overflow");
  }
  vertices_.push_back(v);
  return static_cast<VertexId>(vertices_.size() - 1);
}

VertexId Graph::add_calc(int rank, TimeNs duration) {
  if (duration < 0) throw GraphError("negative calc duration");
  Vertex v;
  v.kind = VertexKind::kCalc;
  v.rank = rank;
  v.duration = duration;
  return add_vertex(v);
}

VertexId Graph::add_post(int rank, int peer) {
  Vertex v;
  v.kind = VertexKind::kPost;
  v.rank = rank;
  v.peer = peer;
  return add_vertex(v);
}

VertexId Graph::add_send(int rank, int peer, std::uint64_t bytes, int tag) {
  if (peer < 0 || peer >= nranks_ || peer == rank) {
    throw GraphError(strformat("send %d->%d invalid", rank, peer));
  }
  Vertex v;
  v.kind = VertexKind::kSend;
  v.rank = rank;
  v.peer = peer;
  v.bytes = bytes;
  v.tag = tag;
  return add_vertex(v);
}

VertexId Graph::add_recv(int rank, int peer, std::uint64_t bytes, int tag) {
  if (peer < 0 || peer >= nranks_ || peer == rank) {
    throw GraphError(strformat("recv %d<-%d invalid", rank, peer));
  }
  Vertex v;
  v.kind = VertexKind::kRecv;
  v.rank = rank;
  v.peer = peer;
  v.bytes = bytes;
  v.tag = tag;
  return add_vertex(v);
}

void Graph::add_local_edge(VertexId from, VertexId to) {
  require_building();
  if (from >= vertices_.size() || to >= vertices_.size()) {
    throw GraphError("edge endpoint out of range");
  }
  if (from == to) throw GraphError("self-loop edge");
  if (vertices_[from].rank != vertices_[to].rank) {
    throw GraphError("local edge must stay within one rank");
  }
  edges_.push_back({from, to, EdgeKind::kLocal, 0, 0, 0});
}

void Graph::add_comm_edge(VertexId send, VertexId recv, bool rendezvous) {
  require_building();
  if (send >= vertices_.size() || recv >= vertices_.size()) {
    throw GraphError("comm edge endpoint out of range");
  }
  const Vertex& s = vertices_[send];
  const Vertex& r = vertices_[recv];
  if (s.kind != VertexKind::kSend || r.kind != VertexKind::kRecv) {
    throw GraphError("comm edge must connect a send to a recv");
  }
  if (s.peer != r.rank || r.peer != s.rank) {
    throw GraphError(strformat("comm edge rank mismatch: send %d->%d vs recv "
                               "%d<-%d", s.rank, s.peer, r.rank, r.peer));
  }
  if (s.bytes != r.bytes) {
    throw GraphError("comm edge size mismatch between send and recv");
  }
  Edge e{send, recv, EdgeKind::kComm, 0,
         static_cast<std::uint8_t>(rendezvous ? 3 : 1), s.bytes};
  edges_.push_back(e);
  ++num_comm_edges_;
}

void Graph::add_issue_edge(VertexId from, VertexId recv, bool through_post) {
  require_building();
  if (from >= vertices_.size() || recv >= vertices_.size()) {
    throw GraphError("issue edge endpoint out of range");
  }
  const Vertex& r = vertices_[recv];
  if (r.kind != VertexKind::kRecv) {
    throw GraphError("issue edge must target a recv vertex");
  }
  if (vertices_[from].rank != r.rank) {
    throw GraphError("issue edge must stay within the receiver's rank");
  }
  Edge e{from, recv, EdgeKind::kIssue,
         static_cast<std::uint8_t>(through_post ? 0 : 1), 2, r.bytes};
  edges_.push_back(e);
}

void Graph::add_send_completion_edge(VertexId recv, VertexId waiter) {
  require_building();
  if (recv >= vertices_.size() || waiter >= vertices_.size()) {
    throw GraphError("completion edge endpoint out of range");
  }
  if (vertices_[recv].kind != VertexKind::kRecv) {
    throw GraphError("completion edge must originate at a recv vertex");
  }
  edges_.push_back({recv, waiter, EdgeKind::kSendCompletion, 1, 0, 0});
}

void Graph::add_handshake_completion_edges(VertexId send, VertexId post,
                                           VertexId waiter) {
  require_building();
  if (send >= vertices_.size() || post >= vertices_.size() ||
      waiter >= vertices_.size()) {
    throw GraphError("completion edge endpoint out of range");
  }
  if (vertices_[send].kind != VertexKind::kSend) {
    throw GraphError("handshake completion needs a send vertex");
  }
  if (vertices_[post].kind != VertexKind::kPost) {
    throw GraphError("handshake completion needs a post vertex");
  }
  // From the send's completion (ts + o): + o + 3L + B + o.
  add_completion_edge_raw(send, waiter, 2, 3, vertices_[send].bytes);
  // From the post's completion (t_post + o): + o + 2L + B + o.
  add_completion_edge_raw(post, waiter, 2, 2, vertices_[send].bytes);
}

void Graph::add_completion_edge_raw(VertexId from, VertexId to, int o_mult,
                                    int l_mult, std::uint64_t bytes) {
  require_building();
  if (from >= vertices_.size() || to >= vertices_.size()) {
    throw GraphError("completion edge endpoint out of range");
  }
  if (vertices_[from].kind == VertexKind::kCalc) {
    throw GraphError("completion edge cannot originate at a calc vertex");
  }
  if (o_mult < 0 || o_mult > 255 || l_mult < 0 || l_mult > 255) {
    throw GraphError("completion edge multiplier out of range");
  }
  edges_.push_back({from, to, EdgeKind::kSendCompletion,
                    static_cast<std::uint8_t>(o_mult),
                    static_cast<std::uint8_t>(l_mult), bytes});
}

void Graph::finalize() {
  require_building();
  const std::size_t n = vertices_.size();

  // The construction vectors grew geometrically; campaigns cache finalized
  // graphs for their whole run, so trim the slack (up to ~2x) now.
  vertices_.shrink_to_fit();
  edges_.shrink_to_fit();

  // Build CSR adjacency (out and in); assign/resize below size every
  // array exactly.
  out_offsets_.assign(n + 1, 0);
  in_offsets_.assign(n + 1, 0);
  for (const Edge& e : edges_) {
    ++out_offsets_[e.from + 1];
    ++in_offsets_[e.to + 1];
  }
  for (std::size_t i = 0; i < n; ++i) {
    out_offsets_[i + 1] += out_offsets_[i];
    in_offsets_[i + 1] += in_offsets_[i];
  }
  out_adj_.resize(edges_.size());
  in_adj_.resize(edges_.size());
  {
    std::vector<std::uint64_t> out_pos(out_offsets_.begin(),
                                       out_offsets_.end() - 1);
    std::vector<std::uint64_t> in_pos(in_offsets_.begin(),
                                      in_offsets_.end() - 1);
    for (std::uint32_t idx = 0; idx < edges_.size(); ++idx) {
      const Edge& e = edges_[idx];
      out_adj_[out_pos[e.from]++] = {e.to, idx};
      in_adj_[in_pos[e.to]++] = {e.from, idx};
    }
  }

  // Comm-edge pairing invariants + partner table.
  comm_partner_.assign(n, kInvalidVertex);
  for (const Edge& e : edges_) {
    if (e.kind != EdgeKind::kComm) continue;
    if (comm_partner_[e.from] != kInvalidVertex) {
      throw GraphError(strformat("send vertex %u has multiple comm edges",
                                 e.from));
    }
    if (comm_partner_[e.to] != kInvalidVertex) {
      throw GraphError(strformat("recv vertex %u has multiple comm edges",
                                 e.to));
    }
    comm_partner_[e.from] = e.to;
    comm_partner_[e.to] = e.from;
  }
  for (VertexId v = 0; v < n; ++v) {
    const VertexKind k = vertices_[v].kind;
    if ((k == VertexKind::kSend || k == VertexKind::kRecv) &&
        comm_partner_[v] == kInvalidVertex) {
      throw GraphError(strformat("%s vertex %u has no comm edge",
                                 k == VertexKind::kSend ? "send" : "recv", v));
    }
  }

  // Kahn topological sort; detects cycles (a cycle through rendezvous
  // completion edges corresponds to a real MPI deadlock).
  topo_.clear();
  topo_.reserve(n);
  std::vector<std::uint32_t> indeg(n, 0);
  for (const Edge& e : edges_) ++indeg[e.to];
  std::vector<VertexId> frontier;
  for (VertexId v = 0; v < n; ++v) {
    if (indeg[v] == 0) frontier.push_back(v);
  }
  while (!frontier.empty()) {
    const VertexId v = frontier.back();
    frontier.pop_back();
    topo_.push_back(v);
    const auto oes = std::span(out_adj_).subspan(
        out_offsets_[v], out_offsets_[v + 1] - out_offsets_[v]);
    for (const Adj& a : oes) {
      if (--indeg[a.other] == 0) frontier.push_back(a.other);
    }
  }
  if (topo_.size() != n) {
    throw GraphError(strformat("cycle detected (deadlock?): %zu of %zu "
                               "vertices sorted", topo_.size(), n));
  }
  finalized_ = true;
}

std::span<const Graph::Adj> Graph::out_edges(VertexId v) const {
  require_finalized();
  return std::span(out_adj_).subspan(out_offsets_[v],
                                     out_offsets_[v + 1] - out_offsets_[v]);
}

std::span<const Graph::Adj> Graph::in_edges(VertexId v) const {
  require_finalized();
  return std::span(in_adj_).subspan(in_offsets_[v],
                                    in_offsets_[v + 1] - in_offsets_[v]);
}

std::span<const VertexId> Graph::topo_order() const {
  require_finalized();
  return topo_;
}

std::pair<int, int> Graph::edge_wire_pair(const Edge& e) const {
  switch (e.kind) {
    case EdgeKind::kComm:
      return {vertices_[e.from].rank, vertices_[e.to].rank};
    case EdgeKind::kIssue:
      // Target is the recv; the wire belongs to (sender, receiver).
      return {vertices_[e.to].peer, vertices_[e.to].rank};
    case EdgeKind::kSendCompletion:
      // Source may be the matched recv (blocking), the send itself, or the
      // receiver's post vertex; all attribute to (sender, receiver).
      switch (vertices_[e.from].kind) {
        case VertexKind::kSend:
          return {vertices_[e.from].rank, vertices_[e.from].peer};
        case VertexKind::kRecv:
        case VertexKind::kPost:
        default:
          return {vertices_[e.from].peer, vertices_[e.from].rank};
      }
    case EdgeKind::kLocal:
    default:
      return {vertices_[e.from].rank, vertices_[e.from].rank};
  }
}

std::size_t Graph::memory_bytes() const {
  const auto bytes = [](const auto& v) {
    return v.capacity() * sizeof(v[0]);
  };
  return bytes(vertices_) + bytes(edges_) + bytes(out_offsets_) +
         bytes(out_adj_) + bytes(in_offsets_) + bytes(in_adj_) +
         bytes(topo_) + bytes(comm_partner_);
}

std::string Graph::stats_string() const {
  std::size_t calc = 0, send = 0, recv = 0, post = 0;
  for (const Vertex& v : vertices_) {
    switch (v.kind) {
      case VertexKind::kCalc: ++calc; break;
      case VertexKind::kSend: ++send; break;
      case VertexKind::kRecv: ++recv; break;
      case VertexKind::kPost: ++post; break;
    }
  }
  return strformat("graph{ranks=%d vertices=%zu (calc=%zu send=%zu recv=%zu "
                   "post=%zu) edges=%zu comm=%zu bytes=%zu}",
                   nranks_, vertices_.size(), calc, send, recv, post,
                   edges_.size(), num_comm_edges_, memory_bytes());
}

}  // namespace llamp::graph
