#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace llamp::graph {

/// GOAL-like text serialization of execution graphs (after the Group
/// Operation Assembly Language of Hoefler et al. that Schedgen emits):
///
///   LLAMP_GOAL 1
///   ranks <P>
///   v <id> calc <rank> <duration_ns>
///   v <id> send <rank> <peer> <bytes> <tag>
///   v <id> recv <rank> <peer> <bytes> <tag>
///   e <from> <to> local|comm
///
/// Vertex ids must be dense and ascending.  The reader returns a finalized
/// graph and throws GraphError on malformed input.
void write_goal(std::ostream& os, const Graph& g);
std::string to_goal(const Graph& g);
Graph read_goal(std::istream& is);
Graph goal_from_text(const std::string& text);

/// Graphviz DOT export for small graphs (documentation / debugging).  Calc
/// vertices are green boxes, send/recv red ellipses, comm edges bold.
std::string to_dot(const Graph& g);

}  // namespace llamp::graph
