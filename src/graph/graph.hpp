#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace llamp::graph {

using VertexId = std::uint32_t;
constexpr VertexId kInvalidVertex = static_cast<VertexId>(-1);

/// Vertex types of an MPI execution graph (§II-A of the paper, extended with
/// an explicit "post" vertex for nonblocking receives, Fig. 13).
enum class VertexKind : std::uint8_t {
  kCalc,  ///< local computation with a fixed duration
  kSend,  ///< point-to-point send initiation (costs o on the CPU)
  kRecv,  ///< point-to-point receive completion point (costs o on the CPU)
  kPost,  ///< nonblocking-receive posting point (costs o on the CPU)
};

/// Edge classification.  Every edge carries an affine *cost specification*
/// o_mult·o + l_mult·L(src,dst) + (bytes-1)·G(src,dst); the LogGPS values
/// are substituted at analysis time, which is what lets the LP layer treat L
/// and G as decision variables.
enum class EdgeKind : std::uint8_t {
  kLocal,           ///< same-rank program order (cost usually zero)
  kComm,            ///< send -> recv message edge
                    ///<   eager:      l_mult=1, bytes=s
                    ///<   rendezvous: l_mult=3, bytes=s (REQ + read-req + data)
  kIssue,           ///< rendezvous receive-issue edge: from the local
                    ///< predecessor (blocking recv; o_mult=1) or the post
                    ///< vertex (nonblocking; o_mult=0) into the recv vertex,
                    ///< with l_mult=2, bytes=s — the handshake path that does
                    ///< not include the REQ hop
  kSendCompletion,  ///< rendezvous sender completion: matched recv -> the
                    ///< send's wait vertex / program successor, o_mult=1
};

struct Vertex {
  VertexKind kind = VertexKind::kCalc;
  std::int32_t rank = 0;
  std::int32_t peer = -1;       ///< partner rank for send/recv
  std::int32_t tag = 0;
  std::uint64_t bytes = 0;      ///< message size for send/recv
  TimeNs duration = 0.0;        ///< cost of calc vertices
};

struct Edge {
  VertexId from = kInvalidVertex;
  VertexId to = kInvalidVertex;
  EdgeKind kind = EdgeKind::kLocal;
  std::uint8_t o_mult = 0;    ///< multiplier on the per-message overhead o
  std::uint8_t l_mult = 0;    ///< multiplier on the network latency L
  std::uint64_t bytes = 0;    ///< payload for the (bytes-1)·G term; 0 = none
};

/// A directed acyclic execution graph.  Built incrementally (add_* +
/// add_edge), then `finalize()` freezes it: adjacency becomes CSR, a
/// topological order is computed, and structural invariants are checked.
/// All analysis components (simulator, LP builders, parametric solver)
/// require a finalized graph.
class Graph {
 public:
  explicit Graph(int nranks);

  int nranks() const { return nranks_; }

  // --- construction --------------------------------------------------------
  VertexId add_calc(int rank, TimeNs duration);
  /// `peer` is the sending rank of the message the post belongs to; it only
  /// matters for wire attribution of handshake-completion edges.
  VertexId add_post(int rank, int peer = -1);
  VertexId add_send(int rank, int peer, std::uint64_t bytes, int tag = 0);
  VertexId add_recv(int rank, int peer, std::uint64_t bytes, int tag = 0);

  /// Same-rank precedence edge with zero cost.
  void add_local_edge(VertexId from, VertexId to);
  /// Communication edge; `from` must be a send, `to` the matching recv.
  /// `rendezvous` selects the l_mult=3 handshake cost over the eager l_mult=1.
  void add_comm_edge(VertexId send, VertexId recv, bool rendezvous);
  /// Rendezvous receive-issue edge into `recv`; `through_post` distinguishes
  /// the nonblocking (post vertex already paid its o) from the blocking form.
  void add_issue_edge(VertexId from, VertexId recv, bool through_post);
  /// Rendezvous sender-completion edge for a *blocking* receiver: the recv
  /// vertex's completion is exactly the handshake completion t_r', so the
  /// waiter follows it by one overhead (t_s' = t_r' + o).
  void add_send_completion_edge(VertexId recv, VertexId waiter);
  /// Rendezvous sender completion for a *nonblocking* receiver: the
  /// handshake finishes once the request is posted and the data streamed,
  /// independent of where the receiver's wait lands, so t_s' =
  /// max(ts + 2o + 3L + B, t_post + 2o + 2L + B) + o is anchored on the
  /// send and post vertices instead of the receiver's wait.
  void add_handshake_completion_edges(VertexId send, VertexId post,
                                      VertexId waiter);
  /// Deserialization back door: a completion edge with an explicit cost
  /// spec (graph_io uses this to reconstruct graphs losslessly).
  void add_completion_edge_raw(VertexId from, VertexId to, int o_mult,
                               int l_mult, std::uint64_t bytes);

  /// Freezes the graph.  Throws GraphError on cycles, comm edges with
  /// mismatched endpoints, or send/recv vertices without exactly one comm
  /// edge.
  void finalize();
  bool finalized() const { return finalized_; }

  // --- finalized accessors --------------------------------------------------
  std::size_t num_vertices() const { return vertices_.size(); }
  std::size_t num_edges() const { return edges_.size(); }
  std::size_t num_comm_edges() const { return num_comm_edges_; }
  const Vertex& vertex(VertexId v) const { return vertices_[v]; }

  /// In-edge reference: index into edges() plus the far endpoint.
  struct Adj {
    VertexId other;
    std::uint32_t edge;
  };
  std::span<const Adj> out_edges(VertexId v) const;
  std::span<const Adj> in_edges(VertexId v) const;
  const Edge& edge(std::uint32_t e) const { return edges_[e]; }

  /// Vertices in a topological order (every edge goes forward in it).
  std::span<const VertexId> topo_order() const;

  /// For a recv vertex: the matching send; for a send vertex: the matching
  /// recv; kInvalidVertex otherwise.
  VertexId comm_partner(VertexId v) const { return comm_partner_[v]; }

  /// The (src_rank, dst_rank) pair whose network parameters an edge's
  /// l_mult/bytes terms refer to.  For local edges this is (rank, rank).
  std::pair<int, int> edge_wire_pair(const Edge& e) const;

  /// Raw edge list (stable order of insertion).
  std::span<const Edge> edges() const { return edges_; }

  /// Heap bytes held by this graph (vertex/edge lists, CSR adjacency, topo
  /// order, partner table).  finalize() trims construction slack, so this
  /// is the steady-state footprint a campaign's graph cache pays per entry.
  std::size_t memory_bytes() const;

  std::string stats_string() const;

 private:
  void require_finalized() const;
  void require_building() const;
  VertexId add_vertex(Vertex v);

  int nranks_;
  std::vector<Vertex> vertices_;
  std::vector<Edge> edges_;
  std::size_t num_comm_edges_ = 0;
  bool finalized_ = false;

  // CSR adjacency + topo order, valid after finalize().
  std::vector<std::uint64_t> out_offsets_;
  std::vector<Adj> out_adj_;
  std::vector<std::uint64_t> in_offsets_;
  std::vector<Adj> in_adj_;
  std::vector<VertexId> topo_;
  std::vector<VertexId> comm_partner_;
};

}  // namespace llamp::graph
