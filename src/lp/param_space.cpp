#include "lp/param_space.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::lp {

namespace {

double payload_cost(std::uint64_t bytes, double G) {
  return bytes > 1 ? static_cast<double>(bytes - 1) * G : 0.0;
}

}  // namespace

Affine LatencyParamSpace::edge_cost(const graph::Graph&,
                                    const graph::Edge& e) const {
  Affine a;
  a.constant = static_cast<double>(e.o_mult) * p_.o + payload_cost(e.bytes, p_.G);
  if (e.l_mult != 0) {
    a.terms.push_back({0, static_cast<double>(e.l_mult)});
  }
  return a;
}

Affine LatencyBandwidthParamSpace::edge_cost(const graph::Graph&,
                                             const graph::Edge& e) const {
  Affine a;
  a.constant = static_cast<double>(e.o_mult) * p_.o;
  if (e.l_mult != 0) {
    a.terms.push_back({0, static_cast<double>(e.l_mult)});
  }
  if (e.bytes > 1) {
    a.terms.push_back({1, static_cast<double>(e.bytes - 1)});
  }
  return a;
}

PairwiseLatencyParamSpace::PairwiseLatencyParamSpace(loggops::Params p,
                                                     int nranks,
                                                     bool include_gap_params)
    : p_(p), nranks_(nranks), gap_params_(include_gap_params) {
  p_.validate();
  if (nranks < 2) throw LpError("pairwise space needs >= 2 ranks");
  const std::size_t pairs =
      static_cast<std::size_t>(nranks) * static_cast<std::size_t>(nranks - 1) / 2;
  base_.assign(pairs, p.L);
  gap_.assign(pairs, p.G);
}

PairwiseLatencyParamSpace::PairwiseLatencyParamSpace(
    loggops::Params p, int nranks, std::vector<double> latency_matrix,
    std::vector<double> gap_matrix, bool include_gap_params)
    : PairwiseLatencyParamSpace(p, nranks, include_gap_params) {
  const auto need = static_cast<std::size_t>(nranks) *
                    static_cast<std::size_t>(nranks);
  if (latency_matrix.size() != need || gap_matrix.size() != need) {
    throw LpError("pairwise space: matrix size mismatch");
  }
  for (int i = 0; i < nranks; ++i) {
    for (int j = i + 1; j < nranks; ++j) {
      const auto ij = static_cast<std::size_t>(i) *
                          static_cast<std::size_t>(nranks) +
                      static_cast<std::size_t>(j);
      const auto ji = static_cast<std::size_t>(j) *
                          static_cast<std::size_t>(nranks) +
                      static_cast<std::size_t>(i);
      if (latency_matrix[ij] != latency_matrix[ji] ||
          gap_matrix[ij] != gap_matrix[ji]) {
        throw LpError(strformat("pairwise space: matrices must be symmetric "
                                "(pair %d,%d)", i, j));
      }
      const auto k = static_cast<std::size_t>(pair_index(i, j));
      base_[k] = latency_matrix[ij];
      gap_[k] = gap_matrix[ij];
    }
  }
}

PerturbedParamSpace::PerturbedParamSpace(
    std::shared_ptr<const ParamSpace> base, std::vector<double> edge_factor)
    : base_(std::move(base)), edge_factor_(std::move(edge_factor)) {
  if (!base_) throw LpError("perturbed space: null base space");
  for (const double f : edge_factor_) {
    if (!std::isfinite(f) || f < 0.0) {
      throw LpError(strformat(
          "perturbed space: edge factors must be finite and >= 0 (got %g)",
          f));
    }
  }
}

Affine PerturbedParamSpace::edge_cost(const graph::Graph& g,
                                      const graph::Edge& e) const {
  if (edge_factor_.size() != g.num_edges()) {
    throw LpError(strformat(
        "perturbed space: %zu edge factors for a graph with %zu edges",
        edge_factor_.size(), g.num_edges()));
  }
  // Edges live contiguously in g.edges(); the reference's position is the
  // edge id the factors are indexed by.
  const auto edges = g.edges();
  const std::size_t id = static_cast<std::size_t>(&e - edges.data());
  if (id >= edges.size()) {
    throw LpError("perturbed space: edge does not belong to this graph");
  }
  Affine a = base_->edge_cost(g, e);
  const double f = edge_factor_[id];
  a.constant *= f;
  for (ParamTerm& t : a.terms) t.coeff *= f;
  return a;
}

int PairwiseLatencyParamSpace::pair_index(int i, int j) const {
  if (i == j || i < 0 || j < 0 || i >= nranks_ || j >= nranks_) {
    throw LpError(strformat("pairwise space: bad pair (%d,%d)", i, j));
  }
  if (i > j) std::swap(i, j);
  // Index into the strictly-upper-triangular enumeration.
  return i * nranks_ - i * (i + 1) / 2 + (j - i - 1);
}

int PairwiseLatencyParamSpace::gap_param_index(int i, int j) const {
  if (!gap_params_) {
    throw LpError("pairwise space was built without gap parameters");
  }
  return num_pairs() + pair_index(i, j);
}

int PairwiseLatencyParamSpace::num_params() const {
  return gap_params_ ? 2 * num_pairs() : num_pairs();
}

double PairwiseLatencyParamSpace::base_value(int k) const {
  const int pairs = num_pairs();
  if (k < pairs) return base_[static_cast<std::size_t>(k)];
  return gap_[static_cast<std::size_t>(k - pairs)];
}

std::string PairwiseLatencyParamSpace::param_name(int k) const {
  const int pairs = num_pairs();
  const bool is_gap = k >= pairs;
  if (is_gap) k -= pairs;
  // Invert the triangular index for readable names.
  for (int i = 0; i < nranks_; ++i) {
    const int row_start = i * nranks_ - i * (i + 1) / 2;
    const int row_len = nranks_ - i - 1;
    if (k < row_start + row_len) {
      return strformat("%s_%d_%d", is_gap ? "G" : "l", i,
                       i + 1 + (k - row_start));
    }
  }
  throw LpError("pairwise space: bad parameter index");
}

Affine PairwiseLatencyParamSpace::edge_cost(const graph::Graph& g,
                                            const graph::Edge& e) const {
  Affine a;
  a.constant = static_cast<double>(e.o_mult) * p_.o;
  if (e.l_mult != 0 || e.bytes > 1) {
    const auto [src, dst] = g.edge_wire_pair(e);
    if (src == dst) {
      // Local edges carry no wire terms by construction, but guard anyway.
      a.constant += payload_cost(e.bytes, p_.G);
      return a;
    }
    const auto k = static_cast<std::size_t>(pair_index(src, dst));
    if (e.l_mult != 0) {
      a.terms.push_back({static_cast<int>(k), static_cast<double>(e.l_mult)});
    }
    if (e.bytes > 1) {
      if (gap_params_) {
        a.terms.push_back({num_pairs() + static_cast<int>(k),
                           static_cast<double>(e.bytes - 1)});
      } else {
        a.constant += payload_cost(e.bytes, gap_[k]);
      }
    }
  }
  return a;
}

LinkClassParamSpace::LinkClassParamSpace(loggops::Params p,
                                         std::vector<std::string> class_names,
                                         std::vector<double> class_base_values,
                                         std::vector<Route> routes_by_pair,
                                         int nranks)
    : p_(p),
      names_(std::move(class_names)),
      base_(std::move(class_base_values)),
      routes_(std::move(routes_by_pair)),
      nranks_(nranks) {
  p_.validate();
  if (names_.size() != base_.size()) {
    throw LpError("link-class space: names/base size mismatch");
  }
  if (routes_.size() != static_cast<std::size_t>(nranks) *
                            static_cast<std::size_t>(nranks)) {
    throw LpError("link-class space: route table must be nranks^2");
  }
  for (const Route& r : routes_) {
    if (r.counts.size() != names_.size()) {
      throw LpError("link-class space: route count arity mismatch");
    }
  }
}

const LinkClassParamSpace::Route& LinkClassParamSpace::route(int src,
                                                             int dst) const {
  if (src < 0 || dst < 0 || src >= nranks_ || dst >= nranks_) {
    throw LpError("link-class space: rank out of range");
  }
  return routes_[static_cast<std::size_t>(src) *
                     static_cast<std::size_t>(nranks_) +
                 static_cast<std::size_t>(dst)];
}

Affine LinkClassParamSpace::edge_cost(const graph::Graph& g,
                                      const graph::Edge& e) const {
  Affine a;
  a.constant = static_cast<double>(e.o_mult) * p_.o + payload_cost(e.bytes, p_.G);
  if (e.l_mult != 0) {
    const auto [src, dst] = g.edge_wire_pair(e);
    const Route& r = route(src, dst);
    const double lm = static_cast<double>(e.l_mult);
    a.constant += lm * r.constant;
    for (std::size_t c = 0; c < r.counts.size(); ++c) {
      if (r.counts[c] != 0.0) {
        a.terms.push_back({static_cast<int>(c), lm * r.counts[c]});
      }
    }
  }
  return a;
}

}  // namespace llamp::lp
