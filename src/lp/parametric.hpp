#pragma once

#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "lp/param_space.hpp"

namespace llamp::lp {

namespace detail {
/// Relative tolerance for value comparisons (times are O(1e10) ns).  Shared
/// by the scalar forward pass (parametric.cpp) and the batched kernel
/// (batch.cpp), which must break near-ties identically for the batch
/// bitwise-equivalence contract to hold.
inline double value_eps(double v) { return 1e-9 * (1.0 + std::fabs(v)); }
}  // namespace detail

/// Sample-axis block width of the batched forward pass (doubles per lane
/// group).  One batch pass evaluates kBatchWidth parameter points at once
/// with stride-1 inner loops over the lane axis; the width is a power of
/// two, sized at two widest-vector-unit registers (16 doubles = two
/// AVX-512 registers, four AVX2 registers) so the per-edge scalar work —
/// index loads, pointer arithmetic, the cost broadcast — amortizes over
/// more lanes than one register would give.  Tail groups shorter than
/// this run through last_pow2-sized sub-blocks, so any n is served
/// exactly.
inline constexpr std::size_t kBatchWidth = 16;

/// Exact solver state for the LP class produced by Algorithm 1.  Those LPs
/// are longest-path problems on a DAG whose edge costs are affine in the
/// decision parameters, so the optimum is computable by a single forward
/// pass — and, crucially, the pass can carry *sensitivity* information
/// along:
///
/// * the local slope of every vertex's completion time w.r.t. the active
///   parameter (the per-path message count of §II-B), and
/// * the interval of the active parameter around the evaluation point on
///   which every max-argument choice — i.e. the LP basis — stays optimal.
///
/// The returned value/gradient/range triple is exactly what the paper reads
/// off Gurobi (objective, reduced costs, SALBLow/SALBUp), which makes this
/// class a drop-in high-capacity replacement for the simplex path; the test
/// suite proves the two agree on random graphs.
///
/// Ownership split (DESIGN.md §4e): a LoweredProblem is the *immutable*
/// half of a solver — the CSR/SoA cost arrays, topo permutation, and base
/// point lowered once at construction.  After construction every method is
/// const and touches only caller-owned scratch, so one LoweredProblem may
/// be shared freely across threads and cached across requests (see
/// core::SolverCache).  The mutable half is the per-query Cursor below; the
/// bridge between queries is the AnchorState snapshot, which replays
/// bitwise-identically to a dense solve inside its stability zone.
///
/// Hot-path layout (see DESIGN.md §"Solver internals"): at construction the
/// ParamSpace's per-edge Affine expressions are lowered into flat
/// structure-of-arrays storage.  When every edge carries at most one
/// parametric term and the space is small (LatencyParamSpace, the shared
/// wire-latency space), each activatable parameter additionally gets a
/// per-edge (constant, slope) pair with every inactive parameter folded in,
/// so evaluating an edge is two contiguous loads and one multiply-add.  The
/// general CSR term walk remains as the multi-parameter fallback
/// (PairwiseLatencyParamSpace, multi-term link-class edges).  Both paths
/// replicate the seed implementation's floating-point operation order
/// exactly, so results are bit-for-bit identical to the original per-edge
/// heap-vector walk.
class LoweredProblem {
 public:
  LoweredProblem(const graph::Graph& g,
                 std::shared_ptr<const ParamSpace> space);
  /// The problem keeps a reference; a temporary graph would dangle.
  LoweredProblem(graph::Graph&&, std::shared_ptr<const ParamSpace>) = delete;
  LoweredProblem(const LoweredProblem&) = delete;
  LoweredProblem& operator=(const LoweredProblem&) = delete;

  const ParamSpace& space() const { return *space_; }
  std::shared_ptr<const ParamSpace> space_ptr() const { return space_; }
  const graph::Graph& graph() const { return g_; }
  int num_params() const { return num_params_; }
  /// True when the per-active-parameter flat lowering is in effect (every
  /// edge has at most one term, small space).  Anchor replay without a
  /// cursor — replay_anchor() — requires it.
  bool flat() const { return flat_; }

  struct Solution {
    double value = 0.0;  ///< T: program makespan at the evaluation point
    /// λ per parameter: Σ of that parameter's coefficients along the
    /// critical path (∂T/∂x_k).  gradient[active] is the active slope.
    std::vector<double> gradient;
    int active = 0;      ///< the parameter that was varied
    double at = 0.0;     ///< its evaluation value
    /// Feasibility range of the active parameter: the interval around `at`
    /// on which the critical-path structure (LP basis) is unchanged and T
    /// remains the same linear function.
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    /// Number of communication edges on the critical path.
    std::size_t messages = 0;
  };

  /// The mutable per-query half of a solver: the forward-pass arrays, the
  /// cached basis (critical path + stability bounds) of its last solve, and
  /// a Solution slot that solve(active, value, cur) reuses, so steady-state
  /// solves perform zero heap allocations (buffers grow to the largest
  /// graph/space seen and are then only reused).
  ///
  /// Ownership rules: one cursor per thread.  A cursor may be shared
  /// freely across LoweredProblem instances and scenarios — every solve
  /// rewrites all state it reads — but never across concurrent callers.
  class Cursor {
   public:
    Cursor() = default;
    Cursor(const Cursor&) = delete;
    Cursor& operator=(const Cursor&) = delete;
    Cursor(Cursor&&) = default;
    Cursor& operator=(Cursor&&) = default;

   private:
    friend class LoweredProblem;
    std::vector<double> finish_;
    std::vector<double> slope_;
    std::vector<std::uint32_t> arg_edge_;
    /// (value, slope) candidates of the vertex currently being maximized.
    std::vector<std::pair<double, double>> cands_;
    /// Evaluation point for the CSR fallback (base values + active).
    std::vector<double> point_;
    /// Critical-path edges of the last solve, source -> sink order.
    std::vector<std::uint32_t> chain_;
    graph::VertexId chain_src_ = graph::kInvalidVertex;
    /// Absolute active-parameter bound below which the last solve's basis
    /// is provably re-selected by a dense pass (stability zone for the
    /// segment walk's critical-path replay; always <= solution_.hi).
    double stable_hi_ = -std::numeric_limits<double>::infinity();
    Solution solution_;
  };

  /// One lane of a batched forward pass: T, the active slope, and (when
  /// requested) the active parameter's feasibility range at that lane's
  /// evaluation point.  Every field is bitwise identical to the matching
  /// member of solve(active, x).{value, gradient[active], lo, hi}.
  struct BatchPoint {
    double value = 0.0;
    double slope = 0.0;
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
  };

  /// Scratch for the batched forward pass: the per-vertex finish/slope
  /// accumulators laid out structure-of-arrays over the sample axis
  /// (finish_[pos * width + lane]) plus the candidate buffer the range
  /// variant replays the envelope bookkeeping from.  Same ownership rules
  /// as Cursor: one per thread, shareable across problems, buffers only
  /// grow — steady-state batch solves perform zero heap allocations.
  class BatchCursor {
   public:
    BatchCursor() = default;
    BatchCursor(const BatchCursor&) = delete;
    BatchCursor& operator=(const BatchCursor&) = delete;
    BatchCursor(BatchCursor&&) = default;
    BatchCursor& operator=(BatchCursor&&) = default;

   private:
    friend class LoweredProblem;
    std::vector<double> finish_;  ///< num_vertices x kBatchWidth, SoA
    std::vector<double> slope_;
    /// Candidate rows of the vertex currently being maximized (range
    /// variant only): max_in_degree x kBatchWidth values and slopes.
    std::vector<double> cand_val_;
    std::vector<double> cand_slope_;
    /// Lockstep budget-search lane state (max_param_for_budget_from_batch).
    std::vector<double> search_x_;
    std::vector<BatchPoint> search_pts_;
  };

  /// Batched forward pass: evaluate parameter `active` at xs[0..n) — one
  /// independent scenario per lane, any order, any n — writing n entries to
  /// `out`.  Lanes are processed in blocks of kBatchWidth (tails in
  /// last_pow2-sized sub-blocks), the per-edge cost accumulators run
  /// structure-of-arrays over the lane axis with a fixed block-synchronous
  /// reduction order, and every per-lane floating-point operation replays
  /// the scalar pass exactly — so out[i].{value, slope} is bitwise
  /// identical to solve(active, xs[i]) at every lane (the batch equivalence
  /// wall in test_solver_hotpath.cpp pins this across apps, spaces, and
  /// block boundaries).  This variant skips the basis-range envelope;
  /// out[i].lo/hi are left at -inf/+inf.  Steady state allocates nothing.
  void solve_batch(int active, const double* xs, std::size_t n,
                   BatchCursor& cur, BatchPoint* out) const;

  /// Same pass with the upper-envelope bookkeeping enabled: out[i].lo/hi
  /// additionally match solve(active, xs[i]).lo/hi bitwise.  Costs one
  /// extra candidate-buffer sweep per multi-predecessor vertex; use the
  /// plain variant when only values and slopes are consumed.
  void solve_batch_ranges(int active, const double* xs, std::size_t n,
                          BatchCursor& cur, BatchPoint* out) const;

  /// Lockstep batched tolerance search: out[i] is bitwise identical to
  /// max_param_for_budget_from(k, from[i], budget[i], cur) for every lane,
  /// including the boundary clamps and the LpError conditions (an
  /// infeasible lane throws exactly the scalar error, lowest lane first).
  /// Lanes iterate the scalar bracketed-Newton logic in lockstep, each
  /// iteration served by one ranged batch pass, so a block of n searches
  /// costs max-lane-iterations passes instead of sum-over-lanes solves.
  void max_param_for_budget_from_batch(int k, const double* from,
                                       const double* budget, std::size_t n,
                                       BatchCursor& cur, double* out) const;

  /// Evaluate with parameter `active` set to `value` and all others at
  /// their base values, reusing `cur` for all scratch state.  The returned
  /// reference lives in `cur` and is invalidated by the next solve through
  /// the same cursor.  Steady state performs no heap allocations.
  const Solution& solve(int active, double value, Cursor& cur) const;
  /// Convenience form that allocates a transient cursor.
  Solution solve(int active, double value) const;
  /// Evaluate at the base point (active parameter 0).
  Solution solve() const;

  /// One linear piece of T(x_active).
  struct Segment {
    double lo = 0.0;
    double hi = 0.0;
    double slope = 0.0;     ///< λ on this piece
    double value_at_lo = 0.0;
  };

  /// The exact piecewise-linear T over [lo, hi] for parameter k, assembled
  /// by a left-to-right walk hopping across feasibility ranges (the exact
  /// version of Algorithm 2).  Adjacent pieces with equal slope are merged,
  /// so piece boundaries are precisely the critical latencies L_c.
  std::vector<Segment> piecewise(int k, double lo, double hi) const;
  std::vector<Segment> piecewise(int k, double lo, double hi,
                                 Cursor& cur) const;

  /// Critical latencies within [lo, hi]: the parameter values where λ
  /// changes (Algorithm 2's output list), derived from the exact piecewise
  /// curve.
  std::vector<double> critical_values(int k, double lo, double hi) const;
  std::vector<double> critical_values(int k, double lo, double hi,
                                      Cursor& cur) const;

  /// Faithful port of the paper's Algorithm 2 (Appendix D): scan the
  /// interval right-to-left, hopping to SALBLow − ε after each solve and
  /// recording a critical latency whenever the reduced cost (λ) changes.
  /// `step` is the paper's resolution knob: the scan always advances by at
  /// least `step`, trading completeness for bounded work exactly like the
  /// pseudocode.  With step = 0 the result matches critical_values()
  /// (ascending order); larger steps may skip closely-spaced breakpoints.
  std::vector<double> critical_values_algorithm2(int k, double lo, double hi,
                                                 double step = 0.0,
                                                 double eps = 1e-6) const;

  /// §II-D2 tolerance: the largest value of parameter k (>= its base value)
  /// keeping T <= budget.  Returns +inf when the parameter never appears on
  /// a critical path up to the budget; throws LpError if even the base
  /// value exceeds the budget.
  double max_param_for_budget(int k, double budget) const;
  double max_param_for_budget(int k, double budget, Cursor& cur) const;
  /// Same search anchored at `from` instead of the space's base value (the
  /// Monte Carlo engine's per-sample operating points sit off-base).
  ///
  /// Boundary contract (pinned by tests): throws LpError iff
  /// T(from) > budget + value_eps(budget); otherwise the result is always
  /// >= `from`, even when the budget sits inside the fuzzy feasibility band
  /// at `from` itself (T(from) in (budget, budget + eps] clamps to `from`
  /// rather than extrapolating a negative tolerance).  When the budget
  /// exactly ties a segment knot T(L_c) == budget, the crossing returned is
  /// the tangent solution of the piece that reaches it — a fixed value
  /// independent of the cursor's prior state, so warm and cold paths agree
  /// bitwise.
  double max_param_for_budget_from(int k, double from, double budget,
                                   Cursor& cur) const;

  /// One evaluated point of a segment-walk sweep.
  struct SweepEval {
    double at = 0.0;     ///< evaluated value of the active parameter
    double value = 0.0;  ///< T at that point
    double slope = 0.0;  ///< λ = ∂T/∂x_k at that point
  };

  /// Work counters of one sweep() call (perf observability: the benchmark
  /// harness records anchor_solves per sweep in BENCH_solver.json).
  struct SweepStats {
    std::size_t anchor_solves = 0;  ///< full forward passes performed
    std::size_t replays = 0;        ///< points served by chain replay
  };

  /// Evaluate T and λ at every value of `xs` (which must be ascending) for
  /// parameter k in a single left-to-right segment walk: one full forward
  /// pass per linear piece of the solver's basis structure, advancing from
  /// each solve's breakpoint; points interior to a piece are evaluated by
  /// replaying the anchor solve's critical path, which reproduces the dense
  /// forward pass's floating-point sums operation for operation.  Results
  /// are therefore bitwise identical to calling solve(k, x) at every
  /// point, at a cost of O(#pieces hit) instead of O(#points) passes.
  /// (Near-ties split the λ-segments of piecewise() into finer basis
  /// pieces, so the pass count lies between the segment count and the point
  /// count.)  Writes xs.size() entries to `out`.  Throws LpError on
  /// descending xs.
  void sweep(int k, std::span<const double> xs, Cursor& cur,
             SweepEval* out, SweepStats* stats = nullptr) const;
  std::vector<SweepEval> sweep(int k, std::span<const double> xs) const;

  /// A detached snapshot of one anchor solve: the solution, the critical
  /// path it selected, and the stability zone on which a dense re-solve
  /// provably re-selects that basis.  This is the unit core::SolverCache
  /// stores — an anchor saved by one request serves later requests (and
  /// other threads) through replay_anchor() without touching any cursor.
  struct AnchorState {
    Solution solution;
    std::vector<std::uint32_t> chain;  ///< critical path, source -> sink
    graph::VertexId chain_src = graph::kInvalidVertex;
    /// Absolute bound below which a dense pass re-selects this basis.
    double stable_hi = -std::numeric_limits<double>::infinity();

    /// True when replay_anchor(*this, k, x) is valid: same active
    /// parameter, and x at the anchor point or inside its stability zone.
    bool covers(int k, double x) const {
      return solution.active == k &&
             (x == solution.at || (x > solution.at && x < stable_hi));
    }
  };

  /// Snapshot the cursor's last anchor solve into `out` (reusing its
  /// buffers).  Requires a prior solve through `cur` on this problem.
  void save_anchor(const Cursor& cur, AnchorState& out) const;

  /// Warm entry point: T and λ at `x` for parameter k served from a saved
  /// anchor, bitwise identical to solve(k, x) (the segment-walk replay
  /// equivalence, pinned by the hot-path test wall).  Read-only on both the
  /// problem and the anchor — safe to call concurrently from any number of
  /// threads with no cursor at all.  Requires anchor.covers(k, x), an
  /// anchor saved from *this* problem, and the flat lowering (flat());
  /// throws LpError otherwise.
  SweepEval replay_anchor(const AnchorState& anchor, int k, double x) const;

 private:
  struct FlatEdgeAt;
  struct CsrEdgeAt;

  template <typename EdgeAt>
  void forward_pass(int active, double value, Cursor& cur,
                    const EdgeAt& edge_at) const;
  /// The W-lane batched pass (src/lp/batch.cpp); Range selects the
  /// envelope bookkeeping, LaneCost the flat/CSR edge-cost flavor.
  template <std::size_t W, bool Range, typename LaneCost>
  void batch_pass(const LaneCost& cost, const double* xs,
                  BatchCursor& cur, BatchPoint* out) const;
  template <bool Range>
  void solve_batch_impl(int active, const double* xs, std::size_t n,
                        BatchCursor& cur, BatchPoint* out) const;
  void prepare_batch(BatchCursor& cur) const;
  /// Dense solve into cur (solution, chain, stability bound).
  void solve_into(int active, double value, Cursor& cur) const;
  /// T at `x` via the cached critical path of cur's last solve.  Only valid
  /// for cur.solution_.at <= x < cur.stable_hi_.
  double replay(int active, double x, Cursor& cur) const;
  /// Flat-lowering chain re-sum shared by replay() and replay_anchor().
  double replay_flat(std::span<const std::uint32_t> chain,
                     graph::VertexId chain_src, int active, double x) const;
  void prepare(Cursor& cur) const;

  const graph::Graph& g_;
  std::shared_ptr<const ParamSpace> space_;
  int num_params_ = 0;
  std::uint32_t max_in_degree_ = 0;

  // CSR lowering of the per-edge Affine terms, preserving term order (and
  // therefore the seed's floating-point summation order) exactly.
  std::vector<std::uint32_t> term_offsets_;  ///< edge -> [first, last) term
  std::vector<std::int32_t> term_param_;
  std::vector<double> term_coeff_;
  std::vector<double> edge_const_;

  // Flat per-active-parameter lowering, built when every edge has at most
  // one term and the space is small: flat_const_/flat_slope_[k * E + e]
  // (edge-id indexed; used by critical-path replay).
  bool flat_ = false;
  std::vector<double> flat_const_;
  std::vector<double> flat_slope_;

  // Topo-permuted adjacency so the forward pass streams memory
  // sequentially: vertices are visited by topo position i, their in-edges
  // occupy the contiguous slot range [in_off_[i], in_off_[i+1]), and the
  // flat cost arrays are additionally permuted into slot order
  // (flat_const_slot_/flat_slope_slot_[k * E + j]).  Pure layout: every
  // value and every visit order matches the seed's graph-driven walk.
  std::vector<std::uint32_t> in_off_;      ///< topo pos -> slot range
  std::vector<std::uint32_t> in_other_;    ///< slot -> predecessor topo pos
  std::vector<std::uint32_t> in_edge_;     ///< slot -> edge id
  std::vector<double> vertex_cost_topo_;   ///< topo pos -> vertex cost
  std::vector<std::uint32_t> topo_pos_;    ///< vertex id -> topo pos
  std::vector<std::uint32_t> sink_pos_;    ///< sinks by ascending vertex id
  std::vector<double> flat_const_slot_;
  std::vector<double> flat_slope_slot_;

  std::vector<double> vertex_cost_;  ///< vertex-id indexed (replay)
  std::vector<double> base_;
};

/// Thin value façade over a shared LoweredProblem: the historical solver
/// type every consumer constructs.  Constructing one from (graph, space)
/// lowers a fresh problem; constructing one from a shared LoweredProblem
/// (the core::SolverCache path) reuses an existing lowering at zero cost.
/// All methods forward; Workspace is the Cursor under its historical name.
class ParametricSolver {
 public:
  using Solution = LoweredProblem::Solution;
  using Workspace = LoweredProblem::Cursor;
  using Segment = LoweredProblem::Segment;
  using SweepEval = LoweredProblem::SweepEval;
  using SweepStats = LoweredProblem::SweepStats;
  using AnchorState = LoweredProblem::AnchorState;
  using BatchCursor = LoweredProblem::BatchCursor;
  using BatchPoint = LoweredProblem::BatchPoint;

  ParametricSolver(const graph::Graph& g,
                   std::shared_ptr<const ParamSpace> space)
      : prob_(std::make_shared<const LoweredProblem>(g, std::move(space))) {}
  /// The solver keeps a reference; a temporary graph would dangle.
  ParametricSolver(graph::Graph&&, std::shared_ptr<const ParamSpace>) = delete;
  /// Adopt an already-lowered problem (shared across threads/requests).
  explicit ParametricSolver(std::shared_ptr<const LoweredProblem> prob);

  const ParamSpace& space() const { return prob_->space(); }
  const LoweredProblem& lowered() const { return *prob_; }
  const std::shared_ptr<const LoweredProblem>& lowered_ptr() const {
    return prob_;
  }

  const Solution& solve(int active, double value, Workspace& ws) const {
    return prob_->solve(active, value, ws);
  }
  Solution solve(int active, double value) const {
    return prob_->solve(active, value);
  }
  Solution solve() const { return prob_->solve(); }

  std::vector<Segment> piecewise(int k, double lo, double hi) const {
    return prob_->piecewise(k, lo, hi);
  }
  std::vector<Segment> piecewise(int k, double lo, double hi,
                                 Workspace& ws) const {
    return prob_->piecewise(k, lo, hi, ws);
  }

  std::vector<double> critical_values(int k, double lo, double hi) const {
    return prob_->critical_values(k, lo, hi);
  }
  std::vector<double> critical_values(int k, double lo, double hi,
                                      Workspace& ws) const {
    return prob_->critical_values(k, lo, hi, ws);
  }

  std::vector<double> critical_values_algorithm2(int k, double lo, double hi,
                                                 double step = 0.0,
                                                 double eps = 1e-6) const {
    return prob_->critical_values_algorithm2(k, lo, hi, step, eps);
  }

  double max_param_for_budget(int k, double budget) const {
    return prob_->max_param_for_budget(k, budget);
  }
  double max_param_for_budget(int k, double budget, Workspace& ws) const {
    return prob_->max_param_for_budget(k, budget, ws);
  }
  double max_param_for_budget_from(int k, double from, double budget,
                                   Workspace& ws) const {
    return prob_->max_param_for_budget_from(k, from, budget, ws);
  }

  void solve_batch(int active, const double* xs, std::size_t n,
                   BatchCursor& cur, BatchPoint* out) const {
    prob_->solve_batch(active, xs, n, cur, out);
  }
  void solve_batch_ranges(int active, const double* xs, std::size_t n,
                          BatchCursor& cur, BatchPoint* out) const {
    prob_->solve_batch_ranges(active, xs, n, cur, out);
  }
  void max_param_for_budget_from_batch(int k, const double* from,
                                       const double* budget, std::size_t n,
                                       BatchCursor& cur, double* out) const {
    prob_->max_param_for_budget_from_batch(k, from, budget, n, cur, out);
  }

  void sweep(int k, std::span<const double> xs, Workspace& ws,
             SweepEval* out, SweepStats* stats = nullptr) const {
    prob_->sweep(k, xs, ws, out, stats);
  }
  std::vector<SweepEval> sweep(int k, std::span<const double> xs) const {
    return prob_->sweep(k, xs);
  }

 private:
  std::shared_ptr<const LoweredProblem> prob_;
};

}  // namespace llamp::lp
