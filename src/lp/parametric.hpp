#pragma once

#include <limits>
#include <memory>
#include <vector>

#include "graph/graph.hpp"
#include "lp/param_space.hpp"

namespace llamp::lp {

/// Exact solver for the LP class produced by Algorithm 1.  Those LPs are
/// longest-path problems on a DAG whose edge costs are affine in the
/// decision parameters, so the optimum is computable by a single forward
/// pass — and, crucially, the pass can carry *sensitivity* information
/// along:
///
/// * the local slope of every vertex's completion time w.r.t. the active
///   parameter (the per-path message count of §II-B), and
/// * the interval of the active parameter around the evaluation point on
///   which every max-argument choice — i.e. the LP basis — stays optimal.
///
/// The returned value/gradient/range triple is exactly what the paper reads
/// off Gurobi (objective, reduced costs, SALBLow/SALBUp), which makes this
/// class a drop-in high-capacity replacement for the simplex path; the test
/// suite proves the two agree on random graphs.
class ParametricSolver {
 public:
  ParametricSolver(const graph::Graph& g,
                   std::shared_ptr<const ParamSpace> space);
  /// The solver keeps a reference; a temporary graph would dangle.
  ParametricSolver(graph::Graph&&, std::shared_ptr<const ParamSpace>) = delete;

  const ParamSpace& space() const { return *space_; }

  struct Solution {
    double value = 0.0;  ///< T: program makespan at the evaluation point
    /// λ per parameter: Σ of that parameter's coefficients along the
    /// critical path (∂T/∂x_k).  gradient[active] is the active slope.
    std::vector<double> gradient;
    int active = 0;      ///< the parameter that was varied
    double at = 0.0;     ///< its evaluation value
    /// Feasibility range of the active parameter: the interval around `at`
    /// on which the critical-path structure (LP basis) is unchanged and T
    /// remains the same linear function.
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    /// Number of communication edges on the critical path.
    std::size_t messages = 0;
  };

  /// Evaluate with parameter `active` set to `value` and all others at
  /// their base values.
  Solution solve(int active, double value) const;
  /// Evaluate at the base point (active parameter 0).
  Solution solve() const;

  /// One linear piece of T(x_active).
  struct Segment {
    double lo = 0.0;
    double hi = 0.0;
    double slope = 0.0;     ///< λ on this piece
    double value_at_lo = 0.0;
  };

  /// The exact piecewise-linear T over [lo, hi] for parameter k, assembled
  /// by hopping across feasibility ranges (the exact version of
  /// Algorithm 2).  Adjacent pieces with equal slope are merged, so piece
  /// boundaries are precisely the critical latencies L_c.
  std::vector<Segment> piecewise(int k, double lo, double hi) const;

  /// Critical latencies within [lo, hi]: the parameter values where λ
  /// changes (Algorithm 2's output list), derived from the exact piecewise
  /// curve.
  std::vector<double> critical_values(int k, double lo, double hi) const;

  /// Faithful port of the paper's Algorithm 2 (Appendix D): scan the
  /// interval right-to-left, hopping to SALBLow − ε after each solve and
  /// recording a critical latency whenever the reduced cost (λ) changes.
  /// `step` is the paper's resolution knob: the scan always advances by at
  /// least `step`, trading completeness for bounded work exactly like the
  /// pseudocode.  With step = 0 the result matches critical_values()
  /// (ascending order); larger steps may skip closely-spaced breakpoints.
  std::vector<double> critical_values_algorithm2(int k, double lo, double hi,
                                                 double step = 0.0,
                                                 double eps = 1e-6) const;

  /// §II-D2 tolerance: the largest value of parameter k (>= its base value)
  /// keeping T <= budget.  Returns +inf when the parameter never appears on
  /// a critical path up to the budget; throws LpError if even the base
  /// value exceeds the budget.
  double max_param_for_budget(int k, double budget) const;

 private:
  const graph::Graph& g_;
  std::shared_ptr<const ParamSpace> space_;
  /// Edge-cost affines, precomputed once (edge index aligned with g.edges()).
  std::vector<Affine> edge_affine_;
  std::vector<double> vertex_cost_;
  std::vector<double> base_;
};

}  // namespace llamp::lp
