#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "lp/param_space.hpp"

namespace llamp::lp {

/// Exact solver for the LP class produced by Algorithm 1.  Those LPs are
/// longest-path problems on a DAG whose edge costs are affine in the
/// decision parameters, so the optimum is computable by a single forward
/// pass — and, crucially, the pass can carry *sensitivity* information
/// along:
///
/// * the local slope of every vertex's completion time w.r.t. the active
///   parameter (the per-path message count of §II-B), and
/// * the interval of the active parameter around the evaluation point on
///   which every max-argument choice — i.e. the LP basis — stays optimal.
///
/// The returned value/gradient/range triple is exactly what the paper reads
/// off Gurobi (objective, reduced costs, SALBLow/SALBUp), which makes this
/// class a drop-in high-capacity replacement for the simplex path; the test
/// suite proves the two agree on random graphs.
///
/// Hot-path layout (see DESIGN.md §"Solver internals"): at construction the
/// ParamSpace's per-edge Affine expressions are lowered into flat
/// structure-of-arrays storage.  When every edge carries at most one
/// parametric term and the space is small (LatencyParamSpace, the shared
/// wire-latency space), each activatable parameter additionally gets a
/// per-edge (constant, slope) pair with every inactive parameter folded in,
/// so evaluating an edge is two contiguous loads and one multiply-add.  The
/// general CSR term walk remains as the multi-parameter fallback
/// (PairwiseLatencyParamSpace, multi-term link-class edges).  Both paths
/// replicate the seed implementation's floating-point operation order
/// exactly, so results are bit-for-bit identical to the original per-edge
/// heap-vector walk.
class ParametricSolver {
 public:
  ParametricSolver(const graph::Graph& g,
                   std::shared_ptr<const ParamSpace> space);
  /// The solver keeps a reference; a temporary graph would dangle.
  ParametricSolver(graph::Graph&&, std::shared_ptr<const ParamSpace>) = delete;

  const ParamSpace& space() const { return *space_; }

  struct Solution {
    double value = 0.0;  ///< T: program makespan at the evaluation point
    /// λ per parameter: Σ of that parameter's coefficients along the
    /// critical path (∂T/∂x_k).  gradient[active] is the active slope.
    std::vector<double> gradient;
    int active = 0;      ///< the parameter that was varied
    double at = 0.0;     ///< its evaluation value
    /// Feasibility range of the active parameter: the interval around `at`
    /// on which the critical-path structure (LP basis) is unchanged and T
    /// remains the same linear function.
    double lo = -std::numeric_limits<double>::infinity();
    double hi = std::numeric_limits<double>::infinity();
    /// Number of communication edges on the critical path.
    std::size_t messages = 0;
  };

  /// Reusable scratch for the solve/sweep hot path.  A workspace owns the
  /// forward-pass arrays, the cached critical path of its last solve, and a
  /// Solution slot that solve(active, value, ws) reuses, so steady-state
  /// solves perform zero heap allocations (buffers grow to the largest
  /// graph/space seen and are then only reused).
  ///
  /// Ownership rules: one workspace per thread.  A workspace may be shared
  /// freely across ParametricSolver instances and scenarios — every solve
  /// rewrites all state it reads — but never across concurrent callers.
  class Workspace {
   public:
    Workspace() = default;
    Workspace(const Workspace&) = delete;
    Workspace& operator=(const Workspace&) = delete;
    Workspace(Workspace&&) = default;
    Workspace& operator=(Workspace&&) = default;

   private:
    friend class ParametricSolver;
    std::vector<double> finish_;
    std::vector<double> slope_;
    std::vector<std::uint32_t> arg_edge_;
    /// (value, slope) candidates of the vertex currently being maximized.
    std::vector<std::pair<double, double>> cands_;
    /// Evaluation point for the CSR fallback (base values + active).
    std::vector<double> point_;
    /// Critical-path edges of the last solve, source -> sink order.
    std::vector<std::uint32_t> chain_;
    graph::VertexId chain_src_ = graph::kInvalidVertex;
    /// Absolute active-parameter bound below which the last solve's basis
    /// is provably re-selected by a dense pass (stability zone for the
    /// segment walk's critical-path replay; always <= solution_.hi).
    double stable_hi_ = -std::numeric_limits<double>::infinity();
    Solution solution_;
  };

  /// Evaluate with parameter `active` set to `value` and all others at
  /// their base values, reusing `ws` for all scratch state.  The returned
  /// reference lives in `ws` and is invalidated by the next solve through
  /// the same workspace.  Steady state performs no heap allocations.
  const Solution& solve(int active, double value, Workspace& ws) const;
  /// Convenience form that allocates a transient workspace.
  Solution solve(int active, double value) const;
  /// Evaluate at the base point (active parameter 0).
  Solution solve() const;

  /// One linear piece of T(x_active).
  struct Segment {
    double lo = 0.0;
    double hi = 0.0;
    double slope = 0.0;     ///< λ on this piece
    double value_at_lo = 0.0;
  };

  /// The exact piecewise-linear T over [lo, hi] for parameter k, assembled
  /// by a left-to-right walk hopping across feasibility ranges (the exact
  /// version of Algorithm 2).  Adjacent pieces with equal slope are merged,
  /// so piece boundaries are precisely the critical latencies L_c.
  std::vector<Segment> piecewise(int k, double lo, double hi) const;
  std::vector<Segment> piecewise(int k, double lo, double hi,
                                 Workspace& ws) const;

  /// Critical latencies within [lo, hi]: the parameter values where λ
  /// changes (Algorithm 2's output list), derived from the exact piecewise
  /// curve.
  std::vector<double> critical_values(int k, double lo, double hi) const;
  std::vector<double> critical_values(int k, double lo, double hi,
                                      Workspace& ws) const;

  /// Faithful port of the paper's Algorithm 2 (Appendix D): scan the
  /// interval right-to-left, hopping to SALBLow − ε after each solve and
  /// recording a critical latency whenever the reduced cost (λ) changes.
  /// `step` is the paper's resolution knob: the scan always advances by at
  /// least `step`, trading completeness for bounded work exactly like the
  /// pseudocode.  With step = 0 the result matches critical_values()
  /// (ascending order); larger steps may skip closely-spaced breakpoints.
  std::vector<double> critical_values_algorithm2(int k, double lo, double hi,
                                                 double step = 0.0,
                                                 double eps = 1e-6) const;

  /// §II-D2 tolerance: the largest value of parameter k (>= its base value)
  /// keeping T <= budget.  Returns +inf when the parameter never appears on
  /// a critical path up to the budget; throws LpError if even the base
  /// value exceeds the budget.
  double max_param_for_budget(int k, double budget) const;
  double max_param_for_budget(int k, double budget, Workspace& ws) const;
  /// Same search anchored at `from` instead of the space's base value (the
  /// Monte Carlo engine's per-sample operating points sit off-base).
  /// Requires T(from) <= budget; throws LpError otherwise.  With
  /// from == base_value(k) this is exactly max_param_for_budget.
  double max_param_for_budget_from(int k, double from, double budget,
                                   Workspace& ws) const;

  /// One evaluated point of a segment-walk sweep.
  struct SweepEval {
    double at = 0.0;     ///< evaluated value of the active parameter
    double value = 0.0;  ///< T at that point
    double slope = 0.0;  ///< λ = ∂T/∂x_k at that point
  };

  /// Work counters of one sweep() call (perf observability: the benchmark
  /// harness records anchor_solves per sweep in BENCH_solver.json).
  struct SweepStats {
    std::size_t anchor_solves = 0;  ///< full forward passes performed
    std::size_t replays = 0;        ///< points served by chain replay
  };

  /// Evaluate T and λ at every value of `xs` (which must be ascending) for
  /// parameter k in a single left-to-right segment walk: one full forward
  /// pass per linear piece of the solver's basis structure, advancing from
  /// each solve's breakpoint; points interior to a piece are evaluated by
  /// replaying the anchor solve's critical path, which reproduces the dense
  /// forward pass's floating-point sums operation for operation.  Results
  /// are therefore bitwise identical to calling solve(k, x) at every
  /// point, at a cost of O(#pieces hit) instead of O(#points) passes.
  /// (Near-ties split the λ-segments of piecewise() into finer basis
  /// pieces, so the pass count lies between the segment count and the point
  /// count.)  Writes xs.size() entries to `out`.  Throws LpError on
  /// descending xs.
  void sweep(int k, std::span<const double> xs, Workspace& ws,
             SweepEval* out, SweepStats* stats = nullptr) const;
  std::vector<SweepEval> sweep(int k, std::span<const double> xs) const;

 private:
  struct FlatEdgeAt;
  struct CsrEdgeAt;

  template <typename EdgeAt>
  void forward_pass(int active, double value, Workspace& ws,
                    const EdgeAt& edge_at) const;
  /// Dense solve into ws (solution, chain, stability bound).
  void solve_into(int active, double value, Workspace& ws) const;
  /// T at `x` via the cached critical path of ws's last solve.  Only valid
  /// for ws.solution_.at <= x < ws.stable_hi_.
  double replay(int active, double x, Workspace& ws) const;
  void prepare(Workspace& ws) const;

  const graph::Graph& g_;
  std::shared_ptr<const ParamSpace> space_;
  int num_params_ = 0;
  std::uint32_t max_in_degree_ = 0;

  // CSR lowering of the per-edge Affine terms, preserving term order (and
  // therefore the seed's floating-point summation order) exactly.
  std::vector<std::uint32_t> term_offsets_;  ///< edge -> [first, last) term
  std::vector<std::int32_t> term_param_;
  std::vector<double> term_coeff_;
  std::vector<double> edge_const_;

  // Flat per-active-parameter lowering, built when every edge has at most
  // one term and the space is small: flat_const_/flat_slope_[k * E + e]
  // (edge-id indexed; used by critical-path replay).
  bool flat_ = false;
  std::vector<double> flat_const_;
  std::vector<double> flat_slope_;

  // Topo-permuted adjacency so the forward pass streams memory
  // sequentially: vertices are visited by topo position i, their in-edges
  // occupy the contiguous slot range [in_off_[i], in_off_[i+1]), and the
  // flat cost arrays are additionally permuted into slot order
  // (flat_const_slot_/flat_slope_slot_[k * E + j]).  Pure layout: every
  // value and every visit order matches the seed's graph-driven walk.
  std::vector<std::uint32_t> in_off_;      ///< topo pos -> slot range
  std::vector<std::uint32_t> in_other_;    ///< slot -> predecessor topo pos
  std::vector<std::uint32_t> in_edge_;     ///< slot -> edge id
  std::vector<double> vertex_cost_topo_;   ///< topo pos -> vertex cost
  std::vector<std::uint32_t> topo_pos_;    ///< vertex id -> topo pos
  std::vector<std::uint32_t> sink_pos_;    ///< sinks by ascending vertex id
  std::vector<double> flat_const_slot_;
  std::vector<double> flat_slope_slot_;

  std::vector<double> vertex_cost_;  ///< vertex-id indexed (replay)
  std::vector<double> base_;
};

}  // namespace llamp::lp
