#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "lp/model.hpp"
#include "lp/param_space.hpp"

namespace llamp::lp {

/// Explicit LP emitted by Algorithm 1 for an execution graph.
struct GraphLp {
  Model model;
  /// Model variable index of each ParamSpace decision parameter (e.g. `l`);
  /// each has its base value as lower bound.
  std::vector<int> param_vars;
  /// The makespan variable `t` (objective of the minimize form).
  int makespan_var = -1;
};

/// Algorithm 1 (Appendix C): converts an execution graph into a linear
/// program.  Vertices with a single predecessor are folded into affine
/// expressions; vertices with several predecessors introduce a fresh
/// decision variable y_v with one `y_v >= expr_u` constraint per in-edge.
/// The makespan variable t dominates every sink.  Objective: minimize t.
///
/// Solving the returned model with SimplexSolver yields the forecast runtime
/// as the objective, λ (for each parameter) as the reduced cost of its
/// variable, and feasibility ranges via SimplexSolver::bound_range — the
/// Gurobi workflow of §II-D.
GraphLp build_graph_lp(const graph::Graph& g, const ParamSpace& space);

/// §II-D2: the network-latency-tolerance variant of a graph LP.  Returns a
/// copy of `lp.model` re-objectived to *maximize* parameter `param` subject
/// to t <= `budget` (all other parameters keep their base lower bounds).
Model make_tolerance_model(const GraphLp& lp, int param, double budget);

}  // namespace llamp::lp
