#include "lp/graph_lp.hpp"

#include <map>

#include "graph/costs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::lp {

namespace {

/// Affine expression over (one anchor y variable, parameters): the running
/// Tv[v] of Algorithm 1.
struct Expr {
  int y = -1;  ///< -1 when anchored at time zero
  double constant = 0.0;
  std::map<int, double> coeffs;  ///< parameter -> coefficient

  void add(const Affine& a) {
    constant += a.constant;
    for (const ParamTerm& t : a.terms) coeffs[t.param] += t.coeff;
  }
};

}  // namespace

GraphLp build_graph_lp(const graph::Graph& g, const ParamSpace& space) {
  if (!g.finalized()) throw LpError("graph must be finalized");
  GraphLp out;
  Model& m = out.model;
  m.set_sense(Sense::kMinimize);

  for (int k = 0; k < space.num_params(); ++k) {
    out.param_vars.push_back(
        m.add_var(space.param_name(k), space.base_value(k), kInf, 0.0));
  }
  out.makespan_var = m.add_var("t", -kInf, kInf, 1.0);

  const loggops::Params& p = space.params();
  std::vector<Expr> expr(g.num_vertices());

  const auto emit_ge = [&](int y, const Expr& rhs) {
    // y >= rhs.y + rhs.constant + Σ coeff·param
    std::vector<std::pair<int, double>> terms;
    terms.emplace_back(y, 1.0);
    if (rhs.y >= 0) terms.emplace_back(rhs.y, -1.0);
    for (const auto& [param, c] : rhs.coeffs) {
      if (c != 0.0) {
        terms.emplace_back(out.param_vars[static_cast<std::size_t>(param)], -c);
      }
    }
    m.add_constraint(std::move(terms), Relation::kGe, rhs.constant);
  };

  for (const graph::VertexId v : g.topo_order()) {
    const auto ins = g.in_edges(v);
    Expr e;
    if (ins.empty()) {
      // Starting vertex: anchored at time zero.
    } else if (ins.size() == 1) {
      const graph::Edge& in = g.edge(ins.front().edge);
      e = expr[in.from];
      e.add(space.edge_cost(g, in));
    } else {
      const int y = m.add_var(strformat("y%u", v), -kInf, kInf, 0.0);
      for (const auto& a : ins) {
        const graph::Edge& in = g.edge(a.edge);
        Expr rhs = expr[in.from];
        rhs.add(space.edge_cost(g, in));
        emit_ge(y, rhs);
      }
      e = Expr{};
      e.y = y;
    }
    e.constant += graph::vertex_cost(g.vertex(v), p);
    expr[v] = std::move(e);
  }

  // t dominates every sink's completion expression.
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    if (g.out_edges(v).empty()) {
      Expr rhs = expr[v];
      std::vector<std::pair<int, double>> terms;
      terms.emplace_back(out.makespan_var, 1.0);
      if (rhs.y >= 0) terms.emplace_back(rhs.y, -1.0);
      for (const auto& [param, c] : rhs.coeffs) {
        if (c != 0.0) {
          terms.emplace_back(out.param_vars[static_cast<std::size_t>(param)],
                             -c);
        }
      }
      m.add_constraint(std::move(terms), Relation::kGe, rhs.constant);
    }
  }
  return out;
}

Model make_tolerance_model(const GraphLp& lp, int param, double budget) {
  if (param < 0 || param >= static_cast<int>(lp.param_vars.size())) {
    throw LpError("tolerance model: parameter index out of range");
  }
  Model m = lp.model;
  m.set_sense(Sense::kMaximize);
  m.set_objective(lp.makespan_var, 0.0);
  m.set_objective(lp.param_vars[static_cast<std::size_t>(param)], 1.0);
  m.set_var_upper(lp.makespan_var, budget);
  return m;
}

}  // namespace llamp::lp
