#include "lp/model.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::lp {

int Model::add_var(std::string name, double lb, double ub, double obj) {
  if (lb > ub) {
    throw LpError("variable '" + name + "' has lb > ub");
  }
  vars_.push_back({std::move(name), lb, ub, obj});
  return static_cast<int>(vars_.size() - 1);
}

int Model::add_constraint(std::vector<std::pair<int, double>> terms,
                          Relation rel, double rhs, std::string name) {
  std::map<int, double> dedup;
  for (const auto& [v, c] : terms) {
    if (v < 0 || v >= num_vars()) {
      throw LpError("constraint references unknown variable");
    }
    dedup[v] += c;
  }
  Row row;
  row.name = std::move(name);
  row.rel = rel;
  row.rhs = rhs;
  row.terms.assign(dedup.begin(), dedup.end());
  rows_.push_back(std::move(row));
  return static_cast<int>(rows_.size() - 1);
}

void Model::set_objective(int var, double coeff) {
  vars_.at(static_cast<std::size_t>(var)).obj = coeff;
}

void Model::set_var_lower(int var, double lb) {
  auto& v = vars_.at(static_cast<std::size_t>(var));
  if (lb > v.ub) throw LpError("lb > ub for variable '" + v.name + "'");
  v.lb = lb;
}

void Model::set_var_upper(int var, double ub) {
  auto& v = vars_.at(static_cast<std::size_t>(var));
  if (ub < v.lb) throw LpError("ub < lb for variable '" + v.name + "'");
  v.ub = ub;
}

std::string Model::to_string() const {
  std::ostringstream os;
  os << (sense_ == Sense::kMinimize ? "Minimize" : "Maximize") << '\n' << " ";
  bool any = false;
  for (int j = 0; j < num_vars(); ++j) {
    if (vars_[static_cast<std::size_t>(j)].obj != 0.0) {
      os << strformat(" %+g %s", vars_[static_cast<std::size_t>(j)].obj,
                      vars_[static_cast<std::size_t>(j)].name.c_str());
      any = true;
    }
  }
  if (!any) os << " 0";
  os << "\nSubject To\n";
  for (int i = 0; i < num_constraints(); ++i) {
    const Row& r = rows_[static_cast<std::size_t>(i)];
    os << ' ' << (r.name.empty() ? strformat("c%d", i) : r.name) << ':';
    for (const auto& [v, c] : r.terms) {
      os << strformat(" %+g %s", c, vars_[static_cast<std::size_t>(v)].name.c_str());
    }
    const char* rel = r.rel == Relation::kLe   ? "<="
                      : r.rel == Relation::kGe ? ">="
                                               : "=";
    os << ' ' << rel << ' ' << strformat("%g", r.rhs) << '\n';
  }
  os << "Bounds\n";
  for (int j = 0; j < num_vars(); ++j) {
    const Var& v = vars_[static_cast<std::size_t>(j)];
    os << strformat(" %g <= %s <= %g\n", v.lb, v.name.c_str(), v.ub);
  }
  return os.str();
}

}  // namespace llamp::lp
