#include "lp/parametric.hpp"

#include <algorithm>
#include <cmath>

#include "graph/costs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::lp {

namespace {
constexpr double kInfD = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoEdge = std::numeric_limits<std::uint32_t>::max();

/// Parameter-count ceiling for the per-active-parameter flat lowering; the
/// pairwise HLogGP space (O(ranks²) parameters) stays on the CSR fallback
/// rather than materializing O(ranks² · edges) doubles.
constexpr int kFlatParamLimit = 8;

/// Fuzzy-selection guard for the segment walk: the dense pass breaks
/// near-ties within value_eps toward the larger slope, so critical-path
/// replay is only trusted while every losing candidate is at least this
/// many eps away from entering the winner's tie band.
constexpr double kStableMarginFactor = 32.0;

using detail::value_eps;

/// Upper-envelope bookkeeping: given the winning affine piece
/// (value, slope) at δ=0 and a losing candidate, tighten the interval of δ
/// on which the winner stays maximal: V_w + S_w·δ >= V_c + S_c·δ.  Also
/// tightens `stable_dhi`, the sub-interval on which the winner additionally
/// stays clear of the dense pass's fuzzy tie band (see kStableMarginFactor),
/// i.e. on which a dense re-solve provably re-selects the same basis.
void constrain(double win_val, double win_slope, double cand_val,
               double cand_slope, double& dlo, double& dhi,
               double& stable_dhi) {
  const double dv = std::max(win_val - cand_val, 0.0);
  const double ds = cand_slope - win_slope;
  if (ds > 1e-12) {
    dhi = std::min(dhi, dv / ds);
    const double margin = kStableMarginFactor * value_eps(win_val);
    stable_dhi = std::min(stable_dhi, std::max((dv - margin) / ds, 0.0));
  } else if (ds < -1e-12) {
    dlo = std::max(dlo, dv / ds);  // dv/ds <= 0
  }
}

}  // namespace

/// (cost, slope) of an in-edge under the flat lowering: two contiguous
/// loads and one multiply-add, no inner term loop, no per-edge heap
/// vectors.  Indexed by adjacency slot `j`, so the forward pass streams the
/// cost arrays strictly sequentially.
struct LoweredProblem::FlatEdgeAt {
  const double* cst;  ///< slot-permuted constants of the active parameter
  const double* slp;  ///< slot-permuted slopes of the active parameter
  double x;
  std::pair<double, double> operator()(std::uint32_t j,
                                       std::uint32_t /*edge*/) const {
    return {cst[j] + slp[j] * x, slp[j]};
  }
};

/// General multi-parameter fallback: walk the CSR term list exactly like
/// the seed walked the per-edge Affine::terms vectors (same term order,
/// same floating-point summation order, flat contiguous storage).
struct LoweredProblem::CsrEdgeAt {
  const LoweredProblem* s;
  const double* point;
  int active;
  std::pair<double, double> operator()(std::uint32_t /*slot*/,
                                       std::uint32_t e) const {
    double c = s->edge_const_[e];
    double sl = 0.0;
    const std::uint32_t end = s->term_offsets_[e + 1];
    for (std::uint32_t i = s->term_offsets_[e]; i < end; ++i) {
      const std::int32_t p = s->term_param_[i];
      c += s->term_coeff_[i] * point[static_cast<std::size_t>(p)];
      if (p == active) sl += s->term_coeff_[i];
    }
    return {c, sl};
  }
};

LoweredProblem::LoweredProblem(const graph::Graph& g,
                               std::shared_ptr<const ParamSpace> space)
    : g_(g), space_(std::move(space)) {
  if (!g.finalized()) throw LpError("graph must be finalized");
  if (!space_) throw LpError("null parameter space");
  num_params_ = space_->num_params();
  base_.reserve(static_cast<std::size_t>(num_params_));
  for (int k = 0; k < num_params_; ++k) {
    base_.push_back(space_->base_value(k));
  }

  // Lower the per-edge Affine expressions into CSR structure-of-arrays
  // storage; the transient Affine (and its heap-allocated term vector) dies
  // here instead of being walked on every solve.
  const auto edges = g_.edges();
  const std::size_t ne = edges.size();
  edge_const_.reserve(ne);
  term_offsets_.reserve(ne + 1);
  term_offsets_.push_back(0);
  bool one_term_per_edge = true;
  for (const graph::Edge& e : edges) {
    const Affine a = space_->edge_cost(g_, e);
    edge_const_.push_back(a.constant);
    for (const ParamTerm& t : a.terms) {
      if (t.param < 0 || t.param >= num_params_) {
        throw LpError(strformat("edge cost references parameter %d outside "
                                "the space's %d parameters",
                                t.param, num_params_));
      }
      term_param_.push_back(t.param);
      term_coeff_.push_back(t.coeff);
    }
    one_term_per_edge = one_term_per_edge && a.terms.size() <= 1;
    term_offsets_.push_back(static_cast<std::uint32_t>(term_param_.size()));
  }

  // Flat lowering: per activatable parameter, a per-edge (constant, slope)
  // pair with the inactive parameter (if any) folded in at its base value.
  // Folding performs the seed's own `c += coeff * point[param]` operation,
  // so evaluation stays bit-for-bit identical to the term walk.
  flat_ =
      one_term_per_edge && num_params_ > 0 && num_params_ <= kFlatParamLimit;
  if (flat_) {
    flat_const_.resize(static_cast<std::size_t>(num_params_) * ne);
    flat_slope_.assign(static_cast<std::size_t>(num_params_) * ne, 0.0);
    for (int k = 0; k < num_params_; ++k) {
      double* fc = flat_const_.data() + static_cast<std::size_t>(k) * ne;
      double* fs = flat_slope_.data() + static_cast<std::size_t>(k) * ne;
      for (std::size_t e = 0; e < ne; ++e) {
        double c = edge_const_[e];
        if (term_offsets_[e] < term_offsets_[e + 1]) {
          const std::uint32_t i = term_offsets_[e];
          if (term_param_[i] == k) {
            fs[e] = term_coeff_[i];
          } else {
            c += term_coeff_[i] *
                 base_[static_cast<std::size_t>(term_param_[i])];
          }
        }
        fc[e] = c;
      }
    }
  }

  const std::size_t n = g_.num_vertices();
  vertex_cost_.reserve(n);
  const loggops::Params& p = space_->params();
  for (graph::VertexId v = 0; v < n; ++v) {
    vertex_cost_.push_back(graph::vertex_cost(g_.vertex(v), p));
    max_in_degree_ = std::max(
        max_in_degree_, static_cast<std::uint32_t>(g_.in_edges(v).size()));
  }

  // Topo-permuted adjacency: the forward pass visits vertices in topo
  // order anyway, so lay everything out in that order and the pass becomes
  // a sequential stream instead of a pointer chase.  Per-vertex in-edge
  // order is preserved, so every floating-point comparison and sum happens
  // in the seed's order.
  const auto topo = g_.topo_order();
  topo_pos_.assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    topo_pos_[topo[i]] = static_cast<std::uint32_t>(i);
  }
  in_off_.reserve(n + 1);
  in_off_.push_back(0);
  in_other_.reserve(ne);
  in_edge_.reserve(ne);
  vertex_cost_topo_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    const graph::VertexId v = topo[i];
    vertex_cost_topo_.push_back(vertex_cost_[v]);
    for (const auto& a : g_.in_edges(v)) {
      in_other_.push_back(topo_pos_[a.other]);
      in_edge_.push_back(a.edge);
    }
    in_off_.push_back(static_cast<std::uint32_t>(in_edge_.size()));
  }
  for (graph::VertexId v = 0; v < n; ++v) {
    if (g_.out_edges(v).empty()) sink_pos_.push_back(topo_pos_[v]);
  }
  if (flat_) {
    const std::size_t slots = in_edge_.size();
    flat_const_slot_.resize(static_cast<std::size_t>(num_params_) * slots);
    flat_slope_slot_.resize(static_cast<std::size_t>(num_params_) * slots);
    for (int k = 0; k < num_params_; ++k) {
      const std::size_t ko = static_cast<std::size_t>(k);
      for (std::size_t j = 0; j < slots; ++j) {
        flat_const_slot_[ko * slots + j] = flat_const_[ko * ne + in_edge_[j]];
        flat_slope_slot_[ko * slots + j] = flat_slope_[ko * ne + in_edge_[j]];
      }
    }
  }
}

void LoweredProblem::prepare(Cursor& cur) const {
  // The pass writes finish/slope/arg_edge for every vertex before reading
  // it, so the arrays are resized without clearing; the variable-length
  // buffers are reserved to their structural maxima.  Steady state never
  // allocates.
  const std::size_t n = g_.num_vertices();
  if (cur.finish_.size() != n) {
    cur.finish_.resize(n);
    cur.slope_.resize(n);
    cur.arg_edge_.resize(n);
  }
  if (cur.chain_.capacity() < n) cur.chain_.reserve(n);
  if (cur.cands_.capacity() < max_in_degree_) {
    cur.cands_.reserve(max_in_degree_);
  }
}

// llamp-lint: hot-path begin
template <typename EdgeAt>
void LoweredProblem::forward_pass(int active, double value, Cursor& cur,
                                  const EdgeAt& edge_at) const {
  const std::size_t n = g_.num_vertices();
  double* const finish = cur.finish_.data();
  double* const slope = cur.slope_.data();
  std::uint32_t* const arg_edge = cur.arg_edge_.data();
  auto& cands = cur.cands_;

  // Allowed movement of the active parameter relative to `value` keeping
  // every max-argument selection (the LP basis) valid.
  double dlo = -kInfD;
  double dhi = kInfD;
  double stable_dhi = kInfD;

  for (std::size_t i = 0; i < n; ++i) {  // topo position order
    const std::uint32_t jlo = in_off_[i];
    const std::uint32_t jhi = in_off_[i + 1];
    if (jlo == jhi) {
      finish[i] = vertex_cost_topo_[i];
      slope[i] = 0.0;
      arg_edge[i] = kNoEdge;
      continue;
    }
    // The first candidate is selected unconditionally (exactly the seed's
    // `best_edge == kNoEdge` short-circuit, which never evaluated eps).
    const auto [c0, s0] = edge_at(jlo, in_edge_[jlo]);
    const std::uint32_t u0 = in_other_[jlo];
    double best_val = finish[u0] + c0;
    double best_slope = slope[u0] + s0;
    std::uint32_t best_edge = in_edge_[jlo];
    if (jhi - jlo == 1) {
      // Single predecessor: the candidate is the winner, and the seed's
      // envelope loop skipped it as such — no eps, no constrain.
      finish[i] = best_val + vertex_cost_topo_[i];
      slope[i] = best_slope;
      arg_edge[i] = best_edge;
      continue;
    }
    cands.clear();
    // llamp-lint: allow(hot-alloc): within the capacity prepare() reserved
    // (max_in_degree_); zero steady-state allocation is pinned by
    // test_alloc_free's counting operator new.
    cands.emplace_back(best_val, best_slope);
    for (std::uint32_t j = jlo + 1; j < jhi; ++j) {
      const auto [c, s] = edge_at(j, in_edge_[j]);
      const std::uint32_t u = in_other_[j];
      const double cv = finish[u] + c;
      const double cs = slope[u] + s;
      // llamp-lint: allow(hot-alloc): same reserved-capacity argument as
      // the first candidate above.
      cands.emplace_back(cv, cs);
      const double be = value_eps(best_val);
      if (cv > best_val + be || (cv > best_val - be && cs > best_slope)) {
        best_val = cv;
        best_slope = cs;
        best_edge = in_edge_[j];
      }
    }
    for (const auto& [cv, cs] : cands) {
      if (cv == best_val && cs == best_slope) continue;  // the winner itself
      constrain(best_val, best_slope, cv, cs, dlo, dhi, stable_dhi);
    }
    finish[i] = best_val + vertex_cost_topo_[i];
    slope[i] = best_slope;
    arg_edge[i] = best_edge;
  }

  // T = max over sinks (visited in ascending vertex-id order, exactly like
  // the seed's 0..n scan), with the same envelope bookkeeping.
  Solution& sol = cur.solution_;
  sol.active = active;
  sol.at = value;
  sol.messages = 0;
  double best_val = -kInfD;
  double best_slope = 0.0;
  std::uint32_t best_sink = kNoEdge;  // topo position of the critical sink
  for (const std::uint32_t pos : sink_pos_) {
    if (best_sink == kNoEdge || finish[pos] > best_val + value_eps(best_val) ||
        (finish[pos] > best_val - value_eps(best_val) &&
         slope[pos] > best_slope)) {
      best_val = finish[pos];
      best_slope = slope[pos];
      best_sink = pos;
    }
  }
  if (best_sink == kNoEdge) {
    throw LpError("graph has no sink vertex");
  }
  for (const std::uint32_t pos : sink_pos_) {
    if (pos == best_sink) continue;
    constrain(best_val, best_slope, finish[pos], slope[pos], dlo, dhi,
              stable_dhi);
  }
  sol.value = best_val;
  sol.lo = value + dlo;
  sol.hi = value + dhi;
  cur.stable_hi_ = value + stable_dhi;

  // Gradient for *all* parameters: walk the argmax chain from the critical
  // sink, accumulating each edge's coefficients, and cache the chain
  // (source -> sink order) for interior-point replay by the segment walk.
  sol.gradient.assign(static_cast<std::size_t>(num_params_), 0.0);
  cur.chain_.clear();
  std::uint32_t pos = best_sink;
  while (arg_edge[pos] != kNoEdge) {
    const std::uint32_t e = arg_edge[pos];
    const std::uint32_t end = term_offsets_[e + 1];
    for (std::uint32_t i = term_offsets_[e]; i < end; ++i) {
      sol.gradient[static_cast<std::size_t>(term_param_[i])] +=
          term_coeff_[i];
    }
    if (g_.edge(e).kind == graph::EdgeKind::kComm) ++sol.messages;
    // llamp-lint: allow(hot-alloc): chain_ was reserved to num_vertices in
    // prepare(), the longest possible argmax chain.
    cur.chain_.push_back(e);
    pos = topo_pos_[g_.edge(e).from];
  }
  cur.chain_src_ = g_.topo_order()[pos];
  std::reverse(cur.chain_.begin(), cur.chain_.end());
}

double LoweredProblem::replay_flat(std::span<const std::uint32_t> chain,
                                   graph::VertexId chain_src, int active,
                                   double x) const {
  // Re-sum the critical path with the dense pass's exact operation order:
  // finish[src] = vc[src]; then per chain edge e=(u,w):
  // best = finish[u] + cost(e); finish[w] = best + vc[w].
  const std::size_t ne = g_.num_edges();
  // Edge-id-indexed flat arrays; the chain stores edge ids.
  const double* cst =
      flat_const_.data() + static_cast<std::size_t>(active) * ne;
  const double* slp =
      flat_slope_.data() + static_cast<std::size_t>(active) * ne;
  double acc = vertex_cost_[chain_src];
  for (const std::uint32_t e : chain) {
    acc += cst[e] + slp[e] * x;
    acc += vertex_cost_[g_.edge(e).to];
  }
  return acc;
}

double LoweredProblem::replay(int active, double x, Cursor& cur) const {
  if (flat_) {
    return replay_flat(cur.chain_, cur.chain_src_, active, x);
  }
  // CSR fallback: evaluate each chain edge at the cursor's point vector
  // (same term-walk operation order as the dense pass).
  cur.point_[static_cast<std::size_t>(active)] = x;
  const CsrEdgeAt at{this, cur.point_.data(), active};
  double acc = vertex_cost_[cur.chain_src_];
  for (const std::uint32_t e : cur.chain_) {
    acc += at(0, e).first;
    acc += vertex_cost_[g_.edge(e).to];
  }
  return acc;
}

LoweredProblem::SweepEval LoweredProblem::replay_anchor(
    const AnchorState& anchor, int k, double x) const {
  // The cross-request warm path: a cached anchor serves a later point query
  // with no forward pass and no cursor.  Everything read here is immutable
  // problem state or the caller's anchor, so concurrent replays from any
  // number of threads are safe.
  if (!flat_) {
    throw LpError("replay_anchor: requires the flat lowering");
  }
  if (!anchor.covers(k, x)) {
    throw LpError(strformat(
        "replay_anchor: x = %g outside the anchor's zone [%g, %g)", x,
        anchor.solution.at, anchor.stable_hi));
  }
  const double slope = anchor.solution.gradient[static_cast<std::size_t>(k)];
  if (x == anchor.solution.at) {
    // The anchor point itself: the stored dense solution is the answer.
    return {x, anchor.solution.value, slope};
  }
  return {x, replay_flat(anchor.chain, anchor.chain_src, k, x), slope};
}
// llamp-lint: hot-path end

void LoweredProblem::solve_into(int active, double value, Cursor& cur) const {
  if (active < 0 || active >= num_params_) {
    throw LpError("parametric: active parameter out of range");
  }
  prepare(cur);
  if (flat_) {
    const std::size_t slots = in_edge_.size();
    const FlatEdgeAt at{
        flat_const_slot_.data() + static_cast<std::size_t>(active) * slots,
        flat_slope_slot_.data() + static_cast<std::size_t>(active) * slots,
        value};
    forward_pass(active, value, cur, at);
  } else {
    cur.point_.assign(base_.begin(), base_.end());
    cur.point_[static_cast<std::size_t>(active)] = value;
    const CsrEdgeAt at{this, cur.point_.data(), active};
    forward_pass(active, value, cur, at);
  }
}

void LoweredProblem::save_anchor(const Cursor& cur, AnchorState& out) const {
  if (cur.chain_src_ == graph::kInvalidVertex) {
    throw LpError("save_anchor: cursor holds no solve");
  }
  out.solution = cur.solution_;
  out.chain.assign(cur.chain_.begin(), cur.chain_.end());
  out.chain_src = cur.chain_src_;
  out.stable_hi = cur.stable_hi_;
}

const LoweredProblem::Solution& LoweredProblem::solve(int active, double value,
                                                      Cursor& cur) const {
  solve_into(active, value, cur);
  return cur.solution_;
}

LoweredProblem::Solution LoweredProblem::solve(int active,
                                               double value) const {
  Cursor cur;
  solve_into(active, value, cur);
  return std::move(cur.solution_);
}

LoweredProblem::Solution LoweredProblem::solve() const {
  return solve(0, base_.empty() ? 0.0 : base_[0]);
}

// llamp-lint: hot-path begin
void LoweredProblem::sweep(int k, std::span<const double> xs, Cursor& cur,
                           SweepEval* out, SweepStats* stats) const {
  if (k < 0 || k >= num_params_) {
    throw LpError("parametric: active parameter out of range");
  }
  SweepStats local;
  bool have = false;  // never trust state a previous caller left in cur
  double prev = -kInfD;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double x = xs[i];
    if (!(x >= prev)) {
      throw LpError(strformat("sweep: values must be ascending "
                              "(x[%zu] = %g after %g)", i, x, prev));
    }
    prev = x;
    const Solution& sol = cur.solution_;
    if (have && x == sol.at) {
      out[i] = {x, sol.value, sol.gradient[static_cast<std::size_t>(k)]};
    } else if (have && x > sol.at && x < cur.stable_hi_) {
      ++local.replays;
      out[i] = {x, replay(k, x, cur),
                sol.gradient[static_cast<std::size_t>(k)]};
    } else {
      ++local.anchor_solves;
      solve_into(k, x, cur);
      have = true;
      out[i] = {x, sol.value, sol.gradient[static_cast<std::size_t>(k)]};
    }
  }
  if (stats) *stats = local;
}
// llamp-lint: hot-path end

std::vector<LoweredProblem::SweepEval> LoweredProblem::sweep(
    int k, std::span<const double> xs) const {
  Cursor cur;
  std::vector<SweepEval> out(xs.size());
  sweep(k, xs, cur, out.data());
  return out;
}

std::vector<LoweredProblem::Segment> LoweredProblem::piecewise(
    int k, double lo, double hi, Cursor& cur) const {
  if (!(lo <= hi)) throw LpError("piecewise: empty interval");
  std::vector<Segment> segs;
  double x = lo;
  const double eps = std::max(1e-6, (hi - lo) * 1e-12);
  constexpr std::size_t kMaxSegments = 1u << 20;
  while (x <= hi) {
    const Solution& s = solve(k, x, cur);
    const double slope = s.gradient[static_cast<std::size_t>(k)];
    const double seg_hi = std::min(s.hi, hi);
    if (!segs.empty() && std::fabs(segs.back().slope - slope) < 1e-9) {
      segs.back().hi = std::max(segs.back().hi, seg_hi);
    } else {
      segs.push_back({x, seg_hi, slope, s.value});
    }
    if (seg_hi >= hi) break;
    x = std::max(seg_hi + eps, x + eps);
    if (segs.size() > kMaxSegments) {
      throw LpError("piecewise: too many segments");
    }
  }
  return segs;
}

std::vector<LoweredProblem::Segment> LoweredProblem::piecewise(
    int k, double lo, double hi) const {
  Cursor cur;
  return piecewise(k, lo, hi, cur);
}

std::vector<double> LoweredProblem::critical_values(int k, double lo,
                                                    double hi,
                                                    Cursor& cur) const {
  std::vector<double> out;
  const auto segs = piecewise(k, lo, hi, cur);
  for (std::size_t i = 1; i < segs.size(); ++i) {
    out.push_back(segs[i].lo);
  }
  return out;
}

std::vector<double> LoweredProblem::critical_values(int k, double lo,
                                                    double hi) const {
  Cursor cur;
  return critical_values(k, lo, hi, cur);
}

std::vector<double> LoweredProblem::critical_values_algorithm2(
    int k, double lo, double hi, double step, double eps) const {
  if (!(lo <= hi)) throw LpError("algorithm2: empty interval");
  if (eps <= 0.0) throw LpError("algorithm2: eps must be positive");
  Cursor cur;
  std::vector<double> lc;
  double L = hi;
  double lambda = std::numeric_limits<double>::quiet_NaN();
  double prev_lo = kInfD;
  constexpr std::size_t kMaxIters = 1u << 20;
  for (std::size_t iter = 0; iter < kMaxIters; ++iter) {
    // "Assign constraint l >= L; optimize" — one solve yields the objective,
    // the reduced cost λ', and SALBLow (the basis' feasibility floor).
    const Solution& s = solve(k, L, cur);
    const double lambda_new = s.gradient[static_cast<std::size_t>(k)];
    const double lo_new = s.lo;
    if (!std::isnan(lambda) && std::fabs(lambda_new - lambda) > 1e-12) {
      // λ changed between the previous basis and this one: the boundary is
      // the previous basis' feasibility floor.
      if (prev_lo >= lo - eps && prev_lo <= hi + eps) lc.push_back(prev_lo);
    }
    lambda = lambda_new;
    prev_lo = lo_new;
    if (!(lo_new >= lo)) break;  // paper: until L_fl < L_min (or -inf)
    L = std::min(L - step, lo_new - eps);
    if (L < lo) {
      // One final probe at the interval's left end covers a boundary that
      // sits between lo and the current basis' floor.
      const Solution& tail = solve(k, lo, cur);
      const double tail_lambda = tail.gradient[static_cast<std::size_t>(k)];
      if (std::fabs(tail_lambda - lambda) > 1e-12 && lo_new >= lo - eps &&
          lo_new <= hi + eps) {
        lc.push_back(lo_new);
      }
      break;
    }
  }
  std::sort(lc.begin(), lc.end());
  lc.erase(std::unique(lc.begin(), lc.end(),
                       [](double a, double b) { return std::fabs(a - b) < 1e-9; }),
           lc.end());
  return lc;
}

double LoweredProblem::max_param_for_budget(int k, double budget,
                                            Cursor& cur) const {
  if (k < 0 || k >= num_params_) {
    throw LpError("tolerance: parameter out of range");
  }
  return max_param_for_budget_from(k, base_[static_cast<std::size_t>(k)],
                                   budget, cur);
}

double LoweredProblem::max_param_for_budget_from(int k, double from,
                                                 double budget,
                                                 Cursor& cur) const {
  if (k < 0 || k >= num_params_) {
    throw LpError("tolerance: parameter out of range");
  }
  // T(x) is convex, piecewise linear, and non-decreasing in any parameter
  // (all edge coefficients are nonnegative), so the crossing T(x) = budget
  // is found by a bracketed Newton/secant iteration: a tangent from below
  // is exact as soon as its crossing lands inside the current linear piece,
  // and overshoots land above the budget, shrinking the bracket.  This
  // visits O(log) pieces instead of every basis change, which matters on
  // jittered application graphs with thousands of near-ties.
  const double eps = std::max(1e-6, std::fabs(budget) * 1e-12);
  double x = from;
  const Solution* s = &solve(k, x, cur);
  if (s->value > budget + value_eps(budget)) {
    throw LpError(strformat("tolerance: T(%g) = %g already exceeds budget %g",
                            x, s->value, budget));
  }
  double bracket_lo = x;        // T(bracket_lo) <= budget
  double bracket_hi = kInfD;    // T(bracket_hi) > budget (once finite)

  for (int iter = 0; iter < 512; ++iter) {
    const double slope = s->gradient[static_cast<std::size_t>(k)];
    const bool below = s->value <= budget + value_eps(budget);
    if (below) {
      bracket_lo = std::max(bracket_lo, x);
      double proposal;
      if (slope > 1e-12) {
        proposal = x + (budget - s->value) / slope;
        // Tangent crossing inside the current piece: exact answer.  The
        // clamp defines the boundary case where the budget is already tied
        // within the fuzzy band at `from` (T(from) in (budget,
        // budget + eps]): the tangent would extrapolate below the anchor —
        // a negative tolerance — so the result is pinned to `from` itself.
        if (proposal <= s->hi + eps) return std::max(proposal, from);
      } else {
        if (!std::isfinite(s->hi)) return kInfD;  // flat forever
        proposal = s->hi + eps;
      }
      if (std::isfinite(bracket_hi) &&
          (proposal >= bracket_hi || proposal <= bracket_lo)) {
        proposal = 0.5 * (bracket_lo + bracket_hi);  // bisect fallback
      }
      x = proposal;
    } else {
      bracket_hi = std::min(bracket_hi, x);
      // Walk the current piece's line back down to the budget.
      double proposal =
          slope > 1e-12 ? x - (s->value - budget) / slope : s->lo - eps;
      if (slope > 1e-12 && proposal >= s->lo - eps) {
        return std::max(proposal, from);  // same boundary clamp as above
      }
      if (proposal <= bracket_lo || proposal >= bracket_hi) {
        proposal = 0.5 * (bracket_lo + bracket_hi);
      }
      x = proposal;
    }
    if (std::isfinite(bracket_hi) && bracket_hi - bracket_lo <= eps) {
      return bracket_lo;
    }
    s = &solve(k, x, cur);
  }
  throw LpError("tolerance: did not converge");
}

double LoweredProblem::max_param_for_budget(int k, double budget) const {
  Cursor cur;
  return max_param_for_budget(k, budget, cur);
}

ParametricSolver::ParametricSolver(std::shared_ptr<const LoweredProblem> prob)
    : prob_(std::move(prob)) {
  if (!prob_) throw LpError("parametric: null lowered problem");
}

}  // namespace llamp::lp
