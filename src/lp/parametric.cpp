#include "lp/parametric.hpp"

#include <algorithm>
#include <cmath>

#include "graph/costs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::lp {

namespace {
constexpr double kInfD = std::numeric_limits<double>::infinity();
constexpr std::uint32_t kNoEdge = std::numeric_limits<std::uint32_t>::max();

/// Relative tolerance for value comparisons (times are O(1e10) ns).
double value_eps(double v) { return 1e-9 * (1.0 + std::fabs(v)); }

/// Upper-envelope bookkeeping: given the winning affine piece
/// (value, slope) at δ=0 and a losing candidate, tighten the interval of δ
/// on which the winner stays maximal: V_w + S_w·δ >= V_c + S_c·δ.
void constrain(double win_val, double win_slope, double cand_val,
               double cand_slope, double& dlo, double& dhi) {
  const double dv = std::max(win_val - cand_val, 0.0);
  const double ds = cand_slope - win_slope;
  if (ds > 1e-12) {
    dhi = std::min(dhi, dv / ds);
  } else if (ds < -1e-12) {
    dlo = std::max(dlo, dv / ds);  // dv/ds <= 0
  }
}

}  // namespace

ParametricSolver::ParametricSolver(const graph::Graph& g,
                                   std::shared_ptr<const ParamSpace> space)
    : g_(g), space_(std::move(space)) {
  if (!g.finalized()) throw LpError("graph must be finalized");
  if (!space_) throw LpError("null parameter space");
  const auto edges = g_.edges();
  edge_affine_.reserve(edges.size());
  for (const graph::Edge& e : edges) {
    edge_affine_.push_back(space_->edge_cost(g_, e));
  }
  vertex_cost_.reserve(g_.num_vertices());
  const loggops::Params& p = space_->params();
  for (graph::VertexId v = 0; v < g_.num_vertices(); ++v) {
    vertex_cost_.push_back(graph::vertex_cost(g_.vertex(v), p));
  }
  base_.reserve(static_cast<std::size_t>(space_->num_params()));
  for (int k = 0; k < space_->num_params(); ++k) {
    base_.push_back(space_->base_value(k));
  }
}

ParametricSolver::Solution ParametricSolver::solve() const {
  return solve(0, base_.empty() ? 0.0 : base_[0]);
}

ParametricSolver::Solution ParametricSolver::solve(int active,
                                                   double value) const {
  if (active < 0 || active >= space_->num_params()) {
    throw LpError("parametric: active parameter out of range");
  }
  std::vector<double> point = base_;
  point[static_cast<std::size_t>(active)] = value;

  const std::size_t n = g_.num_vertices();
  std::vector<double> finish(n, 0.0);
  std::vector<double> slope(n, 0.0);
  std::vector<std::uint32_t> arg_edge(n, kNoEdge);

  // Allowed movement of the active parameter relative to `value` keeping
  // every max-argument selection (the LP basis) valid.
  double dlo = -kInfD;
  double dhi = kInfD;

  // (cost, slope) of an edge at the evaluation point.
  const auto edge_at = [&](std::uint32_t e) {
    double c = edge_affine_[e].constant;
    double s = 0.0;
    for (const ParamTerm& t : edge_affine_[e].terms) {
      c += t.coeff * point[static_cast<std::size_t>(t.param)];
      if (t.param == active) s += t.coeff;
    }
    return std::pair(c, s);
  };

  std::vector<std::pair<double, double>> cands;  // (value, slope) scratch
  for (const graph::VertexId v : g_.topo_order()) {
    const auto ins = g_.in_edges(v);
    if (ins.empty()) {
      finish[v] = vertex_cost_[v];
      continue;
    }
    cands.clear();
    double best_val = -kInfD;
    double best_slope = 0.0;
    std::uint32_t best_edge = kNoEdge;
    for (const auto& a : ins) {
      const auto [c, s] = edge_at(a.edge);
      const double cv = finish[a.other] + c;
      const double cs = slope[a.other] + s;
      cands.emplace_back(cv, cs);
      if (best_edge == kNoEdge || cv > best_val + value_eps(best_val) ||
          (cv > best_val - value_eps(best_val) && cs > best_slope)) {
        best_val = cv;
        best_slope = cs;
        best_edge = a.edge;
      }
    }
    for (const auto& [cv, cs] : cands) {
      if (cv == best_val && cs == best_slope) continue;  // the winner itself
      constrain(best_val, best_slope, cv, cs, dlo, dhi);
    }
    finish[v] = best_val + vertex_cost_[v];
    slope[v] = best_slope;
    arg_edge[v] = best_edge;
  }

  // T = max over sinks, with the same envelope bookkeeping.
  Solution sol;
  sol.active = active;
  sol.at = value;
  double best_val = -kInfD;
  double best_slope = 0.0;
  graph::VertexId best_sink = graph::kInvalidVertex;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (!g_.out_edges(v).empty()) continue;
    if (best_sink == graph::kInvalidVertex ||
        finish[v] > best_val + value_eps(best_val) ||
        (finish[v] > best_val - value_eps(best_val) && slope[v] > best_slope)) {
      best_val = finish[v];
      best_slope = slope[v];
      best_sink = v;
    }
  }
  if (best_sink == graph::kInvalidVertex) {
    throw LpError("graph has no sink vertex");
  }
  for (graph::VertexId v = 0; v < n; ++v) {
    if (!g_.out_edges(v).empty() || v == best_sink) continue;
    constrain(best_val, best_slope, finish[v], slope[v], dlo, dhi);
  }
  sol.value = best_val;
  sol.lo = value + dlo;
  sol.hi = value + dhi;

  // Gradient for *all* parameters: walk the argmax chain from the critical
  // sink and accumulate each edge's coefficients.
  sol.gradient.assign(static_cast<std::size_t>(space_->num_params()), 0.0);
  graph::VertexId v = best_sink;
  while (arg_edge[v] != kNoEdge) {
    const std::uint32_t e = arg_edge[v];
    for (const ParamTerm& t : edge_affine_[e].terms) {
      sol.gradient[static_cast<std::size_t>(t.param)] += t.coeff;
    }
    if (g_.edge(e).kind == graph::EdgeKind::kComm) ++sol.messages;
    v = g_.edge(e).from;
  }
  return sol;
}

std::vector<ParametricSolver::Segment> ParametricSolver::piecewise(
    int k, double lo, double hi) const {
  if (!(lo <= hi)) throw LpError("piecewise: empty interval");
  std::vector<Segment> segs;
  double x = lo;
  const double eps = std::max(1e-6, (hi - lo) * 1e-12);
  constexpr std::size_t kMaxSegments = 1u << 20;
  while (x <= hi) {
    const Solution s = solve(k, x);
    const double slope = s.gradient[static_cast<std::size_t>(k)];
    const double seg_hi = std::min(s.hi, hi);
    if (!segs.empty() && std::fabs(segs.back().slope - slope) < 1e-9) {
      segs.back().hi = std::max(segs.back().hi, seg_hi);
    } else {
      segs.push_back({x, seg_hi, slope, s.value});
    }
    if (seg_hi >= hi) break;
    x = std::max(seg_hi + eps, x + eps);
    if (segs.size() > kMaxSegments) {
      throw LpError("piecewise: too many segments");
    }
  }
  return segs;
}

std::vector<double> ParametricSolver::critical_values(int k, double lo,
                                                      double hi) const {
  std::vector<double> out;
  const auto segs = piecewise(k, lo, hi);
  for (std::size_t i = 1; i < segs.size(); ++i) {
    out.push_back(segs[i].lo);
  }
  return out;
}

std::vector<double> ParametricSolver::critical_values_algorithm2(
    int k, double lo, double hi, double step, double eps) const {
  if (!(lo <= hi)) throw LpError("algorithm2: empty interval");
  if (eps <= 0.0) throw LpError("algorithm2: eps must be positive");
  std::vector<double> lc;
  double L = hi;
  double lambda = std::numeric_limits<double>::quiet_NaN();
  double prev_lo = kInfD;
  constexpr std::size_t kMaxIters = 1u << 20;
  for (std::size_t iter = 0; iter < kMaxIters; ++iter) {
    // "Assign constraint l >= L; optimize" — one solve yields the objective,
    // the reduced cost λ', and SALBLow (the basis' feasibility floor).
    const Solution s = solve(k, L);
    const double lambda_new = s.gradient[static_cast<std::size_t>(k)];
    const double lo_new = s.lo;
    if (!std::isnan(lambda) && std::fabs(lambda_new - lambda) > 1e-12) {
      // λ changed between the previous basis and this one: the boundary is
      // the previous basis' feasibility floor.
      if (prev_lo >= lo - eps && prev_lo <= hi + eps) lc.push_back(prev_lo);
    }
    lambda = lambda_new;
    prev_lo = lo_new;
    if (!(lo_new >= lo)) break;  // paper: until L_fl < L_min (or -inf)
    L = std::min(L - step, lo_new - eps);
    if (L < lo) {
      // One final probe at the interval's left end covers a boundary that
      // sits between lo and the current basis' floor.
      const Solution tail = solve(k, lo);
      const double tail_lambda = tail.gradient[static_cast<std::size_t>(k)];
      if (std::fabs(tail_lambda - lambda) > 1e-12 && lo_new >= lo - eps &&
          lo_new <= hi + eps) {
        lc.push_back(lo_new);
      }
      break;
    }
  }
  std::sort(lc.begin(), lc.end());
  lc.erase(std::unique(lc.begin(), lc.end(),
                       [](double a, double b) { return std::fabs(a - b) < 1e-9; }),
           lc.end());
  return lc;
}

double ParametricSolver::max_param_for_budget(int k, double budget) const {
  if (k < 0 || k >= space_->num_params()) {
    throw LpError("tolerance: parameter out of range");
  }
  // T(x) is convex, piecewise linear, and non-decreasing in any parameter
  // (all edge coefficients are nonnegative), so the crossing T(x) = budget
  // is found by a bracketed Newton/secant iteration: a tangent from below
  // is exact as soon as its crossing lands inside the current linear piece,
  // and overshoots land above the budget, shrinking the bracket.  This
  // visits O(log) pieces instead of every basis change, which matters on
  // jittered application graphs with thousands of near-ties.
  const double eps = std::max(1e-6, std::fabs(budget) * 1e-12);
  double x = base_[static_cast<std::size_t>(k)];
  Solution s = solve(k, x);
  if (s.value > budget + value_eps(budget)) {
    throw LpError(strformat("tolerance: T(%g) = %g already exceeds budget %g",
                            x, s.value, budget));
  }
  double bracket_lo = x;        // T(bracket_lo) <= budget
  double bracket_hi = kInfD;    // T(bracket_hi) > budget (once finite)

  for (int iter = 0; iter < 512; ++iter) {
    const double slope = s.gradient[static_cast<std::size_t>(k)];
    const bool below = s.value <= budget + value_eps(budget);
    if (below) {
      bracket_lo = std::max(bracket_lo, x);
      double proposal;
      if (slope > 1e-12) {
        proposal = x + (budget - s.value) / slope;
        // Tangent crossing inside the current piece: exact answer.
        if (proposal <= s.hi + eps) return proposal;
      } else {
        if (!std::isfinite(s.hi)) return kInfD;  // flat forever
        proposal = s.hi + eps;
      }
      if (std::isfinite(bracket_hi) &&
          (proposal >= bracket_hi || proposal <= bracket_lo)) {
        proposal = 0.5 * (bracket_lo + bracket_hi);  // bisect fallback
      }
      x = proposal;
    } else {
      bracket_hi = std::min(bracket_hi, x);
      // Walk the current piece's line back down to the budget.
      double proposal =
          slope > 1e-12 ? x - (s.value - budget) / slope : s.lo - eps;
      if (slope > 1e-12 && proposal >= s.lo - eps) return proposal;
      if (proposal <= bracket_lo || proposal >= bracket_hi) {
        proposal = 0.5 * (bracket_lo + bracket_hi);
      }
      x = proposal;
    }
    if (std::isfinite(bracket_hi) && bracket_hi - bracket_lo <= eps) {
      return bracket_lo;
    }
    s = solve(k, x);
  }
  throw LpError("tolerance: did not converge");
}

}  // namespace llamp::lp
