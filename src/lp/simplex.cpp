#include "lp/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::lp {

std::string to_string(SolveStatus s) {
  switch (s) {
    case SolveStatus::kOptimal: return "optimal";
    case SolveStatus::kInfeasible: return "infeasible";
    case SolveStatus::kUnbounded: return "unbounded";
    case SolveStatus::kIterationLimit: return "iteration-limit";
  }
  return "?";
}

bool Solution::tight(const Model& m, int row, double tol) const {
  const double act = row_activity.at(static_cast<std::size_t>(row));
  const double rhs = m.row(row).rhs;
  return std::fabs(act - rhs) <= tol * (1.0 + std::fabs(rhs));
}

namespace detail {

enum class VarStatus : std::uint8_t { kBasic, kAtLower, kAtUpper, kFree };

/// Internal computational form: min c'x, A x = b (slacks folded into x),
/// lb <= x <= ub, solved with a dense explicit basis inverse.
struct Tableau {
  int m = 0;                      // rows
  int n = 0;                      // columns (structural + slack + artificial)
  int n_structural = 0;
  int n_model = 0;                // model variables (== n_structural)
  bool maximize = false;

  // Sparse columns.
  std::vector<std::vector<std::pair<int, double>>> cols;
  std::vector<double> lb, ub, cost, value;
  std::vector<VarStatus> status;
  std::vector<double> b;

  // Basis.
  std::vector<int> basic_of_row;    // column basic in each row
  std::vector<double> binv;         // m*m row-major
  double& Binv(int i, int k) {
    return binv[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
                static_cast<std::size_t>(k)];
  }
  double BinvC(int i, int k) const {
    return binv[static_cast<std::size_t>(i) * static_cast<std::size_t>(m) +
                static_cast<std::size_t>(k)];
  }
};

double finite_or(double v, double fallback) {
  return std::isfinite(v) ? v : fallback;
}

/// Initial nonbasic value for a column: prefer the finite lower bound.
double initial_value(double lb, double ub) {
  if (std::isfinite(lb)) return lb;
  if (std::isfinite(ub)) return ub;
  return 0.0;
}

VarStatus initial_status(double lb, double ub) {
  if (std::isfinite(lb)) return VarStatus::kAtLower;
  if (std::isfinite(ub)) return VarStatus::kAtUpper;
  return VarStatus::kFree;
}

Tableau build_tableau(const Model& model) {
  Tableau t;
  t.m = model.num_constraints();
  t.n_model = t.n_structural = model.num_vars();
  t.maximize = model.sense() == Sense::kMaximize;
  const int n0 = t.n_structural + t.m;  // structural + slack
  t.cols.resize(static_cast<std::size_t>(n0));
  t.lb.resize(static_cast<std::size_t>(n0));
  t.ub.resize(static_cast<std::size_t>(n0));
  t.cost.assign(static_cast<std::size_t>(n0), 0.0);
  t.b.resize(static_cast<std::size_t>(t.m));

  for (int j = 0; j < t.n_structural; ++j) {
    const auto& v = model.var(j);
    t.lb[static_cast<std::size_t>(j)] = v.lb;
    t.ub[static_cast<std::size_t>(j)] = v.ub;
    t.cost[static_cast<std::size_t>(j)] = t.maximize ? -v.obj : v.obj;
  }
  for (int i = 0; i < t.m; ++i) {
    const auto& row = model.row(i);
    t.b[static_cast<std::size_t>(i)] = row.rhs;
    for (const auto& [v, c] : row.terms) {
      if (c != 0.0) {
        t.cols[static_cast<std::size_t>(v)].emplace_back(i, c);
      }
    }
    // Slack column: a'x + s = b with s-bounds encoding the relation.
    const int sj = t.n_structural + i;
    t.cols[static_cast<std::size_t>(sj)].emplace_back(i, 1.0);
    switch (row.rel) {
      case Relation::kLe:
        t.lb[static_cast<std::size_t>(sj)] = 0.0;
        t.ub[static_cast<std::size_t>(sj)] = kInf;
        break;
      case Relation::kGe:
        t.lb[static_cast<std::size_t>(sj)] = -kInf;
        t.ub[static_cast<std::size_t>(sj)] = 0.0;
        break;
      case Relation::kEq:
        t.lb[static_cast<std::size_t>(sj)] = 0.0;
        t.ub[static_cast<std::size_t>(sj)] = 0.0;
        break;
    }
  }
  t.n = n0;
  t.value.resize(static_cast<std::size_t>(t.n));
  t.status.resize(static_cast<std::size_t>(t.n));
  for (int j = 0; j < t.n; ++j) {
    t.value[static_cast<std::size_t>(j)] =
        initial_value(t.lb[static_cast<std::size_t>(j)],
                      t.ub[static_cast<std::size_t>(j)]);
    t.status[static_cast<std::size_t>(j)] =
        initial_status(t.lb[static_cast<std::size_t>(j)],
                       t.ub[static_cast<std::size_t>(j)]);
  }
  return t;
}

/// The driver for one phase of the bounded-variable revised simplex.
class Engine {
 public:
  Engine(Tableau& t, const SimplexSolver::Config& cfg) : t_(t), cfg_(cfg) {}

  /// Runs to optimality of the current cost vector.  Returns kOptimal or
  /// kUnbounded / kIterationLimit.
  SolveStatus optimize(std::size_t& iterations) {
    std::size_t degenerate_streak = 0;
    while (true) {
      if (iterations >= cfg_.max_iterations) {
        return SolveStatus::kIterationLimit;
      }
      const bool bland = degenerate_streak >= cfg_.degenerate_before_bland;
      compute_duals();
      int enter = -1;
      double best = cfg_.tol;
      int direction = 0;
      for (int j = 0; j < t_.n; ++j) {
        const auto sj = static_cast<std::size_t>(j);
        if (t_.status[sj] == VarStatus::kBasic) continue;
        if (t_.lb[sj] == t_.ub[sj]) continue;  // fixed
        const double d = reduced_cost(j);
        int dir = 0;
        double score = 0.0;
        if (t_.status[sj] == VarStatus::kAtLower && d < -cfg_.tol) {
          dir = +1;
          score = -d;
        } else if (t_.status[sj] == VarStatus::kAtUpper && d > cfg_.tol) {
          dir = -1;
          score = d;
        } else if (t_.status[sj] == VarStatus::kFree &&
                   std::fabs(d) > cfg_.tol) {
          dir = d < 0 ? +1 : -1;
          score = std::fabs(d);
        }
        if (dir != 0) {
          if (bland) {  // Bland's rule: first eligible index
            enter = j;
            direction = dir;
            break;
          }
          if (score > best) {
            best = score;
            enter = j;
            direction = dir;
          }
        }
      }
      if (enter < 0) return SolveStatus::kOptimal;

      // Direction of basic variables: x_B changes by -dir * t * w.
      ftran(enter);
      const auto se = static_cast<std::size_t>(enter);

      double t_max = kInf;
      int leave_row = -1;
      double leave_to_bound = 0.0;  // bound the leaving variable lands on
      // Bound flip of the entering variable itself.
      const double span = t_.ub[se] - t_.lb[se];
      if (std::isfinite(span)) t_max = span;
      for (int i = 0; i < t_.m; ++i) {
        const double wi = w_[static_cast<std::size_t>(i)];
        if (std::fabs(wi) <= cfg_.tol) continue;
        const int bj = t_.basic_of_row[static_cast<std::size_t>(i)];
        const auto sbj = static_cast<std::size_t>(bj);
        const double delta = static_cast<double>(direction) * wi;
        double limit = kInf;
        double to_bound = 0.0;
        if (delta > 0.0) {  // basic variable decreases toward its lb
          if (std::isfinite(t_.lb[sbj])) {
            limit = (t_.value[sbj] - t_.lb[sbj]) / delta;
            to_bound = t_.lb[sbj];
          }
        } else {  // basic variable increases toward its ub
          if (std::isfinite(t_.ub[sbj])) {
            limit = (t_.ub[sbj] - t_.value[sbj]) / -delta;
            to_bound = t_.ub[sbj];
          }
        }
        if (limit < t_max - cfg_.tol ||
            (limit < t_max + cfg_.tol && leave_row >= 0 && bland &&
             bj < t_.basic_of_row[static_cast<std::size_t>(leave_row)])) {
          t_max = std::max(limit, 0.0);
          leave_row = i;
          leave_to_bound = to_bound;
        }
      }
      if (!std::isfinite(t_max)) return SolveStatus::kUnbounded;

      degenerate_streak = t_max <= cfg_.tol ? degenerate_streak + 1 : 0;

      // Apply the step to all basic variables and the entering variable.
      for (int i = 0; i < t_.m; ++i) {
        const int bj = t_.basic_of_row[static_cast<std::size_t>(i)];
        t_.value[static_cast<std::size_t>(bj)] -=
            static_cast<double>(direction) * t_max *
            w_[static_cast<std::size_t>(i)];
      }
      t_.value[se] += static_cast<double>(direction) * t_max;

      if (leave_row < 0) {
        // Pure bound flip: entering variable moved to its other bound.
        t_.status[se] = direction > 0 ? VarStatus::kAtUpper : VarStatus::kAtLower;
        t_.value[se] = direction > 0 ? t_.ub[se] : t_.lb[se];
      } else {
        const int leave = t_.basic_of_row[static_cast<std::size_t>(leave_row)];
        const auto sl = static_cast<std::size_t>(leave);
        t_.value[sl] = leave_to_bound;
        t_.status[sl] = (std::isfinite(t_.lb[sl]) &&
                         leave_to_bound == t_.lb[sl])
                            ? VarStatus::kAtLower
                            : VarStatus::kAtUpper;
        t_.status[se] = VarStatus::kBasic;
        t_.basic_of_row[static_cast<std::size_t>(leave_row)] = enter;
        update_binv(leave_row);
      }
      ++iterations;
      if (iterations % 512 == 0) recompute_basic_values();
    }
  }

  /// y = c_B' * Binv.
  void compute_duals() {
    y_.assign(static_cast<std::size_t>(t_.m), 0.0);
    for (int k = 0; k < t_.m; ++k) {
      const double cb =
          t_.cost[static_cast<std::size_t>(t_.basic_of_row[static_cast<std::size_t>(k)])];
      if (cb == 0.0) continue;
      for (int i = 0; i < t_.m; ++i) {
        y_[static_cast<std::size_t>(i)] += cb * t_.BinvC(k, i);
      }
    }
  }

  double reduced_cost(int j) const {
    double d = t_.cost[static_cast<std::size_t>(j)];
    for (const auto& [row, a] : t_.cols[static_cast<std::size_t>(j)]) {
      d -= y_[static_cast<std::size_t>(row)] * a;
    }
    return d;
  }

  /// w = Binv * A_j.
  void ftran(int j) {
    w_.assign(static_cast<std::size_t>(t_.m), 0.0);
    for (const auto& [row, a] : t_.cols[static_cast<std::size_t>(j)]) {
      for (int i = 0; i < t_.m; ++i) {
        w_[static_cast<std::size_t>(i)] += t_.BinvC(i, row) * a;
      }
    }
  }

  const std::vector<double>& duals() const { return y_; }
  const std::vector<double>& direction() const { return w_; }

  /// Product-form update after replacing the basic variable of `row`.
  void update_binv(int row) {
    const double piv = w_[static_cast<std::size_t>(row)];
    if (std::fabs(piv) < 1e-12) {
      throw LpError("numerically singular pivot");
    }
    for (int k = 0; k < t_.m; ++k) {
      t_.Binv(row, k) /= piv;
    }
    for (int i = 0; i < t_.m; ++i) {
      if (i == row) continue;
      const double f = w_[static_cast<std::size_t>(i)];
      if (std::fabs(f) < 1e-15) continue;
      for (int k = 0; k < t_.m; ++k) {
        t_.Binv(i, k) -= f * t_.BinvC(row, k);
      }
      w_[static_cast<std::size_t>(i)] = 0.0;
    }
    w_[static_cast<std::size_t>(row)] = 1.0;
  }

  /// x_B = Binv (b - A_N x_N); refreshes accumulated rounding error.
  void recompute_basic_values() {
    std::vector<double> rhs(t_.b);
    for (int j = 0; j < t_.n; ++j) {
      const auto sj = static_cast<std::size_t>(j);
      if (t_.status[sj] == VarStatus::kBasic) continue;
      const double v = t_.value[sj];
      if (v == 0.0) continue;
      for (const auto& [row, a] : t_.cols[sj]) {
        rhs[static_cast<std::size_t>(row)] -= a * v;
      }
    }
    for (int i = 0; i < t_.m; ++i) {
      double v = 0.0;
      for (int k = 0; k < t_.m; ++k) {
        v += t_.BinvC(i, k) * rhs[static_cast<std::size_t>(k)];
      }
      t_.value[static_cast<std::size_t>(
          t_.basic_of_row[static_cast<std::size_t>(i)])] = v;
    }
  }

 private:
  Tableau& t_;
  const SimplexSolver::Config& cfg_;
  std::vector<double> y_;
  std::vector<double> w_;
};

}  // namespace detail

/// Opaque post-solve state enabling bound ranging without re-solving.
struct SimplexInternal {
  detail::Tableau t;
};

Solution SimplexSolver::solve(const Model& model) const {
  using detail::Engine;
  using detail::Tableau;
  using detail::VarStatus;
  using detail::build_tableau;
  Solution sol;
  sol.x.assign(static_cast<std::size_t>(model.num_vars()), 0.0);
  sol.reduced_cost.assign(static_cast<std::size_t>(model.num_vars()), 0.0);
  sol.dual.assign(static_cast<std::size_t>(model.num_constraints()), 0.0);
  sol.basic.assign(static_cast<std::size_t>(model.num_vars()), false);
  sol.row_activity.assign(static_cast<std::size_t>(model.num_constraints()),
                          0.0);

  auto internal = std::make_shared<SimplexInternal>();
  Tableau& t = internal->t;
  t = build_tableau(model);

  // Phase 1: artificial basis.  Residual of the equality system at the
  // initial nonbasic point decides each artificial's sign so its value
  // starts nonnegative.
  std::vector<double> residual(t.b);
  for (int j = 0; j < t.n; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    const double v = t.value[sj];
    if (v == 0.0) continue;
    for (const auto& [row, a] : t.cols[sj]) {
      residual[static_cast<std::size_t>(row)] -= a * v;
    }
  }
  const int n_real = t.n;
  t.basic_of_row.resize(static_cast<std::size_t>(t.m));
  t.binv.assign(static_cast<std::size_t>(t.m) * static_cast<std::size_t>(t.m),
                0.0);
  std::vector<double> phase2_cost = t.cost;
  std::fill(t.cost.begin(), t.cost.end(), 0.0);
  for (int i = 0; i < t.m; ++i) {
    const double r = residual[static_cast<std::size_t>(i)];
    const double sign = r < 0.0 ? -1.0 : 1.0;
    t.cols.push_back({{i, sign}});
    t.lb.push_back(0.0);
    t.ub.push_back(kInf);
    t.cost.push_back(1.0);
    phase2_cost.push_back(0.0);
    t.value.push_back(std::fabs(r));
    t.status.push_back(VarStatus::kBasic);
    t.basic_of_row[static_cast<std::size_t>(i)] = t.n;
    t.Binv(i, i) = sign;
    ++t.n;
  }

  Engine engine(t, cfg_);
  sol.iterations = 0;
  SolveStatus st = engine.optimize(sol.iterations);
  if (st == SolveStatus::kIterationLimit) {
    sol.status = st;
    return sol;
  }
  double infeas = 0.0;
  for (int j = n_real; j < t.n; ++j) {
    infeas += t.value[static_cast<std::size_t>(j)];
  }
  double scale = 1.0;
  for (int i = 0; i < t.m; ++i) {
    scale = std::max(scale, std::fabs(t.b[static_cast<std::size_t>(i)]));
  }
  if (infeas > 1e-6 * scale) {
    sol.status = SolveStatus::kInfeasible;
    return sol;
  }
  // Phase 2: real costs, artificials pinned to zero.
  t.cost = phase2_cost;
  for (int j = n_real; j < t.n; ++j) {
    t.ub[static_cast<std::size_t>(j)] = 0.0;
    t.value[static_cast<std::size_t>(j)] =
        std::min(t.value[static_cast<std::size_t>(j)], 0.0);
  }
  st = engine.optimize(sol.iterations);
  if (st != SolveStatus::kOptimal) {
    sol.status = st;
    return sol;
  }
  engine.recompute_basic_values();
  engine.compute_duals();

  // Extract the solution in the model's orientation.
  const double flip = t.maximize ? -1.0 : 1.0;
  double obj = 0.0;
  for (int j = 0; j < t.n_model; ++j) {
    const auto sj = static_cast<std::size_t>(j);
    sol.x[sj] = t.value[sj];
    obj += model.var(j).obj * t.value[sj];
    sol.basic[sj] = t.status[sj] == VarStatus::kBasic;
    sol.reduced_cost[sj] = flip * engine.reduced_cost(j);
  }
  sol.objective = obj;
  for (int i = 0; i < t.m; ++i) {
    sol.dual[static_cast<std::size_t>(i)] =
        flip * engine.duals()[static_cast<std::size_t>(i)];
    double act = 0.0;
    for (const auto& [v, c] : model.row(i).terms) {
      act += c * sol.x[static_cast<std::size_t>(v)];
    }
    sol.row_activity[static_cast<std::size_t>(i)] = act;
  }
  sol.status = SolveStatus::kOptimal;
  sol.internal = std::move(internal);
  return sol;
}

SimplexSolver::Range SimplexSolver::bound_range(const Model& model,
                                                const Solution& s,
                                                int var) const {
  if (s.status != SolveStatus::kOptimal || !s.internal) {
    throw LpError("bound_range requires an optimal solution");
  }
  if (var < 0 || var >= model.num_vars()) {
    throw LpError("bound_range: variable out of range");
  }
  // Work on a copy of the tableau so ranging never perturbs the solution.
  detail::Tableau t = s.internal->t;
  detail::Engine engine(t, cfg_);
  const auto sv = static_cast<std::size_t>(var);

  Range r;
  const double xv = t.value[sv];
  if (t.status[sv] == detail::VarStatus::kBasic) {
    // The variable's lower bound is inactive; it can drop indefinitely and
    // rise until it reaches the current optimal value.
    r.lo = -kInf;
    r.hi = xv;
    return r;
  }
  // Nonbasic: move the variable by ±t; basic variables respond with -w t.
  engine.ftran(var);
  const auto& w = engine.direction();
  double up = kInf;
  double down = kInf;
  for (int i = 0; i < t.m; ++i) {
    const double wi = w[static_cast<std::size_t>(i)];
    if (std::fabs(wi) <= cfg_.tol) continue;
    const int bj = t.basic_of_row[static_cast<std::size_t>(i)];
    const auto sbj = static_cast<std::size_t>(bj);
    const double to_lb = t.value[sbj] - detail::finite_or(t.lb[sbj], -kInf);
    const double to_ub = detail::finite_or(t.ub[sbj], kInf) - t.value[sbj];
    if (wi > 0.0) {
      up = std::min(up, to_lb / wi);      // +t pushes basic down
      down = std::min(down, to_ub / wi);  // -t pushes basic up
    } else {
      up = std::min(up, to_ub / -wi);
      down = std::min(down, to_lb / -wi);
    }
  }
  r.lo = xv - down;
  r.hi = xv + up;
  return r;
}

}  // namespace llamp::lp
