#include "lp/parametric.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <type_traits>

#include "util/error.hpp"
#include "util/math.hpp"
#include "util/strings.hpp"

// The batched sample-axis kernel (DESIGN.md §4f).  One pass over the
// topo-permuted adjacency evaluates W parameter points at once: every
// per-vertex accumulator becomes a W-lane row (structure-of-arrays over the
// sample axis), every scalar operation of forward_pass() becomes a stride-1
// lane loop performing the *same* floating-point operations in the *same*
// order per lane — which is what makes the results bitwise identical to W
// independent solve() calls rather than merely close.
//
// Determinism notes, load-bearing for the bitwise contract pinned by
// test_solver_hotpath.cpp:
//
//  * This translation unit is compiled with -ffp-contract=off (see
//    CMakeLists.txt): the scalar pass is built for the generic baseline ISA
//    where `c + s*x` is a multiply then an add, so the vectorized build of
//    this file must not fuse them into an FMA.
//  * The scalar pass's two "skip the winner" branches (the candidate
//    envelope sweep and the sink envelope sweep) are pure no-ops when taken
//    unconditionally: the winner's own row has dv == 0 and ds == 0 exactly
//    (it was copied from the same doubles), so constrain() tightens
//    nothing.  The kernel therefore constrains every row branchlessly; a
//    ds == 0 division yields inf/NaN which the blend discards before it can
//    reach dlo/dhi.
//  * The reported slope is accumulated *forward* along the argmax path,
//    while the scalar Solution.gradient[active] re-sums the critical path
//    in reverse chain order.  Every first-party space lowers integer-valued
//    coefficients (message counts, byte counts), so both sums are exact and
//    order-independent — the equivalence wall pins this across all
//    registered apps and both lowerings.
// GCC fully unrolls constant-trip lane loops at -O3 and then only
// SLP-vectorizes fragments of the unrolled body; the simd pragma makes the
// loop vectorizer handle each lane loop as a loop (compiled with
// -fopenmp-simd: annotations only, no OpenMP runtime).  Element order and
// per-lane operation order are unchanged, so the bitwise contract holds.
#if defined(__GNUC__)
#define LLAMP_SIMD _Pragma("omp simd")
#else
#define LLAMP_SIMD
#endif

namespace llamp::lp {

namespace {
constexpr double kInfD = std::numeric_limits<double>::infinity();

using detail::value_eps;

/// W-lane edge cost under the flat lowering: (cst[j] + slp[j] * x_lane,
/// slp[j]) — the lane loop over one slot's two contiguous loads.
template <std::size_t W>
struct FlatLaneCost {
  const double* cst;  ///< slot-permuted constants of the active parameter
  const double* slp;  ///< slot-permuted slopes of the active parameter
  void operator()(std::uint32_t j, std::uint32_t /*edge*/, const double* xs,
                  double* c, double* s) const {
    const double cj = cst[j];
    const double sj = slp[j];
    LLAMP_SIMD
    for (std::size_t l = 0; l < W; ++l) {
      c[l] = cj + sj * xs[l];
      s[l] = sj;
    }
  }
};

/// W-lane edge cost under the CSR fallback: the scalar term walk with the
/// term loop outermost, so each lane accumulates terms in the scalar's
/// exact order (inactive terms contribute the identical product
/// coeff * base[p] to every lane).
template <std::size_t W>
struct CsrLaneCost {
  const std::uint32_t* term_off;
  const std::int32_t* term_param;
  const double* term_coeff;
  const double* edge_const;
  const double* base;
  int active;
  void operator()(std::uint32_t /*slot*/, std::uint32_t e, const double* xs,
                  double* c, double* s) const {
    const double c0 = edge_const[e];
    LLAMP_SIMD
    for (std::size_t l = 0; l < W; ++l) {
      c[l] = c0;
      s[l] = 0.0;
    }
    const std::uint32_t end = term_off[e + 1];
    for (std::uint32_t i = term_off[e]; i < end; ++i) {
      const std::int32_t p = term_param[i];
      const double coeff = term_coeff[i];
      if (p == active) {
        LLAMP_SIMD
        for (std::size_t l = 0; l < W; ++l) {
          c[l] += coeff * xs[l];
          s[l] += coeff;
        }
      } else {
        const double add = coeff * base[static_cast<std::size_t>(p)];
        LLAMP_SIMD
        for (std::size_t l = 0; l < W; ++l) c[l] += add;
      }
    }
  }
};

}  // namespace

void LoweredProblem::prepare_batch(BatchCursor& cur) const {
  // Same policy as prepare(): the pass writes every row before reading it,
  // so rows are resized without clearing; buffers only grow across
  // problems, and steady state never allocates (test_alloc_free pins this).
  const std::size_t rows = g_.num_vertices() * kBatchWidth;
  if (cur.finish_.size() < rows) {
    cur.finish_.resize(rows);
    cur.slope_.resize(rows);
  }
  const std::size_t cands =
      static_cast<std::size_t>(max_in_degree_) * kBatchWidth;
  if (cur.cand_val_.size() < cands) {
    cur.cand_val_.resize(cands);
    cur.cand_slope_.resize(cands);
  }
}

// llamp-lint: hot-path begin
template <std::size_t W, bool Range, typename LaneCost>
void LoweredProblem::batch_pass(const LaneCost& cost, const double* xs,
                                BatchCursor& cur, BatchPoint* out) const {
  const std::size_t n = g_.num_vertices();
  double* const finish = cur.finish_.data();
  double* const slope = cur.slope_.data();
  double* const cand_val = cur.cand_val_.data();
  double* const cand_slope = cur.cand_slope_.data();

  // Per-lane movement bounds of the active parameter keeping every
  // max-argument selection valid (range variant only).
  double dlo[W];
  double dhi[W];
  if constexpr (Range) {
    LLAMP_SIMD
    for (std::size_t l = 0; l < W; ++l) {
      dlo[l] = -kInfD;
      dhi[l] = kInfD;
    }
  }

  double ec[W];  // lane costs of the edge currently being evaluated
  double es[W];  // lane slopes of that edge

  for (std::size_t i = 0; i < n; ++i) {  // topo position order
    const std::uint32_t jlo = in_off_[i];
    const std::uint32_t jhi = in_off_[i + 1];
    const double vc = vertex_cost_topo_[i];
    double* const fi = finish + i * W;
    double* const si = slope + i * W;
    if (jlo == jhi) {
      LLAMP_SIMD
      for (std::size_t l = 0; l < W; ++l) {
        fi[l] = vc;
        si[l] = 0.0;
      }
      continue;
    }
    // First candidate selected unconditionally, exactly like the scalar
    // pass (whose seed short-circuited on best_edge == kNoEdge).
    cost(jlo, in_edge_[jlo], xs, ec, es);
    const double* fu = finish + static_cast<std::size_t>(in_other_[jlo]) * W;
    const double* su = slope + static_cast<std::size_t>(in_other_[jlo]) * W;
    double bv[W];
    double bs[W];
    LLAMP_SIMD
    for (std::size_t l = 0; l < W; ++l) {
      bv[l] = fu[l] + ec[l];
      bs[l] = su[l] + es[l];
    }
    if (jhi - jlo == 1) {
      // Single predecessor: winner by construction, no eps, no constrain.
      LLAMP_SIMD
      for (std::size_t l = 0; l < W; ++l) {
        fi[l] = bv[l] + vc;
        si[l] = bs[l];
      }
      continue;
    }
    std::uint32_t nc = 0;
    if constexpr (Range) {
      LLAMP_SIMD
      for (std::size_t l = 0; l < W; ++l) {
        cand_val[l] = bv[l];
        cand_slope[l] = bs[l];
      }
      nc = 1;
    }
    for (std::uint32_t j = jlo + 1; j < jhi; ++j) {
      cost(j, in_edge_[j], xs, ec, es);
      const double* fu2 = finish + static_cast<std::size_t>(in_other_[j]) * W;
      const double* su2 = slope + static_cast<std::size_t>(in_other_[j]) * W;
      double* const cvr = cand_val + static_cast<std::size_t>(nc) * W;
      double* const csr = cand_slope + static_cast<std::size_t>(nc) * W;
      LLAMP_SIMD
      for (std::size_t l = 0; l < W; ++l) {
        const double cv = fu2[l] + ec[l];
        const double cs = su2[l] + es[l];
        if constexpr (Range) {
          cvr[l] = cv;
          csr[l] = cs;
        }
        const double be = value_eps(bv[l]);
        // Bitwise | / & instead of short-circuit || / && : both arms are
        // pure comparisons, and the branchless form lets the lane loop
        // compile to vector compare + blend.
        const bool take =
            (cv > bv[l] + be) | ((cv > bv[l] - be) & (cs > bs[l]));
        bv[l] = take ? cv : bv[l];
        bs[l] = take ? cs : bs[l];
      }
      if constexpr (Range) ++nc;
    }
    if constexpr (Range) {
      // Upper-envelope bookkeeping over every candidate row, winner
      // included (its dv == ds == 0 row constrains nothing — see the
      // header comment).  Mirrors constrain() per lane, minus the
      // stable_dhi replay bound, which the batch API does not expose.
      for (std::uint32_t cidx = 0; cidx < nc; ++cidx) {
        const double* cvr2 = cand_val + static_cast<std::size_t>(cidx) * W;
        const double* csr2 = cand_slope + static_cast<std::size_t>(cidx) * W;
        LLAMP_SIMD
        for (std::size_t l = 0; l < W; ++l) {
          const double dv = std::max(bv[l] - cvr2[l], 0.0);
          const double ds = csr2[l] - bs[l];
          const double q = dv / ds;
          dhi[l] = ds > 1e-12 ? std::min(dhi[l], q) : dhi[l];
          dlo[l] = ds < -1e-12 ? std::max(dlo[l], q) : dlo[l];
        }
      }
    }
    LLAMP_SIMD
    for (std::size_t l = 0; l < W; ++l) {
      fi[l] = bv[l] + vc;
      si[l] = bs[l];
    }
  }

  // T = max over sinks in ascending vertex-id order; the first sink is
  // selected unconditionally (the scalar kNoEdge short-circuit).
  const std::size_t s0 = sink_pos_[0];
  double bsv[W];
  double bss[W];
  LLAMP_SIMD
  for (std::size_t l = 0; l < W; ++l) {
    bsv[l] = finish[s0 * W + l];
    bss[l] = slope[s0 * W + l];
  }
  for (std::size_t k = 1; k < sink_pos_.size(); ++k) {
    const double* fp = finish + static_cast<std::size_t>(sink_pos_[k]) * W;
    const double* sp = slope + static_cast<std::size_t>(sink_pos_[k]) * W;
    LLAMP_SIMD
    for (std::size_t l = 0; l < W; ++l) {
      const double be = value_eps(bsv[l]);
      const bool take =
          (fp[l] > bsv[l] + be) | ((fp[l] > bsv[l] - be) & (sp[l] > bss[l]));
      bsv[l] = take ? fp[l] : bsv[l];
      bss[l] = take ? sp[l] : bss[l];
    }
  }
  if constexpr (Range) {
    for (const std::uint32_t pos : sink_pos_) {
      const double* fp = finish + static_cast<std::size_t>(pos) * W;
      const double* sp = slope + static_cast<std::size_t>(pos) * W;
      LLAMP_SIMD
      for (std::size_t l = 0; l < W; ++l) {
        const double dv = std::max(bsv[l] - fp[l], 0.0);
        const double ds = sp[l] - bss[l];
        const double q = dv / ds;
        dhi[l] = ds > 1e-12 ? std::min(dhi[l], q) : dhi[l];
        dlo[l] = ds < -1e-12 ? std::max(dlo[l], q) : dlo[l];
      }
    }
  }
  LLAMP_SIMD
  for (std::size_t l = 0; l < W; ++l) {
    out[l].value = bsv[l];
    out[l].slope = bss[l];
    out[l].lo = Range ? xs[l] + dlo[l] : -kInfD;
    out[l].hi = Range ? xs[l] + dhi[l] : kInfD;
  }
}
// llamp-lint: hot-path end

template <bool Range>
void LoweredProblem::solve_batch_impl(int active, const double* xs,
                                      std::size_t n, BatchCursor& cur,
                                      BatchPoint* out) const {
  if (active < 0 || active >= num_params_) {
    throw LpError("parametric: active parameter out of range");
  }
  if (n == 0) return;
  if (sink_pos_.empty()) throw LpError("graph has no sink vertex");
  prepare_batch(cur);

  const auto run = [&](auto wc, std::size_t i) {
    constexpr std::size_t W = decltype(wc)::value;
    if (flat_) {
      const std::size_t slots = in_edge_.size();
      const FlatLaneCost<W> cost{
          flat_const_slot_.data() + static_cast<std::size_t>(active) * slots,
          flat_slope_slot_.data() + static_cast<std::size_t>(active) * slots};
      batch_pass<W, Range>(cost, xs + i, cur, out + i);
    } else {
      const CsrLaneCost<W> cost{term_offsets_.data(), term_param_.data(),
                                term_coeff_.data(),   edge_const_.data(),
                                base_.data(),         active};
      batch_pass<W, Range>(cost, xs + i, cur, out + i);
    }
  };

  static_assert(kBatchWidth == 16,
                "tail dispatch below enumerates pow2 widths <= kBatchWidth");
  std::size_t i = 0;
  while (i < n) {
    const std::size_t rem = n - i;
    const std::size_t w = rem >= kBatchWidth
                              ? kBatchWidth
                              : static_cast<std::size_t>(util::last_pow2(rem));
    if (w == kBatchWidth) {
      run(std::integral_constant<std::size_t, kBatchWidth>{}, i);
    } else if (w == 8) {
      run(std::integral_constant<std::size_t, 8>{}, i);
    } else if (w == 4) {
      run(std::integral_constant<std::size_t, 4>{}, i);
    } else if (w == 2) {
      run(std::integral_constant<std::size_t, 2>{}, i);
    } else {
      run(std::integral_constant<std::size_t, 1>{}, i);
    }
    i += w;
  }
}

void LoweredProblem::solve_batch(int active, const double* xs, std::size_t n,
                                 BatchCursor& cur, BatchPoint* out) const {
  solve_batch_impl<false>(active, xs, n, cur, out);
}

void LoweredProblem::solve_batch_ranges(int active, const double* xs,
                                        std::size_t n, BatchCursor& cur,
                                        BatchPoint* out) const {
  solve_batch_impl<true>(active, xs, n, cur, out);
}

void LoweredProblem::max_param_for_budget_from_batch(int k, const double* from,
                                                     const double* budget,
                                                     std::size_t n,
                                                     BatchCursor& cur,
                                                     double* out) const {
  if (k < 0 || k >= num_params_) {
    throw LpError("tolerance: parameter out of range");
  }
  if (cur.search_x_.size() < kBatchWidth) {
    cur.search_x_.resize(kBatchWidth);
    cur.search_pts_.resize(kBatchWidth);
  }
  // Lanes run the scalar bracketed-Newton iteration of
  // max_param_for_budget_from() in lockstep: every per-lane decision below
  // is a line-for-line transcription of the scalar body, and each round of
  // surviving lanes is served by ONE ranged batch pass — so a group of
  // kBatchWidth searches costs max-lane-iterations passes instead of
  // sum-over-lanes scalar solves.  Finished lanes keep their last x and are
  // re-evaluated harmlessly until the group drains.
  for (std::size_t g0 = 0; g0 < n; g0 += kBatchWidth) {
    const std::size_t w = std::min(n - g0, kBatchWidth);
    double* const xs = cur.search_x_.data();
    BatchPoint* const pts = cur.search_pts_.data();
    double blo[kBatchWidth];
    double bhi[kBatchWidth];
    double eps[kBatchWidth];
    double res[kBatchWidth];
    bool done[kBatchWidth];
    for (std::size_t l = 0; l < w; ++l) {
      xs[l] = from[g0 + l];
      blo[l] = xs[l];     // T(blo) <= budget
      bhi[l] = kInfD;     // T(bhi) > budget (once finite)
      eps[l] = std::max(1e-6, std::fabs(budget[g0 + l]) * 1e-12);
      done[l] = false;
    }
    solve_batch_ranges(k, xs, w, cur, pts);
    for (std::size_t l = 0; l < w; ++l) {
      if (pts[l].value > budget[g0 + l] + value_eps(budget[g0 + l])) {
        throw LpError(
            strformat("tolerance: T(%g) = %g already exceeds budget %g",
                      xs[l], pts[l].value, budget[g0 + l]));
      }
    }
    std::size_t remaining = w;
    for (int iter = 0; iter < 512 && remaining > 0; ++iter) {
      for (std::size_t l = 0; l < w; ++l) {
        if (done[l]) continue;
        const double slope = pts[l].slope;
        const bool below =
            pts[l].value <= budget[g0 + l] + value_eps(budget[g0 + l]);
        if (below) {
          blo[l] = std::max(blo[l], xs[l]);
          double proposal;
          if (slope > 1e-12) {
            proposal = xs[l] + (budget[g0 + l] - pts[l].value) / slope;
            if (proposal <= pts[l].hi + eps[l]) {
              res[l] = std::max(proposal, from[g0 + l]);
              done[l] = true;
              --remaining;
              continue;
            }
          } else {
            if (!std::isfinite(pts[l].hi)) {
              res[l] = kInfD;  // flat forever
              done[l] = true;
              --remaining;
              continue;
            }
            proposal = pts[l].hi + eps[l];
          }
          if (std::isfinite(bhi[l]) &&
              (proposal >= bhi[l] || proposal <= blo[l])) {
            proposal = 0.5 * (blo[l] + bhi[l]);  // bisect fallback
          }
          xs[l] = proposal;
        } else {
          bhi[l] = std::min(bhi[l], xs[l]);
          double proposal = slope > 1e-12
                                ? xs[l] - (pts[l].value - budget[g0 + l]) / slope
                                : pts[l].lo - eps[l];
          if (slope > 1e-12 && proposal >= pts[l].lo - eps[l]) {
            res[l] = std::max(proposal, from[g0 + l]);
            done[l] = true;
            --remaining;
            continue;
          }
          if (proposal <= blo[l] || proposal >= bhi[l]) {
            proposal = 0.5 * (blo[l] + bhi[l]);
          }
          xs[l] = proposal;
        }
        if (std::isfinite(bhi[l]) && bhi[l] - blo[l] <= eps[l]) {
          res[l] = blo[l];
          done[l] = true;
          --remaining;
        }
      }
      if (remaining == 0) break;
      solve_batch_ranges(k, xs, w, cur, pts);
    }
    if (remaining > 0) throw LpError("tolerance: did not converge");
    for (std::size_t l = 0; l < w; ++l) out[g0 + l] = res[l];
  }
}

}  // namespace llamp::lp
