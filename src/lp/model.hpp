#pragma once

#include <limits>
#include <string>
#include <vector>

namespace llamp::lp {

constexpr double kInf = std::numeric_limits<double>::infinity();

enum class Sense : std::uint8_t { kMinimize, kMaximize };
enum class Relation : std::uint8_t { kLe, kGe, kEq };

/// A linear-programming model in natural (non-canonical) form:
///
///   min/max  c'x
///   s.t.     a_i'x {<=,>=,=} b_i      for each constraint i
///            lb <= x <= ub
///
/// This is the representation Algorithm 1 emits; SimplexSolver consumes it.
class Model {
 public:
  /// Adds a variable, returns its index.
  int add_var(std::string name, double lb = 0.0, double ub = kInf,
              double obj = 0.0);

  /// Adds a constraint Σ coeff_k · x_{var_k}  rel  rhs; returns its index.
  /// Terms with duplicate variable indices are summed.
  int add_constraint(std::vector<std::pair<int, double>> terms, Relation rel,
                     double rhs, std::string name = {});

  void set_sense(Sense s) { sense_ = s; }
  Sense sense() const { return sense_; }

  void set_objective(int var, double coeff);
  void set_var_lower(int var, double lb);
  void set_var_upper(int var, double ub);

  int num_vars() const { return static_cast<int>(vars_.size()); }
  int num_constraints() const { return static_cast<int>(rows_.size()); }

  struct Var {
    std::string name;
    double lb, ub, obj;
  };
  struct Row {
    std::string name;
    std::vector<std::pair<int, double>> terms;  // (var, coeff), deduplicated
    Relation rel;
    double rhs;
  };

  const Var& var(int j) const { return vars_[static_cast<std::size_t>(j)]; }
  const Row& row(int i) const { return rows_[static_cast<std::size_t>(i)]; }

  /// LP-format-like dump for debugging and documentation.
  std::string to_string() const;

 private:
  Sense sense_ = Sense::kMinimize;
  std::vector<Var> vars_;
  std::vector<Row> rows_;
};

}  // namespace llamp::lp
