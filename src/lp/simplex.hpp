#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "lp/model.hpp"

namespace llamp::lp {

struct SimplexInternal;  // post-solve state for ranging (see simplex.cpp)

enum class SolveStatus : std::uint8_t {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
};

std::string to_string(SolveStatus s);

/// Solution of a linear program, including the post-optimal sensitivity
/// information LLAMP relies on: reduced costs (λ_L is the reduced cost of
/// the latency variable, §II-D1) and bound ranging (the `SALBLow`-style
/// feasibility ranges driving Algorithm 2).
struct Solution {
  SolveStatus status = SolveStatus::kInfeasible;
  double objective = 0.0;
  std::vector<double> x;             ///< primal values per model variable
  std::vector<double> reduced_cost;  ///< per model variable, in the model's
                                     ///< original min/max orientation
  std::vector<double> dual;          ///< per constraint (y), min orientation
  std::vector<bool> basic;           ///< per model variable
  std::vector<double> row_activity;  ///< a_i'x per constraint
  std::size_t iterations = 0;

  /// Opaque factorization snapshot consumed by SimplexSolver::bound_range.
  std::shared_ptr<const SimplexInternal> internal;

  /// A constraint is tight if its activity equals its rhs (within tol);
  /// tight constraints correspond to critical-path edges (§II-D1).
  bool tight(const Model& m, int row, double tol = 1e-6) const;
};

/// Bounded-variable two-phase revised simplex with a dense explicit basis
/// inverse.  Intended for models up to a few thousand constraints — the
/// running example, topology studies, unit tests, and cross-validation of
/// the parametric solver.  Large execution-graph LPs (millions of rows) are
/// solved by the exact ParametricSolver instead; DESIGN.md §1 documents this
/// division of labor relative to the paper's use of Gurobi.
class SimplexSolver {
 public:
  struct Config {
    double tol = 1e-7;            ///< pivot / optimality tolerance
    std::size_t max_iterations = 200'000;
    std::size_t degenerate_before_bland = 40;  ///< anti-cycling trigger
  };

  SimplexSolver() = default;
  explicit SimplexSolver(Config cfg) : cfg_(cfg) {}

  Solution solve(const Model& m) const;

  /// Post-optimal ranging of a variable's value: the interval over which the
  /// variable could move (all other nonbasic variables fixed) while every
  /// basic variable stays within its bounds — i.e. the current basis stays
  /// primal feasible.  For a nonbasic variable sitting at its lower bound,
  /// the interval's ends are exactly Gurobi's SALBLow/SALBUp attributes used
  /// by Algorithm 2.  Must be called with the Solution returned by solve()
  /// for the same model.
  struct Range {
    double lo = -kInf;
    double hi = kInf;
  };
  Range bound_range(const Model& m, const Solution& s, int var) const;

 private:
  Config cfg_{};
};

}  // namespace llamp::lp
