#pragma once

#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "loggops/params.hpp"

namespace llamp::lp {

/// One linear term coeff·x_param of an edge-cost expression.
struct ParamTerm {
  int param = 0;
  double coeff = 0.0;
};

/// An affine function constant + Σ coeff_k · x_k over the decision
/// parameters of a ParamSpace.
///
/// Lowering contract (see DESIGN.md §4b): ParametricSolver flattens these
/// expressions at construction and replicates the term list's *order* in
/// its floating-point summations, so `terms` order is part of a space's
/// observable behavior — emit terms deterministically.  Coefficients are
/// nonnegative by convention (edge costs are monotone in every parameter;
/// tolerance search relies on it), and spaces whose edges carry at most
/// one term each (LatencyParamSpace, the wire-latency space) get the
/// fastest per-parameter flat lowering.
struct Affine {
  double constant = 0.0;
  std::vector<ParamTerm> terms;

  double eval(const std::vector<double>& values) const {
    double v = constant;
    for (const ParamTerm& t : terms) {
      v += t.coeff * values[static_cast<std::size_t>(t.param)];
    }
    return v;
  }
};

/// A ParamSpace declares which network quantities are *decision variables*
/// of the analysis and expresses every edge's traversal cost as an affine
/// function of them.  The paper's analyses map to spaces as follows:
///
/// * latency sensitivity/tolerance (§II)        -> LatencyParamSpace (l)
/// * bandwidth sensitivity (§II-B1)             -> LatencyBandwidthParamSpace
/// * per-pair HLogGP sensitivities (Appendix I) -> PairwiseLatencyParamSpace
/// * topology / wire classes (§IV-2, App. H)    -> LinkClassParamSpace
class ParamSpace {
 public:
  virtual ~ParamSpace() = default;

  virtual int num_params() const = 0;
  virtual std::string param_name(int k) const = 0;
  /// Evaluation point / LP lower bound of parameter k (e.g. the measured L).
  virtual double base_value(int k) const = 0;
  /// Edge cost as an affine function of the parameters; the constant part
  /// carries everything non-parametric (o terms, fixed-G payload terms...).
  virtual Affine edge_cost(const graph::Graph& g,
                           const graph::Edge& e) const = 0;

  /// LogGPS vector used for vertex costs (o) and non-parametric terms.
  virtual const loggops::Params& params() const = 0;
};

/// Single decision variable: the network latency L.  G stays constant.
class LatencyParamSpace final : public ParamSpace {
 public:
  explicit LatencyParamSpace(loggops::Params p) : p_(p) { p_.validate(); }

  int num_params() const override { return 1; }
  std::string param_name(int) const override { return "l"; }
  double base_value(int) const override { return p_.L; }
  Affine edge_cost(const graph::Graph& g, const graph::Edge& e) const override;
  const loggops::Params& params() const override { return p_; }

 private:
  loggops::Params p_;
};

/// Two decision variables: latency L (param 0) and gap-per-byte G (param 1).
class LatencyBandwidthParamSpace final : public ParamSpace {
 public:
  explicit LatencyBandwidthParamSpace(loggops::Params p) : p_(p) {
    p_.validate();
  }

  int num_params() const override { return 2; }
  std::string param_name(int k) const override { return k == 0 ? "l" : "G"; }
  double base_value(int k) const override { return k == 0 ? p_.L : p_.G; }
  Affine edge_cost(const graph::Graph& g, const graph::Edge& e) const override;
  const loggops::Params& params() const override { return p_; }

 private:
  loggops::Params p_;
};

/// HLogGP: one latency decision variable per unordered rank pair {i, j}
/// (Appendix I).  With `include_gap_params` the per-pair gaps G_{i,j} become
/// decision variables too, so one solve yields both sensitivity matrices
/// D_L and D_G that Algorithm 3 (rank placement) consumes.
class PairwiseLatencyParamSpace final : public ParamSpace {
 public:
  /// Uniform base latencies/bandwidths from `p`.
  PairwiseLatencyParamSpace(loggops::Params p, int nranks,
                            bool include_gap_params = false);
  /// Explicit symmetric matrices (row-major nranks x nranks); the diagonal
  /// is ignored.
  PairwiseLatencyParamSpace(loggops::Params p, int nranks,
                            std::vector<double> latency_matrix,
                            std::vector<double> gap_matrix,
                            bool include_gap_params = false);

  int nranks() const { return nranks_; }
  int num_pairs() const { return nranks_ * (nranks_ - 1) / 2; }
  /// Latency-parameter index of pair {i, j}, i != j.
  int pair_index(int i, int j) const;
  /// Gap-parameter index of pair {i, j}; requires include_gap_params.
  int gap_param_index(int i, int j) const;

  int num_params() const override;
  std::string param_name(int k) const override;
  double base_value(int k) const override;
  Affine edge_cost(const graph::Graph& g, const graph::Edge& e) const override;
  const loggops::Params& params() const override { return p_; }

 private:
  loggops::Params p_;
  int nranks_;
  bool gap_params_;
  std::vector<double> base_;  // per pair index (latency)
  std::vector<double> gap_;   // per pair index
};

/// Perturbed-evaluation hook for the stochastic (Monte Carlo) analyses:
/// wraps another space and scales every edge's whole affine cost — constant
/// and parametric terms alike — by a per-edge factor.  Because a
/// multiplicative factor keeps an affine expression affine, the full
/// ParametricSolver feature set (solve, sweep, piecewise, tolerance search)
/// works on a perturbed space unchanged; one solver constructed over a
/// PerturbedParamSpace *is* one perturbed LP evaluation.
///
/// Factors are indexed by edge id (the position of the edge in g.edges())
/// and must be finite and >= 0 — edge costs stay monotone in every
/// parameter, which the tolerance search relies on.  A factor of exactly
/// 1.0 leaves the edge's lowered terms bitwise identical to the base
/// space's (x * 1.0 == x), so an all-ones perturbation reproduces the
/// deterministic analysis bit for bit; the Stoch tests pin this.
class PerturbedParamSpace final : public ParamSpace {
 public:
  /// `edge_factor.size()` must equal the edge count of every graph this
  /// space is used with; the mismatch is caught at edge_cost time.
  PerturbedParamSpace(std::shared_ptr<const ParamSpace> base,
                      std::vector<double> edge_factor);

  int num_params() const override { return base_->num_params(); }
  std::string param_name(int k) const override {
    return base_->param_name(k);
  }
  double base_value(int k) const override { return base_->base_value(k); }
  Affine edge_cost(const graph::Graph& g, const graph::Edge& e) const override;
  const loggops::Params& params() const override { return base_->params(); }

 private:
  std::shared_ptr<const ParamSpace> base_;
  std::vector<double> edge_factor_;
};

/// Topology analysis: the end-to-end latency between two ranks decomposes
/// into counts of "link classes" (e.g. one class `l_wire` for Fat Tree with
/// (h+1) wires per route, or {l_tc, l_intra, l_inter} for Dragonfly) plus a
/// constant per-route term (switch traversals).  The classes are the
/// decision variables.
class LinkClassParamSpace final : public ParamSpace {
 public:
  struct Route {
    /// count[c] = how many class-c links the route crosses.
    std::vector<double> counts;
    /// Fixed additive latency (switch delays etc.).
    double constant = 0.0;
  };

  LinkClassParamSpace(loggops::Params p, std::vector<std::string> class_names,
                      std::vector<double> class_base_values,
                      std::vector<Route> routes_by_pair, int nranks);

  int num_params() const override {
    return static_cast<int>(names_.size());
  }
  std::string param_name(int k) const override {
    return names_[static_cast<std::size_t>(k)];
  }
  double base_value(int k) const override {
    return base_[static_cast<std::size_t>(k)];
  }
  Affine edge_cost(const graph::Graph& g, const graph::Edge& e) const override;
  const loggops::Params& params() const override { return p_; }

 private:
  const Route& route(int src, int dst) const;

  loggops::Params p_;
  std::vector<std::string> names_;
  std::vector<double> base_;
  std::vector<Route> routes_;  // row-major nranks x nranks
  int nranks_;
};

}  // namespace llamp::lp
