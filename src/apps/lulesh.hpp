#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace llamp::apps {

/// LULESH 2.0 proxy (Livermore unstructured Lagrangian hydrodynamics,
/// Karlin et al.): 3-D domain decomposition over a cubic process grid.
/// Each time step performs the code's characteristic pattern:
///
///   1. nonblocking face halo exchange (fields for the force calculation),
///   2. a large hydrodynamics compute phase,
///   3. a second, thinner halo exchange (nodal mass / gradient sync),
///   4. position/velocity update compute,
///   5. an 8-byte Allreduce for the global time-step constraint (dtcourant).
///
/// Weak scaling: `side_elems` elements per rank per dimension regardless of
/// rank count, matching the paper's `-s` parameter.
struct LuleshConfig {
  int nranks = 27;           ///< must be a perfect cube
  int iterations = 40;       ///< time steps (`-i`)
  int side_elems = 16;       ///< elements per rank per dimension (`-s`)
  double compute_ns_per_element = 500.0;  ///< hydro work per element per step
  double jitter = 0.01;      ///< relative load imbalance
  std::uint64_t seed = 1;
};

trace::Trace make_lulesh_trace(const LuleshConfig& cfg);

}  // namespace llamp::apps
