#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace llamp::apps {

/// HPCG proxy (Heroux & Dongarra): preconditioned conjugate gradient on a
/// 3-D 27-point stencil with a multigrid V-cycle preconditioner.  Each CG
/// iteration performs:
///
///   1. SpMV halo exchange + SpMV compute,
///   2. the MG preconditioner: `mg_levels` coarsening levels, each with its
///      own (smaller) halo exchange and smoother compute,
///   3. two dot products, each an 8-byte Allreduce — the latency-critical
///      global synchronizations of CG.
///
/// Weak scaling: `nx` grid points per rank per dimension (the paper runs
/// `xhpcg 48 48 48`).  The posting of halos before the smoother compute
/// gives HPCG the communication/computation overlap the paper credits for
/// its improving latency tolerance at scale.
struct HpcgConfig {
  int nranks = 32;
  int iterations = 40;      ///< CG iterations
  int nx = 32;              ///< local grid points per dimension
  int mg_levels = 3;
  double compute_ns_per_point = 60.0;
  double jitter = 0.01;
  std::uint64_t seed = 2;
};

trace::Trace make_hpcg_trace(const HpcgConfig& cfg);

}  // namespace llamp::apps
