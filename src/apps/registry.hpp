#pragma once

#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace llamp::apps {

/// Uniform factory over every proxy application, used by the benchmark
/// harnesses and integration tests.  `scale` multiplies the default
/// iteration/step count (1.0 = the proxy's default size).
///
/// Names: "lulesh", "hpcg", "milc", "icon", "lammps", "openmx",
/// "cloverleaf", "npb-bt", "npb-cg", "npb-ep", "npb-ft", "npb-lu",
/// "npb-mg", "npb-sp", "namd".
trace::Trace make_app_trace(const std::string& name, int nranks,
                            double scale = 1.0, std::uint64_t seed = 1);

std::vector<std::string> app_names();

/// Nearest rank count supported by an app at or below `want` (e.g. LULESH
/// needs a perfect cube).
int supported_ranks(const std::string& name, int want);

}  // namespace llamp::apps
