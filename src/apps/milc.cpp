#include "apps/milc.hpp"

#include "apps/common.hpp"
#include "util/error.hpp"

namespace llamp::apps {

trace::Trace make_milc_trace(const MilcConfig& cfg) {
  Grid<4> grid = make_grid4(cfg.nranks);
  trace::TraceBuilder tb(cfg.nranks);

  // Strong scaling: local volume = global / P.
  const double global_sites = static_cast<double>(cfg.lattice) *
                              cfg.lattice * cfg.lattice * cfg.lattice;
  const double local_sites = global_sites / cfg.nranks;
  const TimeNs dslash_ns = local_sites * cfg.compute_ns_per_site;

  // Hypersurface message per direction: local volume / local extent, with
  // 3x3 complex SU(3) spinors (24 doubles -> 192 bytes per site) — thin,
  // numerous messages.
  std::array<std::uint64_t, 4> surface{};
  for (std::size_t d = 0; d < 4; ++d) {
    const double local_extent = static_cast<double>(cfg.lattice) /
                                grid.dims[d];
    const double sites =
        local_extent > 0 ? local_sites / local_extent : local_sites;
    surface[d] =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(sites * 192.0), 64);
  }

  for (int it = 0; it < cfg.cg_iterations; ++it) {
    for (int r = 0; r < cfg.nranks; ++r) {
      halo_exchange(tb, grid, r, surface, /*tag=*/1);
      tb.compute(r, jittered_compute(dslash_ns, cfg.jitter, cfg.seed, r, it));
    }
    // Residual norm: the reduction every CG step that kills tolerance.
    tb.allreduce_all(8);
  }
  return tb.finish();
}

}  // namespace llamp::apps
