#include "apps/cloverleaf.hpp"

#include <cmath>

#include "apps/common.hpp"

namespace llamp::apps {

trace::Trace make_cloverleaf_trace(const CloverleafConfig& cfg) {
  Grid<2> grid = make_grid2(cfg.nranks);
  trace::TraceBuilder tb(cfg.nranks);

  const double cells = static_cast<double>(cfg.cells_per_rank);
  const TimeNs kernel_ns = cells * cfg.compute_ns_per_cell;
  const auto edge_bytes = static_cast<std::uint64_t>(
      std::max(16.0, std::sqrt(cells) * 2 * 8));  // 2 halo layers of doubles

  for (int step = 0; step < cfg.steps; ++step) {
    for (int fe = 0; fe < cfg.field_exchanges; ++fe) {
      for (int r = 0; r < cfg.nranks; ++r) {
        halo_exchange(tb, grid, r, {edge_bytes, edge_bytes}, /*tag=*/1 + fe);
        tb.compute(r,
                   jittered_compute(kernel_ns / cfg.field_exchanges,
                                    cfg.jitter, cfg.seed, r, step * 8 + fe));
      }
    }
    tb.allreduce_all(8);  // dt control
  }
  return tb.finish();
}

}  // namespace llamp::apps
