#include "apps/namd.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "apps/common.hpp"

namespace llamp::apps {

trace::Trace make_namd_trace(const NamdConfig& cfg) {
  trace::TraceBuilder tb(cfg.nranks);
  const int K = cfg.objects;
  // How many patch computes the scheduler slides between posting a receive
  // and needing its data, as observed at the recording latency.
  const int defer = std::min<int>(
      K - 1,
      static_cast<int>(std::ceil(cfg.traced_delta_L /
                                 std::max(cfg.patch_compute, 1.0))));

  for (int step = 0; step < cfg.steps; ++step) {
    // Requests per rank, posted up front (message-driven runtime).
    std::vector<std::vector<std::int64_t>> recv_req(
        static_cast<std::size_t>(cfg.nranks));
    std::vector<std::vector<std::int64_t>> send_req(
        static_cast<std::size_t>(cfg.nranks));
    for (int r = 0; r < cfg.nranks; ++r) {
      for (int k = 0; k < K; ++k) {
        const int peer = (r + 1 + k) % cfg.nranks;
        if (peer == r) continue;
        recv_req[static_cast<std::size_t>(r)].push_back(
            tb.irecv(r, peer, cfg.message_bytes, k));
      }
      for (int k = 0; k < K; ++k) {
        const int peer = ((r - 1 - k) % cfg.nranks + cfg.nranks) % cfg.nranks;
        if (peer == r) continue;
        send_req[static_cast<std::size_t>(r)].push_back(
            tb.isend(r, peer, cfg.message_bytes, k));
      }
    }
    // Message-driven patch processing: the wait for message k lands after
    // patch compute min(K-1, k + defer).
    for (int r = 0; r < cfg.nranks; ++r) {
      const auto& recvs = recv_req[static_cast<std::size_t>(r)];
      std::size_t next_wait = 0;
      for (int k = 0; k < K; ++k) {
        tb.compute(r, jittered_compute(cfg.patch_compute, cfg.jitter, cfg.seed,
                                       r, step * 64 + k));
        while (next_wait < recvs.size() &&
               static_cast<int>(next_wait) + defer <= k) {
          tb.wait(r, recvs[next_wait]);
          ++next_wait;
        }
      }
      while (next_wait < recvs.size()) {
        tb.wait(r, recvs[next_wait]);
        ++next_wait;
      }
      tb.waitall(r, send_req[static_cast<std::size_t>(r)]);
      // Integration after all contributions arrive.
      tb.compute(r, jittered_compute(cfg.patch_compute * 0.3, cfg.jitter,
                                     cfg.seed, r, step * 64 + 63));
    }
  }
  return tb.finish();
}

}  // namespace llamp::apps
