#pragma once

#include <cstdint>
#include <string>

#include "trace/trace.hpp"

namespace llamp::apps {

/// NAS Parallel Benchmarks proxies (Bailey et al.), reproducing the
/// communication skeletons the solver-runtime comparison of Table I /
/// Fig. 7 exercises:
///
///   BT/SP — ADI on a square process grid: per iteration, three pipelined
///           line-solve sweeps (dependent send->compute->send chains) plus
///           face halos.  SP has thinner compute per message.
///   CG    — sparse CG on a 2-D grid: transpose exchanges + two dot-product
///           Allreduces per iteration.
///   EP    — embarrassingly parallel: one long compute and a single final
///           reduction (the tiny-event-count row of Table I).
///   FT    — 3-D FFT: one large Alltoall plus compute per iteration.
///   LU    — SSOR wavefront: 2-D pipelined lower/upper sweeps of many small
///           dependent messages (the largest graphs in Table I).
///   MG    — multigrid V-cycles: halos with geometrically shrinking sizes
///           and a coarse-level Allreduce.
enum class NpbKernel : std::uint8_t { kBT, kCG, kEP, kFT, kLU, kMG, kSP };

NpbKernel npb_kernel_from_name(const std::string& name);
std::string to_string(NpbKernel k);

struct NpbConfig {
  NpbKernel kernel = NpbKernel::kCG;
  int nranks = 16;
  int iterations = 25;
  /// Problem-size knob: per-rank working-set scale (class A/B/C analogue).
  double size = 1.0;
  double jitter = 0.01;
  std::uint64_t seed = 8;
};

trace::Trace make_npb_trace(const NpbConfig& cfg);

}  // namespace llamp::apps
