#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "trace/builder.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace llamp::apps {

/// Cartesian process-grid helpers shared by the proxy applications.  The
/// proxies drive trace::TraceBuilder through these, i.e. they play the role
/// of the real applications + liballprof in the paper's pipeline.

/// Near-uniform d-dimensional factorization of nranks (largest factors
/// first), like MPI_Dims_create.
std::vector<int> dims_create(int nranks, int ndims);

/// Exact integer cube root; throws if nranks is not a perfect cube.
int exact_cube_side(int nranks);

template <std::size_t N>
struct Grid {
  std::array<int, N> dims{};

  int size() const {
    int s = 1;
    for (const int d : dims) s *= d;
    return s;
  }

  std::array<int, N> coords(int rank) const {
    std::array<int, N> c{};
    for (std::size_t d = N; d-- > 0;) {
      c[d] = rank % dims[d];
      rank /= dims[d];
    }
    return c;
  }

  int rank(const std::array<int, N>& c) const {
    int r = 0;
    for (std::size_t d = 0; d < N; ++d) {
      r = r * dims[d] + c[d];
    }
    return r;
  }

  /// Neighbor along dimension `dim` in direction `dir` (+1/-1), periodic.
  int neighbor(int from, std::size_t dim, int dir) const {
    auto c = coords(from);
    const int extent = dims[dim];
    c[dim] = (c[dim] + dir + extent) % extent;
    return rank(c);
  }

  /// True if the step stays inside the (non-periodic) grid.
  bool has_neighbor(int from, std::size_t dim, int dir) const {
    const auto c = coords(from);
    const int v = c[dim] + dir;
    return v >= 0 && v < dims[dim];
  }
};

Grid<2> make_grid2(int nranks);
Grid<3> make_grid3(int nranks);
Grid<4> make_grid4(int nranks);

/// Nonblocking halo exchange along every dimension of a grid: posts all
/// irecvs, all isends, then waits (receives first).  `bytes_per_dim[d]` is
/// the per-direction message size in dimension d.
template <std::size_t N>
void halo_exchange(trace::TraceBuilder& tb, const Grid<N>& grid, int rank,
                   const std::array<std::uint64_t, N>& bytes_per_dim,
                   int tag = 0) {
  std::vector<std::int64_t> recvs, sends;
  for (std::size_t d = 0; d < N; ++d) {
    const std::uint64_t bytes = bytes_per_dim[d];
    if (bytes == 0 || grid.dims[d] < 2) continue;
    for (const int dir : {-1, +1}) {
      recvs.push_back(tb.irecv(rank, grid.neighbor(rank, d, dir), bytes, tag));
    }
  }
  for (std::size_t d = 0; d < N; ++d) {
    const std::uint64_t bytes = bytes_per_dim[d];
    if (bytes == 0 || grid.dims[d] < 2) continue;
    for (const int dir : {-1, +1}) {
      sends.push_back(tb.isend(rank, grid.neighbor(rank, d, dir), bytes, tag));
    }
  }
  tb.waitall(rank, recvs);
  tb.waitall(rank, sends);
}

/// Per-rank compute grain with deterministic pseudo-random imbalance:
/// duration = base · (1 + jitter·u) with u in [-1, 1) derived from
/// (seed, rank, step).
TimeNs jittered_compute(TimeNs base, double jitter, std::uint64_t seed,
                        int rank, long step);

}  // namespace llamp::apps
