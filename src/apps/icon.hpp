#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace llamp::apps {

/// ICON proxy (icosahedral nonhydrostatic weather/climate model, Zängl et
/// al.): the nonhydrostatic dynamical core advances `steps` time steps; each
/// step runs several dycore substeps (halo exchange on the 2-D-decomposed
/// icosahedral grid + heavy solver compute) and the physics parameterization
/// (long compute, no communication), closing with an 8-byte Allreduce for
/// global diagnostics/CFL.  Strong scaling over a fixed global grid (the
/// paper's R02B04, 160 km): per-rank compute is large at small scale, giving
/// ICON the highest latency tolerance of the evaluated applications, and
/// shrinks as ranks grow.
struct IconConfig {
  int nranks = 32;
  int steps = 30;            ///< model time steps
  int dyn_substeps = 5;      ///< dynamics substeps per step
  long global_cells = 20480; ///< R02B04-like cell count
  double compute_ns_per_cell_substep = 1'600.0;
  double physics_factor = 6.0;  ///< physics compute vs one dyn substep
  double jitter = 0.015;
  std::uint64_t seed = 4;
};

trace::Trace make_icon_trace(const IconConfig& cfg);

}  // namespace llamp::apps
