#include "apps/lammps.hpp"

#include <cmath>

#include "apps/common.hpp"

namespace llamp::apps {

trace::Trace make_lammps_trace(const LammpsConfig& cfg) {
  Grid<3> grid = make_grid3(cfg.nranks);
  trace::TraceBuilder tb(cfg.nranks);

  const double atoms = static_cast<double>(cfg.atoms_per_rank);
  const TimeNs force_ns = atoms * cfg.compute_ns_per_atom;
  // Ghost shell: atoms near the surface, ~ atoms^(2/3) per face, 3 doubles
  // of position each.
  const auto ghost_bytes = static_cast<std::uint64_t>(
      std::max(64.0, std::pow(atoms, 2.0 / 3.0) * 24.0));

  for (int step = 0; step < cfg.steps; ++step) {
    for (int r = 0; r < cfg.nranks; ++r) {
      // Position ghost exchange.
      halo_exchange(tb, grid, r, {ghost_bytes, ghost_bytes, ghost_bytes},
                    /*tag=*/1);
      // EAM pass 1: embedding density.
      tb.compute(r, jittered_compute(force_ns * 0.45, cfg.jitter, cfg.seed, r,
                                     step * 4));
      // Density ghost exchange (one double per ghost atom).
      const std::uint64_t rho_bytes = ghost_bytes / 3;
      halo_exchange(tb, grid, r, {rho_bytes, rho_bytes, rho_bytes},
                    /*tag=*/2);
      // EAM pass 2 + integration.
      tb.compute(r, jittered_compute(force_ns * 0.55, cfg.jitter, cfg.seed, r,
                                     step * 4 + 1));
    }
    if ((step + 1) % cfg.reneighbor_every == 0) {
      for (int r = 0; r < cfg.nranks; ++r) {
        const std::uint64_t border = ghost_bytes * 2;
        halo_exchange(tb, grid, r, {border, border, border}, /*tag=*/3);
        tb.compute(r, jittered_compute(force_ns * 0.1, cfg.jitter, cfg.seed, r,
                                       step * 4 + 2));
      }
      tb.allreduce_all(8);  // global migration / thermo check
    }
  }
  return tb.finish();
}

}  // namespace llamp::apps
