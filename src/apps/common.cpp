#include "apps/common.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::apps {

std::vector<int> dims_create(int nranks, int ndims) {
  if (nranks < 1 || ndims < 1) throw Error("dims_create: bad arguments");
  std::vector<int> dims(static_cast<std::size_t>(ndims), 1);
  // Repeatedly peel the smallest prime factor onto the smallest dimension.
  int n = nranks;
  std::vector<int> factors;
  for (int f = 2; f * f <= n; ++f) {
    while (n % f == 0) {
      factors.push_back(f);
      n /= f;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());
  for (const int f : factors) {
    *std::min_element(dims.begin(), dims.end()) *= f;
  }
  std::sort(dims.rbegin(), dims.rend());
  return dims;
}

int exact_cube_side(int nranks) {
  for (int s = 1; s * s * s <= nranks; ++s) {
    if (s * s * s == nranks) return s;
  }
  throw Error(strformat("%d is not a perfect cube", nranks));
}

Grid<2> make_grid2(int nranks) {
  const auto d = dims_create(nranks, 2);
  return Grid<2>{{d[0], d[1]}};
}

Grid<3> make_grid3(int nranks) {
  const auto d = dims_create(nranks, 3);
  return Grid<3>{{d[0], d[1], d[2]}};
}

Grid<4> make_grid4(int nranks) {
  const auto d = dims_create(nranks, 4);
  return Grid<4>{{d[0], d[1], d[2], d[3]}};
}

TimeNs jittered_compute(TimeNs base, double jitter, std::uint64_t seed,
                        int rank, long step) {
  if (jitter == 0.0) return base;
  Rng rng(seed ^ (static_cast<std::uint64_t>(rank) << 32) ^
          static_cast<std::uint64_t>(step));
  const double u = rng.uniform(-1.0, 1.0);
  return std::max(0.0, base * (1.0 + jitter * u));
}

}  // namespace llamp::apps
