#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace llamp::apps {

/// LAMMPS proxy (EAM metallic-solid benchmark, Thompson et al.): molecular
/// dynamics with 3-D spatial decomposition.  Each time step ghost-exchanges
/// atom positions with the six face neighbors, computes EAM forces (two
/// passes with an intermediate density exchange, as in the real pair style),
/// and integrates.  Every `reneighbor_every` steps, neighbor lists are
/// rebuilt: border atoms are re-exchanged and a small Allreduce checks
/// migration.  Weak scaling with `atoms_per_rank` (the paper uses 256000).
struct LammpsConfig {
  int nranks = 32;
  int steps = 30;
  long atoms_per_rank = 4000;
  int reneighbor_every = 10;
  double compute_ns_per_atom = 55.0;  ///< EAM force work per atom per step
  double jitter = 0.01;
  std::uint64_t seed = 5;
};

trace::Trace make_lammps_trace(const LammpsConfig& cfg);

}  // namespace llamp::apps
