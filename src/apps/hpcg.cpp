#include "apps/hpcg.hpp"

#include "apps/common.hpp"

namespace llamp::apps {

trace::Trace make_hpcg_trace(const HpcgConfig& cfg) {
  Grid<3> grid = make_grid3(cfg.nranks);
  trace::TraceBuilder tb(cfg.nranks);

  const auto nx = static_cast<std::uint64_t>(cfg.nx);
  const double points = static_cast<double>(nx * nx * nx);
  const TimeNs spmv_ns = points * cfg.compute_ns_per_point;

  for (int it = 0; it < cfg.iterations; ++it) {
    // SpMV with its halo.
    for (int r = 0; r < cfg.nranks; ++r) {
      const std::uint64_t face = nx * nx * 8;
      halo_exchange(tb, grid, r, {face, face, face}, /*tag=*/1);
      tb.compute(r, jittered_compute(spmv_ns, cfg.jitter, cfg.seed, r, it));
    }
    // MG V-cycle: geometrically shrinking halos and smoother work.
    for (int level = 1; level <= cfg.mg_levels; ++level) {
      const auto scale = static_cast<std::uint64_t>(1) << level;  // 2^level
      const std::uint64_t face =
          std::max<std::uint64_t>((nx / scale) * (nx / scale) * 8, 8);
      const TimeNs smooth_ns =
          spmv_ns / static_cast<double>(scale * scale * scale);
      for (int r = 0; r < cfg.nranks; ++r) {
        halo_exchange(tb, grid, r, {face, face, face}, /*tag=*/10 + level);
        tb.compute(r, jittered_compute(smooth_ns, cfg.jitter, cfg.seed, r,
                                       it * 16 + level));
      }
    }
    // Dot products: the two global reductions of CG.
    for (int dot = 0; dot < 2; ++dot) {
      for (int r = 0; r < cfg.nranks; ++r) {
        tb.compute(r, jittered_compute(spmv_ns * 0.05, cfg.jitter, cfg.seed, r,
                                       it * 32 + dot));
      }
      tb.allreduce_all(8);
    }
  }
  return tb.finish();
}

}  // namespace llamp::apps
