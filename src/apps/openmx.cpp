#include "apps/openmx.hpp"

#include "apps/common.hpp"

namespace llamp::apps {

trace::Trace make_openmx_trace(const OpenmxConfig& cfg) {
  trace::TraceBuilder tb(cfg.nranks);

  const double basis = static_cast<double>(cfg.basis_per_rank);
  const TimeNs hamiltonian_ns = basis * cfg.compute_ns_per_basis;
  const auto block_bytes =
      static_cast<std::uint64_t>(basis * 16.0);  // complex block row

  for (int it = 0; it < cfg.scf_iterations; ++it) {
    // Hamiltonian construction: long local compute.
    for (int r = 0; r < cfg.nranks; ++r) {
      tb.compute(r, jittered_compute(hamiltonian_ns, cfg.jitter, cfg.seed, r,
                                     it * 64));
    }
    // Block diagonalization sweeps: bcast the panel, reduce the updates.
    for (int blk = 0; blk < cfg.eig_blocks; ++blk) {
      const int root = blk % cfg.nranks;
      tb.bcast_all(block_bytes, root);
      for (int r = 0; r < cfg.nranks; ++r) {
        tb.compute(r, jittered_compute(hamiltonian_ns * 0.08, cfg.jitter,
                                       cfg.seed, r, it * 64 + blk));
      }
      tb.reduce_all(block_bytes, root);
    }
    // Eigenvector redistribution + density mixing.
    tb.allgather_all(block_bytes / 4);
    for (int r = 0; r < cfg.nranks; ++r) {
      tb.compute(r, jittered_compute(hamiltonian_ns * 0.2, cfg.jitter,
                                     cfg.seed, r, it * 64 + 33));
    }
    tb.allreduce_all(64);  // charge-density residual
  }
  return tb.finish();
}

}  // namespace llamp::apps
