#include "apps/lulesh.hpp"

#include "apps/common.hpp"
#include "util/error.hpp"

namespace llamp::apps {

trace::Trace make_lulesh_trace(const LuleshConfig& cfg) {
  const int side = exact_cube_side(cfg.nranks);
  Grid<3> grid{{side, side, side}};
  trace::TraceBuilder tb(cfg.nranks);

  const auto s = static_cast<std::uint64_t>(cfg.side_elems);
  // Face messages carry 3 fields of 8 bytes per boundary element.
  const std::uint64_t face_bytes = s * s * 3 * 8;
  const std::uint64_t thin_face_bytes = s * s * 8;
  const double elements = static_cast<double>(s * s * s);
  const TimeNs hydro_ns = elements * cfg.compute_ns_per_element;
  const TimeNs update_ns = hydro_ns * 0.35;

  for (int it = 0; it < cfg.iterations; ++it) {
    for (int r = 0; r < cfg.nranks; ++r) {
      halo_exchange(tb, grid, r, {face_bytes, face_bytes, face_bytes},
                    /*tag=*/1);
      tb.compute(r, jittered_compute(hydro_ns, cfg.jitter, cfg.seed, r, it));
      halo_exchange(tb, grid, r,
                    {thin_face_bytes, thin_face_bytes, thin_face_bytes},
                    /*tag=*/2);
      tb.compute(r,
                 jittered_compute(update_ns, cfg.jitter, cfg.seed, r, it + 7));
    }
    tb.allreduce_all(8);  // global dt constraint
  }
  return tb.finish();
}

}  // namespace llamp::apps
