#pragma once

#include <cstdint>

#include "trace/trace.hpp"
#include "util/time.hpp"

namespace llamp::apps {

/// NAMD/charm++ proxy (Fig. 12): molecular dynamics on an over-decomposed,
/// message-driven runtime.  Each rank owns `objects` patches per step; their
/// remote force contributions are posted as nonblocking receives at the
/// start of the step, and the message-driven scheduler interleaves patch
/// computes with message completion.
///
/// The key charm++ behaviour the paper observes is that *the recorded trace
/// depends on the latency at which it was recorded*: at higher ΔL the
/// runtime reorders work so that more compute separates posting from
/// waiting.  `traced_delta_L` models this: the wait for each message is
/// deferred by ceil(traced_delta_L / patch_compute) patch computations, so
/// traces recorded at higher latency show more overlap (flatter
/// measured-vs-predicted curves, exactly Fig. 12's effect).
struct NamdConfig {
  int nranks = 16;
  int steps = 40;
  int objects = 8;             ///< patches per rank (over-decomposition)
  TimeNs patch_compute = 250'000.0;  ///< ns per patch per step
  std::uint64_t message_bytes = 4096;
  TimeNs traced_delta_L = 0.0; ///< ΔL at which the trace was "recorded"
  double jitter = 0.01;
  std::uint64_t seed = 9;
};

trace::Trace make_namd_trace(const NamdConfig& cfg);

}  // namespace llamp::apps
