#include "apps/icon.hpp"

#include <cmath>

#include "apps/common.hpp"

namespace llamp::apps {

trace::Trace make_icon_trace(const IconConfig& cfg) {
  Grid<2> grid = make_grid2(cfg.nranks);
  trace::TraceBuilder tb(cfg.nranks);

  const double local_cells =
      static_cast<double>(cfg.global_cells) / cfg.nranks;
  const TimeNs substep_ns = local_cells * cfg.compute_ns_per_cell_substep;
  // Halo width ~ perimeter of the local patch: O(sqrt(local cells)), with
  // several prognostic fields of 8 bytes each.
  const auto halo_bytes = static_cast<std::uint64_t>(
      std::max(8.0, std::sqrt(local_cells) * 5 * 8));

  for (int step = 0; step < cfg.steps; ++step) {
    for (int ss = 0; ss < cfg.dyn_substeps; ++ss) {
      for (int r = 0; r < cfg.nranks; ++r) {
        halo_exchange(tb, grid, r, {halo_bytes, halo_bytes},
                      /*tag=*/1 + ss);
        tb.compute(r, jittered_compute(substep_ns, cfg.jitter, cfg.seed, r,
                                       step * 64 + ss));
      }
    }
    // Physics parameterization: long, communication-free.
    for (int r = 0; r < cfg.nranks; ++r) {
      tb.compute(r, jittered_compute(substep_ns * cfg.physics_factor,
                                     cfg.jitter, cfg.seed, r, step * 64 + 32));
    }
    // Global diagnostics / CFL reduction: the Allreduce Fig. 10 studies.
    tb.allreduce_all(8);
  }
  return tb.finish();
}

}  // namespace llamp::apps
