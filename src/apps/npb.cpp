#include "apps/npb.hpp"

#include <cmath>

#include "apps/common.hpp"
#include "util/error.hpp"

namespace llamp::apps {

NpbKernel npb_kernel_from_name(const std::string& name) {
  if (name == "bt") return NpbKernel::kBT;
  if (name == "cg") return NpbKernel::kCG;
  if (name == "ep") return NpbKernel::kEP;
  if (name == "ft") return NpbKernel::kFT;
  if (name == "lu") return NpbKernel::kLU;
  if (name == "mg") return NpbKernel::kMG;
  if (name == "sp") return NpbKernel::kSP;
  throw Error("unknown NPB kernel '" + name + "'");
}

std::string to_string(NpbKernel k) {
  switch (k) {
    case NpbKernel::kBT: return "bt";
    case NpbKernel::kCG: return "cg";
    case NpbKernel::kEP: return "ep";
    case NpbKernel::kFT: return "ft";
    case NpbKernel::kLU: return "lu";
    case NpbKernel::kMG: return "mg";
    case NpbKernel::kSP: return "sp";
  }
  return "?";
}

namespace {

/// Pipelined ADI sweeps of BT/SP: along each grid dimension, each line of
/// ranks forms a dependent chain (forward elimination then back
/// substitution).
void adi_iteration(trace::TraceBuilder& tb, const Grid<2>& grid, int nranks,
                   std::uint64_t line_bytes, TimeNs cell_ns, double jitter,
                   std::uint64_t seed, int it) {
  for (int dim = 0; dim < 2; ++dim) {
    const std::size_t d = static_cast<std::size_t>(dim);
    // Forward sweep.
    for (int r = 0; r < nranks; ++r) {
      if (grid.has_neighbor(r, d, -1)) {
        tb.recv(r, grid.neighbor(r, d, -1), line_bytes, 10 + dim);
      }
      tb.compute(r, jittered_compute(cell_ns, jitter, seed, r, it * 8 + dim));
      if (grid.has_neighbor(r, d, +1)) {
        tb.send(r, grid.neighbor(r, d, +1), line_bytes, 10 + dim);
      }
    }
    // Backward substitution.
    for (int r = 0; r < nranks; ++r) {
      if (grid.has_neighbor(r, d, +1)) {
        tb.recv(r, grid.neighbor(r, d, +1), line_bytes, 20 + dim);
      }
      tb.compute(r,
                 jittered_compute(cell_ns * 0.6, jitter, seed, r, it * 8 + 4 + dim));
      if (grid.has_neighbor(r, d, -1)) {
        tb.send(r, grid.neighbor(r, d, -1), line_bytes, 20 + dim);
      }
    }
  }
}

}  // namespace

trace::Trace make_npb_trace(const NpbConfig& cfg) {
  trace::TraceBuilder tb(cfg.nranks);
  const double size = cfg.size;
  const double per_rank_work = 2.0e6 * size;  // ns of compute per iteration

  switch (cfg.kernel) {
    case NpbKernel::kBT:
    case NpbKernel::kSP: {
      const Grid<2> grid = make_grid2(cfg.nranks);
      const auto line_bytes =
          static_cast<std::uint64_t>(4096.0 * std::sqrt(size));
      const double work_scale = cfg.kernel == NpbKernel::kBT ? 1.0 : 0.45;
      for (int it = 0; it < cfg.iterations; ++it) {
        adi_iteration(tb, grid, cfg.nranks, line_bytes,
                      per_rank_work * work_scale / 6.0, cfg.jitter, cfg.seed,
                      it);
      }
      break;
    }
    case NpbKernel::kCG: {
      const Grid<2> grid = make_grid2(cfg.nranks);
      const auto vec_bytes =
          static_cast<std::uint64_t>(16384.0 * std::sqrt(size));
      for (int it = 0; it < cfg.iterations; ++it) {
        for (int r = 0; r < cfg.nranks; ++r) {
          // Transpose exchange across the processor row.
          halo_exchange(tb, grid, r, {vec_bytes, vec_bytes}, /*tag=*/1);
          tb.compute(r, jittered_compute(per_rank_work * 0.4, cfg.jitter,
                                         cfg.seed, r, it));
        }
        tb.allreduce_all(8);
        for (int r = 0; r < cfg.nranks; ++r) {
          tb.compute(r, jittered_compute(per_rank_work * 0.1, cfg.jitter,
                                         cfg.seed, r, it + 1000));
        }
        tb.allreduce_all(8);
      }
      break;
    }
    case NpbKernel::kEP: {
      for (int r = 0; r < cfg.nranks; ++r) {
        tb.compute(r, jittered_compute(per_rank_work * cfg.iterations,
                                       cfg.jitter, cfg.seed, r, 0));
      }
      tb.allreduce_all(16 * 3);  // final statistics reduction
      break;
    }
    case NpbKernel::kFT: {
      const auto slab_bytes =
          static_cast<std::uint64_t>(65536.0 * size / cfg.nranks + 1024.0);
      for (int it = 0; it < cfg.iterations; ++it) {
        for (int r = 0; r < cfg.nranks; ++r) {
          tb.compute(r, jittered_compute(per_rank_work, cfg.jitter, cfg.seed,
                                         r, it));
        }
        tb.alltoall_all(slab_bytes);  // the 3-D FFT transpose
      }
      tb.allreduce_all(16);  // checksum
      break;
    }
    case NpbKernel::kLU: {
      const Grid<2> grid = make_grid2(cfg.nranks);
      const auto pencil_bytes =
          static_cast<std::uint64_t>(1024.0 * std::sqrt(size));
      const double block_ns = per_rank_work / 10.0;
      for (int it = 0; it < cfg.iterations; ++it) {
        // Lower-triangular wavefront from the north-west corner.
        for (int r = 0; r < cfg.nranks; ++r) {
          if (grid.has_neighbor(r, 0, -1)) {
            tb.recv(r, grid.neighbor(r, 0, -1), pencil_bytes, 1);
          }
          if (grid.has_neighbor(r, 1, -1)) {
            tb.recv(r, grid.neighbor(r, 1, -1), pencil_bytes, 2);
          }
          tb.compute(r, jittered_compute(block_ns, cfg.jitter, cfg.seed, r,
                                         it * 4));
          if (grid.has_neighbor(r, 0, +1)) {
            tb.send(r, grid.neighbor(r, 0, +1), pencil_bytes, 1);
          }
          if (grid.has_neighbor(r, 1, +1)) {
            tb.send(r, grid.neighbor(r, 1, +1), pencil_bytes, 2);
          }
        }
        // Upper-triangular wavefront from the south-east corner.
        for (int r = cfg.nranks - 1; r >= 0; --r) {
          if (grid.has_neighbor(r, 0, +1)) {
            tb.recv(r, grid.neighbor(r, 0, +1), pencil_bytes, 3);
          }
          if (grid.has_neighbor(r, 1, +1)) {
            tb.recv(r, grid.neighbor(r, 1, +1), pencil_bytes, 4);
          }
          tb.compute(r, jittered_compute(block_ns, cfg.jitter, cfg.seed, r,
                                         it * 4 + 1));
          if (grid.has_neighbor(r, 0, -1)) {
            tb.send(r, grid.neighbor(r, 0, -1), pencil_bytes, 3);
          }
          if (grid.has_neighbor(r, 1, -1)) {
            tb.send(r, grid.neighbor(r, 1, -1), pencil_bytes, 4);
          }
        }
      }
      break;
    }
    case NpbKernel::kMG: {
      const Grid<3> grid = make_grid3(cfg.nranks);
      const int levels = 4;
      for (int it = 0; it < cfg.iterations; ++it) {
        for (int level = 0; level < levels; ++level) {
          const auto face = static_cast<std::uint64_t>(
              std::max(8.0, 8192.0 * size / std::pow(4.0, level)));
          const TimeNs work =
              per_rank_work / (2.0 * std::pow(8.0, level));
          for (int r = 0; r < cfg.nranks; ++r) {
            halo_exchange(tb, grid, r, {face, face, face},
                          /*tag=*/1 + level);
            tb.compute(r, jittered_compute(work, cfg.jitter, cfg.seed, r,
                                           it * 16 + level));
          }
        }
        tb.allreduce_all(8);  // coarse-level residual norm
      }
      break;
    }
  }
  return tb.finish();
}

}  // namespace llamp::apps
