#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace llamp::apps {

/// MILC su3_rmd proxy (lattice QCD, Bernard et al.): a conjugate-gradient
/// Dirac-operator solve on a 4-D space-time lattice decomposed over a 4-D
/// process grid.  Each CG iteration applies the Dslash operator — halo
/// exchanges in all 8 directions (4 dims x 2) of thin hypersurface messages
/// — with only a small matrix-vector compute in between, followed by an
/// 8-byte Allreduce for the residual norm.  The global lattice is fixed
/// (strong scaling; the paper uses 16^4), so per-rank compute shrinks with
/// rank count and the frequent tiny reductions dominate: MILC is the least
/// latency-tolerant application in the paper (Fig. 1, Fig. 9).
struct MilcConfig {
  int nranks = 32;
  int cg_iterations = 300;
  int lattice = 16;          ///< global lattice extent per dimension
  double compute_ns_per_site = 90.0;  ///< SU(3) matvec work per local site
  double jitter = 0.005;
  std::uint64_t seed = 3;
};

trace::Trace make_milc_trace(const MilcConfig& cfg);

}  // namespace llamp::apps
