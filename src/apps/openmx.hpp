#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace llamp::apps {

/// OpenMX proxy (DFT, bulk diamond DIA64 example): each SCF iteration
/// builds the Hamiltonian (large local compute), diagonalizes with
/// collective-heavy linear algebra (Bcast/Reduce sweeps over eigenvalue
/// blocks plus an Allgather of eigenvectors), and mixes densities with an
/// Allreduce.  Collective-dominated with long compute phases.
struct OpenmxConfig {
  int nranks = 32;
  int scf_iterations = 12;
  int eig_blocks = 8;        ///< diagonalization block sweeps per SCF step
  long basis_per_rank = 600; ///< local basis functions
  double compute_ns_per_basis = 4'000.0;
  double jitter = 0.01;
  std::uint64_t seed = 6;
};

trace::Trace make_openmx_trace(const OpenmxConfig& cfg);

}  // namespace llamp::apps
