#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace llamp::apps {

/// CloverLeaf proxy (2-D structured compressible Euler, Mallinson et al.):
/// each hydro step exchanges several field halos with the four mesh
/// neighbors interleaved with kernel compute (advection, PdV, fluxes) and
/// finishes with the dt-control reduction (8-byte Allreduce), mirroring the
/// reference code's `timestep` driver.
struct CloverleafConfig {
  int nranks = 32;
  int steps = 40;
  int cells_per_rank = 3600;  ///< local cells (e.g. 60x60)
  int field_exchanges = 3;    ///< halo'd field groups per step
  double compute_ns_per_cell = 120.0;
  double jitter = 0.01;
  std::uint64_t seed = 7;
};

trace::Trace make_cloverleaf_trace(const CloverleafConfig& cfg);

}  // namespace llamp::apps
