#include "apps/registry.hpp"

#include <algorithm>
#include <cmath>

#include "apps/cloverleaf.hpp"
#include "apps/hpcg.hpp"
#include "apps/icon.hpp"
#include "apps/lammps.hpp"
#include "apps/lulesh.hpp"
#include "apps/milc.hpp"
#include "apps/namd.hpp"
#include "apps/npb.hpp"
#include "apps/openmx.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::apps {

namespace {

int scaled(int base, double scale) {
  return std::max(1, static_cast<int>(std::lround(base * scale)));
}

}  // namespace

trace::Trace make_app_trace(const std::string& name, int nranks, double scale,
                            std::uint64_t seed) {
  if (name == "lulesh") {
    LuleshConfig c;
    c.nranks = nranks;
    c.iterations = scaled(c.iterations, scale);
    c.seed = seed;
    return make_lulesh_trace(c);
  }
  if (name == "hpcg") {
    HpcgConfig c;
    c.nranks = nranks;
    c.iterations = scaled(c.iterations, scale);
    c.seed = seed;
    return make_hpcg_trace(c);
  }
  if (name == "milc") {
    MilcConfig c;
    c.nranks = nranks;
    c.cg_iterations = scaled(c.cg_iterations, scale);
    c.seed = seed;
    return make_milc_trace(c);
  }
  if (name == "icon") {
    IconConfig c;
    c.nranks = nranks;
    c.steps = scaled(c.steps, scale);
    c.seed = seed;
    return make_icon_trace(c);
  }
  if (name == "lammps") {
    LammpsConfig c;
    c.nranks = nranks;
    c.steps = scaled(c.steps, scale);
    c.seed = seed;
    return make_lammps_trace(c);
  }
  if (name == "openmx") {
    OpenmxConfig c;
    c.nranks = nranks;
    c.scf_iterations = scaled(c.scf_iterations, scale);
    c.seed = seed;
    return make_openmx_trace(c);
  }
  if (name == "cloverleaf") {
    CloverleafConfig c;
    c.nranks = nranks;
    c.steps = scaled(c.steps, scale);
    c.seed = seed;
    return make_cloverleaf_trace(c);
  }
  if (name == "namd") {
    NamdConfig c;
    c.nranks = nranks;
    c.steps = scaled(c.steps, scale);
    c.seed = seed;
    return make_namd_trace(c);
  }
  if (starts_with(name, "npb-")) {
    NpbConfig c;
    c.kernel = npb_kernel_from_name(name.substr(4));
    c.nranks = nranks;
    c.iterations = scaled(c.iterations, scale);
    c.seed = seed;
    return make_npb_trace(c);
  }
  throw Error("unknown application '" + name + "'");
}

std::vector<std::string> app_names() {
  return {"lulesh", "hpcg",   "milc",   "icon",   "lammps",
          "openmx", "cloverleaf", "npb-bt", "npb-cg", "npb-ep",
          "npb-ft", "npb-lu", "npb-mg", "npb-sp", "namd"};
}

int supported_ranks(const std::string& name, int want) {
  if (want < 1) throw Error("supported_ranks: want >= 1");
  if (name == "lulesh") {
    int side = 1;
    while ((side + 1) * (side + 1) * (side + 1) <= want) ++side;
    return side * side * side;
  }
  return want;
}

}  // namespace llamp::apps
