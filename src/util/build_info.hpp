#pragma once

#include <string>

namespace llamp {

/// Build identification, shared verbatim between `llamp --version` and the
/// serve daemon's /healthz payload so a deployed daemon is identifiable
/// (which binary, which compiler, which build type) without shelling into
/// its container.
struct BuildInfo {
  std::string version;     ///< "llamp 0.6.0"
  std::string compiler;    ///< "gcc 13.2.0" / "clang 16.0.6"
  std::string build_type;  ///< CMake build type, "unknown" outside CMake
};

const BuildInfo& build_info();

/// The `llamp --version` line: "llamp 0.6.0 (gcc 13.2.0, Release)".
std::string version_line();

}  // namespace llamp
