#include "util/strings.hpp"

#include <cctype>
#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <cmath>

#include "util/error.hpp"

namespace llamp {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

long long parse_ll(std::string_view s) {
  s = trim(s);
  long long v = 0;
  const auto [ptr, ec] = std::from_chars(s.data(), s.data() + s.size(), v);
  if (ec != std::errc() || ptr != s.data() + s.size()) {
    throw Error("parse_ll: invalid integer '" + std::string(s) + "'");
  }
  return v;
}

double parse_double(std::string_view s) {
  s = trim(s);
  // std::from_chars<double> is not available on every libstdc++ this targets;
  // strtod on a bounded copy is portable and still validates the full token.
  const std::string copy(s);
  char* end = nullptr;
  const double v = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size() || copy.empty()) {
    throw Error("parse_double: invalid number '" + copy + "'");
  }
  return v;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(static_cast<std::size_t>(n), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

std::string human_count(double v) {
  const double a = std::fabs(v);
  if (a >= 1e9) return strformat("%.1f G", v / 1e9);
  if (a >= 1e6) return strformat("%.1f M", v / 1e6);
  if (a >= 1e3) return strformat("%.1f k", v / 1e3);
  return strformat("%.0f", v);
}

std::string human_time_ns(double t_ns) {
  const double a = std::fabs(t_ns);
  if (a >= 1e9) return strformat("%.3f s", t_ns / 1e9);
  if (a >= 1e6) return strformat("%.3f ms", t_ns / 1e6);
  if (a >= 1e3) return strformat("%.3f us", t_ns / 1e3);
  return strformat("%.1f ns", t_ns);
}

}  // namespace llamp
