#pragma once

#include <cstdint>

namespace llamp::util {

/// 2^floor(log2(n)) — the largest power of two <= n — computed branch-free
/// by smearing the high bit down and keeping it (the CUDA launch-config
/// idiom).  last_pow2(0) == 0; every other input yields a power of two.
/// Shared by the batched solver kernel's sub-block sizing and any future
/// launch/partition math, so the convention lives in exactly one place.
constexpr std::uint64_t last_pow2(std::uint64_t n) {
  n |= n >> 1;
  n |= n >> 2;
  n |= n >> 4;
  n |= n >> 8;
  n |= n >> 16;
  n |= n >> 32;
  return n - (n >> 1);
}

/// The smallest power of two >= n, branch-free: smear (n - 1) and add one.
/// round_up_pow2(0) == 1 (an empty request still gets a valid block), and
/// inputs above 2^63 would wrap — callers size blocks, not address spaces,
/// so the precondition n <= 2^63 is asserted structurally by use.
constexpr std::uint64_t round_up_pow2(std::uint64_t n) {
  n = n > 0 ? n - 1 : 0;
  n |= n >> 1;
  n |= n >> 2;
  n |= n >> 4;
  n |= n >> 8;
  n |= n >> 16;
  n |= n >> 32;
  return n + 1;
}

/// True iff n is a power of two (0 is not).
constexpr bool is_pow2(std::uint64_t n) { return n != 0 && (n & (n - 1)) == 0; }

static_assert(last_pow2(1) == 1 && last_pow2(2) == 2 && last_pow2(3) == 2);
static_assert(last_pow2(8) == 8 && last_pow2(9) == 8 && last_pow2(1023) == 512);
static_assert(round_up_pow2(0) == 1 && round_up_pow2(1) == 1);
static_assert(round_up_pow2(3) == 4 && round_up_pow2(8) == 8);
static_assert(round_up_pow2(9) == 16);
static_assert(is_pow2(1) && is_pow2(64) && !is_pow2(0) && !is_pow2(12));

}  // namespace llamp::util
