#pragma once

#include <cstddef>
#include <functional>

namespace llamp {

/// Run fn(0), ..., fn(n-1) across a pool of worker threads, striding the
/// index range so consecutive indices land on different workers (the LP
/// solves of a sweep have similar cost, so striding balances well).
///
/// `threads` <= 0 uses the hardware concurrency; the pool never exceeds `n`
/// workers, and n <= 1 or threads == 1 degrades to a plain loop on the
/// calling thread.  The first exception thrown by any fn is rethrown on the
/// caller after all workers join.
///
/// Determinism contract: fn(i) must depend only on i (and read-only shared
/// state).  Under that contract results are independent of the thread
/// count — the property the campaign engine's byte-identical-output tests
/// pin.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

}  // namespace llamp
