#pragma once

#include <cstddef>
#include <functional>

namespace llamp {

/// The number of workers parallel_for / parallel_for_workers will actually
/// use for `n` jobs with a requested thread count: `threads` <= 0 means the
/// hardware concurrency, the pool never exceeds `n` workers, and the result
/// is always >= 1.  Callers that keep per-worker state (e.g. one solver
/// workspace per worker) size it with this.
int effective_threads(std::size_t n, int threads);

/// Run fn(0), ..., fn(n-1) across a pool of worker threads, striding the
/// index range so consecutive indices land on different workers (the LP
/// solves of a sweep have similar cost, so striding balances well).
///
/// `threads` <= 0 uses the hardware concurrency; the pool never exceeds `n`
/// workers, and n <= 1 or threads == 1 degrades to a plain loop on the
/// calling thread.  The first exception thrown by any fn is rethrown on the
/// caller after all workers join.
///
/// Determinism contract: fn(i) must depend only on i (and read-only shared
/// state).  Under that contract results are independent of the thread
/// count — the property the campaign engine's byte-identical-output tests
/// pin.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Like parallel_for, but hands each call its worker index: fn(worker, i)
/// with worker in [0, effective_threads(n, threads)).  All indices served
/// by one worker run sequentially on the same thread, so fn may keep
/// mutable per-worker scratch (a solve workspace, an accumulator) indexed
/// by `worker` without locking.  The determinism contract extends to that
/// scratch: results must not depend on which worker served an index.
void parallel_for_workers(std::size_t n, int threads,
                          const std::function<void(int, std::size_t)>& fn);

}  // namespace llamp
