#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/time.hpp"

namespace llamp {

/// The number of workers parallel_for / parallel_for_workers will actually
/// use for `n` jobs with a requested thread count: `threads` <= 0 means the
/// hardware concurrency, the pool never exceeds `n` workers, and the result
/// is always >= 1.  Callers that keep per-worker state (e.g. one solver
/// workspace per worker) size it with this.
int effective_threads(std::size_t n, int threads);

/// Run fn(0), ..., fn(n-1) across a pool of worker threads, striding the
/// index range so consecutive indices land on different workers (the LP
/// solves of a sweep have similar cost, so striding balances well).
///
/// `threads` <= 0 uses the hardware concurrency; the pool never exceeds `n`
/// workers, and n <= 1 or threads == 1 degrades to a plain loop on the
/// calling thread.  The first exception thrown by any fn is rethrown on the
/// caller after all workers join.
///
/// Determinism contract: fn(i) must depend only on i (and read-only shared
/// state).  Under that contract results are independent of the thread
/// count — the property the campaign engine's byte-identical-output tests
/// pin.
void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn);

/// Like parallel_for, but hands each call its worker index: fn(worker, i)
/// with worker in [0, effective_threads(n, threads)).  All indices served
/// by one worker run sequentially on the same thread, so fn may keep
/// mutable per-worker scratch (a solve workspace, an accumulator) indexed
/// by `worker` without locking.  The determinism contract extends to that
/// scratch: results must not depend on which worker served an index.
void parallel_for_workers(std::size_t n, int threads,
                          const std::function<void(int, std::size_t)>& fn);

/// Like parallel_for_workers, but with chunked self-scheduling instead of
/// static striding: workers repeatedly claim the next `chunk` consecutive
/// indices from a shared atomic counter, so a worker that drew expensive
/// indices simply claims fewer chunks while the others keep the pool busy.
/// Use this when per-index cost is imbalanced (the Monte Carlo general
/// edge-noise path, where resampled edge factors reshape every solve);
/// striding remains the right default when costs are uniform, since it
/// touches no shared state.  `chunk` == 0 is treated as 1.
///
/// Same determinism contract as parallel_for_workers — fn(i) must depend
/// only on i and (per-worker) scratch whose effect on the result is
/// index-local — under which results are independent of the thread count
/// *and* of the race for chunks (pinned across 1/2/8 threads and TSan by
/// test_parallel_stress.cpp).
void parallel_for_workers_chunked(
    std::size_t n, int threads, std::size_t chunk,
    const std::function<void(int, std::size_t)>& fn);

/// Persistent worker pool with parallel_for_workers semantics: workers are
/// spawned once and reused across jobs, so a long-lived session (the
/// api::Engine serving many requests) pays thread start-up once instead of
/// per call.  Index distribution is identical to parallel_for_workers —
/// worker w serves indices w, w + W, w + 2W, ... with W =
/// min(size(), effective_threads(n, max_workers)) — so under the same
/// determinism contract (fn(i) depends only on i) results are independent
/// of both the pool size and which pool ran the job.
///
/// One job runs at a time per pool; for_workers is not reentrant from
/// inside fn (jobs that need nested parallelism use the free functions).
/// The first exception thrown by any fn is rethrown on the caller after
/// the job drains.
class ThreadPool {
 public:
  /// `threads` <= 0 sizes the pool to the hardware concurrency.
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()) + 1; }

  /// Run fn(worker, i) for i in [0, n).  `max_workers` caps the workers
  /// used for this job (<= 0 = the whole pool); n <= 1 or a cap of 1 runs
  /// inline on the caller.  The caller thread participates as worker 0, so
  /// a pool of size W uses W threads total, matching the free functions.
  void for_workers(std::size_t n, int max_workers,
                   const std::function<void(int, std::size_t)>& fn);

  /// Convenience form without a worker index.
  void for_each(std::size_t n, int max_workers,
                const std::function<void(std::size_t)>& fn);

  /// Cumulative pool statistics for the observability surfaces.  `jobs`
  /// and `tasks` are deterministic for a fixed call sequence (one job per
  /// for_workers call, one task per index) and so may be pinned; `slices`
  /// and `busy_ns` depend on the fan-out width and the wall clock — they
  /// feed worker-occupancy gauges, never result bytes.  Relaxed monotonic
  /// tallies, GraphCache-style: not an instantaneous cut across fields.
  struct Stats {
    std::uint64_t jobs = 0;     ///< for_workers/for_each calls
    std::uint64_t tasks = 0;    ///< indices executed across all jobs
    std::uint64_t slices = 0;   ///< timed per-worker job slices
    std::uint64_t busy_ns = 0;  ///< summed wall time inside job slices
  };
  Stats stats() const;

 private:
  void worker_loop(int worker);
  /// Fold one finished job slice (started at `t0`) into the tallies.
  void note_slice(TimeNs t0);

  struct Job {
    std::size_t n = 0;
    int nworkers = 0;
    const std::function<void(int, std::size_t)>* fn = nullptr;
  };

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::condition_variable done_;
  Job job_;
  std::uint64_t generation_ = 0;  ///< bumped per job; workers wake on change
  int remaining_ = 0;             ///< workers still running the current job
  bool stop_ = false;
  std::exception_ptr error_;
  std::atomic<std::uint64_t> jobs_{0};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> slices_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace llamp
