#pragma once

#include <stdexcept>
#include <string>

namespace llamp {

/// Base class for all errors raised by the LLAMP toolchain.  Every module
/// throws a subclass of this so callers can catch toolchain errors separately
/// from standard-library failures.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid user-supplied configuration: malformed CLI flags, degenerate
/// sweep grids, empty campaign axes.  The CLI driver maps this class to
/// exit code 2 (usage error) while every other Error maps to exit code 1
/// (analysis failure), so a typo'd grid spec can never masquerade as a
/// clean-but-empty result.
class UsageError : public Error {
 public:
  explicit UsageError(const std::string& what) : Error(what) {}
};

/// Malformed or inconsistent trace input (bad syntax, truncated files,
/// non-monotonic timestamps, unknown operation, rank mismatch).  Traces are
/// user-supplied input, so this is a UsageError: every CLI surface maps a
/// bad trace file to exit code 2, the same as any other bad argument —
/// never a crash or a silently truncated analysis.
class TraceError : public UsageError {
 public:
  explicit TraceError(const std::string& what) : UsageError("trace: " + what) {}
};

/// Structural problems in an execution graph (cycles, dangling communication
/// edges, unmatched send/recv pairs).
class GraphError : public Error {
 public:
  explicit GraphError(const std::string& what) : Error("graph: " + what) {}
};

/// Errors from the linear-programming layer (infeasible or unbounded models,
/// dimension mismatches, querying solutions before solving).
class LpError : public Error {
 public:
  explicit LpError(const std::string& what) : Error("lp: " + what) {}
};

/// Errors from schedule generation (unknown collective algorithm, invalid
/// communicator size, unmatched operations).
class SchedError : public Error {
 public:
  explicit SchedError(const std::string& what) : Error("schedgen: " + what) {}
};

/// Errors from the discrete-event simulator (deadlock detected, graph not
/// simulatable).
class SimError : public Error {
 public:
  explicit SimError(const std::string& what) : Error("sim: " + what) {}
};

/// Errors from topology construction (invalid radix/group parameters, node
/// index out of range).
class TopoError : public Error {
 public:
  explicit TopoError(const std::string& what) : Error("topo: " + what) {}
};

}  // namespace llamp
