#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace llamp {

/// Minimal JSON document model for the api layer's request/response
/// serving: enough of RFC 8259 to parse one request per JSONL line and to
/// navigate it with typed accessors.  Objects preserve insertion order, so
/// a parse → serialize round trip through the api request types is
/// byte-stable.  JSON arriving over the batch surface is user input, so
/// every malformed construct raises UsageError (the CLI's exit-2 class),
/// never a crash or a silently defaulted field.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  /// Parse one complete JSON document; trailing non-whitespace is an
  /// error.  Throws UsageError with a byte offset on malformed input.
  static JsonValue parse(std::string_view text);

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  /// Typed accessors.  `what` names the field in error messages; a kind
  /// mismatch is a UsageError ("field \"points\": expected number").
  bool as_bool(const std::string& what) const;
  double as_number(const std::string& what) const;
  /// Exact unsigned 64-bit read: a plain-digit token is parsed as an
  /// integer directly (doubles cannot represent every u64, and a seed
  /// silently rounded to the nearest representable double would break the
  /// reproducibility contract); scientific/fractional spellings are
  /// accepted only while exactly integral and at most 2^53.  Negative or
  /// non-integral values throw.
  std::uint64_t as_unsigned(const std::string& what) const;
  const std::string& as_string(const std::string& what) const;
  const std::vector<JsonValue>& as_array(const std::string& what) const;

  /// Object member lookup; returns nullptr when absent (or when this value
  /// is not an object).
  const JsonValue* find(std::string_view key) const;
  /// Object members in document order.
  const std::vector<std::pair<std::string, JsonValue>>& members(
      const std::string& what) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;

  friend class JsonParser;
};

/// Shortest decimal form of `v` that strtod parses back to exactly `v`
/// (precision 6, widening to 17 only when needed), so serialized requests
/// stay human-readable and (de)serialization round-trips bitwise.
/// Non-finite values serialize as null per JSON.
std::string json_double(double v);

/// JSON string escaping (quotes, backslashes, control characters), shared
/// with core/report's emitters.
std::string json_escape_string(const std::string& s);

}  // namespace llamp
