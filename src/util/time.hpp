#pragma once

#include <chrono>
#include <cstdint>

namespace llamp {

/// All timestamps and durations in the toolchain are expressed in
/// nanoseconds.  A floating-point representation is used (rather than the
/// integer nanoseconds of LogGOPSim) because the LP layer treats latency as a
/// continuous decision variable; 53 bits of mantissa give exact integers up
/// to ~104 days, far beyond any trace length we handle.
using TimeNs = double;

/// Convenience literals/conversions.
constexpr TimeNs ns(double v) { return v; }
constexpr TimeNs us(double v) { return v * 1e3; }
constexpr TimeNs ms(double v) { return v * 1e6; }
constexpr TimeNs sec(double v) { return v * 1e9; }

constexpr double to_us(TimeNs t) { return t / 1e3; }
constexpr double to_ms(TimeNs t) { return t / 1e6; }
constexpr double to_sec(TimeNs t) { return t / 1e9; }

/// The one steady-clock read in the toolchain (llamp-lint's det-clock rule
/// sanctions clock reads only here and in bench code).  Observability
/// callers — span timestamps, latency histograms, worker-occupancy
/// accounting — go through this so every timing is in the same TimeNs
/// domain, and so the determinism wall stays auditable: grep for
/// monotonic_now() to find every place a result could accidentally absorb
/// wall time.  Timings must only ever reach side-channel outputs (metrics,
/// traces), never golden-pinned result bytes.
inline TimeNs monotonic_now() {
  return static_cast<TimeNs>(
      std::chrono::duration<double, std::nano>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

}  // namespace llamp
