#include "util/cli.hpp"

#include "util/strings.hpp"

namespace llamp {

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "true";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : parse_ll(it->second);
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : parse_double(it->second);
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace llamp
