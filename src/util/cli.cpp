#include "util/cli.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp {
namespace {

/// A flag value that fails to parse is a usage error (exit 2 in the CLI
/// driver), named after the offending flag — never a bare parse Error that
/// would be reported as an analysis failure.
template <typename Fn>
auto parse_flag(const std::string& key, const std::string& value, Fn parse) {
  try {
    return parse(value);
  } catch (const Error&) {
    throw UsageError("bad --" + key + " value '" + value + "'");
  }
}

}  // namespace

Cli::Cli(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (starts_with(arg, "--")) {
      const auto eq = arg.find('=');
      if (eq == std::string::npos) {
        kv_[arg.substr(2)] = "true";
      } else {
        kv_[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
      }
    } else {
      positional_.push_back(arg);
    }
  }
}

bool Cli::has(const std::string& key) const { return kv_.count(key) > 0; }

std::string Cli::get(const std::string& key, const std::string& fallback) const {
  const auto it = kv_.find(key);
  return it == kv_.end() ? fallback : it->second;
}

long long Cli::get_int(const std::string& key, long long fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return parse_flag(key, it->second,
                    [](const std::string& v) { return parse_ll(v); });
}

double Cli::get_double(const std::string& key, double fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return parse_flag(key, it->second,
                    [](const std::string& v) { return parse_double(v); });
}

bool Cli::get_bool(const std::string& key, bool fallback) const {
  const auto it = kv_.find(key);
  if (it == kv_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace llamp
