#include "util/table.hpp"

#include <algorithm>
#include <sstream>

#include "util/error.hpp"

namespace llamp {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  if (headers_.empty()) throw Error("table: empty header");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != headers_.size()) {
    throw Error("table: row arity mismatch");
  }
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream os;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << row[c];
      if (c + 1 < row.size()) {
        os << std::string(widths[c] - row[c].size() + 2, ' ');
      }
    }
    os << '\n';
  };
  emit_row(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < widths.size(); ++c) {
    total += widths[c] + (c + 1 < widths.size() ? 2 : 0);
  }
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  return os.str();
}

std::string Table::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool quote = row[c].find(',') != std::string::npos;
      if (quote) os << '"';
      os << row[c];
      if (quote) os << '"';
      if (c + 1 < row.size()) os << ',';
    }
    os << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace llamp
