#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace llamp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double rmse(std::span<const double> measured,
            std::span<const double> predicted) {
  if (measured.size() != predicted.size()) {
    throw Error("rmse: series length mismatch");
  }
  if (measured.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double d = measured[i] - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(measured.size()));
}

double rrmse_percent(std::span<const double> measured,
                     std::span<const double> predicted) {
  const double m = mean(measured);
  if (m == 0.0) throw Error("rrmse: measured series has zero mean");
  return 100.0 * rmse(measured, predicted) / m;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

}  // namespace llamp
