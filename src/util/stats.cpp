#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp {

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  return xs.empty() ? 0.0 : *std::max_element(xs.begin(), xs.end());
}

double rmse(std::span<const double> measured,
            std::span<const double> predicted) {
  if (measured.size() != predicted.size()) {
    throw Error("rmse: series length mismatch");
  }
  if (measured.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t i = 0; i < measured.size(); ++i) {
    const double d = measured[i] - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(measured.size()));
}

double rrmse_percent(std::span<const double> measured,
                     std::span<const double> predicted) {
  const double m = mean(measured);
  if (m == 0.0) throw Error("rrmse: measured series has zero mean");
  return 100.0 * rmse(measured, predicted) / m;
}

double percentile(std::span<const double> xs, double p) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  if (p <= 0.0) return v.front();
  if (p >= 100.0) return v.back();
  const double idx = p / 100.0 * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(idx);
  const double frac = idx - static_cast<double>(lo);
  if (lo + 1 >= v.size()) return v.back();
  return v[lo] * (1.0 - frac) + v[lo + 1] * frac;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

P2Quantile::P2Quantile(double quantile) : p_(quantile) {
  if (!(quantile >= 0.0 && quantile <= 1.0)) {
    throw Error(strformat("P2Quantile: quantile must be in [0, 1] (got %g)",
                          quantile));
  }
}

void P2Quantile::add(double x) {
  if (!std::isfinite(x)) {
    throw Error("P2Quantile: non-finite observation");
  }
  if (n_ < 5) {
    // Warm-up: keep the raw observations sorted in the marker slots.  The
    // fifth observation completes the canonical P² initial state.
    q_[n_] = x;
    ++n_;
    for (std::size_t i = n_ - 1; i > 0 && q_[i - 1] > q_[i]; --i) {
      std::swap(q_[i - 1], q_[i]);
    }
    if (n_ == 5) {
      for (std::size_t i = 0; i < 5; ++i) {
        pos_[i] = static_cast<double>(i + 1);
      }
      desired_ = {1.0, 1.0 + 2.0 * p_, 1.0 + 4.0 * p_, 3.0 + 2.0 * p_, 5.0};
      step_ = {0.0, p_ / 2.0, p_, (1.0 + p_) / 2.0, 1.0};
    }
    return;
  }

  // Locate the cell [q_k, q_{k+1}) containing x, extending the extreme
  // markers when x falls outside the current range.
  std::size_t k = 0;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    if (x > q_[4]) q_[4] = x;
    k = 3;
  } else {
    while (k < 3 && q_[k + 1] <= x) ++k;
  }
  ++n_;
  for (std::size_t i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (std::size_t i = 0; i < 5; ++i) desired_[i] += step_[i];

  // Adjust the interior markers toward their desired positions, moving each
  // at most one slot per observation: parabolic (P²) interpolation when it
  // keeps the heights monotone, linear otherwise.
  for (std::size_t i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 1.0 ? 1.0 : -1.0;
      const double np = pos_[i] + s;
      const double qp =
          q_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (pos_[i + 1] - pos_[i]) +
                       (pos_[i + 1] - pos_[i] - s) * (q_[i] - q_[i - 1]) /
                           (pos_[i] - pos_[i - 1]));
      if (q_[i - 1] < qp && qp < q_[i + 1]) {
        q_[i] = qp;
      } else {
        // Linear fallback toward the neighbour in the movement direction.
        const std::size_t j = d >= 1.0 ? i + 1 : i - 1;
        q_[i] = q_[i] + s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  if (n_ == 0) return 0.0;
  if (n_ <= 5) {
    // Exact percentile over the sorted warm-up observations, under the same
    // R-7 scheme as the batch percentile() helper.
    return percentile(std::span<const double>(q_.data(), n_), 100.0 * p_);
  }
  return q_[2];
}

}  // namespace llamp
