#pragma once

#include <cstdint>
#include <limits>

namespace llamp {

/// Deterministic, seedable pseudo-random generator (xoshiro256**).  Used by
/// the cluster emulator's noise model, the property-test graph generators,
/// and the proxy applications so that every experiment in the repository is
/// exactly reproducible from its seed.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) {
    // SplitMix64 seeding as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      s = z ^ (z >> 31);
    }
  }

  /// Raw 64 random bits.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] (inclusive).  Bitmask rejection sampling:
  /// draw ceil(log2(span)) bits and retry until the value lands in range,
  /// so every value is exactly equally likely (`next_u64() % span` would
  /// bias toward small values whenever span does not divide 2^64).  Still
  /// fully deterministic per seed; expected < 2 draws per call.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    // All arithmetic in uint64: `hi - lo` and `lo + v` could overflow the
    // signed type for spans beyond 2^63 (wrapping unsigned math gives the
    // right answer in two's complement either way).
    const std::uint64_t span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full range
    std::uint64_t mask = span - 1;
    mask |= mask >> 1;
    mask |= mask >> 2;
    mask |= mask >> 4;
    mask |= mask >> 8;
    mask |= mask >> 16;
    mask |= mask >> 32;
    std::uint64_t v = next_u64() & mask;
    while (v >= span) v = next_u64() & mask;
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) + v);
  }

  /// Standard normal via Box-Muller (one value per call; the pair's second
  /// member is discarded to keep the generator state trivially seekable).
  double normal() {
    double u1 = uniform();
    while (u1 <= 0.0) u1 = uniform();
    const double u2 = uniform();
    constexpr double kTwoPi = 6.283185307179586;
    return nonstd_sqrt(-2.0 * nonstd_log(u1)) * nonstd_cos(kTwoPi * u2);
  }

  /// Normal with explicit mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  // Thin indirection so <cmath> stays out of this header's public surface.
  static double nonstd_sqrt(double v);
  static double nonstd_log(double v);
  static double nonstd_cos(double v);

  std::uint64_t state_[4];
};

inline double Rng::nonstd_sqrt(double v) { return __builtin_sqrt(v); }
inline double Rng::nonstd_log(double v) { return __builtin_log(v); }
inline double Rng::nonstd_cos(double v) { return __builtin_cos(v); }

}  // namespace llamp
