#pragma once

#include <array>
#include <cstddef>
#include <span>
#include <vector>

namespace llamp {

/// Summary statistics and error metrics used throughout the validation
/// benches (RRMSE is the accuracy metric the paper reports in Fig. 9 and
/// Table II).
///
/// Variance convention: **population** variance (divide by N, not N-1),
/// here and in RunningStats below.  The benches summarize the dispersion of
/// a complete, deterministic set of emulator runs — not a sample drawn from
/// a larger population — so the uncorrected estimator is the intended
/// quantity, and both code paths must agree so streaming and batch
/// summaries of the same data are interchangeable.  Inputs with fewer than
/// two elements return 0.  Pinned by the Stats.*Convention tests.
double mean(std::span<const double> xs);
double variance(std::span<const double> xs);  // population: sum((x-m)^2) / N
double stddev(std::span<const double> xs);    // sqrt of population variance
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Root mean square error between measured and predicted series.
double rmse(std::span<const double> measured, std::span<const double> predicted);

/// Relative RMSE in percent: RMSE normalized by the mean of the measured
/// series, the definition used by the paper (citing Despotovic et al.).
double rrmse_percent(std::span<const double> measured,
                     std::span<const double> predicted);

/// p-th percentile (0..100) with linear interpolation between order
/// statistics (the "exclusive of the correction" R-7 scheme used by numpy's
/// default): index = p/100 * (N-1), endpoints clamp to min (p <= 0) and max
/// (p >= 100).  Copies + sorts.
double percentile(std::span<const double> xs, double p);

/// Incremental mean/variance accumulator (Welford) for streaming use in the
/// benches.  Same population-variance convention (divide by N) as the free
/// variance() above.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  double variance() const;  ///< population: M2 / N
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Streaming quantile estimator: the P² algorithm of Jain & Chlamtac (1985),
/// five markers tracking one target quantile in O(1) memory whatever the
/// stream length (the stoch/ Monte Carlo engine summarizes 10^4+ samples per
/// scenario without storing them).
///
/// Exactness contract: while the stream holds at most five observations the
/// estimate is the *exact* percentile under the same R-7 interpolation
/// scheme as percentile() above — so a one-sample stream returns that sample
/// bitwise, which the degenerate-MC reproduction tests rely on.  Beyond five
/// observations the estimate is approximate; the StatsStream tests bound its
/// error against exact percentiles under adversarial arrival orders.
///
/// Updates are order-sensitive (like any streaming sketch): callers that
/// need run-to-run stable results must feed observations in a deterministic
/// order.  Non-finite observations are rejected with llamp::Error — the
/// marker invariants do not survive them; callers count those separately.
class P2Quantile {
 public:
  /// `quantile` in [0, 1]: 0.05 tracks the 5th percentile, 0.5 the median.
  explicit P2Quantile(double quantile);

  void add(double x);
  std::size_t count() const { return n_; }
  /// Current estimate; 0.0 for an empty stream (like the batch helpers).
  double value() const;

 private:
  double p_ = 0.5;
  std::size_t n_ = 0;
  std::array<double, 5> q_{};        ///< marker heights (first 5: raw values)
  std::array<double, 5> pos_{};      ///< marker positions (1-based)
  std::array<double, 5> desired_{};  ///< desired marker positions
  std::array<double, 5> step_{};     ///< desired-position increment per add
};

}  // namespace llamp
