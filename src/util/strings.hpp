#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace llamp {

/// Split `s` on `delim`, keeping empty fields (mirrors the liballprof trace
/// format where consecutive colons are significant).
std::vector<std::string> split(std::string_view s, char delim);

/// Split on whitespace, dropping empty fields.
std::vector<std::string> split_ws(std::string_view s);

/// Strip leading/trailing whitespace.
std::string_view trim(std::string_view s);

/// True if `s` begins with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Parse helpers that raise llamp::Error with context on failure instead of
/// silently returning 0 like std::atoi.
long long parse_ll(std::string_view s);
double parse_double(std::string_view s);

/// printf-style formatting into std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Human-readable quantities for report output, e.g. "48.3 M", "1.2 k".
std::string human_count(double v);
/// Format nanoseconds with an adaptive unit, e.g. "3.0 us", "1.50 ms".
std::string human_time_ns(double t_ns);

}  // namespace llamp
