#include "util/build_info.hpp"

#include "util/strings.hpp"

namespace llamp {
namespace {

std::string compiler_string() {
#if defined(__clang__)
  return strformat("clang %d.%d.%d", __clang_major__, __clang_minor__,
                   __clang_patchlevel__);
#elif defined(__GNUC__)
  return strformat("gcc %d.%d.%d", __GNUC__, __GNUC_MINOR__,
                   __GNUC_PATCHLEVEL__);
#else
  return "unknown";
#endif
}

}  // namespace

const BuildInfo& build_info() {
  static const BuildInfo info = [] {
    BuildInfo b;
    b.version = "llamp 0.6.0";
    b.compiler = compiler_string();
    // CMake passes the build type for this one translation unit; a build
    // outside CMake (or with an empty type) reports "unknown" rather than
    // guessing.
#ifdef LLAMP_BUILD_TYPE
    b.build_type = LLAMP_BUILD_TYPE;
    if (b.build_type.empty()) b.build_type = "unknown";
#else
    b.build_type = "unknown";
#endif
    return b;
  }();
  return info;
}

std::string version_line() {
  const BuildInfo& b = build_info();
  return strformat("%s (%s, %s)", b.version.c_str(), b.compiler.c_str(),
                   b.build_type.c_str());
}

}  // namespace llamp
