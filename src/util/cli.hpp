#pragma once

#include <map>
#include <string>
#include <vector>

namespace llamp {

/// Tiny `--key=value` / `--flag` argument parser shared by the examples and
/// benchmark harnesses.  Unrecognized positional arguments are kept in
/// order; `--help` handling is left to callers.
class Cli {
 public:
  Cli(int argc, const char* const* argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> kv_;
  std::vector<std::string> positional_;
};

}  // namespace llamp
