#include "util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace llamp {

int effective_threads(std::size_t n, int threads) {
  int nthreads = threads > 0
                     ? threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, std::min<int>(nthreads, static_cast<int>(n)));
}

void parallel_for_workers(std::size_t n, int threads,
                          const std::function<void(int, std::size_t)>& fn) {
  const int nthreads = effective_threads(n, threads);
  if (nthreads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  std::vector<std::thread> pool;
  std::exception_ptr error;
  std::mutex error_mutex;
  for (int t = 0; t < nthreads; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = static_cast<std::size_t>(t); i < n;
             i += static_cast<std::size_t>(nthreads)) {
          fn(t, i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

void parallel_for_workers_chunked(
    std::size_t n, int threads, std::size_t chunk,
    const std::function<void(int, std::size_t)>& fn) {
  const int nthreads = effective_threads(n, threads);
  if (nthreads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  if (chunk == 0) chunk = 1;
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  std::exception_ptr error;
  std::mutex error_mutex;
  for (int t = 0; t < nthreads; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (;;) {
          const std::size_t lo =
              next.fetch_add(chunk, std::memory_order_relaxed);
          if (lo >= n) return;
          const std::size_t hi = std::min(lo + chunk, n);
          for (std::size_t i = lo; i < hi; ++i) fn(t, i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_workers(n, threads,
                       [&fn](int, std::size_t i) { fn(i); });
}

ThreadPool::ThreadPool(int threads) {
  int nthreads = threads > 0
                     ? threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  nthreads = std::max(1, nthreads);
  workers_.reserve(static_cast<std::size_t>(nthreads - 1));
  // The caller participates as worker 0, so a pool of size W spawns W - 1
  // threads, carrying pool-worker ids 1 .. W-1.
  for (int t = 1; t < nthreads; ++t) {
    workers_.emplace_back([this, t] { worker_loop(t); });
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  wake_.notify_all();
  for (auto& th : workers_) th.join();
}

void ThreadPool::worker_loop(int worker) {
  std::uint64_t seen = 0;
  while (true) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] { return stop_ || generation_ != seen; });
      if (stop_) return;
      seen = generation_;
      job = job_;
    }
    if (worker < job.nworkers) {
      const TimeNs t0 = monotonic_now();
      try {
        for (std::size_t i = static_cast<std::size_t>(worker); i < job.n;
             i += static_cast<std::size_t>(job.nworkers)) {
          (*job.fn)(worker, i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(mutex_);
        if (!error_) error_ = std::current_exception();
      }
      note_slice(t0);
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        --remaining_;
      }
      done_.notify_one();
    }
  }
}

void ThreadPool::note_slice(TimeNs t0) {
  slices_.fetch_add(1, std::memory_order_relaxed);
  busy_ns_.fetch_add(static_cast<std::uint64_t>(monotonic_now() - t0),
                     std::memory_order_relaxed);
}

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.jobs = jobs_.load(std::memory_order_relaxed);
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.slices = slices_.load(std::memory_order_relaxed);
  s.busy_ns = busy_ns_.load(std::memory_order_relaxed);
  return s;
}

void ThreadPool::for_workers(std::size_t n, int max_workers,
                             const std::function<void(int, std::size_t)>& fn) {
  const int cap = max_workers > 0 ? std::min(max_workers, size()) : size();
  const int nworkers = effective_threads(n, cap);
  jobs_.fetch_add(1, std::memory_order_relaxed);
  tasks_.fetch_add(n, std::memory_order_relaxed);
  if (nworkers == 1) {
    const TimeNs t0 = monotonic_now();
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    note_slice(t0);
    return;
  }
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    job_ = {n, nworkers, &fn};
    remaining_ = nworkers - 1;  // pool workers 1 .. nworkers-1
    error_ = nullptr;
    ++generation_;
  }
  wake_.notify_all();
  // The caller is worker 0; its exceptions line up with the workers' via
  // the shared error slot so the first failure wins deterministically
  // enough for reporting (the job always drains before rethrow).
  const TimeNs t0 = monotonic_now();
  try {
    for (std::size_t i = 0; i < n;
         i += static_cast<std::size_t>(nworkers)) {
      fn(0, i);
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
  }
  note_slice(t0);
  std::unique_lock<std::mutex> lock(mutex_);
  done_.wait(lock, [&] { return remaining_ == 0; });
  if (error_) {
    const std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::for_each(std::size_t n, int max_workers,
                          const std::function<void(std::size_t)>& fn) {
  for_workers(n, max_workers, [&fn](int, std::size_t i) { fn(i); });
}

}  // namespace llamp
