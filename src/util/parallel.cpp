#include "util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace llamp {

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  int nthreads = threads > 0
                     ? threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  nthreads = std::max(1, std::min<int>(nthreads, static_cast<int>(n)));
  if (nthreads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::vector<std::thread> pool;
  std::exception_ptr error;
  std::mutex error_mutex;
  for (int t = 0; t < nthreads; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = static_cast<std::size_t>(t); i < n;
             i += static_cast<std::size_t>(nthreads)) {
          fn(i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

}  // namespace llamp
