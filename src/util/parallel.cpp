#include "util/parallel.hpp"

#include <algorithm>
#include <exception>
#include <mutex>
#include <thread>
#include <vector>

namespace llamp {

int effective_threads(std::size_t n, int threads) {
  int nthreads = threads > 0
                     ? threads
                     : static_cast<int>(std::thread::hardware_concurrency());
  return std::max(1, std::min<int>(nthreads, static_cast<int>(n)));
}

void parallel_for_workers(std::size_t n, int threads,
                          const std::function<void(int, std::size_t)>& fn) {
  const int nthreads = effective_threads(n, threads);
  if (nthreads == 1) {
    for (std::size_t i = 0; i < n; ++i) fn(0, i);
    return;
  }
  std::vector<std::thread> pool;
  std::exception_ptr error;
  std::mutex error_mutex;
  for (int t = 0; t < nthreads; ++t) {
    pool.emplace_back([&, t] {
      try {
        for (std::size_t i = static_cast<std::size_t>(t); i < n;
             i += static_cast<std::size_t>(nthreads)) {
          fn(t, i);
        }
      } catch (...) {
        const std::lock_guard<std::mutex> lock(error_mutex);
        if (!error) error = std::current_exception();
      }
    });
  }
  for (auto& th : pool) th.join();
  if (error) std::rethrow_exception(error);
}

void parallel_for(std::size_t n, int threads,
                  const std::function<void(std::size_t)>& fn) {
  parallel_for_workers(n, threads,
                       [&fn](int, std::size_t i) { fn(i); });
}

}  // namespace llamp
