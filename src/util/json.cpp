#include "util/json.hpp"

#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp {

namespace {

std::string kind_name(JsonValue::Kind k) {
  switch (k) {
    case JsonValue::Kind::kNull: return "null";
    case JsonValue::Kind::kBool: return "bool";
    case JsonValue::Kind::kNumber: return "number";
    case JsonValue::Kind::kString: return "string";
    case JsonValue::Kind::kArray: return "array";
    case JsonValue::Kind::kObject: return "object";
  }
  return "?";
}

[[noreturn]] void kind_error(const std::string& what, const char* want,
                             JsonValue::Kind got) {
  throw UsageError(strformat("json: %s: expected %s, got %s", what.c_str(),
                             want, kind_name(got).c_str()));
}

}  // namespace

/// Recursive-descent parser over the input span.  Depth is bounded so a
/// hostile deeply-nested line cannot overflow the stack.
class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value(0);
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after document");
    return v;
  }

 private:
  static constexpr int kMaxDepth = 64;

  [[noreturn]] void fail(const std::string& msg) const {
    throw UsageError(
        strformat("json: %s (at byte %zu)", msg.c_str(), pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (pos_ >= text_.size() || text_[pos_] != c) {
      fail(strformat("expected '%c'", c));
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value(int depth) {
    if (depth > kMaxDepth) fail("nesting too deep");
    skip_ws();
    JsonValue v;
    switch (peek()) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"':
        v.kind_ = JsonValue::Kind::kString;
        v.string_ = parse_string();
        return v;
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = true;
        return v;
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        v.kind_ = JsonValue::Kind::kBool;
        v.bool_ = false;
        return v;
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return v;
      default: return parse_number();
    }
  }

  JsonValue parse_object(int depth) {
    expect('{');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      if (peek() != '"') fail("expected object key");
      std::string key = parse_string();
      for (const auto& [prev, _] : v.object_) {
        if (prev == key) fail("duplicate object key \"" + key + "\"");
      }
      skip_ws();
      expect(':');
      v.object_.emplace_back(std::move(key), parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array(int depth) {
    expect('[');
    JsonValue v;
    v.kind_ = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array_.push_back(parse_value(depth + 1));
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape digit");
          }
          // The emitters only escape control characters, so BMP coverage
          // via direct UTF-8 encoding is sufficient; surrogate pairs are
          // rejected rather than silently mangled.
          if (cp >= 0xD800 && cp <= 0xDFFF) fail("surrogate \\u escape");
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    const auto digits = [&] {
      std::size_t n = 0;
      while (pos_ < text_.size() && text_[pos_] >= '0' && text_[pos_] <= '9') {
        ++pos_;
        ++n;
      }
      return n;
    };
    // JSON grammar: int part is 0 or [1-9][0-9]*; leading zeros rejected.
    const std::size_t int_start = pos_;
    if (digits() == 0) fail("bad number");
    if (text_[int_start] == '0' && pos_ - int_start > 1) {
      fail("leading zero in number");
    }
    if (pos_ < text_.size() && text_[pos_] == '.') {
      ++pos_;
      if (digits() == 0) fail("bad number fraction");
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      if (digits() == 0) fail("bad number exponent");
    }
    const std::string token(text_.substr(start, pos_ - start));
    JsonValue v;
    v.kind_ = JsonValue::Kind::kNumber;
    v.number_ = std::strtod(token.c_str(), nullptr);
    if (!std::isfinite(v.number_)) fail("number out of range");
    // Keep the source token: exact u64 reads (as_unsigned) must not go
    // through the double, which cannot represent every 64-bit integer.
    v.string_ = token;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue JsonValue::parse(std::string_view text) {
  return JsonParser(text).parse_document();
}

bool JsonValue::as_bool(const std::string& what) const {
  if (kind_ != Kind::kBool) kind_error(what, "bool", kind_);
  return bool_;
}

double JsonValue::as_number(const std::string& what) const {
  if (kind_ != Kind::kNumber) kind_error(what, "number", kind_);
  return number_;
}

std::uint64_t JsonValue::as_unsigned(const std::string& what) const {
  if (kind_ != Kind::kNumber) kind_error(what, "number", kind_);
  const auto bad = [&]() -> std::uint64_t {
    throw UsageError(strformat(
        "json: %s: expected a nonnegative integer (got %s)", what.c_str(),
        string_.c_str()));
  };
  const bool plain_digits =
      !string_.empty() &&
      string_.find_first_not_of("0123456789") == std::string::npos;
  if (plain_digits) {
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(string_.c_str(), &end, 10);
    if (errno == ERANGE || end != string_.c_str() + string_.size()) {
      return bad();
    }
    return static_cast<std::uint64_t>(v);
  }
  // Scientific / fractional spellings ("5e3") are accepted only while the
  // double is exactly integral and small enough to be exact.
  if (!(number_ >= 0.0) || number_ != std::floor(number_) ||
      number_ > 9007199254740992.0) {
    return bad();
  }
  return static_cast<std::uint64_t>(number_);
}

const std::string& JsonValue::as_string(const std::string& what) const {
  if (kind_ != Kind::kString) kind_error(what, "string", kind_);
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array(
    const std::string& what) const {
  if (kind_ != Kind::kArray) kind_error(what, "array", kind_);
  return array_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : object_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members(
    const std::string& what) const {
  if (kind_ != Kind::kObject) kind_error(what, "object", kind_);
  return object_;
}

std::string json_escape_string(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += strformat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

std::string json_double(double v) {
  if (!std::isfinite(v)) return "null";
  for (int prec = 6; prec <= 17; ++prec) {
    std::string s = strformat("%.*g", prec, v);
    if (std::strtod(s.c_str(), nullptr) == v) return s;
  }
  return strformat("%.17g", v);
}

}  // namespace llamp
