#pragma once

#include <string>
#include <vector>

namespace llamp {

/// Minimal aligned-column table printer used by the benchmark harnesses to
/// emit the paper's tables (Table I, Table II, tolerance summaries) on
/// stdout, plus a CSV emitter for downstream plotting.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append a row; must have the same arity as the header.
  void add_row(std::vector<std::string> cells);

  /// Render with space-padded columns and a separator under the header.
  std::string to_string() const;

  /// Render as CSV (no quoting beyond commas-are-forbidden-in-cells; cells
  /// containing commas are wrapped in double quotes).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

  /// Raw cell access for the structured emitters in core/report.*
  /// (e.g. the JSON renderer keys objects by header name).
  const std::vector<std::string>& headers() const { return headers_; }
  const std::vector<std::vector<std::string>>& data() const { return rows_; }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace llamp
