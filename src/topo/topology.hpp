#pragma once

#include <memory>
#include <string>
#include <vector>

namespace llamp::topo {

/// Per-route structure between two *nodes* of a physical topology: how many
/// switches the minimal route traverses and how its wires split into
/// classes.  The paper's topology analysis (§IV-2, Appendix H) prices a
/// route at (h+1)·l_wire + h·d_switch with h = number of switches; the
/// Dragonfly refinement (Fig. 19) distinguishes terminal, intra-group, and
/// inter-group wires.
struct Path {
  int switches = 0;     ///< h
  int tc_wires = 0;     ///< host <-> switch terminal channels
  int intra_wires = 0;  ///< switch <-> switch inside a group / pod
  int inter_wires = 0;  ///< global (inter-group / core-level) wires
  int total_wires() const { return tc_wires + intra_wires + inter_wires; }
};

/// A physical network topology: a set of nodes with minimal-route metadata
/// between every pair.
class Topology {
 public:
  virtual ~Topology() = default;
  virtual int nnodes() const = 0;
  /// Minimal route between two distinct nodes.  a == b is invalid.
  virtual Path path(int a, int b) const = 0;
  virtual std::string name() const = 0;
};

/// Three-tier Fat Tree of radix-k switches (Al-Fares et al.): k pods, each
/// with k/2 edge and k/2 aggregation switches, (k/2)^2 core switches, and
/// k^3/4 hosts.  Minimal routes traverse 1 / 3 / 5 switches for same-edge /
/// same-pod / cross-pod pairs.  Hosts are densely packed: nodes 0..k/2-1
/// share the first edge switch, and so on (the paper's packing assumption).
class FatTree final : public Topology {
 public:
  explicit FatTree(int k);

  int radix() const { return k_; }
  int nnodes() const override;
  Path path(int a, int b) const override;
  std::string name() const override;

 private:
  int k_;
};

/// Dragonfly (Kim et al.) with g groups, a switches per group, p hosts per
/// switch; groups are fully connected pairwise by one global link whose
/// endpoints rotate over the switches of each group (consecutive
/// arrangement).  Minimal routes traverse 1 (same switch), 2 (same group),
/// or 2..4 (cross group, depending on gateway positions) switches.
class Dragonfly final : public Topology {
 public:
  Dragonfly(int groups, int switches_per_group, int hosts_per_switch);

  int groups() const { return g_; }
  int switches_per_group() const { return a_; }
  int hosts_per_switch() const { return p_; }
  int nnodes() const override;
  Path path(int a, int b) const override;
  std::string name() const override;

  /// Switch within a group hosting the global link toward `to_group`.
  int gateway_switch(int group, int to_group) const;

 private:
  int g_, a_, p_;
};

}  // namespace llamp::topo
