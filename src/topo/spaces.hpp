#pragma once

#include <vector>

#include "lp/param_space.hpp"
#include "topo/topology.hpp"

namespace llamp::topo {

/// rank -> node mapping helpers.
std::vector<int> identity_placement(int nranks);

/// §IV-2 / Fig. 11: all wires share one decision variable l_wire and every
/// switch adds the fixed d_switch, so rank pair (i, j) communicates at
/// (h+1)·l_wire + h·d_switch with h taken from the topology's minimal route
/// between π(i) and π(j).  Setting l_wire's base value and solving
/// ∂T/∂l_wire quantifies sensitivity to per-wire (e.g. FEC-induced) latency.
lp::LinkClassParamSpace make_wire_latency_space(
    const loggops::Params& p, const Topology& topo,
    const std::vector<int>& placement, double l_wire_base, double d_switch);

/// Appendix H / Fig. 19: Dragonfly with separate decision variables for
/// terminal channels (l_tc), intra-group wires (l_intra), and inter-group
/// wires (l_inter).  Tolerance of one class is obtained by fixing the other
/// two at their base values (the ParametricSolver's active-parameter
/// mechanism does exactly that).
lp::LinkClassParamSpace make_dragonfly_class_space(
    const loggops::Params& p, const Dragonfly& topo,
    const std::vector<int>& placement, double l_tc_base, double l_intra_base,
    double l_inter_base, double d_switch);

/// HLogGP builder (Appendix I): pairwise latency/gap matrices derived from a
/// topology, where each pair's base latency is (h+1)·l_wire + h·d_switch and
/// the gap is uniform.  Feeds PairwiseLatencyParamSpace and the placement
/// algorithm.
struct PairwiseMatrices {
  std::vector<double> latency;  ///< row-major nranks x nranks, zero diagonal
  std::vector<double> gap;
};
PairwiseMatrices make_pairwise_matrices(const loggops::Params& p,
                                        const Topology& topo,
                                        const std::vector<int>& placement,
                                        double l_wire, double d_switch);

}  // namespace llamp::topo
