#include "topo/spaces.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::topo {

namespace {

void check_placement(const Topology& topo, const std::vector<int>& placement) {
  if (placement.empty()) throw TopoError("empty placement");
  std::vector<bool> used(static_cast<std::size_t>(topo.nnodes()), false);
  for (const int node : placement) {
    if (node < 0 || node >= topo.nnodes()) {
      throw TopoError(strformat("placement maps a rank to node %d outside "
                                "%s", node, topo.name().c_str()));
    }
    if (used[static_cast<std::size_t>(node)]) {
      throw TopoError(strformat("placement maps two ranks to node %d", node));
    }
    used[static_cast<std::size_t>(node)] = true;
  }
}

}  // namespace

std::vector<int> identity_placement(int nranks) {
  std::vector<int> out(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) out[static_cast<std::size_t>(r)] = r;
  return out;
}

lp::LinkClassParamSpace make_wire_latency_space(
    const loggops::Params& p, const Topology& topo,
    const std::vector<int>& placement, double l_wire_base, double d_switch) {
  check_placement(topo, placement);
  const int n = static_cast<int>(placement.size());
  std::vector<lp::LinkClassParamSpace::Route> routes(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      auto& route = routes[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(j)];
      route.counts.assign(1, 0.0);
      if (i == j) continue;
      const Path path = topo.path(placement[static_cast<std::size_t>(i)],
                                  placement[static_cast<std::size_t>(j)]);
      route.counts[0] = static_cast<double>(path.total_wires());
      route.constant = static_cast<double>(path.switches) * d_switch;
    }
  }
  return lp::LinkClassParamSpace(p, {"l_wire"}, {l_wire_base},
                                 std::move(routes), n);
}

lp::LinkClassParamSpace make_dragonfly_class_space(
    const loggops::Params& p, const Dragonfly& topo,
    const std::vector<int>& placement, double l_tc_base, double l_intra_base,
    double l_inter_base, double d_switch) {
  check_placement(topo, placement);
  const int n = static_cast<int>(placement.size());
  std::vector<lp::LinkClassParamSpace::Route> routes(
      static_cast<std::size_t>(n) * static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      auto& route = routes[static_cast<std::size_t>(i) *
                               static_cast<std::size_t>(n) +
                           static_cast<std::size_t>(j)];
      route.counts.assign(3, 0.0);
      if (i == j) continue;
      const Path path = topo.path(placement[static_cast<std::size_t>(i)],
                                  placement[static_cast<std::size_t>(j)]);
      route.counts[0] = static_cast<double>(path.tc_wires);
      route.counts[1] = static_cast<double>(path.intra_wires);
      route.counts[2] = static_cast<double>(path.inter_wires);
      route.constant = static_cast<double>(path.switches) * d_switch;
    }
  }
  return lp::LinkClassParamSpace(p, {"l_tc", "l_intra", "l_inter"},
                                 {l_tc_base, l_intra_base, l_inter_base},
                                 std::move(routes), n);
}

PairwiseMatrices make_pairwise_matrices(const loggops::Params& p,
                                        const Topology& topo,
                                        const std::vector<int>& placement,
                                        double l_wire, double d_switch) {
  check_placement(topo, placement);
  const int n = static_cast<int>(placement.size());
  PairwiseMatrices out;
  out.latency.assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                     0.0);
  out.gap.assign(out.latency.size(), p.G);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) {
      if (i == j) continue;
      const Path path = topo.path(placement[static_cast<std::size_t>(i)],
                                  placement[static_cast<std::size_t>(j)]);
      out.latency[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
                  static_cast<std::size_t>(j)] =
          static_cast<double>(path.total_wires()) * l_wire +
          static_cast<double>(path.switches) * d_switch;
    }
  }
  return out;
}

}  // namespace llamp::topo
