#include "topo/topology.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::topo {

FatTree::FatTree(int k) : k_(k) {
  if (k < 2 || k % 2 != 0) {
    throw TopoError("fat tree radix must be an even integer >= 2");
  }
}

int FatTree::nnodes() const { return k_ * k_ * k_ / 4; }

Path FatTree::path(int a, int b) const {
  if (a == b || a < 0 || b < 0 || a >= nnodes() || b >= nnodes()) {
    throw TopoError(strformat("fat tree: bad node pair (%d, %d)", a, b));
  }
  const int hosts_per_edge = k_ / 2;
  const int hosts_per_pod = k_ * k_ / 4;
  const int edge_a = a / hosts_per_edge;
  const int edge_b = b / hosts_per_edge;
  const int pod_a = a / hosts_per_pod;
  const int pod_b = b / hosts_per_pod;
  Path p;
  p.tc_wires = 2;
  if (edge_a == edge_b) {
    p.switches = 1;  // host - edge - host
  } else if (pod_a == pod_b) {
    p.switches = 3;  // edge - agg - edge
    p.intra_wires = 2;
  } else {
    p.switches = 5;  // edge - agg - core - agg - edge
    p.intra_wires = 2;
    p.inter_wires = 2;  // agg <-> core links cross the pod boundary
  }
  return p;
}

std::string FatTree::name() const {
  return strformat("fat-tree(k=%d, %d nodes)", k_, nnodes());
}

Dragonfly::Dragonfly(int groups, int switches_per_group, int hosts_per_switch)
    : g_(groups), a_(switches_per_group), p_(hosts_per_switch) {
  if (groups < 2 || switches_per_group < 1 || hosts_per_switch < 1) {
    throw TopoError("dragonfly: need g >= 2, a >= 1, p >= 1");
  }
}

int Dragonfly::nnodes() const { return g_ * a_ * p_; }

int Dragonfly::gateway_switch(int group, int to_group) const {
  if (group == to_group) throw TopoError("dragonfly: no self gateway");
  // Group `group`'s global links are enumerated toward groups
  // (group+1), (group+2), ... mod g and distributed round-robin over its
  // switches (the "consecutive" arrangement).
  const int k = (to_group - group - 1 + g_) % g_;
  return k % a_;
}

Path Dragonfly::path(int a, int b) const {
  if (a == b || a < 0 || b < 0 || a >= nnodes() || b >= nnodes()) {
    throw TopoError(strformat("dragonfly: bad node pair (%d, %d)", a, b));
  }
  const int sw_a = a / p_;
  const int sw_b = b / p_;
  const int grp_a = sw_a / a_;
  const int grp_b = sw_b / a_;
  const int loc_a = sw_a % a_;
  const int loc_b = sw_b % a_;
  Path p;
  p.tc_wires = 2;
  if (sw_a == sw_b) {
    p.switches = 1;
    return p;
  }
  if (grp_a == grp_b) {
    p.switches = 2;  // groups are cliques internally
    p.intra_wires = 1;
    return p;
  }
  const int gw_a = gateway_switch(grp_a, grp_b);
  const int gw_b = gateway_switch(grp_b, grp_a);
  p.switches = 2 + (loc_a != gw_a ? 1 : 0) + (loc_b != gw_b ? 1 : 0);
  p.intra_wires = (loc_a != gw_a ? 1 : 0) + (loc_b != gw_b ? 1 : 0);
  p.inter_wires = 1;
  return p;
}

std::string Dragonfly::name() const {
  return strformat("dragonfly(g=%d, a=%d, p=%d, %d nodes)", g_, a_, p_,
                   nnodes());
}

}  // namespace llamp::topo
