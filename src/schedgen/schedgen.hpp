#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "schedgen/midop.hpp"
#include "schedgen/options.hpp"
#include "trace/trace.hpp"

namespace llamp::schedgen {

/// Schedgen: converts an MPI trace into an execution graph (§II-A).
///
/// Phase 1 infers computation from inter-event timestamp gaps and expands
/// collectives into point-to-point algorithms, producing per-rank MidOp
/// streams.  Phase 2 materializes graph vertices, chains program order,
/// matches sends to receives with MPI non-overtaking semantics, and emits
/// the protocol-specific edges (eager vs rendezvous, decided by
/// `Options::rendezvous_threshold`).
///
/// Throws TraceError / SchedError / GraphError on malformed input, unmatched
/// messages, or deadlocks (a cycle through rendezvous dependencies).
graph::Graph build_graph(const trace::Trace& t, const Options& opts = {});

/// Phase 1 in isolation, exposed for testing and for callers that want to
/// inspect or transform the p2p schedule before graph construction.
std::vector<MidStream> expand_trace(const trace::Trace& t, const Options& opts);

/// Phase 2 in isolation: build an execution graph from per-rank MidOp
/// streams (useful for hand-written schedules in tests and examples).
graph::Graph build_graph_from_streams(const std::vector<MidStream>& streams,
                                      const Options& opts = {});

}  // namespace llamp::schedgen
