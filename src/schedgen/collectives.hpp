#pragma once

#include <cstdint>

#include "schedgen/midop.hpp"
#include "schedgen/options.hpp"

namespace llamp::schedgen {

/// Per-rank expansion of collective operations into point-to-point
/// algorithms.  Each function appends rank `rank`'s share of the algorithm
/// to `out`; calling it for every rank 0..P-1 yields a globally consistent
/// schedule (every emitted send has exactly one matching recv).
///
/// `next_req` is the rank's nonblocking-request counter; expansions that use
/// isend/irecv draw ids from it.  All collective traffic uses the reserved
/// tag `kCollectiveTag`; matching remains unambiguous because MPI ordering
/// (k-th send from A to B with tag t matches k-th recv) is preserved by
/// construction.
inline constexpr int kCollectiveTag = -2;

struct ExpandContext {
  MidStream& out;
  int rank;
  int nranks;
  std::int64_t& next_req;
};

void expand_barrier(ExpandContext ctx, BarrierAlgo algo);
void expand_bcast(ExpandContext ctx, std::uint64_t bytes, int root,
                  BcastAlgo algo);
void expand_reduce(ExpandContext ctx, std::uint64_t bytes, int root,
                   ReduceAlgo algo);
void expand_allreduce(ExpandContext ctx, std::uint64_t bytes,
                      AllreduceAlgo algo);
void expand_allgather(ExpandContext ctx, std::uint64_t bytes,
                      AllgatherAlgo algo);
void expand_reduce_scatter(ExpandContext ctx, std::uint64_t bytes,
                           ReduceScatterAlgo algo);
void expand_gather(ExpandContext ctx, std::uint64_t bytes, int root,
                   GatherAlgo algo);
void expand_scatter(ExpandContext ctx, std::uint64_t bytes, int root,
                    ScatterAlgo algo);
void expand_alltoall(ExpandContext ctx, std::uint64_t bytes,
                     AlltoallAlgo algo);

}  // namespace llamp::schedgen
