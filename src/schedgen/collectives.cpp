#include "schedgen/collectives.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::schedgen {

namespace {

/// Largest power of two not exceeding n (n >= 1).
int floor_pof2(int n) {
  int p = 1;
  while (p * 2 <= n) p *= 2;
  return p;
}

/// Simultaneous exchange with one partner: irecv + isend, then wait for
/// both.  This is the building block of recursive doubling and the ring
/// steps (MPI_Sendrecv semantics).
void sendrecv(ExpandContext& ctx, int partner, std::uint64_t send_bytes,
              std::uint64_t recv_bytes) {
  const std::int64_t rreq = ctx.next_req++;
  const std::int64_t sreq = ctx.next_req++;
  ctx.out.push_back(MidOp::irecv(partner, recv_bytes, kCollectiveTag, rreq));
  ctx.out.push_back(MidOp::isend(partner, send_bytes, kCollectiveTag, sreq));
  ctx.out.push_back(MidOp::wait(rreq));
  ctx.out.push_back(MidOp::wait(sreq));
}

void blocking_send(ExpandContext& ctx, int peer, std::uint64_t bytes) {
  ctx.out.push_back(MidOp::send(peer, bytes, kCollectiveTag));
}

void blocking_recv(ExpandContext& ctx, int peer, std::uint64_t bytes) {
  ctx.out.push_back(MidOp::recv(peer, bytes, kCollectiveTag));
}

/// Per-rank chunk size for ring reduce-scatter/allgather phases.
std::uint64_t ring_chunk(std::uint64_t bytes, int nranks) {
  if (bytes == 0) return 0;
  return (bytes + static_cast<std::uint64_t>(nranks) - 1) /
         static_cast<std::uint64_t>(nranks);
}

void binomial_bcast(ExpandContext& ctx, std::uint64_t bytes, int root) {
  const int P = ctx.nranks;
  const int rel = (ctx.rank - root + P) % P;
  int mask = 1;
  while (mask < P) {
    if (rel & mask) {
      const int src = (rel - mask + root) % P;
      blocking_recv(ctx, src, bytes);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (rel + mask < P) {
      const int dst = (rel + mask + root) % P;
      blocking_send(ctx, dst, bytes);
    }
    mask >>= 1;
  }
}

void linear_bcast(ExpandContext& ctx, std::uint64_t bytes, int root) {
  if (ctx.rank == root) {
    for (int r = 0; r < ctx.nranks; ++r) {
      if (r != root) blocking_send(ctx, r, bytes);
    }
  } else {
    blocking_recv(ctx, root, bytes);
  }
}

void binomial_reduce(ExpandContext& ctx, std::uint64_t bytes, int root) {
  const int P = ctx.nranks;
  const int rel = (ctx.rank - root + P) % P;
  int mask = 1;
  while (mask < P) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < P) {
        blocking_recv(ctx, (src_rel + root) % P, bytes);
      }
    } else {
      const int dst = ((rel & ~mask) + root) % P;
      blocking_send(ctx, dst, bytes);
      break;
    }
    mask <<= 1;
  }
}

void linear_reduce(ExpandContext& ctx, std::uint64_t bytes, int root) {
  if (ctx.rank == root) {
    for (int r = 0; r < ctx.nranks; ++r) {
      if (r != root) blocking_recv(ctx, r, bytes);
    }
  } else {
    blocking_send(ctx, root, bytes);
  }
}

/// MPICH-style recursive-doubling allreduce with the standard fold for
/// non-power-of-two rank counts: the first 2·rem ranks pre-combine pairwise
/// so that a power-of-two subgroup runs the doubling rounds, then the idled
/// ranks receive the result.
void recursive_doubling_allreduce(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  const int rank = ctx.rank;
  const int pof2 = floor_pof2(P);
  const int rem = P - pof2;

  int newrank;
  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      blocking_send(ctx, rank + 1, bytes);
      newrank = -1;  // idles during the doubling rounds
    } else {
      blocking_recv(ctx, rank - 1, bytes);
      newrank = rank / 2;
    }
  } else {
    newrank = rank - rem;
  }

  if (newrank != -1) {
    for (int mask = 1; mask < pof2; mask <<= 1) {
      const int partner_new = newrank ^ mask;
      const int partner =
          partner_new < rem ? partner_new * 2 + 1 : partner_new + rem;
      sendrecv(ctx, partner, bytes, bytes);
    }
  }

  if (rank < 2 * rem) {
    if (rank % 2 == 0) {
      blocking_recv(ctx, rank + 1, bytes);
    } else {
      blocking_send(ctx, rank - 1, bytes);
    }
  }
}

/// Ring allreduce: P-1 reduce-scatter steps followed by P-1 allgather
/// steps, each moving one s/P chunk to the right neighbor.  The long chain
/// of dependent messages is exactly what makes this algorithm latency
/// sensitive (Fig. 10 of the paper).
void ring_allreduce(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  if (P == 1) return;
  const std::uint64_t chunk = ring_chunk(bytes, P);
  const int right = (ctx.rank + 1) % P;
  const int left = (ctx.rank - 1 + P) % P;
  for (int phase = 0; phase < 2; ++phase) {
    for (int step = 0; step < P - 1; ++step) {
      // Receive the incoming chunk before forwarding the next one: the
      // dependence chain around the ring is intentional.
      const std::int64_t rreq = ctx.next_req++;
      const std::int64_t sreq = ctx.next_req++;
      ctx.out.push_back(MidOp::irecv(left, chunk, kCollectiveTag, rreq));
      ctx.out.push_back(MidOp::isend(right, chunk, kCollectiveTag, sreq));
      ctx.out.push_back(MidOp::wait(rreq));
      ctx.out.push_back(MidOp::wait(sreq));
    }
  }
}

/// Ring allgather (send right, receive left, P-1 steps).
void ring_allgather_explicit(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  if (P == 1) return;
  const int right = (ctx.rank + 1) % P;
  const int left = (ctx.rank - 1 + P) % P;
  for (int step = 0; step < P - 1; ++step) {
    const std::int64_t rreq = ctx.next_req++;
    const std::int64_t sreq = ctx.next_req++;
    ctx.out.push_back(MidOp::irecv(left, bytes, kCollectiveTag, rreq));
    ctx.out.push_back(MidOp::isend(right, bytes, kCollectiveTag, sreq));
    ctx.out.push_back(MidOp::wait(rreq));
    ctx.out.push_back(MidOp::wait(sreq));
  }
}

/// Recursive-doubling allgather (power-of-two only; callers fall back to the
/// ring otherwise).  The exchanged volume doubles each round.
void recursive_doubling_allgather(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  std::uint64_t vol = bytes;
  for (int mask = 1; mask < P; mask <<= 1) {
    const int partner = ctx.rank ^ mask;
    sendrecv(ctx, partner, vol, vol);
    vol *= 2;
  }
}

void ring_reduce_scatter(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  if (P == 1) return;
  const std::uint64_t chunk = ring_chunk(bytes, P);
  const int right = (ctx.rank + 1) % P;
  const int left = (ctx.rank - 1 + P) % P;
  for (int step = 0; step < P - 1; ++step) {
    const std::int64_t rreq = ctx.next_req++;
    const std::int64_t sreq = ctx.next_req++;
    ctx.out.push_back(MidOp::irecv(left, chunk, kCollectiveTag, rreq));
    ctx.out.push_back(MidOp::isend(right, chunk, kCollectiveTag, sreq));
    ctx.out.push_back(MidOp::wait(rreq));
    ctx.out.push_back(MidOp::wait(sreq));
  }
}

/// Binomial gather: each subtree root forwards its accumulated subtree
/// payload to its parent.
void binomial_gather(ExpandContext& ctx, std::uint64_t bytes, int root) {
  const int P = ctx.nranks;
  const int rel = (ctx.rank - root + P) % P;
  auto subtree_ranks = [&](int subroot_rel, int mask) {
    // Subtree rooted at subroot_rel spans [subroot_rel, subroot_rel+mask).
    const int hi = subroot_rel + mask;
    return static_cast<std::uint64_t>((hi > P ? P : hi) - subroot_rel);
  };
  int mask = 1;
  while (mask < P) {
    if ((rel & mask) == 0) {
      const int src_rel = rel | mask;
      if (src_rel < P) {
        blocking_recv(ctx, (src_rel + root) % P,
                      bytes * subtree_ranks(src_rel, mask));
      }
    } else {
      const int dst = ((rel & ~mask) + root) % P;
      blocking_send(ctx, dst, bytes * subtree_ranks(rel, mask));
      break;
    }
    mask <<= 1;
  }
}

/// Binomial scatter: the mirror image of gather (parents split their block
/// and forward the halves down the tree).
void binomial_scatter_impl(ExpandContext& ctx, std::uint64_t bytes, int root) {
  const int P = ctx.nranks;
  const int rel = (ctx.rank - root + P) % P;
  auto subtree_ranks = [&](int subroot_rel, int mask) {
    const int hi = subroot_rel + mask;
    return static_cast<std::uint64_t>((hi > P ? P : hi) - subroot_rel);
  };
  // Find the receiving step (from parent), then the forwarding steps.
  int recv_mask = 0;
  int mask = 1;
  while (mask < P) {
    if (rel & mask) {
      recv_mask = mask;
      break;
    }
    mask <<= 1;
  }
  if (recv_mask != 0) {
    const int src = ((rel & ~recv_mask) + root) % P;
    blocking_recv(ctx, src, bytes * subtree_ranks(rel, recv_mask));
  }
  // Forward to children: masks below the receive mask (or below P for root).
  int top = recv_mask == 0 ? floor_pof2(P) : recv_mask >> 1;
  for (int m = top; m > 0; m >>= 1) {
    const int dst_rel = rel | m;
    if (dst_rel < P && dst_rel != rel) {
      blocking_send(ctx, (dst_rel + root) % P, bytes * subtree_ranks(dst_rel, m));
    }
  }
}

void linear_alltoall(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  std::vector<std::int64_t> reqs;
  for (int k = 1; k < P; ++k) {
    const int src = (ctx.rank - k + P) % P;
    const std::int64_t rreq = ctx.next_req++;
    ctx.out.push_back(MidOp::irecv(src, bytes, kCollectiveTag, rreq));
    reqs.push_back(rreq);
  }
  for (int k = 1; k < P; ++k) {
    const int dst = (ctx.rank + k) % P;
    const std::int64_t sreq = ctx.next_req++;
    ctx.out.push_back(MidOp::isend(dst, bytes, kCollectiveTag, sreq));
    reqs.push_back(sreq);
  }
  for (const auto r : reqs) ctx.out.push_back(MidOp::wait(r));
}

void pairwise_alltoall(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  for (int k = 1; k < P; ++k) {
    // XOR pairing needs a power of two; otherwise shift pairing.
    const bool pof2 = (P & (P - 1)) == 0;
    const int partner = pof2 ? (ctx.rank ^ k)
                             : -1;
    if (pof2) {
      sendrecv(ctx, partner, bytes, bytes);
    } else {
      const int dst = (ctx.rank + k) % P;
      const int src = (ctx.rank - k + P) % P;
      const std::int64_t rreq = ctx.next_req++;
      const std::int64_t sreq = ctx.next_req++;
      ctx.out.push_back(MidOp::irecv(src, bytes, kCollectiveTag, rreq));
      ctx.out.push_back(MidOp::isend(dst, bytes, kCollectiveTag, sreq));
      ctx.out.push_back(MidOp::wait(rreq));
      ctx.out.push_back(MidOp::wait(sreq));
    }
  }
}

/// van de Geijn bcast: binomial scatter of s/P chunks from the root, then
/// a ring allgather reassembles the full payload everywhere.
void scatter_allgather_bcast(ExpandContext& ctx, std::uint64_t bytes,
                             int root) {
  const int P = ctx.nranks;
  const std::uint64_t chunk = ring_chunk(bytes, P);
  binomial_scatter_impl(ctx, chunk, root);
  const int right = (ctx.rank + 1) % P;
  const int left = (ctx.rank - 1 + P) % P;
  for (int step = 0; step < P - 1; ++step) {
    const std::int64_t rreq = ctx.next_req++;
    const std::int64_t sreq = ctx.next_req++;
    ctx.out.push_back(MidOp::irecv(left, chunk, kCollectiveTag, rreq));
    ctx.out.push_back(MidOp::isend(right, chunk, kCollectiveTag, sreq));
    ctx.out.push_back(MidOp::wait(rreq));
    ctx.out.push_back(MidOp::wait(sreq));
  }
}

/// Bruck alltoall: ceil(log2 P) rounds; in round k every rank forwards the
/// blocks whose destination offset has bit k set — aggregated messages in
/// exchange for extra local data movement.
void bruck_alltoall(ExpandContext& ctx, std::uint64_t bytes) {
  const int P = ctx.nranks;
  for (int k = 1; k < P; k <<= 1) {
    // Number of destination offsets j in [1, P) with bit k set.
    int blocks = 0;
    for (int j = 1; j < P; ++j) {
      if (j & k) ++blocks;
    }
    const std::uint64_t volume =
        std::max<std::uint64_t>(bytes * static_cast<std::uint64_t>(blocks), 1);
    const int to = (ctx.rank - k + P) % P;
    const int from = (ctx.rank + k) % P;
    const std::int64_t rreq = ctx.next_req++;
    const std::int64_t sreq = ctx.next_req++;
    ctx.out.push_back(MidOp::irecv(from, volume, kCollectiveTag, rreq));
    ctx.out.push_back(MidOp::isend(to, volume, kCollectiveTag, sreq));
    ctx.out.push_back(MidOp::wait(rreq));
    ctx.out.push_back(MidOp::wait(sreq));
  }
}

void dissemination_barrier(ExpandContext& ctx) {
  const int P = ctx.nranks;
  for (int dist = 1; dist < P; dist <<= 1) {
    const int to = (ctx.rank + dist) % P;
    const int from = (ctx.rank - dist + P) % P;
    const std::int64_t rreq = ctx.next_req++;
    const std::int64_t sreq = ctx.next_req++;
    ctx.out.push_back(MidOp::irecv(from, 1, kCollectiveTag, rreq));
    ctx.out.push_back(MidOp::isend(to, 1, kCollectiveTag, sreq));
    ctx.out.push_back(MidOp::wait(rreq));
    ctx.out.push_back(MidOp::wait(sreq));
  }
}

}  // namespace

void expand_barrier(ExpandContext ctx, BarrierAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case BarrierAlgo::kDissemination:
      dissemination_barrier(ctx);
      return;
    case BarrierAlgo::kReduceBcast:
      binomial_reduce(ctx, 1, 0);
      binomial_bcast(ctx, 1, 0);
      return;
  }
  throw SchedError("unknown barrier algorithm");
}

void expand_bcast(ExpandContext ctx, std::uint64_t bytes, int root,
                  BcastAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case BcastAlgo::kBinomialTree: binomial_bcast(ctx, bytes, root); return;
    case BcastAlgo::kLinear: linear_bcast(ctx, bytes, root); return;
    case BcastAlgo::kScatterAllgather:
      scatter_allgather_bcast(ctx, bytes, root);
      return;
  }
  throw SchedError("unknown bcast algorithm");
}

void expand_reduce(ExpandContext ctx, std::uint64_t bytes, int root,
                   ReduceAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case ReduceAlgo::kBinomialTree: binomial_reduce(ctx, bytes, root); return;
    case ReduceAlgo::kLinear: linear_reduce(ctx, bytes, root); return;
  }
  throw SchedError("unknown reduce algorithm");
}

void expand_allreduce(ExpandContext ctx, std::uint64_t bytes,
                      AllreduceAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case AllreduceAlgo::kRecursiveDoubling:
      recursive_doubling_allreduce(ctx, bytes);
      return;
    case AllreduceAlgo::kRing:
      ring_allreduce(ctx, bytes);
      return;
    case AllreduceAlgo::kReduceBcast:
      binomial_reduce(ctx, bytes, 0);
      binomial_bcast(ctx, bytes, 0);
      return;
  }
  throw SchedError("unknown allreduce algorithm");
}

void expand_allgather(ExpandContext ctx, std::uint64_t bytes,
                      AllgatherAlgo algo) {
  if (ctx.nranks == 1) return;
  const bool pof2 = (ctx.nranks & (ctx.nranks - 1)) == 0;
  switch (algo) {
    case AllgatherAlgo::kRing:
      ring_allgather_explicit(ctx, bytes);
      return;
    case AllgatherAlgo::kRecursiveDoubling:
      if (pof2) {
        recursive_doubling_allgather(ctx, bytes);
      } else {
        ring_allgather_explicit(ctx, bytes);  // standard fallback
      }
      return;
  }
  throw SchedError("unknown allgather algorithm");
}

void expand_reduce_scatter(ExpandContext ctx, std::uint64_t bytes,
                           ReduceScatterAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case ReduceScatterAlgo::kRing: ring_reduce_scatter(ctx, bytes); return;
  }
  throw SchedError("unknown reduce_scatter algorithm");
}

void expand_gather(ExpandContext ctx, std::uint64_t bytes, int root,
                   GatherAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case GatherAlgo::kBinomialTree: binomial_gather(ctx, bytes, root); return;
  }
  throw SchedError("unknown gather algorithm");
}

void expand_scatter(ExpandContext ctx, std::uint64_t bytes, int root,
                    ScatterAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case ScatterAlgo::kBinomialTree:
      binomial_scatter_impl(ctx, bytes, root);
      return;
  }
  throw SchedError("unknown scatter algorithm");
}

void expand_alltoall(ExpandContext ctx, std::uint64_t bytes,
                     AlltoallAlgo algo) {
  if (ctx.nranks == 1) return;
  switch (algo) {
    case AlltoallAlgo::kLinear: linear_alltoall(ctx, bytes); return;
    case AlltoallAlgo::kPairwise: pairwise_alltoall(ctx, bytes); return;
    case AlltoallAlgo::kBruck: bruck_alltoall(ctx, bytes); return;
  }
  throw SchedError("unknown alltoall algorithm");
}

}  // namespace llamp::schedgen
