#include "schedgen/schedgen.hpp"

#include <map>
#include <tuple>
#include <unordered_map>

#include "schedgen/collectives.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::schedgen {

namespace {

/// Request ids generated for collective expansions live far above any id a
/// tracer would produce, so they can share the per-rank id space.
constexpr std::int64_t kCollectiveReqBase = std::int64_t{1} << 40;

}  // namespace

std::vector<MidStream> expand_trace(const trace::Trace& t,
                                    const Options& opts) {
  t.validate();
  const int P = t.nranks();
  std::vector<MidStream> streams(static_cast<std::size_t>(P));
  std::vector<std::int64_t> next_req(static_cast<std::size_t>(P),
                                     kCollectiveReqBase);
  for (int r = 0; r < P; ++r) {
    MidStream& out = streams[static_cast<std::size_t>(r)];
    TimeNs prev_end = 0.0;
    bool first = true;
    for (const trace::Event& e : t.rank(r)) {
      if (!first) {
        const TimeNs gap = (e.start - prev_end) * opts.compute_scale;
        if (gap > 0.0) out.push_back(MidOp::calc(gap));
      }
      first = false;
      prev_end = e.end;
      switch (e.op) {
        case trace::Op::kInit:
        case trace::Op::kFinalize:
          break;
        case trace::Op::kSend:
          out.push_back(MidOp::send(e.peer, e.bytes, e.tag));
          break;
        case trace::Op::kRecv:
          out.push_back(MidOp::recv(e.peer, e.bytes, e.tag));
          break;
        case trace::Op::kIsend:
          out.push_back(MidOp::isend(e.peer, e.bytes, e.tag, e.request));
          break;
        case trace::Op::kIrecv:
          out.push_back(MidOp::irecv(e.peer, e.bytes, e.tag, e.request));
          break;
        case trace::Op::kWait:
          out.push_back(MidOp::wait(e.request));
          break;
        case trace::Op::kBarrier:
          expand_barrier({out, r, P, next_req[static_cast<std::size_t>(r)]},
                         opts.barrier);
          break;
        case trace::Op::kBcast:
          expand_bcast({out, r, P, next_req[static_cast<std::size_t>(r)]},
                       e.bytes, e.root, opts.bcast);
          break;
        case trace::Op::kReduce:
          expand_reduce({out, r, P, next_req[static_cast<std::size_t>(r)]},
                        e.bytes, e.root, opts.reduce);
          break;
        case trace::Op::kAllreduce:
          expand_allreduce({out, r, P, next_req[static_cast<std::size_t>(r)]},
                           e.bytes, opts.allreduce);
          break;
        case trace::Op::kAllgather:
          expand_allgather({out, r, P, next_req[static_cast<std::size_t>(r)]},
                           e.bytes, opts.allgather);
          break;
        case trace::Op::kReduceScatter:
          expand_reduce_scatter(
              {out, r, P, next_req[static_cast<std::size_t>(r)]}, e.bytes,
              opts.reduce_scatter);
          break;
        case trace::Op::kGather:
          expand_gather({out, r, P, next_req[static_cast<std::size_t>(r)]},
                        e.bytes, e.root, opts.gather);
          break;
        case trace::Op::kScatter:
          expand_scatter({out, r, P, next_req[static_cast<std::size_t>(r)]},
                         e.bytes, e.root, opts.scatter);
          break;
        case trace::Op::kAlltoall:
          expand_alltoall({out, r, P, next_req[static_cast<std::size_t>(r)]},
                          e.bytes, opts.alltoall);
          break;
      }
    }
  }
  return streams;
}

namespace {

/// State tracked while materializing one rank's stream into graph vertices.
struct RequestInfo {
  bool is_recv = false;
  graph::VertexId vertex = graph::kInvalidVertex;  // send vertex / post vertex
  std::int32_t peer = -1;
  std::uint64_t bytes = 0;
  std::int32_t tag = 0;
  std::size_t recv_slot = 0;  // index into the recv match list (recvs only)
  bool waited = false;
};

using MatchKey = std::tuple<int, int, int>;  // (src, dst, tag)

}  // namespace

graph::Graph build_graph_from_streams(const std::vector<MidStream>& streams,
                                      const Options& opts) {
  const int P = static_cast<int>(streams.size());
  if (P == 0) throw SchedError("no ranks");
  graph::Graph g(P);

  const auto rdzv = [&](std::uint64_t bytes) {
    return bytes >= opts.rendezvous_threshold;
  };

  // Global send/recv match lists per (src, dst, tag), in program order.
  std::map<MatchKey, std::vector<graph::VertexId>> send_slots;
  std::map<MatchKey, std::vector<graph::VertexId>> recv_slots;
  // Post vertex per recv slot (kInvalidVertex for blocking receives).
  std::map<MatchKey, std::vector<graph::VertexId>> recv_posts;
  // For rendezvous sends: where the sender-completion edge must point
  // (the wait vertex for isend, the program successor for blocking send).
  std::unordered_map<graph::VertexId, graph::VertexId> completion_target;

  for (int r = 0; r < P; ++r) {
    std::unordered_map<std::int64_t, RequestInfo> requests;
    // Every rank starts and ends with a zero-cost calc sentinel so that all
    // chains (and rendezvous completion edges) have anchors.
    graph::VertexId prev = g.add_calc(r, 0.0);

    const auto chain = [&](graph::VertexId v, bool add_local = true) {
      if (add_local) g.add_local_edge(prev, v);
      prev = v;
    };

    for (const MidOp& op : streams[static_cast<std::size_t>(r)]) {
      switch (op.kind) {
        case MidOp::Kind::kCalc: {
          chain(g.add_calc(r, op.duration));
          break;
        }
        case MidOp::Kind::kSend: {
          const graph::VertexId v = g.add_send(r, op.peer, op.bytes, op.tag);
          chain(v);
          send_slots[{r, op.peer, op.tag}].push_back(v);
          if (rdzv(op.bytes)) {
            // A blocking rendezvous send is an isend plus an implicit wait:
            // materialize the completion point as a zero-cost anchor so that
            // everything downstream (including a following rendezvous
            // receive's issue time) starts from t_s', not from the send
            // initiation.
            const graph::VertexId anchor = g.add_calc(r, 0.0);
            chain(anchor);
            completion_target[v] = anchor;
          }
          break;
        }
        case MidOp::Kind::kIsend: {
          const graph::VertexId v = g.add_send(r, op.peer, op.bytes, op.tag);
          chain(v);
          send_slots[{r, op.peer, op.tag}].push_back(v);
          RequestInfo info;
          info.is_recv = false;
          info.vertex = v;
          info.peer = op.peer;
          info.bytes = op.bytes;
          info.tag = op.tag;
          if (!requests.emplace(op.request, info).second) {
            throw SchedError(strformat("rank %d: duplicate request %lld", r,
                                       static_cast<long long>(op.request)));
          }
          break;
        }
        case MidOp::Kind::kRecv: {
          const graph::VertexId v = g.add_recv(r, op.peer, op.bytes, op.tag);
          if (rdzv(op.bytes)) {
            // The issue edge subsumes the plain program-order dependency.
            g.add_issue_edge(prev, v, /*through_post=*/false);
            chain(v, /*add_local=*/false);
          } else {
            chain(v);
          }
          recv_slots[{op.peer, r, op.tag}].push_back(v);
          recv_posts[{op.peer, r, op.tag}].push_back(graph::kInvalidVertex);
          break;
        }
        case MidOp::Kind::kIrecv: {
          const graph::VertexId post = g.add_post(r, op.peer);
          chain(post);
          RequestInfo info;
          info.is_recv = true;
          info.vertex = post;
          info.peer = op.peer;
          info.bytes = op.bytes;
          info.tag = op.tag;
          // Reserve the match slot now: MPI matches receives in *posting*
          // order, not wait order.
          auto& slots = recv_slots[{op.peer, r, op.tag}];
          info.recv_slot = slots.size();
          slots.push_back(graph::kInvalidVertex);
          recv_posts[{op.peer, r, op.tag}].push_back(post);
          if (!requests.emplace(op.request, info).second) {
            throw SchedError(strformat("rank %d: duplicate request %lld", r,
                                       static_cast<long long>(op.request)));
          }
          break;
        }
        case MidOp::Kind::kWait: {
          const auto it = requests.find(op.request);
          if (it == requests.end() || it->second.waited) {
            throw SchedError(strformat("rank %d: wait on unknown or already "
                                       "completed request %lld", r,
                                       static_cast<long long>(op.request)));
          }
          RequestInfo& info = it->second;
          info.waited = true;
          if (info.is_recv) {
            const graph::VertexId w =
                g.add_recv(r, info.peer, info.bytes, info.tag);
            chain(w);
            if (rdzv(info.bytes)) {
              g.add_issue_edge(info.vertex, w, /*through_post=*/true);
            }
            recv_slots[{info.peer, r, info.tag}][info.recv_slot] = w;
          } else {
            const graph::VertexId w = g.add_calc(r, 0.0);
            chain(w);
            if (rdzv(info.bytes)) completion_target[info.vertex] = w;
          }
          break;
        }
      }
    }
    // Closing sentinel.
    chain(g.add_calc(r, 0.0));
    for (const auto& [req, info] : requests) {
      if (!info.waited) {
        throw SchedError(strformat("rank %d: request %lld never waited on", r,
                                   static_cast<long long>(req)));
      }
    }
  }

  // Match sends to receives (non-overtaking: k-th send from A to B with tag
  // t pairs with the k-th posted recv at B from A with tag t).
  for (const auto& [key, sends] : send_slots) {
    const auto& [src, dst, tag] = key;
    const auto it = recv_slots.find(key);
    const std::size_t nrecvs = it == recv_slots.end() ? 0 : it->second.size();
    if (nrecvs != sends.size()) {
      throw SchedError(strformat("unmatched messages %d->%d tag %d: %zu "
                                 "send(s) vs %zu recv(s)",
                                 src, dst, tag, sends.size(), nrecvs));
    }
    for (std::size_t k = 0; k < sends.size(); ++k) {
      const graph::VertexId s = sends[k];
      const graph::VertexId rv = it->second[k];
      if (rv == graph::kInvalidVertex) {
        throw SchedError(strformat("recv %d<-%d tag %d slot %zu never "
                                   "completed by a wait", dst, src, tag, k));
      }
      const bool is_rdzv = rdzv(g.vertex(s).bytes);
      g.add_comm_edge(s, rv, is_rdzv);
      if (is_rdzv) {
        const auto ct = completion_target.find(s);
        if (ct != completion_target.end()) {
          const graph::VertexId post = recv_posts[key][k];
          if (post == graph::kInvalidVertex) {
            // Blocking receiver: its recv vertex completes exactly at t_r'.
            g.add_send_completion_edge(rv, ct->second);
          } else {
            // Nonblocking receiver: the handshake does not wait for the
            // receiver's MPI_Wait, only for the posting.
            g.add_handshake_completion_edges(s, post, ct->second);
          }
        }
      }
    }
  }
  // Receives with no matching send at all.
  for (const auto& [key, recvs] : recv_slots) {
    if (send_slots.find(key) == send_slots.end() && !recvs.empty()) {
      const auto& [src, dst, tag] = key;
      throw SchedError(strformat("%zu recv(s) %d<-%d tag %d have no sender",
                                 recvs.size(), dst, src, tag));
    }
  }

  g.finalize();
  return g;
}

graph::Graph build_graph(const trace::Trace& t, const Options& opts) {
  return build_graph_from_streams(expand_trace(t, opts), opts);
}

std::string to_string(AllreduceAlgo a) {
  switch (a) {
    case AllreduceAlgo::kRecursiveDoubling: return "recursive-doubling";
    case AllreduceAlgo::kRing: return "ring";
    case AllreduceAlgo::kReduceBcast: return "reduce+bcast";
  }
  return "?";
}

}  // namespace llamp::schedgen
