#pragma once

#include <cstdint>
#include <vector>

#include "util/time.hpp"

namespace llamp::schedgen {

/// Intermediate per-rank operation stream produced by phase 1 of Schedgen
/// (compute inference + collective expansion) and consumed by phase 2 (graph
/// construction).  It contains only primitives the execution-graph model
/// understands: computation and point-to-point messaging.
struct MidOp {
  enum class Kind : std::uint8_t {
    kCalc,
    kSend,   // blocking
    kRecv,   // blocking
    kIsend,
    kIrecv,
    kWait,
  };

  Kind kind = Kind::kCalc;
  TimeNs duration = 0.0;       ///< kCalc only
  std::int32_t peer = -1;      ///< p2p ops
  std::uint64_t bytes = 0;     ///< p2p ops
  std::int32_t tag = 0;        ///< p2p ops
  std::int64_t request = -1;   ///< kIsend / kIrecv / kWait

  static MidOp calc(TimeNs dur) {
    MidOp m;
    m.kind = Kind::kCalc;
    m.duration = dur;
    return m;
  }
  static MidOp send(int peer, std::uint64_t bytes, int tag) {
    MidOp m;
    m.kind = Kind::kSend;
    m.peer = peer;
    m.bytes = bytes;
    m.tag = tag;
    return m;
  }
  static MidOp recv(int peer, std::uint64_t bytes, int tag) {
    MidOp m;
    m.kind = Kind::kRecv;
    m.peer = peer;
    m.bytes = bytes;
    m.tag = tag;
    return m;
  }
  static MidOp isend(int peer, std::uint64_t bytes, int tag, std::int64_t req) {
    MidOp m = send(peer, bytes, tag);
    m.kind = Kind::kIsend;
    m.request = req;
    return m;
  }
  static MidOp irecv(int peer, std::uint64_t bytes, int tag, std::int64_t req) {
    MidOp m = recv(peer, bytes, tag);
    m.kind = Kind::kIrecv;
    m.request = req;
    return m;
  }
  static MidOp wait(std::int64_t req) {
    MidOp m;
    m.kind = Kind::kWait;
    m.request = req;
    return m;
  }
};

using MidStream = std::vector<MidOp>;

}  // namespace llamp::schedgen
