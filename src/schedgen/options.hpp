#pragma once

#include <cstdint>
#include <string>

namespace llamp::schedgen {

/// Point-to-point algorithm choices for each collective, mirroring the
/// substitution capability of the original Schedgen (§II-A: "Schedgen is
/// able to substitute collective operations with p2p algorithms based on
/// user specifications").  Fig. 10's case study swaps Allreduce between
/// recursive doubling and the ring algorithm.
enum class AllreduceAlgo : std::uint8_t {
  kRecursiveDoubling,
  kRing,
  kReduceBcast,  ///< binomial reduce to rank 0 followed by binomial bcast
};

enum class BcastAlgo : std::uint8_t {
  kBinomialTree,
  kLinear,
  /// van de Geijn: binomial scatter of s/P chunks followed by a ring
  /// allgather — bandwidth-optimal for large payloads.
  kScatterAllgather,
};
enum class ReduceAlgo : std::uint8_t { kBinomialTree, kLinear };
enum class AllgatherAlgo : std::uint8_t { kRing, kRecursiveDoubling };
enum class ReduceScatterAlgo : std::uint8_t { kRing };
enum class BarrierAlgo : std::uint8_t { kDissemination, kReduceBcast };
enum class AlltoallAlgo : std::uint8_t {
  kLinear,
  kPairwise,
  /// Bruck: ceil(log2 P) rounds of aggregated blocks — fewer, larger
  /// messages, the latency-optimal choice for small payloads.
  kBruck,
};
enum class GatherAlgo : std::uint8_t { kBinomialTree };
enum class ScatterAlgo : std::uint8_t { kBinomialTree };

/// Schedgen configuration.
struct Options {
  /// Messages of at least this many bytes use the rendezvous protocol; the
  /// protocol is baked into the emitted graph (edge cost specs), matching
  /// how LogGPS fixes S per system.
  std::uint64_t rendezvous_threshold = 256 * 1024;

  /// Multiplier applied to all inferred compute durations (what-if analyses
  /// and the compute-scaling ablation).
  double compute_scale = 1.0;

  AllreduceAlgo allreduce = AllreduceAlgo::kRecursiveDoubling;
  BcastAlgo bcast = BcastAlgo::kBinomialTree;
  ReduceAlgo reduce = ReduceAlgo::kBinomialTree;
  AllgatherAlgo allgather = AllgatherAlgo::kRing;
  ReduceScatterAlgo reduce_scatter = ReduceScatterAlgo::kRing;
  BarrierAlgo barrier = BarrierAlgo::kDissemination;
  AlltoallAlgo alltoall = AlltoallAlgo::kLinear;
  GatherAlgo gather = GatherAlgo::kBinomialTree;
  ScatterAlgo scatter = ScatterAlgo::kBinomialTree;
};

std::string to_string(AllreduceAlgo a);

}  // namespace llamp::schedgen
