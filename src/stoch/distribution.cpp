#include "stoch/distribution.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::stoch {

double Distribution::sample(Rng& rng, double base_value) const {
  switch (kind) {
    case Kind::kBase:
      return base_value;
    case Kind::kConstant:
      return a;
    case Kind::kNormal:
      // b == 0 degenerates to exactly `a` (0 * z == 0 for finite z), so the
      // zero-variance contract survives taking this branch.
      return std::max(0.0, rng.normal(a, b));
    case Kind::kRelNormal:
      return std::max(0.0, rng.normal(base_value, a * base_value));
    case Kind::kUniform:
      return rng.uniform(a, b);
  }
  throw Error("distribution: bad kind");
}

bool Distribution::degenerate() const {
  switch (kind) {
    case Kind::kBase:
    case Kind::kConstant:
      return true;
    case Kind::kNormal:
      return b == 0.0;
    case Kind::kRelNormal:
      return a == 0.0;
    case Kind::kUniform:
      return a == b;
  }
  return false;
}

void Distribution::validate(const std::string& what) const {
  const auto bad = [&](const char* why) {
    throw UsageError(strformat("distribution %s (%s): %s", to_string().c_str(),
                               what.c_str(), why));
  };
  if (!std::isfinite(a) || !std::isfinite(b)) bad("non-finite parameter");
  switch (kind) {
    case Kind::kBase:
      break;
    case Kind::kConstant:
      if (a < 0.0) bad("negative value for a nonnegative quantity");
      break;
    case Kind::kNormal:
      if (a < 0.0) bad("negative mean for a nonnegative quantity");
      if (b < 0.0) bad("negative stddev");
      break;
    case Kind::kRelNormal:
      if (a < 0.0) bad("negative relative sigma");
      break;
    case Kind::kUniform:
      if (a < 0.0) bad("negative lower bound for a nonnegative quantity");
      if (a > b) bad("inverted bounds");
      break;
  }
}

std::string Distribution::to_string() const {
  // Shortest exact decimals (not %g): the spec string is echoed into JSONL
  // results and re-parseable as a request field, so
  // parse_distribution(to_string()) must reproduce the distribution
  // bitwise, however many digits its parameters carry.
  const auto num = [](double v) { return json_double(v); };
  switch (kind) {
    case Kind::kBase:
      return "base";
    case Kind::kConstant:
      return "const:" + num(a);
    case Kind::kNormal:
      return "normal:" + num(a) + ',' + num(b);
    case Kind::kRelNormal:
      return "relnormal:" + num(a);
    case Kind::kUniform:
      return "uniform:" + num(a) + ',' + num(b);
  }
  return "?";
}

Distribution parse_distribution(const std::string& spec) {
  const auto bad = [&]() -> Distribution {
    throw UsageError(
        "bad distribution spec '" + spec +
        "' (want base, const:V, normal:MEAN,SD, relnormal:SIGMA, or "
        "uniform:LO,HI)");
  };
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  std::vector<double> args;
  if (colon != std::string::npos) {
    for (const auto& field : split(spec.substr(colon + 1), ',')) {
      try {
        args.push_back(parse_double(trim(field)));
      } catch (const Error&) {
        return bad();
      }
    }
  }
  Distribution d;
  if (kind == "base" && args.empty()) {
    d = Distribution::base();
  } else if (kind == "const" && args.size() == 1) {
    d = Distribution::constant(args[0]);
  } else if (kind == "normal" && args.size() == 2) {
    d = Distribution::normal(args[0], args[1]);
  } else if (kind == "relnormal" && args.size() == 1) {
    d = Distribution::rel_normal(args[0]);
  } else if (kind == "uniform" && args.size() == 2) {
    d = Distribution::uniform(args[0], args[1]);
  } else {
    return bad();
  }
  d.validate(spec);
  return d;
}

double EdgeNoise::factor(Rng& rng) const {
  if (degenerate()) return 1.0;
  // The cluster emulator's convention (injector/cluster_emulator.cpp):
  // slowdown-only folded normal on top of the systematic bias.
  return 1.0 + bias + std::fabs(rng.normal(0.0, sigma));
}

void EdgeNoise::validate() const {
  if (!(sigma >= 0.0) || !std::isfinite(sigma)) {
    throw UsageError(
        strformat("edge noise: sigma must be finite and >= 0 (got %g)",
                  sigma));
  }
  if (!(bias > -1.0) || !std::isfinite(bias)) {
    throw UsageError(strformat(
        "edge noise: bias must be finite and > -1 (got %g)", bias));
  }
}

std::uint64_t sample_seed(std::uint64_t seed, std::uint64_t index) {
  // One SplitMix64 round over each word, chained: full 64-bit avalanche, so
  // (seed, i) and (seed, i+1) give unrelated xoshiro seed states.
  std::uint64_t x = seed + 0x9e3779b97f4a7c15ull;
  for (const std::uint64_t word : {index, seed}) {
    x += word + 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    x = x ^ (x >> 31);
  }
  return x;
}

}  // namespace llamp::stoch
