#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "stoch/distribution.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace llamp::lp {
class LoweredProblem;
}  // namespace llamp::lp

namespace llamp::stoch {

/// Monte Carlo uncertainty quantification over the LP analysis: run N
/// perturbed solves of one execution graph — each sample drawing its own
/// LogGPS operating point and (optionally) per-edge cost noise — and stream
/// the per-sample metrics into O(1)-memory summaries.  The output is the
/// distributional version of the deterministic tolerance report: runtime
/// quantiles per ΔL injection, λ_L / ρ_L spread, and tolerance bands with
/// confidence intervals instead of point estimates.
///
/// Determinism contract (DESIGN.md §4c): sample i draws from
/// Rng(sample_seed(seed, i)) with a fixed in-sample draw order (L, o, G,
/// then edge factors in edge-id order), and metrics are reduced into the
/// summaries in ascending sample order whatever the thread count — so the
/// result (and every emitted byte) depends only on (spec, graph), never on
/// --threads.  With samples == 1 and all-degenerate distributions the run
/// reproduces the deterministic analyzer's numbers bitwise.
struct McSpec {
  Distribution L;  ///< absolute network latency [ns]
  Distribution o;  ///< per-message CPU overhead [ns]
  Distribution G;  ///< gap per byte [ns/byte]
  EdgeNoise noise; ///< per-edge multiplicative cost noise

  int samples = 256;
  std::uint64_t seed = 42;
  int threads = 0;  ///< sample parallelism; <= 0 = hardware concurrency
  /// Use the batched sample-axis kernel on the shared-solver fast path
  /// (kBatchWidth samples per forward pass).  Off switches that path back
  /// to per-sample scalar solves; results are bitwise identical either way
  /// (the batch kernel's contract), so this is a perf knob, never a
  /// semantics knob.  Ignored on the general path, which lowers a distinct
  /// problem per sample and cannot batch across samples.
  bool batch = true;

  /// Injection grid: runtime is summarized at every ΔL; λ_L, ρ_L, and the
  /// tolerance bands are evaluated at the first grid point (0 in every CLI
  /// grid).  Must be non-empty with finite entries >= 0.
  std::vector<TimeNs> delta_Ls = {0.0};
  std::vector<double> band_percents = {1.0, 2.0, 5.0};

  /// Throws UsageError on malformed specs (samples < 1, bad distributions,
  /// bad grid).
  void validate() const;
};

/// Streaming summary of one scalar metric across the sample stream:
/// Welford mean/variance plus three P² quantile sketches (5th / 50th /
/// 95th percentile), all O(1) in the sample count.  Non-finite
/// observations (unbounded tolerances) are counted separately — the
/// moments and quantiles summarize the finite samples.
class Summary {
 public:
  void add(double x);

  std::size_t count() const { return stats_.count(); }   ///< finite samples
  std::size_t unbounded() const { return unbounded_; }
  double mean() const { return stats_.mean(); }
  double stddev() const { return stats_.stddev(); }
  double min() const { return stats_.min(); }
  double max() const { return stats_.max(); }
  double q05() const { return q05_.value(); }
  double median() const { return q50_.value(); }
  double q95() const { return q95_.value(); }

 private:
  RunningStats stats_;
  P2Quantile q05_{0.05};
  P2Quantile q50_{0.50};
  P2Quantile q95_{0.95};
  std::size_t unbounded_ = 0;
};

struct McResult {
  loggops::Params base;             ///< the deterministic operating point
  int samples = 0;
  /// Provenance of the evaluation path: whether the run used the batched
  /// sample-axis kernel, and the kernel's lane width (lp::kBatchWidth,
  /// recorded even for scalar runs so emitted configs are self-describing).
  bool batched = false;
  int batch_width = 0;
  std::vector<TimeNs> delta_Ls;
  std::vector<Summary> runtime;     ///< aligned with delta_Ls
  Summary lambda_L;                 ///< at the first grid point
  Summary rho_L;                    ///< at the first grid point
  struct Band {
    double percent = 0.0;
    Summary tolerance_delta;        ///< ΔL tolerance; +inf samples counted
  };
  std::vector<Band> bands;          ///< aligned with spec.band_percents
};

/// The LogGPS operating point all samples share when the spec's o, G, and
/// edge-noise distributions are degenerate — then only the sampled L moves
/// and one parametric LP serves every sample.  Returns `base` with o and G
/// pinned to their (fixed) degenerate draws, or nullopt when samples
/// differ structurally (each lowers its own perturbed space).  This is the
/// exact operating point run_mc's shared-solver fast path analyzes; a
/// caller holding a solver cache can pre-lower it and pass the problem to
/// the run_mc overload below.
std::optional<loggops::Params> shared_operating_point(
    const McSpec& spec, const loggops::Params& base);

/// Run the Monte Carlo analysis of `g` around the operating point `base`.
/// `base` supplies every value the spec's distributions pin to it (kBase /
/// kRelNormal) and the non-sampled LogGPS components (g, O, S).
McResult run_mc(const graph::Graph& g, const loggops::Params& base,
                const McSpec& spec);

/// Same, reusing `lowered` (a cached LatencyParamSpace lowering over `g`
/// at *shared_operating_point(spec, base)) for the shared-solver fast
/// path instead of lowering afresh.  The problem is verified against the
/// run's graph and operating point and silently ignored on mismatch — a
/// wrong cache handle can cost time, never change bytes.
McResult run_mc(const graph::Graph& g, const loggops::Params& base,
                const McSpec& spec,
                std::shared_ptr<const lp::LoweredProblem> lowered);

/// The distributional report as a table: one row per metric — runtime at
/// every ΔL, λ_L, ρ_L, one tolerance band per percent — with streaming
/// summary columns.  `human` selects report formatting (adaptive units);
/// otherwise the numeric CSV/JSON schema (metric, n, unbounded, mean,
/// stddev, min, q05, median, q95, max).  Cells of an all-unbounded metric
/// render as "unbounded".
Table mc_summary_table(const McResult& result, bool human);

}  // namespace llamp::stoch
