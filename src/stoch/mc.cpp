#include "stoch/mc.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <optional>
#include <span>

#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace llamp::stoch {
namespace {

/// Reduction block size: samples are evaluated in blocks of at most this
/// many, their metric rows buffered by in-block index, then folded into the
/// streaming summaries in ascending sample order on the calling thread.
/// The buffer is the only N-independent-but-nonconstant state, so memory is
/// O(kBlock * metrics) whatever the sample count — and because sample i's
/// draws depend only on (seed, i) and the fold order is always 0..N-1, the
/// thread count can never change a single bit of the result.
constexpr std::size_t kBlock = 1024;

/// Per-worker scratch reused across every sample (or sample group) a
/// worker serves.
struct WorkerScratch {
  lp::ParametricSolver::Workspace ws;
  std::vector<double> xs;
  std::vector<lp::ParametricSolver::SweepEval> evals;
  std::vector<double> factors;
  // Batched fast path: one kBatchWidth-wide lane group of samples.
  lp::ParametricSolver::BatchCursor bc;
  std::vector<lp::ParametricSolver::BatchPoint> pts;
  std::vector<double> lane_L;       ///< the group's sampled L draws
  std::vector<double> lane_xs;      ///< lane evaluation points, one ΔL at a time
  std::vector<double> lane_from;    ///< per-lane band-search anchor (ΔL[0])
  std::vector<double> lane_v0;      ///< per-lane T at ΔL[0]
  std::vector<double> lane_budget;
  std::vector<double> lane_tol;
};

}  // namespace

void McSpec::validate() const {
  if (samples < 1) {
    throw UsageError(strformat("mc: need samples >= 1 (got %d)", samples));
  }
  L.validate("L");
  o.validate("o");
  G.validate("G");
  noise.validate();
  if (delta_Ls.empty()) throw UsageError("mc: empty ΔL grid");
  for (const TimeNs d : delta_Ls) {
    if (!(d >= 0.0) || !std::isfinite(d)) {
      throw UsageError(strformat(
          "mc: ΔL grid values must be finite and >= 0 (got %g)", d));
    }
  }
  for (const double pct : band_percents) {
    if (!(pct >= 0.0) || !std::isfinite(pct)) {
      throw UsageError(strformat(
          "mc: tolerance band percent must be finite and >= 0 (got %g)",
          pct));
    }
  }
}

void Summary::add(double x) {
  if (!std::isfinite(x)) {
    ++unbounded_;
    return;
  }
  stats_.add(x);
  q05_.add(x);
  q50_.add(x);
  q95_.add(x);
}

std::optional<loggops::Params> shared_operating_point(
    const McSpec& spec, const loggops::Params& base) {
  if (!(spec.o.degenerate() && spec.G.degenerate() &&
        spec.noise.degenerate())) {
    return std::nullopt;
  }
  // Degenerate distributions return a fixed value whatever the generator
  // state, so the shared operating point can be read with a throwaway Rng
  // (same construction run_mc's samples use, so the bytes agree).
  Rng probe_rng(spec.seed);
  loggops::Params shared = base;
  shared.o = spec.o.sample(probe_rng, base.o);
  shared.G = spec.G.sample(probe_rng, base.G);
  return shared;
}

McResult run_mc(const graph::Graph& g, const loggops::Params& base,
                const McSpec& spec) {
  return run_mc(g, base, spec, nullptr);
}

McResult run_mc(const graph::Graph& g, const loggops::Params& base,
                const McSpec& spec,
                std::shared_ptr<const lp::LoweredProblem> lowered) {
  spec.validate();
  base.validate();

  const std::size_t npts = spec.delta_Ls.size();
  const std::size_t nbands = spec.band_percents.size();
  bool ascending = true;
  for (std::size_t i = 1; i < npts; ++i) {
    if (spec.delta_Ls[i - 1] > spec.delta_Ls[i]) ascending = false;
  }

  // Fast path: when o, G, and the edge noise are all degenerate, every
  // sample analyzes the same parametric LP and only the evaluation point
  // (the sampled L) moves — one solver, built once, serves every worker
  // (solve() is const; all scratch lives in the per-worker workspace).
  // Otherwise each sample lowers its own perturbed space, which is what
  // the paper's "re-measure the operating point and redo the analysis"
  // amounts to.
  const std::optional<loggops::Params> shared_point =
      shared_operating_point(spec, base);
  const bool shared_solver_path = shared_point.has_value();

  loggops::Params shared_params = base;
  std::optional<lp::ParametricSolver> shared;
  if (shared_solver_path) {
    shared_params = *shared_point;
    shared_params.validate();
    // Adopt the caller's cached lowering only if it is verifiably this
    // run's problem: same graph object and the exact shared operating
    // point.  A mismatched handle falls through to a fresh lowering, so a
    // stale cache entry can never change a byte of the result.
    const lp::LatencyParamSpace* cached_space =
        lowered ? dynamic_cast<const lp::LatencyParamSpace*>(
                      &lowered->space())
                : nullptr;
    const auto same_point = [&](const loggops::Params& cp) {
      return cp.L == shared_params.L && cp.o == shared_params.o &&
             cp.g == shared_params.g && cp.G == shared_params.G &&
             cp.O == shared_params.O && cp.S == shared_params.S;
    };
    if (cached_space != nullptr && &lowered->graph() == &g &&
        same_point(cached_space->params())) {
      shared.emplace(std::move(lowered));
    } else {
      shared.emplace(
          g, std::make_shared<lp::LatencyParamSpace>(shared_params));
    }
  }

  // One metric row per sample: runtime at every ΔL, then λ_L, ρ_L, then the
  // per-band ΔL tolerances.
  const std::size_t stride = npts + 2 + nbands;
  const std::size_t total = static_cast<std::size_t>(spec.samples);
  const std::size_t block = std::min(total, kBlock);
  std::vector<double> buffer(block * stride);

  // On the shared-solver path the samples differ only in their L draw, so a
  // whole lane group rides one batched forward pass per ΔL point (and one
  // lockstep search per band) instead of a sweep + three scalar searches
  // per sample.  Bitwise-identical output either way: solve_batch and the
  // lockstep search match their scalar counterparts bit for bit, and the
  // ordered reduction below never changes.
  const bool batched = shared_solver_path && spec.batch;
  const std::size_t ngroups =
      (block + lp::kBatchWidth - 1) / lp::kBatchWidth;
  const int nworkers =
      effective_threads(batched ? ngroups : block, spec.threads);
  std::vector<WorkerScratch> scratch(static_cast<std::size_t>(nworkers));
  for (WorkerScratch& s : scratch) {
    s.xs.resize(npts);
    s.evals.resize(npts);
    if (batched) {
      s.pts.resize(lp::kBatchWidth);
      s.lane_L.resize(lp::kBatchWidth);
      s.lane_xs.resize(lp::kBatchWidth);
      s.lane_from.resize(lp::kBatchWidth);
      s.lane_v0.resize(lp::kBatchWidth);
      s.lane_budget.resize(lp::kBatchWidth);
      s.lane_tol.resize(lp::kBatchWidth);
    }
  }

  McResult res;
  res.base = base;
  res.samples = spec.samples;
  res.batched = batched;
  res.batch_width = static_cast<int>(lp::kBatchWidth);
  res.delta_Ls = spec.delta_Ls;
  res.runtime.resize(npts);
  res.bands.resize(nbands);
  for (std::size_t b = 0; b < nbands; ++b) {
    res.bands[b].percent = spec.band_percents[b];
  }

  // Ordered reduction: ascending sample index, metric-major within a
  // sample — the one place observations meet the streaming sketches, and
  // identical whichever evaluation path filled the buffer.
  const auto fold_block = [&](std::size_t bn) {
    for (std::size_t j = 0; j < bn; ++j) {
      const double* row = buffer.data() + j * stride;
      for (std::size_t k = 0; k < npts; ++k) res.runtime[k].add(row[k]);
      res.lambda_L.add(row[npts]);
      res.rho_L.add(row[npts + 1]);
      for (std::size_t b = 0; b < nbands; ++b) {
        res.bands[b].tolerance_delta.add(row[npts + 2 + b]);
      }
    }
  };

  for (std::size_t block_start = 0; block_start < total;
       block_start += block) {
    const std::size_t bn = std::min(block, total - block_start);
    if (batched) {
      const std::size_t groups = (bn + lp::kBatchWidth - 1) / lp::kBatchWidth;
      parallel_for_workers(groups, spec.threads, [&](int w, std::size_t gi) {
        WorkerScratch& sc = scratch[static_cast<std::size_t>(w)];
        const std::size_t g0 = gi * lp::kBatchWidth;
        const std::size_t lanes = std::min(lp::kBatchWidth, bn - g0);
        // Per-lane draws: sample i's Rng and draw order are exactly the
        // scalar path's, and L is its first draw — o/G are degenerate here,
        // pinned in the shared operating point.
        for (std::size_t l = 0; l < lanes; ++l) {
          Rng rng(sample_seed(spec.seed, block_start + g0 + l));
          sc.lane_L[l] = spec.L.sample(rng, base.L);
        }
        // llamp-lint: hot-path begin
        // Steady state: one batched pass per ΔL grid point, one lockstep
        // band search per percent, all against preallocated lane scratch.
        for (std::size_t k = 0; k < npts; ++k) {
          for (std::size_t l = 0; l < lanes; ++l) {
            sc.lane_xs[l] = sc.lane_L[l] + spec.delta_Ls[k];
          }
          shared->solve_batch(0, sc.lane_xs.data(), lanes, sc.bc,
                              sc.pts.data());
          for (std::size_t l = 0; l < lanes; ++l) {
            buffer[(g0 + l) * stride + k] = sc.pts[l].value;
          }
          if (k == 0) {
            for (std::size_t l = 0; l < lanes; ++l) {
              double* out = buffer.data() + (g0 + l) * stride;
              sc.lane_from[l] = sc.lane_xs[l];
              sc.lane_v0[l] = sc.pts[l].value;
              const double lambda0 = sc.pts[l].slope;
              out[npts] = lambda0;
              out[npts + 1] = sc.pts[l].value > 0.0
                                  ? sc.lane_xs[l] * lambda0 / sc.pts[l].value
                                  : 0.0;
            }
          }
        }
        for (std::size_t b = 0; b < nbands; ++b) {
          for (std::size_t l = 0; l < lanes; ++l) {
            sc.lane_budget[l] =
                sc.lane_v0[l] * (1.0 + spec.band_percents[b] / 100.0);
          }
          shared->max_param_for_budget_from_batch(
              0, sc.lane_from.data(), sc.lane_budget.data(), lanes, sc.bc,
              sc.lane_tol.data());
          for (std::size_t l = 0; l < lanes; ++l) {
            const double tol = sc.lane_tol[l];
            buffer[(g0 + l) * stride + npts + 2 + b] =
                std::isfinite(tol) ? tol - sc.lane_from[l] : tol;
          }
        }
        // llamp-lint: hot-path end
      });
      fold_block(bn);
      continue;
    }
    // The scalar path: per-sample solves, either because batching is off
    // (spec.batch) or because each sample lowers its own perturbed space.
    // The general edge-noise path has imbalanced per-sample cost (the drawn
    // operating point reshapes every solve), so samples are claimed by
    // chunked self-scheduling rather than static striding — a worker that
    // drew expensive samples simply claims fewer.
    parallel_for_workers_chunked(bn, spec.threads, 1, [&](int w,
                                                          std::size_t j) {
      WorkerScratch& sc = scratch[static_cast<std::size_t>(w)];
      const std::size_t i = block_start + j;
      Rng rng(sample_seed(spec.seed, i));

      // Fixed in-sample draw order: L, o, G, then edge factors by edge id.
      loggops::Params p = shared_solver_path ? shared_params : base;
      p.L = spec.L.sample(rng, base.L);
      p.o = spec.o.sample(rng, base.o);
      p.G = spec.G.sample(rng, base.G);

      std::optional<lp::ParametricSolver> local;
      const lp::ParametricSolver* solver;
      if (shared_solver_path) {
        solver = &*shared;
      } else {
        std::shared_ptr<const lp::ParamSpace> sp =
            std::make_shared<lp::LatencyParamSpace>(p);
        if (!spec.noise.degenerate()) {
          sc.factors.resize(g.num_edges());
          for (double& f : sc.factors) f = spec.noise.factor(rng);
          sp = std::make_shared<lp::PerturbedParamSpace>(std::move(sp),
                                                         sc.factors);
        }
        local.emplace(g, sp);
        solver = &*local;
      }

      // llamp-lint: hot-path begin
      // Steady state: every per-sample evaluation below runs against
      // preallocated per-worker scratch; only the perturbed-space setup
      // above (the general path) may allocate.
      for (std::size_t k = 0; k < npts; ++k) {
        sc.xs[k] = p.L + spec.delta_Ls[k];
      }
      if (ascending) {
        solver->sweep(0, sc.xs, sc.ws, sc.evals.data());
      } else {
        for (std::size_t k = 0; k < npts; ++k) {
          const auto& sol = solver->solve(0, sc.xs[k], sc.ws);
          sc.evals[k] = {sc.xs[k], sol.value, sol.gradient[0]};
        }
      }

      double* out = buffer.data() + j * stride;
      for (std::size_t k = 0; k < npts; ++k) out[k] = sc.evals[k].value;
      const double value0 = sc.evals[0].value;
      const double lambda0 = sc.evals[0].slope;
      out[npts] = lambda0;
      out[npts + 1] = value0 > 0.0 ? sc.xs[0] * lambda0 / value0 : 0.0;
      for (std::size_t b = 0; b < nbands; ++b) {
        const double budget =
            value0 * (1.0 + spec.band_percents[b] / 100.0);
        const double tol =
            solver->max_param_for_budget_from(0, sc.xs[0], budget, sc.ws);
        out[npts + 2 + b] = std::isfinite(tol) ? tol - sc.xs[0] : tol;
      }
      // llamp-lint: hot-path end
    });
    fold_block(bn);
  }
  return res;
}

namespace {

/// One summary row.  All-unbounded metrics (a tolerance no sample ever
/// hit) render their statistics cells as "unbounded" in every format, the
/// same word the deterministic report uses.
void add_summary_row(Table& t, const std::string& metric, const Summary& s,
                     bool human, bool time_valued) {
  const bool all_unbounded = s.count() == 0 && s.unbounded() > 0;
  const auto fmt = [&](double v) -> std::string {
    if (all_unbounded) return "unbounded";
    if (human) {
      return time_valued ? human_time_ns(v) : strformat("%.3g", v);
    }
    return strformat("%.10g", v);
  };
  t.add_row({metric, strformat("%zu", s.count()),
             strformat("%zu", s.unbounded()), fmt(s.mean()),
             fmt(s.stddev()), fmt(s.min()), fmt(s.q05()), fmt(s.median()),
             fmt(s.q95()), fmt(s.max())});
}

}  // namespace

Table mc_summary_table(const McResult& result, bool human) {
  // The same column set serves every format; only cell formatting differs.
  Table t({"metric", "n", "unbounded", "mean", "stddev", "min", "q05",
           "median", "q95", "max"});
  for (std::size_t k = 0; k < result.runtime.size(); ++k) {
    const std::string metric =
        human ? "T(ΔL=" + human_time_ns(result.delta_Ls[k]) + ")"
              : strformat("runtime_ns[dl=%.1f]", result.delta_Ls[k]);
    add_summary_row(t, metric, result.runtime[k], human,
                    /*time_valued=*/true);
  }
  add_summary_row(t, human ? "lambda_L" : "lambda_l", result.lambda_L, human,
                  /*time_valued=*/false);
  add_summary_row(t, human ? "rho_L" : "rho_l", result.rho_L, human,
                  /*time_valued=*/false);
  for (const auto& band : result.bands) {
    const std::string metric =
        human ? strformat("tol %g%%", band.percent)
              : strformat("tolerance_delta_ns[%g%%]", band.percent);
    add_summary_row(t, metric, band.tolerance_delta, human,
                    /*time_valued=*/true);
  }
  return t;
}

}  // namespace llamp::stoch
