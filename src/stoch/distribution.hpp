#pragma once

#include <cstdint>
#include <string>

#include "util/rng.hpp"

namespace llamp::stoch {

/// Declarative distributions over LogGPS parameters for the Monte Carlo
/// uncertainty-quantification engine (stoch/mc.hpp).  The paper reads its
/// tolerances off a single measured LogGPS operating point; these
/// distributions express how uncertain that operating point is (run-to-run
/// o and G jitter, per-cluster L spread), so the analysis can report
/// tolerance *bands* instead of point estimates.
///
/// A distribution is sampled relative to a scenario's deterministic base
/// value, so one spec applies across scenarios with different operating
/// points (kBase and kRelNormal read the base; kConstant/kNormal/kUniform
/// ignore it).  All LogGPS quantities are nonnegative, so normal draws are
/// truncated at zero (documented in DESIGN.md §4c); specs whose support
/// includes negative values are rejected by validate().
struct Distribution {
  enum class Kind : std::uint8_t {
    kBase,       ///< degenerate: always the scenario's base value
    kConstant,   ///< degenerate: always `a`
    kNormal,     ///< Normal(mean = a, stddev = b), truncated at 0
    kRelNormal,  ///< Normal(mean = base, stddev = a * base), truncated at 0
    kUniform,    ///< Uniform[a, b)
  };

  Kind kind = Kind::kBase;
  double a = 0.0;
  double b = 0.0;

  static Distribution base() { return {}; }
  static Distribution constant(double v) {
    return {Kind::kConstant, v, 0.0};
  }
  static Distribution normal(double mean, double stddev) {
    return {Kind::kNormal, mean, stddev};
  }
  static Distribution rel_normal(double sigma) {
    return {Kind::kRelNormal, sigma, 0.0};
  }
  static Distribution uniform(double lo, double hi) {
    return {Kind::kUniform, lo, hi};
  }

  /// Draw one value given the scenario's deterministic base value.
  /// Degenerate distributions return their value *bitwise* (no arithmetic
  /// on the rng path can disturb it) — the contract the degenerate-MC
  /// reproduction tests pin.
  double sample(Rng& rng, double base_value) const;

  /// True when every draw returns the same value (zero variance).  The MC
  /// engine uses this to pick its fast paths and to decide whether a run is
  /// degenerate (reproducing the deterministic analysis exactly).
  bool degenerate() const;

  /// Throws UsageError when the spec is malformed (negative stddev,
  /// inverted or negative uniform bounds, negative constant).
  void validate(const std::string& what) const;

  /// Spec-string form, parseable by parse_distribution.
  std::string to_string() const;
};

/// Parse a CLI distribution spec: "base", "const:V", "normal:MEAN,SD",
/// "relnormal:SIGMA", "uniform:LO,HI".  Throws UsageError on anything else.
Distribution parse_distribution(const std::string& spec);

/// Per-edge multiplicative cost noise, sharing the cluster emulator's
/// noise-model conventions (injector/cluster_emulator.cpp): each edge's
/// factor is 1 + bias + |N(0, sigma)| — system noise only ever slows an
/// edge down (folded normal) on top of a systematic relative bias.  With
/// sigma == 0 and bias == 0 the factor is exactly 1.0 and the MC engine
/// skips perturbation entirely.
struct EdgeNoise {
  double sigma = 0.0;  ///< relative stddev of per-edge slowdown
  double bias = 0.0;   ///< systematic relative offset, > -1

  bool degenerate() const { return sigma == 0.0 && bias == 0.0; }
  double factor(Rng& rng) const;
  /// Throws UsageError on sigma < 0 or bias <= -1 (a factor of zero or
  /// below would break edge-cost monotonicity).
  void validate() const;
};

/// Per-sample seeding: sample i of a run seeded with `seed` draws from
/// Rng(sample_seed(seed, i)).  SplitMix64 over the combined words, so
/// consecutive sample indices land in decorrelated xoshiro states and a
/// sample's stream depends only on (seed, i) — never on which worker thread
/// serves it or how many samples precede it.  This is the determinism
/// anchor of the whole subsystem.
std::uint64_t sample_seed(std::uint64_t seed, std::uint64_t index);

}  // namespace llamp::stoch
