#include "injector/designs.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace llamp::injector {

std::string to_string(Design d) {
  switch (d) {
    case Design::kIntended: return "A:intended";
    case Design::kSenderDelay: return "B:sender-delay";
    case Design::kProgressThread: return "C:progress-thread";
    case Design::kDelayThread: return "D:delay-thread";
  }
  return "?";
}

Outcome simulate(Design d, const Scenario& s) {
  if (s.n_messages < 1) throw Error("injector: need at least one message");
  Outcome out;
  out.delivery.resize(static_cast<std::size_t>(s.n_messages));

  // Sender timeline: when does each send's CPU work finish, and when does
  // the message actually enter the wire?
  std::vector<TimeNs> wire_entry(static_cast<std::size_t>(s.n_messages));
  TimeNs cpu = 0.0;
  for (int i = 0; i < s.n_messages; ++i) {
    cpu += s.o;  // the send call itself
    if (d == Design::kSenderDelay) {
      // The injector busy-waits ΔL on the sender before releasing the
      // message; the next MPI_Send cannot start until it returns.
      cpu += s.delta_L;
      wire_entry[static_cast<std::size_t>(i)] = cpu;
    } else {
      wire_entry[static_cast<std::size_t>(i)] = cpu;
    }
  }
  out.sender_completion = cpu;

  // Wire: arrival at the receiver's NIC.
  std::vector<TimeNs> arrival(static_cast<std::size_t>(s.n_messages));
  for (int i = 0; i < s.n_messages; ++i) {
    const TimeNs injected_wire =
        (d == Design::kIntended || d == Design::kDelayThread) ? s.delta_L : 0.0;
    arrival[static_cast<std::size_t>(i)] =
        wire_entry[static_cast<std::size_t>(i)] + s.base_latency +
        s.bytes_cost + injected_wire;
  }
  // With kDelayThread the message physically arrives without the delay and
  // is released ΔL after its arrival timestamp — same arithmetic as adding
  // ΔL on the wire, which is exactly the design's point.

  // Receiver-side release.
  TimeNs progress_free = 0.0;  // serial progress-thread availability (C)
  for (int i = 0; i < s.n_messages; ++i) {
    TimeNs release = arrival[static_cast<std::size_t>(i)];
    if (d == Design::kProgressThread) {
      // The single progress thread busy-waits ΔL per message, serially.
      const TimeNs start = std::max(release, progress_free);
      release = start + s.delta_L;
      progress_free = release;
    }
    // Receive completion overhead o on the application thread.
    out.delivery[static_cast<std::size_t>(i)] = release + s.o;
  }
  out.receiver_completion = out.delivery.back();
  return out;
}

TimeNs deviation_from_intended(Design d, const Scenario& s) {
  const Outcome ref = simulate(Design::kIntended, s);
  const Outcome got = simulate(d, s);
  return std::fabs(got.receiver_completion - ref.receiver_completion);
}

}  // namespace llamp::injector
