#include "injector/cluster_emulator.hpp"

#include <cmath>

#include "util/error.hpp"

namespace llamp::injector {

ClusterEmulator::ClusterEmulator(const graph::Graph& g, loggops::Params base)
    : ClusterEmulator(g, base, Config{}) {}

ClusterEmulator::ClusterEmulator(const graph::Graph& g, loggops::Params base,
                                 Config cfg)
    : g_(g), base_(base), cfg_(cfg), sim_(g), rng_(cfg.seed) {
  base_.validate();
  if (cfg.noise_sigma < 0.0) throw Error("emulator: negative noise sigma");
}

TimeNs ClusterEmulator::run_once(TimeNs delta_L) {
  if (delta_L < 0.0) throw Error("emulator: negative latency injection");
  loggops::Params p = base_;
  p.L += delta_L;
  const TimeNs ideal = sim_.run(p).makespan;
  // System noise only ever slows a run down; model it as a folded normal on
  // top of the systematic bias.
  const double noise = std::fabs(rng_.normal(0.0, cfg_.noise_sigma));
  return ideal * (1.0 + cfg_.systematic_bias + noise);
}

TimeNs ClusterEmulator::measure(TimeNs delta_L, int runs) {
  if (runs < 1) throw Error("emulator: need at least one run");
  TimeNs sum = 0.0;
  for (int i = 0; i < runs; ++i) sum += run_once(delta_L);
  return sum / static_cast<double>(runs);
}

std::vector<TimeNs> ClusterEmulator::sweep(const std::vector<TimeNs>& delta_Ls,
                                           int runs) {
  std::vector<TimeNs> out;
  out.reserve(delta_Ls.size());
  for (const TimeNs d : delta_Ls) out.push_back(measure(d, runs));
  return out;
}

}  // namespace llamp::injector
