#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace llamp::injector {

/// Stand-in for the paper's 188-node validation cluster plus software
/// latency injector: "measured" runtimes are produced by replaying the
/// execution graph under L0 + ΔL through the discrete-event simulator and
/// perturbing the result with seeded multiplicative noise (system noise,
/// congestion) and an optional systematic bias (the persistent-ops overhead
/// mismatch the paper observes for MILC).
///
/// Because the noise model is explicit and seeded, validation experiments
/// (Fig. 9, Table II) are exactly reproducible and the expected RRMSE is a
/// function of the configured sigma.
class ClusterEmulator {
 public:
  struct Config {
    double noise_sigma = 0.003;   ///< relative stddev of run-to-run noise
    double systematic_bias = 0.0; ///< relative offset applied to every run
    std::uint64_t seed = 42;
  };

  ClusterEmulator(const graph::Graph& g, loggops::Params base);
  ClusterEmulator(const graph::Graph& g, loggops::Params base, Config cfg);
  /// The emulator keeps a reference; a temporary graph would dangle.
  ClusterEmulator(graph::Graph&&, loggops::Params) = delete;
  ClusterEmulator(graph::Graph&&, loggops::Params, Config) = delete;

  /// One experiment run at injection ΔL (one "job execution").
  TimeNs run_once(TimeNs delta_L);

  /// Mean of `runs` repetitions — the paper averages 10 runs per ΔL.
  TimeNs measure(TimeNs delta_L, int runs = 10);

  /// Full sweep over a ΔL grid, averaging `runs` repetitions per point.
  std::vector<TimeNs> sweep(const std::vector<TimeNs>& delta_Ls,
                            int runs = 10);

 private:
  const graph::Graph& g_;
  loggops::Params base_;
  Config cfg_;
  sim::Simulator sim_;
  Rng rng_;
};

}  // namespace llamp::injector
