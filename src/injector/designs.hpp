#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/time.hpp"

namespace llamp::injector {

/// The four latency-injector designs compared in Fig. 8 of the paper, for
/// the scenario of a sender issuing n back-to-back eager sends while the
/// receiver has pre-posted all receives:
///
///   kIntended      — panel A: the effect a perfect injector would have
///                    (ΔL simply added to the wire latency of each message).
///   kSenderDelay   — panel B (Underwood et al.): the delay is spent on the
///                    sender's CPU before each send, so consecutive sends
///                    serialize behind it and both sides slow down.
///   kProgressThread— panel C: a receiver-side progress thread serves the
///                    delays serially, so overlapping messages queue behind
///                    one another (each additional in-flight message pays an
///                    extra ΔL when ΔL > o).
///   kDelayThread   — panel D (the paper's design): a dedicated delay thread
///                    timestamps messages on arrival and releases each at
///                    arrival + ΔL, reproducing the intended behaviour.
enum class Design : std::uint8_t {
  kIntended,
  kSenderDelay,
  kProgressThread,
  kDelayThread,
};

std::string to_string(Design d);

/// Scenario parameters (Fig. 8's two-message picture generalized to n).
struct Scenario {
  int n_messages = 2;
  TimeNs o = 1'000.0;        ///< per-message CPU overhead
  TimeNs base_latency = 3'000.0;  ///< L0
  TimeNs bytes_cost = 0.0;   ///< B = (s-1)G per message
  TimeNs delta_L = 10'000.0; ///< injected ΔL
};

/// Behavioural outcome of a design on a scenario.
struct Outcome {
  TimeNs sender_completion = 0.0;         ///< t_{R0}
  TimeNs receiver_completion = 0.0;       ///< t_{R1}: last message delivered
  std::vector<TimeNs> delivery;           ///< per-message delivery times
};

/// Simulates the queueing semantics of each design (not hard-coded closed
/// forms — the closed forms of Fig. 8 fall out and are pinned by tests).
Outcome simulate(Design d, const Scenario& s);

/// Error of a design versus the intended behaviour: the absolute deviation
/// of the last delivery time.
TimeNs deviation_from_intended(Design d, const Scenario& s);

}  // namespace llamp::injector
