#pragma once

#include <iosfwd>

namespace llamp::tools {

/// Entry point of the unified `llamp` command-line driver — a thin adapter
/// over the api layer: each subcommand parses its flags into a typed
/// api request, executes it on one api::Engine session, and renders the
/// typed result.  Dispatches `argv[1]` as a subcommand:
///
///   analyze  tolerance / λ_L / ρ_L report for one proxy application
///   sweep    multi-threaded ΔL sweep (runtime, λ_L, ρ_L per injection)
///   campaign multi-scenario grid on the batch engine
///   mc       Monte Carlo uncertainty quantification
///   batch    JSONL request stream served on the engine (api/batch.hpp)
///   topo     per-wire latency sensitivity under Fat Tree vs Dragonfly
///   place    block vs volume-greedy vs LLAMP Algorithm-3 rank placement
///   apps     list the registered proxy applications
///
/// Output goes to `out`, usage/errors to `err`, so tests can drive every
/// subcommand in-process (`llamp batch` additionally reads std::cin when
/// --file=-).  Returns 0 on success, 1 on an analysis error (llamp::Error,
/// or any failed line of a batch), 2 on a usage error; bare `llamp`,
/// `help`, `--version`, and `<sub> --help` exit 0.  With --format=json,
/// errors are also emitted on stdout as an {"error": ...} object.
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

}  // namespace llamp::tools
