#pragma once

#include <iosfwd>

namespace llamp::tools {

/// Entry point of the unified `llamp` command-line driver.  Dispatches
/// `argv[1]` as a subcommand:
///
///   analyze  tolerance / λ_L / ρ_L report for one proxy application
///   sweep    multi-threaded ΔL sweep (runtime, λ_L, ρ_L per injection)
///   topo     per-wire latency sensitivity under Fat Tree vs Dragonfly
///   place    block vs volume-greedy vs LLAMP Algorithm-3 rank placement
///   apps     list the registered proxy applications
///
/// Output goes to `out`, usage/errors to `err`, so tests can drive every
/// subcommand in-process.  Returns 0 on success, 1 on an analysis error
/// (llamp::Error), 2 on a usage error.
int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err);

}  // namespace llamp::tools
