// The unified `llamp` CLI: every scenario the benches exercise, reachable
// from one entry point.  See `llamp help` or tools/cli_driver.hpp.

#include <iostream>

#include "tools/cli_driver.hpp"

int main(int argc, char** argv) {
  return llamp::tools::run(argc, argv, std::cout, std::cerr);
}
