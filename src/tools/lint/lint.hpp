#pragma once

#include <string>
#include <vector>

namespace llamp::lint {

/// One diagnostic, rendered as `file:line: [rule] message`.  Findings are
/// value types so the self-test suite can pin them structurally as well as
/// byte-wise.
struct Finding {
  std::string file;  ///< root-relative path, forward slashes
  int line = 0;      ///< 1-based
  std::string rule;
  std::string message;

  friend bool operator==(const Finding&, const Finding&) = default;
};

/// Catalogue entry for `--list-rules` and DESIGN.md §6.
struct RuleInfo {
  const char* id;
  const char* summary;
};

/// Every rule the checker knows, in reporting order.
const std::vector<RuleInfo>& rule_catalogue();

/// Lint one file.  `relpath` (root-relative, forward slashes) selects the
/// file-scoped rules: headers vs sources, src/tools/ exemptions, emitter /
/// hot-path designations.  Pure function of (relpath, content).
std::vector<Finding> lint_file(const std::string& relpath,
                               const std::string& content);

/// Walk `root`/src for *.hpp / *.cpp in sorted path order and lint each.
/// Returns findings sorted by (file, line, rule, message).  Throws
/// std::runtime_error if `root`/src does not exist or a file fails to read.
std::vector<Finding> lint_tree(const std::string& root);

/// `file:line: [rule] message\n` per finding, in the given order.
std::string format_findings(const std::vector<Finding>& findings);

/// Sort into the canonical reporting order.
void sort_findings(std::vector<Finding>& findings);

/// The llamp-lint CLI: `llamp-lint [--root=DIR] [--list-rules] [file...]`.
/// Exit 0 clean, 1 findings, 2 usage/IO error.  Split from main() so the
/// test suite can drive it.
int run_cli(int argc, const char* const* argv, std::string& out,
            std::string& err);

}  // namespace llamp::lint
