#include <cstdio>

#include "tools/lint/lint.hpp"

int main(int argc, char** argv) {
  std::string out;
  std::string err;
  const int rc = llamp::lint::run_cli(argc, argv, out, err);
  if (!out.empty()) std::fwrite(out.data(), 1, out.size(), stdout);
  if (!err.empty()) std::fwrite(err.data(), 1, err.size(), stderr);
  return rc;
}
