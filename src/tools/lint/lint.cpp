#include "tools/lint/lint.hpp"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string_view>
#include <tuple>
#include <utility>

// llamp-lint is deliberately a tokenizer, not a compiler: it strips
// comments and literals with a small state machine, then matches identifier
// tokens with just enough context (previous token, next character) to
// enforce the repo's named invariants.  No AST means no build dependency,
// sub-second runs, and rules that are simple enough to byte-pin — the
// trade-off is that every rule must tolerate an `allow()` escape hatch for
// the cases a tokenizer cannot judge.

namespace llamp::lint {
namespace {

// ---------------------------------------------------------------------------
// Rule catalogue.
// ---------------------------------------------------------------------------

constexpr const char* kDetRand = "det-rand";
constexpr const char* kDetClock = "det-clock";
constexpr const char* kDetUnordered = "det-unordered";
constexpr const char* kHotAlloc = "hot-alloc";
constexpr const char* kHotMetric = "hot-metric";
constexpr const char* kHotRegion = "hot-region";
constexpr const char* kPragmaOnce = "hyg-pragma-once";
constexpr const char* kUsingNamespace = "hyg-using-namespace";
constexpr const char* kIostream = "hyg-iostream";
constexpr const char* kSuppression = "lint-suppression";

// ---------------------------------------------------------------------------
// File classification: which file-scoped rules apply where.
// ---------------------------------------------------------------------------

struct FileClass {
  bool header = false;        ///< *.hpp
  bool clock_exempt = false;  ///< util/time.hpp, bench/: may read clocks
  bool print_exempt = false;  ///< src/tools/, util/cli.cpp: may use cout/cerr
  bool emitter = false;       ///< byte-determinism-critical serialization
  bool hot_designated = false;  ///< must contain >= 1 hot-path region
};

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

/// Emitters and (de)serializers whose output bytes are golden-pinned: their
/// iteration order must never depend on hash-table layout.
bool is_emitter_path(std::string_view rel) {
  static const std::set<std::string_view> exact = {
      "src/api/batch.cpp",   "src/api/request.cpp", "src/core/report.cpp",
      "src/core/report.hpp", "src/util/json.cpp",   "src/util/json.hpp",
      "src/util/table.cpp",  "src/util/table.hpp",
  };
  if (exact.count(rel) != 0) return true;
  // Trace/graph wire formats follow the *_io naming convention.
  return ends_with(rel, "_io.cpp") || ends_with(rel, "_io.hpp");
}

FileClass classify(std::string_view rel) {
  FileClass fc;
  fc.header = ends_with(rel, ".hpp");
  fc.clock_exempt =
      rel == "src/util/time.hpp" || rel.substr(0, 6) == "bench/";
  fc.print_exempt =
      rel.substr(0, 10) == "src/tools/" || rel == "src/util/cli.cpp";
  fc.emitter = is_emitter_path(rel);
  fc.hot_designated = rel == "src/lp/parametric.cpp" ||
                      rel == "src/lp/batch.cpp" || rel == "src/stoch/mc.cpp";
  return fc;
}

// ---------------------------------------------------------------------------
// Comment / literal stripping.
// ---------------------------------------------------------------------------

/// One physical line after the stripper: `code` has every comment and
/// literal body replaced by spaces (columns preserved, so token context
/// checks see the original layout); `comments` holds the comment text for
/// directive parsing.
struct Line {
  std::string code;
  std::vector<std::string> comments;
};

std::vector<Line> strip(const std::string& content) {
  enum class St { kCode, kLineComment, kBlockComment, kString, kChar, kRaw };
  std::vector<Line> lines(1);
  St st = St::kCode;
  std::string raw_delim;        // the `delim)` terminator of a raw string
  std::string* comment = nullptr;
  auto code = [&]() -> std::string& { return lines.back().code; };
  for (std::size_t i = 0; i < content.size(); ++i) {
    const char c = content[i];
    const char next = i + 1 < content.size() ? content[i + 1] : '\0';
    if (c == '\n') {
      if (st == St::kLineComment) st = St::kCode;
      lines.emplace_back();
      comment = nullptr;
      if (st == St::kBlockComment) {
        // A block comment spanning lines keeps accumulating text, one
        // comments[] entry per physical line.
        lines.back().comments.emplace_back();
        comment = &lines.back().comments.back();
      }
      continue;
    }
    switch (st) {
      case St::kCode:
        if (c == '/' && next == '/') {
          st = St::kLineComment;
          lines.back().comments.emplace_back();
          comment = &lines.back().comments.back();
          code() += "  ";
          ++i;
        } else if (c == '/' && next == '*') {
          st = St::kBlockComment;
          lines.back().comments.emplace_back();
          comment = &lines.back().comments.back();
          code() += "  ";
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (code().empty() || !(std::isalnum(static_cast<unsigned char>(
                                            code().back())) ||
                                        code().back() == '_'))) {
          // R"delim( ... )delim"
          std::size_t j = i + 2;
          raw_delim = ")";
          while (j < content.size() && content[j] != '(') {
            raw_delim += content[j++];
          }
          raw_delim += '"';
          st = St::kRaw;
          code() += "R\"";
          i = j;  // at '(' (or end)
        } else if (c == '"') {
          st = St::kString;
          code() += '"';
        } else if (c == '\'') {
          st = St::kChar;
          code() += '\'';
        } else {
          code() += c;
        }
        break;
      case St::kLineComment:
        *comment += c;
        code() += ' ';
        break;
      case St::kBlockComment:
        if (c == '*' && next == '/') {
          st = St::kCode;
          comment = nullptr;
          code() += "  ";
          ++i;
        } else {
          *comment += c;
          code() += ' ';
        }
        break;
      case St::kString:
        if (c == '\\') {
          code() += "  ";
          ++i;
          if (next == '\0') break;
        } else if (c == '"') {
          st = St::kCode;
          code() += '"';
        } else {
          code() += ' ';
        }
        break;
      case St::kChar:
        if (c == '\\') {
          code() += "  ";
          ++i;
          if (next == '\0') break;
        } else if (c == '\'') {
          st = St::kCode;
          code() += '\'';
        } else {
          code() += ' ';
        }
        break;
      case St::kRaw:
        if (c == ')' && content.compare(i, raw_delim.size(), raw_delim) == 0) {
          st = St::kCode;
          code() += '"';
          i += raw_delim.size() - 1;
        } else {
          code() += ' ';
        }
        break;
    }
  }
  return lines;
}

// ---------------------------------------------------------------------------
// Token helpers on stripped code lines.
// ---------------------------------------------------------------------------

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/// Call fn(name, begin, end) for every identifier token on `code`.
template <typename Fn>
void for_each_ident(std::string_view code, Fn&& fn) {
  std::size_t i = 0;
  while (i < code.size()) {
    if (ident_char(code[i]) &&
        !std::isdigit(static_cast<unsigned char>(code[i]))) {
      std::size_t j = i;
      while (j < code.size() && ident_char(code[j])) ++j;
      fn(code.substr(i, j - i), i, j);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(code[i]))) {
      while (i < code.size() && ident_char(code[i])) ++i;  // skip numbers
    } else {
      ++i;
    }
  }
}

char next_nonspace(std::string_view code, std::size_t from) {
  while (from < code.size() &&
         std::isspace(static_cast<unsigned char>(code[from]))) {
    ++from;
  }
  return from < code.size() ? code[from] : '\0';
}

/// True when the identifier ending at `end` is called with one of `args` as
/// its sole argument, e.g. `time(nullptr)`.
bool called_with(std::string_view code, std::size_t end,
                 const std::vector<std::string_view>& args) {
  std::size_t i = end;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  if (i >= code.size() || code[i] != '(') return false;
  ++i;
  while (i < code.size() && std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  for (const std::string_view a : args) {
    if (code.compare(i, a.size(), a) == 0 &&
        next_nonspace(code, i + a.size()) == ')') {
      return true;
    }
  }
  return false;
}

/// True when the identifier ending at `end` is called with a string
/// literal as its first argument, e.g. `counter("name")`.  The stripper
/// blanks literal bodies but keeps their quote characters, so the check is
/// one '(' followed by one '"'.
bool called_with_string_literal(std::string_view code, std::size_t end) {
  std::size_t i = end;
  while (i < code.size() &&
         std::isspace(static_cast<unsigned char>(code[i]))) {
    ++i;
  }
  if (i >= code.size() || code[i] != '(') return false;
  return next_nonspace(code, i + 1) == '"';
}

/// The identifier scope-qualifying the token at `begin` (empty when it is
/// not `X::`-qualified), e.g. "steady_clock" for the `now` of
/// `steady_clock::now()`.
std::string_view scope_qualifier(std::string_view code, std::size_t begin) {
  std::size_t i = begin;
  while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
  if (i < 2 || code[i - 1] != ':' || code[i - 2] != ':') return {};
  i -= 2;
  while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
  std::size_t j = i;
  while (j > 0 && ident_char(code[j - 1])) --j;
  return code.substr(j, i - j);
}

/// Does `qual` name a wall/steady clock type?  Catches `chrono` itself plus
/// anything ending in "clock" ("steady_clock", bench-style `Clock` aliases).
bool clock_qualifier(std::string_view qual) {
  if (qual == "chrono") return true;
  if (qual.size() < 5) return false;
  std::string tail(qual.substr(qual.size() - 5));
  for (char& c : tail) c = static_cast<char>(std::tolower(
      static_cast<unsigned char>(c)));
  return tail == "clock";
}

/// True when the token beginning at `begin` is qualified as `std::` (or a
/// bare leading `::`), e.g. `std::string`, `std::cout`.
bool std_qualified(std::string_view code, std::size_t begin) {
  std::size_t i = begin;
  while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
  if (i < 2 || code[i - 1] != ':' || code[i - 2] != ':') return false;
  i -= 2;
  while (i > 0 && std::isspace(static_cast<unsigned char>(code[i - 1]))) --i;
  if (i >= 3 && code.compare(i - 3, 3, "std") == 0 &&
      (i == 3 || !ident_char(code[i - 4]))) {
    return true;
  }
  // A bare `::cout` (global qualification) still counts.
  return i == 0 || !ident_char(code[i - 1]);
}

// ---------------------------------------------------------------------------
// Directives: `// llamp-lint: ...`.
// ---------------------------------------------------------------------------

struct Allow {
  std::string rule;
  bool reasoned = false;
  int line = 0;      ///< directive line
  int covers = 0;    ///< line whose findings it may suppress
  bool used = false;
  bool known = true;
};

struct Directives {
  std::vector<Allow> allows;
  std::vector<int> region_begin;   // lines of `hot-path begin`
  std::vector<int> region_end;     // lines of `hot-path end`
  std::vector<Finding> findings;   // malformed / unknown directives
};

bool known_rule(const std::string& id) {
  for (const RuleInfo& r : rule_catalogue()) {
    // The suppressor cannot suppress itself, or stale allows could hide.
    if (id == r.id && id != std::string(kSuppression)) return true;
  }
  return false;
}

void parse_directive(const std::string& file, int line, bool code_blank,
                     std::string_view text, Directives& out) {
  // A directive must open its comment ("// llamp-lint: ..."); mentions of
  // the marker mid-prose (docs, this file) are not directives.
  std::size_t pos = 0;
  while (pos < text.size() &&
         std::isspace(static_cast<unsigned char>(text[pos]))) {
    ++pos;
  }
  if (text.compare(pos, 11, "llamp-lint:") != 0) return;
  std::string_view rest = text.substr(pos + 11);
  while (!rest.empty() &&
         std::isspace(static_cast<unsigned char>(rest.front()))) {
    rest.remove_prefix(1);
  }
  if (rest.substr(0, 14) == "hot-path begin") {
    out.region_begin.push_back(line);
    return;
  }
  if (rest.substr(0, 12) == "hot-path end") {
    out.region_end.push_back(line);
    return;
  }
  if (rest.substr(0, 6) == "allow(") {
    const std::size_t close = rest.find(')');
    if (close == std::string_view::npos) {
      out.findings.push_back({file, line, kSuppression,
                              "malformed allow(): missing ')'"});
      return;
    }
    Allow a;
    a.rule = std::string(rest.substr(6, close - 6));
    a.line = line;
    // An allow on its own line covers the next line; inline, its own.
    a.covers = code_blank ? line + 1 : line;
    std::string_view reason = rest.substr(close + 1);
    while (!reason.empty() &&
           (std::isspace(static_cast<unsigned char>(reason.front())) ||
            reason.front() == ':' || reason.front() == '-')) {
      reason.remove_prefix(1);
    }
    a.reasoned = !reason.empty();
    a.known = known_rule(a.rule);
    if (!a.known) {
      out.findings.push_back(
          {file, line, kSuppression,
           "allow(" + a.rule + "): unknown rule id"});
    } else if (!a.reasoned) {
      out.findings.push_back(
          {file, line, kSuppression,
           "allow(" + a.rule + ") requires a reason, e.g. "
           "// llamp-lint: allow(" + a.rule + "): <why this is safe>"});
    }
    out.allows.push_back(std::move(a));
    return;
  }
  out.findings.push_back(
      {file, line, kSuppression,
       "unrecognized llamp-lint directive: '" + std::string(rest) + "'"});
}

// ---------------------------------------------------------------------------
// The checker proper.
// ---------------------------------------------------------------------------

const std::set<std::string_view>& rand_idents() {
  static const std::set<std::string_view> s = {
      "rand",    "srand",   "rand_r",        "drand48",
      "lrand48", "mrand48", "random_device",
  };
  return s;
}

const std::set<std::string_view>& hot_alloc_idents() {
  static const std::set<std::string_view> s = {
      "new",         "make_unique", "make_shared", "push_back",
      "emplace_back", "resize",     "reserve",
  };
  return s;
}

}  // namespace

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> rules = {
      {"det-rand",
       "non-deterministic randomness (rand/srand/random_device/"
       "time-seeding); use the seedable llamp::Rng"},
      {"det-clock",
       "wall/steady clock read (::now()) outside util/time.hpp and bench "
       "code; results must not depend on when they run"},
      {"det-unordered",
       "unordered container in an emitter/serialization file; iteration "
       "order is unspecified and golden bytes would vary by libc++"},
      {"hot-alloc",
       "allocation in a '// llamp-lint: hot-path' region (new/make_unique/"
       "make_shared/push_back/emplace_back/resize/reserve/std::string)"},
      {"hot-metric",
       "metric registration (counter(\"name\")-style string lookup) in a "
       "hot-path region; record through a pre-registered handle"},
      {"hot-region",
       "hot-path region marker hygiene (unterminated/unmatched begin-end, "
       "designated file without a region)"},
      {"hyg-pragma-once", "header does not open with #pragma once"},
      {"hyg-using-namespace", "using namespace at header scope"},
      {"hyg-iostream",
       "std::cout/std::cerr outside src/tools/ and src/util/cli.cpp; "
       "library code reports through return values and errors"},
      {"lint-suppression",
       "suppression hygiene (unknown rule id, missing reason, unused or "
       "malformed allow())"},
  };
  return rules;
}

std::vector<Finding> lint_file(const std::string& relpath,
                               const std::string& content) {
  const FileClass fc = classify(relpath);
  const std::vector<Line> lines = strip(content);

  Directives dirs;
  std::vector<bool> blank(lines.size());
  for (std::size_t li = 0; li < lines.size(); ++li) {
    blank[li] = lines[li].code.find_first_not_of(" \t") == std::string::npos;
    for (const std::string& c : lines[li].comments) {
      parse_directive(relpath, static_cast<int>(li) + 1, blank[li], c, dirs);
    }
  }
  // An own-line allow() covers the next *code* line, so a suppression
  // comment may wrap across several comment lines.
  for (Allow& a : dirs.allows) {
    if (a.covers > a.line) {
      std::size_t li = static_cast<std::size_t>(a.covers) - 1;
      while (li < lines.size() && blank[li]) ++li;
      a.covers = static_cast<int>(li) + 1;
    }
  }

  // Resolve hot-path regions from the begin/end marker streams.
  std::vector<Finding> raw;
  std::vector<std::pair<int, int>> regions;  // [begin_line, end_line]
  {
    std::size_t bi = 0;
    std::size_t ei = 0;
    int open = 0;
    while (bi < dirs.region_begin.size() || ei < dirs.region_end.size()) {
      const int b = bi < dirs.region_begin.size() ? dirs.region_begin[bi]
                                                  : INT32_MAX;
      const int e =
          ei < dirs.region_end.size() ? dirs.region_end[ei] : INT32_MAX;
      if (b < e) {
        if (open != 0) {
          raw.push_back({relpath, b, kHotRegion,
                         "nested 'hot-path begin' (previous region still "
                         "open)"});
        } else {
          open = b;
        }
        ++bi;
      } else {
        if (open == 0) {
          raw.push_back({relpath, e, kHotRegion,
                         "'hot-path end' without a matching begin"});
        } else {
          regions.emplace_back(open, e);
          open = 0;
        }
        ++ei;
      }
    }
    if (open != 0) {
      raw.push_back({relpath, open, kHotRegion,
                     "unterminated hot-path region (missing "
                     "'// llamp-lint: hot-path end')"});
      regions.emplace_back(open, static_cast<int>(lines.size()));
    }
  }
  if (fc.hot_designated && dirs.region_begin.empty()) {
    raw.push_back({relpath, 1, kHotRegion,
                   "designated hot-path file has no "
                   "'// llamp-lint: hot-path begin' region"});
  }
  const auto in_region = [&](int line) {
    for (const auto& [b, e] : regions) {
      if (line > b && line < e) return true;
    }
    return false;
  };

  // #pragma once: the first code on a header must be exactly that.
  if (fc.header) {
    bool seen_code = false;
    for (std::size_t li = 0; li < lines.size() && !seen_code; ++li) {
      std::string_view code = lines[li].code;
      const std::size_t first = code.find_first_not_of(" \t");
      if (first == std::string_view::npos) continue;
      seen_code = true;
      std::string compact;
      for (const char c : code) {
        if (!std::isspace(static_cast<unsigned char>(c))) compact += c;
      }
      if (compact != "#pragmaonce") {
        raw.push_back({relpath, static_cast<int>(li) + 1, kPragmaOnce,
                       "header must open with #pragma once"});
      }
    }
    if (!seen_code) {
      raw.push_back({relpath, 1, kPragmaOnce,
                     "header must open with #pragma once"});
    }
  }

  // Token rules, line by line.
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const int line = static_cast<int>(li) + 1;
    const std::string_view code = lines[li].code;
    std::string prev_ident;
    for_each_ident(code, [&](std::string_view tok, std::size_t begin,
                             std::size_t end) {
      if (rand_idents().count(tok) != 0) {
        raw.push_back({relpath, line, kDetRand,
                       "'" + std::string(tok) +
                           "' is not seed-reproducible; use llamp::Rng"});
      } else if (tok == "time" &&
                 called_with(code, end, {"0", "NULL", "nullptr"})) {
        raw.push_back({relpath, line, kDetRand,
                       "time(...) seeding is not reproducible; use a fixed "
                       "or caller-provided seed"});
      } else if (tok == "now" && !fc.clock_exempt &&
                 clock_qualifier(scope_qualifier(code, begin)) &&
                 next_nonspace(code, end) == '(') {
        raw.push_back({relpath, line, kDetClock,
                       "clock read '::now()' outside util/time.hpp and "
                       "bench code"});
      } else if ((tok == "unordered_map" || tok == "unordered_set") &&
                 fc.emitter) {
        raw.push_back({relpath, line, kDetUnordered,
                       "'" + std::string(tok) +
                           "' in an emitter file: iteration order is "
                           "unspecified; use std::map or a sorted vector"});
      } else if (tok == "namespace" && prev_ident == "using" && fc.header) {
        raw.push_back({relpath, line, kUsingNamespace,
                       "'using namespace' in a header leaks into every "
                       "includer"});
      } else if ((tok == "cout" || tok == "cerr") && !fc.print_exempt &&
                 std_qualified(code, begin)) {
        raw.push_back({relpath, line, kIostream,
                       "'std::" + std::string(tok) +
                           "' outside src/tools/ and src/util/cli.cpp"});
      } else if (in_region(line)) {
        if (hot_alloc_idents().count(tok) != 0) {
          raw.push_back({relpath, line, kHotAlloc,
                         "'" + std::string(tok) +
                             "' allocates in a hot-path region"});
        } else if (tok == "string" && std_qualified(code, begin)) {
          raw.push_back({relpath, line, kHotAlloc,
                         "std::string construction in a hot-path region"});
        } else if ((tok == "counter" || tok == "gauge" ||
                    tok == "histogram") &&
                   called_with_string_literal(code, end)) {
          // The registry's contract split (obs/metrics.hpp): by-name
          // lookup locks and may allocate; hot paths must record through
          // a handle registered at setup time.
          raw.push_back({relpath, line, kHotMetric,
                         "'" + std::string(tok) +
                             "(\"...\")' registers a metric by name in a "
                             "hot-path region; use a pre-registered "
                             "handle"});
        }
      }
      prev_ident = std::string(tok);
    });
  }

  // Apply suppressions: a reasoned allow(rule) covering the finding's line
  // eats it; everything else (and stale allows) surfaces.
  std::vector<Finding> out;
  for (Finding& f : raw) {
    bool suppressed = false;
    for (Allow& a : dirs.allows) {
      if (a.known && a.reasoned && a.rule == f.rule && a.covers == f.line) {
        a.used = true;
        suppressed = true;
        break;
      }
    }
    if (!suppressed) out.push_back(std::move(f));
  }
  for (const Allow& a : dirs.allows) {
    if (a.known && a.reasoned && !a.used) {
      out.push_back({relpath, a.line, kSuppression,
                     "unused suppression: allow(" + a.rule +
                         ") matched no finding"});
    }
  }
  out.insert(out.end(), dirs.findings.begin(), dirs.findings.end());
  sort_findings(out);
  return out;
}

void sort_findings(std::vector<Finding>& findings) {
  std::sort(findings.begin(), findings.end(),
            [](const Finding& a, const Finding& b) {
              return std::tie(a.file, a.line, a.rule, a.message) <
                     std::tie(b.file, b.line, b.rule, b.message);
            });
}

std::string format_findings(const std::vector<Finding>& findings) {
  std::string out;
  for (const Finding& f : findings) {
    out += f.file;
    out += ':';
    out += std::to_string(f.line);
    out += ": [";
    out += f.rule;
    out += "] ";
    out += f.message;
    out += '\n';
  }
  return out;
}

namespace {

std::string read_file(const std::filesystem::path& p) {
  std::ifstream in(p, std::ios::binary);
  if (!in) throw std::runtime_error("llamp-lint: cannot read " + p.string());
  std::ostringstream ss;
  ss << in.rdbuf();
  return std::move(ss).str();
}

std::string to_rel(const std::filesystem::path& p,
                   const std::filesystem::path& root) {
  const std::filesystem::path rel = p.lexically_relative(root);
  return (rel.empty() || rel.native()[0] == '.') ? p.generic_string()
                                                 : rel.generic_string();
}

}  // namespace

std::vector<Finding> lint_tree(const std::string& root) {
  namespace fs = std::filesystem;
  const fs::path src = fs::path(root) / "src";
  if (!fs::is_directory(src)) {
    throw std::runtime_error("llamp-lint: no src/ directory under '" + root +
                             "'");
  }
  std::vector<fs::path> files;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".hpp" || ext == ".cpp") files.push_back(entry.path());
  }
  std::vector<std::string> rels;
  rels.reserve(files.size());
  for (const fs::path& p : files) rels.push_back(to_rel(p, root));
  std::vector<std::size_t> order(files.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return rels[a] < rels[b];
  });
  std::vector<Finding> all;
  for (const std::size_t i : order) {
    std::vector<Finding> fs_one = lint_file(rels[i], read_file(files[i]));
    all.insert(all.end(), std::make_move_iterator(fs_one.begin()),
               std::make_move_iterator(fs_one.end()));
  }
  return all;
}

int run_cli(int argc, const char* const* argv, std::string& out,
            std::string& err) {
  std::string root = ".";
  std::vector<std::string> files;
  bool list_rules = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--list-rules") {
      list_rules = true;
    } else if (arg == "--root") {
      if (i + 1 >= argc) {
        err = "llamp-lint: --root requires a directory\n";
        return 2;
      }
      root = argv[++i];
    } else if (arg.substr(0, 7) == "--root=") {
      root = std::string(arg.substr(7));
    } else if (arg == "--help" || arg == "-h") {
      out =
          "usage: llamp-lint [--root DIR] [--list-rules] [file...]\n"
          "Checks DIR/src (or the given files) against the llamp invariant "
          "rules.\nExit 0 clean, 1 findings, 2 usage error.\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      err = "llamp-lint: unknown option '" + std::string(arg) + "'\n";
      return 2;
    } else {
      files.emplace_back(arg);
    }
  }
  if (list_rules) {
    for (const RuleInfo& r : rule_catalogue()) {
      out += "[";
      out += r.id;
      out += "] ";
      out += r.summary;
      out += '\n';
    }
    return 0;
  }
  std::vector<Finding> findings;
  std::size_t checked = 0;
  try {
    if (files.empty()) {
      findings = lint_tree(root);
      namespace fs = std::filesystem;
      for (const auto& entry :
           fs::recursive_directory_iterator(fs::path(root) / "src")) {
        const std::string ext = entry.path().extension().string();
        if (entry.is_regular_file() && (ext == ".hpp" || ext == ".cpp")) {
          ++checked;
        }
      }
    } else {
      for (const std::string& f : files) {
        const std::string rel =
            to_rel(std::filesystem::path(f), std::filesystem::path(root));
        std::vector<Finding> one = lint_file(rel, read_file(f));
        findings.insert(findings.end(), std::make_move_iterator(one.begin()),
                        std::make_move_iterator(one.end()));
        ++checked;
      }
      sort_findings(findings);
    }
  } catch (const std::exception& e) {
    err = std::string(e.what()) + "\n";
    return 2;
  }
  out = format_findings(findings);
  err = "llamp-lint: checked " + std::to_string(checked) + " files, " +
        std::to_string(findings.size()) + " finding(s)\n";
  return findings.empty() ? 0 : 1;
}

}  // namespace llamp::lint
