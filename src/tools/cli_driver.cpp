#include "tools/cli_driver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "core/placement.hpp"
#include "core/report.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace llamp::tools {
namespace {

constexpr const char* kUsage = R"(llamp — LP-based MPI latency-tolerance analysis (conf_sc_ShenHCSDGWH24)

usage: llamp <subcommand> [options]

subcommands:
  analyze   full tolerance report: runtime forecast curve, lambda_L / rho_L,
            tolerance bands, critical latencies, lambda_G
  sweep     evaluate runtime / lambda_L / rho_L over a grid of latency
            injections ΔL (LP solves run in parallel)
  topo      per-wire latency sensitivity on Fat Tree vs Dragonfly, plus the
            Dragonfly per-wire-class tolerance breakdown
  place     compare block, volume-greedy, and LLAMP Algorithm-3 rank
            placements on a Fat Tree
  apps      list the registered proxy applications

common options:
  --app=NAME        proxy application (default lulesh; see `llamp apps`)
  --ranks=N         requested rank count, clamped to the nearest supported
                    value at or below N (default 8)
  --scale=S         iteration-count multiplier for the proxy (default 0.25)
  --net=cscs|daint  network preset: CSCS testbed or Piz Daint (default cscs)
  --L=NS --o=NS --G=NS_PER_BYTE --S=BYTES
                    override individual LogGPS parameters (ns / bytes);
                    by default o comes from the paper's Table II per-app fit

analyze/sweep options:
  --dl-max-us=X     sweep ceiling ΔL_max in microseconds (default 100)
  --points=N        grid points in [0, ΔL_max] (default 11)
  --threads=N       sweep parallelism, <= 0 = hardware concurrency (default 0)
  --csv             (sweep) emit CSV instead of an aligned table

topo/place options:
  --l-wire=NS --d-switch=NS   per-wire / per-switch latency (default 274/108)
  --ft-radix=K                Fat Tree switch radix (default 8 -> 128 nodes)
  --df-groups=G --df-routers=A --df-hosts=P
                              Dragonfly shape (default 8x4x8 -> 256 nodes)
  --max-rounds=N              (place) Algorithm-3 round cap (default 64)
)";

/// Options shared by every analysis subcommand: which proxy app, at what
/// scale, under which LogGPS configuration.
struct AppConfig {
  std::string app;
  int ranks = 0;
  double scale = 0.0;
  loggops::Params params;
};

AppConfig parse_app_config(const Cli& cli) {
  AppConfig cfg;
  cfg.app = cli.get("app", "lulesh");
  cfg.ranks = apps::supported_ranks(
      cfg.app, static_cast<int>(cli.get_int("ranks", 8)));
  cfg.scale = cli.get_double("scale", 0.25);

  const std::string net = cli.get("net", "cscs");
  if (net == "cscs") {
    cfg.params = loggops::NetworkConfig::cscs_testbed();
  } else if (net == "daint") {
    cfg.params = loggops::NetworkConfig::piz_daint();
  } else {
    throw Error("unknown --net preset '" + net + "' (want cscs or daint)");
  }

  // Per-application overhead from Table II where the paper measured one,
  // keyed the way the validation benches key it (node count approximated by
  // rank count); apps outside Table II (npb-*, namd) keep the preset's o.
  const int node_key = cfg.ranks <= 8 ? 8 : (cfg.ranks <= 32 ? 32 : 64);
  const int lulesh_key = cfg.ranks <= 8 ? 8 : (cfg.ranks <= 27 ? 27 : 64);
  try {
    cfg.params.o = loggops::NetworkConfig::table2_overhead(
        cfg.app, cfg.app == "lulesh" ? lulesh_key : node_key);
  } catch (const Error&) {
    // Not a Table II application; the preset default stands.
  }
  cfg.params.L = cli.get_double("L", cfg.params.L);
  cfg.params.o = cli.get_double("o", cfg.params.o);
  cfg.params.G = cli.get_double("G", cfg.params.G);
  cfg.params.S = static_cast<std::uint64_t>(
      cli.get_int("S", static_cast<long long>(cfg.params.S)));
  cfg.params.validate();
  return cfg;
}

graph::Graph build_graph(const AppConfig& cfg) {
  return schedgen::build_graph(
      apps::make_app_trace(cfg.app, cfg.ranks, cfg.scale));
}

std::vector<TimeNs> sweep_grid(const Cli& cli) {
  const double dl_max = us(cli.get_double("dl-max-us", 100.0));
  const auto points = static_cast<int>(cli.get_int("points", 11));
  if (points < 2) throw Error("need --points >= 2");
  std::vector<TimeNs> grid;
  grid.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    grid.push_back(dl_max * i / (points - 1));
  }
  return grid;
}

int cmd_analyze(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const auto g = build_graph(cfg);
  out << strformat("app: %s   ranks: %d   scale: %g\n", cfg.app.c_str(),
                   cfg.ranks, cfg.scale);
  out << "graph: " << g.stats_string() << '\n';
  core::ReportOptions opts;
  opts.sweep_max = us(cli.get_double("dl-max-us", 100.0));
  opts.sweep_points = static_cast<int>(cli.get_int("points", 11));
  opts.threads = static_cast<int>(cli.get_int("threads", 0));
  out << core::make_report(g, cfg.params, opts).to_string();
  return 0;
}

int cmd_sweep(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const auto g = build_graph(cfg);
  core::LatencyAnalyzer an(g, cfg.params);
  const auto points =
      an.sweep(sweep_grid(cli), static_cast<int>(cli.get_int("threads", 0)));

  const bool csv = cli.get_bool("csv", false);
  if (!csv) {
    out << strformat("app: %s   ranks: %d   scale: %g   base T: %s\n",
                     cfg.app.c_str(), cfg.ranks, cfg.scale,
                     human_time_ns(an.base_runtime()).c_str());
  }
  Table table(csv ? std::vector<std::string>{"delta_l_ns", "runtime_ns",
                                             "lambda_l", "rho_l"}
                  : std::vector<std::string>{"ΔL", "T(ΔL)", "slowdown",
                                             "lambda_L", "rho_L"});
  for (const auto& pt : points) {
    if (csv) {
      table.add_row({strformat("%.1f", pt.delta_L),
                     strformat("%.1f", pt.runtime),
                     strformat("%.6g", pt.lambda_L),
                     strformat("%.6g", pt.rho_L)});
    } else {
      table.add_row(
          {human_time_ns(pt.delta_L), human_time_ns(pt.runtime),
           strformat("%+.2f%%",
                     100.0 * (pt.runtime / an.base_runtime() - 1.0)),
           strformat("%.0f", pt.lambda_L),
           strformat("%.1f%%", 100.0 * pt.rho_L)});
    }
  }
  out << (csv ? table.to_csv() : table.to_string());
  return 0;
}

int cmd_topo(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const auto g = build_graph(cfg);
  const double l_wire = cli.get_double("l-wire", 274.0);
  const double d_switch = cli.get_double("d-switch", 108.0);

  const topo::FatTree fat_tree(static_cast<int>(cli.get_int("ft-radix", 8)));
  const topo::Dragonfly dragonfly(
      static_cast<int>(cli.get_int("df-groups", 8)),
      static_cast<int>(cli.get_int("df-routers", 4)),
      static_cast<int>(cli.get_int("df-hosts", 8)));
  const std::array<const topo::Topology*, 2> topologies{&fat_tree,
                                                        &dragonfly};
  for (const topo::Topology* t : topologies) {
    if (t->nnodes() < cfg.ranks) {
      throw Error(t->name() + " has only " + std::to_string(t->nnodes()) +
                  " nodes for " + std::to_string(cfg.ranks) + " ranks");
    }
  }
  const auto placement = topo::identity_placement(cfg.ranks);

  out << strformat("app: %s   ranks: %d   per-wire latency sensitivity\n\n",
                   cfg.app.c_str(), cfg.ranks);
  Table table({"topology", "T(l_wire)", "dT/dl_wire", "1% tolerance l_wire"});
  for (const topo::Topology* t : topologies) {
    auto space = std::make_shared<lp::LinkClassParamSpace>(
        topo::make_wire_latency_space(cfg.params, *t, placement, l_wire,
                                      d_switch));
    lp::ParametricSolver solver(g, space);
    const auto sol = solver.solve(0, l_wire);
    const double tol = solver.max_param_for_budget(0, sol.value * 1.01);
    table.add_row({t->name(), human_time_ns(sol.value),
                   strformat("%.0f", sol.gradient[0]),
                   std::isfinite(tol) ? human_time_ns(tol) : "unbounded"});
  }
  out << table.to_string();

  // Dragonfly per-class breakdown (Fig. 19): tolerance of each wire class
  // with the other two held at their base values.
  auto df_space = std::make_shared<lp::LinkClassParamSpace>(
      topo::make_dragonfly_class_space(cfg.params, dragonfly, placement,
                                       l_wire, l_wire, l_wire, d_switch));
  lp::ParametricSolver df_solver(g, df_space);
  const auto base_sol = df_solver.solve(0, l_wire);
  const double T0 = base_sol.value;
  out << strformat("\nDragonfly wire classes (budget = 1%% over T = %s):\n",
                   human_time_ns(T0).c_str());
  Table classes({"class", "lambda", "1% tolerance"});
  for (int k = 0; k < df_space->num_params(); ++k) {
    const auto sol = k == 0 ? base_sol : df_solver.solve(k, l_wire);
    const double tol = df_solver.max_param_for_budget(k, T0 * 1.01);
    classes.add_row(
        {df_space->param_name(k),
         strformat("%.0f", sol.gradient[static_cast<std::size_t>(k)]),
         std::isfinite(tol) ? human_time_ns(tol) : "unbounded"});
  }
  out << classes.to_string();
  return 0;
}

int cmd_place(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const auto g = build_graph(cfg);
  const topo::FatTree ft(static_cast<int>(cli.get_int("ft-radix", 8)));
  if (ft.nnodes() < cfg.ranks) {
    throw Error(ft.name() + " has only " + std::to_string(ft.nnodes()) +
                " nodes for " + std::to_string(cfg.ranks) + " ranks");
  }
  core::WireCost wire;
  wire.l_wire = cli.get_double("l-wire", wire.l_wire);
  wire.d_switch = cli.get_double("d-switch", wire.d_switch);
  const auto max_rounds = static_cast<int>(cli.get_int("max-rounds", 64));

  const auto block = core::block_placement(g, cfg.params, ft, wire);
  const auto volume = core::volume_greedy_placement(g, cfg.params, ft, wire);
  const auto opt =
      core::optimize_placement(g, cfg.params, ft, wire, {}, max_rounds);

  out << strformat("app: %s   ranks: %d on %s\n\n", cfg.app.c_str(),
                   cfg.ranks, ft.name().c_str());
  Table table({"strategy", "predicted runtime", "vs block"});
  const auto pct = [&](double t) {
    return strformat("%+.2f%%", 100.0 * (t - block.predicted_runtime) /
                                    block.predicted_runtime);
  };
  table.add_row({"block (default)", human_time_ns(block.predicted_runtime),
                 "+0.00%"});
  table.add_row({"volume-greedy", human_time_ns(volume.predicted_runtime),
                 pct(volume.predicted_runtime)});
  table.add_row({strformat("llamp algorithm 3 (%d swaps)", opt.swaps),
                 human_time_ns(opt.predicted_runtime),
                 pct(opt.predicted_runtime)});
  out << table.to_string();
  return 0;
}

int cmd_apps(std::ostream& out) {
  for (const auto& name : apps::app_names()) out << name << '\n';
  return 0;
}

/// Boolean flags: these never take a following value, so a token after them
/// must not be folded — it is a stray positional the validation below should
/// reject, not the flag's value.
constexpr std::string_view kBoolKeys[] = {"csv"};

/// The subcommands take no positional arguments, so both `--key=value` and
/// `--key value` are accepted: a bare non-boolean `--key` followed by a
/// non-flag token is folded into the `=` form the shared Cli parser
/// understands.
std::vector<std::string> normalize_args(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (starts_with(arg, "--") && arg.find('=') == std::string::npos &&
        i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      const std::string_view key = std::string_view(arg).substr(2);
      if (std::find(std::begin(kBoolKeys), std::end(kBoolKeys), key) ==
          std::end(kBoolKeys)) {
        arg += '=';
        arg += argv[++i];
      }
    }
    args.push_back(std::move(arg));
  }
  return args;
}

constexpr std::string_view kCommonKeys[] = {"app", "ranks", "scale", "net",
                                            "L",   "o",     "G",     "S"};
constexpr std::string_view kGridKeys[] = {"dl-max-us", "points", "threads"};
constexpr std::string_view kTopoKeys[] = {"l-wire",    "d-switch",
                                          "ft-radix",  "df-groups",
                                          "df-routers", "df-hosts"};
constexpr std::string_view kPlaceKeys[] = {"l-wire", "d-switch", "ft-radix",
                                           "max-rounds"};

/// Reject misspelled options and stray positionals: a typo'd flag must be a
/// usage error, not a silent fall-back to the default value.  Returns an
/// empty string when every token is a known `--key[=value]`.
std::string first_bad_arg(const std::string& sub,
                          const std::vector<std::string>& args) {
  std::vector<std::string_view> known(std::begin(kCommonKeys),
                                      std::end(kCommonKeys));
  const auto add = [&](auto& keys) {
    known.insert(known.end(), std::begin(keys), std::end(keys));
  };
  if (sub == "analyze" || sub == "sweep") add(kGridKeys);
  if (sub == "sweep") known.push_back("csv");
  if (sub == "topo") add(kTopoKeys);
  if (sub == "place") add(kPlaceKeys);
  if (sub == "apps") known.clear();

  for (const std::string& arg : args) {
    if (!starts_with(arg, "--")) return arg;  // stray positional
    const auto eq = arg.find('=');
    const std::string_view key =
        std::string_view(arg).substr(2, eq == std::string::npos ? arg.npos
                                                                : eq - 2);
    if (std::find(known.begin(), known.end(), key) == known.end()) return arg;
  }
  return {};
}

}  // namespace

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  const std::string sub = argv[1];
  if (sub == "help" || sub == "--help" || sub == "-h") {
    out << kUsage;
    return 0;
  }
  if (sub != "analyze" && sub != "sweep" && sub != "topo" && sub != "place" &&
      sub != "apps") {
    err << "llamp: unknown subcommand '" << sub << "'\n\n" << kUsage;
    return 2;
  }
  const std::vector<std::string> args = normalize_args(argc, argv);
  if (const std::string bad = first_bad_arg(sub, args); !bad.empty()) {
    err << "llamp " << sub << ": unrecognized argument '" << bad
        << "' (see `llamp help`)\n";
    return 2;
  }
  std::vector<const char*> cargs;
  cargs.push_back("llamp");
  for (const auto& a : args) cargs.push_back(a.c_str());
  const Cli cli(static_cast<int>(cargs.size()), cargs.data());
  try {
    if (sub == "analyze") return cmd_analyze(cli, out);
    if (sub == "sweep") return cmd_sweep(cli, out);
    if (sub == "topo") return cmd_topo(cli, out);
    if (sub == "place") return cmd_place(cli, out);
    return cmd_apps(out);
  } catch (const Error& e) {
    err << "llamp " << sub << ": " << e.what() << '\n';
    return 1;
  }
}

}  // namespace llamp::tools
