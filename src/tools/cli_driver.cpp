#include "tools/cli_driver.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <limits>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "core/campaign.hpp"
#include "core/placement.hpp"
#include "core/report.hpp"
#include "injector/cluster_emulator.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "stoch/mc.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace llamp::tools {
namespace {

constexpr const char* kUsage = R"(llamp — LP-based MPI latency-tolerance analysis (conf_sc_ShenHCSDGWH24)

usage: llamp <subcommand> [options]

subcommands:
  analyze   full tolerance report: runtime forecast curve, lambda_L / rho_L,
            tolerance bands, critical latencies, lambda_G
  sweep     evaluate runtime / lambda_L / rho_L over a grid of latency
            injections ΔL (LP solves run in parallel)
  campaign  batch engine for multi-scenario studies: expand
            {apps} x {ranks} x {scales} x {topologies} x {LogGPS variants}
            x ΔL grid into analysis jobs, run them on a thread pool (one
            graph build and one solver per scenario), emit the whole grid
  mc        Monte Carlo uncertainty quantification: resample the LogGPS
            operating point (and optionally per-edge cost noise) N times,
            stream the perturbed LP analyses into distributional summaries
            (runtime quantiles per ΔL, lambda_L spread, tolerance bands
            with confidence intervals)
  topo      per-wire latency sensitivity on Fat Tree vs Dragonfly, plus the
            Dragonfly per-wire-class tolerance breakdown
  place     compare block, volume-greedy, and LLAMP Algorithm-3 rank
            placements on a Fat Tree
  apps      list the registered proxy applications

common options (analyze/sweep/mc/topo/place; campaign has its own axes below):
  --app=NAME        proxy application (default lulesh; see `llamp apps`)
  --ranks=N         requested rank count, clamped to the nearest supported
                    value at or below N (default 8)
  --scale=S         iteration-count multiplier for the proxy (default 0.25)
  --net=cscs|daint  network preset: CSCS testbed or Piz Daint (default cscs)
  --L=NS --o=NS --G=NS_PER_BYTE --S=BYTES
                    override individual LogGPS parameters (ns / bytes);
                    by default o comes from the paper's Table II per-app fit

analyze/sweep/mc/campaign options:
  --dl-max-us=X     sweep ceiling ΔL_max in microseconds (default 100, > 0)
  --points=N        grid points in [0, ΔL_max] (default 11, >= 2)
  --threads=N       parallelism, <= 0 = hardware concurrency (default 0)
  --format=F        table (default), csv, or json
  --csv             (sweep) shorthand for --format=csv

mc options (all stochastic paths share --seed; identical seeds reproduce
identical bytes whatever --threads):
  --samples=N       Monte Carlo sample count (default 256, >= 1)
  --seed=S          RNG seed (default 42)
  --sigma-L=R --sigma-o=R --sigma-G=R
                    relative stddev of normal jitter around the base value
                    (default 0 = pinned to the deterministic operating point)
  --dist-L=D --dist-o=D --dist-G=D
                    full distribution specs overriding the sigmas: base,
                    const:V, normal:MEAN,SD, relnormal:SIGMA, uniform:LO,HI
  --edge-sigma=R --edge-bias=R
                    per-edge multiplicative cost noise, the cluster
                    emulator's convention: factor = 1 + bias + |N(0, sigma)|
  --bands=P,...     tolerance band percents (default 1,2,5)

campaign stochastic options (shared --seed; see mc above):
  --mc-samples=N    per-scenario Monte Carlo samples (default 0 = off);
                    adds distributional runtime columns per grid point
  --mc-sigma-L=R --mc-sigma-o=R --mc-sigma-G=R --mc-edge-sigma=R
  --mc-edge-bias=R  jitter knobs of the mc axis (relative, as in mc)
  --probe=emulator  attach the seeded cluster emulator as a per-point
                    measurement column (--probe-runs averaged runs per
                    point, default 5; --noise-sigma run-to-run noise,
                    default 0.003)

campaign options (comma-separated grid axes; scenarios = cross product):
  --apps=A,B,...    proxy applications (default lulesh)
  --ranks=N,M,...   rank counts, each clamped per app (default 8)
  --scales=S,...    iteration-count multipliers (default 0.25)
  --topos=T,...     none, fat-tree, dragonfly (default none); with a
                    physical topology ΔL injects on the per-wire latency
  --nets=P,...      LogGPS presets: cscs, daint (default cscs)
  --L-list=NS,...   --o-list=NS,...  --G-list=NS_PER_BYTE,...
                    LogGPS override axes crossed with --nets; --S applies
                    to every variant; topology shape via the topo options

topo/place options:
  --l-wire=NS --d-switch=NS   per-wire / per-switch latency (default 274/108)
  --ft-radix=K                Fat Tree switch radix (default 8 -> 128 nodes)
  --df-groups=G --df-routers=A --df-hosts=P
                              Dragonfly shape (default 8x4x8 -> 256 nodes)
  --max-rounds=N              (place) Algorithm-3 round cap (default 64)
)";

/// Options shared by every analysis subcommand: which proxy app, at what
/// scale, under which LogGPS configuration.
struct AppConfig {
  std::string app;
  int ranks = 0;
  double scale = 0.0;
  loggops::Params params;
};

/// Integer flag values outside int range must be usage errors, not silent
/// truncation through static_cast (a mistyped --ranks=2^32+8 would
/// otherwise analyze ranks=8 with exit 0).
int int_flag(const Cli& cli, const std::string& key, long long fallback) {
  const long long v = cli.get_int(key, fallback);
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    throw UsageError(
        strformat("--%s value %lld out of range", key.c_str(), v));
  }
  return static_cast<int>(v);
}

/// S is graph-shaping (it selects eager vs rendezvous per message), so a
/// negative value must be a usage error — not wrap through the uint64
/// conversion into an "everything eager" threshold that silently analyzes a
/// different execution graph.
std::uint64_t rendezvous_threshold_flag(const Cli& cli,
                                        std::uint64_t fallback) {
  const long long S = cli.get_int("S", static_cast<long long>(fallback));
  if (S < 1) throw UsageError(strformat("need --S >= 1 (got %lld)", S));
  return static_cast<std::uint64_t>(S);
}

AppConfig parse_app_config(const Cli& cli) {
  AppConfig cfg;
  cfg.app = cli.get("app", "lulesh");
  cfg.ranks = apps::supported_ranks(
      cfg.app, int_flag(cli, "ranks", 8));
  cfg.scale = cli.get_double("scale", 0.25);
  // Same rule the campaign engine enforces: a non-finite or non-positive
  // scale would silently analyze a clamped or nonsense trace.
  if (!(cfg.scale > 0.0) || !std::isfinite(cfg.scale)) {
    throw UsageError(
        strformat("need finite --scale > 0 (got %g)", cfg.scale));
  }

  const std::string net = cli.get("net", "cscs");
  if (net == "cscs") {
    cfg.params = loggops::NetworkConfig::cscs_testbed();
  } else if (net == "daint") {
    cfg.params = loggops::NetworkConfig::piz_daint();
  } else {
    throw Error("unknown --net preset '" + net + "' (want cscs or daint)");
  }

  // Per-application overhead from Table II where the paper measured one;
  // apps outside Table II (npb-*, namd) keep the preset's o.
  core::apply_table2_overhead(cfg.params, cfg.app, cfg.ranks);
  cfg.params.L = cli.get_double("L", cfg.params.L);
  cfg.params.o = cli.get_double("o", cfg.params.o);
  cfg.params.G = cli.get_double("G", cfg.params.G);
  cfg.params.S = rendezvous_threshold_flag(cli, cfg.params.S);
  cfg.params.validate();
  return cfg;
}

graph::Graph build_graph(const AppConfig& cfg) {
  // S is graph-shaping: the eager/rendezvous protocol choice is baked into
  // the emitted edges, so an --S override must reach schedgen (keeping
  // analyze/sweep consistent with the campaign engine's graphs).
  schedgen::Options opt;
  opt.rendezvous_threshold = cfg.params.S;
  return schedgen::build_graph(
      apps::make_app_trace(cfg.app, cfg.ranks, cfg.scale), opt);
}

/// Validated ΔL-grid flags shared by analyze/sweep/campaign.  Degenerate
/// grids (a single point cannot anchor a sweep, a non-positive ceiling
/// cannot span one) are usage errors, not silent empty output.
struct GridFlags {
  TimeNs dl_max = 0.0;
  int points = 0;
};

GridFlags grid_flags(const Cli& cli) {
  GridFlags gf;
  gf.dl_max = us(cli.get_double("dl-max-us", 100.0));
  gf.points = int_flag(cli, "points", 11);
  // One copy of the degenerate-grid rules lives in linear_grid; surface its
  // UsageError here even for commands that build the grid later.
  (void)core::linear_grid(gf.dl_max, gf.points);
  return gf;
}

std::vector<TimeNs> sweep_grid(const GridFlags& gf) {
  return core::linear_grid(gf.dl_max, gf.points);
}

core::OutputFormat output_format(const Cli& cli, bool allow_csv_flag) {
  if (cli.has("format")) {
    return core::parse_output_format(cli.get("format", "table"));
  }
  if (allow_csv_flag && cli.get_bool("csv", false)) {
    return core::OutputFormat::kCsv;
  }
  return core::OutputFormat::kTable;
}

int cmd_analyze(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const GridFlags gf = grid_flags(cli);
  const auto format = output_format(cli, /*allow_csv_flag=*/false);
  const auto g = build_graph(cfg);
  core::ReportOptions opts;
  opts.sweep_max = gf.dl_max;
  opts.sweep_points = gf.points;
  opts.threads = int_flag(cli, "threads", 0);
  const auto rep = core::make_report(g, cfg.params, opts);
  switch (format) {
    case core::OutputFormat::kTable:
      out << strformat("app: %s   ranks: %d   scale: %g\n", cfg.app.c_str(),
                       cfg.ranks, cfg.scale);
      out << "graph: " << g.stats_string() << '\n';
      out << rep.to_string();
      break;
    case core::OutputFormat::kCsv:
      out << core::render(
          core::sweep_curve_table(rep.curve, rep.base_runtime, false),
          core::OutputFormat::kCsv);
      break;
    case core::OutputFormat::kJson:
      out << rep.to_json();
      break;
  }
  return 0;
}

int cmd_sweep(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const GridFlags gf = grid_flags(cli);
  const auto format = output_format(cli, /*allow_csv_flag=*/true);
  const auto g = build_graph(cfg);
  core::LatencyAnalyzer an(g, cfg.params);
  const auto points =
      an.sweep(sweep_grid(gf), int_flag(cli, "threads", 0));

  const bool human = format == core::OutputFormat::kTable;
  if (human) {
    out << strformat("app: %s   ranks: %d   scale: %g   base T: %s\n",
                     cfg.app.c_str(), cfg.ranks, cfg.scale,
                     human_time_ns(an.base_runtime()).c_str());
  }
  out << core::render(core::sweep_curve_table(points, an.base_runtime(), human),
                      format);
  return 0;
}

/// The uniform seed flag of every stochastic path (mc, the campaign mc
/// axis, the campaign emulator probe): one spelling, one default, and the
/// documented contract that identical seeds reproduce identical bytes.
std::uint64_t seed_flag(const Cli& cli) {
  const long long v = cli.get_int("seed", 42);
  if (v < 0) {
    throw UsageError(strformat("need --seed >= 0 (got %lld)", v));
  }
  return static_cast<std::uint64_t>(v);
}

/// The sampled-parameter distributions of an mc run: --dist-X wins when
/// given, otherwise --sigma-X as relative normal jitter (0 = degenerate).
stoch::Distribution dist_flag(const Cli& cli, const std::string& param) {
  if (cli.has("dist-" + param)) {
    return stoch::parse_distribution(cli.get("dist-" + param, "base"));
  }
  const double sigma = cli.get_double("sigma-" + param, 0.0);
  auto d = stoch::Distribution::rel_normal(sigma);
  d.validate("--sigma-" + param);
  return d;
}

/// Comma-separated list flags for the campaign grid axes.  Blank fields are
/// dropped; an effectively empty axis is a usage error.
std::vector<std::string> name_list(const Cli& cli, const std::string& key,
                                   const std::string& fallback) {
  std::vector<std::string> out;
  for (const auto& field : split(cli.get(key, fallback), ',')) {
    const auto f = trim(field);
    if (!f.empty()) out.emplace_back(f);
  }
  if (out.empty()) throw UsageError("empty --" + key + " list");
  return out;
}

std::vector<double> double_list(const Cli& cli, const std::string& key,
                                const std::string& fallback) {
  std::vector<double> out;
  for (const auto& field : name_list(cli, key, fallback)) {
    try {
      out.push_back(parse_double(field));
    } catch (const Error&) {
      throw UsageError("bad --" + key + " value '" + field + "'");
    }
  }
  return out;
}

std::vector<int> int_list(const Cli& cli, const std::string& key,
                          const std::string& fallback) {
  std::vector<int> out;
  for (const auto& field : name_list(cli, key, fallback)) {
    long long v = 0;
    try {
      v = parse_ll(field);
    } catch (const Error&) {
      throw UsageError("bad --" + key + " value '" + field + "'");
    }
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
      throw UsageError(
          strformat("--%s value %lld out of range", key.c_str(), v));
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

int cmd_mc(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const GridFlags gf = grid_flags(cli);
  const auto format = output_format(cli, /*allow_csv_flag=*/false);

  stoch::McSpec spec;
  spec.L = dist_flag(cli, "L");
  spec.o = dist_flag(cli, "o");
  spec.G = dist_flag(cli, "G");
  spec.noise.sigma = cli.get_double("edge-sigma", 0.0);
  spec.noise.bias = cli.get_double("edge-bias", 0.0);
  spec.samples = int_flag(cli, "samples", 256);
  spec.seed = seed_flag(cli);
  spec.threads = int_flag(cli, "threads", 0);
  spec.delta_Ls = sweep_grid(gf);
  spec.band_percents = double_list(cli, "bands", "1,2,5");
  spec.validate();

  const auto g = build_graph(cfg);
  const auto res = stoch::run_mc(g, cfg.params, spec);

  const bool human = format == core::OutputFormat::kTable;
  if (human) {
    out << strformat("app: %s   ranks: %d   scale: %g\n", cfg.app.c_str(),
                     cfg.ranks, cfg.scale);
    out << strformat(
        "mc: %d samples   seed %llu   L~%s   o~%s   G~%s   edge noise "
        "sigma=%g bias=%g\n",
        spec.samples, static_cast<unsigned long long>(spec.seed),
        spec.L.to_string().c_str(), spec.o.to_string().c_str(),
        spec.G.to_string().c_str(), spec.noise.sigma, spec.noise.bias);
  }
  out << core::render(stoch::mc_summary_table(res, human), format);
  return 0;
}

/// The LogGPS axis of a campaign: network presets crossed with the optional
/// L/o/G override lists; a single --S override applies to every variant.
/// Variant names embed the user's original field text (not a re-formatted
/// value), so two distinct list entries can never collide into one label.
std::vector<core::ConfigVariant> campaign_configs(const Cli& cli) {
  struct Override {
    std::string text;  ///< the user's spelling, used in the variant name
    double value = 0.0;
  };
  const auto overrides = [&](const std::string& key) {
    std::vector<Override> out;
    if (!cli.has(key)) return out;
    const auto values = double_list(cli, key, "");
    const auto texts = name_list(cli, key, "");
    for (std::size_t i = 0; i < values.size(); ++i) {
      out.push_back({texts[i], values[i]});
    }
    return out;
  };
  const auto Ls = overrides("L-list");
  const auto os_ = overrides("o-list");
  const auto Gs = overrides("G-list");
  // An absent axis contributes one pass-through (null) slot to the cross
  // product.
  const auto axis = [](const std::vector<Override>& list) {
    std::vector<const Override*> ptrs;
    for (const auto& o : list) ptrs.push_back(&o);
    if (ptrs.empty()) ptrs.push_back(nullptr);
    return ptrs;
  };
  std::vector<core::ConfigVariant> out;
  for (const std::string& net : name_list(cli, "nets", "cscs")) {
    loggops::Params base;
    if (net == "cscs") {
      base = loggops::NetworkConfig::cscs_testbed();
    } else if (net == "daint") {
      base = loggops::NetworkConfig::piz_daint();
    } else {
      throw UsageError("unknown --nets preset '" + net +
                       "' (want cscs or daint)");
    }
    for (const Override* L : axis(Ls)) {
      for (const Override* o : axis(os_)) {
        for (const Override* G : axis(Gs)) {
          core::ConfigVariant v;
          v.name = net;
          v.params = base;
          if (L) {
            v.params.L = L->value;
            v.name += "/L=" + L->text;
          }
          if (o) {
            v.params.o = o->value;
            v.o_is_default = false;
            v.name += "/o=" + o->text;
          }
          if (G) {
            v.params.G = G->value;
            v.name += "/G=" + G->text;
          }
          v.params.S = rendezvous_threshold_flag(cli, v.params.S);
          out.push_back(std::move(v));
        }
      }
    }
  }
  return out;
}

int cmd_campaign(const Cli& cli, std::ostream& out) {
  core::CampaignSpec spec;
  spec.apps = name_list(cli, "apps", "lulesh");
  spec.ranks = int_list(cli, "ranks", "8");
  spec.scales = double_list(cli, "scales", "0.25");
  spec.topologies = name_list(cli, "topos", "none");
  spec.configs = campaign_configs(cli);
  spec.delta_Ls = sweep_grid(grid_flags(cli));
  spec.threads = int_flag(cli, "threads", 0);
  spec.topo.l_wire = cli.get_double("l-wire", spec.topo.l_wire);
  spec.topo.d_switch = cli.get_double("d-switch", spec.topo.d_switch);
  spec.topo.ft_radix = int_flag(cli, "ft-radix", spec.topo.ft_radix);
  spec.topo.df_groups = int_flag(cli, "df-groups", spec.topo.df_groups);
  spec.topo.df_routers = int_flag(cli, "df-routers", spec.topo.df_routers);
  spec.topo.df_hosts = int_flag(cli, "df-hosts", spec.topo.df_hosts);
  spec.mc.samples = int_flag(cli, "mc-samples", 0);
  spec.mc.seed = seed_flag(cli);
  spec.mc.sigma_L = cli.get_double("mc-sigma-L", 0.0);
  spec.mc.sigma_o = cli.get_double("mc-sigma-o", 0.0);
  spec.mc.sigma_G = cli.get_double("mc-sigma-G", 0.0);
  spec.mc.noise.sigma = cli.get_double("mc-edge-sigma", 0.0);
  spec.mc.noise.bias = cli.get_double("mc-edge-bias", 0.0);
  const auto format = output_format(cli, /*allow_csv_flag=*/false);

  // Optional per-point measurement column: the seeded cluster emulator as
  // the campaign probe.  Every scenario constructs its own emulator from
  // the shared --seed, so the column's bytes depend only on the spec —
  // never on the thread count or scenario interleaving.  The probe knobs
  // are validated whenever present — a bad or orphaned --probe-runs must
  // be a usage error, not a silent no-op.
  injector::ClusterEmulator::Config emu_cfg;
  emu_cfg.noise_sigma = cli.get_double("noise-sigma", emu_cfg.noise_sigma);
  emu_cfg.seed = seed_flag(cli);
  const int probe_runs = int_flag(cli, "probe-runs", 5);
  if (probe_runs < 1) {
    throw UsageError(strformat("need --probe-runs >= 1 (got %d)", probe_runs));
  }
  if (emu_cfg.noise_sigma < 0.0) {
    throw UsageError(strformat("need --noise-sigma >= 0 (got %g)",
                               emu_cfg.noise_sigma));
  }
  if (!cli.has("probe") &&
      (cli.has("probe-runs") || cli.has("noise-sigma"))) {
    throw UsageError(
        "probe options given without --probe (want --probe=emulator)");
  }
  core::Campaign::Probe probe;
  std::string probe_name;
  if (cli.has("probe")) {
    const std::string kind = cli.get("probe", "");
    if (kind != "emulator") {
      throw UsageError("unknown --probe '" + kind + "' (want emulator)");
    }
    probe = [emu_cfg, probe_runs](const core::Scenario& s,
                                  const graph::Graph& g) {
      injector::ClusterEmulator emulator(g, s.params, emu_cfg);
      return emulator.sweep(s.delta_Ls, probe_runs);
    };
    probe_name = format == core::OutputFormat::kTable ? "measured"
                                                      : "measured_ns";
  }

  core::Campaign campaign(spec);
  const auto results = campaign.run(probe);
  const bool human = format == core::OutputFormat::kTable;
  if (human) {
    out << strformat(
        "campaign: %zu scenarios x %zu ΔL points (%zu distinct graphs)\n",
        campaign.stats().scenarios_run, spec.delta_Ls.size(),
        campaign.stats().graphs_built);
  }
  out << core::render(core::campaign_points_table(results, human, probe_name),
                      format);
  return 0;
}

int cmd_topo(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const auto g = build_graph(cfg);
  const double l_wire = cli.get_double("l-wire", 274.0);
  const double d_switch = cli.get_double("d-switch", 108.0);

  const topo::FatTree fat_tree(int_flag(cli, "ft-radix", 8));
  const topo::Dragonfly dragonfly(
      int_flag(cli, "df-groups", 8),
      int_flag(cli, "df-routers", 4),
      int_flag(cli, "df-hosts", 8));
  const std::array<const topo::Topology*, 2> topologies{&fat_tree,
                                                        &dragonfly};
  for (const topo::Topology* t : topologies) {
    if (t->nnodes() < cfg.ranks) {
      throw Error(t->name() + " has only " + std::to_string(t->nnodes()) +
                  " nodes for " + std::to_string(cfg.ranks) + " ranks");
    }
  }
  const auto placement = topo::identity_placement(cfg.ranks);

  out << strformat("app: %s   ranks: %d   per-wire latency sensitivity\n\n",
                   cfg.app.c_str(), cfg.ranks);
  Table table({"topology", "T(l_wire)", "dT/dl_wire", "1% tolerance l_wire"});
  for (const topo::Topology* t : topologies) {
    auto space = std::make_shared<lp::LinkClassParamSpace>(
        topo::make_wire_latency_space(cfg.params, *t, placement, l_wire,
                                      d_switch));
    lp::ParametricSolver solver(g, space);
    const auto sol = solver.solve(0, l_wire);
    const double tol = solver.max_param_for_budget(0, sol.value * 1.01);
    table.add_row({t->name(), human_time_ns(sol.value),
                   strformat("%.0f", sol.gradient[0]),
                   std::isfinite(tol) ? human_time_ns(tol) : "unbounded"});
  }
  out << table.to_string();

  // Dragonfly per-class breakdown (Fig. 19): tolerance of each wire class
  // with the other two held at their base values.
  auto df_space = std::make_shared<lp::LinkClassParamSpace>(
      topo::make_dragonfly_class_space(cfg.params, dragonfly, placement,
                                       l_wire, l_wire, l_wire, d_switch));
  lp::ParametricSolver df_solver(g, df_space);
  const auto base_sol = df_solver.solve(0, l_wire);
  const double T0 = base_sol.value;
  out << strformat("\nDragonfly wire classes (budget = 1%% over T = %s):\n",
                   human_time_ns(T0).c_str());
  Table classes({"class", "lambda", "1% tolerance"});
  for (int k = 0; k < df_space->num_params(); ++k) {
    const auto sol = k == 0 ? base_sol : df_solver.solve(k, l_wire);
    const double tol = df_solver.max_param_for_budget(k, T0 * 1.01);
    classes.add_row(
        {df_space->param_name(k),
         strformat("%.0f", sol.gradient[static_cast<std::size_t>(k)]),
         std::isfinite(tol) ? human_time_ns(tol) : "unbounded"});
  }
  out << classes.to_string();
  return 0;
}

int cmd_place(const Cli& cli, std::ostream& out) {
  const AppConfig cfg = parse_app_config(cli);
  const auto g = build_graph(cfg);
  const topo::FatTree ft(int_flag(cli, "ft-radix", 8));
  if (ft.nnodes() < cfg.ranks) {
    throw Error(ft.name() + " has only " + std::to_string(ft.nnodes()) +
                " nodes for " + std::to_string(cfg.ranks) + " ranks");
  }
  core::WireCost wire;
  wire.l_wire = cli.get_double("l-wire", wire.l_wire);
  wire.d_switch = cli.get_double("d-switch", wire.d_switch);
  const auto max_rounds = int_flag(cli, "max-rounds", 64);

  const auto block = core::block_placement(g, cfg.params, ft, wire);
  const auto volume = core::volume_greedy_placement(g, cfg.params, ft, wire);
  const auto opt =
      core::optimize_placement(g, cfg.params, ft, wire, {}, max_rounds);

  out << strformat("app: %s   ranks: %d on %s\n\n", cfg.app.c_str(),
                   cfg.ranks, ft.name().c_str());
  Table table({"strategy", "predicted runtime", "vs block"});
  const auto pct = [&](double t) {
    return strformat("%+.2f%%", 100.0 * (t - block.predicted_runtime) /
                                    block.predicted_runtime);
  };
  table.add_row({"block (default)", human_time_ns(block.predicted_runtime),
                 "+0.00%"});
  table.add_row({"volume-greedy", human_time_ns(volume.predicted_runtime),
                 pct(volume.predicted_runtime)});
  table.add_row({strformat("llamp algorithm 3 (%d swaps)", opt.swaps),
                 human_time_ns(opt.predicted_runtime),
                 pct(opt.predicted_runtime)});
  out << table.to_string();
  return 0;
}

int cmd_apps(std::ostream& out) {
  for (const auto& name : apps::app_names()) out << name << '\n';
  return 0;
}

/// Boolean flags: these never take a following value, so a token after them
/// must not be folded — it is a stray positional the validation below should
/// reject, not the flag's value.
constexpr std::string_view kBoolKeys[] = {"csv"};

/// The subcommands take no positional arguments, so both `--key=value` and
/// `--key value` are accepted: a bare non-boolean `--key` followed by a
/// non-flag token is folded into the `=` form the shared Cli parser
/// understands.
std::vector<std::string> normalize_args(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (starts_with(arg, "--") && arg.find('=') == std::string::npos &&
        i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      const std::string_view key = std::string_view(arg).substr(2);
      if (std::find(std::begin(kBoolKeys), std::end(kBoolKeys), key) ==
          std::end(kBoolKeys)) {
        arg += '=';
        arg += argv[++i];
      }
    }
    args.push_back(std::move(arg));
  }
  return args;
}

constexpr std::string_view kCommonKeys[] = {"app", "ranks", "scale", "net",
                                            "L",   "o",     "G",     "S"};
constexpr std::string_view kGridKeys[] = {"dl-max-us", "points", "threads",
                                          "format"};
constexpr std::string_view kTopoKeys[] = {"l-wire",    "d-switch",
                                          "ft-radix",  "df-groups",
                                          "df-routers", "df-hosts"};
constexpr std::string_view kPlaceKeys[] = {"l-wire", "d-switch", "ft-radix",
                                           "max-rounds"};
constexpr std::string_view kCampaignKeys[] = {
    "apps",       "ranks",       "scales",      "topos",       "nets",
    "L-list",     "o-list",      "G-list",      "S",           "seed",
    "probe",      "probe-runs",  "noise-sigma", "mc-samples",  "mc-sigma-L",
    "mc-sigma-o", "mc-sigma-G",  "mc-edge-sigma", "mc-edge-bias"};
constexpr std::string_view kMcKeys[] = {
    "samples",  "seed",    "sigma-L",    "sigma-o",   "sigma-G", "dist-L",
    "dist-o",   "dist-G",  "edge-sigma", "edge-bias", "bands"};

/// Reject misspelled options and stray positionals: a typo'd flag must be a
/// usage error, not a silent fall-back to the default value.  Returns an
/// empty string when every token is a known `--key[=value]`.
std::string first_bad_arg(const std::string& sub,
                          const std::vector<std::string>& args) {
  std::vector<std::string_view> known;
  const auto add = [&](auto& keys) {
    known.insert(known.end(), std::begin(keys), std::end(keys));
  };
  if (sub != "apps" && sub != "campaign") add(kCommonKeys);
  if (sub == "analyze" || sub == "sweep" || sub == "mc") add(kGridKeys);
  if (sub == "mc") add(kMcKeys);
  if (sub == "sweep") known.push_back("csv");
  if (sub == "topo") add(kTopoKeys);
  if (sub == "place") add(kPlaceKeys);
  if (sub == "campaign") {
    add(kCampaignKeys);
    add(kGridKeys);
    add(kTopoKeys);
  }

  for (const std::string& arg : args) {
    if (!starts_with(arg, "--")) return arg;  // stray positional
    const auto eq = arg.find('=');
    const std::string_view key =
        std::string_view(arg).substr(2, eq == std::string::npos ? arg.npos
                                                                : eq - 2);
    if (std::find(known.begin(), known.end(), key) == known.end()) return arg;
  }
  return {};
}

}  // namespace

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  if (argc < 2) {
    err << kUsage;
    return 2;
  }
  const std::string sub = argv[1];
  if (sub == "help" || sub == "--help" || sub == "-h") {
    out << kUsage;
    return 0;
  }
  if (sub != "analyze" && sub != "sweep" && sub != "campaign" &&
      sub != "mc" && sub != "topo" && sub != "place" && sub != "apps") {
    err << "llamp: unknown subcommand '" << sub << "'\n\n" << kUsage;
    return 2;
  }
  const std::vector<std::string> args = normalize_args(argc, argv);
  if (const std::string bad = first_bad_arg(sub, args); !bad.empty()) {
    err << "llamp " << sub << ": unrecognized argument '" << bad
        << "' (see `llamp help`)\n";
    return 2;
  }
  std::vector<const char*> cargs;
  cargs.push_back("llamp");
  for (const auto& a : args) cargs.push_back(a.c_str());
  const Cli cli(static_cast<int>(cargs.size()), cargs.data());
  try {
    if (sub == "analyze") return cmd_analyze(cli, out);
    if (sub == "sweep") return cmd_sweep(cli, out);
    if (sub == "campaign") return cmd_campaign(cli, out);
    if (sub == "mc") return cmd_mc(cli, out);
    if (sub == "topo") return cmd_topo(cli, out);
    if (sub == "place") return cmd_place(cli, out);
    return cmd_apps(out);
  } catch (const UsageError& e) {
    err << "llamp " << sub << ": " << e.what() << '\n';
    return 2;
  } catch (const Error& e) {
    err << "llamp " << sub << ": " << e.what() << '\n';
    return 1;
  }
}

}  // namespace llamp::tools
