#include "tools/cli_driver.hpp"

#include <algorithm>
#include <atomic>
#include <csignal>
#include <fstream>
#include <iostream>
#include <limits>
#include <optional>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "api/batch.hpp"
#include "api/engine.hpp"
#include "api/request.hpp"
#include "apps/registry.hpp"
#include "core/report.hpp"
#include "serve/server.hpp"
#include "serve/service.hpp"
#include "util/build_info.hpp"
#include "util/cli.hpp"
#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::tools {
namespace {

constexpr const char* kUsage = R"(llamp — LP-based MPI latency-tolerance analysis (conf_sc_ShenHCSDGWH24)

usage: llamp <subcommand> [options]

subcommands:
  analyze   full tolerance report: runtime forecast curve, lambda_L / rho_L,
            tolerance bands, critical latencies, lambda_G
  sweep     evaluate runtime / lambda_L / rho_L over a grid of latency
            injections ΔL (LP solves run in parallel)
  campaign  batch engine for multi-scenario studies: expand
            {apps} x {ranks} x {scales} x {topologies} x {LogGPS variants}
            x ΔL grid into analysis jobs, run them on a thread pool (one
            graph build and one solver per scenario), emit the whole grid
  mc        Monte Carlo uncertainty quantification: resample the LogGPS
            operating point (and optionally per-edge cost noise) N times,
            stream the perturbed LP analyses into distributional summaries
            (runtime quantiles per ΔL, lambda_L spread, tolerance bands
            with confidence intervals)
  batch     serve a JSONL request stream on one engine session: one request
            object per input line ({"op": "analyze", ...} mirroring the
            subcommand flags; see DESIGN.md §4d), one result object per
            line on stdout, in input order whatever --threads; graphs are
            cached across the whole batch
  topo      per-wire latency sensitivity on Fat Tree vs Dragonfly, plus the
            Dragonfly per-wire-class tolerance breakdown
  place     compare block, volume-greedy, and LLAMP Algorithm-3 rank
            placements on a Fat Tree
  stats     print one engine session's metrics summary — request counters,
            cache and pool statistics, latency quantiles; optionally
            execute a JSONL request file first so the summary describes a
            real workload
  serve     run the analysis engine as an HTTP/1.1 daemon on loopback:
            POST /v1/{analyze,sweep,campaign,mc,topo,place} take the batch
            request JSON ("op" optional — the path names it) and return
            the batch result line; GET /healthz and GET /metrics answer
            even mid-campaign; SIGTERM/SIGINT drain in-flight requests and
            exit 0
  apps      list the registered proxy applications

`llamp`, `llamp help`, and `llamp <subcommand> --help` print this text and
exit 0; `llamp --version` prints the version.  In --format=json modes,
errors are additionally emitted on stdout as {"error": {...}} objects
(exit codes unchanged: 1 analysis error, 2 usage error).

common options (analyze/sweep/mc/topo/place; campaign has its own axes below):
  --app=NAME        proxy application (default lulesh; see `llamp apps`)
  --ranks=N         requested rank count, clamped to the nearest supported
                    value at or below N (default 8)
  --scale=S         iteration-count multiplier for the proxy (default 0.25)
  --net=cscs|daint  network preset: CSCS testbed or Piz Daint (default cscs)
  --L=NS --o=NS --G=NS_PER_BYTE --S=BYTES
                    override individual LogGPS parameters (ns / bytes);
                    by default o comes from the paper's Table II per-app fit

analyze/sweep/mc/campaign options:
  --dl-max-us=X     sweep ceiling ΔL_max in microseconds (default 100, > 0)
  --points=N        grid points in [0, ΔL_max] (default 11, >= 2)
  --threads=N       parallelism, <= 0 = hardware concurrency (default 0)
  --format=F        table (default), csv, or json
  --csv             (sweep) shorthand for --format=csv

batch options:
  --file=PATH       JSONL request file; '-' reads stdin (default -)
  --threads=N       request-level parallelism, <= 0 = hardware concurrency
  --metrics         print the session metrics summary to stderr after the
                    response stream (stdout stays pure JSONL)

observability options (every engine subcommand):
  --trace-out=PATH  record request tracing spans and write them as Chrome
                    trace-event JSON on exit (chrome://tracing / Perfetto)

serve options:
  --port=N          listen port on 127.0.0.1 (default 8080; 0 = ephemeral,
                    the bound port is printed on the listen line)
  --threads=N       engine pool size for intra-request parallelism,
                    <= 0 = hardware concurrency (requests themselves run
                    one at a time — responses are deterministic whatever N)
  --max-inflight=N  queued analysis requests admitted at once; the next
                    request gets 503 + Retry-After (default 64)

stats options:
  --file=PATH       JSONL request file to execute first; '-' reads stdin
                    (default: none — report the empty session)
  --threads=N       request-level parallelism for --file
  --format=F        table (default) or json (the machine snapshot; the
                    payload a /metrics endpoint would serve)

mc options (all stochastic paths share --seed; identical seeds reproduce
identical bytes whatever --threads):
  --samples=N       Monte Carlo sample count (default 256, >= 1)
  --seed=S          RNG seed (default 42)
  --sigma-L=R --sigma-o=R --sigma-G=R
                    relative stddev of normal jitter around the base value
                    (default 0 = pinned to the deterministic operating point)
  --dist-L=D --dist-o=D --dist-G=D
                    full distribution specs overriding the sigmas: base,
                    const:V, normal:MEAN,SD, relnormal:SIGMA, uniform:LO,HI
  --edge-sigma=R --edge-bias=R
                    per-edge multiplicative cost noise, the cluster
                    emulator's convention: factor = 1 + bias + |N(0, sigma)|
  --bands=P,...     tolerance band percents (default 1,2,5)

campaign stochastic options (shared --seed; see mc above):
  --mc-samples=N    per-scenario Monte Carlo samples (default 0 = off);
                    adds distributional runtime columns per grid point
  --mc-sigma-L=R --mc-sigma-o=R --mc-sigma-G=R --mc-edge-sigma=R
  --mc-edge-bias=R  jitter knobs of the mc axis (relative, as in mc)
  --probe=emulator  attach the seeded cluster emulator as a per-point
                    measurement column (--probe-runs averaged runs per
                    point, default 5; --noise-sigma run-to-run noise,
                    default 0.003)

campaign options (comma-separated grid axes; scenarios = cross product):
  --apps=A,B,...    proxy applications (default lulesh)
  --ranks=N,M,...   rank counts, each clamped per app (default 8)
  --scales=S,...    iteration-count multipliers (default 0.25)
  --topos=T,...     none, fat-tree, dragonfly (default none); with a
                    physical topology ΔL injects on the per-wire latency
  --nets=P,...      LogGPS presets: cscs, daint (default cscs)
  --L-list=NS,...   --o-list=NS,...  --G-list=NS_PER_BYTE,...
                    LogGPS override axes crossed with --nets; --S applies
                    to every variant; topology shape via the topo options

topo/place options:
  --l-wire=NS --d-switch=NS   per-wire / per-switch latency (default 274/108)
  --ft-radix=K                Fat Tree switch radix (default 8 -> 128 nodes)
  --df-groups=G --df-routers=A --df-hosts=P
                              Dragonfly shape (default 8x4x8 -> 256 nodes)
  --max-rounds=N              (place) Algorithm-3 round cap (default 64)
)";

/// Integer flag values outside int range must be usage errors, not silent
/// truncation through static_cast (a mistyped --ranks=2^32+8 would
/// otherwise analyze ranks=8 with exit 0).
int int_flag(const Cli& cli, const std::string& key, long long fallback) {
  const long long v = cli.get_int(key, fallback);
  if (v < std::numeric_limits<int>::min() ||
      v > std::numeric_limits<int>::max()) {
    throw UsageError(
        strformat("--%s value %lld out of range", key.c_str(), v));
  }
  return static_cast<int>(v);
}

/// S is graph-shaping (it selects eager vs rendezvous per message), so a
/// negative value must be a usage error — not wrap through the uint64
/// conversion into an "everything eager" threshold that silently analyzes a
/// different execution graph.
std::optional<std::uint64_t> rendezvous_threshold_flag(const Cli& cli) {
  if (!cli.has("S")) return std::nullopt;
  const long long S = cli.get_int("S", 0);
  if (S < 1) throw UsageError(strformat("need --S >= 1 (got %lld)", S));
  return static_cast<std::uint64_t>(S);
}

// ---------------------------------------------------------------------------
// The one flag → request parsing block (satellite of ISSUE 5): every
// subcommand assembles its api request from these shared helpers, so a
// common option is parsed in exactly one place.
// ---------------------------------------------------------------------------

/// The shared app/params option block of every single-scenario subcommand.
/// Clamping, preset resolution, and semantic validation happen in the
/// engine — the CLI only transcribes flags.
api::AppSpec app_spec(const Cli& cli) {
  api::AppSpec spec;
  spec.app = cli.get("app", spec.app);
  spec.ranks = int_flag(cli, "ranks", spec.ranks);
  spec.scale = cli.get_double("scale", spec.scale);
  spec.net = cli.get("net", spec.net);
  if (cli.has("L")) spec.L = cli.get_double("L", 0.0);
  if (cli.has("o")) spec.o = cli.get_double("o", 0.0);
  if (cli.has("G")) spec.G = cli.get_double("G", 0.0);
  spec.S = rendezvous_threshold_flag(cli);
  return spec;
}

/// The shared ΔL-grid option block of analyze/sweep/mc/campaign.
api::GridSpec grid_spec(const Cli& cli) {
  api::GridSpec grid;
  grid.dl_max_us = cli.get_double("dl-max-us", grid.dl_max_us);
  grid.points = int_flag(cli, "points", grid.points);
  return grid;
}

/// The shared output-format option block (--format, and --csv where the
/// subcommand keeps the historical shorthand).
core::OutputFormat output_format(const Cli& cli, bool allow_csv_flag) {
  if (cli.has("format")) {
    return core::parse_output_format(cli.get("format", "table"));
  }
  if (allow_csv_flag && cli.get_bool("csv", false)) {
    return core::OutputFormat::kCsv;
  }
  return core::OutputFormat::kTable;
}

/// The uniform seed flag of every stochastic path (mc, the campaign mc
/// axis, the campaign emulator probe): one spelling, one default, and the
/// documented contract that identical seeds reproduce identical bytes.
std::uint64_t seed_flag(const Cli& cli) {
  const long long v = cli.get_int("seed", 42);
  if (v < 0) {
    throw UsageError(strformat("need --seed >= 0 (got %lld)", v));
  }
  return static_cast<std::uint64_t>(v);
}

/// Comma-separated list flags for the campaign grid axes.  Blank fields are
/// dropped; an effectively empty axis is a usage error.
std::vector<std::string> name_list(const Cli& cli, const std::string& key,
                                   const std::string& fallback) {
  std::vector<std::string> out;
  for (const auto& field : split(cli.get(key, fallback), ',')) {
    const auto f = trim(field);
    if (!f.empty()) out.emplace_back(f);
  }
  if (out.empty()) throw UsageError("empty --" + key + " list");
  return out;
}

std::vector<double> double_list(const Cli& cli, const std::string& key,
                                const std::string& fallback) {
  std::vector<double> out;
  for (const auto& field : name_list(cli, key, fallback)) {
    try {
      out.push_back(parse_double(field));
    } catch (const Error&) {
      throw UsageError("bad --" + key + " value '" + field + "'");
    }
  }
  return out;
}

std::vector<int> int_list(const Cli& cli, const std::string& key,
                          const std::string& fallback) {
  std::vector<int> out;
  for (const auto& field : name_list(cli, key, fallback)) {
    long long v = 0;
    try {
      v = parse_ll(field);
    } catch (const Error&) {
      throw UsageError("bad --" + key + " value '" + field + "'");
    }
    if (v < std::numeric_limits<int>::min() ||
        v > std::numeric_limits<int>::max()) {
      throw UsageError(
          strformat("--%s value %lld out of range", key.c_str(), v));
    }
    out.push_back(static_cast<int>(v));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Subcommands: parse flags into a typed request, execute it on the shared
// engine, render the typed result.  All analysis logic lives behind
// api::Engine; these adapters own nothing but flag spelling.
// ---------------------------------------------------------------------------

int cmd_analyze(const Cli& cli, api::Engine& engine, std::ostream& out) {
  api::AnalyzeRequest req;
  req.app = app_spec(cli);
  req.grid = grid_spec(cli);
  req.threads = int_flag(cli, "threads", 0);
  engine.analyze(req).render(output_format(cli, /*allow_csv_flag=*/false),
                             out);
  return 0;
}

int cmd_sweep(const Cli& cli, api::Engine& engine, std::ostream& out) {
  api::SweepRequest req;
  req.app = app_spec(cli);
  req.grid = grid_spec(cli);
  req.threads = int_flag(cli, "threads", 0);
  engine.sweep(req).render(output_format(cli, /*allow_csv_flag=*/true), out);
  return 0;
}

int cmd_mc(const Cli& cli, api::Engine& engine, std::ostream& out) {
  api::McRequest req;
  req.app = app_spec(cli);
  req.grid = grid_spec(cli);
  req.samples = int_flag(cli, "samples", req.samples);
  req.seed = seed_flag(cli);
  // A present-but-empty --dist-X= must stay an error (an unset shell
  // variable interpolated into the flag), never a silent fall-back to the
  // sigma path: an empty request field means "flag absent".
  const auto dist = [&](const char* key) -> std::string {
    if (!cli.has(key)) return {};
    const std::string spec = cli.get(key, "base");
    if (spec.empty()) {
      throw UsageError(std::string("empty --") + key + " spec (want base, "
                       "const:V, normal:MEAN,SD, relnormal:SIGMA, or "
                       "uniform:LO,HI)");
    }
    return spec;
  };
  req.dist_L = dist("dist-L");
  req.dist_o = dist("dist-o");
  req.dist_G = dist("dist-G");
  req.sigma_L = cli.get_double("sigma-L", 0.0);
  req.sigma_o = cli.get_double("sigma-o", 0.0);
  req.sigma_G = cli.get_double("sigma-G", 0.0);
  req.edge_sigma = cli.get_double("edge-sigma", 0.0);
  req.edge_bias = cli.get_double("edge-bias", 0.0);
  req.bands = double_list(cli, "bands", "1,2,5");
  req.threads = int_flag(cli, "threads", 0);
  engine.mc(req).render(output_format(cli, /*allow_csv_flag=*/false), out);
  return 0;
}

int cmd_campaign(const Cli& cli, api::Engine& engine, std::ostream& out) {
  api::CampaignRequest req;
  req.apps = name_list(cli, "apps", "lulesh");
  req.ranks = int_list(cli, "ranks", "8");
  req.scales = double_list(cli, "scales", "0.25");
  req.topologies = name_list(cli, "topos", "none");
  req.nets = name_list(cli, "nets", "cscs");
  if (cli.has("L-list")) req.L_list = name_list(cli, "L-list", "");
  if (cli.has("o-list")) req.o_list = name_list(cli, "o-list", "");
  if (cli.has("G-list")) req.G_list = name_list(cli, "G-list", "");
  req.S = rendezvous_threshold_flag(cli);
  req.grid = grid_spec(cli);
  req.topo.l_wire = cli.get_double("l-wire", req.topo.l_wire);
  req.topo.d_switch = cli.get_double("d-switch", req.topo.d_switch);
  req.topo.ft_radix = int_flag(cli, "ft-radix", req.topo.ft_radix);
  req.topo.df_groups = int_flag(cli, "df-groups", req.topo.df_groups);
  req.topo.df_routers = int_flag(cli, "df-routers", req.topo.df_routers);
  req.topo.df_hosts = int_flag(cli, "df-hosts", req.topo.df_hosts);
  req.mc_samples = int_flag(cli, "mc-samples", 0);
  req.seed = seed_flag(cli);
  req.mc_sigma_L = cli.get_double("mc-sigma-L", 0.0);
  req.mc_sigma_o = cli.get_double("mc-sigma-o", 0.0);
  req.mc_sigma_G = cli.get_double("mc-sigma-G", 0.0);
  req.mc_edge_sigma = cli.get_double("mc-edge-sigma", 0.0);
  req.mc_edge_bias = cli.get_double("mc-edge-bias", 0.0);
  // Probe knobs without the probe are a mistake, not a no-op (the engine
  // cannot see flag presence, so the orphan rule lives here).
  if (!cli.has("probe") &&
      (cli.has("probe-runs") || cli.has("noise-sigma"))) {
    throw UsageError(
        "probe options given without --probe (want --probe=emulator)");
  }
  if (cli.has("probe")) {
    req.probe = cli.get("probe", "");
    if (req.probe.empty()) {
      throw UsageError("unknown --probe '' (want emulator)");
    }
  }
  req.probe_runs = int_flag(cli, "probe-runs", req.probe_runs);
  req.noise_sigma = cli.get_double("noise-sigma", req.noise_sigma);
  req.threads = int_flag(cli, "threads", 0);
  engine.campaign(req).render(output_format(cli, /*allow_csv_flag=*/false),
                              out);
  return 0;
}

int cmd_topo(const Cli& cli, api::Engine& engine, std::ostream& out) {
  api::TopoRequest req;
  req.app = app_spec(cli);
  req.l_wire = cli.get_double("l-wire", req.l_wire);
  req.d_switch = cli.get_double("d-switch", req.d_switch);
  req.ft_radix = int_flag(cli, "ft-radix", req.ft_radix);
  req.df_groups = int_flag(cli, "df-groups", req.df_groups);
  req.df_routers = int_flag(cli, "df-routers", req.df_routers);
  req.df_hosts = int_flag(cli, "df-hosts", req.df_hosts);
  engine.topo(req).render(core::OutputFormat::kTable, out);
  return 0;
}

int cmd_place(const Cli& cli, api::Engine& engine, std::ostream& out) {
  api::PlaceRequest req;
  req.app = app_spec(cli);
  req.l_wire = cli.get_double("l-wire", req.l_wire);
  req.d_switch = cli.get_double("d-switch", req.d_switch);
  req.ft_radix = int_flag(cli, "ft-radix", req.ft_radix);
  req.max_rounds = int_flag(cli, "max-rounds", req.max_rounds);
  engine.place(req).render(core::OutputFormat::kTable, out);
  return 0;
}

int cmd_apps(std::ostream& out) {
  for (const auto& name : apps::app_names()) out << name << '\n';
  return 0;
}

int cmd_batch(const Cli& cli, api::Engine& engine, std::ostream& out,
              std::ostream& err) {
  const std::string file = cli.get("file", "-");
  const int threads = int_flag(cli, "threads", 0);
  api::BatchOutcome outcome;
  if (file == "-") {
    outcome = api::serve_jsonl(engine, std::cin, out, threads);
  } else {
    std::ifstream in(file);
    if (!in) throw UsageError("batch: cannot open '" + file + "'");
    outcome = api::serve_jsonl(engine, in, out, threads);
  }
  // The metrics summary goes to stderr: stdout is the JSONL response
  // stream and must stay machine-parseable line by line.
  if (cli.get_bool("metrics", false)) err << engine.metrics_string();
  // Per-request failures are reported in-band as {"error": ...} lines;
  // the process exit code still flags that the batch was not fully clean.
  return outcome.failures == 0 ? 0 : 1;
}

int cmd_stats(const Cli& cli, api::Engine& engine, std::ostream& out) {
  // Optionally replay a JSONL request file through the session first; the
  // responses are discarded (this subcommand reports the instrumentation,
  // `llamp batch` serves the responses).
  if (cli.has("file")) {
    const std::string file = cli.get("file", "-");
    const int threads = int_flag(cli, "threads", 0);
    std::ostringstream discard;
    if (file == "-") {
      api::serve_jsonl(engine, std::cin, discard, threads);
    } else {
      std::ifstream in(file);
      if (!in) throw UsageError("stats: cannot open '" + file + "'");
      api::serve_jsonl(engine, in, discard, threads);
    }
  }
  const core::OutputFormat format =
      output_format(cli, /*allow_csv_flag=*/false);
  if (format == core::OutputFormat::kCsv) {
    throw UsageError("stats: csv output is not supported");
  }
  if (format == core::OutputFormat::kJson) {
    out << engine.metrics_json() << '\n';
  } else {
    out << engine.metrics_string();
  }
  return 0;
}

/// The daemon draining on SIGTERM/SIGINT: the handler may only touch
/// async-signal-safe state, and Server::request_shutdown() is exactly that
/// (an atomic store plus one write(2) to the loop's wakeup pipe).
std::atomic<serve::Server*> g_serve_server{nullptr};

extern "C" void serve_signal_handler(int /*signo*/) {
  if (serve::Server* s = g_serve_server.load(std::memory_order_acquire)) {
    s->request_shutdown();
  }
}

int cmd_serve(const Cli& cli, api::Engine& engine, std::ostream& out) {
  serve::Server::Options opts;
  const long long port = cli.get_int("port", 8080);
  if (port < 0 || port > 65535) {
    throw UsageError(strformat("need --port in [0, 65535] (got %lld)", port));
  }
  opts.port = static_cast<std::uint16_t>(port);
  opts.max_inflight = int_flag(cli, "max-inflight", opts.max_inflight);
  if (opts.max_inflight < 1) {
    throw UsageError(
        strformat("need --max-inflight >= 1 (got %d)", opts.max_inflight));
  }

  serve::Server server(opts, serve::engine_routes(engine));
  server.start();

  // Handlers are installed only while this server exists; the previous
  // dispositions come back before the stats line prints.
  g_serve_server.store(&server, std::memory_order_release);
  struct sigaction action {};
  action.sa_handler = serve_signal_handler;
  sigemptyset(&action.sa_mask);
  struct sigaction old_term {};
  struct sigaction old_int {};
  sigaction(SIGTERM, &action, &old_term);
  sigaction(SIGINT, &action, &old_int);

  // The listen line is the daemon's readiness signal (CI and the bench
  // wait for it), and with --port=0 it is how the caller learns the port.
  out << "llamp serve: listening on 127.0.0.1:" << server.port() << "\n";
  out.flush();

  server.join();

  sigaction(SIGTERM, &old_term, nullptr);
  sigaction(SIGINT, &old_int, nullptr);
  g_serve_server.store(nullptr, std::memory_order_release);

  const serve::Server::Stats st = server.stats();
  out << strformat(
      "llamp serve: drained (connections %llu, requests %llu, "
      "responses %llu, rejected %llu, protocol_errors %llu)\n",
      static_cast<unsigned long long>(st.connections),
      static_cast<unsigned long long>(st.requests),
      static_cast<unsigned long long>(st.responses),
      static_cast<unsigned long long>(st.rejected),
      static_cast<unsigned long long>(st.protocol_errors));
  return 0;
}

/// Boolean flags: these never take a following value, so a token after them
/// must not be folded — it is a stray positional the validation below should
/// reject, not the flag's value.
constexpr std::string_view kBoolKeys[] = {"csv", "metrics"};

/// The subcommands take no positional arguments, so both `--key=value` and
/// `--key value` are accepted: a bare non-boolean `--key` followed by a
/// non-flag token is folded into the `=` form the shared Cli parser
/// understands.
std::vector<std::string> normalize_args(int argc, const char* const* argv) {
  std::vector<std::string> args;
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    if (starts_with(arg, "--") && arg.find('=') == std::string::npos &&
        i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      const std::string_view key = std::string_view(arg).substr(2);
      if (std::find(std::begin(kBoolKeys), std::end(kBoolKeys), key) ==
          std::end(kBoolKeys)) {
        arg += '=';
        arg += argv[++i];
      }
    }
    args.push_back(std::move(arg));
  }
  return args;
}

constexpr std::string_view kCommonKeys[] = {"app", "ranks", "scale", "net",
                                            "L",   "o",     "G",     "S"};
constexpr std::string_view kGridKeys[] = {"dl-max-us", "points", "threads",
                                          "format"};
constexpr std::string_view kTopoKeys[] = {"l-wire",    "d-switch",
                                          "ft-radix",  "df-groups",
                                          "df-routers", "df-hosts"};
constexpr std::string_view kPlaceKeys[] = {"l-wire", "d-switch", "ft-radix",
                                           "max-rounds"};
constexpr std::string_view kCampaignKeys[] = {
    "apps",       "ranks",       "scales",      "topos",       "nets",
    "L-list",     "o-list",      "G-list",      "S",           "seed",
    "probe",      "probe-runs",  "noise-sigma", "mc-samples",  "mc-sigma-L",
    "mc-sigma-o", "mc-sigma-G",  "mc-edge-sigma", "mc-edge-bias"};
constexpr std::string_view kMcKeys[] = {
    "samples",  "seed",    "sigma-L",    "sigma-o",   "sigma-G", "dist-L",
    "dist-o",   "dist-G",  "edge-sigma", "edge-bias", "bands"};
constexpr std::string_view kBatchKeys[] = {"file", "threads", "metrics"};
constexpr std::string_view kStatsKeys[] = {"file", "threads", "format"};
constexpr std::string_view kServeKeys[] = {"port", "threads", "max-inflight"};

/// Reject misspelled options and stray positionals: a typo'd flag must be a
/// usage error, not a silent fall-back to the default value.  Returns an
/// empty string when every token is a known `--key[=value]`.
std::string first_bad_arg(const std::string& sub,
                          const std::vector<std::string>& args) {
  std::vector<std::string_view> known;
  const auto add = [&](auto& keys) {
    known.insert(known.end(), std::begin(keys), std::end(keys));
  };
  if (sub != "apps" && sub != "campaign" && sub != "batch" &&
      sub != "stats" && sub != "serve") {
    add(kCommonKeys);
  }
  if (sub == "analyze" || sub == "sweep" || sub == "mc") add(kGridKeys);
  if (sub == "mc") add(kMcKeys);
  if (sub == "sweep") known.push_back("csv");
  if (sub == "topo") add(kTopoKeys);
  if (sub == "place") add(kPlaceKeys);
  if (sub == "batch") add(kBatchKeys);
  if (sub == "stats") add(kStatsKeys);
  if (sub == "serve") add(kServeKeys);
  if (sub == "campaign") {
    add(kCampaignKeys);
    add(kGridKeys);
    add(kTopoKeys);
  }
  // Every engine subcommand can record a trace (apps never runs one).
  if (sub != "apps") known.push_back("trace-out");

  for (const std::string& arg : args) {
    if (!starts_with(arg, "--")) return arg;  // stray positional
    const auto eq = arg.find('=');
    const std::string_view key =
        std::string_view(arg).substr(2, eq == std::string::npos ? arg.npos
                                                                : eq - 2);
    if (std::find(known.begin(), known.end(), key) == known.end()) return arg;
  }
  return {};
}

/// Whether this invocation asked for JSON output (best effort, for the
/// structured-error satellite: the flag may itself be malformed, in which
/// case errors stay text-only).
bool wants_json(const std::vector<std::string>& args) {
  for (const std::string& arg : args) {
    if (arg == "--format=json") return true;
  }
  return false;
}

/// Report an error on stderr and, in JSON mode, as a structured object on
/// stdout, so `--format=json` consumers never have to scrape stderr.
int report_error(const std::string& sub, const std::string& message,
                 bool usage, bool json, std::ostream& out,
                 std::ostream& err) {
  err << "llamp " << sub << ": " << message << '\n';
  if (json) {
    out << strformat(
        "{\"error\": {\"subcommand\": \"%s\", \"kind\": \"%s\", "
        "\"message\": \"%s\"}}\n",
        json_escape_string(sub).c_str(), usage ? "usage" : "analysis",
        json_escape_string(message).c_str());
  }
  return usage ? 2 : 1;
}

}  // namespace

int run(int argc, const char* const* argv, std::ostream& out,
        std::ostream& err) {
  if (argc < 2) {
    // A bare `llamp` is a question, not a mistake: print usage, exit 0.
    out << kUsage;
    return 0;
  }
  const std::string sub = argv[1];
  if (sub == "help" || sub == "--help" || sub == "-h") {
    out << kUsage;
    return 0;
  }
  if (sub == "--version" || sub == "version") {
    out << version_line() << '\n';
    return 0;
  }
  if (sub != "analyze" && sub != "sweep" && sub != "campaign" &&
      sub != "mc" && sub != "batch" && sub != "topo" && sub != "place" &&
      sub != "stats" && sub != "serve" && sub != "apps") {
    err << "llamp: unknown subcommand '" << sub << "'\n\n" << kUsage;
    return 2;
  }
  // `llamp <sub> --help` before any validation: asking for help must work
  // even alongside flags the subcommand would reject.
  for (int i = 2; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      out << kUsage;
      return 0;
    }
  }
  const std::vector<std::string> args = normalize_args(argc, argv);
  const bool json = wants_json(args);
  if (const std::string bad = first_bad_arg(sub, args); !bad.empty()) {
    return report_error(
        sub, "unrecognized argument '" + bad + "' (see `llamp help`)",
        /*usage=*/true, json, out, err);
  }
  std::vector<const char*> cargs;
  cargs.push_back("llamp");
  for (const auto& a : args) cargs.push_back(a.c_str());
  const Cli cli(static_cast<int>(cargs.size()), cargs.data());
  try {
    // One engine session per invocation: every subcommand dispatches
    // through it, sharing the graph cache and workspace pool.  Only batch
    // fans requests out, so its pool is sized from --threads (matching the
    // free parallel_for semantics: the requested count wins even above the
    // hardware concurrency); the other subcommands run on a 1-worker pool.
    // serve sizes the pool from --threads too: the daemon runs requests
    // one at a time, the pool is each request's inner parallelism.
    api::Engine engine(api::Engine::Options{
        .threads = (sub == "batch" || sub == "stats" || sub == "serve")
                       ? int_flag(cli, "threads", 0)
                       : 1});
    // --trace-out: the file opens before any work runs (a bad path must
    // fail fast, not after a long campaign), recording is enabled for the
    // whole dispatch, and the trace is written after it completes —
    // including batch runs with in-band failures (rc 1).
    std::ofstream trace_file;
    if (cli.has("trace-out")) {
      const std::string trace_path = cli.get("trace-out", "");
      if (trace_path.empty()) throw UsageError("empty --trace-out path");
      trace_file.open(trace_path);
      if (!trace_file) {
        throw UsageError("cannot open --trace-out '" + trace_path + "'");
      }
      engine.tracer().enable();
    }
    int rc = 0;
    if (sub == "analyze") {
      rc = cmd_analyze(cli, engine, out);
    } else if (sub == "sweep") {
      rc = cmd_sweep(cli, engine, out);
    } else if (sub == "campaign") {
      rc = cmd_campaign(cli, engine, out);
    } else if (sub == "mc") {
      rc = cmd_mc(cli, engine, out);
    } else if (sub == "batch") {
      rc = cmd_batch(cli, engine, out, err);
    } else if (sub == "topo") {
      rc = cmd_topo(cli, engine, out);
    } else if (sub == "place") {
      rc = cmd_place(cli, engine, out);
    } else if (sub == "stats") {
      rc = cmd_stats(cli, engine, out);
    } else if (sub == "serve") {
      rc = cmd_serve(cli, engine, out);
    } else {
      rc = cmd_apps(out);
    }
    if (trace_file.is_open()) trace_file << engine.trace_json() << '\n';
    return rc;
  } catch (const UsageError& e) {
    return report_error(sub, e.what(), /*usage=*/true, json, out, err);
  } catch (const Error& e) {
    return report_error(sub, e.what(), /*usage=*/false, json, out, err);
  }
}

}  // namespace llamp::tools
