#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/time.hpp"

namespace llamp::trace {

/// MPI operations the tracer records.  This mirrors the subset of MPI that
/// liballprof traces and Schedgen understands; collectives are recorded as
/// single events and expanded into point-to-point algorithms later.
enum class Op : std::uint8_t {
  kInit,
  kFinalize,
  kSend,      // blocking eager/rendezvous send
  kRecv,      // blocking receive
  kIsend,     // nonblocking send; completion via kWait
  kIrecv,     // nonblocking receive; completion via kWait
  kWait,      // waits on one request
  kBarrier,
  kBcast,
  kReduce,
  kAllreduce,
  kAllgather,
  kReduceScatter,
  kGather,
  kScatter,
  kAlltoall,
};

/// True for the collective operations (expanded by schedgen).
bool is_collective(Op op);
/// True for kSend / kIsend.
bool is_send(Op op);
/// True for kRecv / kIrecv.
bool is_recv(Op op);

std::string_view op_name(Op op);
/// Inverse of op_name; throws TraceError for unknown names.
Op op_from_name(std::string_view name);

/// One traced MPI call on one rank.  Timestamps are absolute per-rank clock
/// values in nanoseconds; the gap between one event's `end` and the next
/// event's `start` is the compute Schedgen infers (Fig. 3 of the paper).
struct Event {
  Op op = Op::kInit;
  TimeNs start = 0.0;
  TimeNs end = 0.0;
  std::int32_t peer = -1;      ///< p2p partner rank; -1 for collectives/init
  std::int32_t tag = 0;        ///< p2p tag
  std::uint64_t bytes = 0;     ///< message or per-rank collective payload
  std::int32_t root = 0;       ///< collective root where applicable
  std::int64_t request = -1;   ///< request id linking Isend/Irecv to Wait

  bool operator==(const Event&) const = default;
};

/// A full program trace: one event sequence per rank.
class Trace {
 public:
  Trace() = default;
  explicit Trace(int nranks) : per_rank_(static_cast<std::size_t>(nranks)) {}

  int nranks() const { return static_cast<int>(per_rank_.size()); }
  std::vector<Event>& rank(int r) { return per_rank_.at(static_cast<std::size_t>(r)); }
  const std::vector<Event>& rank(int r) const {
    return per_rank_.at(static_cast<std::size_t>(r));
  }

  /// Total number of recorded events across ranks.
  std::size_t total_events() const;

  /// Validates structural invariants and throws TraceError on violation:
  /// monotone non-overlapping timestamps per rank, peers in range, every
  /// Isend/Irecv matched by exactly one Wait with the same request id, and
  /// collective sequences identical across ranks (op, bytes, root).
  void validate() const;

  bool operator==(const Trace&) const = default;

 private:
  std::vector<std::vector<Event>> per_rank_;
};

}  // namespace llamp::trace
