#pragma once

#include <iosfwd>
#include <string>

#include "trace/trace.hpp"

namespace llamp::trace {

/// Text serialization in a liballprof-like colon-separated format:
///
///   LLAMP_TRACE 1
///   ranks <P>
///   rank <r>
///   <OpName>:<start_ns>:<end_ns>:<peer>:<tag>:<bytes>:<root>:<request>
///   ...
///
/// Timestamps are printed with nanosecond precision; the parser validates
/// the header, rank ordering, and field arity and throws TraceError on any
/// malformed input.
void write_trace(std::ostream& os, const Trace& t);
std::string to_text(const Trace& t);

Trace read_trace(std::istream& is);
Trace from_text(const std::string& text);

/// File convenience wrappers (throw llamp::Error on I/O failure).
void save_trace(const std::string& path, const Trace& t);
Trace load_trace(const std::string& path);

}  // namespace llamp::trace
