#include "trace/profile.hpp"

#include <algorithm>
#include <sstream>

#include "util/strings.hpp"

namespace llamp::trace {

namespace {

std::size_t size_bucket(std::uint64_t bytes) {
  std::size_t b = 0;
  while (bytes > 1 && b < 31) {
    bytes >>= 1;
    ++b;
  }
  return b;
}

}  // namespace

TraceProfile profile_trace(const Trace& t) {
  t.validate();
  TraceProfile prof;
  prof.nranks = t.nranks();
  prof.comm_matrix.assign(static_cast<std::size_t>(t.nranks()) *
                              static_cast<std::size_t>(t.nranks()),
                          0);
  for (int r = 0; r < t.nranks(); ++r) {
    TimeNs prev_end = 0.0;
    bool first = true;
    for (const Event& e : t.rank(r)) {
      ++prof.total_events;
      ++prof.op_counts[e.op];
      prof.total_mpi_time += e.end - e.start;
      if (!first) prof.total_gap_time += e.start - prev_end;
      first = false;
      prev_end = e.end;
      prof.span = std::max(prof.span, e.end);
      if (is_send(e.op)) {
        ++prof.p2p_messages;
        prof.p2p_bytes += e.bytes;
        prof.max_message_bytes = std::max(prof.max_message_bytes, e.bytes);
        ++prof.size_histogram[size_bucket(e.bytes)];
        prof.comm_matrix[static_cast<std::size_t>(r) *
                             static_cast<std::size_t>(t.nranks()) +
                         static_cast<std::size_t>(e.peer)] += e.bytes;
      } else if (is_collective(e.op)) {
        ++prof.collective_calls;
      }
    }
  }
  if (prof.p2p_messages > 0) {
    prof.avg_message_bytes = static_cast<double>(prof.p2p_bytes) /
                             static_cast<double>(prof.p2p_messages);
  }
  return prof;
}

std::string TraceProfile::to_string() const {
  std::ostringstream os;
  os << strformat("trace profile: %d ranks, %zu events\n", nranks,
                  total_events);
  os << strformat("  p2p: %zu message(s), %s total, avg %s, max %s\n",
                  p2p_messages,
                  human_count(static_cast<double>(p2p_bytes)).c_str(),
                  human_count(avg_message_bytes).c_str(),
                  human_count(static_cast<double>(max_message_bytes)).c_str());
  os << strformat("  collective calls (per-rank): %zu\n", collective_calls);
  os << strformat("  recorded MPI time %s, inferred-compute gaps %s, span %s\n",
                  human_time_ns(total_mpi_time).c_str(),
                  human_time_ns(total_gap_time).c_str(),
                  human_time_ns(span).c_str());
  os << "  ops:";
  for (const auto& [op, n] : op_counts) {
    os << ' ' << op_name(op) << '=' << n;
  }
  os << "\n  message sizes (log2 buckets with counts):";
  for (std::size_t b = 0; b < size_histogram.size(); ++b) {
    if (size_histogram[b] == 0) continue;
    os << strformat(" [%s,%s)=%zu",
                    human_count(static_cast<double>(1ull << b)).c_str(),
                    human_count(static_cast<double>(1ull << (b + 1))).c_str(),
                    size_histogram[b]);
  }
  os << '\n';
  return os.str();
}

}  // namespace llamp::trace
