#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "trace/trace.hpp"

namespace llamp::trace {

/// Aggregate statistics of an MPI trace — the communication-pattern view
/// tools like the original LLAMP use to pick the per-application `o` (the
/// paper matches o to the average packet size via Netgauge, §III-B) and
/// that placement tools consume as the traffic matrix.
struct TraceProfile {
  int nranks = 0;
  std::size_t total_events = 0;

  std::map<Op, std::size_t> op_counts;
  std::size_t p2p_messages = 0;        ///< sends (blocking + nonblocking)
  std::size_t collective_calls = 0;    ///< per-rank collective invocations
  std::uint64_t p2p_bytes = 0;
  std::uint64_t max_message_bytes = 0;
  double avg_message_bytes = 0.0;

  /// Bytes exchanged between rank pairs (row-major nranks x nranks,
  /// directed: [src][dst]).
  std::vector<std::uint64_t> comm_matrix;

  /// log2 message-size histogram: bucket b counts messages with
  /// 2^b <= bytes < 2^(b+1); bucket 0 also counts empty messages.
  std::array<std::size_t, 32> size_histogram{};

  /// Per-rank wall-clock decomposition from the recorded timestamps:
  /// time inside MPI calls vs the gaps Schedgen will turn into compute.
  TimeNs total_mpi_time = 0.0;
  TimeNs total_gap_time = 0.0;
  TimeNs span = 0.0;  ///< max event end across ranks

  std::uint64_t bytes_between(int a, int b) const {
    return comm_matrix[static_cast<std::size_t>(a) *
                           static_cast<std::size_t>(nranks) +
                       static_cast<std::size_t>(b)];
  }

  /// Human-readable multi-line report (used by the trace_analyze example).
  std::string to_string() const;
};

TraceProfile profile_trace(const Trace& t);

}  // namespace llamp::trace
