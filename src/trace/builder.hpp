#pragma once

#include <cstdint>
#include <vector>

#include "trace/trace.hpp"
#include "util/time.hpp"

namespace llamp::trace {

/// Records traces the way an application linked against liballprof would:
/// every MPI call becomes an event with start/end timestamps on a per-rank
/// clock, and compute shows up as gaps between events.  The proxy
/// applications in `src/apps` drive this builder through an MPI-like facade.
///
/// Timestamps only need to be consistent *per rank* (Schedgen infers compute
/// from per-rank gaps, never from cross-rank differences), so the builder
/// does not simulate message timing: each MPI call occupies a fixed nominal
/// duration on the local clock.
class TraceBuilder {
 public:
  /// `op_duration` is the nominal per-call cost stamped on recorded events;
  /// it models the CPU time each MPI call took while tracing.
  explicit TraceBuilder(int nranks, TimeNs op_duration = 1'000.0);

  int nranks() const { return trace_.nranks(); }

  /// Local computation: advances the rank clock without recording an event.
  void compute(int rank, TimeNs duration);

  // --- point-to-point ------------------------------------------------------
  void send(int rank, int peer, std::uint64_t bytes, int tag = 0);
  void recv(int rank, int peer, std::uint64_t bytes, int tag = 0);
  /// Returns the request id to pass to wait().
  std::int64_t isend(int rank, int peer, std::uint64_t bytes, int tag = 0);
  std::int64_t irecv(int rank, int peer, std::uint64_t bytes, int tag = 0);
  void wait(int rank, std::int64_t request);
  /// Convenience: wait on several requests in order (MPI_Waitall analogue;
  /// recorded as individual MPI_Wait events, which is how liballprof's
  /// Schedgen path handles it too).
  void waitall(int rank, const std::vector<std::int64_t>& requests);

  // --- collectives (recorded on one rank; must be called for all ranks in
  // the same order, which the whole-communicator helpers guarantee) ---------
  void collective(int rank, Op op, std::uint64_t bytes, int root = 0);
  void barrier_all();
  void bcast_all(std::uint64_t bytes, int root = 0);
  void reduce_all(std::uint64_t bytes, int root = 0);
  void allreduce_all(std::uint64_t bytes);
  void allgather_all(std::uint64_t bytes);
  void reduce_scatter_all(std::uint64_t bytes);
  void alltoall_all(std::uint64_t bytes);

  /// Current per-rank clock (end of the last recorded activity).
  TimeNs now(int rank) const;

  /// Appends MPI_Finalize on every rank, validates, and returns the trace.
  /// The builder must not be used afterwards.
  Trace finish();

 private:
  Event& push(int rank, Op op);

  Trace trace_;
  std::vector<TimeNs> clock_;
  std::vector<std::int64_t> next_request_;
  TimeNs op_duration_;
  bool finished_ = false;
};

}  // namespace llamp::trace
