#include "trace/trace.hpp"

#include <map>
#include <set>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::trace {

bool is_collective(Op op) {
  switch (op) {
    case Op::kBarrier:
    case Op::kBcast:
    case Op::kReduce:
    case Op::kAllreduce:
    case Op::kAllgather:
    case Op::kReduceScatter:
    case Op::kGather:
    case Op::kScatter:
    case Op::kAlltoall:
      return true;
    default:
      return false;
  }
}

bool is_send(Op op) { return op == Op::kSend || op == Op::kIsend; }
bool is_recv(Op op) { return op == Op::kRecv || op == Op::kIrecv; }

std::string_view op_name(Op op) {
  switch (op) {
    case Op::kInit: return "MPI_Init";
    case Op::kFinalize: return "MPI_Finalize";
    case Op::kSend: return "MPI_Send";
    case Op::kRecv: return "MPI_Recv";
    case Op::kIsend: return "MPI_Isend";
    case Op::kIrecv: return "MPI_Irecv";
    case Op::kWait: return "MPI_Wait";
    case Op::kBarrier: return "MPI_Barrier";
    case Op::kBcast: return "MPI_Bcast";
    case Op::kReduce: return "MPI_Reduce";
    case Op::kAllreduce: return "MPI_Allreduce";
    case Op::kAllgather: return "MPI_Allgather";
    case Op::kReduceScatter: return "MPI_Reduce_scatter";
    case Op::kGather: return "MPI_Gather";
    case Op::kScatter: return "MPI_Scatter";
    case Op::kAlltoall: return "MPI_Alltoall";
  }
  return "MPI_Unknown";
}

Op op_from_name(std::string_view name) {
  static const std::map<std::string_view, Op> kMap = {
      {"MPI_Init", Op::kInit},
      {"MPI_Finalize", Op::kFinalize},
      {"MPI_Send", Op::kSend},
      {"MPI_Recv", Op::kRecv},
      {"MPI_Isend", Op::kIsend},
      {"MPI_Irecv", Op::kIrecv},
      {"MPI_Wait", Op::kWait},
      {"MPI_Barrier", Op::kBarrier},
      {"MPI_Bcast", Op::kBcast},
      {"MPI_Reduce", Op::kReduce},
      {"MPI_Allreduce", Op::kAllreduce},
      {"MPI_Allgather", Op::kAllgather},
      {"MPI_Reduce_scatter", Op::kReduceScatter},
      {"MPI_Gather", Op::kGather},
      {"MPI_Scatter", Op::kScatter},
      {"MPI_Alltoall", Op::kAlltoall},
  };
  const auto it = kMap.find(name);
  if (it == kMap.end()) {
    throw TraceError("unknown operation '" + std::string(name) + "'");
  }
  return it->second;
}

std::size_t Trace::total_events() const {
  std::size_t n = 0;
  for (int r = 0; r < nranks(); ++r) n += rank(r).size();
  return n;
}

void Trace::validate() const {
  if (nranks() == 0) throw TraceError("trace has zero ranks");
  // Collective sequence seen by rank 0 is the reference for all ranks.
  std::vector<Event> coll_ref;
  for (int r = 0; r < nranks(); ++r) {
    const auto& evs = rank(r);
    TimeNs prev_end = 0.0;
    std::set<std::int64_t> open_requests;
    std::vector<Event> coll_seq;
    for (std::size_t i = 0; i < evs.size(); ++i) {
      const Event& e = evs[i];
      if (e.end < e.start) {
        throw TraceError(strformat("rank %d event %zu: end before start", r, i));
      }
      if (e.start < prev_end) {
        throw TraceError(strformat("rank %d event %zu: overlaps predecessor", r, i));
      }
      prev_end = e.end;
      if (is_send(e.op) || is_recv(e.op)) {
        if (e.peer < 0 || e.peer >= nranks()) {
          throw TraceError(strformat("rank %d event %zu: peer %d out of range",
                                     r, i, e.peer));
        }
        if (e.peer == r) {
          throw TraceError(strformat("rank %d event %zu: self-message", r, i));
        }
      }
      if (e.op == Op::kIsend || e.op == Op::kIrecv) {
        if (e.request < 0) {
          throw TraceError(strformat("rank %d event %zu: nonblocking op without "
                                     "request id", r, i));
        }
        if (!open_requests.insert(e.request).second) {
          throw TraceError(strformat("rank %d event %zu: duplicate request %lld",
                                     r, i, static_cast<long long>(e.request)));
        }
      }
      if (e.op == Op::kWait) {
        if (open_requests.erase(e.request) == 0) {
          throw TraceError(strformat("rank %d event %zu: wait on unknown request "
                                     "%lld", r, i,
                                     static_cast<long long>(e.request)));
        }
      }
      if (is_collective(e.op)) {
        Event key = e;  // normalize fields that may differ across ranks
        key.start = key.end = 0.0;
        key.request = -1;
        key.peer = -1;
        coll_seq.push_back(key);
      }
    }
    if (!open_requests.empty()) {
      throw TraceError(strformat("rank %d: %zu request(s) never waited on", r,
                                 open_requests.size()));
    }
    if (r == 0) {
      coll_ref = std::move(coll_seq);
    } else if (coll_seq != coll_ref) {
      throw TraceError(strformat("rank %d: collective sequence diverges from "
                                 "rank 0", r));
    }
  }
}

}  // namespace llamp::trace
