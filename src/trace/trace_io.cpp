#include "trace/trace_io.hpp"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::trace {

namespace {
constexpr std::string_view kMagic = "LLAMP_TRACE";
constexpr int kVersion = 1;

/// Line-anchored numeric field parsing: the shared parse helpers throw
/// generic Errors without location, but a malformed trace file is user
/// input — the error must say *which line* is garbage (and be a TraceError,
/// i.e. a usage error, not an analysis failure).
long long field_ll(std::string_view field, std::size_t lineno,
                   const char* what) {
  try {
    return parse_ll(field);
  } catch (const Error&) {
    throw TraceError(strformat("line %zu: bad %s '%.*s'", lineno, what,
                               static_cast<int>(field.size()), field.data()));
  }
}

double field_double(std::string_view field, std::size_t lineno,
                    const char* what) {
  double v = 0.0;
  try {
    v = parse_double(field);
  } catch (const Error&) {
    throw TraceError(strformat("line %zu: bad %s '%.*s'", lineno, what,
                               static_cast<int>(field.size()), field.data()));
  }
  if (!std::isfinite(v)) {
    throw TraceError(
        strformat("line %zu: non-finite %s '%.*s'", lineno, what,
                  static_cast<int>(field.size()), field.data()));
  }
  return v;
}

}  // namespace

void write_trace(std::ostream& os, const Trace& t) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "ranks " << t.nranks() << '\n';
  for (int r = 0; r < t.nranks(); ++r) {
    os << "rank " << r << '\n';
    for (const Event& e : t.rank(r)) {
      os << op_name(e.op) << ':' << strformat("%.17g", e.start) << ':'
         << strformat("%.17g", e.end) << ':' << e.peer << ':' << e.tag << ':'
         << e.bytes << ':' << e.root << ':' << e.request << '\n';
    }
  }
}

std::string to_text(const Trace& t) {
  std::ostringstream os;
  write_trace(os, t);
  return os.str();
}

Trace read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw TraceError("empty input");
  {
    const auto header = split_ws(line);
    if (header.size() != 2 || header[0] != kMagic) {
      throw TraceError("bad magic line '" + line + "'");
    }
    if (field_ll(header[1], 1, "version") != kVersion) {
      throw TraceError("unsupported version " + header[1]);
    }
  }
  if (!std::getline(is, line)) throw TraceError("missing ranks line");
  const auto ranks_line = split_ws(line);
  if (ranks_line.size() != 2 || ranks_line[0] != "ranks") {
    throw TraceError("bad ranks line '" + line + "'");
  }
  const auto nranks = field_ll(ranks_line[1], 2, "rank count");
  if (nranks <= 0 || nranks > (1 << 24)) {
    throw TraceError("implausible rank count " + ranks_line[1]);
  }
  Trace t(static_cast<int>(nranks));
  int current_rank = -1;
  std::size_t lineno = 2;
  while (std::getline(is, line)) {
    ++lineno;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (starts_with(trimmed, "rank ")) {
      const auto fields = split_ws(trimmed);
      if (fields.size() != 2) {
        throw TraceError(strformat("line %zu: bad rank header", lineno));
      }
      const auto r = field_ll(fields[1], lineno, "rank number");
      if (r != current_rank + 1 || r >= nranks) {
        throw TraceError(strformat("line %zu: ranks must appear in order", lineno));
      }
      current_rank = static_cast<int>(r);
      continue;
    }
    if (current_rank < 0) {
      throw TraceError(strformat("line %zu: event before first rank header", lineno));
    }
    const auto fields = split(trimmed, ':');
    if (fields.size() != 8) {
      throw TraceError(strformat("line %zu: expected 8 fields, got %zu", lineno,
                                 fields.size()));
    }
    Event e;
    try {
      e.op = op_from_name(fields[0]);
    } catch (const TraceError&) {
      throw TraceError(strformat("line %zu: unknown operation '%s'", lineno,
                                 fields[0].c_str()));
    }
    e.start = field_double(fields[1], lineno, "start time");
    e.end = field_double(fields[2], lineno, "end time");
    const long long peer = field_ll(fields[3], lineno, "peer");
    if (peer < -1 || peer >= nranks) {
      throw TraceError(
          strformat("line %zu: peer %lld out of range", lineno, peer));
    }
    e.peer = static_cast<std::int32_t>(peer);
    e.tag = static_cast<std::int32_t>(field_ll(fields[4], lineno, "tag"));
    const long long bytes = field_ll(fields[5], lineno, "byte count");
    if (bytes < 0) {
      throw TraceError(
          strformat("line %zu: negative byte count %lld", lineno, bytes));
    }
    e.bytes = static_cast<std::uint64_t>(bytes);
    // Roots index ranks like peers do; an out-of-range root would otherwise
    // truncate through int32 and feed the collective schedulers garbage.
    const long long root = field_ll(fields[6], lineno, "root");
    if (root < -1 || root >= nranks) {
      throw TraceError(
          strformat("line %zu: root %lld out of range", lineno, root));
    }
    e.root = static_cast<std::int32_t>(root);
    e.request = field_ll(fields[7], lineno, "request");
    t.rank(current_rank).push_back(e);
  }
  // getline loops end on EOF and on stream failure alike: distinguish them,
  // or an I/O error mid-file would silently pass off a prefix of the trace
  // as the whole thing.
  if (is.bad()) {
    throw TraceError(strformat("read failure after line %zu", lineno));
  }
  // Early EOF: every declared rank must have appeared — a file cut off
  // between rank sections must not analyze as a smaller job.
  if (current_rank + 1 != nranks) {
    throw TraceError(strformat(
        "truncated input: only %d of %lld rank sections present",
        current_rank + 1, nranks));
  }
  return t;
}

Trace from_text(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

void save_trace(const std::string& path, const Trace& t) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  write_trace(os, t);
  if (!os) throw Error("write failure on '" + path + "'");
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open '" + path + "' for reading");
  return read_trace(is);
}

}  // namespace llamp::trace
