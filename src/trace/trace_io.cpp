#include "trace/trace_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::trace {

namespace {
constexpr std::string_view kMagic = "LLAMP_TRACE";
constexpr int kVersion = 1;
}  // namespace

void write_trace(std::ostream& os, const Trace& t) {
  os << kMagic << ' ' << kVersion << '\n';
  os << "ranks " << t.nranks() << '\n';
  for (int r = 0; r < t.nranks(); ++r) {
    os << "rank " << r << '\n';
    for (const Event& e : t.rank(r)) {
      os << op_name(e.op) << ':' << strformat("%.17g", e.start) << ':'
         << strformat("%.17g", e.end) << ':' << e.peer << ':' << e.tag << ':'
         << e.bytes << ':' << e.root << ':' << e.request << '\n';
    }
  }
}

std::string to_text(const Trace& t) {
  std::ostringstream os;
  write_trace(os, t);
  return os.str();
}

Trace read_trace(std::istream& is) {
  std::string line;
  if (!std::getline(is, line)) throw TraceError("empty input");
  {
    const auto header = split_ws(line);
    if (header.size() != 2 || header[0] != kMagic) {
      throw TraceError("bad magic line '" + line + "'");
    }
    if (parse_ll(header[1]) != kVersion) {
      throw TraceError("unsupported version " + header[1]);
    }
  }
  if (!std::getline(is, line)) throw TraceError("missing ranks line");
  const auto ranks_line = split_ws(line);
  if (ranks_line.size() != 2 || ranks_line[0] != "ranks") {
    throw TraceError("bad ranks line '" + line + "'");
  }
  const auto nranks = parse_ll(ranks_line[1]);
  if (nranks <= 0 || nranks > (1 << 24)) {
    throw TraceError("implausible rank count " + ranks_line[1]);
  }
  Trace t(static_cast<int>(nranks));
  int current_rank = -1;
  std::size_t lineno = 2;
  while (std::getline(is, line)) {
    ++lineno;
    const auto trimmed = trim(line);
    if (trimmed.empty() || trimmed.front() == '#') continue;
    if (starts_with(trimmed, "rank ")) {
      const auto fields = split_ws(trimmed);
      if (fields.size() != 2) {
        throw TraceError(strformat("line %zu: bad rank header", lineno));
      }
      const auto r = parse_ll(fields[1]);
      if (r != current_rank + 1 || r >= nranks) {
        throw TraceError(strformat("line %zu: ranks must appear in order", lineno));
      }
      current_rank = static_cast<int>(r);
      continue;
    }
    if (current_rank < 0) {
      throw TraceError(strformat("line %zu: event before first rank header", lineno));
    }
    const auto fields = split(trimmed, ':');
    if (fields.size() != 8) {
      throw TraceError(strformat("line %zu: expected 8 fields, got %zu", lineno,
                                 fields.size()));
    }
    Event e;
    e.op = op_from_name(fields[0]);
    e.start = parse_double(fields[1]);
    e.end = parse_double(fields[2]);
    e.peer = static_cast<std::int32_t>(parse_ll(fields[3]));
    e.tag = static_cast<std::int32_t>(parse_ll(fields[4]));
    e.bytes = static_cast<std::uint64_t>(parse_ll(fields[5]));
    e.root = static_cast<std::int32_t>(parse_ll(fields[6]));
    e.request = parse_ll(fields[7]);
    t.rank(current_rank).push_back(e);
  }
  return t;
}

Trace from_text(const std::string& text) {
  std::istringstream is(text);
  return read_trace(is);
}

void save_trace(const std::string& path, const Trace& t) {
  std::ofstream os(path);
  if (!os) throw Error("cannot open '" + path + "' for writing");
  write_trace(os, t);
  if (!os) throw Error("write failure on '" + path + "'");
}

Trace load_trace(const std::string& path) {
  std::ifstream is(path);
  if (!is) throw Error("cannot open '" + path + "' for reading");
  return read_trace(is);
}

}  // namespace llamp::trace
