#include "trace/builder.hpp"

#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::trace {

TraceBuilder::TraceBuilder(int nranks, TimeNs op_duration)
    : trace_(nranks),
      clock_(static_cast<std::size_t>(nranks), 0.0),
      next_request_(static_cast<std::size_t>(nranks), 0),
      op_duration_(op_duration) {
  if (nranks <= 0) throw TraceError("builder: need at least one rank");
  if (op_duration < 0) throw TraceError("builder: negative op duration");
  for (int r = 0; r < nranks; ++r) push(r, Op::kInit);
}

Event& TraceBuilder::push(int rank, Op op) {
  if (finished_) throw TraceError("builder: already finished");
  auto& events = trace_.rank(rank);
  Event e;
  e.op = op;
  e.start = clock_.at(static_cast<std::size_t>(rank));
  e.end = e.start + op_duration_;
  clock_[static_cast<std::size_t>(rank)] = e.end;
  events.push_back(e);
  return events.back();
}

void TraceBuilder::compute(int rank, TimeNs duration) {
  if (finished_) throw TraceError("builder: already finished");
  if (duration < 0) throw TraceError("builder: negative compute duration");
  clock_.at(static_cast<std::size_t>(rank)) += duration;
}

void TraceBuilder::send(int rank, int peer, std::uint64_t bytes, int tag) {
  Event& e = push(rank, Op::kSend);
  e.peer = peer;
  e.bytes = bytes;
  e.tag = tag;
}

void TraceBuilder::recv(int rank, int peer, std::uint64_t bytes, int tag) {
  Event& e = push(rank, Op::kRecv);
  e.peer = peer;
  e.bytes = bytes;
  e.tag = tag;
}

std::int64_t TraceBuilder::isend(int rank, int peer, std::uint64_t bytes,
                                 int tag) {
  Event& e = push(rank, Op::kIsend);
  e.peer = peer;
  e.bytes = bytes;
  e.tag = tag;
  e.request = next_request_.at(static_cast<std::size_t>(rank))++;
  return e.request;
}

std::int64_t TraceBuilder::irecv(int rank, int peer, std::uint64_t bytes,
                                 int tag) {
  Event& e = push(rank, Op::kIrecv);
  e.peer = peer;
  e.bytes = bytes;
  e.tag = tag;
  e.request = next_request_.at(static_cast<std::size_t>(rank))++;
  return e.request;
}

void TraceBuilder::wait(int rank, std::int64_t request) {
  Event& e = push(rank, Op::kWait);
  e.request = request;
}

void TraceBuilder::waitall(int rank, const std::vector<std::int64_t>& requests) {
  for (const auto req : requests) wait(rank, req);
}

void TraceBuilder::collective(int rank, Op op, std::uint64_t bytes, int root) {
  if (!is_collective(op)) {
    throw TraceError(strformat("builder: %s is not a collective",
                               std::string(op_name(op)).c_str()));
  }
  Event& e = push(rank, op);
  e.bytes = bytes;
  e.root = root;
}

void TraceBuilder::barrier_all() {
  for (int r = 0; r < nranks(); ++r) collective(r, Op::kBarrier, 0);
}

void TraceBuilder::bcast_all(std::uint64_t bytes, int root) {
  for (int r = 0; r < nranks(); ++r) collective(r, Op::kBcast, bytes, root);
}

void TraceBuilder::reduce_all(std::uint64_t bytes, int root) {
  for (int r = 0; r < nranks(); ++r) collective(r, Op::kReduce, bytes, root);
}

void TraceBuilder::allreduce_all(std::uint64_t bytes) {
  for (int r = 0; r < nranks(); ++r) collective(r, Op::kAllreduce, bytes);
}

void TraceBuilder::allgather_all(std::uint64_t bytes) {
  for (int r = 0; r < nranks(); ++r) collective(r, Op::kAllgather, bytes);
}

void TraceBuilder::reduce_scatter_all(std::uint64_t bytes) {
  for (int r = 0; r < nranks(); ++r) collective(r, Op::kReduceScatter, bytes);
}

void TraceBuilder::alltoall_all(std::uint64_t bytes) {
  for (int r = 0; r < nranks(); ++r) collective(r, Op::kAlltoall, bytes);
}

TimeNs TraceBuilder::now(int rank) const {
  return clock_.at(static_cast<std::size_t>(rank));
}

Trace TraceBuilder::finish() {
  if (finished_) throw TraceError("builder: finish() called twice");
  for (int r = 0; r < nranks(); ++r) push(r, Op::kFinalize);
  finished_ = true;
  Trace out = std::move(trace_);
  out.validate();
  return out;
}

}  // namespace llamp::trace
