#include "sim/simulator.hpp"

#include <limits>
#include <queue>

#include "graph/costs.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::sim {

Simulator::Simulator(const graph::Graph& g) : g_(g) {
  if (!g.finalized()) throw SimError("graph must be finalized");
}

Result Simulator::run(const loggops::Params& p) const {
  const loggops::UniformWire wire(p);
  return run(p, wire);
}

Result Simulator::run(const loggops::Params& p,
                      const loggops::WireModel& wire) const {
  p.validate();
  const std::size_t n = g_.num_vertices();
  Result res;
  res.start.assign(n, 0.0);
  res.finish.assign(n, 0.0);
  res.critical_in_edge.assign(n, std::numeric_limits<std::uint32_t>::max());

  std::vector<std::uint32_t> pending(n, 0);
  for (const graph::Edge& e : g_.edges()) ++pending[e.to];

  // Min-heap on completion time; ties broken by vertex id for determinism.
  using QueueItem = std::pair<TimeNs, graph::VertexId>;
  std::priority_queue<QueueItem, std::vector<QueueItem>, std::greater<>> ready;

  std::size_t processed = 0;
  for (graph::VertexId v = 0; v < n; ++v) {
    if (pending[v] == 0) {
      res.finish[v] = graph::vertex_cost(g_.vertex(v), p);
      ready.emplace(res.finish[v], v);
    }
  }

  while (!ready.empty()) {
    const auto [t, v] = ready.top();
    ready.pop();
    ++processed;
    res.finish[v] = t;
    if (t > res.makespan ||
        (t == res.makespan && res.last == graph::kInvalidVertex)) {
      res.makespan = t;
      res.last = v;
    }
    for (const graph::Graph::Adj& a : g_.out_edges(v)) {
      const graph::Edge& e = g_.edge(a.edge);
      const TimeNs arrival = t + graph::edge_cost(g_, e, p, wire);
      if (arrival >= res.start[a.other]) {
        res.start[a.other] = arrival;
        res.critical_in_edge[a.other] = a.edge;
      }
      if (--pending[a.other] == 0) {
        const TimeNs done =
            res.start[a.other] + graph::vertex_cost(g_.vertex(a.other), p);
        ready.emplace(done, a.other);
      }
    }
  }

  if (processed != n) {
    throw SimError(strformat("deadlock: only %zu of %zu vertices completed",
                             processed, n));
  }
  return res;
}

CriticalPathInfo Simulator::critical_path(const Result& r) const {
  if (r.critical_in_edge.size() != g_.num_vertices()) {
    throw SimError("result does not belong to this graph");
  }
  CriticalPathInfo info;
  graph::VertexId v = r.last;
  while (v != graph::kInvalidVertex) {
    ++info.length;
    const std::uint32_t ein = r.critical_in_edge[v];
    if (ein == std::numeric_limits<std::uint32_t>::max()) break;
    const graph::Edge& e = g_.edge(ein);
    info.lambda_L += static_cast<double>(e.l_mult);
    if (e.bytes > 1) info.g_coefficient += static_cast<double>(e.bytes - 1);
    if (e.kind == graph::EdgeKind::kComm) ++info.messages;
    v = e.from;
  }
  return info;
}

}  // namespace llamp::sim
