#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "loggops/wire_model.hpp"

namespace llamp::sim {

/// Result of one simulation run.
struct Result {
  TimeNs makespan = 0.0;                   ///< completion time of the program
  graph::VertexId last = graph::kInvalidVertex;  ///< vertex finishing last
  std::vector<TimeNs> start;               ///< per-vertex start times
  std::vector<TimeNs> finish;              ///< per-vertex finish times
  /// For each vertex, the in-edge index (into Graph::edges()) that
  /// determined its start time, or UINT32_MAX for source vertices.  Walking
  /// these backwards from `last` yields the critical path.
  std::vector<std::uint32_t> critical_in_edge;
};

/// Metrics extracted from a simulated critical path — the "graph analysis"
/// baseline of §II-C (two traversals: one to timestamp, one to walk the
/// path).
struct CriticalPathInfo {
  double lambda_L = 0.0;     ///< Σ l_mult over critical-path edges (= ∂T/∂L)
  double g_coefficient = 0.0;///< Σ (bytes-1) over critical-path edges (= ∂T/∂G)
  std::size_t messages = 0;  ///< number of comm edges on the path
  std::size_t length = 0;    ///< vertices on the path
};

/// Discrete-event replay of an execution graph under the LogGPS model: the
/// in-repo stand-in for LogGOPSim.  Vertices become ready when all their
/// dependencies (program order, message arrival, rendezvous handshake
/// stages) are satisfied; a priority queue drives completion order.
///
/// The simulator and the LP layer share the cost semantics in
/// graph/costs.hpp, so for any configuration the LP objective must equal
/// `run(...).makespan` exactly — a property the test suite enforces on
/// random graphs.
class Simulator {
 public:
  explicit Simulator(const graph::Graph& g);
  /// The simulator keeps a reference; binding a temporary graph would
  /// dangle, so it is rejected at compile time.
  explicit Simulator(graph::Graph&&) = delete;

  /// Simulate under uniform LogGPS parameters.
  Result run(const loggops::Params& p) const;

  /// Simulate with an explicit wire model (HLogGP / topology analyses).
  Result run(const loggops::Params& p, const loggops::WireModel& wire) const;

  /// Walk the recorded critical path of a result.
  CriticalPathInfo critical_path(const Result& r) const;

 private:
  const graph::Graph& g_;
};

}  // namespace llamp::sim
