#include "sim/trace_simulator.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <tuple>
#include <unordered_map>

#include "schedgen/schedgen.hpp"
#include "util/error.hpp"
#include "util/strings.hpp"

namespace llamp::sim {

namespace {

using schedgen::MidOp;
using schedgen::MidStream;

constexpr TimeNs kUnknown = -1.0;

/// One logical message (a matched send/recv pair).
struct Message {
  int src = -1;
  int dst = -1;
  std::uint64_t bytes = 0;
  bool rendezvous = false;

  // Set as execution reaches the corresponding operations.
  TimeNs send_issue = kUnknown;  ///< ts: instant the send op starts
  TimeNs recv_issue = kUnknown;  ///< tr: blocking-recv start / irecv post

  bool send_known() const { return send_issue >= 0.0; }
  bool recv_known() const { return recv_issue >= 0.0; }

  /// Eager: instant the payload is fully available at the receiver.
  TimeNs eager_arrival(const loggops::Params& p,
                       const loggops::WireModel& w) const {
    return send_issue + p.o + w.latency(src, dst) + payload(w);
  }

  /// Rendezvous handshake match instant tm = max(ts + o + L, tr + o).
  TimeNs match_time(const loggops::Params& p,
                    const loggops::WireModel& w) const {
    return std::max(send_issue + p.o + w.latency(src, dst), recv_issue + p.o);
  }

  /// Rendezvous receiver completion t_r' = tm + 2L + B + o.
  TimeNs rdzv_recv_done(const loggops::Params& p,
                        const loggops::WireModel& w) const {
    return match_time(p, w) + 2.0 * w.latency(src, dst) + payload(w) + p.o;
  }

  /// Rendezvous sender completion t_s' = t_r' + o.
  TimeNs rdzv_send_done(const loggops::Params& p,
                        const loggops::WireModel& w) const {
    return rdzv_recv_done(p, w) + p.o;
  }

  TimeNs payload(const loggops::WireModel& w) const {
    return bytes > 1 ? static_cast<double>(bytes - 1) * w.gap_per_byte(src, dst)
                     : 0.0;
  }
};

/// Static matching: k-th send from (src, dst, tag) pairs with the k-th
/// *posted* receive on that channel (MPI non-overtaking).  Returns per-rank
/// per-op message ids (only p2p ops get one).
struct Matching {
  std::vector<Message> messages;
  std::vector<std::vector<std::int64_t>> op_message;  // [rank][op index]
};

Matching match_streams(const std::vector<MidStream>& streams,
                       std::uint64_t rdzv_threshold) {
  Matching m;
  m.op_message.resize(streams.size());
  using Key = std::tuple<int, int, int>;
  std::map<Key, std::vector<std::int64_t>> send_q, recv_q;

  for (std::size_t r = 0; r < streams.size(); ++r) {
    m.op_message[r].assign(streams[r].size(), -1);
    // Receives are keyed by *posting* order: the op where the recv/irecv
    // appears, regardless of where its wait lands.
    for (std::size_t i = 0; i < streams[r].size(); ++i) {
      const MidOp& op = streams[r][i];
      switch (op.kind) {
        case MidOp::Kind::kSend:
        case MidOp::Kind::kIsend: {
          Message msg;
          msg.src = static_cast<int>(r);
          msg.dst = op.peer;
          msg.bytes = op.bytes;
          msg.rendezvous = op.bytes >= rdzv_threshold;
          const auto id = static_cast<std::int64_t>(m.messages.size());
          m.messages.push_back(msg);
          m.op_message[r][i] = id;
          send_q[{static_cast<int>(r), op.peer, op.tag}].push_back(id);
          break;
        }
        case MidOp::Kind::kRecv:
        case MidOp::Kind::kIrecv: {
          m.op_message[r][i] = -2;  // placeholder: resolved below
          recv_q[{op.peer, static_cast<int>(r), op.tag}].push_back(
              static_cast<std::int64_t>(i) |
              (static_cast<std::int64_t>(r) << 32));
          break;
        }
        default:
          break;
      }
    }
  }
  for (auto& [key, sends] : send_q) {
    auto it = recv_q.find(key);
    const std::size_t nrecvs = it == recv_q.end() ? 0 : it->second.size();
    if (nrecvs != sends.size()) {
      throw SimError(strformat("trace-sim: unmatched channel %d->%d tag %d",
                               std::get<0>(key), std::get<1>(key),
                               std::get<2>(key)));
    }
    for (std::size_t k = 0; k < sends.size(); ++k) {
      const auto packed = it->second[k];
      const auto rank = static_cast<std::size_t>(packed >> 32);
      const auto op = static_cast<std::size_t>(packed & 0xffffffff);
      m.op_message[rank][op] = sends[k];
    }
  }
  for (std::size_t r = 0; r < streams.size(); ++r) {
    for (std::size_t i = 0; i < streams[r].size(); ++i) {
      if (m.op_message[r][i] == -2) {
        throw SimError("trace-sim: receive without a matching send");
      }
    }
  }
  return m;
}

/// Per-rank execution state for the cooperative scheduler.
struct RankState {
  std::size_t pc = 0;
  TimeNs clock = 0.0;
  /// request id -> message id for outstanding nonblocking operations.
  std::unordered_map<std::int64_t, std::int64_t> requests;
  std::unordered_map<std::int64_t, bool> request_is_recv;
};

}  // namespace

TraceSimulator::TraceSimulator(const trace::Trace& t,
                               const schedgen::Options& opts)
    : streams_(schedgen::expand_trace(t, opts)),
      rendezvous_threshold_(opts.rendezvous_threshold) {}

TraceSimulator::TraceSimulator(std::vector<schedgen::MidStream> streams,
                               const schedgen::Options& opts)
    : streams_(std::move(streams)),
      rendezvous_threshold_(opts.rendezvous_threshold) {}

TraceSimulator::Result TraceSimulator::run(const loggops::Params& p) const {
  const loggops::UniformWire wire(p);
  return run(p, wire);
}

TraceSimulator::Result TraceSimulator::run(
    const loggops::Params& p, const loggops::WireModel& wire) const {
  p.validate();
  Matching matching = match_streams(streams_, rendezvous_threshold_);
  auto& msgs = matching.messages;

  const std::size_t nranks = streams_.size();
  std::vector<RankState> ranks(nranks);

  // Runs rank r until it blocks on a peer; returns true if any op advanced.
  const auto step_rank = [&](std::size_t r) {
    RankState& st = ranks[r];
    const MidStream& ops = streams_[r];
    bool advanced = false;
    while (st.pc < ops.size()) {
      const MidOp& op = ops[st.pc];
      const std::int64_t mid = matching.op_message[r][st.pc];
      switch (op.kind) {
        case MidOp::Kind::kCalc:
          st.clock += op.duration;
          break;
        case MidOp::Kind::kIsend: {
          Message& msg = msgs[static_cast<std::size_t>(mid)];
          msg.send_issue = st.clock;
          st.clock += p.o;
          st.requests[op.request] = mid;
          st.request_is_recv[op.request] = false;
          break;
        }
        case MidOp::Kind::kIrecv: {
          Message& msg = msgs[static_cast<std::size_t>(mid)];
          msg.recv_issue = st.clock;  // posting instant
          st.clock += p.o;            // posting overhead
          st.requests[op.request] = mid;
          st.request_is_recv[op.request] = true;
          break;
        }
        case MidOp::Kind::kSend: {
          Message& msg = msgs[static_cast<std::size_t>(mid)];
          msg.send_issue = st.clock;
          if (msg.rendezvous) {
            // Blocks until the handshake completes; needs the peer's
            // receive-issue instant.
            if (!msg.recv_known()) return advanced;
            st.clock = std::max(st.clock + p.o, msg.rdzv_send_done(p, wire));
          } else {
            st.clock += p.o;  // eager: buffer handed off immediately
          }
          break;
        }
        case MidOp::Kind::kRecv: {
          Message& msg = msgs[static_cast<std::size_t>(mid)];
          if (!msg.send_known()) return advanced;  // need ts from the peer
          msg.recv_issue = st.clock;
          if (msg.rendezvous) {
            st.clock = msg.rdzv_recv_done(p, wire);
          } else {
            st.clock = std::max(st.clock, msg.eager_arrival(p, wire)) + p.o;
          }
          break;
        }
        case MidOp::Kind::kWait: {
          const auto it = st.requests.find(op.request);
          if (it == st.requests.end()) {
            throw SimError(strformat("trace-sim: rank %zu waits on unknown "
                                     "request %lld", r,
                                     static_cast<long long>(op.request)));
          }
          const Message& msg = msgs[static_cast<std::size_t>(it->second)];
          const bool is_recv = st.request_is_recv.at(op.request);
          if (is_recv) {
            if (!msg.send_known()) return advanced;
            if (msg.rendezvous) {
              st.clock = std::max(st.clock, msg.rdzv_recv_done(p, wire) - p.o) +
                         p.o;
            } else {
              st.clock = std::max(st.clock, msg.eager_arrival(p, wire)) + p.o;
            }
          } else {
            if (msg.rendezvous) {
              if (!msg.recv_known()) return advanced;
              st.clock = std::max(st.clock, msg.rdzv_send_done(p, wire));
            }
            // Eager isend: complete at issue + o, already in the past.
          }
          st.requests.erase(it);
          st.request_is_recv.erase(op.request);
          break;
        }
      }
      ++st.pc;
      advanced = true;
    }
    return advanced;
  };

  Result result;
  result.rank_finish.assign(nranks, 0.0);
  std::size_t done = 0;
  while (done < nranks) {
    ++result.scheduler_passes;
    bool progress = false;
    done = 0;
    for (std::size_t r = 0; r < nranks; ++r) {
      if (ranks[r].pc >= streams_[r].size()) {
        ++done;
        continue;
      }
      progress |= step_rank(r);
      if (ranks[r].pc >= streams_[r].size()) ++done;
    }
    if (!progress && done < nranks) {
      throw SimError(strformat("trace-sim: deadlock with %zu of %zu ranks "
                               "finished", done, nranks));
    }
  }
  for (std::size_t r = 0; r < nranks; ++r) {
    result.rank_finish[r] = ranks[r].clock;
    result.makespan = std::max(result.makespan, ranks[r].clock);
  }
  return result;
}

}  // namespace llamp::sim
