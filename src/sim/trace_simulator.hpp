#pragma once

#include <vector>

#include "loggops/params.hpp"
#include "loggops/wire_model.hpp"
#include "schedgen/midop.hpp"
#include "schedgen/options.hpp"
#include "trace/trace.hpp"

namespace llamp::sim {

/// Operational (trace-driven) simulator: executes per-rank operation
/// streams directly under LogGPS protocol rules — per-rank CPU clocks,
/// blocking semantics, MPI non-overtaking message matching, eager delivery,
/// and the rendezvous REQ / RDMA-read / FIN handshake — with a cooperative
/// round-robin scheduler that suspends ranks blocked on their peers.
///
/// This is an *independent* implementation of the LogGOPSim semantics: it
/// never looks at an execution graph or its edge-cost annotations.  Its
/// makespan agreeing exactly with the graph replay (sim::Simulator) and the
/// LP optimum (lp::ParametricSolver) on arbitrary programs is therefore an
/// end-to-end validation of Schedgen's graph construction *and* of
/// Algorithm 1 — the strongest property test in the repository.
class TraceSimulator {
 public:
  /// Simulate an MPI trace: collectives are expanded with the same options
  /// Schedgen uses, then the streams are executed.
  explicit TraceSimulator(const trace::Trace& t,
                          const schedgen::Options& opts = {});
  /// Simulate pre-expanded streams (shares Options::rendezvous_threshold).
  TraceSimulator(std::vector<schedgen::MidStream> streams,
                 const schedgen::Options& opts);

  struct Result {
    TimeNs makespan = 0.0;
    std::vector<TimeNs> rank_finish;  ///< completion time per rank
    std::size_t scheduler_passes = 0; ///< round-robin sweeps used
  };

  Result run(const loggops::Params& p) const;
  Result run(const loggops::Params& p, const loggops::WireModel& wire) const;

 private:
  std::vector<schedgen::MidStream> streams_;
  std::uint64_t rendezvous_threshold_;
};

}  // namespace llamp::sim
