#pragma once

#include <memory>
#include <vector>

#include "core/solver_cache.hpp"
#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "lp/param_space.hpp"
#include "lp/parametric.hpp"

namespace llamp::core {

/// LLAMP's primary user-facing interface: network latency sensitivity and
/// tolerance analysis of one execution graph under a LogGPS configuration.
///
/// All latency arguments are expressed as injected deltas ΔL over the
/// measured base latency (the x-axis of Figs. 1, 9, 10) unless the name
/// says otherwise.
class LatencyAnalyzer {
 public:
  LatencyAnalyzer(const graph::Graph& g, loggops::Params p);
  /// Warm-starting form (the api::Engine path): the latency lowering is
  /// fetched from `cache` under (key, p) instead of being rebuilt, and the
  /// point evaluations (base runtime, forecasts, sweeps) are served through
  /// the entry's anchor store, so repeated and nearby requests replay
  /// instead of re-solving.  `g` MUST be the graph cached under `key`, and
  /// `cache` must outlive the analyzer.  Every number produced is bitwise
  /// identical to the cold constructor's — the cache can never change
  /// bytes, only time.
  LatencyAnalyzer(const graph::Graph& g, loggops::Params p,
                  SolverCache& cache, const GraphKey& key);
  /// The analyzer keeps a reference; a temporary graph would dangle.
  LatencyAnalyzer(graph::Graph&&, loggops::Params) = delete;
  LatencyAnalyzer(graph::Graph&&, loggops::Params, SolverCache&,
                  const GraphKey&) = delete;

  const loggops::Params& params() const { return params_; }

  /// Forecast runtime at base latency + delta_L (Fig. 9 top panels).
  TimeNs predict_runtime(TimeNs delta_L = 0.0) const;

  /// Runtime at the measured base latency (the 0-injection point).
  TimeNs base_runtime() const { return base_runtime_; }

  /// Latency sensitivity λ_L = ∂T/∂L at the given injection (Fig. 9 bottom
  /// panels): the number of latency units on the critical path.
  double lambda_L(TimeNs delta_L = 0.0) const;

  /// L ratio: the fraction of critical-path time attributable to network
  /// latency, (L·λ_L)/T at the given injection.  (§II-D1 prints the
  /// reciprocal in its defining formula, but the quantity it describes and
  /// plots — "what fraction of the critical path's execution time is due to
  /// network latency", axis 0..50% — is this fraction.)
  double rho_L(TimeNs delta_L = 0.0) const;

  /// x% L tolerance (§II-D2): the largest *absolute* network latency L such
  /// that runtime stays within (1 + percent/100) of base_runtime().
  /// Returns +inf when latency never limits the program.
  TimeNs tolerance(double percent) const;

  /// Same tolerance expressed as an injection ΔL over the base latency.
  TimeNs tolerance_delta(double percent) const;

  /// Critical latencies (Algorithm 2): absolute L values in [lo, hi] where
  /// λ_L changes.
  std::vector<TimeNs> critical_latencies(TimeNs lo, TimeNs hi) const;

  /// Exact piecewise-linear runtime curve over absolute L in [lo, hi].
  std::vector<lp::ParametricSolver::Segment> runtime_curve(TimeNs lo,
                                                           TimeNs hi) const;

  /// Bandwidth sensitivity λ_G = ∂T/∂G at the base configuration (§II-B1).
  double lambda_G() const;

  /// Per-pair HLogGP latency sensitivities λ_L^{i,j} (Appendix I) at the
  /// base configuration with uniform pairwise latency matrices.  Entry
  /// (i, j) of the returned row-major nranks x nranks matrix is the number
  /// of latency units between ranks i and j on the critical path.
  std::vector<double> pairwise_lambda_L() const;

  /// One evaluated point of a latency sweep.
  struct SweepPoint {
    TimeNs delta_L = 0.0;
    TimeNs runtime = 0.0;
    double lambda_L = 0.0;
    double rho_L = 0.0;
  };

  /// Evaluate runtime/λ_L/ρ_L at many injections in parallel (the LP solves
  /// are independent, mirroring how the paper parallelizes its sweeps via
  /// the barrier method).  `threads` <= 0 uses the hardware concurrency.
  std::vector<SweepPoint> sweep(const std::vector<TimeNs>& delta_Ls,
                                int threads = 0) const;

  /// Access to the underlying solver for advanced (multi-parameter) use.
  const lp::ParametricSolver& solver() const { return solver_; }

 private:
  const graph::Graph& g_;
  loggops::Params params_;
  /// Engaged by the warm constructor: the session cache serving this
  /// analyzer's point evaluations, and the entry holding the shared
  /// lowering + anchors.  Declared before space_/solver_ — the warm
  /// constructor initializes those from warm_.
  SolverCache* cache_ = nullptr;
  GraphKey key_;
  std::shared_ptr<SolverCache::Entry> warm_;
  std::shared_ptr<const lp::ParamSpace> space_;
  lp::ParametricSolver solver_;
  TimeNs base_runtime_ = 0.0;
};

}  // namespace llamp::core
