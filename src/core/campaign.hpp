#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/graph_cache.hpp"
#include "core/solver_cache.hpp"
#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "stoch/distribution.hpp"
#include "util/table.hpp"
#include "util/time.hpp"

namespace llamp::core {

/// Multi-scenario batch analysis: the paper's results are whole grids —
/// every figure sweeps applications × rank counts × latency injections ×
/// topologies (Figs. 1, 9–12, 20) — and this subsystem is the single engine
/// behind them.  A declarative grid spec expands into scenarios; each
/// scenario builds (or reuses) one execution graph and one ParametricSolver
/// and walks its ΔL grid; scenarios run on a shared thread pool; results
/// come back in grid order regardless of thread count.

/// One fully-resolved analysis scenario: a proxy application at a scale,
/// under a LogGPS configuration, optionally mapped onto a physical topology,
/// with its own ΔL grid.
///
/// Topology semantics: with topology "none" the decision parameter is the
/// flat network latency L and ΔL injects on L (the Fig. 1/9 axis).  With
/// "fat-tree" or "dragonfly" every wire's latency is the decision parameter
/// (the §IV-2 wire-latency space) and ΔL injects on l_wire, so points
/// answer "what if each link got ΔL slower" (the FEC question of Fig. 11).
struct Scenario {
  std::string app;
  int ranks = 0;
  double scale = 0.25;
  std::string topology = "none";  ///< "none" | "fat-tree" | "dragonfly"
  std::string config;             ///< label of the LogGPS variant
  loggops::Params params;
  std::vector<TimeNs> delta_Ls;        ///< injection grid, all >= 0
  std::vector<double> band_percents;   ///< tolerance bands to evaluate
};

/// Physical-topology shape shared by every topology scenario of a campaign
/// (the same knobs `llamp topo` exposes).
struct TopologyOptions {
  double l_wire = 274.0;    ///< per-wire base latency [ns] (Zambre et al.)
  double d_switch = 108.0;  ///< per-switch traversal [ns]
  int ft_radix = 8;
  int df_groups = 8;
  int df_routers = 4;
  int df_hosts = 8;
};

/// One LogGPS variant of the campaign grid.  When `o_is_default`, the
/// preset's per-message overhead is replaced per application with the
/// paper's Table II measurement (exactly what `llamp analyze` does); an
/// explicit o override pins it across all applications.
struct ConfigVariant {
  std::string name;  ///< e.g. "cscs" or "cscs/L=10000"
  loggops::Params params;
  bool o_is_default = true;
};

/// Monte Carlo axis of a campaign (the stoch/ subsystem riding the grid):
/// with samples > 0 every scenario is additionally analyzed under `samples`
/// perturbed LogGPS operating points — relative normal jitter on L/o/G plus
/// per-edge cost noise in the cluster emulator's convention — and each grid
/// point gains distributional runtime summaries next to its deterministic
/// value.  Only flat-latency scenarios (topology "none") support the axis;
/// mixing it with a physical topology is a usage error.
///
/// Every scenario samples from the same seed (common random numbers): the
/// across-scenario *differences* the grid exists to expose are not blurred
/// by independent noise draws, and results stay independent of the thread
/// count and of which scenarios share the campaign.
struct McAxis {
  int samples = 0;  ///< 0 = deterministic campaign only
  std::uint64_t seed = 42;
  double sigma_L = 0.0;  ///< relative stddev of L around each scenario base
  double sigma_o = 0.0;
  double sigma_G = 0.0;
  stoch::EdgeNoise noise;
};

/// Declarative grid spec.  Expansion order (and therefore result order) is
/// the nested cross product with `apps` outermost and the ΔL grid innermost:
///   apps × ranks × scales × topologies × configs × ΔL.
/// Requested rank counts are clamped per application to the nearest
/// supported value (LULESH wants cubes); clamp collisions are deduplicated
/// keeping first occurrence, so a grid never analyzes one scenario twice.
struct CampaignSpec {
  std::vector<std::string> apps;
  std::vector<int> ranks = {8};
  std::vector<double> scales = {0.25};
  std::vector<std::string> topologies = {"none"};
  std::vector<ConfigVariant> configs;  ///< empty = one CSCS-testbed variant
  std::vector<TimeNs> delta_Ls = {0.0};
  std::vector<double> band_percents;
  TopologyOptions topo;
  McAxis mc;
  int threads = 0;  ///< scenario parallelism; <= 0 = hardware concurrency
};

/// Table II per-application overhead keyed the way the validation benches
/// key it (node count approximated by rank count); leaves `p.o` unchanged
/// for applications outside Table II (npb-*, namd).
void apply_table2_overhead(loggops::Params& p, const std::string& app,
                           int ranks);

/// The uniform ΔL grid {0, ..., dl_max} with `points` entries — the one
/// grid-construction expression shared by the CLI and the bench harnesses,
/// so their bytes can never drift apart.  Throws UsageError unless
/// points >= 2 and dl_max > 0.
std::vector<TimeNs> linear_grid(TimeNs dl_max, int points);

class Campaign {
 public:
  /// Expand a grid spec.  Throws UsageError on degenerate axes (empty app
  /// list, negative ΔL, unknown topology name, non-positive scale).
  explicit Campaign(const CampaignSpec& spec);

  /// Adopt an explicit scenario list (the bench harnesses' path: Fig. 9's
  /// configurations are not a cross product — per-app rank sets and ΔL
  /// ceilings).  Scenarios are validated like expanded ones.
  Campaign(std::vector<Scenario> scenarios, TopologyOptions topo = {},
           int threads = 0, McAxis mc = {});

  const std::vector<Scenario>& scenarios() const { return scenarios_; }

  struct Point {
    TimeNs delta_L = 0.0;
    TimeNs runtime = 0.0;
    double lambda = 0.0;  ///< ∂T/∂(active parameter): λ_L or dT/dl_wire
    double rho = 0.0;     ///< latency fraction of the critical path
    double probe = 0.0;   ///< extra metric; meaningful only with a probe
  };
  struct Band {
    double percent = 0.0;
    TimeNs tolerance_delta = 0.0;  ///< +inf when the parameter never binds
  };
  /// Distributional runtime summary of one grid point under the mc axis.
  struct McPoint {
    TimeNs mean = 0.0;
    TimeNs stddev = 0.0;
    TimeNs q05 = 0.0;
    TimeNs q95 = 0.0;
  };
  struct ScenarioResult {
    Scenario scenario;
    TimeNs base_runtime = 0.0;  ///< T at ΔL = 0
    std::size_t graph_vertices = 0;
    std::size_t graph_edges = 0;
    std::vector<Point> points;  ///< aligned with scenario.delta_Ls
    std::vector<Band> bands;    ///< aligned with scenario.band_percents
    std::vector<McPoint> mc;    ///< aligned with points; empty when mc off
  };

  /// Optional extra per-point metric (e.g. a cluster-emulator measurement):
  /// called once per scenario with the cached graph, must return one value
  /// per ΔL point, in grid order.  Called concurrently across scenarios, so
  /// it must not share mutable state between calls.
  using Probe =
      std::function<std::vector<double>(const Scenario&, const graph::Graph&)>;

  /// Run every scenario.  Execution graphs are cached by
  /// (app, ranks, scale, rendezvous threshold) and shared across the
  /// topology/config axes and all ΔL points — a graph is never rebuilt per
  /// point.  Results are written by scenario index, so their order (and,
  /// via the deterministic solver, their bytes) is independent of the
  /// thread count.
  std::vector<ScenarioResult> run(const Probe& probe = {});

  /// Same, resolving graphs through an external cache (an api::Engine
  /// session cache) so graphs persist across campaigns and are shared with
  /// other request types.  Missing graphs are built in parallel; already
  /// cached ones are reused.  The emitted bytes are independent of the
  /// cache's prior contents.
  std::vector<ScenarioResult> run(const Probe& probe, GraphCache& cache);

  /// Same, additionally resolving flat-latency scenario solvers through an
  /// external SolverCache (the api::Engine session pairing): lowered
  /// problems persist across campaigns and are shared with analyze/sweep/mc
  /// requests of the same scenarios, and repeated grid points replay from
  /// cached anchor state instead of re-solving.  The emitted bytes are
  /// independent of either cache's prior contents (replay from a covering
  /// anchor is bitwise-equal to a dense solve).  Topology scenarios keep
  /// their per-scenario wire-latency lowerings — those spaces are not
  /// cacheable by LogGPS fingerprint.
  std::vector<ScenarioResult> run(const Probe& probe, GraphCache& cache,
                                  SolverCache& solvers);

  struct RunStats {
    /// Distinct execution graphs the grid spans (= graphs constructed when
    /// starting from a cold cache).  A spec property, deliberately not the
    /// physical build count: a warmed session cache must not change the
    /// campaign header's bytes.
    std::size_t graphs_built = 0;
    std::size_t scenarios_run = 0;
  };
  /// Statistics of the most recent run() (cache effectiveness pinning).
  const RunStats& stats() const { return stats_; }

 private:
  std::vector<Scenario> scenarios_;
  TopologyOptions topo_;
  McAxis mc_;
  int threads_ = 0;
  RunStats stats_;
};

/// The flattened points grid of a campaign as a table, shared by the CLI
/// emitters and harnesses.  `human` selects report formatting (adaptive
/// units, slowdown vs the scenario's base runtime); otherwise the numeric
/// CSV/JSON schema (app, ranks, scale, topology, config, delta_l_ns,
/// runtime_ns, lambda_l, rho_l).  A non-empty `probe_name` appends the
/// probe column.
Table campaign_points_table(const std::vector<Campaign::ScenarioResult>& results,
                            bool human, const std::string& probe_name = "");

}  // namespace llamp::core
