#include "core/placement.hpp"

#include <algorithm>
#include <memory>
#include <numeric>

#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "topo/spaces.hpp"
#include "util/error.hpp"

namespace llamp::core {

namespace {

std::size_t idx(int i, int j, int n) {
  return static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
         static_cast<std::size_t>(j);
}

/// Latency between two *nodes* under the wire model.
double node_latency(const topo::Topology& topo, WireCost wire, int a, int b) {
  if (a == b) return 0.0;
  const topo::Path p = topo.path(a, b);
  return static_cast<double>(p.total_wires()) * wire.l_wire +
         static_cast<double>(p.switches) * wire.d_switch;
}

/// Solve the HLogGP LP for a placement; returns runtime and, optionally,
/// the pairwise sensitivity matrices.
double solve_hloggp(const graph::Graph& g, const loggops::Params& p,
                    const topo::Topology& topo, WireCost wire,
                    const std::vector<int>& placement,
                    std::vector<double>* dl_matrix,
                    std::vector<double>* dg_matrix) {
  const int n = g.nranks();
  const auto mats =
      topo::make_pairwise_matrices(p, topo, placement, wire.l_wire,
                                   wire.d_switch);
  const bool want_gap = dg_matrix != nullptr;
  const auto space = std::make_shared<lp::PairwiseLatencyParamSpace>(
      p, n, mats.latency, mats.gap, want_gap);
  lp::ParametricSolver solver(g, space);
  const auto sol = solver.solve(0, space->base_value(0));
  const auto unpack = [&](std::vector<double>* out, bool gap) {
    if (!out) return;
    out->assign(static_cast<std::size_t>(n) * static_cast<std::size_t>(n),
                0.0);
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        const int k = gap ? space->gap_param_index(i, j)
                          : space->pair_index(i, j);
        const double v = sol.gradient[static_cast<std::size_t>(k)];
        (*out)[idx(i, j, n)] = v;
        (*out)[idx(j, i, n)] = v;
      }
    }
  };
  unpack(dl_matrix, false);
  unpack(dg_matrix, true);
  return sol.value;
}

}  // namespace

std::vector<std::uint64_t> communication_volume(const graph::Graph& g) {
  const int n = g.nranks();
  std::vector<std::uint64_t> vol(static_cast<std::size_t>(n) *
                                     static_cast<std::size_t>(n),
                                 0);
  for (const graph::Edge& e : g.edges()) {
    if (e.kind != graph::EdgeKind::kComm) continue;
    const int src = g.vertex(e.from).rank;
    const int dst = g.vertex(e.to).rank;
    vol[idx(src, dst, n)] += g.vertex(e.from).bytes;
    vol[idx(dst, src, n)] += g.vertex(e.from).bytes;
  }
  return vol;
}

double placement_runtime(const graph::Graph& g, const loggops::Params& p,
                         const topo::Topology& topo, WireCost wire,
                         const std::vector<int>& placement) {
  return solve_hloggp(g, p, topo, wire, placement, nullptr, nullptr);
}

PlacementResult block_placement(const graph::Graph& g,
                                const loggops::Params& p,
                                const topo::Topology& topo, WireCost wire) {
  PlacementResult r;
  r.placement = topo::identity_placement(g.nranks());
  r.predicted_runtime = placement_runtime(g, p, topo, wire, r.placement);
  return r;
}

PlacementResult volume_greedy_placement(const graph::Graph& g,
                                        const loggops::Params& p,
                                        const topo::Topology& topo,
                                        WireCost wire) {
  const int n = g.nranks();
  if (topo.nnodes() < n) throw TopoError("topology too small for rank count");
  const auto vol = communication_volume(g);

  // Rank order: heaviest total communicators first.
  std::vector<int> order(static_cast<std::size_t>(n));
  std::iota(order.begin(), order.end(), 0);
  std::vector<std::uint64_t> total(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < n; ++j) total[static_cast<std::size_t>(i)] += vol[idx(i, j, n)];
  }
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    return total[static_cast<std::size_t>(a)] > total[static_cast<std::size_t>(b)];
  });

  std::vector<int> placement(static_cast<std::size_t>(n), -1);
  std::vector<bool> node_used(static_cast<std::size_t>(topo.nnodes()), false);
  // Only the first n nodes are candidates: dense packing like the paper.
  for (const int r : order) {
    double best_cost = std::numeric_limits<double>::infinity();
    int best_node = -1;
    for (int node = 0; node < n; ++node) {
      if (node_used[static_cast<std::size_t>(node)]) continue;
      double cost = 0.0;
      for (int k = 0; k < n; ++k) {
        if (placement[static_cast<std::size_t>(k)] < 0 || vol[idx(r, k, n)] == 0) {
          continue;
        }
        cost += static_cast<double>(vol[idx(r, k, n)]) *
                node_latency(topo, wire, node,
                             placement[static_cast<std::size_t>(k)]);
      }
      if (cost < best_cost) {
        best_cost = cost;
        best_node = node;
      }
    }
    placement[static_cast<std::size_t>(r)] = best_node;
    node_used[static_cast<std::size_t>(best_node)] = true;
  }

  PlacementResult res;
  res.placement = std::move(placement);
  res.predicted_runtime = placement_runtime(g, p, topo, wire, res.placement);
  return res;
}

PlacementResult optimize_placement(const graph::Graph& g,
                                   const loggops::Params& p,
                                   const topo::Topology& topo, WireCost wire,
                                   std::vector<int> initial, int max_rounds) {
  const int n = g.nranks();
  if (topo.nnodes() < n) throw TopoError("topology too small for rank count");
  std::vector<int> pi =
      initial.empty() ? topo::identity_placement(n) : std::move(initial);
  if (static_cast<int>(pi.size()) != n) {
    throw Error("placement: initial mapping arity mismatch");
  }

  PlacementResult res;
  res.placement = pi;
  double f_star = std::numeric_limits<double>::infinity();

  for (int round = 0; round < max_rounds; ++round) {
    ++res.iterations;
    std::vector<double> dl, dg;
    const double f = solve_hloggp(g, p, topo, wire, pi, &dl, &dg);
    if (f < f_star) {
      f_star = f;
      res.placement = pi;
      res.predicted_runtime = f;
    } else {
      // Objective did not improve: revert to the best placement and stop.
      break;
    }

    // Predicted gain of swapping ranks i and j: the change in the
    // sensitivity-weighted communication cost of the critical path.  D_L
    // counts latency units and D_G byte units between pairs on the path;
    // the swap changes which physical route each pair uses.
    double best_gain = 0.0;
    int best_i = -1, best_j = -1;
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double gain = 0.0;
        for (int k = 0; k < n; ++k) {
          if (k == i || k == j) continue;
          const double lat_ik = node_latency(topo, wire, pi[static_cast<std::size_t>(i)],
                                             pi[static_cast<std::size_t>(k)]);
          const double lat_jk = node_latency(topo, wire, pi[static_cast<std::size_t>(j)],
                                             pi[static_cast<std::size_t>(k)]);
          const double wl_ik = dl[idx(i, k, n)];
          const double wl_jk = dl[idx(j, k, n)];
          const double wg_ik = dg[idx(i, k, n)] * p.G;
          const double wg_jk = dg[idx(j, k, n)] * p.G;
          // After the swap, pair (i,k) uses j's node and vice versa; the
          // G-weighted term is latency-independent here (uniform G), but
          // kept for heterogeneous-G topologies.
          gain += (wl_ik - wl_jk) * (lat_ik - lat_jk) +
                  (wg_ik - wg_jk) * 0.0;
        }
        if (gain > best_gain) {
          best_gain = gain;
          best_i = i;
          best_j = j;
        }
      }
    }
    if (best_i < 0) break;  // no positive-gain swap
    std::swap(pi[static_cast<std::size_t>(best_i)],
              pi[static_cast<std::size_t>(best_j)]);
    ++res.swaps;
  }
  return res;
}

}  // namespace llamp::core
