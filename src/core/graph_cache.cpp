#include "core/graph_cache.hpp"

#include <set>
#include <utility>

#include "apps/registry.hpp"
#include "obs/metrics.hpp"
#include "schedgen/schedgen.hpp"
#include "util/parallel.hpp"

namespace llamp::core {

std::unique_ptr<graph::Graph> GraphCache::build(const GraphKey& key) {
  schedgen::Options opt;
  opt.rendezvous_threshold = key.S;
  return std::make_unique<graph::Graph>(schedgen::build_graph(
      apps::make_app_trace(key.app, key.ranks, key.scale), opt));
}

std::shared_ptr<GraphCache::Slot> GraphCache::slot_for(const GraphKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = graphs_[key];
  if (!slot) slot = std::make_shared<Slot>();
  return slot;
}

const graph::Graph& GraphCache::build_in(Slot& slot, const GraphKey& key) {
  // Per-key lock: concurrent first touches of one key build it once;
  // builds of distinct keys proceed in parallel (the map mutex is never
  // held across a build, and the atomic tallies never re-enter it).
  const std::lock_guard<std::mutex> lock(slot.build_mutex);
  if (!slot.graph) {
    slot.graph = build(key);
    built_.fetch_add(1, std::memory_order_relaxed);
    bytes_.fetch_add(slot.graph->memory_bytes(), std::memory_order_relaxed);
  }
  return *slot.graph;
}

const graph::Graph& GraphCache::get(const GraphKey& key) {
  const std::shared_ptr<Slot> slot = slot_for(key);
  const std::lock_guard<std::mutex> lock(slot->build_mutex);
  if (slot->graph) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return *slot->graph;
  }
  slot->graph = build(key);
  built_.fetch_add(1, std::memory_order_relaxed);
  bytes_.fetch_add(slot->graph->memory_bytes(), std::memory_order_relaxed);
  return *slot->graph;
}

void GraphCache::warm(const std::vector<GraphKey>& keys, int threads) {
  // First-appearance order of the distinct keys is preserved so the
  // parallel build's work distribution is deterministic for a given input.
  std::vector<std::pair<GraphKey, std::shared_ptr<Slot>>> todo;
  std::set<GraphKey> seen;
  for (const GraphKey& key : keys) {
    if (seen.insert(key).second) todo.push_back({key, slot_for(key)});
  }
  parallel_for(todo.size(), threads, [&](std::size_t i) {
    (void)build_in(*todo[i].second, todo[i].first);
  });
}

GraphCache::Stats GraphCache::stats() const {
  return {built_.load(std::memory_order_relaxed),
          hits_.load(std::memory_order_relaxed),
          bytes_.load(std::memory_order_relaxed)};
}

std::string GraphCache::stats_string() const {
  const Stats s = stats();
  return obs::stats_line(
      "graphs", {{"built", s.built}, {"hits", s.hits}, {"bytes", s.bytes}});
}

}  // namespace llamp::core
