#include "core/report.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/json.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace llamp::core {

OutputFormat parse_output_format(const std::string& name) {
  if (name == "table") return OutputFormat::kTable;
  if (name == "csv") return OutputFormat::kCsv;
  if (name == "json") return OutputFormat::kJson;
  throw UsageError("unknown --format '" + name +
                   "' (want table, csv, or json)");
}

std::string json_escape(const std::string& s) { return json_escape_string(s); }

namespace {

/// A cell is emitted as a bare JSON number iff strtod consumes it entirely
/// and the value is finite ("inf" and "unbounded" stay strings).
bool is_json_number(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && std::isfinite(v);
}

void row_to_json(std::ostringstream& os, const Table& t,
                 const std::vector<std::string>& row) {
  os << '{';
  for (std::size_t c = 0; c < row.size(); ++c) {
    os << '"' << json_escape(t.headers()[c]) << "\": ";
    if (is_json_number(row[c])) {
      os << row[c];
    } else {
      os << '"' << json_escape(row[c]) << '"';
    }
    if (c + 1 < row.size()) os << ", ";
  }
  os << '}';
}

std::string to_json_rows(const Table& t) {
  std::ostringstream os;
  os << "[\n";
  const auto& rows = t.data();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << "  ";
    row_to_json(os, t, rows[r]);
    os << (r + 1 < rows.size() ? ",\n" : "\n");
  }
  os << "]\n";
  return os.str();
}

}  // namespace

std::string render(const Table& table, OutputFormat format) {
  switch (format) {
    case OutputFormat::kTable: return table.to_string();
    case OutputFormat::kCsv: return table.to_csv();
    case OutputFormat::kJson: return to_json_rows(table);
  }
  throw Error("render: bad format");
}

std::string render_json_line(const Table& table) {
  std::ostringstream os;
  os << '[';
  const auto& rows = table.data();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    row_to_json(os, table, rows[r]);
    if (r + 1 < rows.size()) os << ", ";
  }
  os << ']';
  return os.str();
}

Table sweep_curve_table(const std::vector<LatencyAnalyzer::SweepPoint>& curve,
                        TimeNs base_runtime, bool human) {
  Table t(human ? std::vector<std::string>{"ΔL", "T(ΔL)", "slowdown",
                                           "lambda_L", "rho_L"}
                : std::vector<std::string>{"delta_l_ns", "runtime_ns",
                                           "lambda_l", "rho_l"});
  for (const auto& pt : curve) {
    if (human) {
      t.add_row({human_time_ns(pt.delta_L), human_time_ns(pt.runtime),
                 strformat("%+.2f%%", 100.0 * (pt.runtime / base_runtime - 1.0)),
                 strformat("%.0f", pt.lambda_L),
                 strformat("%.1f%%", 100.0 * pt.rho_L)});
    } else {
      t.add_row({strformat("%.1f", pt.delta_L), strformat("%.1f", pt.runtime),
                 strformat("%.6g", pt.lambda_L),
                 strformat("%.6g", pt.rho_L)});
    }
  }
  return t;
}

ToleranceReport make_report(const graph::Graph& g, const loggops::Params& p,
                            const ReportOptions& opts) {
  const LatencyAnalyzer an(g, p);
  return make_report(an, opts);
}

ToleranceReport make_report(const LatencyAnalyzer& an,
                            const ReportOptions& opts) {
  if (opts.sweep_points < 2) throw Error("report: need >= 2 sweep points");
  const loggops::Params& p = an.params();
  ToleranceReport rep;
  rep.params = p;
  rep.base_runtime = an.base_runtime();
  rep.lambda_L_base = an.lambda_L();
  rep.lambda_G = an.lambda_G();
  for (const double pct : opts.band_percents) {
    rep.bands.push_back({pct, an.tolerance_delta(pct)});
  }
  std::vector<TimeNs> grid;
  for (int i = 0; i < opts.sweep_points; ++i) {
    grid.push_back(opts.sweep_max * i / (opts.sweep_points - 1));
  }
  rep.curve = an.sweep(grid, opts.threads);
  // Application graphs can have thousands of basis changes; bound the scan
  // with Algorithm 2's step knob at the resolution a report can display.
  const double step =
      opts.sweep_max / (4.0 * static_cast<double>(opts.max_critical));
  rep.critical_latencies = an.solver().critical_values_algorithm2(
      0, p.L, p.L + opts.sweep_max, step);
  if (rep.critical_latencies.size() > opts.max_critical) {
    rep.critical_latencies.resize(opts.max_critical);
  }
  return rep;
}

std::string ToleranceReport::to_string() const {
  std::ostringstream os;
  os << "network: " << params.to_string() << '\n';
  os << strformat("base runtime T(L): %s   lambda_L: %.0f   lambda_G: %.0f "
                  "bytes\n",
                  human_time_ns(base_runtime).c_str(), lambda_L_base,
                  lambda_G);
  os << "latency tolerance (max ΔL before x% degradation):";
  for (const Band& b : bands) {
    os << strformat("  %.0f%%: %s", b.percent,
                    std::isfinite(b.tolerance_delta)
                        ? human_time_ns(b.tolerance_delta).c_str()
                        : "unbounded");
  }
  os << '\n';
  os << sweep_curve_table(curve, base_runtime, /*human=*/true).to_string();
  if (!critical_latencies.empty()) {
    os << "critical latencies (lambda changes):";
    for (const TimeNs c : critical_latencies) {
      os << ' ' << human_time_ns(c);
    }
    os << '\n';
  }
  return os.str();
}

namespace {

/// One serializer behind both to_json layouts: `pretty` selects the
/// one-member-per-line form the CLI has always emitted (those bytes are
/// golden-pinned); compact packs the identical members onto one line for
/// JSONL payloads.
std::string report_json(const ToleranceReport& rep, bool pretty) {
  // Non-finite values must never leak as bare "inf"/"nan" tokens — those
  // are not JSON.  Finite values keep the historical %.10g bytes.
  const auto num = [](double v) {
    return std::isfinite(v) ? strformat("%.10g", v) : std::string("null");
  };
  const char* open = pretty ? "{\n  " : "{";
  const char* sep = pretty ? ",\n  " : ", ";
  const char* close = pretty ? "\n}\n" : "}";
  std::ostringstream os;
  os << open;
  os << strformat(
      "\"params\": {\"L_ns\": %s, \"o_ns\": %s, \"g_ns\": %s, "
      "\"G_ns_per_byte\": %s, \"O_ns_per_byte\": %s, \"S_bytes\": %llu}",
      num(rep.params.L).c_str(), num(rep.params.o).c_str(),
      num(rep.params.g).c_str(), num(rep.params.G).c_str(),
      num(rep.params.O).c_str(),
      static_cast<unsigned long long>(rep.params.S));
  os << sep << "\"base_runtime_ns\": " << num(rep.base_runtime);
  os << sep << "\"lambda_l\": " << num(rep.lambda_L_base);
  os << sep << "\"lambda_g\": " << num(rep.lambda_G);
  os << sep << "\"bands\": [";
  for (std::size_t i = 0; i < rep.bands.size(); ++i) {
    os << strformat("{\"percent\": %s, \"tolerance_delta_ns\": %s}",
                    num(rep.bands[i].percent).c_str(),
                    std::isfinite(rep.bands[i].tolerance_delta)
                        ? num(rep.bands[i].tolerance_delta).c_str()
                        : "null");
    if (i + 1 < rep.bands.size()) os << ", ";
  }
  os << ']';
  os << sep << "\"curve\": [";
  for (std::size_t i = 0; i < rep.curve.size(); ++i) {
    os << strformat(
        "{\"delta_l_ns\": %s, \"runtime_ns\": %s, \"lambda_l\": %s, "
        "\"rho_l\": %s}",
        num(rep.curve[i].delta_L).c_str(), num(rep.curve[i].runtime).c_str(),
        num(rep.curve[i].lambda_L).c_str(), num(rep.curve[i].rho_L).c_str());
    if (i + 1 < rep.curve.size()) os << ", ";
  }
  os << ']';
  os << sep << "\"critical_latencies_ns\": [";
  for (std::size_t i = 0; i < rep.critical_latencies.size(); ++i) {
    os << num(rep.critical_latencies[i]);
    if (i + 1 < rep.critical_latencies.size()) os << ", ";
  }
  os << ']' << close;
  return os.str();
}

}  // namespace

std::string ToleranceReport::to_json() const {
  return report_json(*this, /*pretty=*/true);
}

std::string ToleranceReport::to_json_line() const {
  return report_json(*this, /*pretty=*/false);
}

}  // namespace llamp::core
