#include "core/report.hpp"

#include <cmath>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace llamp::core {

ToleranceReport make_report(const graph::Graph& g, const loggops::Params& p,
                            const ReportOptions& opts) {
  if (opts.sweep_points < 2) throw Error("report: need >= 2 sweep points");
  LatencyAnalyzer an(g, p);
  ToleranceReport rep;
  rep.params = p;
  rep.base_runtime = an.base_runtime();
  rep.lambda_L_base = an.lambda_L();
  rep.lambda_G = an.lambda_G();
  for (const double pct : opts.band_percents) {
    rep.bands.push_back({pct, an.tolerance_delta(pct)});
  }
  std::vector<TimeNs> grid;
  for (int i = 0; i < opts.sweep_points; ++i) {
    grid.push_back(opts.sweep_max * i / (opts.sweep_points - 1));
  }
  rep.curve = an.sweep(grid, opts.threads);
  // Application graphs can have thousands of basis changes; bound the scan
  // with Algorithm 2's step knob at the resolution a report can display.
  const double step =
      opts.sweep_max / (4.0 * static_cast<double>(opts.max_critical));
  rep.critical_latencies = an.solver().critical_values_algorithm2(
      0, p.L, p.L + opts.sweep_max, step);
  if (rep.critical_latencies.size() > opts.max_critical) {
    rep.critical_latencies.resize(opts.max_critical);
  }
  return rep;
}

std::string ToleranceReport::to_string() const {
  std::ostringstream os;
  os << "network: " << params.to_string() << '\n';
  os << strformat("base runtime T(L): %s   lambda_L: %.0f   lambda_G: %.0f "
                  "bytes\n",
                  human_time_ns(base_runtime).c_str(), lambda_L_base,
                  lambda_G);
  os << "latency tolerance (max ΔL before x% degradation):";
  for (const Band& b : bands) {
    os << strformat("  %.0f%%: %s", b.percent,
                    std::isfinite(b.tolerance_delta)
                        ? human_time_ns(b.tolerance_delta).c_str()
                        : "unbounded");
  }
  os << '\n';
  Table t({"ΔL", "T(ΔL)", "slowdown", "lambda_L", "rho_L"});
  for (const auto& pt : curve) {
    t.add_row({human_time_ns(pt.delta_L), human_time_ns(pt.runtime),
               strformat("%+.2f%%", 100.0 * (pt.runtime / base_runtime - 1.0)),
               strformat("%.0f", pt.lambda_L),
               strformat("%.1f%%", 100.0 * pt.rho_L)});
  }
  os << t.to_string();
  if (!critical_latencies.empty()) {
    os << "critical latencies (lambda changes):";
    for (const TimeNs c : critical_latencies) {
      os << ' ' << human_time_ns(c);
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace llamp::core
