#include "core/report.hpp"

#include <cmath>
#include <cstdlib>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

namespace llamp::core {

OutputFormat parse_output_format(const std::string& name) {
  if (name == "table") return OutputFormat::kTable;
  if (name == "csv") return OutputFormat::kCsv;
  if (name == "json") return OutputFormat::kJson;
  throw UsageError("unknown --format '" + name +
                   "' (want table, csv, or json)");
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          out += strformat("\\u%04x", ch);
        } else {
          out += ch;
        }
    }
  }
  return out;
}

namespace {

/// A cell is emitted as a bare JSON number iff strtod consumes it entirely
/// and the value is finite ("inf" and "unbounded" stay strings).
bool is_json_number(const std::string& cell) {
  if (cell.empty()) return false;
  char* end = nullptr;
  const double v = std::strtod(cell.c_str(), &end);
  return end == cell.c_str() + cell.size() && std::isfinite(v);
}

std::string to_json_rows(const Table& t) {
  std::ostringstream os;
  os << "[\n";
  const auto& rows = t.data();
  for (std::size_t r = 0; r < rows.size(); ++r) {
    os << "  {";
    for (std::size_t c = 0; c < rows[r].size(); ++c) {
      os << '"' << json_escape(t.headers()[c]) << "\": ";
      if (is_json_number(rows[r][c])) {
        os << rows[r][c];
      } else {
        os << '"' << json_escape(rows[r][c]) << '"';
      }
      if (c + 1 < rows[r].size()) os << ", ";
    }
    os << (r + 1 < rows.size() ? "},\n" : "}\n");
  }
  os << "]\n";
  return os.str();
}

}  // namespace

std::string render(const Table& table, OutputFormat format) {
  switch (format) {
    case OutputFormat::kTable: return table.to_string();
    case OutputFormat::kCsv: return table.to_csv();
    case OutputFormat::kJson: return to_json_rows(table);
  }
  throw Error("render: bad format");
}

Table sweep_curve_table(const std::vector<LatencyAnalyzer::SweepPoint>& curve,
                        TimeNs base_runtime, bool human) {
  Table t(human ? std::vector<std::string>{"ΔL", "T(ΔL)", "slowdown",
                                           "lambda_L", "rho_L"}
                : std::vector<std::string>{"delta_l_ns", "runtime_ns",
                                           "lambda_l", "rho_l"});
  for (const auto& pt : curve) {
    if (human) {
      t.add_row({human_time_ns(pt.delta_L), human_time_ns(pt.runtime),
                 strformat("%+.2f%%", 100.0 * (pt.runtime / base_runtime - 1.0)),
                 strformat("%.0f", pt.lambda_L),
                 strformat("%.1f%%", 100.0 * pt.rho_L)});
    } else {
      t.add_row({strformat("%.1f", pt.delta_L), strformat("%.1f", pt.runtime),
                 strformat("%.6g", pt.lambda_L),
                 strformat("%.6g", pt.rho_L)});
    }
  }
  return t;
}

ToleranceReport make_report(const graph::Graph& g, const loggops::Params& p,
                            const ReportOptions& opts) {
  if (opts.sweep_points < 2) throw Error("report: need >= 2 sweep points");
  LatencyAnalyzer an(g, p);
  ToleranceReport rep;
  rep.params = p;
  rep.base_runtime = an.base_runtime();
  rep.lambda_L_base = an.lambda_L();
  rep.lambda_G = an.lambda_G();
  for (const double pct : opts.band_percents) {
    rep.bands.push_back({pct, an.tolerance_delta(pct)});
  }
  std::vector<TimeNs> grid;
  for (int i = 0; i < opts.sweep_points; ++i) {
    grid.push_back(opts.sweep_max * i / (opts.sweep_points - 1));
  }
  rep.curve = an.sweep(grid, opts.threads);
  // Application graphs can have thousands of basis changes; bound the scan
  // with Algorithm 2's step knob at the resolution a report can display.
  const double step =
      opts.sweep_max / (4.0 * static_cast<double>(opts.max_critical));
  rep.critical_latencies = an.solver().critical_values_algorithm2(
      0, p.L, p.L + opts.sweep_max, step);
  if (rep.critical_latencies.size() > opts.max_critical) {
    rep.critical_latencies.resize(opts.max_critical);
  }
  return rep;
}

std::string ToleranceReport::to_string() const {
  std::ostringstream os;
  os << "network: " << params.to_string() << '\n';
  os << strformat("base runtime T(L): %s   lambda_L: %.0f   lambda_G: %.0f "
                  "bytes\n",
                  human_time_ns(base_runtime).c_str(), lambda_L_base,
                  lambda_G);
  os << "latency tolerance (max ΔL before x% degradation):";
  for (const Band& b : bands) {
    os << strformat("  %.0f%%: %s", b.percent,
                    std::isfinite(b.tolerance_delta)
                        ? human_time_ns(b.tolerance_delta).c_str()
                        : "unbounded");
  }
  os << '\n';
  os << sweep_curve_table(curve, base_runtime, /*human=*/true).to_string();
  if (!critical_latencies.empty()) {
    os << "critical latencies (lambda changes):";
    for (const TimeNs c : critical_latencies) {
      os << ' ' << human_time_ns(c);
    }
    os << '\n';
  }
  return os.str();
}

std::string ToleranceReport::to_json() const {
  const auto num = [](double v) { return strformat("%.10g", v); };
  std::ostringstream os;
  os << "{\n";
  os << strformat(
      "  \"params\": {\"L_ns\": %s, \"o_ns\": %s, \"g_ns\": %s, "
      "\"G_ns_per_byte\": %s, \"O_ns_per_byte\": %s, \"S_bytes\": %llu},\n",
      num(params.L).c_str(), num(params.o).c_str(), num(params.g).c_str(),
      num(params.G).c_str(), num(params.O).c_str(),
      static_cast<unsigned long long>(params.S));
  os << "  \"base_runtime_ns\": " << num(base_runtime) << ",\n";
  os << "  \"lambda_l\": " << num(lambda_L_base) << ",\n";
  os << "  \"lambda_g\": " << num(lambda_G) << ",\n";
  os << "  \"bands\": [";
  for (std::size_t i = 0; i < bands.size(); ++i) {
    os << strformat("{\"percent\": %s, \"tolerance_delta_ns\": %s}",
                    num(bands[i].percent).c_str(),
                    std::isfinite(bands[i].tolerance_delta)
                        ? num(bands[i].tolerance_delta).c_str()
                        : "null");
    if (i + 1 < bands.size()) os << ", ";
  }
  os << "],\n";
  os << "  \"curve\": [";
  for (std::size_t i = 0; i < curve.size(); ++i) {
    os << strformat(
        "{\"delta_l_ns\": %s, \"runtime_ns\": %s, \"lambda_l\": %s, "
        "\"rho_l\": %s}",
        num(curve[i].delta_L).c_str(), num(curve[i].runtime).c_str(),
        num(curve[i].lambda_L).c_str(), num(curve[i].rho_L).c_str());
    if (i + 1 < curve.size()) os << ", ";
  }
  os << "],\n";
  os << "  \"critical_latencies_ns\": [";
  for (std::size_t i = 0; i < critical_latencies.size(); ++i) {
    os << num(critical_latencies[i]);
    if (i + 1 < critical_latencies.size()) os << ", ";
  }
  os << "]\n}\n";
  return os.str();
}

}  // namespace llamp::core
