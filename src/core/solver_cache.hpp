#pragma once

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/graph_cache.hpp"
#include "loggops/params.hpp"
#include "lp/parametric.hpp"

namespace llamp::core {

/// The key under which a lowered parametric LP is shared: the execution
/// graph's key plus a ParamSpace fingerprint — the space kind and the exact
/// value of every parameter that enters the lowering (L/o/g/G/O/S for the
/// latency spaces), formatted round-trip exact.  Two requests whose
/// resolved scenarios print the same fingerprint lower bit-identical cost
/// arrays, so they may share one LoweredProblem.
struct SolverKey {
  GraphKey graph;
  std::string space;

  friend bool operator<(const SolverKey& a, const SolverKey& b) {
    if (a.graph < b.graph) return true;
    if (b.graph < a.graph) return false;
    return a.space < b.space;
  }
  friend bool operator==(const SolverKey& a, const SolverKey& b) {
    return a.graph == b.graph && a.space == b.space;
  }
};

/// Thread-safe build-once cache of lowered parametric LPs plus their
/// reusable anchor state, living beside GraphCache in an api::Engine
/// session (DESIGN.md §4e).  Two levels of reuse:
///
///  * the **lowering** — the immutable lp::LoweredProblem (CSR/SoA cost
///    arrays, topo permutation) is built once per key and shared by every
///    later request and every thread;
///  * the **anchor state** — each entry keeps a bounded set of
///    AnchorState snapshots published by past dense solves, so a point
///    query landing inside a known stability zone is served by
///    critical-path replay (microseconds) instead of a full forward pass.
///
/// Determinism contract: replay from *any* covering anchor is bitwise
/// identical to a dense solve at that point (the PR 3 segment-walk
/// equivalence, pinned by the hot-path test wall), so an eval()'s bytes
/// can never depend on the cache being cold, warm, shared across threads,
/// or on which of several overlapping anchors serves the query.  Response
/// bytes must never include the cache's counters.
///
/// Invalidation: there is none, by construction.  Graphs are immutable and
/// never evicted from GraphCache, and the fingerprint pins every input of
/// the lowering, so a key fully determines its problem forever.  Entries
/// hold no back-reference to the graph beyond the one the caller passed;
/// the caller must pass the graph cached under `key.graph` (the GraphCache
/// contract keeps it alive for the session).  Entries must not outlive the
/// cache that created them.
class SolverCache {
 public:
  SolverCache() = default;
  SolverCache(const SolverCache&) = delete;
  SolverCache& operator=(const SolverCache&) = delete;

  /// One cached lowering plus its published anchors.  Handles are shared
  /// pointers so a request can hold its entry across the whole analysis
  /// without touching the cache map again.
  class Entry {
   public:
    Entry(const Entry&) = delete;
    Entry& operator=(const Entry&) = delete;

    /// The shared immutable lowering (never null once handed out).
    const std::shared_ptr<const lp::LoweredProblem>& problem() const {
      return prob_;
    }

    /// T and λ at `x` for parameter `k`: served by anchor replay when a
    /// published stability zone covers `x` (no forward pass, read-only on
    /// the problem), otherwise by a dense solve through `cur` whose anchor
    /// is then published for later queries.  Bitwise identical to
    /// problem()->solve(k, x) either way.  Safe to call concurrently from
    /// any number of threads, each with its own cursor.
    lp::LoweredProblem::SweepEval eval(int k, double x,
                                       lp::LoweredProblem::Cursor& cur);

    /// Published anchors (observability/tests).
    std::size_t anchor_count() const;

   private:
    friend class SolverCache;
    Entry() = default;

    /// Bound on published anchors per entry: enough to blanket every CLI
    /// grid's basis pieces, small enough that the linear covering scan
    /// stays trivially cheap.  Once full, new anchors are dropped (never
    /// evicted — eviction order could vary across runs, and although
    /// replay-vs-dense bytes are identical by contract, a fixed set keeps
    /// the served path itself reproducible).
    static constexpr std::size_t kMaxAnchors = 64;

    std::mutex build_mutex_;
    std::shared_ptr<const lp::LoweredProblem> prob_;
    mutable std::mutex anchor_mutex_;
    /// Sorted by (active, at), deduplicated on exact (active, at).
    std::vector<std::shared_ptr<const lp::LoweredProblem::AnchorState>>
        anchors_;
    SolverCache* owner_ = nullptr;
  };

  /// The cached LatencyParamSpace lowering of (key, p) over `g` — `g` MUST
  /// be the graph cached under `key` (same object for the session).  Builds
  /// under a per-key lock on first use: concurrent first touches build one
  /// key once, distinct keys build in parallel.
  std::shared_ptr<Entry> latency(const GraphKey& key, const graph::Graph& g,
                                 const loggops::Params& p);

  /// Same for the two-parameter LatencyBandwidthParamSpace (λ_G reads).
  /// Its edges carry two terms, so it lowers to the CSR fallback — eval()
  /// always dense-solves — but the lowering itself is still shared.
  std::shared_ptr<Entry> latency_bandwidth(const GraphKey& key,
                                           const graph::Graph& g,
                                           const loggops::Params& p);

  struct Stats {
    std::size_t built = 0;          ///< lowerings constructed (misses)
    std::size_t hits = 0;           ///< lookups served an existing lowering
    std::size_t anchor_solves = 0;  ///< eval() dense forward passes
    std::size_t replays = 0;        ///< eval() served by anchor replay
    std::size_t anchor_bytes = 0;   ///< payload bytes of published anchors
  };
  /// Cumulative statistics, GraphCache-style relaxed atomics: monotonic
  /// tallies, not an instantaneous cut across counters.  `anchor_bytes`
  /// counts payload sizes (not vector capacities) so the tally is
  /// deterministic for a fixed request sequence.
  Stats stats() const;
  /// One-line human form via the shared obs::stats_line formatter, e.g.
  /// "solvers: built=2 hits=9 anchor_solves=14 replays=180 anchor_bytes=...".
  std::string stats_string() const;

 private:
  std::shared_ptr<Entry> entry_for(const SolverKey& key);
  using SpaceFactory =
      std::shared_ptr<const lp::ParamSpace> (*)(const loggops::Params&);
  std::shared_ptr<Entry> get(const SolverKey& key, const graph::Graph& g,
                             const loggops::Params& p, SpaceFactory make);

  std::mutex mutex_;  ///< guards entries_ only
  std::map<SolverKey, std::shared_ptr<Entry>> entries_;
  std::atomic<std::size_t> built_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> anchor_solves_{0};
  std::atomic<std::size_t> replays_{0};
  std::atomic<std::size_t> anchor_bytes_{0};
};

}  // namespace llamp::core
