#pragma once

#include <vector>

#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "topo/topology.hpp"

namespace llamp::core {

/// Result of a placement computation: a rank -> node mapping plus the
/// LP-estimated runtime it achieves.
struct PlacementResult {
  std::vector<int> placement;
  double predicted_runtime = 0.0;
  int iterations = 0;
  int swaps = 0;
};

/// Wire parameters used to derive the HLogGP matrices from a topology:
/// every pair communicates at (wires)·l_wire + (switches)·d_switch.
struct WireCost {
  double l_wire = 274.0;    // ns, Zambre et al. defaults used by the paper
  double d_switch = 108.0;  // ns
};

/// Communication volume between rank pairs (bytes over comm edges), the
/// input of volume-driven placement tools like Scotch.
std::vector<std::uint64_t> communication_volume(const graph::Graph& g);

/// Baseline: ranks mapped to nodes in order ("block", the MPI default).
PlacementResult block_placement(const graph::Graph& g,
                                const loggops::Params& p,
                                const topo::Topology& topo, WireCost wire);

/// Scotch-like baseline: greedy mapping driven purely by traffic volume —
/// each rank (in decreasing total-volume order) is pinned to the free node
/// minimizing volume-weighted latency to its already-placed partners.
PlacementResult volume_greedy_placement(const graph::Graph& g,
                                        const loggops::Params& p,
                                        const topo::Topology& topo,
                                        WireCost wire);

/// Algorithm 3 (Appendix J): LLAMP's sensitivity-guided iterative placement.
/// Starting from `initial` (block placement if empty), each round solves the
/// HLogGP LP to obtain the pairwise sensitivity matrices D_L and D_G, swaps
/// the rank pair with the best predicted gain, and keeps the swap only if
/// the LP-estimated runtime improves.  Terminates when no positive-gain
/// swap exists, when the objective worsens, or after `max_rounds`.
PlacementResult optimize_placement(const graph::Graph& g,
                                   const loggops::Params& p,
                                   const topo::Topology& topo, WireCost wire,
                                   std::vector<int> initial = {},
                                   int max_rounds = 64);

/// LP-predicted runtime of an explicit placement (shared evaluation used by
/// all three strategies above).
double placement_runtime(const graph::Graph& g, const loggops::Params& p,
                         const topo::Topology& topo, WireCost wire,
                         const std::vector<int>& placement);

}  // namespace llamp::core
