#include "core/solver_cache.hpp"

#include <algorithm>
#include <utility>

#include "lp/param_space.hpp"
#include "obs/metrics.hpp"
#include "util/strings.hpp"

namespace llamp::core {
namespace {

/// Round-trip-exact fingerprints: %.17g reproduces any double bit for bit,
/// so two fingerprints compare equal iff the lowered cost arrays would.
std::string latency_fingerprint(const loggops::Params& p) {
  return strformat("latency;L=%.17g;o=%.17g;g=%.17g;G=%.17g;O=%.17g;S=%llu",
                   p.L, p.o, p.g, p.G, p.O,
                   static_cast<unsigned long long>(p.S));
}

std::string latency_bandwidth_fingerprint(const loggops::Params& p) {
  return strformat(
      "latency_bandwidth;L=%.17g;o=%.17g;g=%.17g;G=%.17g;O=%.17g;S=%llu",
      p.L, p.o, p.g, p.G, p.O, static_cast<unsigned long long>(p.S));
}

std::shared_ptr<const lp::ParamSpace> make_latency_space(
    const loggops::Params& p) {
  return std::make_shared<lp::LatencyParamSpace>(p);
}

std::shared_ptr<const lp::ParamSpace> make_latency_bandwidth_space(
    const loggops::Params& p) {
  return std::make_shared<lp::LatencyBandwidthParamSpace>(p);
}

}  // namespace

lp::LoweredProblem::SweepEval SolverCache::Entry::eval(
    int k, double x, lp::LoweredProblem::Cursor& cur) {
  // Warm path: any published anchor whose stability zone covers x replays
  // bitwise identically to a dense solve (see the class contract), so the
  // first covering anchor found is as good as any other — overlapping
  // zones cannot make the served bytes depend on scan order.
  if (prob_->flat()) {
    std::shared_ptr<const lp::LoweredProblem::AnchorState> hit;
    {
      const std::lock_guard<std::mutex> lock(anchor_mutex_);
      for (const auto& a : anchors_) {
        if (a->covers(k, x)) {
          hit = a;
          break;
        }
      }
    }
    if (hit) {
      owner_->replays_.fetch_add(1, std::memory_order_relaxed);
      return prob_->replay_anchor(*hit, k, x);
    }
  }

  // Cold path: dense solve, then publish the anchor so later queries in
  // this basis piece (from any thread) replay instead.
  const auto& sol = prob_->solve(k, x, cur);
  const lp::LoweredProblem::SweepEval out{
      x, sol.value, sol.gradient[static_cast<std::size_t>(k)]};
  owner_->anchor_solves_.fetch_add(1, std::memory_order_relaxed);
  if (prob_->flat()) {
    auto fresh = std::make_shared<lp::LoweredProblem::AnchorState>();
    prob_->save_anchor(cur, *fresh);
    const std::lock_guard<std::mutex> lock(anchor_mutex_);
    if (anchors_.size() < kMaxAnchors) {
      const auto pos = std::lower_bound(
          anchors_.begin(), anchors_.end(), fresh,
          [](const auto& a, const auto& b) {
            if (a->solution.active != b->solution.active) {
              return a->solution.active < b->solution.active;
            }
            return a->solution.at < b->solution.at;
          });
      if (pos == anchors_.end() ||
          (*pos)->solution.active != fresh->solution.active ||
          (*pos)->solution.at != fresh->solution.at) {
        // Payload accounting by element size, not vector capacity —
        // capacities depend on the allocator's growth history, sizes only
        // on the published anchor set (deterministic per request sequence).
        owner_->anchor_bytes_.fetch_add(
            sizeof(lp::LoweredProblem::AnchorState) +
                fresh->chain.size() * sizeof(std::uint32_t) +
                fresh->solution.gradient.size() * sizeof(double),
            std::memory_order_relaxed);
        anchors_.insert(pos, std::move(fresh));
      }
    }
  }
  return out;
}

std::size_t SolverCache::Entry::anchor_count() const {
  const std::lock_guard<std::mutex> lock(anchor_mutex_);
  return anchors_.size();
}

std::shared_ptr<SolverCache::Entry> SolverCache::entry_for(
    const SolverKey& key) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = entries_[key];
  if (!entry) {
    entry = std::shared_ptr<Entry>(new Entry());
    entry->owner_ = this;
  }
  return entry;
}

std::shared_ptr<SolverCache::Entry> SolverCache::get(const SolverKey& key,
                                                     const graph::Graph& g,
                                                     const loggops::Params& p,
                                                     SpaceFactory make) {
  const std::shared_ptr<Entry> entry = entry_for(key);
  // Per-key lock, GraphCache-style: concurrent first touches of one key
  // lower it once; lowerings of distinct keys proceed in parallel (the map
  // mutex is never held across a lowering).
  const std::lock_guard<std::mutex> lock(entry->build_mutex_);
  if (entry->prob_) {
    hits_.fetch_add(1, std::memory_order_relaxed);
  } else {
    entry->prob_ = std::make_shared<const lp::LoweredProblem>(g, make(p));
    built_.fetch_add(1, std::memory_order_relaxed);
  }
  return entry;
}

std::shared_ptr<SolverCache::Entry> SolverCache::latency(
    const GraphKey& key, const graph::Graph& g, const loggops::Params& p) {
  return get({key, latency_fingerprint(p)}, g, p, &make_latency_space);
}

std::shared_ptr<SolverCache::Entry> SolverCache::latency_bandwidth(
    const GraphKey& key, const graph::Graph& g, const loggops::Params& p) {
  return get({key, latency_bandwidth_fingerprint(p)}, g, p,
             &make_latency_bandwidth_space);
}

SolverCache::Stats SolverCache::stats() const {
  return {built_.load(std::memory_order_relaxed),
          hits_.load(std::memory_order_relaxed),
          anchor_solves_.load(std::memory_order_relaxed),
          replays_.load(std::memory_order_relaxed),
          anchor_bytes_.load(std::memory_order_relaxed)};
}

std::string SolverCache::stats_string() const {
  const Stats s = stats();
  return obs::stats_line("solvers", {{"built", s.built},
                                     {"hits", s.hits},
                                     {"anchor_solves", s.anchor_solves},
                                     {"replays", s.replays},
                                     {"anchor_bytes", s.anchor_bytes}});
}

}  // namespace llamp::core
