#include "core/campaign.hpp"

#include <cmath>
#include <memory>
#include <optional>
#include <set>
#include <utility>

#include "apps/registry.hpp"
#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "stoch/mc.hpp"
#include "topo/spaces.hpp"
#include "topo/topology.hpp"
#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace llamp::core {
namespace {

bool known_topology(const std::string& name) {
  return name == "none" || name == "fat-tree" || name == "dragonfly";
}

void validate_scenario(const Scenario& s) {
  if (s.app.empty()) throw UsageError("campaign: scenario with empty app");
  if (s.ranks < 1) {
    throw UsageError(strformat("campaign: need ranks >= 1 (got %d)", s.ranks));
  }
  if (!(s.scale > 0.0) || !std::isfinite(s.scale)) {
    throw UsageError(
        strformat("campaign: need finite scale > 0 (got %g)", s.scale));
  }
  if (!known_topology(s.topology)) {
    throw UsageError("campaign: unknown topology '" + s.topology +
                     "' (want none, fat-tree, or dragonfly)");
  }
  if (s.delta_Ls.empty()) throw UsageError("campaign: empty ΔL grid");
  for (const TimeNs d : s.delta_Ls) {
    if (!(d >= 0.0) || !std::isfinite(d)) {
      throw UsageError(
          strformat("campaign: ΔL grid values must be finite and >= 0 "
                    "(got %g)", d));
    }
  }
  for (const double pct : s.band_percents) {
    if (!(pct >= 0.0)) {
      throw UsageError(
          strformat("campaign: tolerance band percent must be >= 0 (got %g)",
                    pct));
    }
  }
  // The LogGPS values are part of the user-supplied grid spec, so a bad
  // variant (negative L from --L-list, ...) is a usage error like every
  // other degenerate axis, not an analysis failure.
  try {
    s.params.validate();
  } catch (const Error& e) {
    throw UsageError(strformat("campaign: config '%s' invalid: %s",
                               s.config.c_str(), e.what()));
  }
}

/// First-occurrence-preserving dedup for a grid axis: the engine's contract
/// is that a grid never analyzes one scenario twice, whatever the user
/// typed (--apps=lulesh,lulesh, repeated scales, rank-clamp collisions).
template <typename T>
std::vector<T> dedup(const std::vector<T>& values) {
  std::vector<T> out;
  for (const T& v : values) {
    bool seen = false;
    for (const T& prev : out) seen = seen || prev == v;
    if (!seen) out.push_back(v);
  }
  return out;
}

bool same_params(const loggops::Params& a, const loggops::Params& b) {
  return a.L == b.L && a.o == b.o && a.g == b.g && a.G == b.G && a.O == b.O &&
         a.S == b.S;
}

GraphKey graph_key(const Scenario& s) {
  return {s.app, s.ranks, s.scale, s.params.S};
}

std::unique_ptr<topo::Topology> make_topology(const std::string& name,
                                              const TopologyOptions& topo) {
  try {
    if (name == "fat-tree") {
      return std::make_unique<topo::FatTree>(topo.ft_radix);
    }
    return std::make_unique<topo::Dragonfly>(topo.df_groups, topo.df_routers,
                                             topo.df_hosts);
  } catch (const Error& e) {
    throw UsageError(strformat("campaign: bad %s shape: %s", name.c_str(),
                               e.what()));
  }
}

/// Topology shape and fit are part of the user-supplied spec, so a
/// too-small network or an invalid radix is a usage error, raised at
/// construction time — before any graph is built.
void validate_topology(const Scenario& s, const TopologyOptions& topo) {
  if (s.topology == "none") return;
  const auto t = make_topology(s.topology, topo);
  if (t->nnodes() < s.ranks) {
    throw UsageError(strformat("campaign: %s has only %d nodes for %d ranks",
                               t->name().c_str(), t->nnodes(), s.ranks));
  }
}

/// The active-parameter space of a scenario plus its base value: flat L for
/// "none", the shared per-wire latency for the physical topologies.
struct ScenarioSpace {
  std::shared_ptr<const lp::ParamSpace> space;
  double base = 0.0;
};

ScenarioSpace make_space(const Scenario& s, const TopologyOptions& topo) {
  if (s.topology == "none") {
    return {std::make_shared<lp::LatencyParamSpace>(s.params), s.params.L};
  }
  // Shape and fit were already validated by the Campaign constructors.
  const auto t = make_topology(s.topology, topo);
  return {std::make_shared<lp::LinkClassParamSpace>(topo::make_wire_latency_space(
              s.params, *t, topo::identity_placement(s.ranks), topo.l_wire,
              topo.d_switch)),
          topo.l_wire};
}

/// mc-axis hygiene shared by both Campaign constructors: the axis only
/// makes sense with samples >= 0, valid noise knobs, and flat-latency
/// scenarios (the per-sample LogGPS resampling targets L; a wire-latency
/// space has no single L to perturb).
void validate_mc(const McAxis& mc, const std::vector<Scenario>& scenarios) {
  if (mc.samples < 0) {
    throw UsageError(
        strformat("campaign: need mc samples >= 0 (got %d)", mc.samples));
  }
  // Knob well-formedness is checked whatever the sample count: a negative
  // sigma must be a usage error even when the axis is off, never a silent
  // fall-back (the CLI's typo'd-flag stance).
  stoch::Distribution::rel_normal(mc.sigma_L).validate("mc L");
  stoch::Distribution::rel_normal(mc.sigma_o).validate("mc o");
  stoch::Distribution::rel_normal(mc.sigma_G).validate("mc G");
  mc.noise.validate();
  if (mc.samples == 0) {
    // Jitter configured but the axis off is a silent no-op waiting to
    // mislead — reject rather than run a deterministic campaign the user
    // believes is stochastic.
    if (mc.sigma_L != 0.0 || mc.sigma_o != 0.0 || mc.sigma_G != 0.0 ||
        !mc.noise.degenerate()) {
      throw UsageError(
          "campaign: mc jitter configured but mc samples == 0 (set "
          "--mc-samples)");
    }
    return;
  }
  for (const Scenario& s : scenarios) {
    if (s.topology != "none") {
      throw UsageError(
          "campaign: the mc axis requires topology 'none' (got '" +
          s.topology + "')");
    }
  }
}

Campaign::ScenarioResult eval_scenario(const Scenario& s,
                                       const graph::Graph& g,
                                       const TopologyOptions& topo,
                                       const McAxis& mc,
                                       const Campaign::Probe& probe,
                                       SolverCache& solvers,
                                       lp::ParametricSolver::Workspace& ws) {
  Campaign::ScenarioResult res;
  res.scenario = s;
  res.graph_vertices = g.num_vertices();
  res.graph_edges = g.num_edges();

  // Flat-latency scenarios resolve their lowering through the solver
  // cache (shared across campaigns / request types of one session) and
  // serve each grid point through Entry::eval — a replay when a cached
  // anchor covers the point, a recorded dense solve otherwise, bitwise
  // identical either way.  Topology scenarios keep per-scenario
  // wire-latency lowerings (not cacheable by LogGPS fingerprint).
  std::shared_ptr<SolverCache::Entry> entry;
  double base = 0.0;
  std::optional<lp::ParametricSolver> local;
  if (s.topology == "none") {
    entry = solvers.latency(graph_key(s), g, s.params);
    local.emplace(entry->problem());
    base = s.params.L;
  } else {
    const ScenarioSpace ss = make_space(s, topo);
    local.emplace(g, ss.space);
    base = ss.base;
  }
  const lp::ParametricSolver& solver = *local;
  res.base_runtime =
      entry ? entry->eval(0, base, ws).value : solver.solve(0, base, ws).value;

  const std::size_t npts = s.delta_Ls.size();
  std::vector<double> xs(npts);
  bool ascending = true;
  for (std::size_t i = 0; i < npts; ++i) {
    xs[i] = base + s.delta_Ls[i];
    if (i > 0 && s.delta_Ls[i - 1] > s.delta_Ls[i]) ascending = false;
  }
  res.points.resize(npts);
  const auto fill = [&](std::size_t i, double value, double lambda) {
    Campaign::Point& pt = res.points[i];
    pt.delta_L = s.delta_Ls[i];
    pt.runtime = value;
    pt.lambda = lambda;
    pt.rho = value > 0.0 ? xs[i] * lambda / value : 0.0;
  };
  if (entry) {
    // Per-point through the cache: repeated campaigns (and repeated grid
    // points across scenarios sharing a graph + config) replay instead of
    // re-solving.  Grid order is irrelevant here.
    for (std::size_t i = 0; i < npts; ++i) {
      const auto ev = entry->eval(0, xs[i], ws);
      fill(i, ev.value, ev.slope);
    }
  } else if (ascending) {
    // Every CLI grid is ascending: one segment walk answers the whole grid
    // in O(#linear pieces) forward passes, bitwise identical to per-point
    // solves.
    std::vector<lp::ParametricSolver::SweepEval> evals(npts);
    solver.sweep(0, xs, ws, evals.data());
    for (std::size_t i = 0; i < npts; ++i) {
      fill(i, evals[i].value, evals[i].slope);
    }
  } else {
    // Explicit scenario lists may order their grids arbitrarily; fall back
    // to dense per-point solves through the same workspace.
    for (std::size_t i = 0; i < npts; ++i) {
      const auto& sol = solver.solve(0, xs[i], ws);
      fill(i, sol.value, sol.gradient[0]);
    }
  }

  res.bands.reserve(s.band_percents.size());
  for (const double pct : s.band_percents) {
    const double budget = res.base_runtime * (1.0 + pct / 100.0);
    const double tol = solver.max_param_for_budget(0, budget, ws);
    res.bands.push_back({pct, std::isfinite(tol) ? tol - base : tol});
  }

  if (mc.samples > 0) {
    // The stochastic companion analysis of this scenario: same graph, same
    // ΔL grid, operating point resampled `samples` times.  Runs
    // single-threaded — the campaign already parallelizes across
    // scenarios — and seeds identically for every scenario (common random
    // numbers; see McAxis).
    stoch::McSpec spec;
    spec.L = stoch::Distribution::rel_normal(mc.sigma_L);
    spec.o = stoch::Distribution::rel_normal(mc.sigma_o);
    spec.G = stoch::Distribution::rel_normal(mc.sigma_G);
    spec.noise = mc.noise;
    spec.samples = mc.samples;
    spec.seed = mc.seed;
    spec.threads = 1;
    spec.delta_Ls = s.delta_Ls;
    spec.band_percents.clear();
    // With all-degenerate jitter off-axes the mc run's shared solver is
    // exactly this scenario's cached lowering; run_mc verifies the match
    // and lowers afresh otherwise.
    const stoch::McResult mres = stoch::run_mc(
        g, s.params, spec, entry ? entry->problem() : nullptr);
    res.mc.reserve(mres.runtime.size());
    for (const stoch::Summary& sum : mres.runtime) {
      res.mc.push_back({sum.mean(), sum.stddev(), sum.q05(), sum.q95()});
    }
  }

  if (probe) {
    const auto values = probe(s, g);
    if (values.size() != res.points.size()) {
      throw Error(strformat(
          "campaign: probe returned %zu values for %zu ΔL points",
          values.size(), res.points.size()));
    }
    for (std::size_t i = 0; i < values.size(); ++i) {
      res.points[i].probe = values[i];
    }
  }
  return res;
}

}  // namespace

std::vector<TimeNs> linear_grid(TimeNs dl_max, int points) {
  if (points < 2) {
    throw UsageError(strformat("need --points >= 2 (got %d)", points));
  }
  if (!(dl_max > 0.0) || !std::isfinite(dl_max)) {
    throw UsageError(strformat(
        "need --dl-max-us > 0 (got %g us): a ΔL sweep needs a positive "
        "ceiling", to_us(dl_max)));
  }
  std::vector<TimeNs> grid;
  grid.reserve(static_cast<std::size_t>(points));
  for (int i = 0; i < points; ++i) {
    grid.push_back(dl_max * i / (points - 1));
  }
  return grid;
}

void apply_table2_overhead(loggops::Params& p, const std::string& app,
                           int ranks) {
  // Table II keys overhead by node count; approximate it by rank count the
  // way the validation benches do (LULESH's middle scale is 27 = 3^3).
  const int node_key = ranks <= 8 ? 8 : (ranks <= 32 ? 32 : 64);
  const int lulesh_key = ranks <= 8 ? 8 : (ranks <= 27 ? 27 : 64);
  try {
    p.o = loggops::NetworkConfig::table2_overhead(
        app, app == "lulesh" ? lulesh_key : node_key);
  } catch (const Error&) {
    // Not a Table II application; the preset default stands.
  }
}

Campaign::Campaign(const CampaignSpec& spec)
    : topo_(spec.topo), mc_(spec.mc), threads_(spec.threads) {
  if (spec.apps.empty()) throw UsageError("campaign: empty app list");
  if (spec.ranks.empty()) throw UsageError("campaign: empty ranks list");
  if (spec.scales.empty()) throw UsageError("campaign: empty scales list");
  if (spec.topologies.empty()) {
    throw UsageError("campaign: empty topology list");
  }
  std::vector<ConfigVariant> configs;
  for (const ConfigVariant& cfg : spec.configs) {
    // Dedupe variants with equal parameter vectors whatever their spelling
    // ("--L-list=5,5.0"): like every other axis, a grid never analyzes one
    // scenario twice.  The first spelling names the surviving variant.
    bool seen = false;
    for (const ConfigVariant& prev : configs) {
      seen = seen || (same_params(prev.params, cfg.params) &&
                      prev.o_is_default == cfg.o_is_default);
    }
    if (!seen) configs.push_back(cfg);
  }
  if (configs.empty()) {
    configs.push_back({"cscs", loggops::NetworkConfig::cscs_testbed(), true});
  }
  {
    // Distinct surviving variants sharing one name would make result rows
    // indistinguishable — reject rather than guess.
    std::vector<std::string> names;
    for (const ConfigVariant& cfg : configs) names.push_back(cfg.name);
    if (dedup(names).size() != names.size()) {
      throw UsageError(
          "campaign: duplicate config variant names for distinct parameters");
    }
  }
  const auto apps_axis = dedup(spec.apps);
  const auto scales_axis = dedup(spec.scales);
  const auto topologies_axis = dedup(spec.topologies);
  for (const std::string& app : apps_axis) {
    // Clamp the requested rank counts to the app's supported values and
    // drop collisions (e.g. 8 and 9 both clamp to 8 for LULESH) so the
    // grid never runs one scenario twice.
    std::vector<int> ranks;
    for (const int want : spec.ranks) {
      if (want < 1) {
        throw UsageError(
            strformat("campaign: need ranks >= 1 (got %d)", want));
      }
      ranks.push_back(apps::supported_ranks(app, want));
    }
    ranks = dedup(ranks);
    for (const int r : ranks) {
      for (const double scale : scales_axis) {
        for (const std::string& topology : topologies_axis) {
          for (const ConfigVariant& cfg : configs) {
            Scenario s;
            s.app = app;
            s.ranks = r;
            s.scale = scale;
            s.topology = topology;
            s.config = cfg.name;
            s.params = cfg.params;
            if (cfg.o_is_default) apply_table2_overhead(s.params, app, r);
            s.delta_Ls = spec.delta_Ls;
            s.band_percents = spec.band_percents;
            validate_scenario(s);
            validate_topology(s, topo_);
            scenarios_.push_back(std::move(s));
          }
        }
      }
    }
  }
  validate_mc(mc_, scenarios_);
}

Campaign::Campaign(std::vector<Scenario> scenarios, TopologyOptions topo,
                   int threads, McAxis mc)
    : scenarios_(std::move(scenarios)), topo_(topo), mc_(mc),
      threads_(threads) {
  if (scenarios_.empty()) throw UsageError("campaign: empty scenario list");
  for (const Scenario& s : scenarios_) {
    validate_scenario(s);
    validate_topology(s, topo_);
  }
  validate_mc(mc_, scenarios_);
}

std::vector<Campaign::ScenarioResult> Campaign::run(const Probe& probe) {
  // Without a session cache the graphs live exactly as long as the run.
  GraphCache cache;
  return run(probe, cache);
}

std::vector<Campaign::ScenarioResult> Campaign::run(const Probe& probe,
                                                    GraphCache& cache) {
  // Without a session solver cache the lowerings live exactly as long as
  // the run (still shared across this run's scenarios and grid points).
  SolverCache solvers;
  return run(probe, cache, solvers);
}

std::vector<Campaign::ScenarioResult> Campaign::run(const Probe& probe,
                                                    GraphCache& cache,
                                                    SolverCache& solvers) {
  // Phase 1: resolve every distinct execution graph through the cache,
  // building the misses in parallel.  Keys are collected in
  // first-appearance order.
  std::vector<GraphKey> keys;
  std::set<GraphKey> seen;
  for (const Scenario& s : scenarios_) {
    const GraphKey key = graph_key(s);
    if (seen.insert(key).second) keys.push_back(key);
  }
  cache.warm(keys, threads_);

  // Phase 2: one solver per scenario over the cached (now read-only)
  // graphs; each job writes only its own slot, so result order is grid
  // order whatever the thread count.  Each worker thread owns one solve
  // workspace, reused across all scenarios it serves — steady-state solves
  // allocate nothing.
  std::vector<ScenarioResult> results(scenarios_.size());
  const int nworkers = effective_threads(scenarios_.size(), threads_);
  std::vector<lp::ParametricSolver::Workspace> wss(
      static_cast<std::size_t>(nworkers));
  parallel_for_workers(scenarios_.size(), threads_, [&](int w, std::size_t i) {
    const Scenario& s = scenarios_[i];
    const graph::Graph& g = cache.get(graph_key(s));
    results[i] = eval_scenario(s, g, topo_, mc_, probe, solvers,
                               wss[static_cast<std::size_t>(w)]);
  });

  stats_.graphs_built = keys.size();
  stats_.scenarios_run = scenarios_.size();
  return results;
}

Table campaign_points_table(const std::vector<Campaign::ScenarioResult>& results,
                            bool human, const std::string& probe_name) {
  bool has_mc = false;
  for (const auto& res : results) has_mc = has_mc || !res.mc.empty();
  std::vector<std::string> headers =
      human ? std::vector<std::string>{"app", "ranks", "scale", "topo",
                                       "config", "ΔL", "T(ΔL)", "slowdown",
                                       "lambda_L", "rho_L"}
            : std::vector<std::string>{"app", "ranks", "scale", "topology",
                                       "config", "delta_l_ns", "runtime_ns",
                                       "lambda_l", "rho_l"};
  if (has_mc) {
    const auto mc_headers =
        human ? std::vector<std::string>{"T mean", "T sd", "T q05", "T q95"}
              : std::vector<std::string>{"runtime_mean_ns", "runtime_sd_ns",
                                         "runtime_q05_ns", "runtime_q95_ns"};
    headers.insert(headers.end(), mc_headers.begin(), mc_headers.end());
  }
  if (!probe_name.empty()) headers.push_back(probe_name);
  Table t(std::move(headers));
  for (const auto& res : results) {
    const Scenario& s = res.scenario;
    for (std::size_t i = 0; i < res.points.size(); ++i) {
      const auto& pt = res.points[i];
      std::vector<std::string> row;
      if (human) {
        row = {s.app,
               strformat("%d", s.ranks),
               strformat("%g", s.scale),
               s.topology,
               s.config,
               human_time_ns(pt.delta_L),
               human_time_ns(pt.runtime),
               strformat("%+.2f%%",
                         100.0 * (pt.runtime / res.base_runtime - 1.0)),
               strformat("%.0f", pt.lambda),
               strformat("%.1f%%", 100.0 * pt.rho)};
        if (has_mc) {
          const Campaign::McPoint mp =
              i < res.mc.size() ? res.mc[i] : Campaign::McPoint{};
          row.push_back(human_time_ns(mp.mean));
          row.push_back(human_time_ns(mp.stddev));
          row.push_back(human_time_ns(mp.q05));
          row.push_back(human_time_ns(mp.q95));
        }
        if (!probe_name.empty()) row.push_back(human_time_ns(pt.probe));
      } else {
        row = {s.app,
               strformat("%d", s.ranks),
               strformat("%g", s.scale),
               s.topology,
               s.config,
               strformat("%.1f", pt.delta_L),
               strformat("%.1f", pt.runtime),
               strformat("%.6g", pt.lambda),
               strformat("%.6g", pt.rho)};
        if (has_mc) {
          const Campaign::McPoint mp =
              i < res.mc.size() ? res.mc[i] : Campaign::McPoint{};
          row.push_back(strformat("%.1f", mp.mean));
          row.push_back(strformat("%.1f", mp.stddev));
          row.push_back(strformat("%.1f", mp.q05));
          row.push_back(strformat("%.1f", mp.q95));
        }
        if (!probe_name.empty()) row.push_back(strformat("%.1f", pt.probe));
      }
      t.add_row(std::move(row));
    }
  }
  return t;
}

}  // namespace llamp::core
