#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "trace/trace.hpp"

namespace llamp::core {

/// One-call "what does LLAMP say about this application" summary: the
/// consolidated output of the toolchain (runtime forecast curve, λ_L/ρ_L,
/// tolerance bands, critical latencies, bandwidth sensitivity), rendered as
/// a report table.  This is what the trace_analyze CLI prints and what a
/// user skimming a single application wants first.
struct ToleranceReport {
  loggops::Params params;
  TimeNs base_runtime = 0.0;
  double lambda_L_base = 0.0;
  double lambda_G = 0.0;

  struct Band {
    double percent = 0.0;
    TimeNs tolerance_delta = 0.0;  ///< +inf when latency never binds
  };
  std::vector<Band> bands;  // 1% / 2% / 5% by default

  std::vector<LatencyAnalyzer::SweepPoint> curve;
  std::vector<TimeNs> critical_latencies;  ///< within the sweep window

  std::string to_string() const;
};

struct ReportOptions {
  TimeNs sweep_max = 100'000.0;  ///< ΔL ceiling of the forecast curve
  int sweep_points = 11;
  std::vector<double> band_percents = {1.0, 2.0, 5.0};
  /// Cap on critical latencies listed (application graphs can have many).
  std::size_t max_critical = 16;
  int threads = 0;  ///< sweep parallelism; <= 0 = hardware concurrency
};

/// Analyze a prepared execution graph.
ToleranceReport make_report(const graph::Graph& g, const loggops::Params& p,
                            const ReportOptions& opts = {});

}  // namespace llamp::core
