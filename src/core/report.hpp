#pragma once

#include <string>
#include <vector>

#include "core/analyzer.hpp"
#include "graph/graph.hpp"
#include "loggops/params.hpp"
#include "trace/trace.hpp"
#include "util/table.hpp"

namespace llamp::core {

/// Output formats shared by every grid-emitting surface (`llamp analyze`,
/// `sweep`, `campaign`, and the bench harnesses).  Keeping the renderers in
/// one place is what lets the golden-output tests pin formatting once for
/// all of them.
enum class OutputFormat {
  kTable,  ///< aligned human-readable columns (util/table.hpp)
  kCsv,    ///< comma-separated, header row first
  kJson,   ///< array of row objects keyed by header name
};

/// Parse "table" / "csv" / "json"; throws UsageError otherwise.
OutputFormat parse_output_format(const std::string& name);

/// Render a table in the requested format.  The JSON renderer emits one
/// object per row keyed by header name; cells that parse completely as
/// finite numbers are emitted unquoted, everything else as a JSON string.
std::string render(const Table& table, OutputFormat format);

/// The JSON rendering of a table as one physical line (no trailing
/// newline): `[{"k": v, ...}, ...]` with the same cell typing rules as
/// render(kJson).  This is the row payload of the api layer's JSONL batch
/// responses, where one result must occupy exactly one line.
std::string render_json_line(const Table& table);

/// JSON string escaping (quotes, backslashes, control characters).
std::string json_escape(const std::string& s);

/// The ΔL-sweep curve as a table, shared by `llamp sweep`, the analyze
/// report, and the campaign emitters.  `human` selects report formatting
/// (adaptive time units, a slowdown column vs `base_runtime`); otherwise
/// the numeric CSV/JSON schema (delta_l_ns, runtime_ns, lambda_l, rho_l).
Table sweep_curve_table(const std::vector<LatencyAnalyzer::SweepPoint>& curve,
                        TimeNs base_runtime, bool human);

/// One-call "what does LLAMP say about this application" summary: the
/// consolidated output of the toolchain (runtime forecast curve, λ_L/ρ_L,
/// tolerance bands, critical latencies, bandwidth sensitivity), rendered as
/// a report table.  This is what the trace_analyze CLI prints and what a
/// user skimming a single application wants first.
struct ToleranceReport {
  loggops::Params params;
  TimeNs base_runtime = 0.0;
  double lambda_L_base = 0.0;
  double lambda_G = 0.0;

  struct Band {
    double percent = 0.0;
    TimeNs tolerance_delta = 0.0;  ///< +inf when latency never binds
  };
  std::vector<Band> bands;  // 1% / 2% / 5% by default

  std::vector<LatencyAnalyzer::SweepPoint> curve;
  std::vector<TimeNs> critical_latencies;  ///< within the sweep window

  std::string to_string() const;
  /// The whole report as one JSON object (params, base runtime, λ_L/λ_G,
  /// tolerance bands, forecast curve, critical latencies).  Unbounded
  /// tolerances serialize as null.
  std::string to_json() const;
  /// Same object compacted onto one physical line without a trailing
  /// newline (the JSONL batch payload form).
  std::string to_json_line() const;
};

struct ReportOptions {
  TimeNs sweep_max = 100'000.0;  ///< ΔL ceiling of the forecast curve
  int sweep_points = 11;
  std::vector<double> band_percents = {1.0, 2.0, 5.0};
  /// Cap on critical latencies listed (application graphs can have many).
  std::size_t max_critical = 16;
  int threads = 0;  ///< sweep parallelism; <= 0 = hardware concurrency
};

/// Analyze a prepared execution graph.
ToleranceReport make_report(const graph::Graph& g, const loggops::Params& p,
                            const ReportOptions& opts = {});

/// Same report over a caller-constructed analyzer (the api::Engine path:
/// a warm-starting analyzer wired to the session's SolverCache).  The
/// emitted bytes are identical to the graph+params form — the analyzer's
/// construction mode can never change them.
ToleranceReport make_report(const LatencyAnalyzer& an,
                            const ReportOptions& opts = {});

}  // namespace llamp::core
