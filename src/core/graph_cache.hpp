#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <tuple>
#include <vector>

#include "graph/graph.hpp"

namespace llamp::core {

/// The key under which an execution graph is shared: a graph depends only
/// on the trace (app, ranks, scale) and the rendezvous threshold S baked
/// into the schedule — never on L/o/G or the topology.  This is the same
/// key the campaign engine has always cached under; extracting it lets an
/// api::Engine session share one cache across requests.
struct GraphKey {
  std::string app;
  int ranks = 0;
  double scale = 0.0;
  std::uint64_t S = 0;

  friend bool operator<(const GraphKey& a, const GraphKey& b) {
    return std::tie(a.app, a.ranks, a.scale, a.S) <
           std::tie(b.app, b.ranks, b.scale, b.S);
  }
  friend bool operator==(const GraphKey& a, const GraphKey& b) {
    return std::tie(a.app, a.ranks, a.scale, a.S) ==
           std::tie(b.app, b.ranks, b.scale, b.S);
  }
};

/// Thread-safe build-once cache of execution graphs.  Graphs are owned by
/// the cache and never evicted, so returned references stay valid for the
/// cache's lifetime (requests, campaigns, and solvers hold plain
/// references).  `ranks` must already be clamped to an app-supported value
/// — two spellings of one scenario must share one key.
class GraphCache {
 public:
  GraphCache() = default;
  GraphCache(const GraphCache&) = delete;
  GraphCache& operator=(const GraphCache&) = delete;

  /// The cached graph for `key`, building it (schedgen over the proxy
  /// trace, rendezvous threshold from the key) on first use.  Concurrent
  /// callers are safe: a miss builds under a per-key lock, so two callers
  /// never build one key twice and a slow build never blocks lookups or
  /// builds of other keys (a cold parallel batch builds its distinct
  /// graphs concurrently).
  const graph::Graph& get(const GraphKey& key);

  /// Ensure every key is cached, building the misses in parallel on
  /// `threads` workers (<= 0 = hardware concurrency) without counting
  /// hits.  Subsequent get() calls for these keys are pure lookups.
  void warm(const std::vector<GraphKey>& keys, int threads);

  struct Stats {
    std::size_t built = 0;  ///< graphs constructed (cache misses)
    std::size_t hits = 0;   ///< get() calls served already-built graphs
    std::size_t bytes = 0;  ///< summed memory_bytes() of the built graphs
  };
  /// Cumulative statistics; the repeated-request engine tests pin that a
  /// second identical request re-lowers nothing.  The counters are plain
  /// monotonic tallies kept as atomics (bumping them used to re-take the
  /// map mutex inside the per-key build lock — benign-looking, but a lock
  /// the hot hit path does not need and a pattern TSan-grade review
  /// rejects); a stats() snapshot is therefore monotonic but not an
  /// instantaneous cut across both counters.
  Stats stats() const;
  /// One-line human form via the shared obs::stats_line formatter, e.g.
  /// "graphs: built=2 hits=9 bytes=123456".
  std::string stats_string() const;

 private:
  /// One cache entry: the graph plus the lock its first-touch build runs
  /// under.  Slots are created under the map mutex but built outside it.
  struct Slot {
    std::mutex build_mutex;
    std::unique_ptr<graph::Graph> graph;
  };

  std::shared_ptr<Slot> slot_for(const GraphKey& key);
  /// Build the slot's graph if still absent (per-key lock); returns it.
  const graph::Graph& build_in(Slot& slot, const GraphKey& key);
  static std::unique_ptr<graph::Graph> build(const GraphKey& key);

  std::mutex mutex_;  ///< guards graphs_ only
  std::map<GraphKey, std::shared_ptr<Slot>> graphs_;
  std::atomic<std::size_t> built_{0};
  std::atomic<std::size_t> hits_{0};
  std::atomic<std::size_t> bytes_{0};
};

}  // namespace llamp::core
