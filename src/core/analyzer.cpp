#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <span>

#include "util/error.hpp"
#include "util/parallel.hpp"
#include "util/strings.hpp"

namespace llamp::core {

LatencyAnalyzer::LatencyAnalyzer(const graph::Graph& g, loggops::Params p)
    : g_(g),
      params_(p),
      space_(std::make_shared<lp::LatencyParamSpace>(p)),
      solver_(g, space_) {
  base_runtime_ = solver_.solve(0, params_.L).value;
}

LatencyAnalyzer::LatencyAnalyzer(const graph::Graph& g, loggops::Params p,
                                 SolverCache& cache, const GraphKey& key)
    : g_(g),
      params_(p),
      cache_(&cache),
      key_(key),
      warm_(cache.latency(key, g, p)),
      space_(warm_->problem()->space_ptr()),
      solver_(warm_->problem()) {
  lp::ParametricSolver::Workspace ws;
  base_runtime_ = warm_->eval(0, params_.L, ws).value;
}

TimeNs LatencyAnalyzer::predict_runtime(TimeNs delta_L) const {
  if (warm_) {
    lp::ParametricSolver::Workspace ws;
    return warm_->eval(0, params_.L + delta_L, ws).value;
  }
  return solver_.solve(0, params_.L + delta_L).value;
}

double LatencyAnalyzer::lambda_L(TimeNs delta_L) const {
  if (warm_) {
    lp::ParametricSolver::Workspace ws;
    return warm_->eval(0, params_.L + delta_L, ws).slope;
  }
  return solver_.solve(0, params_.L + delta_L).gradient[0];
}

double LatencyAnalyzer::rho_L(TimeNs delta_L) const {
  if (warm_) {
    lp::ParametricSolver::Workspace ws;
    const auto ev = warm_->eval(0, params_.L + delta_L, ws);
    if (ev.value <= 0.0) return 0.0;
    return (params_.L + delta_L) * ev.slope / ev.value;
  }
  const auto sol = solver_.solve(0, params_.L + delta_L);
  if (sol.value <= 0.0) return 0.0;
  return (params_.L + delta_L) * sol.gradient[0] / sol.value;
}

TimeNs LatencyAnalyzer::tolerance(double percent) const {
  if (percent < 0.0) throw Error("tolerance: negative percentage");
  const double budget = base_runtime_ * (1.0 + percent / 100.0);
  return solver_.max_param_for_budget(0, budget);
}

TimeNs LatencyAnalyzer::tolerance_delta(double percent) const {
  const TimeNs tol = tolerance(percent);
  if (!std::isfinite(tol)) return tol;
  return tol - params_.L;
}

std::vector<TimeNs> LatencyAnalyzer::critical_latencies(TimeNs lo,
                                                        TimeNs hi) const {
  return solver_.critical_values(0, lo, hi);
}

std::vector<lp::ParametricSolver::Segment> LatencyAnalyzer::runtime_curve(
    TimeNs lo, TimeNs hi) const {
  return solver_.piecewise(0, lo, hi);
}

double LatencyAnalyzer::lambda_G() const {
  if (cache_) {
    // The two-parameter lowering is the expensive part (it falls back to
    // the CSR walk); share it across requests even though every eval is a
    // dense solve.
    const auto entry = cache_->latency_bandwidth(key_, g_, params_);
    lp::ParametricSolver::Workspace ws;
    return entry->eval(1, params_.G, ws).slope;
  }
  const auto space =
      std::make_shared<lp::LatencyBandwidthParamSpace>(params_);
  lp::ParametricSolver s(g_, space);
  return s.solve(1, params_.G).gradient[1];
}

std::vector<LatencyAnalyzer::SweepPoint> LatencyAnalyzer::sweep(
    const std::vector<TimeNs>& delta_Ls, int threads) const {
  // Validate the whole grid before any worker thread exists, so bad input
  // raises a clean Error on the calling thread instead of depending on
  // exception propagation out of the pool.
  bool ascending = true;
  for (std::size_t i = 0; i < delta_Ls.size(); ++i) {
    const TimeNs d = delta_Ls[i];
    if (d < 0.0) throw Error("sweep: negative latency injection");
    if (!std::isfinite(d)) {
      throw Error(
          strformat("sweep: latency injection must be finite (got %g)", d));
    }
    if (i > 0 && delta_Ls[i - 1] > d) ascending = false;
  }
  const std::size_t n = delta_Ls.size();
  std::vector<SweepPoint> out(n);
  if (n == 0) return out;
  std::vector<double> xs(n);
  for (std::size_t i = 0; i < n; ++i) xs[i] = params_.L + delta_Ls[i];
  const auto fill = [&](std::size_t i, double value, double lambda) {
    out[i] = {delta_Ls[i], value, lambda,
              value > 0.0 ? xs[i] * lambda / value : 0.0};
  };

  if (warm_) {
    // Warm path: every point is served through the session cache — anchor
    // replay when a published stability zone covers it, dense solve (which
    // publishes its anchor) otherwise.  Replay is bitwise identical to a
    // dense solve, so these bytes match the cold paths below exactly,
    // whatever the cache held beforehand and whatever the thread count.
    // Works for ascending and unordered grids alike.
    const int nworkers = effective_threads(n, threads);
    std::vector<lp::ParametricSolver::Workspace> wss(
        static_cast<std::size_t>(nworkers));
    parallel_for_workers(n, threads, [&](int w, std::size_t i) {
      const auto ev =
          warm_->eval(0, xs[i], wss[static_cast<std::size_t>(w)]);
      fill(i, ev.value, ev.slope);
    });
    return out;
  }
  if (ascending) {
    // Segment walk over contiguous chunks, one workspace per chunk.  Every
    // point's value is bitwise identical to a dense solve at that point, so
    // the chunk boundaries (and therefore the thread count) cannot change
    // the bytes of the result.
    const std::size_t nchunks =
        static_cast<std::size_t>(effective_threads(n, threads));
    std::vector<lp::ParametricSolver::Workspace> wss(nchunks);
    std::vector<lp::ParametricSolver::SweepEval> evals(n);
    parallel_for(nchunks, threads, [&](std::size_t c) {
      const std::size_t begin = n * c / nchunks;
      const std::size_t end = n * (c + 1) / nchunks;
      solver_.sweep(0, std::span(xs).subspan(begin, end - begin), wss[c],
                    evals.data() + begin);
    });
    for (std::size_t i = 0; i < n; ++i) fill(i, evals[i].value, evals[i].slope);
  } else {
    // Unordered grids take the batched dense fallback: lane groups of
    // kBatchWidth points per forward pass, one batch cursor per worker,
    // still allocation-free in steady state and still bitwise identical to
    // per-point dense solves (the batch kernel's contract).
    const std::size_t groups =
        (n + lp::kBatchWidth - 1) / lp::kBatchWidth;
    const int nworkers = effective_threads(groups, threads);
    std::vector<lp::ParametricSolver::BatchCursor> bcs(
        static_cast<std::size_t>(nworkers));
    std::vector<lp::ParametricSolver::BatchPoint> pts(n);
    parallel_for_workers(groups, threads, [&](int w, std::size_t gi) {
      const std::size_t lo = gi * lp::kBatchWidth;
      const std::size_t lanes = std::min(lp::kBatchWidth, n - lo);
      solver_.solve_batch(0, xs.data() + lo, lanes,
                          bcs[static_cast<std::size_t>(w)], pts.data() + lo);
    });
    for (std::size_t i = 0; i < n; ++i) fill(i, pts[i].value, pts[i].slope);
  }
  return out;
}

std::vector<double> LatencyAnalyzer::pairwise_lambda_L() const {
  const int n = g_.nranks();
  const auto space =
      std::make_shared<lp::PairwiseLatencyParamSpace>(params_, n);
  lp::ParametricSolver s(g_, space);
  const auto sol = s.solve(0, space->base_value(0));
  std::vector<double> mat(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n),
                          0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v =
          sol.gradient[static_cast<std::size_t>(space->pair_index(i, j))];
      mat[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)] = v;
      mat[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(i)] = v;
    }
  }
  return mat;
}

}  // namespace llamp::core
