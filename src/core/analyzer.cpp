#include "core/analyzer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/error.hpp"
#include "util/parallel.hpp"

namespace llamp::core {

LatencyAnalyzer::LatencyAnalyzer(const graph::Graph& g, loggops::Params p)
    : g_(g),
      params_(p),
      space_(std::make_shared<lp::LatencyParamSpace>(p)),
      solver_(g, space_) {
  base_runtime_ = solver_.solve(0, params_.L).value;
}

TimeNs LatencyAnalyzer::predict_runtime(TimeNs delta_L) const {
  return solver_.solve(0, params_.L + delta_L).value;
}

double LatencyAnalyzer::lambda_L(TimeNs delta_L) const {
  return solver_.solve(0, params_.L + delta_L).gradient[0];
}

double LatencyAnalyzer::rho_L(TimeNs delta_L) const {
  const auto sol = solver_.solve(0, params_.L + delta_L);
  if (sol.value <= 0.0) return 0.0;
  return (params_.L + delta_L) * sol.gradient[0] / sol.value;
}

TimeNs LatencyAnalyzer::tolerance(double percent) const {
  if (percent < 0.0) throw Error("tolerance: negative percentage");
  const double budget = base_runtime_ * (1.0 + percent / 100.0);
  return solver_.max_param_for_budget(0, budget);
}

TimeNs LatencyAnalyzer::tolerance_delta(double percent) const {
  const TimeNs tol = tolerance(percent);
  if (!std::isfinite(tol)) return tol;
  return tol - params_.L;
}

std::vector<TimeNs> LatencyAnalyzer::critical_latencies(TimeNs lo,
                                                        TimeNs hi) const {
  return solver_.critical_values(0, lo, hi);
}

std::vector<lp::ParametricSolver::Segment> LatencyAnalyzer::runtime_curve(
    TimeNs lo, TimeNs hi) const {
  return solver_.piecewise(0, lo, hi);
}

double LatencyAnalyzer::lambda_G() const {
  const auto space =
      std::make_shared<lp::LatencyBandwidthParamSpace>(params_);
  lp::ParametricSolver s(g_, space);
  return s.solve(1, params_.G).gradient[1];
}

std::vector<LatencyAnalyzer::SweepPoint> LatencyAnalyzer::sweep(
    const std::vector<TimeNs>& delta_Ls, int threads) const {
  std::vector<SweepPoint> out(delta_Ls.size());
  parallel_for(delta_Ls.size(), threads, [&](std::size_t i) {
    const TimeNs d = delta_Ls[i];
    if (d < 0.0) throw Error("sweep: negative latency injection");
    const auto sol = solver_.solve(0, params_.L + d);
    out[i] = {d, sol.value, sol.gradient[0],
              sol.value > 0.0 ? (params_.L + d) * sol.gradient[0] / sol.value
                              : 0.0};
  });
  return out;
}

std::vector<double> LatencyAnalyzer::pairwise_lambda_L() const {
  const int n = g_.nranks();
  const auto space =
      std::make_shared<lp::PairwiseLatencyParamSpace>(params_, n);
  lp::ParametricSolver s(g_, space);
  const auto sol = s.solve(0, space->base_value(0));
  std::vector<double> mat(static_cast<std::size_t>(n) *
                              static_cast<std::size_t>(n),
                          0.0);
  for (int i = 0; i < n; ++i) {
    for (int j = i + 1; j < n; ++j) {
      const double v =
          sol.gradient[static_cast<std::size_t>(space->pair_index(i, j))];
      mat[static_cast<std::size_t>(i) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(j)] = v;
      mat[static_cast<std::size_t>(j) * static_cast<std::size_t>(n) +
          static_cast<std::size_t>(i)] = v;
    }
  }
  return mat;
}

}  // namespace llamp::core
