#include "obs/trace.hpp"

#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::obs {
namespace {

std::uint64_t next_tracer_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread lane cache.  Keyed by tracer id, not pointer: engines (and
/// their tracers) are created and destroyed while pool worker threads
/// outlive them, and a recycled allocation must never revive a stale lane.
struct LaneCache {
  std::uint64_t tracer_id = 0;
  Tracer::Lane* lane = nullptr;
};
thread_local LaneCache t_lane_cache;

}  // namespace

Tracer::Tracer() : id_(next_tracer_id()) {}

void Tracer::enable() {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (!enabled_.load(std::memory_order_relaxed)) {
    origin_.store(monotonic_now(), std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
  }
}

void Tracer::disable() { enabled_.store(false, std::memory_order_relaxed); }

void Tracer::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& lane : lanes_) {
    lane->spans.clear();
    lane->open.clear();
  }
}

std::size_t Tracer::span_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t n = 0;
  for (const auto& lane : lanes_) n += lane->spans.size();
  return n;
}

Tracer::Lane* Tracer::lane() {
  if (t_lane_cache.tracer_id == id_) return t_lane_cache.lane;
  const std::lock_guard<std::mutex> lock(mutex_);
  const std::thread::id self = std::this_thread::get_id();
  Lane* found = nullptr;
  for (std::size_t i = 0; i < lane_threads_.size(); ++i) {
    if (lane_threads_[i] == self) {
      found = lanes_[i].get();
      break;
    }
  }
  if (found == nullptr) {
    lanes_.push_back(std::make_unique<Lane>());
    found = lanes_.back().get();
    found->tid = static_cast<int>(lanes_.size()) - 1;
    lane_threads_.push_back(self);
  }
  t_lane_cache = {id_, found};
  return found;
}

std::string Tracer::to_chrome_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::string out = "{\"traceEvents\": [";
  bool first = true;
  for (const auto& lane : lanes_) {
    for (const Span& s : lane->spans) {
      // An unclosed span (emission mid-request would violate the class
      // contract, but a crash-path emit should still parse) gets zero
      // duration rather than a negative one.
      const TimeNs end = s.end >= s.begin ? s.end : s.begin;
      out += strformat(
          "%s{\"name\": \"%s\", \"cat\": \"llamp\", \"ph\": \"X\", "
          "\"pid\": 1, \"tid\": %d, \"ts\": %.3f, \"dur\": %.3f, "
          "\"args\": {\"parent\": %lld}}",
          first ? "" : ", ",
          json_escape_string(s.name != nullptr ? s.name : "").c_str(),
          lane->tid, to_us(s.begin), to_us(end - s.begin),
          static_cast<long long>(s.parent));
      first = false;
    }
  }
  out += "], \"displayTimeUnit\": \"ms\"}";
  return out;
}

SpanScope::SpanScope(Tracer& tracer, const char* name) {
  if (!tracer.enabled()) return;
  tracer_ = &tracer;
  lane_ = tracer.lane();
  index_ = lane_->spans.size();
  Tracer::Span span;
  span.name = name;
  span.begin =
      monotonic_now() - tracer.origin_.load(std::memory_order_relaxed);
  span.parent = lane_->open.empty()
                    ? -1
                    : static_cast<std::int64_t>(lane_->open.back());
  lane_->spans.push_back(span);
  lane_->open.push_back(index_);
}

SpanScope::~SpanScope() {
  if (tracer_ == nullptr) return;
  lane_->spans[index_].end =
      monotonic_now() - tracer_->origin_.load(std::memory_order_relaxed);
  // Scopes unwind LIFO per thread, so the top of the open stack is this
  // span (destructors run in reverse construction order).
  if (!lane_->open.empty() && lane_->open.back() == index_) {
    lane_->open.pop_back();
  }
}

}  // namespace llamp::obs
