#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>

#include "util/json.hpp"
#include "util/strings.hpp"

namespace llamp::obs {
namespace detail {

std::size_t next_shard_slot() {
  static std::atomic<std::size_t> next{0};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::size_t histogram_bucket(double v) {
  // Bucket 0 holds v <= 1 (and any negative); bucket b >= 1 holds
  // [2^(b-1), 2^b); the last bucket overflows.  frexp is exact at the
  // power-of-two edges, where a std::log2 round trip could land either
  // side depending on the libm.
  if (!(v > 1.0)) return 0;
  int exp = 0;
  (void)std::frexp(v, &exp);  // v = m * 2^exp with m in [0.5, 1)
  return std::min(static_cast<std::size_t>(exp), kHistogramBuckets - 1);
}

namespace {

void atomic_add(std::atomic<double>& a, double d) {
  double cur = a.load(std::memory_order_relaxed);
  while (!a.compare_exchange_weak(cur, cur + d, std::memory_order_relaxed)) {
  }
}

void atomic_min(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v < cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

void atomic_max(std::atomic<double>& a, double v) {
  double cur = a.load(std::memory_order_relaxed);
  while (v > cur &&
         !a.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

}  // namespace

void HistogramCell::record(double v) {
  HistogramShard& s = shards[thread_shard_slot() % shards.size()];
  if (!std::isfinite(v)) {
    s.nonfinite.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.buckets[histogram_bucket(v)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  atomic_add(s.sum, v);
  atomic_min(s.min_v, v);
  atomic_max(s.max_v, v);
  {
    const std::lock_guard<std::mutex> lock(s.p2_mutex);
    s.p50.add(v);
    s.p95.add(v);
    s.p99.add(v);
  }
}

}  // namespace detail

void Gauge::add(double d) {
  if (cell_ == nullptr) return;
  detail::atomic_add(cell_->value, d);
}

Registry::Registry(Options opts)
    : shards_(opts.shards > 0 ? static_cast<std::size_t>(opts.shards) : 8) {}

Counter Registry::counter(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = counters_[name];
  if (!cell) cell = std::make_unique<detail::CounterCell>(shards_);
  return Counter(cell.get());
}

Gauge Registry::gauge(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = gauges_[name];
  if (!cell) cell = std::make_unique<detail::GaugeCell>();
  return Gauge(cell.get());
}

Histogram Registry::histogram(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  auto& cell = histograms_[name];
  if (!cell) cell = std::make_unique<detail::HistogramCell>(shards_);
  return Histogram(cell.get());
}

namespace {

/// Quantile estimate from merged log₂ bucket counts: linear interpolation
/// on rank inside the covering bucket.  Deterministic given the merged
/// counts (which are themselves shard- and thread-count independent).
double bucket_quantile(const std::vector<std::uint64_t>& buckets,
                       std::uint64_t n, double q) {
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  double cum = 0.0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const double c = static_cast<double>(buckets[b]);
    if (c == 0.0) continue;
    if (cum + c >= target) {
      if (b == 0) return 1.0;  // the "<= 1" bucket: report its upper edge
      const double lo = std::ldexp(1.0, static_cast<int>(b) - 1);
      if (b == detail::kHistogramBuckets - 1) return lo;  // overflow
      const double hi = std::ldexp(1.0, static_cast<int>(b));
      return lo + (hi - lo) * ((target - cum) / c);
    }
    cum += c;
  }
  return 0.0;  // unreachable: the loop covers rank n
}

}  // namespace

Snapshot Registry::snapshot() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Snapshot snap;
  for (const auto& [name, cell] : counters_) {
    std::uint64_t total = 0;
    for (const auto& shard : cell->shards) {
      total += shard.v.load(std::memory_order_relaxed);
    }
    snap.counters.emplace_back(name, total);
  }
  for (const auto& [name, cell] : gauges_) {
    snap.gauges.emplace_back(name,
                             cell->value.load(std::memory_order_relaxed));
  }
  for (const auto& [name, cell] : histograms_) {
    HistogramSnapshot h;
    h.name = name;
    h.buckets.assign(detail::kHistogramBuckets, 0);
    double min_v = std::numeric_limits<double>::infinity();
    double max_v = -std::numeric_limits<double>::infinity();
    const detail::HistogramShard* populated = nullptr;
    std::size_t populated_shards = 0;
    for (const auto& shard : cell->shards) {
      const std::uint64_t c = shard.count.load(std::memory_order_relaxed);
      h.count += c;
      h.nonfinite += shard.nonfinite.load(std::memory_order_relaxed);
      if (c == 0) continue;
      ++populated_shards;
      populated = &shard;
      h.sum += shard.sum.load(std::memory_order_relaxed);
      min_v = std::min(min_v, shard.min_v.load(std::memory_order_relaxed));
      max_v = std::max(max_v, shard.max_v.load(std::memory_order_relaxed));
      for (std::size_t b = 0; b < detail::kHistogramBuckets; ++b) {
        h.buckets[b] += shard.buckets[b].load(std::memory_order_relaxed);
      }
    }
    if (h.count > 0) {
      h.min = min_v;
      h.max = max_v;
    }
    if (populated_shards == 1) {
      // One populated shard means one deterministic feed order: report the
      // precise P² estimates (exact up to five observations, the
      // util/stats contract).
      const std::lock_guard<std::mutex> p2(populated->p2_mutex);
      h.p50 = populated->p50.value();
      h.p95 = populated->p95.value();
      h.p99 = populated->p99.value();
    } else if (populated_shards > 1) {
      // Concurrent feeds merge at bucket resolution: the estimates depend
      // only on the merged counts, never on which thread fed which shard.
      h.p50 = bucket_quantile(h.buckets, h.count, 0.50);
      h.p95 = bucket_quantile(h.buckets, h.count, 0.95);
      h.p99 = bucket_quantile(h.buckets, h.count, 0.99);
    }
    snap.histograms.push_back(std::move(h));
  }
  return snap;
}

void Snapshot::set_counter(const std::string& name, std::uint64_t v) {
  const auto pos = std::lower_bound(
      counters.begin(), counters.end(), name,
      [](const auto& a, const std::string& b) { return a.first < b; });
  if (pos != counters.end() && pos->first == name) {
    pos->second = v;
  } else {
    counters.insert(pos, {name, v});
  }
}

void Snapshot::set_gauge(const std::string& name, double v) {
  const auto pos = std::lower_bound(
      gauges.begin(), gauges.end(), name,
      [](const auto& a, const std::string& b) { return a.first < b; });
  if (pos != gauges.end() && pos->first == name) {
    pos->second = v;
  } else {
    gauges.insert(pos, {name, v});
  }
}

std::string Snapshot::to_json() const {
  std::string out = "{\"schema_version\": 1, \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : counters) {
    out += strformat("%s\"%s\": %llu", first ? "" : ", ",
                     json_escape_string(name).c_str(),
                     static_cast<unsigned long long>(v));
    first = false;
  }
  out += "}, \"gauges\": {";
  first = true;
  for (const auto& [name, v] : gauges) {
    out += strformat("%s\"%s\": %s", first ? "" : ", ",
                     json_escape_string(name).c_str(),
                     json_double(v).c_str());
    first = false;
  }
  out += "}, \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    out += strformat(
        "%s\"%s\": {\"count\": %llu, \"nonfinite\": %llu, \"sum\": %s, "
        "\"min\": %s, \"max\": %s, \"p50\": %s, \"p95\": %s, \"p99\": %s}",
        first ? "" : ", ", json_escape_string(h.name).c_str(),
        static_cast<unsigned long long>(h.count),
        static_cast<unsigned long long>(h.nonfinite),
        json_double(h.sum).c_str(), json_double(h.min).c_str(),
        json_double(h.max).c_str(), json_double(h.p50).c_str(),
        json_double(h.p95).c_str(), json_double(h.p99).c_str());
    first = false;
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_string() const {
  std::string out;
  if (!counters.empty()) {
    out += "counters:\n";
    for (const auto& [name, v] : counters) {
      out += strformat("  %-32s %llu\n", name.c_str(),
                       static_cast<unsigned long long>(v));
    }
  }
  if (!gauges.empty()) {
    out += "gauges:\n";
    for (const auto& [name, v] : gauges) {
      out += strformat("  %-32s %g\n", name.c_str(), v);
    }
  }
  if (!histograms.empty()) {
    out += "histograms:\n";
    for (const HistogramSnapshot& h : histograms) {
      const double mean =
          h.count > 0 ? h.sum / static_cast<double>(h.count) : 0.0;
      out += strformat(
          "  %-32s count=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f "
          "min=%.1f max=%.1f\n",
          h.name.c_str(), static_cast<unsigned long long>(h.count), mean,
          h.p50, h.p95, h.p99, h.min, h.max);
    }
  }
  return out;
}

std::string stats_line(
    const std::string& label,
    const std::vector<std::pair<std::string, std::uint64_t>>& fields) {
  std::string out = label + ":";
  for (const auto& [key, value] : fields) {
    out += strformat(" %s=%llu", key.c_str(),
                     static_cast<unsigned long long>(value));
  }
  return out;
}

}  // namespace llamp::obs
