#pragma once

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/stats.hpp"

namespace llamp::obs {

/// The session metrics registry (DESIGN.md §7): named counters, gauges, and
/// latency histograms behind pre-registered handles.
///
/// Contract split:
///
///  * **Registration** (`Registry::counter("name")` etc.) takes the registry
///    mutex and may allocate — it happens once, at session construction or
///    at a surface's entry point, never inside a hot path (the llamp-lint
///    `hot-metric` rule rejects string lookups inside declared hot-path
///    regions).
///  * **Recording** through a handle is wait-free on the common path: a
///    counter increment is one relaxed atomic add into a per-thread shard
///    cell, no lock, no lookup, no allocation.
///
/// Determinism: counter cells are sharded to keep concurrent increments
/// cheap, and a snapshot merges shards by exact integer summation in
/// deterministic name order — so merged counter values are independent of
/// the shard count, the thread count, and which thread bumped which shard
/// (pinned by the Obs.MergeDeterminism tests).  Histogram bucket counts
/// merge the same way; only the timing-*valued* fields (sum, min/max,
/// quantile estimates) are allowed to vary run to run, because the recorded
/// durations themselves do.  Nothing in this file may ever feed result
/// bytes: metrics are a side channel beside the golden-pinned outputs.
class Registry;

namespace detail {

struct alignas(64) PaddedCount {
  std::atomic<std::uint64_t> v{0};
};

/// Round-robin slot allocator backing thread_shard_slot (one atomic bump
/// per thread lifetime).
std::size_t next_shard_slot();

/// This thread's stable shard slot, assigned round-robin on first use (the
/// slot is taken modulo each cell's shard count, so any shard count works).
inline std::size_t thread_shard_slot() {
  thread_local const std::size_t slot = next_shard_slot();
  return slot;
}

struct CounterCell {
  explicit CounterCell(std::size_t nshards) : shards(nshards) {}
  std::vector<PaddedCount> shards;
};

struct GaugeCell {
  std::atomic<double> value{0.0};
};

/// Log₂-spaced histogram buckets: bucket 0 holds values <= 1, bucket b in
/// [1, kBuckets-2] holds [2^(b-1), 2^b), and the last bucket overflows.
/// 2^46 ns ≈ 19.5 hours, far beyond any request latency we time.
inline constexpr std::size_t kHistogramBuckets = 48;

/// The bucket for a finite value, computed with frexp (exact at the
/// power-of-two edges, unlike a std::log2 round trip).
std::size_t histogram_bucket(double v);

struct alignas(64) HistogramShard {
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> nonfinite{0};
  /// sum/min/max via CAS: a shard is normally touched by one thread, so
  /// the loops almost never retry.
  std::atomic<double> sum{0.0};
  std::atomic<double> min_v{std::numeric_limits<double>::infinity()};
  std::atomic<double> max_v{-std::numeric_limits<double>::infinity()};
  /// P² sketches (util/stats) for precise quantiles when one thread feeds
  /// the histogram (the registry reports them when exactly one shard is
  /// populated; concurrent feeds fall back to bucket interpolation).
  mutable std::mutex p2_mutex;
  P2Quantile p50{0.50};
  P2Quantile p95{0.95};
  P2Quantile p99{0.99};
};

struct HistogramCell {
  explicit HistogramCell(std::size_t nshards) : shards(nshards) {}
  std::vector<HistogramShard> shards;
  void record(double v);
};

}  // namespace detail

/// Monotonic counter handle.  Trivially copyable; a default-constructed
/// handle is a safe no-op (so instrumented code never branches on "metrics
/// configured?").
class Counter {
 public:
  Counter() = default;

  /// One relaxed array-indexed add; safe from any thread, never allocates.
  void inc(std::uint64_t n = 1) {
    if (cell_ == nullptr) return;
    auto& shards = cell_->shards;
    shards[detail::thread_shard_slot() % shards.size()].v.fetch_add(
        n, std::memory_order_relaxed);
  }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* cell) : cell_(cell) {}
  detail::CounterCell* cell_ = nullptr;
};

/// Point-in-time value handle (cache bytes, pool size, occupancy).
class Gauge {
 public:
  Gauge() = default;

  void set(double v) {
    if (cell_ != nullptr) cell_->value.store(v, std::memory_order_relaxed);
  }
  void add(double d);

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) : cell_(cell) {}
  detail::GaugeCell* cell_ = nullptr;
};

/// Latency histogram handle: fixed log₂ buckets plus per-shard P² quantile
/// sketches.  Values are nanoseconds by convention (TimeNs durations).
class Histogram {
 public:
  Histogram() = default;

  /// Record one observation.  Non-finite values are counted separately
  /// (they would corrupt the P² markers); lock-free except the per-shard
  /// P² mutex, which is uncontended when each thread keeps its shard.
  void record(double v) {
    if (cell_ != nullptr) cell_->record(v);
  }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell* cell) : cell_(cell) {}
  detail::HistogramCell* cell_ = nullptr;
};

/// A merged, name-sorted view of a registry (plus any values the owner
/// imports — the engine folds its cache and pool statistics in before
/// emission, so external atomics don't need registry cells).
struct HistogramSnapshot {
  std::string name;
  std::uint64_t count = 0;      ///< finite observations (deterministic)
  std::uint64_t nonfinite = 0;  ///< rejected non-finite observations
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  ///< P² when single-shard, bucket estimate otherwise
  double p95 = 0.0;
  double p99 = 0.0;
  std::vector<std::uint64_t> buckets;  ///< merged log₂ bucket counts
};

struct Snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;  ///< sorted
  std::vector<std::pair<std::string, double>> gauges;           ///< sorted
  std::vector<HistogramSnapshot> histograms;                    ///< sorted

  /// Insert-or-assign keeping name order (for importing external stats).
  void set_counter(const std::string& name, std::uint64_t v);
  void set_gauge(const std::string& name, double v);

  /// Canonical single-line JSON: {"schema_version": 1, "counters": {...},
  /// "gauges": {...}, "histograms": {...}} with every object name-sorted.
  /// This is the payload a future `llamp serve` /metrics endpoint returns.
  /// Structure and counter values are deterministic for a fixed request
  /// sequence; gauge/histogram *values* may carry timings.
  std::string to_json() const;

  /// Human multi-line form (`llamp stats`): one "name value" line per
  /// metric, histograms as one summary line each.
  std::string to_string() const;
};

class Registry {
 public:
  struct Options {
    /// Counter/histogram shard count; <= 0 picks a fixed default.  Merged
    /// snapshots are shard-count independent, so this is purely a
    /// contention knob (1 is fine single-threaded, tests sweep it).
    int shards = 0;
  };
  Registry() : Registry(Options{}) {}
  explicit Registry(Options opts);
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Register-or-look-up by name.  Handles stay valid for the registry's
  /// lifetime (cells are never removed).  Takes the registry mutex — call
  /// at setup time, never in hot paths (llamp-lint: hot-metric).
  Counter counter(const std::string& name);
  Gauge gauge(const std::string& name);
  Histogram histogram(const std::string& name);

  /// Merge every cell into a name-sorted snapshot (see Snapshot).
  Snapshot snapshot() const;

  std::size_t shard_count() const { return shards_; }

 private:
  std::size_t shards_;
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<detail::CounterCell>> counters_;
  std::map<std::string, std::unique_ptr<detail::GaugeCell>> gauges_;
  std::map<std::string, std::unique_ptr<detail::HistogramCell>> histograms_;
};

/// The one cache/stats line format shared by GraphCache, SolverCache, and
/// any future stats_string(): "label: k1=v1 k2=v2 ...".  Having a single
/// formatter is the point — two caches can never drift apart again.
std::string stats_line(
    const std::string& label,
    const std::vector<std::pair<std::string, std::uint64_t>>& fields);

}  // namespace llamp::obs
