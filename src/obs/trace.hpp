#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "util/time.hpp"

namespace llamp::obs {

/// Request tracing (DESIGN.md §7): lightweight spans recorded into
/// per-thread lanes and emitted as Chrome trace-event JSON (load the file
/// into chrome://tracing or Perfetto).
///
/// Model: a span is (name, begin, end, parent) where begin/end come from
/// util/time's monotonic clock relative to enable() and parent is the
/// enclosing open span *on the same thread* (spans nest per thread,
/// matching the engine's execution model: a request runs on one worker).
/// Recording is wire-cheap: a disabled tracer costs one relaxed load per
/// SpanScope; an enabled one appends to a thread-local lane with no lock
/// after the lane's first registration.
///
/// Timings are wall-clock and therefore nondeterministic by nature — the
/// trace is a side channel like the metrics registry, and must never feed
/// result bytes (the metrics-on-vs-off byte-identity tests pin this).
///
/// Thread-safety: concurrent recording from any number of threads is safe
/// (each thread owns its lane).  to_chrome_json()/span_count()/clear() may
/// run concurrently with *registration* of new lanes, but the caller must
/// ensure no span is being recorded while they read — the engine emits
/// after its requests complete, which satisfies this by construction.
class Tracer {
 public:
  struct Span {
    const char* name = nullptr;  ///< static string (span sites pass literals)
    TimeNs begin = 0.0;          ///< relative to enable()
    TimeNs end = 0.0;
    std::int64_t parent = -1;    ///< index in the same lane; -1 = root
  };

  Tracer();
  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Start recording; the moment of the call is the trace's time origin.
  /// Enabling an already-enabled tracer keeps the original origin.
  void enable();
  void disable();
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Drop every recorded span (lanes stay registered).
  void clear();

  std::size_t span_count() const;

  /// The Chrome trace-event form: {"traceEvents": [...]} with one complete
  /// ("ph": "X") event per span, "tid" = lane id, timestamps/durations in
  /// microseconds, the parent span index under "args".  Parses with any
  /// JSON reader (the obs tests pin it through util/json) and loads
  /// directly into chrome://tracing.
  std::string to_chrome_json() const;

  /// Per-thread span buffer (public only so the implementation's
  /// thread-local cache can name it; not part of the API surface).
  struct Lane {
    int tid = 0;
    std::vector<Span> spans;
    std::vector<std::size_t> open;  ///< stack of open span indices
  };

 private:
  friend class SpanScope;

  /// The calling thread's lane, registering it on first use.  Cached
  /// thread-locally per (thread, tracer) — repeat calls are two loads.
  Lane* lane();

  std::uint64_t id_;  ///< distinguishes tracers for the thread-local cache
  std::atomic<bool> enabled_{false};
  std::atomic<TimeNs> origin_{0.0};
  mutable std::mutex mutex_;  ///< guards lanes_ registration/iteration
  std::vector<std::unique_ptr<Lane>> lanes_;
  std::vector<std::thread::id> lane_threads_;  ///< aligned with lanes_
};

/// RAII span: begins on construction, ends on destruction.  A no-op when
/// the tracer is disabled, so instrumentation sites cost one relaxed load
/// in the common (untraced) case.
class SpanScope {
 public:
  /// `name` must outlive the tracer (pass a string literal).
  SpanScope(Tracer& tracer, const char* name);
  ~SpanScope();
  SpanScope(const SpanScope&) = delete;
  SpanScope& operator=(const SpanScope&) = delete;

 private:
  Tracer* tracer_ = nullptr;       ///< null when recording is off
  Tracer::Lane* lane_ = nullptr;
  std::size_t index_ = 0;
};

}  // namespace llamp::obs
