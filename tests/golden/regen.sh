#!/bin/sh
# Regenerate the golden emitter outputs pinned by tests/test_golden.cpp.
# Usage: tests/golden/regen.sh [path-to-llamp-binary]
# Keep the invocations here in sync with the GoldenCase list in the test.
set -eu
llamp="${1:-build/llamp}"
dir="$(dirname "$0")"

"$llamp" analyze --app=lulesh --ranks=8 --scale=0.05 --points=3 --dl-max-us=50 \
  > "$dir/analyze_lulesh.table.golden"
"$llamp" analyze --app=lulesh --ranks=8 --scale=0.05 --points=3 --dl-max-us=50 \
  --format=csv > "$dir/analyze_lulesh.csv.golden"
"$llamp" analyze --app=lulesh --ranks=8 --scale=0.05 --points=3 --dl-max-us=50 \
  --format=json > "$dir/analyze_lulesh.json.golden"

"$llamp" sweep --app=hpcg --ranks=8 --scale=0.05 --points=4 --dl-max-us=30 \
  > "$dir/sweep_hpcg.table.golden"
"$llamp" sweep --app=hpcg --ranks=8 --scale=0.05 --points=4 --dl-max-us=30 \
  --format=csv > "$dir/sweep_hpcg.csv.golden"
"$llamp" sweep --app=hpcg --ranks=8 --scale=0.05 --points=4 --dl-max-us=30 \
  --format=json > "$dir/sweep_hpcg.json.golden"

"$llamp" campaign --apps=lulesh,hpcg,milc --ranks=8,27 --topos=none,fat-tree \
  --scales=0.02 --points=3 --dl-max-us=20 > "$dir/campaign_grid.table.golden"
"$llamp" campaign --apps=lulesh,hpcg,milc --ranks=8,27 --topos=none,fat-tree \
  --scales=0.02 --points=3 --dl-max-us=20 --format=csv \
  > "$dir/campaign_grid.csv.golden"
"$llamp" campaign --apps=lulesh,hpcg,milc --ranks=8,27 --topos=none,fat-tree \
  --scales=0.02 --points=3 --dl-max-us=20 --format=json \
  > "$dir/campaign_grid.json.golden"

echo "regenerated $(ls "$dir"/*.golden | wc -l) golden files in $dir"
