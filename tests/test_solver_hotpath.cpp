#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <thread>
#include <vector>

#include "apps/registry.hpp"
#include "core/solver_cache.hpp"
#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

// Equivalence wall for the zero-allocation hot path: the segment-walk
// sweep, the workspace-reusing solve, and the flat/CSR edge-cost lowering
// must all be *bitwise* indistinguishable from a dense per-point solve()
// — across every registered application and across randomized LogGPS
// configurations — and a workspace must carry no state between solvers.

namespace llamp::lp {
namespace {

using Solver = ParametricSolver;

/// An ascending, irregular grid over [lo, hi] that deliberately includes
/// every piece boundary of T (the walk's worst case: anchors, replays, and
/// exact-breakpoint hits all occur).
std::vector<double> stress_grid(const Solver& solver, int k, double lo,
                                double hi, int points, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < points; ++i) {
    xs.push_back(lo + (hi - lo) * rng.uniform());
  }
  for (const double c : solver.critical_values(k, lo, hi)) xs.push_back(c);
  xs.push_back(lo);
  xs.push_back(hi);
  std::sort(xs.begin(), xs.end());
  return xs;
}

/// The core property: walk results equal dense per-point solves, bit for
/// bit, in both the value and the active slope.
void expect_walk_matches_dense(const Solver& solver, int k,
                               const std::vector<double>& xs) {
  Solver::Workspace ws;
  std::vector<Solver::SweepEval> walk(xs.size());
  solver.sweep(k, xs, ws, walk.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto dense = solver.solve(k, xs[i]);
    EXPECT_EQ(walk[i].value, dense.value) << "k=" << k << " x=" << xs[i];
    EXPECT_EQ(walk[i].slope, dense.gradient[static_cast<std::size_t>(k)])
        << "k=" << k << " x=" << xs[i];
  }
}

TEST(SegmentWalk, BitwiseMatchesDenseOnAllRegisteredApps) {
  for (const std::string& app : apps::app_names()) {
    const int ranks = apps::supported_ranks(app, 8);
    const auto g =
        schedgen::build_graph(apps::make_app_trace(app, ranks, 0.02));
    const auto p = loggops::NetworkConfig::cscs_testbed();
    const auto space = std::make_shared<LatencyParamSpace>(p);
    Solver solver(g, space);
    const auto xs = stress_grid(solver, 0, 0.0, p.L + 100'000.0, 120,
                                0x5eedu + g.num_vertices());
    SCOPED_TRACE(app);
    expect_walk_matches_dense(solver, 0, xs);
  }
}

class RandomConfigTest : public ::testing::TestWithParam<std::uint64_t> {};

loggops::Params random_params(std::uint64_t seed) {
  Rng rng(seed);
  loggops::Params p;
  p.L = rng.uniform(0.0, 20'000.0);
  p.o = rng.uniform(0.0, 8'000.0);
  p.G = rng.uniform(0.0, 0.5);
  p.S = static_cast<std::uint64_t>(rng.uniform_int(16 * 1024, 512 * 1024));
  return p;
}

TEST_P(RandomConfigTest, WalkBitwiseMatchesDenseOnRandomPrograms) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam();
  cfg.nranks = 6;
  cfg.steps = 140;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 977 + 5);
  Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  const auto xs =
      stress_grid(solver, 0, 0.0, p.L + 200'000.0, 100, GetParam());
  expect_walk_matches_dense(solver, 0, xs);
}

TEST_P(RandomConfigTest, CsrFallbackWalkMatchesDense) {
  // LatencyBandwidthParamSpace has two-term edges and the pairwise HLogGP
  // space has too many parameters to flatten: both exercise the CSR
  // fallback rather than the flat per-parameter lowering.
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 77;
  cfg.nranks = 5;
  cfg.steps = 100;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 31 + 9);

  Solver bw(g, std::make_shared<LatencyBandwidthParamSpace>(p));
  expect_walk_matches_dense(bw, 1,
                            stress_grid(bw, 1, 0.0, p.G + 2.0, 60, 3));

  const auto pair_space =
      std::make_shared<PairwiseLatencyParamSpace>(p, cfg.nranks);
  Solver pw(g, pair_space);
  const int k = pair_space->pair_index(0, cfg.nranks - 1);
  expect_walk_matches_dense(pw, k,
                            stress_grid(pw, k, 0.0, p.L + 80'000.0, 60, 4));
}

TEST_P(RandomConfigTest, WorkspaceVariantsAreBitwiseIdentical) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 321;
  cfg.nranks = 5;
  cfg.steps = 110;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 131 + 3);
  Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  Solver::Workspace ws;

  const double lo = 0.0;
  const double hi = p.L + 120'000.0;

  const auto segs = solver.piecewise(0, lo, hi);
  const auto segs_ws = solver.piecewise(0, lo, hi, ws);
  ASSERT_EQ(segs.size(), segs_ws.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].lo, segs_ws[i].lo);
    EXPECT_EQ(segs[i].hi, segs_ws[i].hi);
    EXPECT_EQ(segs[i].slope, segs_ws[i].slope);
    EXPECT_EQ(segs[i].value_at_lo, segs_ws[i].value_at_lo);
  }
  // Segment slopes are the dense solver's own λ at interior points.
  for (const auto& seg : segs) {
    const double mid = 0.5 * (seg.lo + std::min(seg.hi, hi));
    EXPECT_NEAR(solver.solve(0, mid).gradient[0], seg.slope, 1e-9);
  }

  const auto crit = solver.critical_values(0, lo, hi);
  const auto crit_ws = solver.critical_values(0, lo, hi, ws);
  ASSERT_EQ(crit.size(), crit_ws.size());
  for (std::size_t i = 0; i < crit.size(); ++i) {
    EXPECT_EQ(crit[i], crit_ws[i]);
  }

  const double budget = solver.solve(0, p.L).value * 1.05;
  const double tol = solver.max_param_for_budget(0, budget);
  EXPECT_EQ(tol, solver.max_param_for_budget(0, budget, ws));
  if (std::isfinite(tol)) {
    EXPECT_LE(solver.solve(0, tol).value,
              budget + 1e-9 * (1.0 + budget));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(Workspace, InterleavedSolversNeverLeakState) {
  // One workspace, three solvers over different graphs *and* different
  // parameter spaces (flat and CSR paths), interleaved: every result must
  // equal a fresh-workspace dense solve bit for bit.
  const auto g1 = testing::running_example_graph();
  testing::RandomProgramConfig cfg;
  cfg.seed = 9'001;
  cfg.nranks = 4;
  cfg.steps = 90;
  const auto g2 = schedgen::build_graph(testing::random_trace(cfg));
  const auto p1 = testing::running_example_params();
  const loggops::Params p2 = random_params(123);

  Solver a(g1, std::make_shared<LatencyParamSpace>(p1));
  Solver b(g2, std::make_shared<LatencyParamSpace>(p2));
  Solver c(g2, std::make_shared<LatencyBandwidthParamSpace>(p2));

  Solver::Workspace ws;
  for (int round = 0; round < 3; ++round) {
    for (const double x : {0.0, 385.0, 500.0, 1'000.0, 25'000.0}) {
      const auto& sa = a.solve(0, x, ws);
      const auto ra = a.solve(0, x);
      EXPECT_EQ(sa.value, ra.value);
      EXPECT_EQ(sa.gradient, ra.gradient);
      EXPECT_EQ(sa.lo, ra.lo);
      EXPECT_EQ(sa.hi, ra.hi);
      EXPECT_EQ(sa.messages, ra.messages);

      const auto& sb = b.solve(0, x, ws);
      const auto rb = b.solve(0, x);
      EXPECT_EQ(sb.value, rb.value);
      EXPECT_EQ(sb.gradient, rb.gradient);

      const auto& sc = c.solve(1, x * 1e-4, ws);
      const auto rc = c.solve(1, x * 1e-4);
      EXPECT_EQ(sc.value, rc.value);
      EXPECT_EQ(sc.gradient, rc.gradient);
    }
    // A walk on one solver between solves of the others must not perturb
    // anything either.
    const std::vector<double> xs = {0.0, 200.0, 400.0, 600.0, 5'000.0};
    std::vector<Solver::SweepEval> evals(xs.size());
    a.sweep(0, xs, ws, evals.data());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(evals[i].value, a.solve(0, xs[i]).value);
    }
  }
}

TEST(SweepApi, RejectsDescendingValues) {
  const auto g = testing::running_example_graph();
  Solver solver(
      g, std::make_shared<LatencyParamSpace>(testing::running_example_params()));
  Solver::Workspace ws;
  const std::vector<double> bad = {100.0, 50.0};
  std::vector<Solver::SweepEval> out(bad.size());
  EXPECT_THROW(solver.sweep(0, bad, ws, out.data()), LpError);
  EXPECT_THROW((void)solver.sweep(7, bad), LpError);
}

TEST(SweepApi, DuplicatesAndEmptyGridsAreFine) {
  const auto g = testing::running_example_graph();
  Solver solver(
      g, std::make_shared<LatencyParamSpace>(testing::running_example_params()));
  EXPECT_TRUE(solver.sweep(0, std::vector<double>{}).empty());
  const std::vector<double> xs = {500.0, 500.0, 500.0};
  const auto evals = solver.sweep(0, xs);
  ASSERT_EQ(evals.size(), 3u);
  EXPECT_EQ(evals[0].value, 1'615.0);
  EXPECT_EQ(evals[1].value, 1'615.0);
  EXPECT_EQ(evals[2].value, 1'615.0);
}

// ---------------------------------------------------------------------------
// LoweredProblem / Cursor split, anchor snapshots, and the SolverCache
// (PR 7): replay from a published anchor must be bitwise indistinguishable
// from a dense solve, whatever serves the query and however warm the cache.
// ---------------------------------------------------------------------------

TEST(LoweredProblem, OneLoweringServesManyFacades) {
  const auto g = testing::running_example_graph();
  const auto prob = std::make_shared<const LoweredProblem>(
      g,
      std::make_shared<LatencyParamSpace>(testing::running_example_params()));
  const Solver a(prob);
  const Solver b(prob);
  EXPECT_EQ(a.lowered_ptr().get(), b.lowered_ptr().get());
  for (const double x : {0.0, 385.0, 500.0, 5'000.0}) {
    const auto sa = a.solve(0, x);
    const auto sb = b.solve(0, x);
    const auto sd = prob->solve(0, x);
    EXPECT_EQ(sa.value, sb.value);
    EXPECT_EQ(sa.value, sd.value);
    EXPECT_EQ(sa.gradient, sd.gradient);
    EXPECT_EQ(sa.lo, sd.lo);
    EXPECT_EQ(sa.hi, sd.hi);
  }
  EXPECT_THROW(Solver(std::shared_ptr<const LoweredProblem>()), LpError);
}

/// Solve at each anchor point through a cursor, snapshot the anchor, and
/// require replay_anchor to reproduce dense solves bitwise across the
/// anchor's whole stability zone.
void expect_replay_matches_dense(const LoweredProblem& prob, int k,
                                 const std::vector<double>& anchors) {
  ASSERT_TRUE(prob.flat());
  LoweredProblem::Cursor cur;
  for (const double x0 : anchors) {
    const auto& sol = prob.solve(k, x0, cur);
    LoweredProblem::AnchorState anchor;
    prob.save_anchor(cur, anchor);
    EXPECT_EQ(anchor.solution.value, sol.value);
    ASSERT_TRUE(anchor.covers(k, x0));
    std::vector<double> probes = {x0};
    if (std::isfinite(anchor.stable_hi)) {
      probes.push_back(x0 + 0.25 * (anchor.stable_hi - x0));
      probes.push_back(x0 + 0.75 * (anchor.stable_hi - x0));
    } else {
      probes.push_back(x0 + 1.0);
      probes.push_back(x0 + 12'345.0);
    }
    for (const double x : probes) {
      if (!anchor.covers(k, x)) continue;
      const auto ev = prob.replay_anchor(anchor, k, x);
      const auto dense = prob.solve(k, x);
      EXPECT_EQ(ev.value, dense.value) << "anchor=" << x0 << " x=" << x;
      EXPECT_EQ(ev.slope, dense.gradient[static_cast<std::size_t>(k)])
          << "anchor=" << x0 << " x=" << x;
    }
  }
}

TEST(AnchorReplay, BitwiseMatchesDenseOnAllRegisteredApps) {
  for (const std::string& app : apps::app_names()) {
    const int ranks = apps::supported_ranks(app, 8);
    const auto g =
        schedgen::build_graph(apps::make_app_trace(app, ranks, 0.02));
    const auto p = loggops::NetworkConfig::cscs_testbed();
    const LoweredProblem prob(g, std::make_shared<LatencyParamSpace>(p));
    SCOPED_TRACE(app);
    expect_replay_matches_dense(prob, 0,
                                {0.0, p.L, p.L + 7'000.0, p.L + 90'000.0});
  }
}

TEST_P(RandomConfigTest, AnchorReplayBitwiseMatchesDenseOnRandomPrograms) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 555;
  cfg.nranks = 5;
  cfg.steps = 120;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 31 + 17);
  const LoweredProblem prob(g, std::make_shared<LatencyParamSpace>(p));
  Rng rng(GetParam());
  std::vector<double> anchors;
  for (int i = 0; i < 12; ++i) {
    anchors.push_back(rng.uniform(0.0, p.L + 150'000.0));
  }
  expect_replay_matches_dense(prob, 0, anchors);
}

TEST(AnchorReplay, RejectsNonCoveringAnchorsAndCsrLowerings) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  const LoweredProblem prob(g, std::make_shared<LatencyParamSpace>(p));
  LoweredProblem::Cursor cur;
  prob.solve(0, 0.0, cur);
  LoweredProblem::AnchorState anchor;
  prob.save_anchor(cur, anchor);
  // The first piece of the running example ends at L_c = 385: beyond the
  // stability zone (or behind the anchor point) replay must refuse, never
  // extrapolate.
  EXPECT_FALSE(anchor.covers(0, 1'000'000.0));
  EXPECT_THROW((void)prob.replay_anchor(anchor, 0, 1'000'000.0), LpError);
  EXPECT_THROW((void)prob.replay_anchor(anchor, 0, -1.0), LpError);
  // A never-solved cursor has no anchor to snapshot.
  LoweredProblem::Cursor idle;
  EXPECT_THROW(prob.save_anchor(idle, anchor), LpError);
  // Two-term edges lower to the CSR fallback: the anchor can be saved but
  // cursor-less replay is flat-only and must refuse.
  const LoweredProblem csr(g,
                           std::make_shared<LatencyBandwidthParamSpace>(p));
  EXPECT_FALSE(csr.flat());
  LoweredProblem::Cursor bw;
  csr.solve(1, p.G, bw);
  LoweredProblem::AnchorState csr_anchor;
  csr.save_anchor(bw, csr_anchor);
  EXPECT_THROW((void)csr.replay_anchor(csr_anchor, 1, p.G), LpError);
}

TEST(SolverCacheEntry, EvalIsBitwiseDenseColdWarmAndRepeated) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  core::SolverCache cache;
  const core::GraphKey key{"running-example", 1, 1.0, p.S};
  const auto entry = cache.latency(key, g, p);
  const Solver dense(g, std::make_shared<LatencyParamSpace>(p));

  Rng rng(7);
  std::vector<double> xs;
  for (int i = 0; i < 64; ++i) xs.push_back(rng.uniform(0.0, 5'000.0));
  // Repeats, the knot, and nearby points: the replay-heavy shapes.
  xs.insert(xs.end(), {385.0, 385.0, 500.0, 500.0, 500.5, 501.0});

  LoweredProblem::Cursor cur;
  std::vector<double> first_values;
  for (const double x : xs) {
    const auto ev = entry->eval(0, x, cur);
    const auto ref = dense.solve(0, x);
    EXPECT_EQ(ev.value, ref.value) << "x=" << x;
    EXPECT_EQ(ev.slope, ref.gradient[0]) << "x=" << x;
    first_values.push_back(ev.value);
  }
  const auto cold = cache.stats();
  EXPECT_GT(cold.anchor_solves, 0u);
  EXPECT_LE(entry->anchor_count(), 64u);

  // Warm second pass: same bytes, now served by anchor replay.
  for (std::size_t i = 0; i < xs.size(); ++i) {
    EXPECT_EQ(entry->eval(0, xs[i], cur).value, first_values[i]);
  }
  const auto warm = cache.stats();
  EXPECT_GT(warm.replays, cold.replays);
  EXPECT_EQ(warm.built, cold.built);
}

TEST(SolverCacheStats, KeysOnGraphKeyAndParamFingerprint) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  core::SolverCache cache;
  const core::GraphKey key{"running-example", 1, 1.0, p.S};
  const auto a = cache.latency(key, g, p);
  const auto b = cache.latency(key, g, p);
  EXPECT_EQ(a.get(), b.get());
  EXPECT_EQ(a->problem().get(), b->problem().get());
  loggops::Params p2 = p;
  p2.L += 1.0;
  const auto c = cache.latency(key, g, p2);
  EXPECT_NE(a.get(), c.get());
  // The bandwidth space is a distinct fingerprint under the same key; its
  // CSR lowering always dense-solves but is still shared.
  const auto bw = cache.latency_bandwidth(key, g, p);
  EXPECT_NE(a.get(), bw.get());
  EXPECT_FALSE(bw->problem()->flat());
  LoweredProblem::Cursor cur;
  const Solver dense(g, std::make_shared<LatencyBandwidthParamSpace>(p));
  const auto ev = bw->eval(1, p.G, cur);
  const auto ref = dense.solve(1, p.G);
  EXPECT_EQ(ev.value, ref.value);
  EXPECT_EQ(ev.slope, ref.gradient[1]);

  const auto stats = cache.stats();
  EXPECT_EQ(stats.built, 3u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_NE(cache.stats_string().find("solvers: built=3"), std::string::npos);
}

TEST(SolverCacheEntry, ConcurrentEvalsAreBitwiseDense) {
  // 8 threads hammer one entry with overlapping repeated/nearby queries,
  // racing anchor publication; every result must equal the dense value.
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  core::SolverCache cache;
  const auto entry =
      cache.latency(core::GraphKey{"running-example", 1, 1.0, p.S}, g, p);
  const Solver dense(g, std::make_shared<LatencyParamSpace>(p));

  std::vector<double> xs;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) xs.push_back(rng.uniform(0.0, 4'000.0));
  std::vector<double> refs;
  for (const double x : xs) refs.push_back(dense.solve(0, x).value);

  constexpr int kThreads = 8;
  std::vector<std::vector<double>> got(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      LoweredProblem::Cursor cur;
      // Distinct starting offsets so threads race different anchors.
      for (std::size_t i = 0; i < xs.size(); ++i) {
        const std::size_t j = (i + static_cast<std::size_t>(t) * 25) %
                              xs.size();
        got[static_cast<std::size_t>(t)].push_back(
            entry->eval(0, xs[j], cur).value);
      }
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t) {
    for (std::size_t i = 0; i < xs.size(); ++i) {
      const std::size_t j =
          (i + static_cast<std::size_t>(t) * 25) % xs.size();
      ASSERT_EQ(got[static_cast<std::size_t>(t)][i], refs[j])
          << "thread=" << t << " x=" << xs[j];
    }
  }
}

// ---------------------------------------------------------------------------
// max_param_for_budget boundary contract (PR 7 bugfix): exact knot ties,
// budgets inside the eps band, and budgets already violated at the anchor
// all have pinned, cursor-state-independent answers.
// ---------------------------------------------------------------------------

TEST(BudgetBoundary, KnotTiesEpsBandAndViolatedAnchors) {
  // Running example: T(L) = max(L + 1115, 1500) with the knot at L_c = 385
  // and base L = 500 (T = 1615).
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  const Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  Solver::Workspace ws;

  // Budget exactly ties the knot value: the answer is the knot (the whole
  // flat piece meets the budget; 385 is its right end), not +inf and not
  // the anchor.
  const double knot = solver.max_param_for_budget_from(0, 0.0, 1'500.0, ws);
  EXPECT_NEAR(knot, 385.0, 1e-5);
  EXPECT_LE(solver.solve(0, knot).value, 1'500.0 + 1e-9 * (1.0 + 1'500.0));

  // Budget exactly T(from): the answer is `from` itself, never below it.
  EXPECT_EQ(solver.max_param_for_budget_from(0, 500.0, 1'615.0, ws), 500.0);

  // Budget inside the eps band below T(from): still clamped to `from`
  // (the pre-fix code could walk backwards past the anchor here).
  const double teps = 1e-9 * (1.0 + 1'615.0);
  const double r =
      solver.max_param_for_budget_from(0, 500.0, 1'615.0 - 0.5 * teps, ws);
  EXPECT_EQ(r, 500.0);

  // Budget already violated beyond the eps band: a defined error, both
  // from an explicit anchor and from the space's base point (T(500) = 1615
  // exceeds both budgets).
  EXPECT_THROW((void)solver.max_param_for_budget_from(0, 500.0, 1'550.0, ws),
               LpError);
  EXPECT_THROW((void)solver.max_param_for_budget(0, 1'000.0), LpError);

  // Cursor-state independence: a cursor that just served unrelated solves
  // and a fresh one agree bitwise at every boundary shape, knot tie
  // included.
  solver.solve(0, 4'999.0, ws);
  Solver::Workspace fresh;
  EXPECT_EQ(solver.max_param_for_budget_from(0, 0.0, 1'500.0, ws),
            solver.max_param_for_budget_from(0, 0.0, 1'500.0, fresh));
  for (const double budget : {1'615.0, 1'616.0, 2'000.0, 1e9}) {
    EXPECT_EQ(solver.max_param_for_budget(0, budget, ws),
              solver.max_param_for_budget(0, budget, fresh))
        << "budget=" << budget;
  }
}

TEST_P(RandomConfigTest, BudgetBoundaryAgreesAcrossCursorStates) {
  // On random programs: results are >= the anchor, meet the budget within
  // eps, and never depend on prior cursor state.
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 808;
  cfg.nranks = 5;
  cfg.steps = 100;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 53 + 29);
  const Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  Solver::Workspace warm;
  const double base_value = solver.solve(0, p.L, warm).value;
  for (const double factor : {1.0, 1.0 + 1e-12, 1.001, 1.05, 1.5}) {
    const double budget = base_value * factor;
    const double a = solver.max_param_for_budget_from(0, p.L, budget, warm);
    Solver::Workspace fresh;
    const double b = solver.max_param_for_budget_from(0, p.L, budget, fresh);
    EXPECT_EQ(a, b) << "factor=" << factor;
    EXPECT_GE(a, p.L);
    if (std::isfinite(a)) {
      EXPECT_LE(solver.solve(0, a).value, budget + 1e-9 * (1.0 + budget));
    }
  }
}

// ---------------------------------------------------------------------------
// Batched sample-axis kernel (PR 8): solve_batch / solve_batch_ranges must
// be bitwise indistinguishable from n independent dense solves — across
// every registered app, random LogGPS configurations, the flat and CSR
// lowerings, and every block-boundary shape (n below, at, and off multiples
// of kBatchWidth, so the last_pow2 tail dispatch is exercised too).
// ---------------------------------------------------------------------------

/// Unordered lane values (the batch API, unlike sweep, imposes no order):
/// random points, duplicates, and the interval ends shuffled together.
std::vector<double> batch_grid(double lo, double hi, int points,
                               std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < points; ++i) {
    xs.push_back(lo + (hi - lo) * rng.uniform());
  }
  xs.push_back(hi);
  xs.push_back(lo);
  if (!xs.empty()) xs.push_back(xs.front());  // a duplicate lane
  return xs;
}

void expect_batch_matches_dense(const Solver& solver, int k,
                                const std::vector<double>& xs,
                                Solver::BatchCursor& bc) {
  std::vector<Solver::BatchPoint> plain(xs.size());
  std::vector<Solver::BatchPoint> ranged(xs.size());
  solver.solve_batch(k, xs.data(), xs.size(), bc, plain.data());
  solver.solve_batch_ranges(k, xs.data(), xs.size(), bc, ranged.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto dense = solver.solve(k, xs[i]);
    const double dslope = dense.gradient[static_cast<std::size_t>(k)];
    EXPECT_EQ(plain[i].value, dense.value) << "k=" << k << " x=" << xs[i];
    EXPECT_EQ(plain[i].slope, dslope) << "k=" << k << " x=" << xs[i];
    EXPECT_EQ(ranged[i].value, dense.value) << "k=" << k << " x=" << xs[i];
    EXPECT_EQ(ranged[i].slope, dslope) << "k=" << k << " x=" << xs[i];
    EXPECT_EQ(ranged[i].lo, dense.lo) << "k=" << k << " x=" << xs[i];
    EXPECT_EQ(ranged[i].hi, dense.hi) << "k=" << k << " x=" << xs[i];
  }
}

TEST(BatchSolve, BitwiseMatchesDenseOnAllRegisteredApps) {
  Solver::BatchCursor bc;  // shared across apps: reuse must not leak state
  for (const std::string& app : apps::app_names()) {
    const int ranks = apps::supported_ranks(app, 8);
    const auto g =
        schedgen::build_graph(apps::make_app_trace(app, ranks, 0.02));
    const auto p = loggops::NetworkConfig::cscs_testbed();
    Solver solver(g, std::make_shared<LatencyParamSpace>(p));
    SCOPED_TRACE(app);
    expect_batch_matches_dense(
        solver, 0,
        batch_grid(0.0, p.L + 100'000.0, 17, 0xba7c4u + g.num_vertices()),
        bc);
  }
}

TEST_P(RandomConfigTest, BatchBitwiseMatchesDenseAtEveryBlockBoundary) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 4'242;
  cfg.nranks = 5;
  cfg.steps = 110;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 271 + 13);
  Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  Solver::BatchCursor bc;
  const auto xs =
      batch_grid(0.0, p.L + 200'000.0, 31, GetParam() * 7 + 1);
  // Prefix lengths straddling every sub-block shape the tail dispatch can
  // take: 1..9 covers the pow2 ladder, 15/16/17 the full-block boundary.
  for (const std::size_t n :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4},
        std::size_t{5}, std::size_t{6}, std::size_t{7}, std::size_t{8},
        std::size_t{9}, std::size_t{15}, std::size_t{16}, std::size_t{17},
        xs.size()}) {
    SCOPED_TRACE(n);
    expect_batch_matches_dense(
        solver, 0, std::vector<double>(xs.begin(), xs.begin() + static_cast<std::ptrdiff_t>(n)), bc);
  }
}

TEST_P(RandomConfigTest, BatchCsrFallbackBitwiseMatchesDense) {
  // Two-term edges (bandwidth) and the pairwise space both bypass the flat
  // lowering; the batch kernel's CSR lane walk must match the scalar term
  // walk bitwise.
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 2'024;
  cfg.nranks = 5;
  cfg.steps = 100;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 631 + 7);
  Solver::BatchCursor bc;

  Solver bw(g, std::make_shared<LatencyBandwidthParamSpace>(p));
  expect_batch_matches_dense(bw, 1, batch_grid(0.0, p.G + 2.0, 13, 21), bc);

  const auto pair_space =
      std::make_shared<PairwiseLatencyParamSpace>(p, cfg.nranks);
  Solver pw(g, pair_space);
  const int k = pair_space->pair_index(0, cfg.nranks - 1);
  expect_batch_matches_dense(pw, k,
                             batch_grid(0.0, p.L + 80'000.0, 13, 22), bc);
}

TEST_P(RandomConfigTest, BatchBudgetSearchBitwiseMatchesScalar) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 909;
  cfg.nranks = 5;
  cfg.steps = 100;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 47 + 19);
  const Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  const double base_value = solver.solve(0, p.L).value;

  // 10 lanes (not a multiple of the block width): anchors on and off the
  // base point, budgets from exact ties through loose, including the eps
  // band clamp shapes of the BudgetBoundary wall.
  std::vector<double> from;
  std::vector<double> budget;
  for (const double factor : {1.0, 1.0 + 1e-12, 1.001, 1.05, 1.5}) {
    from.push_back(p.L);
    budget.push_back(base_value * factor);
    from.push_back(0.0);
    budget.push_back(base_value * factor);
  }
  std::vector<double> batch(from.size());
  Solver::BatchCursor bc;
  solver.max_param_for_budget_from_batch(0, from.data(), budget.data(),
                                         from.size(), bc, batch.data());
  for (std::size_t i = 0; i < from.size(); ++i) {
    Solver::Workspace ws;
    EXPECT_EQ(batch[i],
              solver.max_param_for_budget_from(0, from[i], budget[i], ws))
        << "lane=" << i << " from=" << from[i] << " budget=" << budget[i];
  }
}

TEST(BatchSolve, ErrorsAndEdgeShapesMatchScalarContracts) {
  const auto g = testing::running_example_graph();
  const auto p = testing::running_example_params();
  const Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  Solver::BatchCursor bc;
  std::vector<double> xs = {0.0, 500.0};
  std::vector<Solver::BatchPoint> out(xs.size());
  // Out-of-range active parameter: same LpError as solve().
  EXPECT_THROW(solver.solve_batch(7, xs.data(), xs.size(), bc, out.data()),
               LpError);
  // n = 0 is a no-op.
  solver.solve_batch(0, xs.data(), 0, bc, out.data());
  // An infeasible lane throws the scalar's infeasibility error even when
  // other lanes are feasible (T(500) = 1615 > 1550).
  std::vector<double> from = {500.0, 500.0};
  std::vector<double> budget = {2'000.0, 1'550.0};
  std::vector<double> tol(from.size());
  EXPECT_THROW(solver.max_param_for_budget_from_batch(
                   0, from.data(), budget.data(), from.size(), bc,
                   tol.data()),
               LpError);
  // The paper's running example through the batch path: T(L) numbers of
  // Fig. 4c at block width and off it.
  std::vector<double> grid;
  for (int i = 0; i < 11; ++i) grid.push_back(i * 100.0);
  std::vector<Solver::BatchPoint> pts(grid.size());
  solver.solve_batch(0, grid.data(), grid.size(), bc, pts.data());
  for (std::size_t i = 0; i < grid.size(); ++i) {
    EXPECT_DOUBLE_EQ(pts[i].value, std::max(grid[i] + 1'115.0, 1'500.0));
    EXPECT_EQ(pts[i].slope, grid[i] >= 385.0 ? 1.0 : 0.0);
  }
}

TEST(SegmentWalk, RunningExampleAnchorsOncePerPiece) {
  // The running example has exactly two pieces (L_c = 385 ns); a 200-point
  // walk must reproduce the paper's numbers at every grid point.
  const auto g = testing::running_example_graph();
  Solver solver(
      g, std::make_shared<LatencyParamSpace>(testing::running_example_params()));
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i * 5.0);
  const auto evals = solver.sweep(0, xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double expect =
        std::max(xs[i] + 1'115.0, 1'500.0);  // T(L) of Fig. 4c
    EXPECT_DOUBLE_EQ(evals[i].value, expect) << "x=" << xs[i];
    // At L_c itself both pieces tie and the solver breaks toward the
    // larger slope.
    EXPECT_EQ(evals[i].slope, xs[i] >= 385.0 ? 1.0 : 0.0) << "x=" << xs[i];
  }
}

}  // namespace
}  // namespace llamp::lp
