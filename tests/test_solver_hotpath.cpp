#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "apps/registry.hpp"
#include "lp/param_space.hpp"
#include "lp/parametric.hpp"
#include "schedgen/schedgen.hpp"
#include "test_support.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

// Equivalence wall for the zero-allocation hot path: the segment-walk
// sweep, the workspace-reusing solve, and the flat/CSR edge-cost lowering
// must all be *bitwise* indistinguishable from a dense per-point solve()
// — across every registered application and across randomized LogGPS
// configurations — and a workspace must carry no state between solvers.

namespace llamp::lp {
namespace {

using Solver = ParametricSolver;

/// An ascending, irregular grid over [lo, hi] that deliberately includes
/// every piece boundary of T (the walk's worst case: anchors, replays, and
/// exact-breakpoint hits all occur).
std::vector<double> stress_grid(const Solver& solver, int k, double lo,
                                double hi, int points, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> xs;
  for (int i = 0; i < points; ++i) {
    xs.push_back(lo + (hi - lo) * rng.uniform());
  }
  for (const double c : solver.critical_values(k, lo, hi)) xs.push_back(c);
  xs.push_back(lo);
  xs.push_back(hi);
  std::sort(xs.begin(), xs.end());
  return xs;
}

/// The core property: walk results equal dense per-point solves, bit for
/// bit, in both the value and the active slope.
void expect_walk_matches_dense(const Solver& solver, int k,
                               const std::vector<double>& xs) {
  Solver::Workspace ws;
  std::vector<Solver::SweepEval> walk(xs.size());
  solver.sweep(k, xs, ws, walk.data());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const auto dense = solver.solve(k, xs[i]);
    EXPECT_EQ(walk[i].value, dense.value) << "k=" << k << " x=" << xs[i];
    EXPECT_EQ(walk[i].slope, dense.gradient[static_cast<std::size_t>(k)])
        << "k=" << k << " x=" << xs[i];
  }
}

TEST(SegmentWalk, BitwiseMatchesDenseOnAllRegisteredApps) {
  for (const std::string& app : apps::app_names()) {
    const int ranks = apps::supported_ranks(app, 8);
    const auto g =
        schedgen::build_graph(apps::make_app_trace(app, ranks, 0.02));
    const auto p = loggops::NetworkConfig::cscs_testbed();
    const auto space = std::make_shared<LatencyParamSpace>(p);
    Solver solver(g, space);
    const auto xs = stress_grid(solver, 0, 0.0, p.L + 100'000.0, 120,
                                0x5eedu + g.num_vertices());
    SCOPED_TRACE(app);
    expect_walk_matches_dense(solver, 0, xs);
  }
}

class RandomConfigTest : public ::testing::TestWithParam<std::uint64_t> {};

loggops::Params random_params(std::uint64_t seed) {
  Rng rng(seed);
  loggops::Params p;
  p.L = rng.uniform(0.0, 20'000.0);
  p.o = rng.uniform(0.0, 8'000.0);
  p.G = rng.uniform(0.0, 0.5);
  p.S = static_cast<std::uint64_t>(rng.uniform_int(16 * 1024, 512 * 1024));
  return p;
}

TEST_P(RandomConfigTest, WalkBitwiseMatchesDenseOnRandomPrograms) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam();
  cfg.nranks = 6;
  cfg.steps = 140;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 977 + 5);
  Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  const auto xs =
      stress_grid(solver, 0, 0.0, p.L + 200'000.0, 100, GetParam());
  expect_walk_matches_dense(solver, 0, xs);
}

TEST_P(RandomConfigTest, CsrFallbackWalkMatchesDense) {
  // LatencyBandwidthParamSpace has two-term edges and the pairwise HLogGP
  // space has too many parameters to flatten: both exercise the CSR
  // fallback rather than the flat per-parameter lowering.
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 77;
  cfg.nranks = 5;
  cfg.steps = 100;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 31 + 9);

  Solver bw(g, std::make_shared<LatencyBandwidthParamSpace>(p));
  expect_walk_matches_dense(bw, 1,
                            stress_grid(bw, 1, 0.0, p.G + 2.0, 60, 3));

  const auto pair_space =
      std::make_shared<PairwiseLatencyParamSpace>(p, cfg.nranks);
  Solver pw(g, pair_space);
  const int k = pair_space->pair_index(0, cfg.nranks - 1);
  expect_walk_matches_dense(pw, k,
                            stress_grid(pw, k, 0.0, p.L + 80'000.0, 60, 4));
}

TEST_P(RandomConfigTest, WorkspaceVariantsAreBitwiseIdentical) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 321;
  cfg.nranks = 5;
  cfg.steps = 110;
  const auto g = schedgen::build_graph(testing::random_trace(cfg));
  const loggops::Params p = random_params(GetParam() * 131 + 3);
  Solver solver(g, std::make_shared<LatencyParamSpace>(p));
  Solver::Workspace ws;

  const double lo = 0.0;
  const double hi = p.L + 120'000.0;

  const auto segs = solver.piecewise(0, lo, hi);
  const auto segs_ws = solver.piecewise(0, lo, hi, ws);
  ASSERT_EQ(segs.size(), segs_ws.size());
  for (std::size_t i = 0; i < segs.size(); ++i) {
    EXPECT_EQ(segs[i].lo, segs_ws[i].lo);
    EXPECT_EQ(segs[i].hi, segs_ws[i].hi);
    EXPECT_EQ(segs[i].slope, segs_ws[i].slope);
    EXPECT_EQ(segs[i].value_at_lo, segs_ws[i].value_at_lo);
  }
  // Segment slopes are the dense solver's own λ at interior points.
  for (const auto& seg : segs) {
    const double mid = 0.5 * (seg.lo + std::min(seg.hi, hi));
    EXPECT_NEAR(solver.solve(0, mid).gradient[0], seg.slope, 1e-9);
  }

  const auto crit = solver.critical_values(0, lo, hi);
  const auto crit_ws = solver.critical_values(0, lo, hi, ws);
  ASSERT_EQ(crit.size(), crit_ws.size());
  for (std::size_t i = 0; i < crit.size(); ++i) {
    EXPECT_EQ(crit[i], crit_ws[i]);
  }

  const double budget = solver.solve(0, p.L).value * 1.05;
  const double tol = solver.max_param_for_budget(0, budget);
  EXPECT_EQ(tol, solver.max_param_for_budget(0, budget, ws));
  if (std::isfinite(tol)) {
    EXPECT_LE(solver.solve(0, tol).value,
              budget + 1e-9 * (1.0 + budget));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomConfigTest,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u));

TEST(Workspace, InterleavedSolversNeverLeakState) {
  // One workspace, three solvers over different graphs *and* different
  // parameter spaces (flat and CSR paths), interleaved: every result must
  // equal a fresh-workspace dense solve bit for bit.
  const auto g1 = testing::running_example_graph();
  testing::RandomProgramConfig cfg;
  cfg.seed = 9'001;
  cfg.nranks = 4;
  cfg.steps = 90;
  const auto g2 = schedgen::build_graph(testing::random_trace(cfg));
  const auto p1 = testing::running_example_params();
  const loggops::Params p2 = random_params(123);

  Solver a(g1, std::make_shared<LatencyParamSpace>(p1));
  Solver b(g2, std::make_shared<LatencyParamSpace>(p2));
  Solver c(g2, std::make_shared<LatencyBandwidthParamSpace>(p2));

  Solver::Workspace ws;
  for (int round = 0; round < 3; ++round) {
    for (const double x : {0.0, 385.0, 500.0, 1'000.0, 25'000.0}) {
      const auto& sa = a.solve(0, x, ws);
      const auto ra = a.solve(0, x);
      EXPECT_EQ(sa.value, ra.value);
      EXPECT_EQ(sa.gradient, ra.gradient);
      EXPECT_EQ(sa.lo, ra.lo);
      EXPECT_EQ(sa.hi, ra.hi);
      EXPECT_EQ(sa.messages, ra.messages);

      const auto& sb = b.solve(0, x, ws);
      const auto rb = b.solve(0, x);
      EXPECT_EQ(sb.value, rb.value);
      EXPECT_EQ(sb.gradient, rb.gradient);

      const auto& sc = c.solve(1, x * 1e-4, ws);
      const auto rc = c.solve(1, x * 1e-4);
      EXPECT_EQ(sc.value, rc.value);
      EXPECT_EQ(sc.gradient, rc.gradient);
    }
    // A walk on one solver between solves of the others must not perturb
    // anything either.
    const std::vector<double> xs = {0.0, 200.0, 400.0, 600.0, 5'000.0};
    std::vector<Solver::SweepEval> evals(xs.size());
    a.sweep(0, xs, ws, evals.data());
    for (std::size_t i = 0; i < xs.size(); ++i) {
      EXPECT_EQ(evals[i].value, a.solve(0, xs[i]).value);
    }
  }
}

TEST(SweepApi, RejectsDescendingValues) {
  const auto g = testing::running_example_graph();
  Solver solver(
      g, std::make_shared<LatencyParamSpace>(testing::running_example_params()));
  Solver::Workspace ws;
  const std::vector<double> bad = {100.0, 50.0};
  std::vector<Solver::SweepEval> out(bad.size());
  EXPECT_THROW(solver.sweep(0, bad, ws, out.data()), LpError);
  EXPECT_THROW((void)solver.sweep(7, bad), LpError);
}

TEST(SweepApi, DuplicatesAndEmptyGridsAreFine) {
  const auto g = testing::running_example_graph();
  Solver solver(
      g, std::make_shared<LatencyParamSpace>(testing::running_example_params()));
  EXPECT_TRUE(solver.sweep(0, std::vector<double>{}).empty());
  const std::vector<double> xs = {500.0, 500.0, 500.0};
  const auto evals = solver.sweep(0, xs);
  ASSERT_EQ(evals.size(), 3u);
  EXPECT_EQ(evals[0].value, 1'615.0);
  EXPECT_EQ(evals[1].value, 1'615.0);
  EXPECT_EQ(evals[2].value, 1'615.0);
}

TEST(SegmentWalk, RunningExampleAnchorsOncePerPiece) {
  // The running example has exactly two pieces (L_c = 385 ns); a 200-point
  // walk must reproduce the paper's numbers at every grid point.
  const auto g = testing::running_example_graph();
  Solver solver(
      g, std::make_shared<LatencyParamSpace>(testing::running_example_params()));
  std::vector<double> xs;
  for (int i = 0; i < 200; ++i) xs.push_back(i * 5.0);
  const auto evals = solver.sweep(0, xs);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double expect =
        std::max(xs[i] + 1'115.0, 1'500.0);  // T(L) of Fig. 4c
    EXPECT_DOUBLE_EQ(evals[i].value, expect) << "x=" << xs[i];
    // At L_c itself both pieces tie and the solver breaks toward the
    // larger slope.
    EXPECT_EQ(evals[i].slope, xs[i] >= 385.0 ? 1.0 : 0.0) << "x=" << xs[i];
  }
}

}  // namespace
}  // namespace llamp::lp
