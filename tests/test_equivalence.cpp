#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "lp/graph_lp.hpp"
#include "lp/parametric.hpp"
#include "lp/simplex.hpp"
#include "schedgen/schedgen.hpp"
#include "sim/simulator.hpp"
#include "test_support.hpp"

namespace llamp {
namespace {

/// The central soundness property of the repository: for any execution
/// graph and configuration, the discrete-event simulation (LogGOPSim
/// stand-in), the exact parametric solver, and — on small instances — the
/// explicit Algorithm-1 LP solved by simplex all report the same runtime,
/// and the sensitivity information (λ_L, feasibility ranges) agrees.
class EquivalenceTest : public ::testing::TestWithParam<std::uint64_t> {};

loggops::Params test_params() {
  loggops::Params p;
  p.L = 3'000.0;
  p.o = 1'200.0;
  p.G = 0.05;
  p.S = 256 * 1024;
  return p;
}

TEST_P(EquivalenceTest, SimEqualsParametricAcrossLatencies) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam();
  cfg.nranks = 6;
  cfg.steps = 120;
  const auto t = testing::random_trace(cfg);
  const auto g = schedgen::build_graph(t);
  loggops::Params p = test_params();

  sim::Simulator simulator(g);
  const auto space = std::make_shared<lp::LatencyParamSpace>(p);
  lp::ParametricSolver solver(g, space);

  for (const double L : {0.0, 500.0, 3'000.0, 20'000.0, 250'000.0}) {
    p.L = L;
    const double t_sim = simulator.run(p).makespan;
    const double t_lp = solver.solve(0, L).value;
    EXPECT_NEAR(t_sim, t_lp, 1e-6 * (1.0 + t_sim)) << "L=" << L;
  }
}

TEST_P(EquivalenceTest, GraphAnalysisLambdaMatchesLpGradient) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 1'000;
  cfg.nranks = 5;
  cfg.steps = 100;
  const auto t = testing::random_trace(cfg);
  const auto g = schedgen::build_graph(t);
  const loggops::Params p = test_params();

  sim::Simulator simulator(g);
  const auto space = std::make_shared<lp::LatencyParamSpace>(p);
  lp::ParametricSolver solver(g, space);

  const auto res = simulator.run(p);
  const auto path = simulator.critical_path(res);
  const auto sol = solver.solve(0, p.L);
  // Degenerate optima can admit several co-optimal critical paths.  The
  // runtimes must agree exactly; the parametric solver breaks value ties
  // toward the larger slope, so its λ dominates the simulator's
  // arbitrary-path count and equals it in the generic (tie-free) case.
  EXPECT_NEAR(res.makespan, sol.value, 1e-6 * (1.0 + res.makespan));
  EXPECT_GE(sol.gradient[0], path.lambda_L - 1e-9);
}

TEST_P(EquivalenceTest, SimplexAgreesOnSmallPrograms) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 2'000;
  cfg.nranks = 4;
  cfg.steps = 30;
  const auto t = testing::random_trace(cfg);
  const auto g = schedgen::build_graph(t);
  const loggops::Params p = test_params();

  const lp::LatencyParamSpace space(p);
  auto glp = lp::build_graph_lp(g, space);
  const auto s = lp::SimplexSolver{}.solve(glp.model);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);

  const auto shared_space = std::make_shared<lp::LatencyParamSpace>(p);
  lp::ParametricSolver solver(g, shared_space);
  const auto sol = solver.solve(0, p.L);
  EXPECT_NEAR(s.objective, sol.value, 1e-6 * (1.0 + sol.value));
  EXPECT_NEAR(s.reduced_cost[static_cast<std::size_t>(glp.param_vars[0])],
              sol.gradient[0], 1e-6);
}

TEST_P(EquivalenceTest, ToleranceInverseProperty) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 3'000;
  cfg.nranks = 5;
  cfg.steps = 80;
  const auto t = testing::random_trace(cfg);
  const auto g = schedgen::build_graph(t);
  const loggops::Params p = test_params();

  const auto space = std::make_shared<lp::LatencyParamSpace>(p);
  lp::ParametricSolver solver(g, space);
  const double T0 = solver.solve(0, p.L).value;
  for (const double pct : {1.0, 2.0, 5.0, 25.0}) {
    const double budget = T0 * (1.0 + pct / 100.0);
    const double tol = solver.max_param_for_budget(0, budget);
    if (!std::isfinite(tol)) continue;  // latency never critical
    const double t_at_tol = solver.solve(0, tol).value;
    EXPECT_NEAR(t_at_tol, budget, 1e-6 * budget) << "pct=" << pct;
    // Strictly past the tolerance the budget must be exceeded.
    const double t_past = solver.solve(0, tol * 1.01 + 10.0).value;
    EXPECT_GT(t_past, budget - 1e-6 * budget);
  }
}

TEST_P(EquivalenceTest, RuntimeConvexNondecreasingInLatency) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 4'000;
  cfg.nranks = 4;
  cfg.steps = 60;
  const auto t = testing::random_trace(cfg);
  const auto g = schedgen::build_graph(t);
  const auto space = std::make_shared<lp::LatencyParamSpace>(test_params());
  lp::ParametricSolver solver(g, space);

  double prev_value = -1.0;
  double prev_slope = -1.0;
  for (double L = 0.0; L <= 100'000.0; L += 5'000.0) {
    const auto sol = solver.solve(0, L);
    EXPECT_GE(sol.value, prev_value - 1e-9);
    EXPECT_GE(sol.gradient[0], prev_slope - 1e-9);
    prev_value = sol.value;
    prev_slope = sol.gradient[0];
  }
}

TEST_P(EquivalenceTest, FeasibilityRangeIsSound) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 5'000;
  cfg.nranks = 4;
  cfg.steps = 60;
  const auto t = testing::random_trace(cfg);
  const auto g = schedgen::build_graph(t);
  const auto space = std::make_shared<lp::LatencyParamSpace>(test_params());
  lp::ParametricSolver solver(g, space);

  const double L = 10'000.0;
  const auto sol = solver.solve(0, L);
  // Probe points inside the reported range: the same linear piece applies.
  for (const double frac : {0.25, 0.75}) {
    const double lo = std::max(sol.lo, 0.0);
    const double hi = std::isfinite(sol.hi) ? sol.hi : L * 2;
    const double x = lo + frac * (hi - lo);
    const auto probe = solver.solve(0, x);
    EXPECT_NEAR(probe.value, sol.value + sol.gradient[0] * (x - L),
                1e-6 * (1.0 + sol.value));
  }
}

TEST_P(EquivalenceTest, RendezvousThresholdSweepStaysConsistent) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 6'000;
  cfg.nranks = 4;
  cfg.steps = 60;
  cfg.large_message_prob = 0.4;
  const auto t = testing::random_trace(cfg);
  for (const std::uint64_t S : {std::uint64_t{4 * 1024}, std::uint64_t{64 * 1024},
                                std::uint64_t{1} << 30}) {
    schedgen::Options opt;
    opt.rendezvous_threshold = S;
    const auto g = schedgen::build_graph(t, opt);
    loggops::Params p = test_params();
    p.S = S;
    sim::Simulator simulator(g);
    const auto space = std::make_shared<lp::LatencyParamSpace>(p);
    lp::ParametricSolver solver(g, space);
    EXPECT_NEAR(simulator.run(p).makespan, solver.solve(0, p.L).value,
                1e-6 * (1.0 + simulator.run(p).makespan))
        << "S=" << S;
  }
}

TEST_P(EquivalenceTest, BandwidthSpaceAgreesAcrossSolvers) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 7'000;
  cfg.nranks = 4;
  cfg.steps = 40;
  const auto t = testing::random_trace(cfg);
  const auto g = schedgen::build_graph(t);
  const loggops::Params p = test_params();

  const lp::LatencyBandwidthParamSpace space(p);
  auto glp = lp::build_graph_lp(g, space);
  const auto s = lp::SimplexSolver{}.solve(glp.model);
  ASSERT_EQ(s.status, lp::SolveStatus::kOptimal);

  const auto shared = std::make_shared<lp::LatencyBandwidthParamSpace>(p);
  lp::ParametricSolver solver(g, shared);
  const auto sol = solver.solve(1, p.G);  // G active, L at base
  EXPECT_NEAR(s.objective, sol.value, 1e-6 * (1.0 + sol.value));
  // λ_G from the simplex reduced cost vs the critical-path byte count.
  EXPECT_NEAR(s.reduced_cost[static_cast<std::size_t>(glp.param_vars[1])],
              sol.gradient[1], 1e-6);
}

// Campaign-grid generalization of the soundness property: the solvers must
// agree not just under the default test configuration but at *every* LogGPS
// grid point a campaign can reach.  Draw a random configuration from the
// campaign-style ranges (L, o, G, rendezvous threshold S), then walk a ΔL
// grid and require SimplexSolver and ParametricSolver to agree on value,
// λ_L, and ranging at each point.
TEST_P(EquivalenceTest, RandomLogGpsGridPointsAgreeAcrossSolvers) {
  testing::RandomProgramConfig cfg;
  cfg.seed = GetParam() + 8'000;
  cfg.nranks = 4;
  cfg.steps = 40;
  cfg.large_message_prob = 0.3;
  const auto t = testing::random_trace(cfg);

  Rng rng(GetParam() * 7919 + 17);
  loggops::Params p;
  p.L = rng.uniform(0.0, 30'000.0);
  p.o = rng.uniform(100.0, 8'000.0);
  p.G = rng.uniform(0.001, 0.2);
  constexpr std::uint64_t kThresholds[] = {4 * 1024, 64 * 1024, 256 * 1024,
                                           std::uint64_t{1} << 30};
  p.S = kThresholds[rng.uniform_int(0, 3)];

  // The protocol choice is baked into the graph; keep it consistent with S
  // the way the campaign engine does.
  schedgen::Options opt;
  opt.rendezvous_threshold = p.S;
  const auto g = schedgen::build_graph(t, opt);

  const auto shared = std::make_shared<lp::LatencyParamSpace>(p);
  lp::ParametricSolver solver(g, shared);

  for (const double dL : {0.0, 2'000.0, 25'000.0}) {
    loggops::Params pt = p;
    pt.L = p.L + dL;
    const lp::LatencyParamSpace space(pt);
    auto glp = lp::build_graph_lp(g, space);
    const auto s = lp::SimplexSolver{}.solve(glp.model);
    ASSERT_EQ(s.status, lp::SolveStatus::kOptimal) << "dL=" << dL;
    const auto sol = solver.solve(0, pt.L);
    const auto lvar = static_cast<std::size_t>(glp.param_vars[0]);
    EXPECT_NEAR(s.objective, sol.value, 1e-6 * (1.0 + sol.value))
        << "dL=" << dL;
    EXPECT_NEAR(s.reduced_cost[lvar], sol.gradient[0], 1e-6) << "dL=" << dL;

    // Ranging: both solvers certify a feasibility interval around the
    // evaluation point (Gurobi's SALBLow/SALBUp vs the parametric lo/hi).
    // Each must contain the point, and runtime must stay on the same
    // linear piece across the *intersection* — probed with fresh solves,
    // which keeps the check sound even for degenerate optima where the
    // reported basis (and hence the exact endpoints) is not unique.
    const auto range =
        lp::SimplexSolver{}.bound_range(glp.model, s, glp.param_vars[0]);
    EXPECT_LE(range.lo, pt.L + 1e-6);
    EXPECT_GE(range.hi, pt.L - 1e-6);
    EXPECT_LE(sol.lo, pt.L + 1e-6);
    EXPECT_GE(sol.hi, pt.L - 1e-6);
    const double lo = std::max({sol.lo, range.lo, 0.0});
    const double hi = std::min({sol.hi, range.hi, pt.L + 50'000.0});
    for (const double frac : {0.25, 0.75}) {
      const double x = lo + frac * (hi - lo);
      const auto probe = solver.solve(0, x);
      EXPECT_NEAR(probe.value, sol.value + sol.gradient[0] * (x - pt.L),
                  1e-6 * (1.0 + sol.value))
          << "dL=" << dL << " x=" << x;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EquivalenceTest,
                         ::testing::Range<std::uint64_t>(0, 12));

}  // namespace
}  // namespace llamp
