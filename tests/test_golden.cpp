#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tools/cli_driver.hpp"

// Golden-output wall for the llamp emitters: the exact bytes of
// `llamp analyze`, `sweep`, and `campaign` in every format are pinned
// against committed files, so a formatting regression fails CTest instead
// of silently shifting bench output or downstream CSV/JSON consumers.
//
// All invocations are pure LP analyses of seeded proxy traces — no wall
// clock, no RNG beyond the seeded trace generators — so the bytes are
// deterministic.  To regenerate after an *intentional* change:
//   tests/golden/regen.sh <path-to-llamp-binary>

namespace llamp {
namespace {

/// The pinned invocations.  Keep in sync with tests/golden/regen.sh.
struct GoldenCase {
  const char* file;
  std::vector<const char*> args;
};

const std::vector<GoldenCase>& cases() {
  static const std::vector<GoldenCase> kCases = {
      {"analyze_lulesh.table.golden",
       {"analyze", "--app=lulesh", "--ranks=8", "--scale=0.05", "--points=3",
        "--dl-max-us=50"}},
      {"analyze_lulesh.csv.golden",
       {"analyze", "--app=lulesh", "--ranks=8", "--scale=0.05", "--points=3",
        "--dl-max-us=50", "--format=csv"}},
      {"analyze_lulesh.json.golden",
       {"analyze", "--app=lulesh", "--ranks=8", "--scale=0.05", "--points=3",
        "--dl-max-us=50", "--format=json"}},
      {"sweep_hpcg.table.golden",
       {"sweep", "--app=hpcg", "--ranks=8", "--scale=0.05", "--points=4",
        "--dl-max-us=30"}},
      {"sweep_hpcg.csv.golden",
       {"sweep", "--app=hpcg", "--ranks=8", "--scale=0.05", "--points=4",
        "--dl-max-us=30", "--format=csv"}},
      {"sweep_hpcg.json.golden",
       {"sweep", "--app=hpcg", "--ranks=8", "--scale=0.05", "--points=4",
        "--dl-max-us=30", "--format=json"}},
      {"campaign_grid.table.golden",
       {"campaign", "--apps=lulesh,hpcg,milc", "--ranks=8,27",
        "--topos=none,fat-tree", "--scales=0.02", "--points=3",
        "--dl-max-us=20"}},
      {"campaign_grid.csv.golden",
       {"campaign", "--apps=lulesh,hpcg,milc", "--ranks=8,27",
        "--topos=none,fat-tree", "--scales=0.02", "--points=3",
        "--dl-max-us=20", "--format=csv"}},
      {"campaign_grid.json.golden",
       {"campaign", "--apps=lulesh,hpcg,milc", "--ranks=8,27",
        "--topos=none,fat-tree", "--scales=0.02", "--points=3",
        "--dl-max-us=20", "--format=json"}},
  };
  return kCases;
}

std::string read_golden(const std::string& name) {
  const std::string path = std::string(LLAMP_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  if (!in) ADD_FAILURE() << "missing golden file " << path;
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

std::string run_cli(std::vector<const char*> args) {
  args.insert(args.begin(), "llamp");
  std::ostringstream out, err;
  const int code =
      tools::run(static_cast<int>(args.size()), args.data(), out, err);
  EXPECT_EQ(code, 0) << err.str();
  return out.str();
}

TEST(GoldenOutput, EmittersMatchCommittedBytes) {
  for (const GoldenCase& gc : cases()) {
    const std::string expected = read_golden(gc.file);
    ASSERT_FALSE(expected.empty()) << gc.file;
    const std::string actual = run_cli(gc.args);
    EXPECT_EQ(actual, expected)
        << gc.file << " drifted; if the change is intentional, regenerate "
        << "with tests/golden/regen.sh";
  }
}

}  // namespace
}  // namespace llamp
