#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "apps/registry.hpp"
#include "core/analyzer.hpp"
#include "core/report.hpp"
#include "schedgen/schedgen.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace llamp::core {
namespace {

graph::Graph app_graph(const std::string& name, int ranks, double scale) {
  return schedgen::build_graph(apps::make_app_trace(name, ranks, scale));
}

loggops::Params testbed() {
  return loggops::NetworkConfig::cscs_testbed(5'000.0);
}

TEST(RunningExample, AnalyzerWrapsSolver) {
  const auto g = testing::running_example_graph();
  auto p = testing::running_example_params();
  p.L = 0.0;
  LatencyAnalyzer an(g, p);
  EXPECT_DOUBLE_EQ(an.base_runtime(), 1'500.0);
  EXPECT_DOUBLE_EQ(an.predict_runtime(500.0), 1'615.0);
  EXPECT_DOUBLE_EQ(an.lambda_L(500.0), 1.0);
  EXPECT_DOUBLE_EQ(an.lambda_L(100.0), 0.0);
  // 2 us budget is +33.33% over the 1.5 us base.
  EXPECT_NEAR(an.tolerance(100.0 / 3.0), 885.0, 0.5);
  const auto crit = an.critical_latencies(0.0, 1'000.0);
  ASSERT_EQ(crit.size(), 1u);
  EXPECT_NEAR(crit[0], 385.0, 1e-3);
}

TEST(RunningExample, RhoIsLatencyShareOfCriticalPath) {
  const auto g = testing::running_example_graph();
  auto p = testing::running_example_params();
  p.L = 0.0;
  LatencyAnalyzer an(g, p);
  // At ΔL = 500 ns: T = 1615, λ = 1 -> ρ = 500/1615.
  EXPECT_NEAR(an.rho_L(500.0), 500.0 / 1'615.0, 1e-12);
  EXPECT_DOUBLE_EQ(an.rho_L(100.0), 0.0);
}

TEST(Forecast, MonotoneInInjectedLatency) {
  const auto g = app_graph("milc", 8, 0.1);
  LatencyAnalyzer an(g, testbed());
  double prev = 0.0;
  for (double d = 0.0; d <= us(100.0); d += us(10.0)) {
    const double t = an.predict_runtime(d);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Tolerance, OrderedByPercentage) {
  const auto g = app_graph("lulesh", 8, 0.3);
  LatencyAnalyzer an(g, testbed());
  const double t1 = an.tolerance(1.0);
  const double t2 = an.tolerance(2.0);
  const double t5 = an.tolerance(5.0);
  EXPECT_LT(t1, t2);
  EXPECT_LT(t2, t5);
  EXPECT_GT(t1, testbed().L);  // tolerance is an absolute latency > base
  EXPECT_DOUBLE_EQ(an.tolerance_delta(1.0), t1 - testbed().L);
  EXPECT_THROW((void)an.tolerance(-1.0), Error);
}

TEST(Tolerance, MilcLessTolerantThanIcon) {
  // The headline qualitative result of Fig. 1.
  const auto g_milc = app_graph("milc", 16, 0.15);
  const auto g_icon = app_graph("icon", 16, 0.3);
  LatencyAnalyzer milc(g_milc, testbed());
  LatencyAnalyzer icon(g_icon, testbed());
  EXPECT_LT(milc.tolerance_delta(1.0), icon.tolerance_delta(1.0));
  EXPECT_LT(milc.tolerance_delta(5.0), icon.tolerance_delta(5.0));
}

TEST(RuntimeCurve, SegmentsTileTheInterval) {
  const auto g = app_graph("cloverleaf", 8, 0.2);
  LatencyAnalyzer an(g, testbed());
  const auto segs = an.runtime_curve(testbed().L, testbed().L + us(50.0));
  ASSERT_FALSE(segs.empty());
  for (std::size_t i = 1; i < segs.size(); ++i) {
    EXPECT_LE(segs[i - 1].hi, segs[i].lo + 1.0);
    EXPECT_LT(segs[i - 1].slope, segs[i].slope);  // merged => strictly rising
  }
}

TEST(BandwidthSensitivity, PositiveForMessageHeavyApp) {
  const auto g = app_graph("npb-ft", 8, 0.2);
  LatencyAnalyzer an(g, testbed());
  EXPECT_GT(an.lambda_G(), 0.0);
}

TEST(PairwiseSensitivity, SymmetricAndConsistentWithLambda) {
  const auto g = app_graph("milc", 8, 0.05);
  LatencyAnalyzer an(g, testbed());
  const auto m = an.pairwise_lambda_L();
  const int n = g.nranks();
  double total = 0.0;
  for (int i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(m[static_cast<std::size_t>(i) * n + i], 0.0);
    for (int j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(m[static_cast<std::size_t>(i) * n + j],
                       m[static_cast<std::size_t>(j) * n + i]);
      if (i < j) total += m[static_cast<std::size_t>(i) * n + j];
    }
  }
  // The pairwise λ decompose the scalar λ_L (identical uniform base point).
  EXPECT_NEAR(total, an.lambda_L(), 1e-6);
}

TEST(Sweep, ParallelMatchesSerial) {
  const auto g = app_graph("hpcg", 8, 0.15);
  LatencyAnalyzer an(g, testbed());
  std::vector<TimeNs> deltas;
  for (int i = 0; i < 24; ++i) deltas.push_back(us(5.0 * i));
  const auto serial = an.sweep(deltas, 1);
  const auto parallel = an.sweep(deltas, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_DOUBLE_EQ(serial[i].runtime, parallel[i].runtime);
    EXPECT_DOUBLE_EQ(serial[i].lambda_L, parallel[i].lambda_L);
    EXPECT_DOUBLE_EQ(serial[i].rho_L, parallel[i].rho_L);
    EXPECT_DOUBLE_EQ(serial[i].runtime, an.predict_runtime(deltas[i]));
  }
}

TEST(Report, ConsolidatesAnalyzerOutputs) {
  const auto g = app_graph("milc", 8, 0.1);
  ReportOptions opts;
  opts.sweep_max = us(50.0);
  opts.sweep_points = 6;
  const ToleranceReport rep = make_report(g, testbed(), opts);
  EXPECT_GT(rep.base_runtime, 0.0);
  ASSERT_EQ(rep.curve.size(), 6u);
  EXPECT_DOUBLE_EQ(rep.curve.front().delta_L, 0.0);
  EXPECT_DOUBLE_EQ(rep.curve.back().delta_L, us(50.0));
  EXPECT_DOUBLE_EQ(rep.curve.front().runtime, rep.base_runtime);
  ASSERT_EQ(rep.bands.size(), 3u);
  EXPECT_LT(rep.bands[0].tolerance_delta, rep.bands[2].tolerance_delta);
  const auto text = rep.to_string();
  EXPECT_NE(text.find("base runtime"), std::string::npos);
  EXPECT_NE(text.find("latency tolerance"), std::string::npos);
}

TEST(Report, ValidatesOptions) {
  const auto g = app_graph("cloverleaf", 8, 0.05);
  ReportOptions opts;
  opts.sweep_points = 1;
  EXPECT_THROW((void)make_report(g, testbed(), opts), Error);
}

TEST(Sweep, RejectsNegativeInjection) {
  const auto g = app_graph("cloverleaf", 8, 0.1);
  LatencyAnalyzer an(g, testbed());
  EXPECT_THROW((void)an.sweep({us(1.0), -us(1.0)}, 2), Error);
  EXPECT_TRUE(an.sweep({}).empty());
}

TEST(Sweep, ValidatesGridBeforeWorkerThreadsStart) {
  // Bad injections must raise a clean Error on the calling thread — even
  // with a multi-threaded sweep — rather than relying on exception
  // propagation out of the worker pool.  NaN and infinity are rejected,
  // not just negatives.
  const auto g = app_graph("cloverleaf", 8, 0.1);
  LatencyAnalyzer an(g, testbed());
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  for (const int threads : {1, 4}) {
    EXPECT_THROW((void)an.sweep({0.0, nan}, threads), Error);
    EXPECT_THROW((void)an.sweep({inf}, threads), Error);
    EXPECT_THROW((void)an.sweep({-0.5}, threads), Error);
  }
  try {
    (void)an.sweep({us(1.0), nan}, 4);
    FAIL() << "expected Error";
  } catch (const Error& e) {
    EXPECT_NE(std::string(e.what()).find("finite"), std::string::npos);
  }
}

TEST(Sweep, UnsortedGridMatchesSortedPointwise) {
  // Out-of-order grids take the dense per-point path; every point must
  // still be bitwise identical to its segment-walked twin.
  const auto g = app_graph("hpcg", 8, 0.1);
  LatencyAnalyzer an(g, testbed());
  const std::vector<TimeNs> unsorted = {us(40.0), us(5.0), us(20.0), 0.0,
                                        us(10.0)};
  const auto shuffled = an.sweep(unsorted, 2);
  for (std::size_t i = 0; i < unsorted.size(); ++i) {
    const auto one = an.sweep({unsorted[i]}, 1);
    EXPECT_EQ(shuffled[i].runtime, one[0].runtime);
    EXPECT_EQ(shuffled[i].lambda_L, one[0].lambda_L);
    EXPECT_EQ(shuffled[i].rho_L, one[0].rho_L);
  }
}

}  // namespace
}  // namespace llamp::core
