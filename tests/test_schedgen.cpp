#include <gtest/gtest.h>

#include "schedgen/schedgen.hpp"
#include "test_support.hpp"
#include "trace/builder.hpp"
#include "util/error.hpp"

namespace llamp::schedgen {
namespace {

using graph::EdgeKind;
using graph::VertexKind;

std::size_t count_kind(const graph::Graph& g, VertexKind k) {
  std::size_t n = 0;
  for (graph::VertexId v = 0; v < g.num_vertices(); ++v) {
    n += g.vertex(v).kind == k;
  }
  return n;
}

std::size_t count_edges(const graph::Graph& g, EdgeKind k) {
  std::size_t n = 0;
  for (const graph::Edge& e : g.edges()) n += e.kind == k;
  return n;
}

TEST(ComputeInference, GapsBecomeCalcVertices) {
  trace::TraceBuilder tb(2, /*op_duration=*/100.0);
  tb.compute(0, 5'000.0);
  tb.send(0, 1, 64);
  tb.recv(1, 0, 64);
  const auto streams = expand_trace(tb.finish(), Options{});
  // Rank 0: calc(5000) then send.
  ASSERT_GE(streams[0].size(), 2u);
  EXPECT_EQ(streams[0][0].kind, MidOp::Kind::kCalc);
  EXPECT_DOUBLE_EQ(streams[0][0].duration, 5'000.0);
  EXPECT_EQ(streams[0][1].kind, MidOp::Kind::kSend);
}

TEST(ComputeInference, ComputeScaleMultiplies) {
  trace::TraceBuilder tb(2);
  tb.compute(0, 1'000.0);
  tb.send(0, 1, 8);
  tb.recv(1, 0, 8);
  Options opt;
  opt.compute_scale = 2.5;
  const auto streams = expand_trace(tb.finish(), opt);
  EXPECT_DOUBLE_EQ(streams[0][0].duration, 2'500.0);
}

TEST(BlockingP2p, GraphShape) {
  trace::TraceBuilder tb(2);
  tb.send(0, 1, 64);
  tb.recv(1, 0, 64);
  const auto g = build_graph(tb.finish());
  EXPECT_EQ(count_kind(g, VertexKind::kSend), 1u);
  EXPECT_EQ(count_kind(g, VertexKind::kRecv), 1u);
  EXPECT_EQ(count_kind(g, VertexKind::kPost), 0u);
  EXPECT_EQ(g.num_comm_edges(), 1u);
  EXPECT_EQ(count_edges(g, EdgeKind::kIssue), 0u);
  EXPECT_EQ(count_edges(g, EdgeKind::kSendCompletion), 0u);
}

TEST(NonblockingP2p, PostVertexAndNoIssueEdgeWhenEager) {
  trace::TraceBuilder tb(2);
  const auto rr = tb.irecv(1, 0, 64);
  tb.send(0, 1, 64);
  tb.compute(1, 500.0);
  tb.wait(1, rr);
  const auto g = build_graph(tb.finish());
  EXPECT_EQ(count_kind(g, VertexKind::kPost), 1u);
  EXPECT_EQ(count_edges(g, EdgeKind::kIssue), 0u);
}

TEST(Rendezvous, BlockingSendGetsCompletionAndIssueEdges) {
  trace::TraceBuilder tb(2);
  const std::uint64_t big = 512 * 1024;
  tb.send(0, 1, big);
  tb.compute(0, 1'000.0);  // the completion edge must land here
  tb.recv(1, 0, big);
  const auto g = build_graph(tb.finish());
  EXPECT_EQ(count_edges(g, EdgeKind::kIssue), 1u);
  EXPECT_EQ(count_edges(g, EdgeKind::kSendCompletion), 1u);
  // Comm edge carries the 3-hop handshake cost.
  for (const graph::Edge& e : g.edges()) {
    if (e.kind == EdgeKind::kComm) {
      EXPECT_EQ(e.l_mult, 3);
    }
  }
}

TEST(Rendezvous, IsendCompletionLandsOnWait) {
  trace::TraceBuilder tb(2);
  const std::uint64_t big = 512 * 1024;
  const auto sr = tb.isend(0, 1, big);
  tb.compute(0, 2'000.0);
  tb.wait(0, sr);
  const auto rr = tb.irecv(1, 0, big);
  tb.wait(1, rr);
  const auto g = build_graph(tb.finish());
  std::size_t completion_edges = 0;
  for (const graph::Edge& e : g.edges()) {
    if (e.kind != EdgeKind::kSendCompletion) continue;
    ++completion_edges;
    // With a nonblocking receiver the handshake completion is anchored on
    // the send and post vertices (t_s' is independent of the receiver's
    // wait position); the target is the sender's wait (a zero-cost calc).
    EXPECT_TRUE(g.vertex(e.from).kind == VertexKind::kSend ||
                g.vertex(e.from).kind == VertexKind::kPost);
    EXPECT_EQ(g.vertex(e.to).kind, VertexKind::kCalc);
    EXPECT_EQ(g.vertex(e.to).rank, 0);
  }
  EXPECT_EQ(completion_edges, 2u);
  // Nonblocking rendezvous recv: issue edge originates at the post vertex
  // with no extra overhead (the post already paid its o).
  for (const graph::Edge& e : g.edges()) {
    if (e.kind == EdgeKind::kIssue) {
      EXPECT_EQ(g.vertex(e.from).kind, VertexKind::kPost);
      EXPECT_EQ(e.o_mult, 0);
    }
  }
}

TEST(Rendezvous, ThresholdIsConfigurable) {
  trace::TraceBuilder tb(2);
  tb.send(0, 1, 1'000);
  tb.recv(1, 0, 1'000);
  Options opt;
  opt.rendezvous_threshold = 512;
  const auto g = build_graph(tb.finish(), opt);
  for (const graph::Edge& e : g.edges()) {
    if (e.kind == EdgeKind::kComm) {
      EXPECT_EQ(e.l_mult, 3);
    }
  }
}

TEST(Deadlock, HeadToHeadRendezvousSendsThrow) {
  // Both ranks issue a blocking rendezvous send before their recv: a real
  // MPI deadlock, surfacing as a cycle through completion edges.
  trace::TraceBuilder tb(2);
  const std::uint64_t big = 512 * 1024;
  tb.send(0, 1, big);
  tb.send(1, 0, big);
  tb.recv(0, 1, big);
  tb.recv(1, 0, big);
  EXPECT_THROW((void)build_graph(tb.finish()), Error);
}

TEST(Deadlock, HeadToHeadEagerSendsAreFine) {
  trace::TraceBuilder tb(2);
  tb.send(0, 1, 64);
  tb.send(1, 0, 64);
  tb.recv(0, 1, 64);
  tb.recv(1, 0, 64);
  EXPECT_NO_THROW((void)build_graph(tb.finish()));
}

TEST(Matching, UnmatchedSendThrows) {
  std::vector<MidStream> streams(2);
  streams[0].push_back(MidOp::send(1, 8, 0));
  EXPECT_THROW((void)build_graph_from_streams(streams, Options{}), SchedError);
}

TEST(Matching, UnmatchedRecvThrows) {
  std::vector<MidStream> streams(2);
  streams[1].push_back(MidOp::recv(0, 8, 0));
  EXPECT_THROW((void)build_graph_from_streams(streams, Options{}), SchedError);
}

TEST(Matching, CountMismatchThrows) {
  std::vector<MidStream> streams(2);
  streams[0].push_back(MidOp::send(1, 8, 0));
  streams[0].push_back(MidOp::send(1, 8, 0));
  streams[1].push_back(MidOp::recv(0, 8, 0));
  EXPECT_THROW((void)build_graph_from_streams(streams, Options{}), SchedError);
}

TEST(Matching, NonOvertakingOrderPreserved) {
  // Two same-tag messages: first send pairs with first posted recv.
  std::vector<MidStream> streams(2);
  streams[0].push_back(MidOp::send(1, 100, 0));
  streams[0].push_back(MidOp::send(1, 200, 0));
  streams[1].push_back(MidOp::recv(0, 100, 0));
  streams[1].push_back(MidOp::recv(0, 200, 0));
  EXPECT_NO_THROW((void)build_graph_from_streams(streams, Options{}));
  // Swapping recv sizes breaks pairing (size mismatch at comm edges).
  std::vector<MidStream> bad(2);
  bad[0].push_back(MidOp::send(1, 100, 0));
  bad[0].push_back(MidOp::send(1, 200, 0));
  bad[1].push_back(MidOp::recv(0, 200, 0));
  bad[1].push_back(MidOp::recv(0, 100, 0));
  EXPECT_THROW((void)build_graph_from_streams(bad, Options{}), Error);
}

TEST(Matching, TagsSeparateChannels) {
  // Same sizes, different tags, posted in "crossed" order: tags keep the
  // channels independent so this must match cleanly.
  std::vector<MidStream> streams(2);
  streams[0].push_back(MidOp::send(1, 100, 1));
  streams[0].push_back(MidOp::send(1, 100, 2));
  streams[1].push_back(MidOp::recv(0, 100, 2));
  streams[1].push_back(MidOp::recv(0, 100, 1));
  EXPECT_NO_THROW((void)build_graph_from_streams(streams, Options{}));
}

TEST(Waits, UnknownOrDuplicateWaitThrows) {
  std::vector<MidStream> streams(1);
  streams[0].push_back(MidOp::wait(7));
  EXPECT_THROW((void)build_graph_from_streams(streams, Options{}), SchedError);
}

TEST(Waits, MissingWaitThrows) {
  std::vector<MidStream> streams(2);
  streams[0].push_back(MidOp::isend(1, 8, 0, 1));
  streams[1].push_back(MidOp::recv(0, 8, 0));
  EXPECT_THROW((void)build_graph_from_streams(streams, Options{}), SchedError);
}

TEST(RandomPrograms, AlwaysBuildValidGraphs) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    testing::RandomProgramConfig cfg;
    cfg.seed = seed;
    cfg.nranks = 5;
    cfg.steps = 80;
    const auto t = testing::random_trace(cfg);
    graph::Graph g = build_graph(t);
    EXPECT_GT(g.num_vertices(), 0u);
    EXPECT_GT(g.num_comm_edges(), 0u);
  }
}

}  // namespace
}  // namespace llamp::schedgen
