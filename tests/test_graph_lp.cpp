#include <gtest/gtest.h>

#include <memory>

#include "lp/graph_lp.hpp"
#include "lp/simplex.hpp"
#include "test_support.hpp"
#include "util/error.hpp"

namespace llamp::lp {
namespace {

TEST(RunningExampleLp, ReproducesEquationSix) {
  // Equation 6 of the paper: min t s.t. y >= l + 115, y >= 500(+1000),
  // t >= 1100, t >= y + 1000; with l >= 500 the optimum is (0.5, 1.615) us
  // and the reduced cost of l is 1 (Fig. 5).
  const auto g = llamp::testing::running_example_graph();
  const LatencyParamSpace space(llamp::testing::running_example_params());
  GraphLp glp = build_graph_lp(g, space);
  glp.model.set_var_lower(glp.param_vars[0], 500.0);

  const SimplexSolver solver;
  const Solution s = solver.solve(glp.model);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 1'615.0, 1e-6);
  EXPECT_NEAR(s.reduced_cost[static_cast<std::size_t>(glp.param_vars[0])],
              1.0, 1e-9);

  // SALBLow-equivalent: the basis holds for l down to the critical latency.
  const auto range = solver.bound_range(glp.model, s, glp.param_vars[0]);
  EXPECT_NEAR(range.lo, 385.0, 1e-6);
}

TEST(RunningExampleLp, ToleranceModelMatchesFigure6) {
  const auto g = llamp::testing::running_example_graph();
  const LatencyParamSpace space(llamp::testing::running_example_params());
  const GraphLp glp = build_graph_lp(g, space);
  const Model tol = make_tolerance_model(glp, 0, 2'000.0);
  const Solution s = SimplexSolver{}.solve(tol);
  ASSERT_EQ(s.status, SolveStatus::kOptimal);
  EXPECT_NEAR(s.objective, 885.0, 1e-6);
}

TEST(ToleranceModel, UnboundedWhenNoLatencyOnAnyPath) {
  graph::Graph g(1);
  const auto a = g.add_calc(0, 10.0);
  const auto b = g.add_calc(0, 5.0);
  g.add_local_edge(a, b);
  g.finalize();
  const LatencyParamSpace space(llamp::testing::running_example_params());
  const GraphLp glp = build_graph_lp(g, space);
  const Model tol = make_tolerance_model(glp, 0, 100.0);
  EXPECT_EQ(SimplexSolver{}.solve(tol).status, SolveStatus::kUnbounded);
}

TEST(ToleranceModel, InfeasibleWhenBudgetBelowMinimumRuntime) {
  const auto g = llamp::testing::running_example_graph();
  const LatencyParamSpace space(llamp::testing::running_example_params());
  const GraphLp glp = build_graph_lp(g, space);
  const Model tol = make_tolerance_model(glp, 0, 1'000.0);  // < 1500 floor
  EXPECT_EQ(SimplexSolver{}.solve(tol).status, SolveStatus::kInfeasible);
}

TEST(ToleranceModel, ParameterIndexValidated) {
  const auto g = llamp::testing::running_example_graph();
  const LatencyParamSpace space(llamp::testing::running_example_params());
  const GraphLp glp = build_graph_lp(g, space);
  EXPECT_THROW((void)make_tolerance_model(glp, 3, 1.0), LpError);
}

TEST(Structure, VariableAndConstraintCounts) {
  // Algorithm 1 introduces one y per multi-predecessor vertex with one
  // constraint per in-edge, plus param vars, t, and one row per sink.
  const auto g = llamp::testing::running_example_graph();
  const LatencyParamSpace space(llamp::testing::running_example_params());
  const GraphLp glp = build_graph_lp(g, space);
  // Only the recv vertex has two predecessors; sinks are C1 and C3.
  EXPECT_EQ(glp.model.num_vars(), 3);  // l, t, y_recv
  EXPECT_EQ(glp.model.num_constraints(), 4);  // matches Equation 6
}

TEST(RendezvousLp, Figure15ConstraintCountMatchesEquationSix) {
  // Appendix B: "the final number of constraints matches Equation 6" — the
  // rendezvous version of the running example costs no extra constraints.
  graph::Graph g(2);
  const std::uint64_t bytes = 1 << 20;  // rendezvous-sized
  const auto c0 = g.add_calc(0, 100.0);
  const auto s = g.add_send(0, 1, bytes);
  const auto c1 = g.add_calc(0, 1'000.0);
  const auto c2 = g.add_calc(1, 500.0);
  const auto r = g.add_recv(1, 0, bytes);
  const auto c3 = g.add_calc(1, 1'000.0);
  g.add_local_edge(c0, s);
  g.add_local_edge(s, c1);
  g.add_issue_edge(c2, r, /*through_post=*/false);
  g.add_comm_edge(s, r, /*rendezvous=*/true);
  g.add_local_edge(r, c3);
  g.finalize();

  auto params = llamp::testing::running_example_params();
  params.S = 1024;
  const LatencyParamSpace space(params);
  const GraphLp glp = build_graph_lp(g, space);
  EXPECT_EQ(glp.model.num_constraints(), 4);
  EXPECT_EQ(glp.model.num_vars(), 3);  // l, t, y_recv

  // And the LP agrees with the closed handshake formulas at a sample L.
  Model m = glp.model;
  m.set_var_lower(glp.param_vars[0], 3'000.0);
  const Solution sol = SimplexSolver{}.solve(m);
  ASSERT_EQ(sol.status, SolveStatus::kOptimal);
  const double B = (static_cast<double>(bytes) - 1) * params.G;
  const double tm = std::max(100.0 + 0.0 + 3'000.0, 500.0 + 0.0);  // o = 0
  const double expect = tm + 2 * 3'000.0 + B + 0.0 + 1'000.0;  // t_r' + c3
  EXPECT_NEAR(sol.objective, std::max(expect, 100.0 + 1'000.0), 1e-6);
}

TEST(Structure, RejectsUnfinalizedGraph) {
  graph::Graph g(1);
  (void)g.add_calc(0, 1.0);
  const LatencyParamSpace space(llamp::testing::running_example_params());
  EXPECT_THROW((void)build_graph_lp(g, space), LpError);
}

}  // namespace
}  // namespace llamp::lp
