#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

// Test coverage for the streaming accumulators behind the stoch/ Monte
// Carlo engine: randomized batch-vs-streaming equivalence for the Welford
// mean/variance path, and error bounds for the P² quantile sketch under
// adversarial arrival orders (sorted, reversed, interleaved, sawtooth) —
// the orders known to stress marker-based sketches hardest.

namespace llamp {
namespace {

// ---------------------------------------------------------------------------
// Batch vs streaming moments
// ---------------------------------------------------------------------------

TEST(StatsStream, RunningStatsMatchesBatchOnRandomStreams) {
  Rng rng(101);
  for (int trial = 0; trial < 60; ++trial) {
    const auto n = static_cast<std::size_t>(rng.uniform_int(1, 400));
    // Mix magnitudes and signs so cancellation-prone streams are covered.
    const double scale = std::pow(10.0, rng.uniform(-3.0, 6.0));
    const double offset = rng.uniform(-1.0, 1.0) * scale * 10.0;
    std::vector<double> xs(n);
    for (double& x : xs) x = offset + scale * rng.normal();

    RunningStats rs;
    for (const double x : xs) rs.add(x);

    EXPECT_EQ(rs.count(), n);
    const double m = mean(xs);
    const double v = variance(xs);
    const double mag = std::fabs(m) + scale;
    EXPECT_NEAR(rs.mean(), m, 1e-10 * mag) << "trial " << trial;
    EXPECT_NEAR(rs.variance(), v, 1e-8 * (v + mag * mag * 1e-6))
        << "trial " << trial;
    EXPECT_EQ(rs.min(), min_of(xs));
    EXPECT_EQ(rs.max(), max_of(xs));
  }
}

// ---------------------------------------------------------------------------
// P² quantile sketch
// ---------------------------------------------------------------------------

TEST(StatsStream, P2IsExactUpToFiveObservations) {
  // The warm-up phase must agree with the batch percentile() helper
  // exactly — including the one-sample stream the degenerate-MC
  // reproduction depends on.
  Rng rng(7);
  for (const double q : {0.05, 0.25, 0.5, 0.75, 0.95}) {
    for (std::size_t n = 1; n <= 5; ++n) {
      P2Quantile sketch(q);
      std::vector<double> xs;
      for (std::size_t i = 0; i < n; ++i) {
        const double x = rng.uniform(-100.0, 100.0);
        xs.push_back(x);
        sketch.add(x);
      }
      EXPECT_EQ(sketch.value(), percentile(xs, 100.0 * q))
          << "q=" << q << " n=" << n;
    }
  }
}

TEST(StatsStream, P2SingleObservationIsThatObservation) {
  P2Quantile sketch(0.95);
  sketch.add(42.5);
  EXPECT_EQ(sketch.value(), 42.5);
  EXPECT_EQ(sketch.count(), 1u);
}

TEST(StatsStream, P2ConstantStreamIsExact) {
  for (const double q : {0.05, 0.5, 0.95}) {
    P2Quantile sketch(q);
    for (int i = 0; i < 5'000; ++i) sketch.add(3.25);
    EXPECT_EQ(sketch.value(), 3.25);
  }
}

/// Feed `xs` in the given order and return the sketch estimate.
double p2_estimate(double q, const std::vector<double>& xs) {
  P2Quantile sketch(q);
  for (const double x : xs) sketch.add(x);
  return sketch.value();
}

/// Adversarial arrival orders of one data set.
std::vector<std::vector<double>> orderings(std::vector<double> xs) {
  std::vector<std::vector<double>> out;
  out.push_back(xs);  // as generated (random)
  std::sort(xs.begin(), xs.end());
  out.push_back(xs);  // ascending
  {
    std::vector<double> desc(xs.rbegin(), xs.rend());
    out.push_back(std::move(desc));  // descending
  }
  {
    // Interleave extremes: min, max, 2nd-min, 2nd-max, ... — the classic
    // marker-stress order.
    std::vector<double> weave;
    std::size_t lo = 0, hi = xs.size();
    while (lo < hi) {
      weave.push_back(xs[lo++]);
      if (lo < hi) weave.push_back(xs[--hi]);
    }
    out.push_back(std::move(weave));
  }
  {
    // Sawtooth: repeated ascending runs.
    std::vector<double> saw;
    const std::size_t runs = 10;
    for (std::size_t r = 0; r < runs; ++r) {
      for (std::size_t i = r; i < xs.size(); i += runs) saw.push_back(xs[i]);
    }
    out.push_back(std::move(saw));
  }
  return out;
}

TEST(StatsStream, P2ErrorBoundedUnderAdversarialOrderings) {
  Rng rng(2024);
  // Two shapes: uniform (flat density — easy) and lognormal-ish heavy tail
  // (the shape runtime distributions actually take).
  std::vector<double> uniform(20'000), heavy(20'000);
  for (double& x : uniform) x = rng.uniform(0.0, 1.0);
  for (double& x : heavy) x = std::exp(rng.normal(0.0, 0.5));

  // P² is an iid-arrival sketch: on exchangeable streams (ordering #0 —
  // the regime the MC engine's sample-indexed reduction feeds it) the
  // error is tiny, while globally sorted (#1/#2), extreme-weaved (#3), and
  // sawtooth (#4) arrivals are the classic marker-collapse adversaries and
  // degrade it — catastrophically so for extreme quantiles under the
  // weave.  The per-ordering tolerances below are the measured envelope at
  // ~2x margin; they document the degradation rather than hide it, and the
  // in-range invariant must hold whatever the order.
  struct Case {
    const std::vector<double>* data;
    double q;
    std::array<double, 5> tol;  ///< per-ordering absolute tolerance
  };
  const std::vector<Case> cases = {
      {&uniform, 0.05, {0.005, 0.07, 0.01, 0.80, 0.01}},
      {&uniform, 0.50, {0.005, 0.01, 0.01, 0.07, 0.04}},
      {&uniform, 0.95, {0.005, 0.005, 0.04, 0.86, 0.01}},
      {&heavy, 0.05, {0.005, 0.04, 0.01, 0.03, 0.005}},
      {&heavy, 0.50, {0.005, 0.09, 0.30, 0.30, 0.005}},
      {&heavy, 0.95, {0.01, 0.15, 4.0, 2.5, 0.10}},
  };
  for (const auto& c : cases) {
    const double exact = percentile(*c.data, 100.0 * c.q);
    const double lo = min_of(*c.data);
    const double hi = max_of(*c.data);
    int which = 0;
    for (const auto& order : orderings(*c.data)) {
      const double est = p2_estimate(c.q, order);
      EXPECT_NEAR(est, exact, c.tol[static_cast<std::size_t>(which)])
          << "q=" << c.q << " ordering#" << which
          << (c.data == &uniform ? " uniform" : " heavy");
      // Marker invariant: the estimate can never leave the observed range.
      EXPECT_GE(est, lo);
      EXPECT_LE(est, hi);
      ++which;
    }
  }
}

TEST(StatsStream, P2RejectsBadInput) {
  EXPECT_THROW(P2Quantile(-0.1), Error);
  EXPECT_THROW(P2Quantile(1.5), Error);
  P2Quantile sketch(0.5);
  EXPECT_THROW(sketch.add(std::numeric_limits<double>::infinity()), Error);
  EXPECT_THROW(sketch.add(std::numeric_limits<double>::quiet_NaN()), Error);
}

TEST(StatsStream, P2EmptyStreamIsZero) {
  P2Quantile sketch(0.5);
  EXPECT_EQ(sketch.value(), 0.0);
  EXPECT_EQ(sketch.count(), 0u);
}

}  // namespace
}  // namespace llamp
